package fastcc

import (
	"context"
	"time"

	"fastcc/internal/coo"
	"fastcc/internal/core"
	"fastcc/internal/mempool"
)

// Sharded is a contraction operand prepared once and reusable across many
// contractions: the tensor is validated and linearized at Preshard time,
// and the per-tile input tables the engine builds from it (the paper's
// Build phase, Algorithm 5) are cached inside the Sharded, keyed by the
// shard-compatibility contract (tile side × input representation).
//
// Repeated contractions that arrive at the same tile grid — a self-
// contraction, one tensor contracted against many partners of similar
// shape, or any run with an explicit WithTileSize — skip Linearize and
// Build entirely and report Stats.Build == 0 with the ShardReused flags
// set.
//
// A Sharded is safe for concurrent use by multiple contractions. The
// underlying tensor must not be mutated after Preshard: the cached tables
// index into its value array.
type Sharded struct {
	t     *Tensor
	modes []int // contracted modes, frozen at Preshard time
	ext   []int // external modes, in original order
	op    *core.Operand
}

// Preshard validates t and linearizes it for contraction over the given
// modes, returning a reusable operand. The heavy per-tile build runs lazily
// on the first contraction and is cached per tile grid; pinning the grid up
// front with WithTileSize builds those shards eagerly (with WithThreads
// workers), so the first contraction is already a shard hit.
//
// Options are validated eagerly (ErrBadOption); WithTileSize and
// WithInputRep select the eager build, WithThreads its parallelism, and
// other options are ignored here — pass them to the contraction instead.
func Preshard(t *Tensor, modes []int, opts ...Option) (*Sharded, error) {
	o, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	// Reuse the spec structural checks for one operand's mode list.
	probe := Spec{CtrLeft: modes, CtrRight: modes}
	if err := probe.ValidateModes(t.Order(), t.Order()); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	s, err := preshardValidated(t, modes, "")
	if err != nil {
		return nil, err
	}
	// Eager build for pinned tile grids: a later contraction using the same
	// override lands exactly on these keys. Warm builds without keeping a
	// pin — the prepared operand holds no claim against eviction; a budget
	// squeeze simply means the first contraction rebuilds.
	for _, tile := range []uint64{o.tileL, o.tileR} {
		if tile != 0 {
			s.op.Warm(core.ShardKey{Tile: tile, Rep: o.rep}, o.threads)
		}
	}
	return s, nil
}

// Drop releases every tile shard cached inside the Sharded: unpinned shards
// are reclaimed (their table storage recycled) before Drop returns, shards
// still read by an in-flight contraction at their reader's exit. The Sharded
// remains usable — a later contraction rebuilds what it needs — so Drop is
// the explicit "I'm done reusing this for now" signal that keeps long-lived
// programs from holding every operand's tables at the shard-cache budget's
// mercy. Safe to call concurrently with contractions and repeatedly.
func (s *Sharded) Drop() { s.op.Close() }

// Close is Drop under the standard io.Closer spelling, so a *Sharded slots
// into registries and defer chains that manage Closers uniformly. It never
// fails (the error is always nil) and, like Drop, leaves the Sharded usable:
// a later contraction rebuilds what it needs.
func (s *Sharded) Close() error {
	s.Drop()
	return nil
}

// SizeBytes reports the resident footprint of the tile shards currently
// cached inside this Sharded — the bytes the shard-cache budget (and, for
// tenanted runs, the owning tenants' quotas) are charged for it right now.
// Zero means nothing is resident: never built, evicted, or dropped. The
// figure excludes the wrapped tensor itself and any build still in flight.
func (s *Sharded) SizeBytes() int64 {
	b, _ := s.op.Resident()
	return b
}

// Warm reports whether at least one built tile shard is resident, i.e.
// whether the next compatible contraction can skip the Build phase
// entirely (Stats.Build == 0 on a full hit). Like SizeBytes it is a
// non-blocking accounting view — an in-flight build counts as cold.
func (s *Sharded) Warm() bool {
	_, n := s.op.Resident()
	return n > 0
}

// PreshardKeyed is Preshard for content-addressed operands: key names the
// operand's spill files (the server uses the hex content hash of the
// canonical tensor encoding plus a contracted-modes tag), so a persistent
// spill directory (ConfigureSpill with persist=true) lets a restarted
// process that derives the same key adopt the previous process's on-disk
// shard images instead of rebuilding them. Everything else — validation,
// eager builds, reuse semantics — matches Preshard exactly; an empty key
// degrades to the anonymous Preshard behaviour.
func PreshardKeyed(t *Tensor, modes []int, key string, opts ...Option) (*Sharded, error) {
	o, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	probe := Spec{CtrLeft: modes, CtrRight: modes}
	if err := probe.ValidateModes(t.Order(), t.Order()); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	s, err := preshardValidated(t, modes, key)
	if err != nil {
		return nil, err
	}
	for _, tile := range []uint64{o.tileL, o.tileR} {
		if tile != 0 {
			s.op.Warm(core.ShardKey{Tile: tile, Rep: o.rep}, o.threads)
		}
	}
	return s, nil
}

// preshardValidated wraps an already-validated tensor: linearize (the
// paper's pre-processing step) and set up the shard cache. A non-empty key
// makes the operand content-addressed for the spill tier.
func preshardValidated(t *Tensor, modes []int, key string) (*Sharded, error) {
	ext := coo.ExternalModes(t.Order(), modes)
	m, err := t.Matrixize(ext, modes)
	if err != nil {
		return nil, err
	}
	var op *core.Operand
	if key != "" {
		op = core.NewKeyedOperand(m, key)
	} else {
		op = core.NewOperand(m)
	}
	return &Sharded{
		t:     t,
		modes: append([]int(nil), modes...),
		ext:   ext,
		op:    op,
	}, nil
}

// Tensor returns the wrapped tensor (not a copy; do not mutate).
func (s *Sharded) Tensor() *Tensor { return s.t }

// Modes returns a copy of the contracted modes frozen at Preshard time.
func (s *Sharded) Modes() []int { return append([]int(nil), s.modes...) }

// ContractPrepared contracts two prepared operands: mode l.Modes()[k] of
// the left tensor is summed against mode r.Modes()[k] of the right (the
// Spec was frozen by the Preshard calls). Either side — or both, including
// the same *Sharded twice for a self-contraction — reuses its cached tile
// shard when the run's tile grid matches, reporting Stats.Build == 0 and
// the ShardReused flags on a full hit.
//
// Options behave exactly as on Contract — WithContext cancels cooperatively
// between pipeline stages and at tile-task boundaries, WithTenant charges
// the run's shards to a tenant account — so prepared and one-shot paths are
// interchangeable call-site by call-site.
func ContractPrepared(l, r *Sharded, opts ...Option) (*Tensor, *Stats, error) {
	o, err := resolveOptions(opts)
	if err != nil {
		return nil, nil, err
	}
	spec := Spec{CtrLeft: l.modes, CtrRight: r.modes}
	if err := spec.Validate(l.t, r.t); err != nil {
		return nil, nil, err
	}
	return contractSharded(l, r, &o, 0)
}

// ContractContext is a convenience wrapper for Contract(l, r, spec,
// append(opts, WithContext(ctx))...) — nothing more. WithContext is the one
// cancellation path through the package: every entry point (Contract,
// SelfContract, ContractPrepared, Einsum, EinsumN) accepts it uniformly,
// checks the context between pipeline stages and at tile-task boundaries,
// and returns ctx.Err() wrapped (errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) hold). The ctx argument is
// appended last, so under the package's last-option-wins convention it
// takes precedence over any WithContext already in opts.
func ContractContext(ctx context.Context, l, r *Tensor, spec Spec, opts ...Option) (*Tensor, *Stats, error) {
	withCtx := make([]Option, 0, len(opts)+1)
	withCtx = append(withCtx, opts...)
	withCtx = append(withCtx, WithContext(ctx))
	return Contract(l, r, spec, withCtx...)
}

// delinScratch recycles the de-linearization scratch buffers across calls;
// together with the engine's output-chunk recycling this keeps repeated
// contractions from reallocating their big flat buffers.
var (
	delinU64 mempool.SlicePool[uint64]
	delinF64 mempool.SlicePool[float64]
)

// contractSharded runs the shared build/execute pipeline over two prepared
// operands and de-linearizes the output. linearize is the time the caller
// spent matrixizing (zero when the operands were prepared earlier — that is
// the amortization).
func contractSharded(l, r *Sharded, o *options, linearize time.Duration) (*Tensor, *Stats, error) {
	st := &Stats{Linearize: linearize}
	tStart := time.Now()

	out, cst, err := core.ContractOperands(l.op, r.op, core.Config{
		Threads:     o.threads,
		TileL:       o.tileL,
		TileR:       o.tileR,
		Accum:       o.accum,
		Platform:    o.platform,
		Counters:    o.counters,
		Rep:         o.rep,
		Kernel:      o.kernel,
		Context:     o.ctx,
		CacheBudget: o.shardBudget,
		Tenant:      o.tenant,
		SpillDir:    o.spillDir,
		SpillBudget: o.spillBudget,
	})
	if err != nil {
		return nil, nil, err
	}
	st.Decision = cst.Decision
	st.TileL, st.TileR = cst.TileL, cst.TileR
	st.NL, st.NR, st.Tasks = cst.NL, cst.NR, cst.Tasks
	st.BlockL, st.BlockR, st.Blocks = cst.BlockL, cst.BlockR, cst.Blocks
	st.Threads = cst.Threads
	st.OutputNNZ = cst.OutputNNZ
	st.Build = cst.BuildTime
	st.Contract = cst.ContractTime
	st.Concat = cst.ConcatTime
	st.ShardReusedL, st.ShardReusedR = cst.ShardReusedL, cst.ShardReusedR
	st.ShardReused = cst.ShardReusedL && cst.ShardReusedR

	// Post-processing: de-linearize output coordinates (timed), with the
	// flat scratch drawn from recycled buffers.
	t0 := time.Now()
	n := out.Len()
	ls := delinU64.Get(n)
	rs := delinU64.Get(n)
	vs := delinF64.Get(n)
	out.ForEach(func(t core.Triple) {
		ls = append(ls, t.L)
		rs = append(rs, t.R)
		vs = append(vs, t.V)
	})
	lDims := make([]uint64, len(l.ext))
	for i, m := range l.ext {
		lDims[i] = l.t.Dims[m]
	}
	rDims := make([]uint64, len(r.ext))
	for i, m := range r.ext {
		rDims[i] = r.t.Dims[m]
	}
	result, ferr := coo.FromPairsP(ls, rs, vs, lDims, rDims, st.Threads) //fastcc:allow poolescapex -- FromPairsP wg.Wait-joins its delinearization goroutines before returning: ls/rs are borrowed for the call, not escaped
	// FromPairsP copies everything it keeps; the triples and scratch can go
	// straight back to their pools.
	core.RecycleOutput(out)
	delinU64.Put(ls)
	delinU64.Put(rs)
	delinF64.Put(vs)
	if ferr != nil {
		return nil, nil, ferr
	}
	st.Delinearize = time.Since(t0)
	st.Total = linearize + time.Since(tStart)
	st.Counters = o.counters.Snapshot()
	return result, st, nil
}
