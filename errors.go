package fastcc

import (
	"errors"

	"fastcc/internal/coo"
)

// Typed errors. Every validation failure out of Contract, ContractPrepared,
// Preshard, Einsum and ParseEinsum wraps one of these sentinels (or is a
// *ShapeError), so callers branch with errors.Is / errors.As instead of
// string matching:
//
//	_, _, err := fastcc.Contract(l, r, spec)
//	var se *fastcc.ShapeError
//	switch {
//	case errors.As(err, &se):
//		log.Printf("left mode %d extent %d vs right mode %d extent %d",
//			se.LeftMode, se.LeftExtent, se.RightMode, se.RightExtent)
//	case errors.Is(err, fastcc.ErrBadSpec):
//		// malformed contraction spec (fix the call, not the data)
//	case errors.Is(err, fastcc.ErrBadOption):
//		// invalid or conflicting Option combination
//	}
var (
	// ErrShapeMismatch matches any structural shape failure: operand
	// validation errors and contracted-extent mismatches (the latter also
	// match as *ShapeError for mode/extent detail).
	ErrShapeMismatch = coo.ErrShape

	// ErrBadSpec matches a contraction Spec that is malformed independently
	// of the operand data: empty or unequal mode lists, out-of-range modes,
	// or a mode contracted twice.
	ErrBadSpec = coo.ErrBadSpec

	// ErrBadExpr matches an einsum expression that does not parse or does
	// not fit the engine's two-operand contraction form (see Einsum for the
	// accepted grammar).
	ErrBadExpr = errors.New("einsum: bad expression")

	// ErrBadOption matches an invalid or conflicting Option combination,
	// reported eagerly by Contract/Preshard before any work runs: negative
	// WithThreads, tile sides beyond 2^31, a non-power-of-two TileR under a
	// forced dense accumulator, or a dense tile exceeding the addressable
	// positions.
	ErrBadOption = errors.New("fastcc: bad option")
)

// ShapeError reports a contracted-extent mismatch between the two operands,
// carrying mode/extent detail for errors.As callers. It unwraps to
// ErrShapeMismatch.
type ShapeError = coo.ShapeError
