// Quantum-chemistry example: the three DLPNO-CCSD four-center integral
// assemblies of the paper (ovov, vvoo, vvov) on a synthetic Guanine-like
// molecule. Three-center integral tensors TE_ov/TE_vv/TE_oo are contracted
// over the auxiliary fitting index k to produce 4-mode integral tensors.
//
//	go run ./examples/quantumchem [-scale 0.25] [-molecule guanine]
package main

import (
	"flag"
	"fmt"
	"log"

	"fastcc"
	"fastcc/internal/gen"
)

func main() {
	scale := flag.Float64("scale", 0.25, "orbital-space scale (1 = full preset)")
	name := flag.String("molecule", "guanine", "molecule: guanine or caffeine")
	flag.Parse()

	mol, err := gen.MoleculeByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	m := mol.Scaled(*scale)
	fmt.Printf("%s @ scale %g: nocc=%d nvirt=%d naux=%d\n\n", m.Name, *scale, m.NOcc, m.NVirt, m.NAux)

	for _, kind := range gen.QCKinds {
		l, r, spec, err := m.Contraction(kind)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: L=%v (density %.3g) x R=%v (density %.3g)\n",
			kind, l.Dims, l.Density(), r.Dims, r.Density())
		out, stats, err := fastcc.Contract(l, r,
			fastcc.Spec{CtrLeft: spec.CtrLeft, CtrRight: spec.CtrRight})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  -> Int%v nnz=%d accumulator=%s tile=%d tasks=%d time=%v\n\n",
			out.Dims, out.NNZ(), stats.Decision.Kind, stats.TileL, stats.Tasks, stats.Total)
	}

	fmt.Println("TE_vv slices are dense (diffuse virtuals) while TE_oo is very sparse —")
	fmt.Println("the density spread that drives the paper's accumulator model (Table 3).")
}
