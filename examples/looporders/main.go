// Loop-order analysis example: reproduce the paper's Section 3 analysis
// empirically. The same contraction runs under the contraction-inner (CI),
// contraction-middle (CM) and contraction-outer (CO) loop orders with
// instrumented engines, printing hash queries, retrieved data volume and
// accumulator footprint — the three columns of paper Table 1.
//
//	go run ./examples/looporders
package main

import (
	"fmt"
	"log"

	"fastcc/internal/baselines"
	"fastcc/internal/gen"
	"fastcc/internal/metrics"
)

func main() {
	const extL, extR, ctrC, nnz = 512, 512, 128, 8000
	l, err := gen.UniformMatrix(extL, ctrC, nnz, 1, gen.Options{})
	if err != nil {
		log.Fatal(err)
	}
	r, err := gen.UniformMatrix(extR, ctrC, nnz, 2, gen.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contraction: O[%d x %d] = L[%d x %d] · R[%d x %d], nnz=%d each\n\n",
		extL, extR, extL, ctrC, ctrC, extR, nnz)

	var ci, cm, co metrics.Counters
	if _, err := baselines.HashCI(l, r, &ci); err != nil {
		log.Fatal(err)
	}
	if _, err := baselines.SpartaCM(l, r, 1, &cm); err != nil {
		log.Fatal(err)
	}
	if _, err := baselines.UntiledCO(l, r, &co); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %12s %14s %12s\n", "scheme", "queries", "data volume", "ws (words)")
	for _, row := range []struct {
		name string
		s    metrics.Snapshot
	}{
		{"CI", ci.Snapshot()},
		{"CM", cm.Snapshot()},
		{"CO", co.Snapshot()},
	} {
		fmt.Printf("%-8s %12d %14d %12d\n", row.name, row.s.Queries, row.s.Volume, row.s.WorkspaceWords)
	}

	fmt.Println("\nCO touches each input nonzero exactly once but needs an L·R workspace;")
	fmt.Println("FaSTCC keeps CO's minimal traffic while tiling the workspace into cache")
	fmt.Println("(paper Sections 3.4-3.5).")
}
