// FROSTT example: synthesize the Chicago-crime tensor at reduced scale and
// run the three self-contractions of the paper's evaluation (chicago-0,
// chicago-01, chicago-123), printing the model's decisions and timings.
//
//	go run ./examples/frostt [-scale 0.01]
package main

import (
	"flag"
	"fmt"
	"log"

	"fastcc"
	"fastcc/internal/gen"
)

func main() {
	scale := flag.Float64("scale", 0.01, "workload scale (1 = paper-sized, ~5.3M nonzeros)")
	flag.Parse()

	spec, err := gen.FrosttByName("chicago")
	if err != nil {
		log.Fatal(err)
	}
	scaled := spec.Scaled(*scale)
	tensor, err := scaled.Generate(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chicago @ scale %g: dims=%v nnz=%d density=%.3g\n\n",
		*scale, tensor.Dims, tensor.NNZ(), tensor.Density())

	// The paper contracts the tensor with itself over these mode sets; the
	// subscripts name the contracted modes (Section 6.1).
	for _, modes := range spec.Contractions {
		out, stats, err := fastcc.SelfContract(tensor, modes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s output: order=%d nnz=%-9d accumulator=%-6s tile=%-6d time=%v\n",
			gen.ContractionName("chicago", modes),
			out.Order(), out.NNZ(), stats.Decision.Kind, stats.TileL, stats.Total)
	}

	fmt.Println("\nContracting more modes shrinks the output order (3+3, 2+2, 1+1 external")
	fmt.Println("modes) and changes the output density — watch the accumulator choice.")
}
