// Tensor-network example: evaluate a multi-tensor Einstein expression as a
// sequence of pairwise FaSTCC contractions with model-driven greedy
// ordering (the sparse-tensor-network setting of the paper's related work,
// Section 7 — CoNST, SparseLNR).
//
//	go run ./examples/network
package main

import (
	"fmt"
	"log"

	"fastcc"
	"fastcc/internal/gen"
)

func main() {
	// A chain network T1[i,k] · T2[k,l] · T3[l,m] → O[i,m], with a large
	// middle tensor: the planner should contract a small end first.
	t1, err := gen.Uniform([]uint64{300, 200}, 3000, 1, gen.Options{})
	if err != nil {
		log.Fatal(err)
	}
	t2, err := gen.Uniform([]uint64{200, 400}, 20000, 2, gen.Options{})
	if err != nil {
		log.Fatal(err)
	}
	t3, err := gen.Uniform([]uint64{400, 100}, 2000, 3, gen.Options{})
	if err != nil {
		log.Fatal(err)
	}

	out, plan, err := fastcc.EinsumN("ik,kl,lm->im",
		[]*fastcc.Tensor{t1, t2, t3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("expression: ik,kl,lm->im")
	fmt.Println("chosen plan:", plan)
	for i, s := range plan.Steps {
		fmt.Printf("  step %d: %s × %s -> %s  (%d nnz, accumulator=%s, %v)\n",
			i+1, s.Left, s.Right, s.Result, s.NNZ, s.Stats.Decision.Kind, s.Stats.Total)
	}
	fmt.Printf("result: %v\n", out)

	// The same expression with the output transposed — EinsumN permutes
	// the final mode order for free (header-level transpose).
	outT, _, err := fastcc.EinsumN("ik,kl,lm->mi",
		[]*fastcc.Tensor{t1, t2, t3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transposed result dims: %v\n", outT.Dims)
}
