// Quickstart: build two small sparse tensors, contract them with FaSTCC,
// and inspect the result and the run statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fastcc"
)

func main() {
	// A 3-mode tensor L[i,j,k] with extents 4x3x5 and a few nonzeros.
	l := fastcc.NewTensor([]uint64{4, 3, 5}, 8)
	l.Append([]uint64{0, 1, 2}, 1.5)
	l.Append([]uint64{1, 0, 2}, -2.0)
	l.Append([]uint64{2, 2, 4}, 3.0)
	l.Append([]uint64{3, 1, 0}, 0.5)

	// A 2-mode tensor R[k,m] with extents 5x6.
	r := fastcc.NewTensor([]uint64{5, 6}, 8)
	r.Append([]uint64{2, 0}, 4.0)
	r.Append([]uint64{2, 5}, 1.0)
	r.Append([]uint64{4, 3}, -1.0)
	r.Append([]uint64{0, 1}, 7.0)

	// O[i,j,m] = Σ_k L[i,j,k]·R[k,m]: contract mode 2 of L with mode 0
	// of R. The output's modes are L's externals (i, j) then R's (m).
	out, stats, err := fastcc.Contract(l, r,
		fastcc.Spec{CtrLeft: []int{2}, CtrRight: []int{0}},
		fastcc.WithMetrics(),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("output: %v\n", out)
	coords := make([]uint64, out.Order())
	for i := 0; i < out.NNZ(); i++ {
		fmt.Printf("  O%v = %g\n", out.CoordsOf(i, coords), out.Vals[i])
	}

	fmt.Printf("\nmodel decision: accumulator=%s tile=%dx%d (estimated output density %.3g)\n",
		stats.Decision.Kind, stats.TileL, stats.TileR, stats.Decision.PNonzero)
	fmt.Printf("phases: linearize=%v build=%v contract=%v concat=%v delinearize=%v\n",
		stats.Linearize, stats.Build, stats.Contract, stats.Concat, stats.Delinearize)
	fmt.Printf("counters: %v\n", stats.Counters)
}
