// Package fastcc is a pure-Go implementation of FaSTCC — Fast Sparse
// Tensor Contractions on CPUs (Raje et al., SC '25).
//
// FaSTCC contracts two sparse tensors in COO format:
//
//	O[ext_L, ext_R] = Σ_c  L[ext_L, c] · R[c, ext_R]
//
// using a 2D-tiled contraction-index-outer scheme: the linearized output
// index space is partitioned into tiles, the inputs are sharded into
// per-tile open-addressing hash tables keyed by the contraction index, and
// tile–tile contractions run as dynamically scheduled parallel tasks. A
// probabilistic model picks a dense or sparse accumulator per contraction
// and sizes tiles to the last-level cache.
//
// Quick start:
//
//	out, stats, err := fastcc.Contract(l, r, fastcc.Spec{
//		CtrLeft:  []int{2},        // contract mode 2 of l ...
//		CtrRight: []int{0},        // ... against mode 0 of r
//	})
//
// The output tensor's modes are the left operand's external (uncontracted)
// modes followed by the right operand's, in their original order.
package fastcc

import (
	"fmt"
	"time"

	"fastcc/internal/coo"
	"fastcc/internal/core"
	"fastcc/internal/metrics"
	"fastcc/internal/model"
)

// Tensor is an N-mode sparse tensor in COO format (see coo.Tensor for the
// invariants). Construct with NewTensor and Append, or parse with ReadTNS.
type Tensor = coo.Tensor

// Spec names the contracted modes: mode CtrLeft[k] of the left operand is
// summed against mode CtrRight[k] of the right operand.
type Spec = coo.Spec

// Platform describes the machine parameters (cores, LLC bytes, word size)
// the tile-size model uses. See Desktop8, Server64 and AutoPlatform.
type Platform = model.Platform

// AccumKind selects the output tile accumulator (dense or sparse).
type AccumKind = model.AccumKind

// Accumulator kinds.
const (
	AccumAuto   = model.AccumAuto
	AccumDense  = model.AccumDense
	AccumSparse = model.AccumSparse
)

// Platform profiles matching the paper's evaluation machines, plus the
// host-derived default.
var (
	Desktop8 = model.Desktop8
	Server64 = model.Server64
)

// AutoPlatform returns a platform profile for the current machine.
func AutoPlatform() Platform { return model.Auto() }

// NewTensor returns an empty tensor with the given mode extents.
func NewTensor(dims []uint64, capHint int) *Tensor { return coo.New(dims, capHint) }

// Stats reports everything one contraction run decided and measured.
type Stats struct {
	// Decision is the probabilistic model's output (densities, expected
	// tile nonzeros, accumulator kind, tile sizes).
	Decision model.Decision
	// TileL, TileR are the tile sizes actually used.
	TileL, TileR uint64
	// NL, NR are the tile-grid dimensions; Tasks the executed tile pairs.
	NL, NR, Tasks int
	// Threads is the worker count used.
	Threads int
	// OutputNNZ is the number of nonzeros in the output.
	OutputNNZ int

	// Phase timings. Total = Linearize + Build + Contract + Concat +
	// Delinearize; linearization and delinearization are included in the
	// measured time exactly as in the paper.
	Linearize   time.Duration
	Build       time.Duration
	Contract    time.Duration
	Concat      time.Duration
	Delinearize time.Duration
	Total       time.Duration

	// Counters holds data-access statistics when metrics were requested.
	Counters metrics.Snapshot
}

// String renders the stats on two lines for logs.
func (s *Stats) String() string {
	return fmt.Sprintf(
		"fastcc: accumulator=%s tile=%dx%d grid=%dx%d tasks=%d threads=%d out_nnz=%d\n"+
			"fastcc: total=%v (linearize=%v build=%v contract=%v concat=%v delinearize=%v)",
		s.Decision.Kind, s.TileL, s.TileR, s.NL, s.NR, s.Tasks, s.Threads, s.OutputNNZ,
		s.Total, s.Linearize, s.Build, s.Contract, s.Concat, s.Delinearize)
}

// InputRep selects the input-tile representation: the paper's hash tables
// (RepHash, default) or radix-sorted grouped arrays with merge
// co-iteration (RepSorted, an engineering ablation).
type InputRep = core.InputRep

// Input representations.
const (
	RepHash   = core.RepHash
	RepSorted = core.RepSorted
)

// options is the resolved option set.
type options struct {
	threads      int
	tileL, tileR uint64
	accum        model.AccumKind
	platform     model.Platform
	counters     *metrics.Counters
	rep          core.InputRep
}

// Option configures Contract.
type Option func(*options)

// WithThreads sets the worker count (default: GOMAXPROCS).
func WithThreads(n int) Option { return func(o *options) { o.threads = n } }

// WithTileSize overrides the model's tile sizes. With a dense accumulator
// tr must be a power of two. Zero leaves a dimension model-chosen.
func WithTileSize(tl, tr uint64) Option {
	return func(o *options) { o.tileL, o.tileR = tl, tr }
}

// WithAccumulator forces a dense or sparse tile accumulator.
func WithAccumulator(k AccumKind) Option { return func(o *options) { o.accum = k } }

// WithPlatform sets the platform profile used by the tile-size model.
func WithPlatform(p Platform) Option { return func(o *options) { o.platform = p } }

// WithMetrics enables data-access counter collection into Stats.Counters.
func WithMetrics() Option {
	return func(o *options) { o.counters = &metrics.Counters{} }
}

// WithInputRep selects the input-tile representation (default RepHash).
func WithInputRep(rep InputRep) Option { return func(o *options) { o.rep = rep } }

// Contract contracts l and r per spec and returns the output tensor (in
// COO, sorted order unspecified, duplicates absent) together with run
// statistics.
func Contract(l, r *Tensor, spec Spec, opts ...Option) (*Tensor, *Stats, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	if err := spec.Validate(l, r); err != nil {
		return nil, nil, err
	}
	if err := l.Validate(); err != nil {
		return nil, nil, fmt.Errorf("left operand: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, nil, fmt.Errorf("right operand: %w", err)
	}

	st := &Stats{}
	tStart := time.Now()

	// Pre-processing: linearize mode groups (timed, per the paper).
	t0 := time.Now()
	extL := coo.ExternalModes(l.Order(), spec.CtrLeft)
	extR := coo.ExternalModes(r.Order(), spec.CtrRight)
	lm, err := l.Matrixize(extL, spec.CtrLeft)
	if err != nil {
		return nil, nil, err
	}
	rm, err := r.Matrixize(extR, spec.CtrRight)
	if err != nil {
		return nil, nil, err
	}
	st.Linearize = time.Since(t0)

	out, cst, err := core.Contract(lm, rm, core.Config{
		Threads:  o.threads,
		TileL:    o.tileL,
		TileR:    o.tileR,
		Accum:    o.accum,
		Platform: o.platform,
		Counters: o.counters,
		Rep:      o.rep,
	})
	if err != nil {
		return nil, nil, err
	}
	st.Decision = cst.Decision
	st.TileL, st.TileR = cst.TileL, cst.TileR
	st.NL, st.NR, st.Tasks = cst.NL, cst.NR, cst.Tasks
	st.Threads = cst.Threads
	st.OutputNNZ = cst.OutputNNZ
	st.Build = cst.BuildTime
	st.Contract = cst.ContractTime
	st.Concat = cst.ConcatTime

	// Post-processing: de-linearize output coordinates (timed).
	t0 = time.Now()
	n := out.Len()
	ls := make([]uint64, 0, n)
	rs := make([]uint64, 0, n)
	vs := make([]float64, 0, n)
	out.ForEach(func(t core.Triple) {
		ls = append(ls, t.L)
		rs = append(rs, t.R)
		vs = append(vs, t.V)
	})
	lDims := make([]uint64, len(extL))
	for i, m := range extL {
		lDims[i] = l.Dims[m]
	}
	rDims := make([]uint64, len(extR))
	for i, m := range extR {
		rDims[i] = r.Dims[m]
	}
	result, err := coo.FromPairsP(ls, rs, vs, lDims, rDims, st.Threads)
	if err != nil {
		return nil, nil, err
	}
	st.Delinearize = time.Since(t0)
	st.Total = time.Since(tStart)
	st.Counters = o.counters.Snapshot()
	return result, st, nil
}

// SelfContract contracts a tensor with itself over the given modes — the
// FROSTT evaluation pattern (e.g. Chicago 01 contracts modes 0 and 1 of the
// Chicago tensor against the same modes of a second copy).
func SelfContract(t *Tensor, modes []int, opts ...Option) (*Tensor, *Stats, error) {
	spec := Spec{
		CtrLeft:  append([]int(nil), modes...),
		CtrRight: append([]int(nil), modes...),
	}
	return Contract(t, t, spec, opts...)
}
