// Package fastcc is a pure-Go implementation of FaSTCC — Fast Sparse
// Tensor Contractions on CPUs (Raje et al., SC '25).
//
// FaSTCC contracts two sparse tensors in COO format:
//
//	O[ext_L, ext_R] = Σ_c  L[ext_L, c] · R[c, ext_R]
//
// using a 2D-tiled contraction-index-outer scheme: the linearized output
// index space is partitioned into tiles, the inputs are sharded into
// per-tile open-addressing hash tables keyed by the contraction index, and
// tile–tile contractions run as dynamically scheduled parallel tasks. A
// probabilistic model picks a dense or sparse accumulator per contraction
// and sizes tiles to the last-level cache.
//
// Quick start:
//
//	out, stats, err := fastcc.Contract(l, r, fastcc.Spec{
//		CtrLeft:  []int{2},        // contract mode 2 of l ...
//		CtrRight: []int{0},        // ... against mode 0 of r
//	})
//
// The output tensor's modes are the left operand's external (uncontracted)
// modes followed by the right operand's, in their original order.
package fastcc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fastcc/internal/coo"
	"fastcc/internal/core"
	"fastcc/internal/metrics"
	"fastcc/internal/model"
)

// Tensor is an N-mode sparse tensor in COO format (see coo.Tensor for the
// invariants). Construct with NewTensor and Append, or parse with ReadTNS.
type Tensor = coo.Tensor

// Spec names the contracted modes: mode CtrLeft[k] of the left operand is
// summed against mode CtrRight[k] of the right operand.
type Spec = coo.Spec

// Platform describes the machine parameters (cores, LLC bytes, word size)
// the tile-size model uses. See Desktop8, Server64 and AutoPlatform.
type Platform = model.Platform

// AccumKind selects the output tile accumulator (dense or sparse).
type AccumKind = model.AccumKind

// Accumulator kinds.
const (
	AccumAuto   = model.AccumAuto
	AccumDense  = model.AccumDense
	AccumSparse = model.AccumSparse
)

// Platform profiles matching the paper's evaluation machines, plus the
// host-derived default.
var (
	Desktop8 = model.Desktop8
	Server64 = model.Server64
)

// AutoPlatform returns a platform profile for the current machine.
func AutoPlatform() Platform { return model.Auto() }

// NewTensor returns an empty tensor with the given mode extents.
func NewTensor(dims []uint64, capHint int) *Tensor { return coo.New(dims, capHint) }

// Stats reports everything one contraction run decided and measured.
type Stats struct {
	// Decision is the probabilistic model's output (densities, expected
	// tile nonzeros, accumulator kind, tile sizes).
	Decision model.Decision
	// TileL, TileR are the tile sizes actually used.
	TileL, TileR uint64
	// NL, NR are the tile-grid dimensions; Tasks the executed tile pairs.
	NL, NR, Tasks int
	// BlockL, BlockR are the LLC super-block sides (in non-empty tiles) of
	// the contract schedule; Blocks is the block-task count workers claimed.
	BlockL, BlockR, Blocks int
	// Threads is the worker count used.
	Threads int
	// OutputNNZ is the number of nonzeros in the output.
	OutputNNZ int

	// ShardReusedL/ShardReusedR report that the operand's tile shard was
	// served from a *Sharded cache instead of being rebuilt; ShardReused is
	// the full hit (both sides), in which case Build == 0.
	ShardReusedL, ShardReusedR bool
	ShardReused                bool

	// Phase timings. Total = Linearize + Build + Contract + Concat +
	// Delinearize; linearization and delinearization are included in the
	// measured time exactly as in the paper.
	Linearize   time.Duration
	Build       time.Duration
	Contract    time.Duration
	Concat      time.Duration
	Delinearize time.Duration
	Total       time.Duration

	// Counters holds data-access statistics when metrics were requested.
	Counters metrics.Snapshot
}

// String renders the stats on two lines for logs.
func (s *Stats) String() string {
	reuse := ""
	switch {
	case s.ShardReused:
		reuse = " shards=reused"
	case s.ShardReusedL:
		reuse = " shards=reusedL"
	case s.ShardReusedR:
		reuse = " shards=reusedR"
	}
	return fmt.Sprintf(
		"fastcc: accumulator=%s tile=%dx%d grid=%dx%d tasks=%d block=%dx%d threads=%d out_nnz=%d%s\n"+
			"fastcc: total=%v (linearize=%v build=%v contract=%v concat=%v delinearize=%v)",
		s.Decision.Kind, s.TileL, s.TileR, s.NL, s.NR, s.Tasks, s.BlockL, s.BlockR, s.Threads, s.OutputNNZ, reuse,
		s.Total, s.Linearize, s.Build, s.Contract, s.Concat, s.Delinearize)
}

// InputRep selects the input-tile representation: the paper's hash tables
// (RepHash, default) or radix-sorted grouped arrays with merge
// co-iteration (RepSorted, an engineering ablation).
type InputRep = core.InputRep

// Input representations.
const (
	RepHash   = core.RepHash
	RepSorted = core.RepSorted
)

// KernelID names a tile microkernel: the specialized contract-phase inner
// loop for one (representation, accumulator) combination. KernelAuto (the
// default) derives the specialization from the run's representation and
// accumulator kind; KernelGeneric forces the pre-specialization loop — the
// baseline the hotpath experiment measures the family against.
type KernelID = model.KernelID

// Tile microkernels.
const (
	KernelAuto         = model.KernelAuto
	KernelGeneric      = model.KernelGeneric
	KernelHashDense    = model.KernelHashDense
	KernelHashSparse   = model.KernelHashSparse
	KernelSortedDense  = model.KernelSortedDense
	KernelSortedSparse = model.KernelSortedSparse
)

// options is the resolved option set.
type options struct {
	threads      int
	tileL, tileR uint64
	accum        model.AccumKind
	platform     model.Platform
	counters     *metrics.Counters
	rep          core.InputRep
	kernel       model.KernelID
	ctx          context.Context
	shardBudget  int64
	tenant       string
	tenantSet    bool
	spillDir     string
	spillBudget  int64
}

// resolveOptions applies the options in order and validates the combination
// eagerly, so a bad call fails with ErrBadOption before any work runs.
func resolveOptions(opts []Option) (options, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	if err := o.validate(); err != nil {
		return options{}, err
	}
	return o, nil
}

// validate reports invalid or conflicting option combinations. Checks that
// depend on operand data (zero extents, model fallbacks) stay in the engine;
// everything knowable from the options alone is rejected here.
func (o *options) validate() error {
	if o.threads < 0 {
		return fmt.Errorf("%w: WithThreads(%d) is negative (0 means GOMAXPROCS)", ErrBadOption, o.threads)
	}
	if o.tileL > 1<<31 || o.tileR > 1<<31 {
		return fmt.Errorf("%w: WithTileSize(%d, %d) exceeds the 2^31 tile-side bound", ErrBadOption, o.tileL, o.tileR)
	}
	switch o.accum {
	case model.AccumAuto, model.AccumDense, model.AccumSparse:
	default:
		return fmt.Errorf("%w: WithAccumulator(%d) is not a known accumulator kind", ErrBadOption, int(o.accum))
	}
	switch o.rep {
	case core.RepHash, core.RepSorted:
	default:
		return fmt.Errorf("%w: WithInputRep(%d) is not a known input representation", ErrBadOption, int(o.rep))
	}
	switch o.kernel {
	case model.KernelAuto, model.KernelGeneric, model.KernelHashDense,
		model.KernelHashSparse, model.KernelSortedDense, model.KernelSortedSparse:
	default:
		return fmt.Errorf("%w: WithKernel(%d) is not a known microkernel", ErrBadOption, int(o.kernel))
	}
	// Rep/accumulator conflicts knowable from the options alone; a kernel
	// against a model-chosen (Auto) accumulator is checked by the engine
	// after the model decides.
	sortedKernel := o.kernel == model.KernelSortedDense || o.kernel == model.KernelSortedSparse
	hashKernel := o.kernel == model.KernelHashDense || o.kernel == model.KernelHashSparse
	if sortedKernel && o.rep != core.RepSorted {
		return fmt.Errorf("%w: WithKernel(%v) needs WithInputRep(RepSorted)", ErrBadOption, o.kernel)
	}
	if hashKernel && o.rep != core.RepHash {
		return fmt.Errorf("%w: WithKernel(%v) conflicts with WithInputRep(RepSorted)", ErrBadOption, o.kernel)
	}
	denseKernel := o.kernel == model.KernelHashDense || o.kernel == model.KernelSortedDense
	sparseKernel := o.kernel == model.KernelHashSparse || o.kernel == model.KernelSortedSparse
	if denseKernel && o.accum == model.AccumSparse {
		return fmt.Errorf("%w: WithKernel(%v) conflicts with WithAccumulator(AccumSparse)", ErrBadOption, o.kernel)
	}
	if sparseKernel && o.accum == model.AccumDense {
		return fmt.Errorf("%w: WithKernel(%v) conflicts with WithAccumulator(AccumDense)", ErrBadOption, o.kernel)
	}
	if o.accum == model.AccumDense && o.tileR != 0 && o.tileR&(o.tileR-1) != 0 {
		return fmt.Errorf("%w: WithAccumulator(AccumDense) conflicts with WithTileSize tr=%d (dense accumulation needs a power-of-two right tile side)", ErrBadOption, o.tileR)
	}
	if o.accum == model.AccumDense && o.tileL != 0 && o.tileR != 0 && o.tileL*o.tileR > 1<<31 {
		return fmt.Errorf("%w: WithAccumulator(AccumDense) conflicts with WithTileSize(%d, %d) (dense tile exceeds addressable positions)", ErrBadOption, o.tileL, o.tileR)
	}
	if o.tenantSet {
		if err := validTenant(o.tenant); err != nil {
			return fmt.Errorf("%w: WithTenant(%q): %v", ErrBadOption, o.tenant, err)
		}
	}
	if o.spillBudget < 0 {
		return fmt.Errorf("%w: WithSpillBudget(%d) is negative (0 means unbounded)", ErrBadOption, o.spillBudget)
	}
	if o.spillBudget > 0 && o.spillDir == "" {
		return fmt.Errorf("%w: WithSpillBudget needs WithSpillDir on the same run", ErrBadOption)
	}
	return nil
}

// tenantMaxLen bounds tenant IDs so they stay usable as HTTP header values
// and map keys without pathological memory cost.
const tenantMaxLen = 128

// validTenant checks the tenant-ID grammar shared by WithTenant,
// SetTenantQuota and the server: 1–128 bytes of printable ASCII with no
// spaces, so an ID travels unmangled through headers, logs and URLs.
func validTenant(id string) error {
	if id == "" {
		return errors.New("tenant ID is empty")
	}
	if len(id) > tenantMaxLen {
		return fmt.Errorf("tenant ID exceeds %d bytes", tenantMaxLen)
	}
	for i := 0; i < len(id); i++ {
		if c := id[i]; c <= 0x20 || c >= 0x7f {
			return fmt.Errorf("tenant ID byte %d (0x%02x) is not printable ASCII", i, c)
		}
	}
	return nil
}

// Option configures Contract.
type Option func(*options)

// WithThreads sets the worker count (default: GOMAXPROCS).
func WithThreads(n int) Option { return func(o *options) { o.threads = n } }

// WithTileSize overrides the model's tile sizes. With a dense accumulator
// tr must be a power of two. Zero leaves a dimension model-chosen.
func WithTileSize(tl, tr uint64) Option {
	return func(o *options) { o.tileL, o.tileR = tl, tr }
}

// WithAccumulator forces a dense or sparse tile accumulator.
func WithAccumulator(k AccumKind) Option { return func(o *options) { o.accum = k } }

// WithPlatform sets the platform profile used by the tile-size model.
func WithPlatform(p Platform) Option { return func(o *options) { o.platform = p } }

// WithMetrics enables data-access counter collection into Stats.Counters.
func WithMetrics() Option {
	return func(o *options) { o.counters = &metrics.Counters{} }
}

// WithInputRep selects the input-tile representation (default RepHash).
func WithInputRep(rep InputRep) Option { return func(o *options) { o.rep = rep } }

// WithKernel forces the contract-phase tile microkernel (default KernelAuto,
// which derives the specialized kernel from the representation and the
// accumulator kind). KernelGeneric is always accepted and runs the
// pre-specialization co-iteration loop — useful as a measurement baseline; a
// specialized kernel must match the run's representation and accumulator or
// the call fails (eagerly with ErrBadOption when the conflict is knowable
// from the options, otherwise at plan time).
func WithKernel(k KernelID) Option { return func(o *options) { o.kernel = k } }

// WithContext attaches a context for cooperative cancellation: the run
// checks it between pipeline stages and at tile-task boundaries and returns
// the context's error wrapped. See also ContractContext.
func WithContext(ctx context.Context) Option { return func(o *options) { o.ctx = ctx } }

// WithShardBudget bounds the process-wide cache of built tile shards (the
// tables Preshard/ContractPrepared reuse across runs) to the given byte
// budget: when resident shards exceed it, the least recently used unpinned
// shards are evicted and their storage recycled; shards pinned by in-flight
// contractions are never touched. bytes > 0 sets an explicit budget,
// bytes < 0 disables eviction entirely, and 0 (the default) derives a budget
// from the platform's last-level cache size. The budget is applied at the
// start of the run carrying this option and stays in force until another run
// sets a different one.
func WithShardBudget(bytes int64) Option { return func(o *options) { o.shardBudget = bytes } }

// WithSpillDir enables the shard cache's disk tier for this run and every
// later one: when the byte budget (WithShardBudget) or a tenant quota evicts
// a cold shard, its tables are serialized into a compact checksummed file
// under dir instead of being thrown away, and the next contraction needing
// that shard reads the file back — skipping the full re-linearize + re-hash
// rebuild. Every way a read-back can go wrong (missing file, truncation,
// checksum mismatch, stale generation stamp) degrades to a plain rebuild
// with a typed fault counter, never a wrong answer.
//
// Like WithShardBudget the setting is process-wide and sticky: it takes
// effect at the start of the run carrying the option and stays in force
// until ConfigureSpill changes it. Files are deleted as their shards reload
// or drop; use ConfigureSpill with persist=true for a warm-restart cache
// that outlives the process.
func WithSpillDir(dir string) Option { return func(o *options) { o.spillDir = dir } }

// WithSpillBudget bounds the spill directory's on-disk bytes; the directory
// makes room oldest-first, and a write that still cannot fit falls back to
// plain eviction. Zero (the default) means unbounded. Requires WithSpillDir
// on the same run.
func WithSpillBudget(bytes int64) Option { return func(o *options) { o.spillBudget = bytes } }

// ConfigureSpill sets the process-wide spill tier directly: dir enables
// spill-to-disk for shard-cache evictions (empty string disables it),
// budget bounds the directory's bytes (<= 0 unbounded), and persist selects
// keep-mode — reloaded or dropped shards leave their files on disk as
// adoptable orphans, so a restarted process pointed at the same directory
// warms its cache from them instead of rebuilding (fastcc-serve's restart
// path). Opening a directory scavenges anonymous and corrupt leftovers.
func ConfigureSpill(dir string, budget int64, persist bool) error {
	return core.ConfigureSpill(dir, budget, persist)
}

// SpillFaultStats counts spill read-back and write failures by typed cause;
// every counted fault corresponds to one graceful fallback to rebuild.
type SpillFaultStats = core.SpillFaultSnapshot

// SpillFaults reports the process-wide spill fault counters.
func SpillFaults() SpillFaultStats { return core.SpillFaults() }

// WithTenant charges every shard this run builds or reuses to the named
// tenant's cache account: the shard bytes count against the tenant's quota
// (SetTenantQuota), quota overruns are settled by evicting the tenant's own
// cold shards when the run finishes, and the global eviction policy prefers
// over-quota tenants' shards — the fairness mechanism multi-tenant services
// (fastcc-serve) need so one tenant cannot monopolize the shard cache.
//
// Tenant IDs are 1–128 bytes of printable ASCII without spaces; anything
// else is rejected eagerly with ErrBadOption.
func WithTenant(id string) Option {
	return func(o *options) { o.tenant, o.tenantSet = id, true }
}

// CacheStats is a point-in-time view of the shard cache: hit/miss/eviction
// counters plus resident and pinned byte gauges. See ShardCacheStats.
type CacheStats = metrics.CacheSnapshot

// ShardCacheStats reports the process-wide shard cache's lifecycle counters
// and resident-state gauges — the observability hook for tuning
// WithShardBudget.
func ShardCacheStats() CacheStats { return core.CacheStats() }

// TenantStats is a point-in-time view of one tenant's shard-cache
// accounting: quota, resident charge, pinned subset and per-tenant
// hit/miss/eviction counters. See TenantCacheStats.
type TenantStats = metrics.TenantSnapshot

// SetTenantQuota sets the shard-cache quota for tenant id in bytes and
// enforces it immediately against the tenant's cold shards; bytes <= 0
// removes the quota. The quota lives inside the global WithShardBudget
// budget — it bounds one tenant's slice, it does not grow the whole.
// Invalid tenant IDs are rejected with ErrBadOption.
func SetTenantQuota(id string, bytes int64) error {
	if err := validTenant(id); err != nil {
		return fmt.Errorf("%w: SetTenantQuota(%q): %v", ErrBadOption, id, err)
	}
	core.SetTenantQuota(id, bytes)
	return nil
}

// TenantCacheStats reports tenant id's shard-cache accounting; ok is false
// when no run was ever tagged with the ID and no quota was set.
func TenantCacheStats(id string) (stats TenantStats, ok bool) {
	return core.TenantStats(id)
}

// AllTenantCacheStats reports every known tenant's accounting, sorted by ID.
func AllTenantCacheStats() []TenantStats { return core.AllTenantStats() }

// DropTenant releases every accounting claim tenant id holds and deletes
// its account: shards shared with other tenants stay resident, shards only
// this tenant kept warm are evicted. Call when a tenant disconnects for
// good; its next tagged run simply re-opens the account. Invalid tenant IDs
// are rejected with ErrBadOption.
func DropTenant(id string) error {
	if err := validTenant(id); err != nil {
		return fmt.Errorf("%w: DropTenant(%q): %v", ErrBadOption, id, err)
	}
	core.DropTenant(id)
	return nil
}

// Contract contracts l and r per spec and returns the output tensor (in
// COO, sorted order unspecified, duplicates absent) together with run
// statistics. Each call linearizes and shards its operands transiently; to
// amortize that work across repeated contractions, Preshard the operands
// once and use ContractPrepared.
func Contract(l, r *Tensor, spec Spec, opts ...Option) (*Tensor, *Stats, error) {
	o, err := resolveOptions(opts)
	if err != nil {
		return nil, nil, err
	}
	if err := spec.Validate(l, r); err != nil {
		return nil, nil, err
	}
	if err := l.Validate(); err != nil {
		return nil, nil, fmt.Errorf("left operand: %w", err)
	}
	if r != l {
		if err := r.Validate(); err != nil {
			return nil, nil, fmt.Errorf("right operand: %w", err)
		}
	}

	// Pre-processing: linearize mode groups (timed, per the paper). A
	// self-contraction (same tensor, same contracted modes) shares one
	// prepared operand so it is linearized and sharded exactly once.
	t0 := time.Now()
	lsh, err := preshardValidated(l, spec.CtrLeft, "")
	if err != nil {
		return nil, nil, err
	}
	// The operands are transient — nothing will ever reuse their shards, so
	// drop them on the way out rather than letting dead tables occupy the
	// shard-cache budget until eviction notices.
	defer lsh.Drop()
	rsh := lsh
	if !(r == l && sameModes(spec.CtrLeft, spec.CtrRight)) {
		rsh, err = preshardValidated(r, spec.CtrRight, "")
		if err != nil {
			return nil, nil, err
		}
		defer rsh.Drop()
	}
	return contractSharded(lsh, rsh, &o, time.Since(t0))
}

// sameModes reports whether two contracted-mode lists are identical
// (same modes, same pairing order).
func sameModes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SelfContract contracts a tensor with itself over the given modes — the
// FROSTT evaluation pattern (e.g. Chicago 01 contracts modes 0 and 1 of the
// Chicago tensor against the same modes of a second copy).
func SelfContract(t *Tensor, modes []int, opts ...Option) (*Tensor, *Stats, error) {
	spec := Spec{
		CtrLeft:  append([]int(nil), modes...),
		CtrRight: append([]int(nil), modes...),
	}
	return Contract(t, t, spec, opts...)
}
