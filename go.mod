module fastcc

go 1.22
