package fastcc

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"fastcc/internal/ref"
)

func TestEinsumNChain(t *testing.T) {
	// O[i,m] = Σ_{k,l} T1[i,k]·T2[k,l]·T3[l,m], validated against two
	// explicit pairwise reference contractions.
	rng := rand.New(rand.NewSource(6))
	t1 := randomTensor(rng, []uint64{5, 6}, 15)
	t2 := randomTensor(rng, []uint64{6, 7}, 18)
	t3 := randomTensor(rng, []uint64{7, 4}, 14)
	out, plan, err := EinsumN("ik,kl,lm->im", []*Tensor{t1, t2, t3})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("plan %v", plan)
	}
	t12, err := ref.Contract(t1, t2, Spec{CtrLeft: []int{1}, CtrRight: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Contract(t12, t3, Spec{CtrLeft: []int{1}, CtrRight: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(out, want, 1e-9) {
		t.Fatalf("chain result wrong: %d vs %d nnz", out.NNZ(), want.NNZ())
	}
	if out.Dims[0] != 5 || out.Dims[1] != 4 {
		t.Fatalf("dims %v", out.Dims)
	}
}

func TestEinsumNOutputPermutation(t *testing.T) {
	// Unlike pairwise Einsum, EinsumN permutes the final result to any
	// requested output order.
	rng := rand.New(rand.NewSource(8))
	t1 := randomTensor(rng, []uint64{4, 5}, 12)
	t2 := randomTensor(rng, []uint64{5, 3}, 12)
	natural, _, err := EinsumN("ik,kj->ij", []*Tensor{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	swapped, _, err := EinsumN("ik,kj->ji", []*Tensor{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	if swapped.Dims[0] != 3 || swapped.Dims[1] != 4 {
		t.Fatalf("swapped dims %v", swapped.Dims)
	}
	for i := 0; i < natural.NNZ(); i++ {
		v := swapped.At([]uint64{natural.Coords[1][i], natural.Coords[0][i]})
		if v != natural.Vals[i] {
			t.Fatal("transpose mismatch")
		}
	}
}

func TestEinsumNGreedyPrefersSmallIntermediate(t *testing.T) {
	// A star network where contracting the two small operands first is
	// clearly cheaper; verify the planner picks a valid order and the
	// result matches the reference regardless.
	rng := rand.New(rand.NewSource(10))
	big := randomTensor(rng, []uint64{30, 8, 9}, 100) // A[i,k,l]
	s1 := randomTensor(rng, []uint64{8, 4}, 10)       // B[k,j]
	s2 := randomTensor(rng, []uint64{9, 5}, 10)       // C[l,m]
	out, plan, err := EinsumN("ikl,kj,lm->ijm", []*Tensor{big, s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 || plan.String() == "" {
		t.Fatalf("plan %v", plan)
	}
	ab, err := ref.Contract(big, s1, Spec{CtrLeft: []int{1}, CtrRight: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	// ab has modes (i, l, j); contract l with C mode 0 → (i, j, m).
	abc, err := ref.Contract(ab, s2, Spec{CtrLeft: []int{1}, CtrRight: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(out, abc, 1e-9) {
		t.Fatal("star network result wrong")
	}
}

func TestEinsumNSingleOperandPermutes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomTensor(rng, []uint64{3, 4}, 8)
	out, plan, err := EinsumN("ij->ji", []*Tensor{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 {
		t.Fatal("single operand should need no contractions")
	}
	if out.Dims[0] != 4 || out.Dims[1] != 3 {
		t.Fatalf("dims %v", out.Dims)
	}
	if out.At([]uint64{a.Coords[1][0], a.Coords[0][0]}) != a.Vals[0] {
		t.Fatal("permutation wrong")
	}
}

func TestEinsumNQuantumChemistryPair(t *testing.T) {
	// The ovov assembly as a 2-operand network must agree with Einsum.
	rng := rand.New(rand.NewSource(14))
	te := randomTensor(rng, []uint64{4, 5, 6}, 30)
	a, _, err := Einsum("iak,jbk->iajb", te, te)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := EinsumN("iak,jbk->iajb", []*Tensor{te, te})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, b) {
		t.Fatal("EinsumN disagrees with Einsum on a pair")
	}
}

func TestEinsumNErrors(t *testing.T) {
	a := NewTensor([]uint64{2, 2}, 0)
	cases := []struct {
		expr string
		ts   []*Tensor
	}{
		{"ij,jk", []*Tensor{a, a}},            // no arrow
		{"ij->ij", []*Tensor{a, a}},           // operand count mismatch
		{"->", nil},                           // no operands
		{"ijk,jk->i", []*Tensor{a, a}},        // arity mismatch
		{"ii->i", []*Tensor{a}},               // repeated label
		{"ij,kl->ijkl", []*Tensor{a, a}},      // nothing to contract, wrong order anyway
		{"ij,jk,jm->ikm", []*Tensor{a, a, a}}, // j shared three ways (batch)
		{"ij,jk->iq", []*Tensor{a, a}},        // unknown output label
	}
	for i, c := range cases {
		if _, _, err := EinsumN(c.expr, c.ts); err == nil {
			t.Errorf("case %d %q: want error", i, c.expr)
		}
	}
}

func TestPlanString(t *testing.T) {
	p := &Plan{Steps: []PlanStep{{Left: "ik", Right: "kl", Result: "il"}}}
	if !strings.Contains(p.String(), "ik×kl→il") {
		t.Fatalf("plan string %q", p.String())
	}
}

func TestEinsumNContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	t1 := randomTensor(rng, []uint64{5, 6}, 15)
	t2 := randomTensor(rng, []uint64{6, 7}, 18)
	t3 := randomTensor(rng, []uint64{7, 4}, 12)
	ts := []*Tensor{t1, t2, t3}

	// An already-canceled context must abandon the evaluation before (or
	// inside) the first step, with the context error visible via errors.Is
	// — the same single cancellation path every entry point shares.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := EinsumN("ik,kl,lm->im", ts, WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EinsumN with canceled context: err = %v, want context.Canceled", err)
	}

	// Options are validated eagerly, before any parsing or contraction.
	_, _, err = EinsumN("ik,kl,lm->im", ts, WithThreads(-1))
	if !errors.Is(err, ErrBadOption) {
		t.Fatalf("EinsumN eager validation: err = %v, want ErrBadOption", err)
	}
}

func TestPlanTotalStats(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	t1 := randomTensor(rng, []uint64{8, 9}, 30)
	t2 := randomTensor(rng, []uint64{9, 7}, 28)
	t3 := randomTensor(rng, []uint64{7, 6}, 20)

	_, plan, err := EinsumN("ik,kl,lm->im", []*Tensor{t1, t2, t3}, WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("plan has %d steps, want 2", len(plan.Steps))
	}
	agg := plan.TotalStats()

	var total, contract int64
	var tasks, updates int64
	for _, s := range plan.Steps {
		if s.Stats == nil {
			t.Fatal("step carries no Stats")
		}
		total += int64(s.Stats.Total)
		contract += int64(s.Stats.Contract)
		tasks += int64(s.Stats.Tasks)
		updates += s.Stats.Counters.Updates
	}
	if int64(agg.Total) != total || int64(agg.Contract) != contract {
		t.Fatalf("TotalStats timings total=%v contract=%v, want sums %v / %v",
			agg.Total, agg.Contract, time.Duration(total), time.Duration(contract))
	}
	if int64(agg.Tasks) != tasks {
		t.Fatalf("TotalStats.Tasks = %d, want %d", agg.Tasks, tasks)
	}
	if agg.Counters.Updates != updates {
		t.Fatalf("TotalStats.Counters.Updates = %d, want %d", agg.Counters.Updates, updates)
	}
	if agg.OutputNNZ != plan.Steps[len(plan.Steps)-1].Stats.OutputNNZ {
		t.Fatalf("TotalStats.OutputNNZ = %d, want final step's %d",
			agg.OutputNNZ, plan.Steps[len(plan.Steps)-1].Stats.OutputNNZ)
	}

	// An empty plan aggregates to zeros without reporting phantom reuse.
	empty := (&Plan{}).TotalStats()
	if empty.Total != 0 || empty.ShardReused {
		t.Fatalf("empty plan TotalStats = %+v, want zeros", empty)
	}
}
