package fastcc

import (
	"math/rand"
	"testing"
)

func TestVerifySamplePasses(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	l := randomTensor(rng, []uint64{8, 9, 6}, 80)
	r := randomTensor(rng, []uint64{6, 7}, 40)
	spec := Spec{CtrLeft: []int{2}, CtrRight: []int{0}}
	out, _, err := Contract(l, r, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySample(l, r, spec, out, 64, 1, 1e-9); err != nil {
		t.Fatalf("correct result rejected: %v", err)
	}
}

func TestVerifySampleCatchesCorruptValue(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	l := randomTensor(rng, []uint64{10, 6}, 40)
	r := randomTensor(rng, []uint64{6, 10}, 40)
	spec := Spec{CtrLeft: []int{1}, CtrRight: []int{0}}
	out, _, err := Contract(l, r, spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.NNZ() == 0 {
		t.Skip("empty output")
	}
	out.Vals[0] += 42 // corrupt one element
	// Sampling half the budget from stored nonzeros: with enough samples
	// the corrupted element is hit with overwhelming probability.
	if err := VerifySample(l, r, spec, out, 4*out.NNZ(), 2, 1e-9); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestVerifySampleCatchesSpuriousNonzero(t *testing.T) {
	l := NewTensor([]uint64{4, 4}, 1)
	l.Append([]uint64{0, 0}, 1)
	r := NewTensor([]uint64{4, 4}, 1)
	r.Append([]uint64{0, 0}, 1)
	spec := Spec{CtrLeft: []int{1}, CtrRight: []int{0}}
	out, _, err := Contract(l, r, spec)
	if err != nil {
		t.Fatal(err)
	}
	out.Append([]uint64{3, 3}, 7) // spurious
	if err := VerifySample(l, r, spec, out, 512, 3, 1e-9); err == nil {
		t.Fatal("spurious nonzero not detected")
	}
}

func TestVerifySampleBadSpec(t *testing.T) {
	a := NewTensor([]uint64{4}, 0)
	if err := VerifySample(a, a, Spec{}, a, 8, 1, 1e-9); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// Algebraic property tests for the contraction engine.

func TestContractDistributesOverAdd(t *testing.T) {
	// (A + B)·R == A·R + B·R
	rng := rand.New(rand.NewSource(19))
	a := randomTensor(rng, []uint64{7, 5}, 20)
	b := randomTensor(rng, []uint64{7, 5}, 20)
	r := randomTensor(rng, []uint64{5, 6}, 20)
	spec := Spec{CtrLeft: []int{1}, CtrRight: []int{0}}
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	lhs, _, err := Contract(sum, r, spec)
	if err != nil {
		t.Fatal(err)
	}
	ar, _, err := Contract(a, r, spec)
	if err != nil {
		t.Fatal(err)
	}
	br, _, err := Contract(b, r, spec)
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := Add(ar, br)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(lhs, rhs, 1e-9) {
		t.Fatal("distributivity violated")
	}
}

func TestContractScalarPullOut(t *testing.T) {
	// (αA)·R == α(A·R)
	rng := rand.New(rand.NewSource(20))
	a := randomTensor(rng, []uint64{6, 4}, 15)
	r := randomTensor(rng, []uint64{4, 6}, 15)
	spec := Spec{CtrLeft: []int{1}, CtrRight: []int{0}}
	scaled := a.Clone()
	scaled.Scale(3)
	lhs, _, err := Contract(scaled, r, spec)
	if err != nil {
		t.Fatal(err)
	}
	ar, _, err := Contract(a, r, spec)
	if err != nil {
		t.Fatal(err)
	}
	ar.Scale(3)
	if !ApproxEqual(lhs, ar, 1e-9) {
		t.Fatal("scalar pull-out violated")
	}
}
