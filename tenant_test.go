package fastcc

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"fastcc/internal/ref"
)

// Eager-validation tests for WithTenant and the tenant management calls,
// mirroring the typed-error conventions of errors.go: every malformed ID is
// an ErrBadOption before any work runs.

func TestWithTenantEagerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := randomTensor(rng, []uint64{6, 5}, 12)
	r := randomTensor(rng, []uint64{5, 4}, 12)
	spec := Spec{CtrLeft: []int{1}, CtrRight: []int{0}}

	bad := []struct {
		name string
		id   string
	}{
		{"empty", ""},
		{"space", "team one"},
		{"control", "team\x01"},
		{"newline", "team\n1"},
		{"non-ascii", "tëam"},
		{"too-long", strings.Repeat("x", 129)},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Contract(l, r, spec, WithTenant(tc.id))
			if !errors.Is(err, ErrBadOption) {
				t.Fatalf("Contract(WithTenant(%q)) err = %v, want ErrBadOption", tc.id, err)
			}
			if err := SetTenantQuota(tc.id, 1<<20); !errors.Is(err, ErrBadOption) {
				t.Fatalf("SetTenantQuota(%q) err = %v, want ErrBadOption", tc.id, err)
			}
			if err := DropTenant(tc.id); !errors.Is(err, ErrBadOption) {
				t.Fatalf("DropTenant(%q) err = %v, want ErrBadOption", tc.id, err)
			}
		})
	}

	// A maximal valid ID passes eagerly and the run succeeds.
	id := strings.Repeat("x", 128)
	defer func() {
		if err := DropTenant(id); err != nil {
			t.Errorf("DropTenant(valid): %v", err)
		}
	}()
	if _, _, err := Contract(l, r, spec, WithTenant(id)); err != nil {
		t.Fatalf("Contract with maximal valid tenant ID: %v", err)
	}
}

func TestTenantQuotaThroughPublicAPI(t *testing.T) {
	const tenant = "public-api-tenant"
	defer func() {
		if err := DropTenant(tenant); err != nil {
			t.Errorf("DropTenant: %v", err)
		}
	}()

	rng := rand.New(rand.NewSource(23))
	l := randomTensor(rng, []uint64{40, 30, 20}, 800)
	r := randomTensor(rng, []uint64{20, 25, 40}, 800)
	spec := Spec{CtrLeft: []int{2, 0}, CtrRight: []int{0, 2}}
	want, err := ref.Contract(l, r, spec)
	if err != nil {
		t.Fatal(err)
	}

	if err := SetTenantQuota(tenant, 1); err != nil {
		t.Fatalf("SetTenantQuota: %v", err)
	}
	lsh, err := Preshard(l, spec.CtrLeft)
	if err != nil {
		t.Fatal(err)
	}
	defer lsh.Drop()
	rsh, err := Preshard(r, spec.CtrRight)
	if err != nil {
		t.Fatal(err)
	}
	defer rsh.Drop()

	// Repeated tenanted contractions under a 1-byte quota: every run's exit
	// enforcement must settle the account, and results must stay correct
	// even though the tenant's shards are evicted between runs.
	for i := 0; i < 3; i++ {
		out, _, err := ContractPrepared(lsh, rsh, WithTenant(tenant), WithShardBudget(-1))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !Equal(out, want) {
			t.Fatalf("run %d: result differs from reference under quota churn", i)
		}
		snap, ok := TenantCacheStats(tenant)
		if !ok {
			t.Fatalf("run %d: tenant account missing", i)
		}
		if snap.Bytes > 1 {
			t.Fatalf("run %d: resident charge %d exceeds the 1-byte quota after run exit", i, snap.Bytes)
		}
	}
	snap, _ := TenantCacheStats(tenant)
	if snap.Evictions == 0 {
		t.Fatal("no quota evictions recorded across over-quota runs")
	}
	if snap.Misses == 0 {
		t.Fatal("no builds charged to the tenant")
	}

	// AllTenantCacheStats includes the tenant, sorted by ID.
	all := AllTenantCacheStats()
	found := false
	for i, s := range all {
		if i > 0 && all[i-1].ID >= s.ID {
			t.Fatalf("AllTenantCacheStats not strictly sorted: %q before %q", all[i-1].ID, s.ID)
		}
		found = found || s.ID == tenant
	}
	if !found {
		t.Fatal("AllTenantCacheStats omits an active tenant")
	}
}
