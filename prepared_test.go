package fastcc

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"fastcc/internal/core"
	"fastcc/internal/ref"
	"fastcc/internal/testutil"
)

// TestContractPreparedMatchesContract checks that the prepared path computes
// the same result as the one-shot path and the reference, cold and warm.
func TestContractPreparedMatchesContract(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	l := randomTensor(rng, []uint64{30, 12, 20}, 400)
	r := randomTensor(rng, []uint64{20, 9, 30}, 400)
	spec := Spec{CtrLeft: []int{2, 0}, CtrRight: []int{0, 2}}

	want, err := ref.Contract(l, r, spec)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := Preshard(l, spec.CtrLeft)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Preshard(r, spec.CtrRight)
	if err != nil {
		t.Fatal(err)
	}
	cold, coldSt, err := ContractPrepared(ls, rs, WithThreads(3))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(cold, want) {
		t.Fatal("cold prepared contraction mismatch")
	}
	if coldSt.ShardReused {
		t.Fatal("cold run should not report a full shard hit")
	}
	warm, warmSt, err := ContractPrepared(ls, rs, WithThreads(3))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(warm, want) {
		t.Fatal("warm prepared contraction mismatch")
	}
	if !warmSt.ShardReusedL || !warmSt.ShardReusedR || !warmSt.ShardReused {
		t.Fatalf("warm run should reuse both shards: %+v", warmSt)
	}
	if warmSt.Build != 0 {
		t.Fatalf("warm run reports Build=%v, want 0", warmSt.Build)
	}
	if warmSt.Linearize != 0 {
		t.Fatalf("warm run reports Linearize=%v, want 0", warmSt.Linearize)
	}
}

// TestSelfContractAliasing checks the aliasing fast path: contracting a
// tensor with itself must equal contracting two independent deep copies,
// and must shard the operand exactly once (the right side reports reuse).
func TestSelfContractAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randomTensor(rng, []uint64{25, 8, 25}, 350)
	spec := Spec{CtrLeft: []int{0, 2}, CtrRight: []int{0, 2}}

	aliased, st, err := Contract(a, a, spec, WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	copies, _, err := Contract(a.Clone(), a.Clone(), spec, WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(aliased, copies) {
		t.Fatal("aliased self-contraction differs from independent copies")
	}
	if !st.ShardReusedR || st.ShardReusedL {
		t.Fatalf("self-contraction should build once and reuse on the right: %+v", st)
	}
	if err := VerifySample(a, a, spec, aliased, 64, 7, 1e-9); err != nil {
		t.Fatal(err)
	}
}

// TestShardedReusedAcrossPartners contracts one prepared operand against two
// different partners and checks both results against fresh contractions.
// With a pinned tile grid every run lands on the same ShardKey, so the
// second and third contraction reuse the left shard.
func TestShardedReusedAcrossPartners(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	shared := randomTensor(rng, []uint64{40, 15, 12}, 500)
	p1 := randomTensor(rng, []uint64{15, 12, 33}, 450)
	p2 := randomTensor(rng, []uint64{15, 12, 27}, 450)
	modes := []int{1, 2}
	opts := []Option{WithThreads(2), WithTileSize(128, 128)}

	ls, err := Preshard(shared, modes, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range []*Tensor{p1, p2} {
		spec := Spec{CtrLeft: modes, CtrRight: []int{0, 1}}
		rs, err := Preshard(p, spec.CtrRight, opts...)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := ContractPrepared(ls, rs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := Contract(shared, p, spec, WithThreads(2))
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, want) {
			t.Fatalf("partner %d: prepared result differs from fresh Contract", i)
		}
		// Preshard with WithTileSize builds eagerly, so even the first
		// contraction is a full shard hit.
		if !st.ShardReused || st.Build != 0 {
			t.Fatalf("partner %d: want eager-shard hit, got %+v", i, st)
		}
		if err := VerifySample(shared, p, spec, got, 48, uint64(i), 1e-9); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedConcurrentUse hammers one *Sharded pair from many goroutines;
// run with -race this checks the memoized build and the shared read path.
func TestShardedConcurrentUse(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	l := randomTensor(rng, []uint64{30, 10, 18}, 420)
	r := randomTensor(rng, []uint64{10, 18, 26}, 420)
	ls, err := Preshard(l, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Preshard(r, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Contract(l, r, Spec{CtrLeft: []int{1, 2}, CtrRight: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	outs := make([]*Tensor, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs[g], _, errs[g] = ContractPrepared(ls, rs, WithThreads(2))
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !Equal(outs[g], want) {
			t.Fatalf("goroutine %d: result mismatch", g)
		}
	}
}

// TestContractContextCancel checks cooperative cancellation: a pre-canceled
// context fails fast with an error matching context.Canceled, and a valid
// context leaves the result untouched.
func TestContractContextCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	l := randomTensor(rng, []uint64{30, 30}, 300)
	r := randomTensor(rng, []uint64{30, 30}, 300)
	spec := Spec{CtrLeft: []int{1}, CtrRight: []int{0}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ContractContext(ctx, l, r, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, _, err := Contract(l, r, spec, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("WithContext: want context.Canceled, got %v", err)
	}

	out, _, err := ContractContext(context.Background(), l, r, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Contract(l, r, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(out, want) {
		t.Fatal("uncanceled ContractContext mismatch")
	}
}

// TestOptionValidation checks the eager ErrBadOption rejections.
func TestOptionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	a := randomTensor(rng, []uint64{10, 10}, 50)
	spec := Spec{CtrLeft: []int{1}, CtrRight: []int{0}}
	cases := []struct {
		name string
		opts []Option
	}{
		{"negative threads", []Option{WithThreads(-1)}},
		{"huge tile", []Option{WithTileSize(1 << 40, 64)}},
		{"dense non-pow2 tr", []Option{WithAccumulator(AccumDense), WithTileSize(64, 100)}},
		{"dense oversized tile", []Option{WithAccumulator(AccumDense), WithTileSize(1 << 20, 1 << 20)}},
		{"unknown accumulator", []Option{WithAccumulator(AccumKind(99))}},
		{"unknown representation", []Option{WithInputRep(InputRep(99))}},
	}
	for _, tc := range cases {
		if _, _, err := Contract(a, a, spec, tc.opts...); !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: Contract err = %v, want ErrBadOption", tc.name, err)
		}
		if _, err := Preshard(a, []int{1}, tc.opts...); !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: Preshard err = %v, want ErrBadOption", tc.name, err)
		}
	}
	// Valid combinations must still pass.
	if _, _, err := Contract(a, a, spec, WithAccumulator(AccumDense), WithTileSize(64, 64)); err != nil {
		t.Fatalf("valid dense override rejected: %v", err)
	}
}

// TestTypedErrors checks the errors.Is / errors.As contract on the
// validation paths: specs, shapes, expressions.
func TestTypedErrors(t *testing.T) {
	a := NewTensor([]uint64{4, 4}, 0)
	b := NewTensor([]uint64{5, 5}, 0)

	_, _, err := Contract(a, a, Spec{})
	if !errors.Is(err, ErrBadSpec) {
		t.Errorf("empty spec: err = %v, want ErrBadSpec", err)
	}
	_, _, err = Contract(a, a, Spec{CtrLeft: []int{0, 0}, CtrRight: []int{0, 1}})
	if !errors.Is(err, ErrBadSpec) {
		t.Errorf("duplicate mode: err = %v, want ErrBadSpec", err)
	}

	_, _, err = Contract(a, b, Spec{CtrLeft: []int{0}, CtrRight: []int{0}})
	if !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("extent mismatch: err = %v, want ErrShapeMismatch", err)
	}
	var se *ShapeError
	if !errors.As(err, &se) {
		t.Fatalf("extent mismatch: err = %v, want *ShapeError", err)
	}
	if se.LeftExtent != 4 || se.RightExtent != 5 || se.LeftMode != 0 || se.RightMode != 0 {
		t.Errorf("ShapeError detail = %+v", se)
	}

	if _, err := ParseEinsum("ij,jk", 2, 2); !errors.Is(err, ErrBadExpr) {
		t.Errorf("missing arrow: err = %v, want ErrBadExpr", err)
	}
	if _, err := ParseEinsum("ij,jk->ki", 2, 2); !errors.Is(err, ErrBadExpr) {
		t.Errorf("bad output order: err = %v, want ErrBadExpr", err)
	}
	if _, _, err := Einsum("ii,ij->j", a, a); !errors.Is(err, ErrBadExpr) {
		t.Errorf("trace: err = %v, want ErrBadExpr", err)
	}
	if _, _, err := EinsumN("ij", []*Tensor{a}, nil...); !errors.Is(err, ErrBadExpr) {
		t.Errorf("EinsumN missing arrow: err = %v, want ErrBadExpr", err)
	}
}

// TestEinsumNRepeatedOperandReusesShards checks the per-evaluation shard
// cache: the same tensor in two operand slots over the same contracted
// modes is prepared once, so the contraction step reports shard reuse.
func TestEinsumNRepeatedOperandReusesShards(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	a := randomTensor(rng, []uint64{18, 14}, 160)
	out, plan, err := EinsumN("ab,cb->ac", []*Tensor{a, a})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Contract(a, a, Spec{CtrLeft: []int{1}, CtrRight: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(out, want) {
		t.Fatal("EinsumN repeated-operand result mismatch")
	}
	if len(plan.Steps) != 1 {
		t.Fatalf("plan has %d steps, want 1", len(plan.Steps))
	}
	st := plan.Steps[0].Stats
	if !st.ShardReusedR {
		t.Fatalf("repeated operand should reuse its shard: %+v", st)
	}
}

// TestPreparedDropLeavesNothingOutstanding wires the leak-accounting helper
// into the prepared suite: after contracting prepared operands and dropping
// them, the shard cache must return to its captured charge and every output
// chunk must be back in its pool — zero outstanding, the Drop contract.
func TestPreparedDropLeavesNothingOutstanding(t *testing.T) {
	base := testutil.Capture(
		testutil.Gauge{Name: "shard-cache bytes", Read: func() int64 { return ShardCacheStats().CachedBytes }},
		testutil.Gauge{Name: "shard-cache shards", Read: func() int64 { return ShardCacheStats().Shards }},
		testutil.Gauge{Name: "output chunks", Read: core.OutputChunksOutstanding},
	)

	rng := rand.New(rand.NewSource(91))
	l := randomTensor(rng, []uint64{12, 10, 9}, 400)
	r := randomTensor(rng, []uint64{9, 8, 12}, 400)
	ls, err := Preshard(l, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Preshard(r, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // cold then warm: both paths must balance
		if _, _, err := ContractPrepared(ls, rs, WithThreads(2)); err != nil {
			t.Fatal(err)
		}
	}
	ls.Drop()
	rs.Drop()
	base.Assert(t)
}

func TestShardedLifecycleSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	l := randomTensor(rng, []uint64{30, 25}, 300)
	r := randomTensor(rng, []uint64{25, 20}, 280)

	lsh, err := Preshard(l, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	defer lsh.Drop()
	rsh, err := Preshard(r, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	defer rsh.Drop()

	// Freshly prepared operands hold no built shards: the heavy build is
	// lazy, so the accounting view reports cold and zero-sized.
	if lsh.Warm() {
		t.Fatal("Warm() = true before any contraction")
	}
	if got := lsh.SizeBytes(); got != 0 {
		t.Fatalf("SizeBytes() = %d before any contraction, want 0", got)
	}

	if _, _, err := ContractPrepared(lsh, rsh); err != nil {
		t.Fatal(err)
	}
	if !lsh.Warm() {
		t.Fatal("Warm() = false after a contraction built and cached shards")
	}
	if got := lsh.SizeBytes(); got <= 0 {
		t.Fatalf("SizeBytes() = %d after a contraction, want > 0", got)
	}

	// Close is Drop under the io.Closer spelling: never fails, releases the
	// resident shards, and leaves the operand usable.
	var c interface{ Close() error } = lsh
	if err := c.Close(); err != nil {
		t.Fatalf("Close() = %v, want nil", err)
	}
	if lsh.Warm() {
		t.Fatal("Warm() = true after Close")
	}
	if got := lsh.SizeBytes(); got != 0 {
		t.Fatalf("SizeBytes() = %d after Close, want 0", got)
	}
	if _, _, err := ContractPrepared(lsh, rsh); err != nil {
		t.Fatalf("contraction after Close: %v", err)
	}
	if !lsh.Warm() {
		t.Fatal("operand did not rewarm after Close")
	}
	if err := lsh.Close(); err != nil {
		t.Fatalf("second Close() = %v, want nil", err)
	}
}
