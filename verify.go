package fastcc

import (
	"fmt"
	"math"

	"fastcc/internal/coo"
	"fastcc/internal/gen"
)

// VerifySample spot-checks a contraction result without recomputing it in
// full: it recomputes up to samples output elements by direct summation
// over the contraction index — a mix of nonzeros drawn from out and
// random output coordinates (which must be ≈ zero in out) — and reports
// the first discrepancy beyond tol (absolute-or-relative per element).
//
// Cost is O(samples · (nnzL + nnzR)/C) expected, versus O(updates) for a
// full recomputation, so it is usable as a production sanity check after
// large contractions.
func VerifySample(l, r *Tensor, spec Spec, out *Tensor, samples int, seed uint64, tol float64) error {
	if err := spec.Validate(l, r); err != nil {
		return err
	}
	extL := coo.ExternalModes(l.Order(), spec.CtrLeft)
	extR := coo.ExternalModes(r.Order(), spec.CtrRight)
	lm, err := l.Matrixize(extL, spec.CtrLeft)
	if err != nil {
		return err
	}
	rm, err := r.Matrixize(extR, spec.CtrRight)
	if err != nil {
		return err
	}
	om, err := out.Matrixize(seqModes(len(extL)), seqModesFrom(len(extL), len(extR)))
	if err != nil {
		return err
	}
	// For sampling we need O(1) access to out[l,r]; index it once.
	outVals := make(map[[2]uint64]float64, om.NNZ())
	for i := range om.Val {
		outVals[[2]uint64{om.Ext[i], om.Ctr[i]}] += om.Val[i]
	}
	// Group both operands by contraction index once: recomputing one
	// output element is then a merge over the relevant slices.
	lByC := groupByCtr(lm)
	rByC := groupByCtr(rm)

	rng := gen.NewRNG(seed)
	check := func(le, re uint64) error {
		want := 0.0
		for c, ls := range lByC {
			rs, ok := rByC[c]
			if !ok {
				continue
			}
			var lv, rv float64
			var hitL, hitR bool
			for _, p := range ls {
				if p.ext == le {
					lv += p.val
					hitL = true
				}
			}
			if !hitL {
				continue
			}
			for _, p := range rs {
				if p.ext == re {
					rv += p.val
					hitR = true
				}
			}
			if hitR {
				want += lv * rv
			}
		}
		got := outVals[[2]uint64{le, re}]
		diff := math.Abs(got - want)
		scale := math.Max(math.Abs(got), math.Abs(want))
		if diff > tol && diff > tol*scale {
			return fmt.Errorf("fastcc: verification failed at linearized output (%d,%d): have %g, recomputed %g", le, re, got, want)
		}
		return nil
	}

	n := samples
	if n <= 0 {
		n = 32
	}
	// Half the budget on stored nonzeros, half on random coordinates.
	for i := 0; i < n/2 && om.NNZ() > 0; i++ {
		j := int(rng.Uint64n(uint64(om.NNZ())))
		if err := check(om.Ext[j], om.Ctr[j]); err != nil {
			return err
		}
	}
	for i := 0; i < n-n/2; i++ {
		if err := check(rng.Uint64n(lm.ExtDim), rng.Uint64n(rm.ExtDim)); err != nil {
			return err
		}
	}
	return nil
}

type extVal struct {
	ext uint64
	val float64
}

func groupByCtr(m *coo.Matrix) map[uint64][]extVal {
	g := make(map[uint64][]extVal)
	for i := range m.Val {
		g[m.Ctr[i]] = append(g[m.Ctr[i]], extVal{m.Ext[i], m.Val[i]})
	}
	return g
}

func seqModes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func seqModesFrom(start, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i
	}
	return out
}
