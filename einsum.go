package fastcc

import (
	"fmt"
	"strings"
)

// Einsum contracts two tensors written in Einstein summation notation, the
// idiom of the paper's quantum-chemistry examples:
//
//	// Int_ovov(i,μ,j,ν) = Σ_k TE_ov(i,μ,k) · TE_ov(j,ν,k)
//	out, stats, err := fastcc.Einsum("iak,jbk->iajb", teOV, teOV)
//
// The expression has the form "LHS1,LHS2->RHS" where each side is a string
// of single-letter mode labels. Labels appearing in both inputs and not in
// the output are contracted (summed); labels appearing in one input and
// the output are external. Restrictions, checked and reported as errors:
//
//   - every label appears at most once per operand (no self-traces);
//   - each contracted label appears in both operands;
//   - the output must list every external label exactly once, ordered as
//     "left externals then right externals" (the engine's output layout;
//     arbitrary output permutations would need a transpose pass);
//   - batch (elementwise) labels appearing in both inputs AND the output
//     are not supported — this is a contraction engine, not a general
//     einsum evaluator.
//
// Options are forwarded to Contract unchanged — in particular WithContext,
// the package's single cancellation path, behaves here exactly as it does
// on every other entry point.
func Einsum(expr string, l, r *Tensor, opts ...Option) (*Tensor, *Stats, error) {
	spec, err := ParseEinsum(expr, l.Order(), r.Order())
	if err != nil {
		return nil, nil, err
	}
	return Contract(l, r, spec, opts...)
}

// ParseEinsum parses "ab...,bc...->ac..." into a contraction Spec, checking
// it against the operand orders. Exposed so callers can parse once and
// contract many times.
func ParseEinsum(expr string, lOrder, rOrder int) (Spec, error) {
	lhs, rhs, ok := strings.Cut(expr, "->")
	if !ok {
		return Spec{}, fmt.Errorf("%w: %q has no \"->\"", ErrBadExpr, expr)
	}
	left, right, ok := strings.Cut(lhs, ",")
	if !ok {
		return Spec{}, fmt.Errorf("%w: %q needs exactly two comma-separated operands", ErrBadExpr, expr)
	}
	lLabels := []rune(strings.TrimSpace(left))
	rLabels := []rune(strings.TrimSpace(right))
	oLabels := []rune(strings.TrimSpace(rhs))
	if len(lLabels) != lOrder {
		return Spec{}, fmt.Errorf("%w: left operand has %d modes but %q has %d labels", ErrBadExpr, lOrder, left, len(lLabels))
	}
	if len(rLabels) != rOrder {
		return Spec{}, fmt.Errorf("%w: right operand has %d modes but %q has %d labels", ErrBadExpr, rOrder, right, len(rLabels))
	}

	lPos, err := labelPositions(lLabels, "left")
	if err != nil {
		return Spec{}, err
	}
	rPos, err := labelPositions(rLabels, "right")
	if err != nil {
		return Spec{}, err
	}
	oPos, err := labelPositions(oLabels, "output")
	if err != nil {
		return Spec{}, err
	}

	var spec Spec
	var extLeft, extRight []rune
	for _, lab := range lLabels {
		_, inR := rPos[lab]
		_, inO := oPos[lab]
		switch {
		case inR && inO:
			return Spec{}, fmt.Errorf("%w: label %q appears in both inputs and the output (batch modes unsupported)", ErrBadExpr, lab)
		case inR:
			spec.CtrLeft = append(spec.CtrLeft, lPos[lab])
			spec.CtrRight = append(spec.CtrRight, rPos[lab])
		case inO:
			extLeft = append(extLeft, lab)
		default:
			return Spec{}, fmt.Errorf("%w: left label %q appears nowhere else (free summation unsupported)", ErrBadExpr, lab)
		}
	}
	for _, lab := range rLabels {
		if _, inL := lPos[lab]; inL {
			continue // contracted, handled above
		}
		if _, inO := oPos[lab]; !inO {
			return Spec{}, fmt.Errorf("%w: right label %q appears nowhere else (free summation unsupported)", ErrBadExpr, lab)
		}
		extRight = append(extRight, lab)
	}

	// The engine emits left externals (in operand order) then right
	// externals; the output spelling must match.
	want := append(append([]rune{}, extLeft...), extRight...)
	if len(oLabels) != len(want) {
		return Spec{}, fmt.Errorf("%w: output %q must have %d labels (the externals), got %d", ErrBadExpr, rhs, len(want), len(oLabels))
	}
	for i := range want {
		if oLabels[i] != want[i] {
			return Spec{}, fmt.Errorf("%w: output %q must spell the externals as %q (left externals then right, in operand order)", ErrBadExpr, rhs, string(want))
		}
	}
	if len(spec.CtrLeft) == 0 {
		return Spec{}, fmt.Errorf("%w: %q contracts no labels", ErrBadExpr, expr)
	}
	return spec, nil
}

func labelPositions(labels []rune, side string) (map[rune]int, error) {
	pos := make(map[rune]int, len(labels))
	for i, lab := range labels {
		if lab == ' ' {
			return nil, fmt.Errorf("%w: unexpected space inside %s labels", ErrBadExpr, side)
		}
		if _, dup := pos[lab]; dup {
			return nil, fmt.Errorf("%w: label %q repeated in %s operand (traces unsupported)", ErrBadExpr, lab, side)
		}
		pos[lab] = i
	}
	return pos, nil
}
