package fastcc

import (
	"math/rand"
	"testing"

	"fastcc/internal/ref"
)

func TestEinsumMatrixMultiply(t *testing.T) {
	l := NewTensor([]uint64{2, 3}, 3)
	l.Append([]uint64{0, 0}, 1)
	l.Append([]uint64{0, 2}, 2)
	l.Append([]uint64{1, 1}, 3)
	r := NewTensor([]uint64{3, 2}, 3)
	r.Append([]uint64{0, 1}, 4)
	r.Append([]uint64{2, 0}, 5)
	r.Append([]uint64{1, 1}, 6)
	out, _, err := Einsum("ik,kj->ij", l, r)
	if err != nil {
		t.Fatal(err)
	}
	if out.At([]uint64{0, 1}) != 4 || out.At([]uint64{0, 0}) != 10 || out.At([]uint64{1, 1}) != 18 {
		t.Fatalf("einsum result wrong: %v %v", out.Coords, out.Vals)
	}
}

func TestEinsumQuantumChemistryForm(t *testing.T) {
	// The paper's ovov contraction: Int(i,a,j,b) = Σ_k TE(i,a,k)·TE(j,b,k).
	rng := rand.New(rand.NewSource(4))
	te := randomTensor(rng, []uint64{4, 6, 5}, 40)
	out, _, err := Einsum("iak,jbk->iajb", te, te)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Contract(te, te, Spec{CtrLeft: []int{2}, CtrRight: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(out, want) {
		t.Fatal("einsum disagrees with explicit spec")
	}
	if len(out.Dims) != 4 || out.Dims[0] != 4 || out.Dims[1] != 6 {
		t.Fatalf("output dims %v", out.Dims)
	}
}

func TestEinsumMultipleContractionIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := randomTensor(rng, []uint64{3, 4, 5}, 30)
	r := randomTensor(rng, []uint64{5, 4, 6}, 30)
	// Contract k (l mode 2 ↔ r mode 0) and j (l mode 1 ↔ r mode 1).
	out, _, err := Einsum("ijk,kjm->im", l, r)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Contract(l, r, Spec{CtrLeft: []int{2, 1}, CtrRight: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(out, want) {
		t.Fatal("multi-index einsum wrong")
	}
}

func TestEinsumScalarOutput(t *testing.T) {
	l := NewTensor([]uint64{3, 3}, 2)
	l.Append([]uint64{0, 1}, 2)
	l.Append([]uint64{2, 2}, 3)
	out, _, err := Einsum("ij,ij->", l, l)
	if err != nil {
		t.Fatal(err)
	}
	if out.Order() != 0 || out.NNZ() != 1 || out.Vals[0] != 13 {
		t.Fatalf("frobenius inner product: %v", out)
	}
}

func TestParseEinsumSpec(t *testing.T) {
	spec, err := ParseEinsum("abk,kcd->abcd", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.CtrLeft) != 1 || spec.CtrLeft[0] != 2 || spec.CtrRight[0] != 0 {
		t.Fatalf("spec %+v", spec)
	}
}

func TestEinsumErrors(t *testing.T) {
	cases := []struct {
		expr           string
		lOrder, rOrder int
	}{
		{"ij,jk", 2, 2},      // no arrow
		{"ijjk->ik", 2, 2},   // no comma
		{"ij,jk->ik", 3, 2},  // arity mismatch left
		{"ij,jk->ik", 2, 3},  // arity mismatch right
		{"ii,ik->k", 2, 2},   // trace
		{"ij,jk->ki", 2, 2},  // output permuted
		{"ij,jk->ijk", 2, 2}, // batch label j in output
		{"ij,kl->il", 2, 2},  // j and k appear nowhere else
		{"ij,jk->i", 2, 2},   // missing external k
		{"ij,kj->ikj", 2, 2}, // contracted j in output
		{"i j,jk->ik", 3, 2}, // space in labels
		{"ij,ji->", 2, 2},    // ok actually? i and j both contracted → valid!
	}
	for i, c := range cases[:len(cases)-1] {
		if _, err := ParseEinsum(c.expr, c.lOrder, c.rOrder); err == nil {
			t.Errorf("case %d %q: want error", i, c.expr)
		}
	}
	// Double contraction is legal.
	if _, err := ParseEinsum("ij,ji->", 2, 2); err != nil {
		t.Fatalf("ij,ji-> should parse: %v", err)
	}
}

func TestEinsumOptionsPassThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomTensor(rng, []uint64{20, 10}, 50)
	_, stats, err := Einsum("ik,jk->ij", a, a, WithThreads(2), WithTileSize(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if stats.TileL != 16 || stats.Threads != 2 {
		t.Fatalf("options ignored: %+v", stats)
	}
}
