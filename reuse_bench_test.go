// Benchmarks for the prepared-operand API: what Preshard/ContractPrepared
// amortize relative to the one-shot Contract path on a FROSTT-shaped
// self-contraction. `make bench-reuse` regenerates BENCH_reuse.json from
// the same comparison at experiment scale.
package fastcc_test

import (
	"testing"

	"fastcc"
	"fastcc/internal/model"
)

func BenchmarkContractReuse(b *testing.B) {
	l, r, spec := loadCase(b, "chicago-01")
	opts := []fastcc.Option{fastcc.WithPlatform(model.Desktop8)}

	b.Run("cold", func(b *testing.B) {
		// Every iteration pays linearize + build + contract.
		for i := 0; i < b.N; i++ {
			if _, _, err := fastcc.Contract(l, r, spec, opts...); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		// Preshard once; iterations pay only the contract stage. The FROSTT
		// cases are self-contractions, so one prepared operand serves both
		// sides.
		ls, err := fastcc.Preshard(l, spec.CtrLeft, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := fastcc.ContractPrepared(ls, ls, opts...); err != nil {
			b.Fatal(err) // populate the model-chosen tile shard
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, st, err := fastcc.ContractPrepared(ls, ls, opts...)
			if err != nil {
				b.Fatal(err)
			}
			if !st.ShardReused || st.Build != 0 {
				b.Fatalf("warm iteration missed the shard cache: %+v", st)
			}
		}
	})
}
