package fastcc

import (
	"fmt"
	"strings"
	"time"

	"fastcc/internal/model"
)

// EinsumN evaluates a multi-operand Einstein expression — a sparse tensor
// network (paper Section 7: CoNST, SparseLNR) — as a sequence of pairwise
// FaSTCC contractions:
//
//	// A three-tensor chain: O[i,m] = Σ_{k,l} T1[i,k]·T2[k,l]·T3[l,m]
//	out, plan, err := fastcc.EinsumN("ik,kl,lm->im", t1, t2, t3)
//
// The contraction order is chosen greedily: at each step the pair of
// operands whose pairwise product has the smallest expected nonzero count
// (per the Section 5.1 density model) is contracted first — the standard
// heuristic for keeping sparse intermediates small. The returned Plan
// records the chosen order and per-step statistics.
//
// Label semantics per step follow Einsum: a label shared by the chosen
// pair is summed only if no later operand (or the output) still needs it;
// pairs whose shared labels are still live elsewhere are not contractible
// yet. Expressions where no valid pairwise order exists (e.g. true batch
// indices shared three ways) are rejected.
//
// Operands are prepared via the Preshard machinery, and the prepared form
// is cached per (tensor, contracted modes) for the whole evaluation: a
// tensor appearing in several operand slots (e.g. the same factor repeated
// in a network) is linearized and sharded once, and later steps report
// shard reuse in their Stats.
//
// Options follow the single-contraction entry points uniformly: they are
// validated eagerly (ErrBadOption before any work runs) and forwarded to
// every pairwise step. In particular WithContext — the package's one
// cancellation path — is observed both inside each step (between pipeline
// stages and at tile-task boundaries) and between steps, so canceling the
// context abandons the remaining network promptly with ctx.Err() wrapped.
func EinsumN(expr string, tensors []*Tensor, opts ...Option) (*Tensor, *Plan, error) {
	o, err := resolveOptions(opts)
	if err != nil {
		return nil, nil, err
	}
	lhs, rhs, ok := strings.Cut(expr, "->")
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q has no \"->\"", ErrBadExpr, expr)
	}
	labels := strings.Split(lhs, ",")
	if len(labels) != len(tensors) {
		return nil, nil, fmt.Errorf("%w: %d operand labels for %d tensors", ErrBadExpr, len(labels), len(tensors))
	}
	if len(tensors) == 0 {
		return nil, nil, fmt.Errorf("%w: no operands", ErrBadExpr)
	}
	outLabels := []rune(strings.TrimSpace(rhs))

	ops := make([]*netOperand, len(tensors))
	seen := map[*Tensor]bool{}
	for i, t := range tensors {
		ls := []rune(strings.TrimSpace(labels[i]))
		if len(ls) != t.Order() {
			return nil, nil, fmt.Errorf("%w: operand %d has %d modes but labels %q", ErrBadExpr, i, t.Order(), string(ls))
		}
		if _, err := labelPositions(ls, fmt.Sprintf("operand %d", i)); err != nil {
			return nil, nil, err
		}
		if !seen[t] {
			seen[t] = true
			if err := t.Validate(); err != nil {
				return nil, nil, fmt.Errorf("operand %d: %w", i, err)
			}
		}
		ops[i] = &netOperand{labels: ls, tensor: t}
	}
	if _, err := labelPositions(outLabels, "output"); err != nil {
		return nil, nil, err
	}

	// Per-evaluation cache of prepared operands: a tensor contracted over
	// the same modes in several steps is linearized and sharded once.
	type prepKey struct {
		t     *Tensor
		modes string
	}
	prepared := map[prepKey]*Sharded{}
	// The prepared operands (including those wrapping intermediate products)
	// are dead once the evaluation finishes; drop their shards so a network
	// evaluation leaves nothing charged to the shard-cache budget.
	defer func() {
		for _, s := range prepared {
			s.Drop()
		}
	}()
	preshard := func(t *Tensor, modes []int) (*Sharded, time.Duration, error) {
		k := prepKey{t: t, modes: fmt.Sprint(modes)}
		if s, ok := prepared[k]; ok {
			return s, 0, nil
		}
		t0 := time.Now()
		s, err := preshardValidated(t, modes, "")
		if err != nil {
			return nil, 0, err
		}
		prepared[k] = s
		return s, time.Since(t0), nil
	}

	plan := &Plan{Expr: expr}
	for len(ops) > 1 {
		if o.ctx != nil {
			if err := o.ctx.Err(); err != nil {
				return nil, nil, fmt.Errorf("fastcc: network evaluation canceled: %w", err)
			}
		}
		ai, bi, spec, err := pickPair(ops, outLabels)
		if err != nil {
			return nil, nil, err
		}
		a, b := ops[ai], ops[bi]
		la, linA, err := preshard(a.tensor, spec.CtrLeft)
		if err != nil {
			return nil, nil, err
		}
		rb, linB, err := preshard(b.tensor, spec.CtrRight)
		if err != nil {
			return nil, nil, err
		}
		prod, stats, err := ContractPrepared(la, rb, opts...)
		if err != nil {
			return nil, nil, err
		}
		// Attribute this step's linearization (zero on a cache hit) the way
		// Contract would have.
		stats.Linearize = linA + linB
		stats.Total += stats.Linearize
		merged := mergedLabels(a.labels, b.labels, spec)
		plan.Steps = append(plan.Steps, PlanStep{
			Left:   string(a.labels),
			Right:  string(b.labels),
			Result: string(merged),
			NNZ:    prod.NNZ(),
			Stats:  stats,
		})
		// Replace the pair with the product (preserve slice order).
		next := make([]*netOperand, 0, len(ops)-1)
		for i, op := range ops {
			if i != ai && i != bi {
				next = append(next, op)
			}
		}
		ops = append(next, &netOperand{labels: merged, tensor: prod})
	}

	// Align the final operand's mode order with the requested output.
	final := ops[0]
	if len(final.labels) != len(outLabels) {
		return nil, nil, fmt.Errorf("%w: result has labels %q but output wants %q", ErrBadExpr, string(final.labels), string(outLabels))
	}
	perm := make([]int, len(outLabels))
	for k, lab := range outLabels {
		found := -1
		for m, fl := range final.labels {
			if fl == lab {
				found = m
				break
			}
		}
		if found < 0 {
			return nil, nil, fmt.Errorf("%w: output label %q not produced (result %q)", ErrBadExpr, lab, string(final.labels))
		}
		perm[k] = found
	}
	out, err := final.tensor.Permute(perm)
	if err != nil {
		return nil, nil, err
	}
	return out, plan, nil
}

// Plan records the pairwise order EinsumN chose.
type Plan struct {
	Expr  string
	Steps []PlanStep
}

// PlanStep is one pairwise contraction of the network.
type PlanStep struct {
	Left, Right string // operand label strings
	Result      string // label string of the product
	NNZ         int    // nonzeros of the product
	Stats       *Stats
}

// String renders the plan compactly, e.g. "(ik×kl→il); (il×lm→im)".
func (p *Plan) String() string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = fmt.Sprintf("(%s×%s→%s)", s.Left, s.Right, s.Result)
	}
	return strings.Join(parts, "; ")
}

// TotalStats aggregates the per-step Stats into one network-level figure:
// phase timings, task/block counts and data-access counters are summed
// across steps (each step snapshots its own counters, so the sum double
// counts nothing), WorkspaceWords takes the per-step maximum, OutputNNZ is
// the final step's, and Threads the widest step's. The reuse flags report
// whether EVERY step was served from the shard cache — the steady-state a
// server reaches when the same network is evaluated repeatedly. Per-step
// decisions and tile geometry stay in Steps; they have no meaningful sum.
// A plan with no steps (single-operand expression) aggregates to zeros.
func (p *Plan) TotalStats() *Stats {
	agg := &Stats{ShardReused: len(p.Steps) > 0, ShardReusedL: len(p.Steps) > 0, ShardReusedR: len(p.Steps) > 0}
	for _, step := range p.Steps {
		s := step.Stats
		if s == nil {
			continue
		}
		agg.Linearize += s.Linearize
		agg.Build += s.Build
		agg.Contract += s.Contract
		agg.Concat += s.Concat
		agg.Delinearize += s.Delinearize
		agg.Total += s.Total
		agg.Tasks += s.Tasks
		agg.Blocks += s.Blocks
		if s.Threads > agg.Threads {
			agg.Threads = s.Threads
		}
		agg.OutputNNZ = s.OutputNNZ
		agg.ShardReusedL = agg.ShardReusedL && s.ShardReusedL
		agg.ShardReusedR = agg.ShardReusedR && s.ShardReusedR
		agg.ShardReused = agg.ShardReused && s.ShardReused
		agg.Counters.Queries += s.Counters.Queries
		agg.Counters.Volume += s.Counters.Volume
		agg.Counters.Updates += s.Counters.Updates
		agg.Counters.Output += s.Counters.Output
		if s.Counters.WorkspaceWords > agg.Counters.WorkspaceWords {
			agg.Counters.WorkspaceWords = s.Counters.WorkspaceWords
		}
	}
	return agg
}

type netOperand struct {
	labels []rune
	tensor *Tensor
}

// pickPair returns the contractible operand pair with the smallest
// expected product size, together with its pairwise Spec.
func pickPair(ops []*netOperand, outLabels []rune) (ai, bi int, spec Spec, err error) {
	type candidate struct {
		a, b     int
		spec     Spec
		expected float64
	}
	var best *candidate
	for a := 0; a < len(ops); a++ {
		for b := a + 1; b < len(ops); b++ {
			sp, ok := pairSpec(ops, a, b, outLabels)
			if !ok {
				continue
			}
			e := expectedPairNNZ(ops[a], ops[b], sp)
			if best == nil || e < best.expected {
				best = &candidate{a: a, b: b, spec: sp, expected: e}
			}
		}
	}
	if best == nil {
		return 0, 0, Spec{}, fmt.Errorf("%w: no contractible operand pair (disconnected network or three-way shared labels)", ErrBadExpr)
	}
	return best.a, best.b, best.spec, nil
}

// pairSpec builds the Spec contracting every label shared by ops[a] and
// ops[b] that is dead elsewhere (not in any other operand, not in the
// output). The pair is contractible only if it shares at least one such
// label and no shared label is still live elsewhere.
func pairSpec(ops []*netOperand, a, b int, outLabels []rune) (Spec, bool) {
	liveElsewhere := map[rune]bool{}
	for i, op := range ops {
		if i == a || i == b {
			continue
		}
		for _, l := range op.labels {
			liveElsewhere[l] = true
		}
	}
	for _, l := range outLabels {
		liveElsewhere[l] = true
	}
	var spec Spec
	for la, lab := range ops[a].labels {
		for lb, rlab := range ops[b].labels {
			if lab != rlab {
				continue
			}
			if liveElsewhere[lab] {
				return Spec{}, false // batch label: cannot contract this pair yet
			}
			spec.CtrLeft = append(spec.CtrLeft, la)
			spec.CtrRight = append(spec.CtrRight, lb)
		}
	}
	return spec, len(spec.CtrLeft) > 0
}

// mergedLabels returns the label string of a pairwise product: left
// externals then right externals, in operand order (the engine's layout).
func mergedLabels(l, r []rune, spec Spec) []rune {
	ctrL := map[int]bool{}
	for _, m := range spec.CtrLeft {
		ctrL[m] = true
	}
	ctrR := map[int]bool{}
	for _, m := range spec.CtrRight {
		ctrR[m] = true
	}
	var out []rune
	for m, lab := range l {
		if !ctrL[m] {
			out = append(out, lab)
		}
	}
	for m, lab := range r {
		if !ctrR[m] {
			out = append(out, lab)
		}
	}
	return out
}

// expectedPairNNZ estimates the product's nonzero count via the Section
// 5.1 density model, used as the greedy planning cost.
func expectedPairNNZ(a, b *netOperand, spec Spec) float64 {
	lDim, cDim := splitDims(a.tensor, spec.CtrLeft)
	rDim, _ := splitDims(b.tensor, spec.CtrRight)
	if lDim == 0 || rDim == 0 || cDim == 0 {
		return 0
	}
	return model.ExpectedOutputNNZ(model.Inputs{
		NNZL: int64(a.tensor.NNZ()), NNZR: int64(b.tensor.NNZ()),
		LDim: lDim, RDim: rDim, CDim: cDim,
	})
}

// splitDims returns (product of external extents, product of contracted
// extents), saturating instead of overflowing.
func splitDims(t *Tensor, ctr []int) (ext, c uint64) {
	isCtr := make([]bool, t.Order())
	for _, m := range ctr {
		isCtr[m] = true
	}
	ext, c = 1, 1
	for m, d := range t.Dims {
		if isCtr[m] {
			c = satMul(c, d)
		} else {
			ext = satMul(ext, d)
		}
	}
	return ext, c
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > (1<<63)/b {
		return 1 << 63
	}
	return a * b
}
