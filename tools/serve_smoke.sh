#!/bin/sh
# serve-smoke: start the fastcc-serve daemon on a free port, run the
# scripted client round-trip (upload -> contract -> fetch -> compare against
# a local contraction), then shut the daemon down with SIGTERM and require a
# clean exit — which the daemon only reports when its shard-cache and
# output-chunk leak gauges returned to their startup baseline.
#
# Usage: tools/serve_smoke.sh [bin-dir]   (default bin/)
set -eu

BIN=${1:-bin}
WORK=$(mktemp -d)
ADDR_FILE="$WORK/addr"
SERVE_LOG="$WORK/serve.log"

cleanup() {
    [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

"$BIN/fastcc-serve" \
    -addr 127.0.0.1:0 -addr-file "$ADDR_FILE" \
    -threads 2 -inflight 2 -queue 16 \
    -cache-budget 1048576 -tenant-quota 262144 \
    >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!

# Wait for the daemon to publish its bound address.
i=0
while [ ! -s "$ADDR_FILE" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: daemon never wrote $ADDR_FILE" >&2
        cat "$SERVE_LOG" >&2
        exit 1
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "serve-smoke: daemon exited early" >&2
        cat "$SERVE_LOG" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$ADDR_FILE")
echo "serve-smoke: daemon on $ADDR"

# Scripted round-trip: the selftest uploads two random tensors, contracts
# them remotely twice (cold + warm), and compares each download
# bit-for-bit against a local contraction.
"$BIN/fastcc-client" -server "http://$ADDR" -tenant smoke-tenant \
    selftest -threads 2

"$BIN/fastcc-client" -server "http://$ADDR" -tenant smoke-tenant stats

# Clean shutdown: SIGTERM must produce exit 0, which the daemon gates on
# zero leak-gauge deltas after dropping all server state.
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "serve-smoke: daemon exited nonzero after SIGTERM" >&2
    cat "$SERVE_LOG" >&2
    exit 1
fi
SERVE_PID=""
grep -q "clean shutdown" "$SERVE_LOG" || {
    echo "serve-smoke: daemon log missing clean-shutdown line" >&2
    cat "$SERVE_LOG" >&2
    exit 1
}
echo "serve-smoke: ok (clean shutdown, leak gauges at baseline)"
