#!/bin/sh
# serve-smoke: start the fastcc-serve daemon on a free port, run the
# scripted client round-trip (upload -> contract -> fetch -> compare against
# a local contraction), then shut the daemon down with SIGTERM and require a
# clean exit — which the daemon only reports when its shard-cache and
# output-chunk leak gauges returned to their startup baseline.
#
# A second pair of daemon runs exercises the shard cache's disk tier: a
# 1-byte RAM budget forces every cold shard through the spill path (the
# selftest's warm round must still be bit-identical, now served from disk),
# and a persistent spill directory shared by both runs must let the second
# daemon adopt the first one's on-disk shard images (spill_adopts > 0).
#
# Usage: tools/serve_smoke.sh [bin-dir]   (default bin/)
set -eu

BIN=${1:-bin}
WORK=$(mktemp -d)
ADDR_FILE="$WORK/addr"
SERVE_LOG="$WORK/serve.log"
SPILL_DIR="$WORK/spill"

cleanup() {
    [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# start_daemon [extra flags...]: launch fastcc-serve, wait for the bound
# address, export ADDR/SERVE_PID.
start_daemon() {
    rm -f "$ADDR_FILE"
    : >"$SERVE_LOG"
    "$BIN/fastcc-serve" \
        -addr 127.0.0.1:0 -addr-file "$ADDR_FILE" \
        -threads 2 -inflight 2 -queue 16 \
        "$@" \
        >"$SERVE_LOG" 2>&1 &
    SERVE_PID=$!
    i=0
    while [ ! -s "$ADDR_FILE" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve-smoke: daemon never wrote $ADDR_FILE" >&2
            cat "$SERVE_LOG" >&2
            exit 1
        fi
        if ! kill -0 "$SERVE_PID" 2>/dev/null; then
            echo "serve-smoke: daemon exited early" >&2
            cat "$SERVE_LOG" >&2
            exit 1
        fi
        sleep 0.1
    done
    ADDR=$(cat "$ADDR_FILE")
}

# stop_daemon: SIGTERM, require exit 0 and the clean-shutdown log line.
stop_daemon() {
    kill -TERM "$SERVE_PID"
    if ! wait "$SERVE_PID"; then
        echo "serve-smoke: daemon exited nonzero after SIGTERM" >&2
        cat "$SERVE_LOG" >&2
        exit 1
    fi
    SERVE_PID=""
    grep -q "clean shutdown" "$SERVE_LOG" || {
        echo "serve-smoke: daemon log missing clean-shutdown line" >&2
        cat "$SERVE_LOG" >&2
        exit 1
    }
}

start_daemon -cache-budget 1048576 -tenant-quota 262144
echo "serve-smoke: daemon on $ADDR"

# Scripted round-trip: the selftest uploads two random tensors, contracts
# them remotely twice (cold + warm), and compares each download
# bit-for-bit against a local contraction.
"$BIN/fastcc-client" -server "http://$ADDR" -tenant smoke-tenant \
    selftest -threads 2

"$BIN/fastcc-client" -server "http://$ADDR" -tenant smoke-tenant stats

# Clean shutdown: SIGTERM must produce exit 0, which the daemon gates on
# zero leak-gauge deltas after dropping all server state.
stop_daemon
echo "serve-smoke: ok (clean shutdown, leak gauges at baseline)"

# --- spill run 1: evict-to-disk and reload within one daemon ------------
# The 1-byte cache budget evicts every cold shard at the start of each run,
# so the selftest's warm round re-pins its shards from the spill files the
# first round's eviction wrote — and must still be bit-identical.
start_daemon -cache-budget 1 \
    -spill-dir "$SPILL_DIR" -spill-budget 1048576 -spill-persist
echo "serve-smoke: spill daemon 1 on $ADDR"

"$BIN/fastcc-client" -server "http://$ADDR" -tenant smoke-tenant \
    selftest -threads 2

STATS1=$("$BIN/fastcc-client" -server "http://$ADDR" -tenant smoke-tenant stats)
echo "$STATS1"
echo "$STATS1" | grep -Eq 'spill_writes=[1-9]' || {
    echo "serve-smoke: spill daemon 1 reported no spill writes" >&2
    exit 1
}
echo "$STATS1" | grep -Eq 'spill_reads=[1-9]' || {
    echo "serve-smoke: spill daemon 1 reported no spill reads" >&2
    exit 1
}
stop_daemon
ls "$SPILL_DIR"/*.fspl >/dev/null 2>&1 || {
    echo "serve-smoke: persistent spill dir empty after daemon 1 shutdown" >&2
    exit 1
}
echo "serve-smoke: spill run 1 ok (shards spilled, reloaded, files persisted)"

# --- spill run 2: warm restart adopts the previous daemon's files -------
# Same spill dir, same selftest seed: the uploads hash to the same content
# keys, so the cold contraction must adopt daemon 1's on-disk shard images
# instead of rebuilding.
start_daemon -cache-budget 1 \
    -spill-dir "$SPILL_DIR" -spill-budget 1048576 -spill-persist
echo "serve-smoke: spill daemon 2 on $ADDR"

"$BIN/fastcc-client" -server "http://$ADDR" -tenant smoke-tenant \
    selftest -threads 2

STATS2=$("$BIN/fastcc-client" -server "http://$ADDR" -tenant smoke-tenant stats)
echo "$STATS2"
echo "$STATS2" | grep -Eq 'spill_adopts=[1-9]' || {
    echo "serve-smoke: spill daemon 2 adopted no on-disk shards after restart" >&2
    exit 1
}
stop_daemon
echo "serve-smoke: spill run 2 ok (restart adopted the on-disk cache)"
