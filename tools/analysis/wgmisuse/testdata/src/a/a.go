// Fixture for wgmisuse: fork/join skeletons in the style of
// internal/scheduler, with the two seeded bugs.
package a

import "sync"

func addInsideGoroutine(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want `Add on "wg" inside the spawned goroutine`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func correctForkJoin(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func waitWithoutAdd() {
	var wg sync.WaitGroup
	wg.Wait() // want `"wg" is waited on but never Add-ed in waitWithoutAdd`
}

func escapesToHelper(spawn func(*sync.WaitGroup)) {
	var wg sync.WaitGroup
	spawn(&wg) // the helper may Add; not our business
	wg.Wait()
}

func allowedWait() {
	var wg sync.WaitGroup
	wg.Wait() //fastcc:allow wgmisuse -- intentionally trivial in this test
}
