// Package wgmisuse flags two sync.WaitGroup mistakes that the type system
// cannot catch and the race detector only catches probabilistically:
//
//  1. Add called inside the spawned goroutine. The canonical broken form is
//
//     go func() { wg.Add(1); defer wg.Done(); ... }()
//     wg.Wait()
//
//     Wait may observe the counter at zero before any goroutine has run its
//     Add, returning early — the exact hazard in FaSTCC's fork/join
//     skeletons (scheduler.Teams/Pool/Static, coo.FromPairsP) where a
//     too-early Wait publishes half-built shard tables to the contraction
//     phase. Add must happen on the spawning side, before `go`.
//
//  2. Wait on a function-local WaitGroup that has no Add anywhere in the
//     function and whose address never escapes: the Wait is either dead
//     code or the Add it pairs with was lost in a refactor.
//
// Only function-local WaitGroups whose address does not escape are checked
// for (2); a &wg passed to a helper may legitimately receive its Adds there.
package wgmisuse

import (
	"go/ast"
	"go/types"

	"fastcc/tools/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "wgmisuse",
	Doc:  "flags WaitGroup.Add inside spawned goroutines and Wait without any Add",
	Run:  run,
}

func run(pass *framework.Pass) error {
	// Check 1: Add inside a go'ed function literal on a WaitGroup declared
	// outside that literal.
	pass.Preorder(func(n ast.Node) {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if inner, ok := m.(*ast.FuncLit); ok && inner != lit {
				return false // a nested `go` inside is its own problem
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			wg := waitGroupMethodRecv(pass.TypesInfo, call, "Add")
			if wg == nil {
				return true
			}
			if wg.Pos() < lit.Pos() || wg.Pos() >= lit.End() {
				pass.Reportf(call.Pos(),
					"WaitGroup.Add on %q inside the spawned goroutine; Wait can return before this Add runs — call Add before the go statement",
					wg.Name())
			}
			return true
		})
	})

	// Check 2: per function, local WaitGroups with a Wait but no Add and no
	// escaping use.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLocalWaitGroups(pass, fn)
		}
	}
	return nil
}

type wgUse struct {
	adds, waits int
	escapes     bool
	waitPos     ast.Node
}

func checkLocalWaitGroups(pass *framework.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	uses := map[*types.Var]*wgUse{}

	// Collect local non-pointer WaitGroup declarations.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Defs[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if _, isPtr := v.Type().(*types.Pointer); isPtr {
			return true // *WaitGroup locals alias something; out of scope
		}
		if framework.IsNamedType(v.Type(), "sync", "WaitGroup") {
			uses[v] = &wgUse{}
		}
		return true
	})
	if len(uses) == 0 {
		return
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				break
			}
			if v := localWaitGroup(info, sel.X, uses); v != nil {
				switch sel.Sel.Name {
				case "Add":
					uses[v].adds++
					return true
				case "Wait":
					uses[v].waits++
					uses[v].waitPos = n
					return true
				case "Done":
					return true
				}
			}
		case *ast.UnaryExpr:
			// &wg handed anywhere means Adds can happen out of sight.
			if v := localWaitGroup(info, n.X, uses); v != nil {
				uses[v].escapes = true
			}
		case *ast.AssignStmt:
			// wg2 := wg (vet's copylocks territory, but it also aliases).
			for _, rhs := range n.Rhs {
				if v := localWaitGroup(info, rhs, uses); v != nil {
					uses[v].escapes = true
				}
			}
		}
		return true
	})

	for v, u := range uses {
		if u.waits > 0 && u.adds == 0 && !u.escapes {
			pass.Reportf(u.waitPos.Pos(),
				"WaitGroup %q is waited on but never Add-ed in %s and its address does not escape; the Wait is a no-op or the Add was lost",
				v.Name(), fn.Name.Name)
		}
	}
}

// localWaitGroup resolves e to one of the tracked local WaitGroup variables.
func localWaitGroup(info *types.Info, e ast.Expr, uses map[*types.Var]*wgUse) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, tracked := uses[v]; !tracked {
		return nil
	}
	return v
}

// waitGroupMethodRecv returns the receiver variable when call is
// wg.<method>() on a sync.WaitGroup-typed variable (value or pointer).
func waitGroupMethodRecv(info *types.Info, call *ast.CallExpr, method string) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || !framework.IsNamedType(v.Type(), "sync", "WaitGroup") {
		return nil
	}
	return v
}
