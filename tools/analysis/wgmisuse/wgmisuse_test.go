package wgmisuse_test

import (
	"testing"

	"fastcc/tools/analysis/analysistest"
	"fastcc/tools/analysis/wgmisuse"
)

func TestWgMisuse(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), wgmisuse.Analyzer, "a")
}
