// Package analysistest runs an analyzer over small fixture packages and
// checks its diagnostics against expectations embedded in the fixtures,
// mirroring golang.org/x/tools/go/analysis/analysistest without the x/tools
// dependency.
//
// Fixtures live under <analyzer pkg>/testdata/src/<name>/ and are plain Go
// files (never built into the module — the go tool skips testdata). A line
// expecting diagnostics carries a trailing comment of the form
//
//	x := a * b // want `overflow` `second diagnostic`
//
// Each backquoted string is a regular expression that must match the message
// of exactly one diagnostic reported on that line; diagnostics without a
// matching expectation, and expectations without a matching diagnostic, fail
// the test.
//
// Fixture packages are type-checked against the standard library via the
// source importer (offline: it parses $GOROOT/src), so they may import std
// packages such as sync or sync/atomic.
//
// Fixtures may also depend on each other: Run compiles the named fixture
// packages in argument order and registers each under its directory name, so
// a later fixture can `import "mempool"` when testdata/src/mempool was named
// first. Dependency fixtures let analyzers that key on package names
// (poolescape on mempool, sealedmut on hashtable/core) see realistic typed
// call sites without importing the real module, mirroring x/tools
// analysistest's GOPATH-style fixture imports. The analyzer runs over
// dependency fixtures too, so they can carry `want` expectations (or assert
// cleanliness by carrying none).
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"fastcc/tools/analysis/framework"
)

// TestData returns the absolute path of the calling package's testdata dir.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// The source importer re-type-checks stdlib dependencies from $GOROOT/src on
// every fresh instance; share one across all fixtures in a test binary.
var (
	importerOnce sync.Once
	sharedImp    types.Importer
	sharedFset   = token.NewFileSet()
)

func stdImporter() types.Importer {
	importerOnce.Do(func() {
		sharedImp = importer.ForCompiler(sharedFset, "source", nil)
	})
	return sharedImp
}

// fixtureImporter resolves imports against already-compiled sibling fixture
// packages first, falling back to the shared stdlib source importer.
type fixtureImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.local[path]; ok {
		return p, nil
	}
	return fi.std.Import(path)
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("// want((?: +`[^`]*`)+)")
var wantArgRe = regexp.MustCompile("`([^`]*)`")

// Run loads testdata/src/<name> for each named fixture package, applies the
// analyzer, and reports mismatches through t.
//
// Per-package analyzers (Run set) are applied to each fixture package in
// isolation, in argument order. Whole-program analyzers (RunProgram set) see
// all named fixtures as one Program: every package is type-checked first,
// the analyzer runs once over the combined call graph, and `want`
// expectations are matched across all fixture files together — so a
// two-package fixture can assert that a diagnostic in package a is caused by
// a function in package b.
func Run(t *testing.T, testdata string, a *framework.Analyzer, fixtures ...string) {
	t.Helper()
	if a.RunProgram != nil {
		runProgram(t, testdata, a, fixtures)
		return
	}
	imp := fixtureImporter{local: map[string]*types.Package{}, std: stdImporter()}
	for _, name := range fixtures {
		dir := filepath.Join(testdata, "src", name)
		pkg := runDir(t, dir, a, imp)
		if pkg != nil {
			imp.local[name] = pkg
		}
	}
}

// loadDir parses and type-checks one fixture directory, returning the loaded
// package and the per-file expectations.
func loadDir(t *testing.T, dir string, imp types.Importer) (*framework.Package, map[string]map[int][]*expectation) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	want := map[string]map[int][]*expectation{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(sharedFset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		want[path] = parseExpectations(t, string(src))
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	info := framework.NewTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(filepath.Base(dir), sharedFset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	return &framework.Package{
		ImportPath: filepath.Base(dir),
		Dir:        dir,
		Fset:       sharedFset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
	}, want
}

// runProgram loads every named fixture into one shared Program and applies a
// whole-program analyzer once over it.
func runProgram(t *testing.T, testdata string, a *framework.Analyzer, fixtures []string) {
	t.Helper()
	imp := fixtureImporter{local: map[string]*types.Package{}, std: stdImporter()}
	var pkgs []*framework.Package
	var allFiles []*ast.File
	want := map[string]map[int][]*expectation{}
	for _, name := range fixtures {
		pkg, w := loadDir(t, filepath.Join(testdata, "src", name), imp)
		imp.local[name] = pkg.Pkg
		pkgs = append(pkgs, pkg)
		allFiles = append(allFiles, pkg.Files...)
		for file, byLine := range w {
			want[file] = byLine
		}
	}

	var diags []framework.Diagnostic
	sup := framework.CollectSuppressions(sharedFset, allFiles)
	pass := &framework.ProgramPass{
		Analyzer: a,
		Program:  framework.NewProgram(pkgs),
		Report: func(d framework.Diagnostic) {
			if !sup.Allows(sharedFset, d) {
				diags = append(diags, d)
			}
		},
	}
	if err := a.RunProgram(pass); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	matchExpectations(t, diags, want)
}

// matchExpectations pairs reported diagnostics with `want` expectations and
// reports both unexpected diagnostics and unmatched expectations through t.
func matchExpectations(t *testing.T, diags []framework.Diagnostic, want map[string]map[int][]*expectation) {
	t.Helper()
	for _, d := range diags {
		pos := sharedFset.Position(d.Pos)
		exps := want[pos.Filename][pos.Line]
		ok := false
		for _, exp := range exps {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	var lines []int
	for file, byLine := range want {
		lines = lines[:0]
		for ln := range byLine {
			lines = append(lines, ln)
		}
		sort.Ints(lines)
		for _, ln := range lines {
			for _, exp := range byLine[ln] {
				if !exp.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, ln, exp.re)
				}
			}
		}
	}
}

func runDir(t *testing.T, dir string, a *framework.Analyzer, imp types.Importer) *types.Package {
	t.Helper()
	fpkg, want := loadDir(t, dir, imp)

	var diags []framework.Diagnostic
	sup := framework.CollectSuppressions(sharedFset, fpkg.Files)
	pass := &framework.Pass{
		Analyzer:  a,
		Fset:      sharedFset,
		Files:     fpkg.Files,
		Pkg:       fpkg.Pkg,
		TypesInfo: fpkg.TypesInfo,
		Report: func(d framework.Diagnostic) {
			if !sup.Allows(sharedFset, d) {
				diags = append(diags, d)
			}
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	matchExpectations(t, diags, want)
	return fpkg.Pkg
}

func parseExpectations(t *testing.T, src string) map[int][]*expectation {
	t.Helper()
	out := map[int][]*expectation{}
	for i, line := range strings.Split(src, "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
			re, err := regexp.Compile(arg[1])
			if err != nil {
				t.Fatalf("bad want regexp %q: %v", arg[1], err)
			}
			out[i+1] = append(out[i+1], &expectation{re: re})
		}
	}
	return out
}
