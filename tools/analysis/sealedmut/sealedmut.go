// Package sealedmut flags writes through sealed, share-by-reading structures
// outside their sealing constructors.
//
// The LLC-blocked contract schedule (PR 3) depends on hashtable.Sealed and
// core.Shard being immutable once built: every worker reads them
// concurrently without locks, and the equivalence suite's bit-identical
// guarantee assumes the tables never change between runs. The compiler
// cannot enforce "read-only after this point", so this analyzer does: any
// assignment (including element writes and op-assignments) whose target is a
// field of a hashtable.Sealed or core.Shard value is reported unless the
// enclosing function carries the sealing-constructor marker in its doc
// comment:
//
//	// Seal converts the table into its read-only SoA form. ...
//	//
//	//fastcc:sealer
//	func (t *SliceTable) Seal() *Sealed { ... }
//
// The marker names the one place a sealed structure may legally be written:
// the constructor (or lifecycle method, like the fastcc_checked
// invalidation hook) that establishes the immutability invariant everyone
// else relies on. A write anywhere else is either a bug or a design change
// that must move into the constructor; //fastcc:allow sealedmut exists for
// the rare test-fixture-style exception and demands a written reason.
//
// A single write may instead carry the //fastcc:owned line marker (shared
// with poolescape): it asserts the writer still privately owns the value —
// the structure has not been published to concurrent readers yet — which is
// sealing at statement rather than function granularity.
//
// The check is shallow by design: it sees writes through values statically
// typed as the sealed structs (s.field = v, s.field[i] = v, s.field = append
// ...). Writes through a previously extracted alias (ps := s.pairs;
// ps[0] = v) are not modeled — the fastcc_checked poison/generation runtime
// mode is the net under that gap.
package sealedmut

import (
	"go/ast"
	"go/types"

	"fastcc/tools/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "sealedmut",
	Doc:  "flags writes to hashtable.Sealed / core.Shard fields outside //fastcc:sealer constructors",
	Run:  run,
}

// sealedTypes names the read-only-after-build structures, keyed by the
// declaring package's name.
var sealedTypes = map[string]map[string]bool{
	"hashtable": {"Sealed": true},
	"core":      {"Shard": true},
}

func run(pass *framework.Pass) error {
	owned := framework.CollectLineMarkers(pass.Fset, pass.Files, "owned")
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || framework.FuncHasMarker(fn, "sealer") {
				continue
			}
			checkFunc(pass, fn, owned)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fn *ast.FuncDecl, owned map[string]map[int]bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if framework.MarkedAt(pass.Fset, owned, n.Pos()) {
				return true
			}
			for _, lhs := range n.Lhs {
				reportSealedTarget(pass, fn, lhs)
			}
		case *ast.IncDecStmt:
			if framework.MarkedAt(pass.Fset, owned, n.Pos()) {
				return true
			}
			reportSealedTarget(pass, fn, n.X)
		}
		return true
	})
}

// reportSealedTarget reports lhs when it resolves (through element and slice
// expressions) to a field selector on a sealed type.
func reportSealedTarget(pass *framework.Pass, fn *ast.FuncDecl, lhs ast.Expr) {
	e := ast.Unparen(lhs)
	for {
		switch t := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(t.X)
			continue
		case *ast.SliceExpr:
			e = ast.Unparen(t.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(t.X)
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Only field selections count; method values cannot be assigned to.
	if v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); !ok || !v.IsField() {
		return
	}
	if name := sealedTypeName(pass.TypesInfo.TypeOf(sel.X)); name != "" {
		pass.Reportf(lhs.Pos(),
			"write to %s field %s in %s mutates a sealed structure outside a //fastcc:sealer constructor; concurrent readers assume immutability (move into the sealer or annotate //fastcc:allow sealedmut)",
			name, sel.Sel.Name, fn.Name.Name)
	}
}

// sealedTypeName returns "pkg.Type" when t (after pointer indirection) is a
// registered sealed type, and "" otherwise.
func sealedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	if sealedTypes[obj.Pkg().Name()][obj.Name()] {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return ""
}
