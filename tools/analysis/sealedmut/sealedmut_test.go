package sealedmut_test

import (
	"testing"

	"fastcc/tools/analysis/analysistest"
	"fastcc/tools/analysis/sealedmut"
)

func TestSealedMut(t *testing.T) {
	// hashtable and core fixtures are compiled first so "a" can import them;
	// they carry no expectations (type declarations only).
	analysistest.Run(t, analysistest.TestData(), sealedmut.Analyzer, "hashtable", "core", "a")
}
