// Fixture for sealedmut: writes through sealed structures outside their
// //fastcc:sealer constructors.
package a

import (
	"core"
	"hashtable"
)

func mutatesSealedField(s *hashtable.Sealed) {
	s.Keys = nil // want `write to hashtable.Sealed field Keys`
}

func mutatesSealedElement(s *hashtable.Sealed) {
	s.Keys[0] = 7 // want `write to hashtable.Sealed field Keys`
}

func mutatesSealedViaAppend(s *hashtable.Sealed) {
	s.Pairs = append(s.Pairs, hashtable.Pair{}) // want `write to hashtable.Sealed field Pairs`
}

func mutatesSealedOpAssign(s hashtable.Sealed) {
	s.Gen += 1 // want `write to hashtable.Sealed field Gen`
}

func mutatesSealedIncDec(s *hashtable.Sealed) {
	s.Gen++ // want `write to hashtable.Sealed field Gen`
}

func mutatesShard(sh *core.Shard) {
	sh.NonEmptyTiles = append(sh.NonEmptyTiles, 3) // want `write to core.Shard field NonEmptyTiles`
	sh.PairTotal++                                 // want `write to core.Shard field PairTotal`
}

// seal is the sealing constructor: the one place writes are legal.
//
//fastcc:sealer
func seal(keys []uint64) *hashtable.Sealed {
	s := &hashtable.Sealed{}
	s.Keys = keys
	for i := range s.Keys {
		s.Keys[i] = s.Keys[i] * 2
	}
	s.Gen = 1
	return s
}

func allowedWrite(s *hashtable.Sealed) {
	s.Gen = 0 //fastcc:allow sealedmut -- fixture resets a table it exclusively owns
}

// ownedWrite exercises the //fastcc:owned statement-granularity suppression:
// the value has not been published to concurrent readers yet.
func ownedWrite(keys []uint64) *hashtable.Sealed {
	s := &hashtable.Sealed{}
	s.Keys = keys //fastcc:owned -- s is function-local, unpublished until return
	return s
}

func readsAreFine(s *hashtable.Sealed, sh *core.Shard) int {
	n := s.Len() + len(s.Keys) + len(sh.NonEmptyTiles)
	local := struct{ Keys []uint64 }{}
	local.Keys = s.Keys // writing an unrelated struct's field: fine
	return n + len(local.Keys)
}
