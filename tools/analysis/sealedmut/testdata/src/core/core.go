// Package core mirrors the shard shape of fastcc/internal/core for
// sealedmut fixtures.
package core

// Shard is the built tile-table set stub.
type Shard struct {
	NonEmptyTiles []int
	PairTotal     int
}
