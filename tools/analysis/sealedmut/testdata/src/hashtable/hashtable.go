// Package hashtable mirrors the sealed-table shape of
// fastcc/internal/hashtable for sealedmut fixtures. Fields are exported so
// the fixture package can form writes to them; the analyzer keys on the
// package name and type name, not on field visibility.
package hashtable

// Pair is one (intra-tile index, value) entry.
type Pair struct {
	Idx uint32
	Val float64
}

// Sealed is the read-only SoA table stub.
type Sealed struct {
	Keys  []uint64
	Pairs []Pair
	Gen   uint32
}

func (s *Sealed) Len() int { return len(s.Keys) }
