// Fixture for linovf: dimension products in the style of the linearized
// L x R output index math of Algorithms 5/6.
package a

import "math/bits"

func raw(lDim, rDim uint64) uint64 {
	return lDim * rDim // want `dimension-like operand "lDim"`
}

func viaIndex(shape []uint64) uint64 {
	return shape[0] * shape[1] // want `dimension-like operand "shape"`
}

func viaStride(stride, c uint64) uint64 {
	return stride * c // want `dimension-like operand "stride"`
}

func compound(total uint64, dims []uint64) uint64 {
	for i := range dims {
		total *= dims[i] // want `dimension-like operand "dims"`
	}
	return total
}

func converted(lDim, rDim uint64) int64 {
	return int64(lDim) * int64(rDim) // want `dimension-like operand "lDim"`
}

func floatDomain(lDim, rDim uint64) float64 {
	return float64(lDim) * float64(rDim) // float math saturates: fine
}

func checked(lDim, rDim uint64) (uint64, bool) {
	hi, lo := bits.Mul64(lDim, rDim) // the blessed pattern: fine
	return lo, hi == 0
}

func unrelated(i, j int) int {
	return i * j // no dimension flavor: fine
}

func allowed(lDim, rDim uint64) uint64 {
	return lDim * rDim //fastcc:allow linovf -- extents validated by Strides upstream
}
