package linovf_test

import (
	"testing"

	"fastcc/tools/analysis/analysistest"
	"fastcc/tools/analysis/linovf"
)

func TestLinOvf(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), linovf.Analyzer, "a")
}
