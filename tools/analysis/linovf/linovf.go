// Package linovf flags raw multiplications of tensor-dimension quantities.
//
// FaSTCC linearizes multi-mode coordinates into single indices (paper
// Algorithms 5/6): the output space is L × R where L and R are products of
// mode extents. Those products overflow int64/uint64 silently once mode
// extents grow — which is exactly why internal/coo/linearize.go routes every
// extent product through math/bits.Mul64 with an overflow check (Strides,
// LinearSize). This analyzer enforces that discipline: any integer `a * b`
// or `a *= b` where an operand is named like a dimension (dim, extent,
// shape, stride) is reported unless the line carries a
// //fastcc:allow linovf justification.
//
// The fix is one of:
//   - coo.LinearSize / coo.Strides for products of mode extents;
//   - math/bits.Mul64 with an explicit hi != 0 check;
//   - a //fastcc:allow linovf comment stating why overflow is impossible
//     (e.g. the operands were already validated by Strides).
package linovf

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"fastcc/tools/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "linovf",
	Doc:  "flags unchecked integer products of tensor dimensions (index-linearization overflow)",
	Run:  run,
}

// dimNameRe matches identifiers that name dimension-like quantities. The
// list is deliberately narrow — tile sides (tl/tr) and loop bounds are
// excluded — so a hit almost always really is a mode-extent product.
var dimNameRe = regexp.MustCompile(`(?i)(dim|extent|shape|stride)`)

func run(pass *framework.Pass) error {
	pass.Preorder(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.MUL {
				return
			}
			if !isInteger(pass.TypesInfo, n.X) || !isInteger(pass.TypesInfo, n.Y) {
				return
			}
			if name := dimOperand(n.X); name != "" {
				report(pass, n.Pos(), name)
			} else if name := dimOperand(n.Y); name != "" {
				report(pass, n.Pos(), name)
			}
		case *ast.AssignStmt:
			if n.Tok != token.MUL_ASSIGN || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return
			}
			if !isInteger(pass.TypesInfo, n.Lhs[0]) {
				return
			}
			if name := dimOperand(n.Lhs[0]); name != "" {
				report(pass, n.Pos(), name)
			} else if name := dimOperand(n.Rhs[0]); name != "" {
				report(pass, n.Pos(), name)
			}
		}
	})
	return nil
}

func report(pass *framework.Pass, pos token.Pos, name string) {
	pass.Reportf(pos,
		"unchecked integer product involving dimension-like operand %q may overflow; use coo.LinearSize/coo.Strides or bits.Mul64 with a check (or annotate //fastcc:allow linovf with a reason)",
		name)
}

// isInteger reports whether the expression's type is an integer kind;
// float-domain dimension math (model heuristics) saturates instead of
// wrapping and is not this analyzer's business.
func isInteger(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// dimOperand descends through parens, conversions, unary ops, index
// expressions and nested products to find a dimension-named identifier; it
// returns the offending name, or "".
func dimOperand(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return dimOperand(e.X)
	case *ast.UnaryExpr:
		return dimOperand(e.X)
	case *ast.Ident:
		if dimNameRe.MatchString(e.Name) {
			return e.Name
		}
	case *ast.SelectorExpr:
		if dimNameRe.MatchString(e.Sel.Name) {
			return e.Sel.Name
		}
	case *ast.IndexExpr:
		return dimOperand(e.X)
	case *ast.BinaryExpr:
		if name := dimOperand(e.X); name != "" {
			return name
		}
		return dimOperand(e.Y)
	case *ast.CallExpr:
		// Conversions like uint64(d) keep the dimension flavor; real calls
		// (len, t.NNZ()) do not. A single-argument call whose operand is
		// dimension-named is treated as a conversion-or-accessor and
		// inspected; multi-argument calls are opaque.
		if len(e.Args) == 1 {
			return dimOperand(e.Args[0])
		}
	}
	return ""
}
