// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// sufficient to host FaSTCC's custom vet checks. The container this repo is
// built in has no module network access, so instead of importing x/tools we
// mirror its shape on the standard library: analyzers receive a type-checked
// package and report position-tagged diagnostics; drivers (cmd/fastcc-vet,
// the analysistest harness) load packages and collect reports.
//
// Suppression: a diagnostic is dropped when the line it points at, or the
// line above, carries a comment of the form
//
//	//fastcc:allow name1,name2 -- optional justification
//
// naming the analyzer (or the word "all"). This is the repo's equivalent of
// //nolint, kept deliberately narrow: one line, named analyzers, visible in
// review diffs.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer describes one static check. Exactly one of Run (per-package)
// and RunProgram (whole-program) must be set; drivers reject registrations
// that set both or neither.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //fastcc:allow
	// suppression comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// RunProgram applies the analyzer once to every loaded package at once,
	// with a shared call graph — for interprocedural checks (escape chains,
	// lock-order summaries) that need to see across package boundaries.
	RunProgram func(*ProgramPass) error
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers install this; analyzers call
	// Reportf instead.
	Report func(Diagnostic)
}

// A ProgramPass presents every loaded package to a whole-program analyzer.
// The packages are the pattern-matched targets of one Load call; packages
// outside the pattern (the standard library, export-only dependencies) have
// no syntax here, and analyzers must treat calls into them conservatively.
type ProgramPass struct {
	Analyzer *Analyzer
	Program  *Program

	// Report delivers one diagnostic. Drivers install this; analyzers call
	// Reportf instead.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Preorder walks every file of the pass in depth-first preorder, calling fn
// for each node. A nil-returning shorthand over ast.Inspect for analyzers
// that do not need to prune subtrees.
func (p *Pass) Preorder(fn func(ast.Node)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				fn(n)
			}
			return true
		})
	}
}

var allowRe = regexp.MustCompile(`fastcc:allow\s+([a-zA-Z0-9_,]+)`)

// Suppressions records, per file and line, which analyzer names are allowed.
type Suppressions map[string]map[int]map[string]bool

// CollectSuppressions scans the comments of files for //fastcc:allow
// directives. A directive covers its own line and the line below, so it can
// sit either at the end of the offending line or alone just above it.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) Suppressions {
	sup := Suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[pos.Filename] = lines
				}
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						if lines[ln] == nil {
							lines[ln] = map[string]bool{}
						}
						lines[ln][name] = true
					}
				}
			}
		}
	}
	return sup
}

// Allows reports whether a diagnostic from the named analyzer at the given
// position is suppressed.
func (s Suppressions) Allows(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	names := lines[pos.Line]
	return names["all"] || names[d.Analyzer]
}

// CollectLineMarkers records, per file, the lines covered by a
// //fastcc:<marker> comment. Like //fastcc:allow directives, a marker covers
// its own line and the line below, so it can sit at the end of the marked
// statement or alone just above it. Analyzers use this for ownership
// directives such as //fastcc:owned (poolescape) that are assertions about
// the code rather than suppressions of a finding class.
func CollectLineMarkers(fset *token.FileSet, files []*ast.File, marker string) map[string]map[int]bool {
	want := "fastcc:" + marker
	out := map[string]map[int]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, want) {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = map[int]bool{}
					out[pos.Filename] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	return out
}

// MarkedAt reports whether the marker map collected by CollectLineMarkers
// covers the given position.
func MarkedAt(fset *token.FileSet, markers map[string]map[int]bool, pos token.Pos) bool {
	p := fset.Position(pos)
	return markers[p.Filename][p.Line]
}

// CollectLineMarkerArgs is CollectLineMarkers for directives that carry
// arguments: it records, per file and line, the text following
// //fastcc:<marker> up to an optional "--" justification, trimmed. Like the
// other line directives, a marker covers its own line and the line below.
// Example: `mu sync.Mutex //fastcc:lockrank 2 exclusive` records "2
// exclusive" on the field's line.
func CollectLineMarkerArgs(fset *token.FileSet, files []*ast.File, marker string) map[string]map[int]string {
	want := "fastcc:" + marker
	out := map[string]map[int]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, want)
				if idx < 0 {
					continue
				}
				arg := MarkerArg(c.Text[idx+len(want):])
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = map[int]string{}
					out[pos.Filename] = lines
				}
				lines[pos.Line] = arg
				lines[pos.Line+1] = arg
			}
		}
	}
	return out
}

// MarkerArgAt returns the argument recorded by CollectLineMarkerArgs at pos
// and whether a directive covers that line.
func MarkerArgAt(fset *token.FileSet, markers map[string]map[int]string, pos token.Pos) (string, bool) {
	p := fset.Position(pos)
	arg, ok := markers[p.Filename][p.Line]
	return arg, ok
}

// MarkerArg normalizes a directive's trailing text: everything up to an
// optional " -- justification", whitespace-trimmed.
func MarkerArg(rest string) string {
	if cut := strings.Index(rest, "--"); cut >= 0 {
		rest = rest[:cut]
	}
	return strings.TrimSpace(rest)
}

// FuncMarkerArgs returns the whitespace-split arguments of every
// //fastcc:<marker> directive in the function's doc comment. A directive with
// no arguments contributes nothing; `//fastcc:owned buf dst` contributes
// "buf" and "dst". Used for parameter-level ownership annotations, where the
// directive names the parameters whose ownership transfers to the callee.
func FuncMarkerArgs(fn *ast.FuncDecl, marker string) []string {
	if fn == nil || fn.Doc == nil {
		return nil
	}
	want := "fastcc:" + marker
	var args []string
	for _, c := range fn.Doc.List {
		idx := strings.Index(c.Text, want)
		if idx < 0 {
			continue
		}
		args = append(args, strings.Fields(MarkerArg(c.Text[idx+len(want):]))...)
	}
	return args
}

// FuncHasMarker reports whether the function declaration carries the given
// //fastcc:<marker> directive in its doc comment (e.g. "hotpath").
func FuncHasMarker(fn *ast.FuncDecl, marker string) bool {
	if fn.Doc == nil {
		return false
	}
	want := "fastcc:" + marker
	for _, c := range fn.Doc.List {
		if strings.Contains(c.Text, want) {
			return true
		}
	}
	return false
}

// IsBuiltin reports whether the call expression invokes the named builtin
// (make, new, append, ...), resolved through the type checker so shadowed
// identifiers do not count.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// CalleeFunc returns the *types.Func a call statically resolves to, or nil
// for builtins, conversions and dynamic calls through function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsNamedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
