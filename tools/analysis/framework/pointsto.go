// Flow-insensitive points-to analysis for function values: the half of the
// devirtualization layer that resolves indirect calls through variables,
// struct fields and tables of funcs (cha.go resolves the interface half).
//
// The model is an Andersen-style constraint system specialized to function
// values. Abstract locations are
//
//   - variables and struct fields of function type (one location per
//     types.Var — fields are field-sensitive but receiver-insensitive: every
//     instance of a struct shares its field's location),
//   - the merged elements of a container (slice, array, map) of functions,
//     one location per container variable or field (kernelTable-shaped
//     dispatch tables), and
//   - the results of each function with source, one location per (function,
//     result index), which is how func-returning helpers like selectKernel
//     propagate their table reads to their callers.
//
// Seeding walks every loaded file once: function literals and uses of
// declared functions as values flow into the location they are assigned,
// stored or passed to; composite literals seed field and element locations;
// call sites link arguments to parameter locations and bindings to result
// locations. Propagation then closes the subset edges to a fixpoint.
//
// Anything the model does not understand makes the receiving location
// Unknown rather than silently empty: reads through pointers, channels,
// type assertions, unsafe, calls into packages loaded only as export data,
// and taking the address of a func-typed variable all poison the locations
// they touch. A call site resolved against an Unknown location stays
// Opaque, which is the documented fallback — the soundness gap is counted,
// not hidden (see CallStats).
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A ptKey names one abstract location. Exactly one of v and fn is set: v
// for variable/field locations (elem selects the container-element cell),
// fn+ret for a function's result location.
type ptKey struct {
	v    *types.Var
	fn   *FuncNode
	ret  int
	elem bool
}

// A funcSet is a may-point-to set. unknown records that a value of
// unanalyzable origin may also inhabit the location.
type funcSet struct {
	funcs   map[*FuncNode]bool
	unknown bool
}

// PointsTo is the solved constraint system.
type PointsTo struct {
	graph *CallGraph
	pts   map[ptKey]*funcSet
	// edges[src] lists the locations that must include src's set (dst ⊇ src).
	edges map[ptKey][]ptKey
	seen  map[[2]ptKey]bool
}

func (pt *PointsTo) set(k ptKey) *funcSet {
	s := pt.pts[k]
	if s == nil {
		s = &funcSet{funcs: map[*FuncNode]bool{}}
		pt.pts[k] = s
	}
	return s
}

func (pt *PointsTo) addFunc(k ptKey, n *FuncNode) {
	if n == nil {
		pt.set(k).unknown = true
		return
	}
	pt.set(k).funcs[n] = true
}

func (pt *PointsTo) setUnknown(k ptKey) { pt.set(k).unknown = true }

func (pt *PointsTo) addEdge(dst, src ptKey) {
	key := [2]ptKey{dst, src}
	if pt.seen[key] {
		return
	}
	pt.seen[key] = true
	pt.edges[src] = append(pt.edges[src], dst)
	pt.set(src) // materialize so propagation visits it
	pt.set(dst)
}

// isFuncType reports whether t's underlying type is a function signature.
func isFuncType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// funcContainerElem returns the element type when t is a container (slice,
// array, map) whose elements are functions or nested func containers.
func funcContainerElem(t types.Type) (types.Type, bool) {
	if t == nil {
		return nil, false
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	case *types.Map:
		elem = u.Elem()
	case *types.Pointer:
		// *[N]func(): slicing and indexing work through the pointer.
		return funcContainerElem(u.Elem())
	default:
		return nil, false
	}
	if isFuncType(elem) {
		return elem, true
	}
	if _, ok := funcContainerElem(elem); ok {
		return elem, true
	}
	return nil, false
}

// buildPointsTo seeds and solves the constraint system over every loaded
// package. The call graph must already have its direct edges resolved —
// argument/parameter and result linking follow them.
func buildPointsTo(pkgs []*Package, g *CallGraph) *PointsTo {
	pt := &PointsTo{
		graph: g,
		pts:   map[ptKey]*funcSet{},
		edges: map[ptKey][]ptKey{},
		seen:  map[[2]ptKey]bool{},
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			pt.seedFile(pkg.TypesInfo, file)
		}
	}
	for _, node := range g.Nodes {
		pt.seedNode(node)
	}
	pt.solve()
	return pt
}

// seedFile walks one file for the location-independent seeds: assignments,
// var declarations, composite literals, range bindings, and address-of
// poisoning. Function bodies are included — these shapes read the same
// regardless of the enclosing function.
func (pt *PointsTo) seedFile(info *types.Info, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			pt.seedAssign(info, n)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				v, _ := info.Defs[name].(*types.Var)
				if v == nil {
					continue
				}
				if i < len(n.Values) {
					pt.flowTo(info, v, n.Values[i])
				} else if len(n.Values) == 1 && len(n.Names) > 1 {
					// var a, b = f(): tuple binding.
					pt.flowTupleResult(info, v, n.Values[0], i)
				}
			}
		case *ast.CompositeLit:
			pt.seedStructLit(info, n)
		case *ast.RangeStmt:
			// for _, f := range table: the value binding reads the elements.
			if n.Value != nil {
				if id, ok := n.Value.(*ast.Ident); ok {
					if v, _ := info.Defs[id].(*types.Var); v != nil && isFuncType(v.Type()) {
						if root, ok := pt.containerLoc(info, n.X); ok {
							pt.addEdge(ptKey{v: v}, root)
						} else {
							pt.setUnknown(ptKey{v: v})
						}
					}
				}
			}
		case *ast.UnaryExpr:
			// Taking the address of a func-typed variable (or a container of
			// funcs) lets writes happen through the pointer, which the model
			// does not track: poison the location.
			if n.Op == token.AND {
				t := info.TypeOf(n.X)
				if isFuncType(t) {
					if loc, ok := pt.valueLoc(info, n.X); ok {
						pt.setUnknown(loc)
					}
				} else if _, ok := funcContainerElem(t); ok {
					if root, ok := pt.containerLoc(info, n.X); ok {
						pt.setUnknown(root)
					}
				}
			}
		}
		return true
	})
}

// seedAssign handles one assignment statement, = and := alike.
func (pt *PointsTo) seedAssign(info *types.Info, as *ast.AssignStmt) {
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		// Tuple assignment: from a call's results, or a comma-ok form whose
		// value half is poisoned (map read, type assertion, channel receive).
		for i, lhs := range as.Lhs {
			pt.flowTupleTo(info, lhs, as.Rhs[0], i)
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		pt.flowToExpr(info, lhs, as.Rhs[i])
	}
}

// flowToExpr flows rhs into the location named by the lhs expression.
func (pt *PointsTo) flowToExpr(info *types.Info, lhs, rhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	t := info.TypeOf(lhs)
	switch {
	case isFuncType(t):
		if loc, ok := pt.valueLoc(info, lhs); ok {
			pt.flowValue(info, loc, rhs)
		} else if root, ok := pt.indexTargetLoc(info, lhs); ok {
			// table[i] = f: the element cell absorbs the value.
			pt.flowValue(info, root, rhs)
		}
		// Unresolvable func-typed targets (writes through pointers or into
		// unanalyzable structure) lose the value; reads from such places
		// come back unknown, so resolution stays conservative.
	default:
		if _, ok := funcContainerElem(t); ok {
			if root, ok := pt.containerLoc(info, lhs); ok {
				pt.flowContainer(info, root, rhs)
			}
		}
	}
}

// flowTo flows rhs into variable v (declaration forms).
func (pt *PointsTo) flowTo(info *types.Info, v *types.Var, rhs ast.Expr) {
	if isFuncType(v.Type()) {
		pt.flowValue(info, ptKey{v: v}, rhs)
	} else if _, ok := funcContainerElem(v.Type()); ok {
		pt.flowContainer(info, ptKey{v: v, elem: true}, rhs)
	}
}

// flowTupleTo links one lhs of a tuple assignment to result i of the rhs.
func (pt *PointsTo) flowTupleTo(info *types.Info, lhs, rhs ast.Expr, i int) {
	lhs = ast.Unparen(lhs)
	t := info.TypeOf(lhs)
	isFunc := isFuncType(t)
	_, isContainer := funcContainerElem(t)
	if !isFunc && !isContainer {
		return
	}
	var loc ptKey
	var ok bool
	if isFunc {
		loc, ok = pt.valueLoc(info, lhs)
	} else {
		loc, ok = pt.containerLoc(info, lhs)
	}
	if !ok {
		return
	}
	if call, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall {
		if callee := pt.calleeNode(info, call); callee != nil {
			src := ptKey{fn: callee, ret: i, elem: isContainer}
			pt.addEdge(loc, src)
			return
		}
	}
	// Comma-ok forms and calls without source: unknown origin.
	pt.setUnknown(loc)
}

// flowTupleResult links var i of a multi-binding var decl to the call.
func (pt *PointsTo) flowTupleResult(info *types.Info, v *types.Var, rhs ast.Expr, i int) {
	isFunc := isFuncType(v.Type())
	_, isContainer := funcContainerElem(v.Type())
	if !isFunc && !isContainer {
		return
	}
	loc := ptKey{v: v, elem: isContainer}
	if call, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall {
		if callee := pt.calleeNode(info, call); callee != nil {
			pt.addEdge(loc, ptKey{fn: callee, ret: i, elem: isContainer})
			return
		}
	}
	pt.setUnknown(loc)
}

// valueLoc resolves an expression to the location holding its func value,
// when the expression is a trackable place (variable, field, package var).
func (pt *PointsTo) valueLoc(info *types.Info, e ast.Expr) (ptKey, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Defs[e]
		if obj == nil {
			obj = info.Uses[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return ptKey{v: v}, true
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			if sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					return ptKey{v: v}, true
				}
			}
			return ptKey{}, false
		}
		// Qualified identifier: pkg.Var.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return ptKey{v: v}, true
		}
	}
	return ptKey{}, false
}

// containerLoc resolves a container expression to its element cell.
func (pt *PointsTo) containerLoc(info *types.Info, e ast.Expr) (ptKey, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if loc, ok := pt.valueLoc(info, e); ok {
			return ptKey{v: loc.v, elem: true}, true
		}
	case *ast.IndexExpr:
		// Nested containers merge into the outer cell.
		return pt.containerLoc(info, e.X)
	case *ast.SliceExpr:
		return pt.containerLoc(info, e.X)
	case *ast.StarExpr:
		return pt.containerLoc(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return pt.containerLoc(info, e.X)
		}
	}
	return ptKey{}, false
}

// indexTargetLoc resolves an index-assignment target (table[i] = f) to the
// container's element cell.
func (pt *PointsTo) indexTargetLoc(info *types.Info, e ast.Expr) (ptKey, bool) {
	idx, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return ptKey{}, false
	}
	return pt.containerLoc(info, idx.X)
}

// flowValue flows the func value of expression e into dst.
func (pt *PointsTo) flowValue(info *types.Info, dst ptKey, e ast.Expr) {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		pt.addFunc(dst, pt.graph.ByLit[e])
	case *ast.Ident:
		switch obj := info.Uses[e].(type) {
		case *types.Func:
			pt.addFunc(dst, pt.graph.ByObj[funcOrigin(obj)])
		case *types.Var:
			pt.addEdge(dst, ptKey{v: obj})
		case *types.Nil:
			// nil contributes nothing.
		case nil:
			if e.Name != "nil" && e.Name != "_" {
				pt.setUnknown(dst)
			}
		default:
			pt.setUnknown(dst)
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				if fn, ok := sel.Obj().(*types.Func); ok {
					pt.addFunc(dst, pt.graph.ByObj[funcOrigin(fn)])
					return
				}
			case types.FieldVal:
				if v, ok := sel.Obj().(*types.Var); ok {
					pt.addEdge(dst, ptKey{v: v})
					return
				}
			}
			pt.setUnknown(dst)
			return
		}
		switch obj := info.Uses[e.Sel].(type) {
		case *types.Func:
			pt.addFunc(dst, pt.graph.ByObj[funcOrigin(obj)])
		case *types.Var:
			pt.addEdge(dst, ptKey{v: obj})
		default:
			pt.setUnknown(dst)
		}
	case *ast.IndexExpr:
		// Either a table read or a generic instantiation F[T].
		if tv, ok := info.Types[e.X]; ok && tv.IsType() {
			pt.setUnknown(dst)
			return
		}
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				pt.addFunc(dst, pt.graph.ByObj[funcOrigin(fn)])
				return
			}
		}
		if root, ok := pt.containerLoc(info, e.X); ok {
			pt.addEdge(dst, root)
		} else {
			pt.setUnknown(dst)
		}
	case *ast.CallExpr:
		if IsConversionOrBuiltin(info, e) {
			// Conversion of a func value: same value, new type.
			if len(e.Args) == 1 && !IsBuiltin(info, e, "append") {
				pt.flowValue(info, dst, e.Args[0])
			} else {
				pt.setUnknown(dst)
			}
			return
		}
		if callee := pt.calleeNode(info, e); callee != nil {
			pt.addEdge(dst, ptKey{fn: callee, ret: 0})
		} else {
			pt.setUnknown(dst)
		}
	default:
		pt.setUnknown(dst)
	}
}

// flowContainer flows the elements of container expression e into the cell.
func (pt *PointsTo) flowContainer(info *types.Info, cell ptKey, e ast.Expr) {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		pt.flowContainerLit(info, cell, e)
	case *ast.CallExpr:
		if IsBuiltin(info, e, "append") {
			pt.flowContainer(info, cell, e.Args[0])
			if e.Ellipsis.IsValid() {
				if len(e.Args) == 2 {
					pt.flowContainer(info, cell, e.Args[1])
				}
			} else {
				for _, arg := range e.Args[1:] {
					pt.flowValue(info, cell, arg)
				}
			}
			return
		}
		if IsBuiltin(info, e, "make") {
			return // empty container
		}
		if IsConversionOrBuiltin(info, e) {
			if len(e.Args) == 1 {
				pt.flowContainer(info, cell, e.Args[0])
			} else {
				pt.setUnknown(cell)
			}
			return
		}
		if callee := pt.calleeNode(info, e); callee != nil {
			pt.addEdge(cell, ptKey{fn: callee, ret: 0, elem: true})
		} else {
			pt.setUnknown(cell)
		}
	case *ast.Ident:
		if _, isNil := info.Uses[e].(*types.Nil); isNil || (e.Name == "nil" && info.Uses[e] == nil) {
			return
		}
		if src, ok := pt.containerLoc(info, e); ok {
			pt.addEdge(cell, src)
		} else {
			pt.setUnknown(cell)
		}
	default:
		if src, ok := pt.containerLoc(info, e); ok {
			pt.addEdge(cell, src)
		} else {
			pt.setUnknown(cell)
		}
	}
}

// flowContainerLit seeds a slice/array/map composite literal's elements
// into the cell. Struct literals are handled by seedStructLit.
func (pt *PointsTo) flowContainerLit(info *types.Info, cell ptKey, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			elt = kv.Value
		}
		if inner, ok := elt.(*ast.CompositeLit); ok {
			t := info.TypeOf(inner)
			if t != nil {
				if _, isStruct := t.Underlying().(*types.Struct); isStruct {
					continue // seedStructLit covers its fields
				}
			}
			pt.flowContainerLit(info, cell, inner)
			continue
		}
		if isFuncType(info.TypeOf(elt)) {
			pt.flowValue(info, cell, elt)
		} else if _, ok := funcContainerElem(info.TypeOf(elt)); ok {
			pt.flowContainer(info, cell, elt)
		}
	}
}

// seedStructLit seeds the func-typed (and func-container) fields of a
// struct composite literal. Field locations are global per field object, so
// this covers literals in any position: assignments, returns, arguments.
func (pt *PointsTo) seedStructLit(info *types.Info, lit *ast.CompositeLit) {
	t := info.TypeOf(lit)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var field *types.Var
		value := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			field, _ = info.Uses[key].(*types.Var)
			value = kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i)
		}
		if field == nil {
			continue
		}
		if isFuncType(field.Type()) {
			pt.flowValue(info, ptKey{v: field}, value)
		} else if _, ok := funcContainerElem(field.Type()); ok {
			pt.flowContainer(info, ptKey{v: field, elem: true}, value)
		}
	}
}

// seedNode adds the per-function constraints that need the call graph:
// argument→parameter links for resolved direct calls, and return→result
// links for this node's own returns.
func (pt *PointsTo) seedNode(node *FuncNode) {
	if node.Body == nil {
		return
	}
	info := node.Pkg.TypesInfo

	for _, site := range node.Calls {
		callee := site.Callee
		if callee == nil || callee.Body == nil {
			// Args handed to unresolved or external callees do not poison
			// their own locations — external code cannot write our locals —
			// but a func-typed arg READ back later from such a callee comes
			// back through a result location that stays unknown. Sites the
			// devirtualizer resolves later get their arg links added then
			// (seedCallArgs), with solve/refine iterated to a fixpoint.
			continue
		}
		pt.seedCallArgs(info, site.Call, callee)
	}

	// Named results seed the result locations even without explicit returns.
	namedResults := map[int]*types.Var{}
	if node.Type != nil && node.Type.Results != nil {
		idx := 0
		for _, field := range node.Type.Results.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					namedResults[idx] = v
				}
				idx++
			}
		}
	}
	for idx, v := range namedResults {
		if isFuncType(v.Type()) {
			pt.addEdge(ptKey{fn: node, ret: idx}, ptKey{v: v})
		} else if _, ok := funcContainerElem(v.Type()); ok {
			pt.addEdge(ptKey{fn: node, ret: idx, elem: true}, ptKey{v: v, elem: true})
		}
	}

	// Explicit returns in this node's own body (nested literals return for
	// themselves).
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 1 {
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
				// return f(...): forward every result of the callee.
				if !IsConversionOrBuiltin(info, call) {
					if callee := pt.calleeNode(info, call); callee != nil {
						if sig := calleeSignature(callee); sig != nil {
							for i := 0; i < sig.Results().Len(); i++ {
								rt := sig.Results().At(i).Type()
								if isFuncType(rt) {
									pt.addEdge(ptKey{fn: node, ret: i}, ptKey{fn: callee, ret: i})
								} else if _, ok := funcContainerElem(rt); ok {
									pt.addEdge(ptKey{fn: node, ret: i, elem: true}, ptKey{fn: callee, ret: i, elem: true})
								}
							}
						}
						return true
					}
					// Forwarded results of unknown callees poison this
					// node's own func-typed results.
					pt.poisonFuncResults(node)
					return true
				}
			}
		}
		for i, res := range ret.Results {
			t := info.TypeOf(res)
			if isFuncType(t) {
				pt.flowValue(info, ptKey{fn: node, ret: i}, res)
			} else if _, ok := funcContainerElem(t); ok {
				pt.flowContainer(info, ptKey{fn: node, ret: i, elem: true}, res)
			}
		}
		return true
	})
}

// seedCallArgs links one call's arguments into one callee's parameter
// locations, with variadic folding. Called once per (site, callee) pair:
// during seeding for direct edges, and again from the devirtualization
// fixpoint as indirect sites resolve.
func (pt *PointsTo) seedCallArgs(info *types.Info, call *ast.CallExpr, callee *FuncNode) {
	if callee.Body == nil {
		return
	}
	params := calleeParamVars(callee)
	sig := calleeSignature(callee)
	for i, arg := range call.Args {
		pi := i
		variadicTail := false
		if sig != nil && sig.Variadic() {
			last := len(params) - 1
			if i >= last {
				pi = last
				variadicTail = !call.Ellipsis.IsValid()
			}
		}
		if pi < 0 || pi >= len(params) || params[pi] == nil {
			continue
		}
		p := params[pi]
		if variadicTail {
			// Each tail arg is an element of the variadic slice param.
			if isFuncType(info.TypeOf(arg)) {
				pt.flowValue(info, ptKey{v: p, elem: true}, arg)
			}
			continue
		}
		if isFuncType(p.Type()) {
			pt.flowValue(info, ptKey{v: p}, arg)
		} else if _, ok := funcContainerElem(p.Type()); ok {
			pt.flowContainer(info, ptKey{v: p, elem: true}, arg)
		}
	}
}

// poisonFuncResults marks every func-typed result location of node unknown.
func (pt *PointsTo) poisonFuncResults(node *FuncNode) {
	sig := calleeSignature(node)
	if sig == nil {
		return
	}
	for i := 0; i < sig.Results().Len(); i++ {
		rt := sig.Results().At(i).Type()
		if isFuncType(rt) {
			pt.setUnknown(ptKey{fn: node, ret: i})
		} else if _, ok := funcContainerElem(rt); ok {
			pt.setUnknown(ptKey{fn: node, ret: i, elem: true})
		}
	}
}

// calleeNode resolves a call to a callee node with source, mirroring the
// call graph's direct resolution (literal calls included).
func (pt *PointsTo) calleeNode(info *types.Info, call *ast.CallExpr) *FuncNode {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return pt.graph.ByLit[lit]
	}
	if fn := CalleeFunc(info, call); fn != nil {
		return pt.graph.ByObj[funcOrigin(fn)]
	}
	return nil
}

// calleeParamVars returns the callee's parameter objects (receiver excluded).
func calleeParamVars(node *FuncNode) []*types.Var {
	if node.Type == nil || node.Type.Params == nil {
		return nil
	}
	info := node.Pkg.TypesInfo
	var out []*types.Var
	for _, field := range node.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			v, _ := info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

// calleeSignature returns the node's type-checked signature.
func calleeSignature(node *FuncNode) *types.Signature {
	if node.Obj != nil {
		sig, _ := node.Obj.Type().(*types.Signature)
		return sig
	}
	if node.Lit != nil {
		t := node.Pkg.TypesInfo.TypeOf(node.Lit)
		if t != nil {
			sig, _ := t.Underlying().(*types.Signature)
			return sig
		}
	}
	return nil
}

// funcOrigin maps an instantiated generic function or method back to its
// declared (origin) object, which is what Defs recorded.
func funcOrigin(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// solve closes the subset edges: each location's set flows into every
// location with an edge from it, to a fixpoint.
func (pt *PointsTo) solve() {
	for changed := true; changed; {
		changed = false
		for src, dsts := range pt.edges {
			ss := pt.pts[src]
			if ss == nil {
				continue
			}
			for _, dst := range dsts {
				ds := pt.set(dst)
				if ss.unknown && !ds.unknown {
					ds.unknown = true
					changed = true
				}
				for f := range ss.funcs {
					if !ds.funcs[f] {
						ds.funcs[f] = true
						changed = true
					}
				}
			}
		}
	}
}

// CallTargets resolves the function expression of an indirect call to its
// may-call set. complete reports whether the set accounts for every value
// that can reach the call — when false the site must stay Opaque.
func (pt *PointsTo) CallTargets(info *types.Info, fun ast.Expr) (targets []*FuncNode, complete bool) {
	fun = ast.Unparen(fun)
	var loc ptKey
	var ok bool
	switch e := fun.(type) {
	case *ast.IndexExpr:
		// table[i](...): read the container cell. (Generic instantiations
		// resolve directly and never reach here.)
		loc, ok = pt.containerLoc(info, e.X)
	case *ast.CallExpr:
		// factory()(...): the result location of the inner call.
		if callee := pt.calleeNode(info, e); callee != nil {
			loc, ok = ptKey{fn: callee, ret: 0}, true
		}
	default:
		loc, ok = pt.valueLoc(info, fun)
	}
	if !ok {
		return nil, false
	}
	s := pt.pts[loc]
	if s == nil {
		// Location never seeded: no analyzed write reaches it. A call
		// through it would be a nil deref at runtime; resolution cannot
		// vouch for writes it never saw, so stay opaque.
		return nil, false
	}
	for f := range s.funcs {
		targets = append(targets, f)
	}
	sort.Slice(targets, func(i, j int) bool { return nodePos(targets[i]) < nodePos(targets[j]) })
	return targets, !s.unknown
}

func nodePos(n *FuncNode) token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return token.NoPos
}
