package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

const supSrc = `package p

func f() int {
	x := 1 //fastcc:allow linovf -- same line
	//fastcc:allow hotalloc,wgmisuse -- line above
	y := 2
	z := 3
	return x + y + z
}
`

func TestSuppressions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", supSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := CollectSuppressions(fset, []*ast.File{f})
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "linovf", true},
		{4, "hotalloc", false},
		{5, "hotalloc", true},
		{6, "hotalloc", true},
		{6, "wgmisuse", true},
		{6, "linovf", false},
		{7, "hotalloc", false},
	}
	for _, c := range cases {
		d := Diagnostic{Pos: posForLine(fset, c.line), Analyzer: c.analyzer}
		if got := sup.Allows(fset, d); got != c.want {
			t.Errorf("line %d analyzer %s: Allows = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

// posForLine fabricates a Pos on the given line of the single test file.
func posForLine(fset *token.FileSet, line int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}

func TestModuleRoot(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("ModuleRoot(.) = %q, which has no go.mod: %v", root, err)
	}
}

func TestLoadTypeChecks(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./internal/scheduler"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load returned %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Pkg == nil || p.Pkg.Scope().Lookup("Pool") == nil {
		t.Errorf("scheduler package missing Pool in scope; type info incomplete")
	}
	if len(p.TypesInfo.Uses) == 0 {
		t.Errorf("no Uses recorded; type info incomplete")
	}
}
