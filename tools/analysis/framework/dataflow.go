// A small forward dataflow engine over the CFGs of cfg.go. Clients describe
// a lattice (Join, Equal, Copy), a per-statement Transfer, and an optional
// per-edge Refine for branch conditions; Solve runs the classic worklist
// iteration to a fixpoint and returns the state at every node entry and
// exit. State types are client-defined (typically small maps); the engine
// never inspects them beyond the supplied callbacks.
package framework

// A Flow describes one forward dataflow problem over a CFG.
type Flow[S any] struct {
	CFG *CFG

	// Init is the state at the function entry.
	Init S

	// Transfer produces a node's exit state from its entry state. The input
	// is a private copy (see Copy); Transfer may mutate and return it.
	Transfer func(n *CFGNode, in S) S

	// Refine adjusts the state flowing along a conditional edge (Cond non-nil)
	// before it joins the successor. Optional; nil means no refinement. The
	// input is a private copy; Refine may mutate and return it.
	Refine func(e CFGEdge, out S) S

	// Join merges a predecessor's contribution into an accumulated state,
	// returning the merged state. The accumulator may be mutated.
	Join func(acc, in S) S

	// Equal reports whether two states are equal, bounding the iteration.
	Equal func(a, b S) bool

	// Copy returns an independent copy of a state.
	Copy func(S) S
}

// A FlowResult holds the fixpoint: state at entry to and exit from each node,
// indexed by CFGNode.Index.
type FlowResult[S any] struct {
	In  []S
	Out []S
	// Reached marks nodes the iteration visited; unreached nodes (dead code)
	// hold zero states.
	Reached []bool
}

// Solve runs the worklist iteration to a fixpoint. Termination is the
// client's contract: Join must be monotone over a finite-height lattice
// (bounded maps, saturating counters).
func (f *Flow[S]) Solve() *FlowResult[S] {
	n := len(f.CFG.Nodes)
	res := &FlowResult[S]{In: make([]S, n), Out: make([]S, n), Reached: make([]bool, n)}

	entry := f.CFG.Entry.Index
	res.In[entry] = f.Copy(f.Init)
	res.Reached[entry] = true

	// FIFO worklist with a dedupe set; node count is small (one function).
	work := []*CFGNode{f.CFG.Entry}
	queued := make([]bool, n)
	queued[entry] = true

	for len(work) > 0 {
		node := work[0]
		work = work[1:]
		queued[node.Index] = false

		out := f.Transfer(node, f.Copy(res.In[node.Index]))
		res.Out[node.Index] = out

		for _, e := range node.Succs {
			contrib := f.Copy(out)
			if e.Cond != nil && f.Refine != nil {
				contrib = f.Refine(e, contrib)
			}
			succ := e.To.Index
			var merged S
			if !res.Reached[succ] {
				merged = contrib
				res.Reached[succ] = true
			} else {
				merged = f.Join(f.Copy(res.In[succ]), contrib)
				if f.Equal(merged, res.In[succ]) {
					continue
				}
			}
			res.In[succ] = merged
			if !queued[succ] {
				queued[succ] = true
				work = append(work, e.To)
			}
		}
	}
	return res
}
