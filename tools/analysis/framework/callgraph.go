// Call graph over the loaded packages' go/types info: the whole-program
// substrate for the interprocedural analyzers (poolescapex, lockorder,
// pinbracket). The graph is deliberately lightweight — nodes are declared
// functions and function literals with source available; edges are the calls
// that resolve statically through types.Info (direct calls, method calls on
// concrete receivers, immediately invoked literals). Indirect calls through
// function values, interface method calls and calls into packages loaded
// only as export data resolve to no callee; nodes that contain any such call
// are marked Opaque so clients can choose a conservative treatment.
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Program is the whole-program view over one Load's pattern-matched
// packages, with a lazily built shared call graph.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	graph *CallGraph
}

// NewProgram wraps the packages of one Load call. All packages of a program
// must share one token.FileSet (Load guarantees this).
func NewProgram(pkgs []*Package) *Program {
	p := &Program{Pkgs: pkgs}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	return p
}

// CallGraph returns the program's call graph, building it on first use.
func (p *Program) CallGraph() *CallGraph {
	if p.graph == nil {
		p.graph = buildCallGraph(p.Pkgs)
	}
	return p.graph
}

// A FuncNode is one function with source available: a declared function or
// method (Obj non-nil), or a function literal (Lit non-nil). Literals link
// back to the function they appear in via Encl.
type FuncNode struct {
	Obj  *types.Func     // declared functions; nil for literals
	Decl *ast.FuncDecl   // non-nil iff Obj is
	Lit  *ast.FuncLit    // non-nil iff this node is a literal
	Pkg  *Package        // the package the body lives in
	Encl *FuncNode       // for literals: the lexically enclosing function
	Body *ast.BlockStmt  // nil for bodyless declarations (assembly stubs)
	Type *ast.FuncType   // the node's signature syntax

	// Calls lists every call expression in the body (not descending into
	// nested literals — those get their own node), in source order.
	Calls []CallSite

	// Opaque records that the body contains calls the graph cannot resolve
	// (function values, interfaces, export-only callees): the node may reach
	// functions the edge set does not show.
	Opaque bool
}

// Name returns a human-readable identifier for diagnostics.
func (n *FuncNode) Name() string {
	if n.Obj != nil {
		return n.Obj.Name()
	}
	if n.Encl != nil {
		return "func literal in " + n.Encl.Name()
	}
	return "func literal"
}

// A CallSite is one call expression inside a FuncNode's body.
type CallSite struct {
	Call   *ast.CallExpr
	Callee *FuncNode // nil when the callee has no node (unresolved or no source)
	Go     bool      // the call is a `go` statement's call
	Defer  bool      // the call is a `defer` statement's call
}

// A CallGraph indexes every FuncNode of a program.
type CallGraph struct {
	// ByObj maps declared functions to their nodes.
	ByObj map[*types.Func]*FuncNode
	// Nodes lists every node (declarations and literals) in deterministic
	// package/file order.
	Nodes []*FuncNode
}

// NodeOf returns the node of a declared function, or nil when the function
// has no source in the program (export-only dependency, builtin).
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.ByObj[fn]
}

func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{ByObj: map[*types.Func]*FuncNode{}}

	// First pass: create a node per declaration and per literal, so edges in
	// the second pass can resolve forward references and cross-package calls.
	type litKey struct{ lit *ast.FuncLit }
	litNodes := map[*ast.FuncLit]*FuncNode{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg, Body: fd.Body, Type: fd.Type}
				if obj != nil {
					g.ByObj[obj] = node
				}
				g.Nodes = append(g.Nodes, node)
				if fd.Body == nil {
					continue
				}
				collectLits(pkg, node, fd.Body, litNodes, g)
			}
		}
	}

	// Second pass: resolve the calls of every node's own body (literals are
	// excluded from their enclosing function's walk — they have nodes).
	for _, node := range g.Nodes {
		if node.Body == nil {
			continue
		}
		resolveCalls(node, litNodes, g)
	}
	return g
}

// collectLits creates a node for every function literal lexically inside
// body, attributing each to its nearest enclosing function node.
func collectLits(pkg *Package, encl *FuncNode, body ast.Node, lits map[*ast.FuncLit]*FuncNode, g *CallGraph) {
	var walk func(n ast.Node, encl *FuncNode)
	walk = func(n ast.Node, encl *FuncNode) {
		ast.Inspect(n, func(c ast.Node) bool {
			lit, ok := c.(*ast.FuncLit)
			if !ok {
				return true
			}
			node := &FuncNode{Lit: lit, Pkg: pkg, Encl: encl, Body: lit.Body, Type: lit.Type}
			lits[lit] = node
			g.Nodes = append(g.Nodes, node)
			walk(lit.Body, node)
			return false // children already walked with the literal as encl
		})
	}
	walk(body, encl)
}

// resolveCalls fills node.Calls from the statements of node's own body,
// stopping at nested literals.
func resolveCalls(node *FuncNode, lits map[*ast.FuncLit]*FuncNode, g *CallGraph) {
	info := node.Pkg.TypesInfo
	goCalls := map[*ast.CallExpr]bool{}
	deferCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(node.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // own body only; literals have their own nodes
		case *ast.GoStmt:
			goCalls[n.Call] = true
		case *ast.DeferStmt:
			deferCalls[n.Call] = true
		case *ast.CallExpr:
			site := CallSite{Call: n, Go: goCalls[n], Defer: deferCalls[n]}
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.FuncLit:
				site.Callee = lits[fun]
			default:
				if fn := CalleeFunc(info, n); fn != nil {
					site.Callee = g.ByObj[fn]
					if site.Callee == nil && !isUniverseCall(info, n) {
						// A real function without source in the program.
						node.Opaque = true
					}
				} else if !IsConversionOrBuiltin(info, n) {
					node.Opaque = true // function value / interface call
				}
			}
			node.Calls = append(node.Calls, site)
		}
		return true
	})
}

// isUniverseCall reports whether the call statically resolves to a function
// but one we never expect source for (nothing — declared funcs outside the
// program are simply opaque). Kept as a seam; currently always false.
func isUniverseCall(info *types.Info, call *ast.CallExpr) bool {
	return false
}

// IsConversionOrBuiltin reports whether the call expression is a type
// conversion or a builtin call — the two call forms that are not function
// calls and so never make a node opaque.
func IsConversionOrBuiltin(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch info.Uses[fun].(type) {
		case *types.Builtin, *types.TypeName:
			return true
		}
	case *ast.SelectorExpr:
		if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
			return true
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType, *ast.StructType, *ast.InterfaceType, *ast.StarExpr:
		return true
	case *ast.IndexExpr: // generic instantiation F[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			if _, isType := info.Uses[id].(*types.TypeName); isType {
				return true
			}
		}
	}
	return false
}
