// Call graph over the loaded packages' go/types info: the whole-program
// substrate for the interprocedural analyzers (poolescapex, lockorder,
// pinbracket). Nodes are declared functions and function literals with
// source available. Edges come in two tiers:
//
//   - direct resolution through types.Info: direct calls, method calls on
//     concrete receivers, immediately invoked literals;
//   - devirtualization: interface method calls resolve through
//     class-hierarchy analysis (cha.go) to the concrete methods implementing
//     the interface in the program, and indirect calls through function
//     values resolve through a flow-insensitive points-to pass
//     (pointsto.go) that tracks func literals and declared functions into
//     variables, struct fields and dispatch tables (kernelTable-shaped).
//
// A site whose callee set the analysis cannot account for — a func value of
// unanalyzable origin, an interface declared outside the program, a call
// into a package loaded only as export data — is marked Opaque, and nodes
// containing any such call are Opaque too, so clients can choose a
// conservative treatment. The //fastcc:dynamic line directive marks a call
// site as intentionally dynamic: it stays unresolved but is counted apart
// from the accidental opacity CallStats tracks (fastcc-vet -stats).
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Program is the whole-program view over one Load's pattern-matched
// packages, with a lazily built shared call graph.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	graph *CallGraph
}

// NewProgram wraps the packages of one Load call. All packages of a program
// must share one token.FileSet (Load guarantees this).
func NewProgram(pkgs []*Package) *Program {
	p := &Program{Pkgs: pkgs}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	return p
}

// CallGraph returns the program's call graph, building it on first use.
func (p *Program) CallGraph() *CallGraph {
	if p.graph == nil {
		p.graph = buildCallGraph(p.Pkgs)
	}
	return p.graph
}

// CallStats returns the program's call-site accounting (building the graph
// on first use).
func (p *Program) CallStats() CallStats {
	return p.CallGraph().Stats
}

// A FuncNode is one function with source available: a declared function or
// method (Obj non-nil), or a function literal (Lit non-nil). Literals link
// back to the function they appear in via Encl.
type FuncNode struct {
	Obj  *types.Func    // declared functions; nil for literals
	Decl *ast.FuncDecl  // non-nil iff Obj is
	Lit  *ast.FuncLit   // non-nil iff this node is a literal
	Pkg  *Package       // the package the body lives in
	Encl *FuncNode      // for literals: the lexically enclosing function
	Body *ast.BlockStmt // nil for bodyless declarations (assembly stubs)
	Type *ast.FuncType  // the node's signature syntax

	// Calls lists every call expression in the body (not descending into
	// nested literals — those get their own node), in source order.
	Calls []CallSite

	// Opaque records that the body contains calls the graph cannot resolve
	// (escaping function values, external interfaces, export-only callees):
	// the node may reach functions the edge set does not show.
	Opaque bool
}

// Name returns a human-readable identifier for diagnostics.
func (n *FuncNode) Name() string {
	if n.Obj != nil {
		return n.Obj.Name()
	}
	if n.Encl != nil {
		return "func literal in " + n.Encl.Name()
	}
	return "func literal"
}

// A CallKind classifies how a call site's callees were resolved.
type CallKind uint8

const (
	// CallOther: a type conversion or builtin — not a function call.
	CallOther CallKind = iota
	// CallDirect: statically resolved to one function with source.
	CallDirect
	// CallExternal: statically resolved to a function without source in the
	// program (standard library, export-only dependency).
	CallExternal
	// CallInterface: an interface method call, devirtualized via CHA when
	// the site is not Opaque.
	CallInterface
	// CallFuncValue: an indirect call through a function value, resolved
	// via points-to when the site is not Opaque.
	CallFuncValue
)

// A CallSite is one call expression inside a FuncNode's body.
type CallSite struct {
	Call *ast.CallExpr
	// Callee is the sole callee when the site resolves to exactly one node
	// with source; nil otherwise. Kept for clients that only handle
	// single-callee sites — Callees is the canonical may-call set.
	Callee *FuncNode
	// Callees is the may-call set: every function with source the call can
	// reach. Direct calls have one entry; devirtualized sites may have
	// several; Opaque and external sites have none (or a partial set the
	// Opaque flag disclaims).
	Callees []*FuncNode
	Kind    CallKind
	Go      bool // the call is a `go` statement's call
	Defer   bool // the call is a `defer` statement's call
	// Opaque records that Callees may be incomplete: the call can reach
	// functions the analysis cannot name.
	Opaque bool
	// Dynamic records a //fastcc:dynamic directive on the call's line: the
	// site is intentionally unresolved and is counted apart from Opaque.
	Dynamic bool
}

// CallStats is the program-wide call-site accounting -stats reports. Sites
// counts real calls only (conversions and builtins are excluded). Opaque
// counts indirect and interface sites the devirtualizer could not (fully)
// resolve — the tracked soundness gap. External direct calls are counted
// apart: their callees are known, just outside the program.
type CallStats struct {
	Sites       int // every function call expression
	Direct      int // statically resolved, source available
	External    int // statically resolved, no source (stdlib, export data)
	DevirtIface int // interface calls devirtualized via CHA
	DevirtFunc  int // func-value calls resolved via points-to
	Opaque      int // unresolved (or partially resolved) indirect sites
	Dynamic     int // //fastcc:dynamic-annotated intentionally-opaque sites
}

// A CallGraph indexes every FuncNode of a program.
type CallGraph struct {
	// ByObj maps declared functions to their nodes.
	ByObj map[*types.Func]*FuncNode
	// ByLit maps function literals to their nodes.
	ByLit map[*ast.FuncLit]*FuncNode
	// Nodes lists every node (declarations and literals) in deterministic
	// package/file order.
	Nodes []*FuncNode
	// Stats is the devirtualization accounting over every site.
	Stats CallStats

	cha *CHA
	pt  *PointsTo
}

// NodeOf returns the node of a declared function, or nil when the function
// has no source in the program (export-only dependency, builtin).
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.ByObj[fn.Origin()]
}

func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{ByObj: map[*types.Func]*FuncNode{}, ByLit: map[*ast.FuncLit]*FuncNode{}}

	// First pass: create a node per declaration and per literal, so edges in
	// the second pass can resolve forward references and cross-package calls.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg, Body: fd.Body, Type: fd.Type}
				if obj != nil {
					g.ByObj[obj] = node
				}
				g.Nodes = append(g.Nodes, node)
				if fd.Body == nil {
					continue
				}
				collectLits(pkg, node, fd.Body, g)
			}
		}
	}

	// Second pass: resolve the calls of every node's own body (literals are
	// excluded from their enclosing function's walk — they have nodes).
	for _, node := range g.Nodes {
		if node.Body == nil {
			continue
		}
		resolveCalls(node, g)
	}

	// Third pass: devirtualize. CHA resolves the interface sites; the
	// points-to solve (which itself consumes the direct edges laid in pass
	// two) resolves the func-value sites. Resolution and points-to are
	// mutually dependent — a func value passed as an argument at a site that
	// only resolves through devirtualization must still flow into the
	// callee's parameter — so newly resolved edges feed their argument
	// constraints back into the solver and the pair iterates to a fixpoint
	// (sets only grow, so it terminates).
	g.cha = buildCHA(pkgs)
	g.pt = buildPointsTo(pkgs, g)
	type argSeed struct {
		call   *ast.CallExpr
		callee *FuncNode
	}
	seeded := map[argSeed]bool{}
	for {
		changed := false
		for _, node := range g.Nodes {
			for i := range node.Calls {
				site := &node.Calls[i]
				if site.Kind != CallInterface && site.Kind != CallFuncValue {
					continue
				}
				g.refineSite(node, site)
				for _, callee := range site.Callees {
					key := argSeed{site.Call, callee}
					if !seeded[key] {
						seeded[key] = true
						g.pt.seedCallArgs(node.Pkg.TypesInfo, site.Call, callee)
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
		g.pt.solve()
	}

	// Final sweep: resolve the trivial tiers, apply //fastcc:dynamic
	// directives, recompute node opacity, count.
	var fset *token.FileSet
	var allFiles []*ast.File
	for _, pkg := range pkgs {
		fset = pkg.Fset
		allFiles = append(allFiles, pkg.Files...)
	}
	dynamic := CollectLineMarkers(fset, allFiles, "dynamic")
	for _, node := range g.Nodes {
		node.Opaque = false
		for i := range node.Calls {
			site := &node.Calls[i]
			g.refineSite(node, site)
			if site.Opaque && fset != nil && MarkedAt(fset, dynamic, site.Call.Pos()) {
				site.Opaque = false
				site.Dynamic = true
			}
			if site.Opaque {
				node.Opaque = true
			}
			g.countSite(site)
		}
	}
	return g
}

// countSite accumulates one site into the graph's stats.
func (g *CallGraph) countSite(site *CallSite) {
	if site.Kind == CallOther {
		return
	}
	g.Stats.Sites++
	if site.Dynamic {
		g.Stats.Dynamic++
		return
	}
	switch site.Kind {
	case CallDirect:
		g.Stats.Direct++
	case CallExternal:
		g.Stats.External++
	case CallInterface:
		if site.Opaque {
			g.Stats.Opaque++
		} else {
			g.Stats.DevirtIface++
		}
	case CallFuncValue:
		if site.Opaque {
			g.Stats.Opaque++
		} else {
			g.Stats.DevirtFunc++
		}
	}
}

// refineSite resolves one site's may-call set through the devirtualization
// layers, rebuilding Callees, Callee and Opaque from scratch (it runs more
// than once per site during the fixpoint).
func (g *CallGraph) refineSite(node *FuncNode, site *CallSite) {
	if site.Kind == CallInterface || site.Kind == CallFuncValue {
		site.Callees = nil
		site.Callee = nil
		site.Opaque = false
	}
	switch site.Kind {
	case CallOther:
		return
	case CallDirect:
		site.Callees = []*FuncNode{site.Callee}
		return
	case CallExternal:
		// A real function without source: conservatively opaque — its body
		// may call back into the program through values handed to it.
		site.Opaque = true
		return
	}

	info := node.Pkg.TypesInfo
	switch site.Kind {
	case CallInterface:
		sel, ok := ast.Unparen(site.Call.Fun).(*ast.SelectorExpr)
		if !ok {
			site.Opaque = true
			return
		}
		recv := interfaceRecvType(info, sel)
		if recv == nil {
			site.Opaque = true
			return
		}
		fns, complete := g.cha.Implementations(recv, sel.Sel.Name)
		for _, fn := range fns {
			if n := g.ByObj[fn]; n != nil && n.Body != nil {
				site.Callees = append(site.Callees, n)
			} else {
				complete = false
			}
		}
		// An empty complete set means no program type inhabits the
		// interface — any actual call must carry a value of unseen origin.
		site.Opaque = !complete || len(site.Callees) == 0
	case CallFuncValue:
		targets, complete := g.pt.CallTargets(info, site.Call.Fun)
		for _, n := range targets {
			if n.Body != nil {
				site.Callees = append(site.Callees, n)
			} else {
				complete = false
			}
		}
		site.Opaque = !complete
	}
	if len(site.Callees) == 1 && !site.Opaque {
		site.Callee = site.Callees[0]
	}
}

// interfaceRecvType returns the (named) interface type a method selection
// dispatches on, or nil when the receiver is not an interface the CHA can
// reason about (anonymous interfaces, type parameters).
func interfaceRecvType(info *types.Info, sel *ast.SelectorExpr) types.Type {
	s := info.Selections[sel]
	if s == nil {
		return nil
	}
	recv := s.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	// Embedded interface fields dispatch on the field's interface type.
	if s.Kind() == types.MethodVal {
		// Walk the selection's index path to the embedded field when the
		// method comes through one; the final interface is what dispatches.
		t := recv
		for _, idx := range s.Index()[:len(s.Index())-1] {
			st, ok := t.Underlying().(*types.Struct)
			if !ok {
				break
			}
			t = st.Field(idx).Type()
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
		}
		if types.IsInterface(t) {
			recv = t
		}
	}
	if !types.IsInterface(recv) {
		return nil
	}
	if _, ok := recv.(*types.Named); !ok {
		return nil
	}
	return recv
}

// collectLits creates a node for every function literal lexically inside
// body, attributing each to its nearest enclosing function node.
func collectLits(pkg *Package, encl *FuncNode, body ast.Node, g *CallGraph) {
	var walk func(n ast.Node, encl *FuncNode)
	walk = func(n ast.Node, encl *FuncNode) {
		ast.Inspect(n, func(c ast.Node) bool {
			lit, ok := c.(*ast.FuncLit)
			if !ok {
				return true
			}
			node := &FuncNode{Lit: lit, Pkg: pkg, Encl: encl, Body: lit.Body, Type: lit.Type}
			g.ByLit[lit] = node
			g.Nodes = append(g.Nodes, node)
			walk(lit.Body, node)
			return false // children already walked with the literal as encl
		})
	}
	walk(body, encl)
}

// resolveCalls fills node.Calls from the statements of node's own body,
// stopping at nested literals. Only the direct tier resolves here; the
// devirtualization pass classifies and refines the rest.
//
// Defer and go classification is per call expression, not per statement:
// only the statement's own call is deferred — calls nested in its argument
// list run immediately at the defer/go statement, and a deferred call
// through a method value (rel := g.Release; defer rel()) is a deferred
// INDIRECT call, resolved by points-to like any other func value.
func resolveCalls(node *FuncNode, g *CallGraph) {
	info := node.Pkg.TypesInfo
	goCalls := map[*ast.CallExpr]bool{}
	deferCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(node.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // own body only; literals have their own nodes
		case *ast.GoStmt:
			goCalls[n.Call] = true
		case *ast.DeferStmt:
			deferCalls[n.Call] = true
		case *ast.CallExpr:
			site := CallSite{Call: n, Go: goCalls[n], Defer: deferCalls[n]}
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.FuncLit:
				site.Callee = g.ByLit[fun]
				site.Kind = CallDirect
			default:
				if fn := CalleeFunc(info, n); fn != nil {
					if isInterfaceMethod(fn) {
						site.Kind = CallInterface
					} else if callee := g.ByObj[fn.Origin()]; callee != nil {
						site.Callee = callee
						site.Kind = CallDirect
					} else {
						site.Kind = CallExternal
					}
				} else if IsConversionOrBuiltin(info, n) {
					site.Kind = CallOther
				} else {
					site.Kind = CallFuncValue
				}
			}
			node.Calls = append(node.Calls, site)
		}
		return true
	})
}

// isInterfaceMethod reports whether fn is an interface's abstract method.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// IsConversionOrBuiltin reports whether the call expression is a type
// conversion or a builtin call — the two call forms that are not function
// calls and so never make a node opaque.
func IsConversionOrBuiltin(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch info.Uses[fun].(type) {
		case *types.Builtin, *types.TypeName:
			return true
		}
	case *ast.SelectorExpr:
		if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
			return true
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType, *ast.StructType, *ast.InterfaceType, *ast.StarExpr:
		return true
	case *ast.IndexExpr: // generic instantiation F[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			if _, isType := info.Uses[id].(*types.TypeName); isType {
				return true
			}
		}
	}
	return false
}
