package framework

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkProgram type-checks the given sources (import path → file body) in
// order and wraps them in a Program, with in-test packages importable by
// path — a miniature of the loader's source-first importing, so these tests
// exercise the same cross-package object identity the real Load provides.
func checkProgram(t *testing.T, order []string, srcs map[string]string) *Program {
	t.Helper()
	fset := token.NewFileSet()
	local := map[string]*types.Package{}
	imp := testImporter{local: local, std: importer.Default()}
	var pkgs []*Package
	for _, path := range order {
		f, err := parser.ParseFile(fset, path+".go", srcs[path], parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		info := NewTypesInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("type-checking %s: %v", path, err)
		}
		local[path] = pkg
		pkgs = append(pkgs, &Package{
			ImportPath: path,
			Fset:       fset,
			Files:      []*ast.File{f},
			Pkg:        pkg,
			TypesInfo:  info,
		})
	}
	return NewProgram(pkgs)
}

type testImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (ti testImporter) Import(path string) (*types.Package, error) {
	if p, ok := ti.local[path]; ok {
		return p, nil
	}
	return ti.std.Import(path)
}

// nodeNamed finds the unique FuncNode whose Name matches.
func nodeNamed(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	var found *FuncNode
	for _, n := range g.Nodes {
		if n.Name() == name {
			if found != nil {
				t.Fatalf("two nodes named %s", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node named %s", name)
	}
	return found
}

// calleeNames renders a site's may-call set for assertions.
func calleeNames(site *CallSite) []string {
	var names []string
	for _, c := range site.Callees {
		names = append(names, c.Name())
	}
	return names
}

// siteCalling returns the unique call site in node whose callee set or call
// text involves the marker — located by the Fun expression's rendering.
func siteCalling(t *testing.T, node *FuncNode, funText string) *CallSite {
	t.Helper()
	var found *CallSite
	for i := range node.Calls {
		site := &node.Calls[i]
		if exprText(site.Call.Fun) == funText {
			if found != nil {
				t.Fatalf("two sites calling %q in %s", funText, node.Name())
			}
			found = site
		}
	}
	if found == nil {
		t.Fatalf("no site calling %q in %s", funText, node.Name())
	}
	return found
}

func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprText(e.X) + "[]"
	default:
		return ""
	}
}

// TestDevirtTableDispatch is the kernelTable shape from
// internal/core/kernels.go: named kernels registered in a fixed dispatch
// array, called through an index read. The call must resolve to exactly the
// registered kernels and count as a devirtualized func-value site.
func TestDevirtTableDispatch(t *testing.T) {
	prog := checkProgram(t, []string{"kern"}, map[string]string{"kern": `package kern

type kernel func(x []float64) int

func kSum(x []float64) int { return len(x) }
func kMax(x []float64) int { return cap(x) }

var kernelTable = [2]kernel{kSum, kMax}

func dispatch(which int, x []float64) int {
	kern := kernelTable[which]
	return kern(x)
}
`})
	g := prog.CallGraph()
	site := siteCalling(t, nodeNamed(t, g, "dispatch"), "kern")
	if site.Kind != CallFuncValue {
		t.Fatalf("dispatch site kind = %v, want CallFuncValue", site.Kind)
	}
	if site.Opaque {
		t.Fatalf("table dispatch stayed opaque; callees = %v", calleeNames(site))
	}
	got := strings.Join(calleeNames(site), ",")
	if !strings.Contains(got, "kSum") || !strings.Contains(got, "kMax") || len(site.Callees) != 2 {
		t.Fatalf("dispatch callees = %v, want exactly {kSum, kMax}", calleeNames(site))
	}
	if g.Stats.DevirtFunc == 0 {
		t.Fatalf("DevirtFunc = 0 after resolving a table dispatch; stats %+v", g.Stats)
	}
}

// TestDevirtInterfaceCHA routes a call through a locally declared interface
// with two concrete implementations across packages: CHA must bound the
// call to exactly those two methods, using the cross-package object
// identity the source-first importer provides.
func TestDevirtInterfaceCHA(t *testing.T) {
	prog := checkProgram(t, []string{"impls", "iface"}, map[string]string{
		"impls": `package impls

type Keeper struct{ kept [][]float64 }

func (k *Keeper) Consume(b []float64) { k.kept = append(k.kept, b) }

type Summer struct{ total float64 }

func (s *Summer) Consume(b []float64) {
	for _, v := range b {
		s.total += v
	}
}
`,
		"iface": `package iface

import "impls"

type Consumer interface{ Consume(b []float64) }

func feed(c Consumer, b []float64) {
	c.Consume(b)
}

var _ = []Consumer{&impls.Keeper{}, &impls.Summer{}}
`})
	g := prog.CallGraph()
	site := siteCalling(t, nodeNamed(t, g, "feed"), "c.Consume")
	if site.Kind != CallInterface {
		t.Fatalf("feed site kind = %v, want CallInterface", site.Kind)
	}
	if site.Opaque {
		t.Fatalf("interface call stayed opaque; callees = %v", calleeNames(site))
	}
	if len(site.Callees) != 2 {
		t.Fatalf("feed callees = %v, want the two Consume implementations", calleeNames(site))
	}
	if g.Stats.DevirtIface == 0 {
		t.Fatalf("DevirtIface = 0 after CHA bounded an interface call; stats %+v", g.Stats)
	}
}

// TestDevirtGoroutineClosure launches a goroutine through a func value
// bound to a closure: the go statement's call must resolve to the literal,
// keep its Go classification, and not poison the node opaque.
func TestDevirtGoroutineClosure(t *testing.T) {
	prog := checkProgram(t, []string{"spawn"}, map[string]string{"spawn": `package spawn

func launch(shard []float64, done chan struct{}) {
	worker := func() {
		_ = shard[0]
		close(done)
	}
	go worker()
}
`})
	g := prog.CallGraph()
	node := nodeNamed(t, g, "launch")
	site := siteCalling(t, node, "worker")
	if !site.Go {
		t.Fatal("go worker() not classified as a goroutine launch")
	}
	if site.Opaque || len(site.Callees) != 1 {
		t.Fatalf("goroutine func value unresolved: opaque=%v callees=%v", site.Opaque, calleeNames(site))
	}
	if !strings.HasPrefix(site.Callees[0].Name(), "func literal") {
		t.Fatalf("goroutine callee = %s, want the captured literal", site.Callees[0].Name())
	}
	if node.Opaque {
		t.Fatal("launch marked opaque despite every site resolving")
	}
}

// TestEscapingFuncValueStaysOpaque receives a func value from a channel —
// outside the points-to model — and requires the call to stay opaque: the
// soundness gap must be reported, not papered over with an empty set.
func TestEscapingFuncValueStaysOpaque(t *testing.T) {
	prog := checkProgram(t, []string{"esc"}, map[string]string{"esc": `package esc

func drain(ch chan func(int) int) int {
	fn := <-ch
	return fn(1)
}
`})
	g := prog.CallGraph()
	node := nodeNamed(t, g, "drain")
	site := siteCalling(t, node, "fn")
	if site.Kind != CallFuncValue {
		t.Fatalf("drain site kind = %v, want CallFuncValue", site.Kind)
	}
	if !site.Opaque {
		t.Fatalf("channel-received func value resolved to %v; must stay opaque", calleeNames(site))
	}
	if !node.Opaque {
		t.Fatal("drain not marked opaque despite an unresolved indirect call")
	}
	if g.Stats.Opaque == 0 {
		t.Fatalf("Stats.Opaque = 0 with an opaque site present; stats %+v", g.Stats)
	}
}

// TestMethodValueDeferResolves is the defer-site classification fix: in
// `rel := g.release; defer rel()` the deferred call is rel's — an indirect
// call the points-to layer resolves to the bound method — while g.release
// itself (a method value, not a call) must not be misread as a deferred
// invocation of release at binding time.
func TestMethodValueDeferResolves(t *testing.T) {
	prog := checkProgram(t, []string{"guard"}, map[string]string{"guard": `package guard

type Guard struct{ n int }

func (g *Guard) acquire() { g.n++ }
func (g *Guard) release() { g.n-- }

func bracket(g *Guard) {
	g.acquire()
	rel := g.release
	defer rel()
	g.n += 2
}
`})
	g := prog.CallGraph()
	node := nodeNamed(t, g, "bracket")
	site := siteCalling(t, node, "rel")
	if !site.Defer {
		t.Fatal("defer rel() not classified as a deferred call")
	}
	if site.Kind != CallFuncValue {
		t.Fatalf("rel() kind = %v, want CallFuncValue", site.Kind)
	}
	if site.Opaque || len(site.Callees) != 1 || site.Callees[0].Name() != "release" {
		t.Fatalf("rel() resolved to %v (opaque=%v), want exactly {release}", calleeNames(site), site.Opaque)
	}
	// The acquire call is a plain direct, non-deferred site.
	acq := siteCalling(t, node, "g.acquire")
	if acq.Defer || acq.Go {
		t.Fatal("g.acquire() misclassified as deferred or goroutine")
	}
}
