package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves the package patterns with the go tool, compiles export data
// for every dependency (`go list -export -deps`), and type-checks the
// pattern-matched packages from source against that export data. This keeps
// the loader fully offline: no network, no GOPATH source resolution — the
// build cache supplies every import.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(out)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("framework: decoding go list output: %w", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Standard || lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("framework: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		p := lp
		targets = append(targets, &p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("framework: go list: %v\n%s", err, stderr.String())
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	// Type-check pattern packages in dependency order so each one imports
	// its in-pattern dependencies as the SAME *types.Package that was checked
	// from source, not a parallel export-data universe. Object identity
	// across packages is what lets the call graph link a cross-package call
	// to the callee's declaration — and the devirtualizer match interface
	// and func-value objects program-wide. Export data still supplies
	// everything outside the pattern (stdlib).
	targetSet := map[string]*listPackage{}
	for _, lp := range targets {
		targetSet[lp.ImportPath] = lp
	}
	ordered := make([]*listPackage, 0, len(targets))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(lp *listPackage)
	visit = func(lp *listPackage) {
		if state[lp.ImportPath] != 0 {
			return // done, or a cycle go list would have rejected
		}
		state[lp.ImportPath] = 1
		for _, dep := range lp.Imports {
			if t, ok := targetSet[dep]; ok {
				visit(t)
			}
		}
		state[lp.ImportPath] = 2
		ordered = append(ordered, lp)
	}
	for _, lp := range targets {
		visit(lp)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("framework: no export data for %q", path)
		}
		return os.Open(f)
	}
	checked := map[string]*types.Package{}
	imp := &sourceFirstImporter{
		checked:  checked,
		fallback: importer.ForCompiler(fset, "gc", lookup),
	}

	var pkgs []*Package
	for _, lp := range ordered {
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(lp.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("framework: %w", err)
			}
			files = append(files, f)
		}
		info := NewTypesInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("framework: type-checking %s: %w", lp.ImportPath, err)
		}
		checked[lp.ImportPath] = pkg
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
		})
	}
	// Callers expect pattern order (alphabetical), not check order.
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// sourceFirstImporter resolves imports to already source-checked pattern
// packages by identity, falling back to compiled export data for everything
// else (the standard library, out-of-pattern dependencies).
type sourceFirstImporter struct {
	checked  map[string]*types.Package
	fallback types.Importer
}

func (imp *sourceFirstImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := imp.checked[path]; ok {
		return pkg, nil
	}
	return imp.fallback.Import(path)
}

// NewTypesInfo returns a types.Info with every map analyzers rely on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// RunAnalyzers applies every analyzer and returns the surviving
// (non-suppressed) diagnostics in file/line order. Per-package analyzers
// (Run) visit each package in turn; whole-program analyzers (RunProgram) run
// once over a Program wrapping every package, with suppressions merged
// across all of them.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	return RunAnalyzersOn(NewProgram(pkgs), analyzers)
}

// RunAnalyzersOn is RunAnalyzers over a caller-built Program, letting the
// driver share one call graph between the analyzer run and -stats reporting
// instead of building it twice.
func RunAnalyzersOn(prog *Program, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	pkgs := prog.Pkgs
	var diags []Diagnostic
	var fset *token.FileSet
	var programAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			programAnalyzers = append(programAnalyzers, a)
		}
	}
	for _, pkg := range pkgs {
		fset = pkg.Fset
		sup := CollectSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				if !sup.Allows(pkg.Fset, d) {
					diags = append(diags, d)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("framework: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	if len(programAnalyzers) > 0 && len(pkgs) > 0 {
		var allFiles []*ast.File
		for _, pkg := range pkgs {
			allFiles = append(allFiles, pkg.Files...)
		}
		sup := CollectSuppressions(prog.Fset, allFiles)
		for _, a := range programAnalyzers {
			pass := &ProgramPass{Analyzer: a, Program: prog}
			pass.Report = func(d Diagnostic) {
				if !sup.Allows(prog.Fset, d) {
					diags = append(diags, d)
				}
			}
			if err := a.RunProgram(pass); err != nil {
				return nil, nil, fmt.Errorf("framework: %s: %w", a.Name, err)
			}
		}
	}
	if fset != nil {
		sort.SliceStable(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return diags[i].Analyzer < diags[j].Analyzer
		})
	}
	return diags, fset, nil
}

// ModuleRoot walks upward from dir to the directory holding go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("framework: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Format renders a diagnostic the way go vet does.
func Format(fset *token.FileSet, d Diagnostic) string {
	pos := fset.Position(d.Pos)
	// Print paths relative to the working directory when possible; keeps
	// driver output stable across checkouts.
	name := pos.Filename
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s", name, pos.Line, pos.Column, d.Analyzer, d.Message)
}
