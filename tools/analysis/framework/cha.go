// Class-hierarchy analysis: the interface half of the devirtualization
// layer (pointsto.go is the function-value half). For an interface method
// call x.M() the analysis returns the set of concrete methods M declared on
// types in the loaded program whose method sets satisfy x's interface —
// every callee the call can dispatch to, under the whole-program assumption
// that the dynamic type of the interface value is declared in the program.
//
// That assumption is only sound for interfaces the program itself declares:
// nothing outside the repo can import it, so a repo-declared interface (say
// accum.Accumulator) can only be inhabited by repo-declared types flowing
// through repo code. A standard-library interface (io.Writer, error) can be
// inhabited by external types the loader never saw, so call sites on
// interfaces declared outside the loaded packages stay Opaque — counted,
// not guessed at (see CallStats).
package framework

import (
	"go/types"
	"sort"
)

// A CHA indexes the concrete named types of a program for interface method
// resolution.
type CHA struct {
	// concrete lists every non-interface, non-generic named type declared in
	// a loaded package, in deterministic package/name order.
	concrete []*types.Named
	// loaded marks the type-checked packages' type objects, the "declared in
	// the program" gate for interfaces.
	loaded map[*types.Package]bool
}

// buildCHA walks every loaded package scope once.
func buildCHA(pkgs []*Package) *CHA {
	c := &CHA{loaded: map[*types.Package]bool{}}
	for _, pkg := range pkgs {
		if pkg.Pkg == nil {
			continue
		}
		c.loaded[pkg.Pkg] = true
		scope := pkg.Pkg.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			if named.TypeParams().Len() > 0 {
				// Generic types would need per-instantiation method objects;
				// calls through interfaces they implement stay opaque.
				continue
			}
			c.concrete = append(c.concrete, named)
		}
	}
	return c
}

// ProgramInterface reports whether the (named) interface type is declared
// in a loaded package — the precondition for sound devirtualization.
func (c *CHA) ProgramInterface(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && c.loaded[obj.Pkg()]
}

// Implementations resolves a method call on the given interface type to the
// concrete methods implementing it in the program. The boolean reports
// whether the set is trustworthy: the interface must be program-declared
// and every implementing type's method must resolve to a declared function
// object (a method promoted from an embedded export-only type would not).
func (c *CHA) Implementations(t types.Type, method string) ([]*types.Func, bool) {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return nil, false
	}
	if !c.ProgramInterface(t) {
		return nil, false
	}
	complete := true
	var fns []*types.Func
	seen := map[*types.Func]bool{}
	for _, named := range c.concrete {
		// The pointer method set is the superset; a T whose *T implements
		// the interface can still be the dynamic type behind a *T value.
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), method)
		fn, ok := obj.(*types.Func)
		if !ok {
			complete = false
			continue
		}
		fn = fn.Origin()
		if !seen[fn] {
			seen[fn] = true
			fns = append(fns, fn)
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	return fns, complete
}
