// Control-flow graphs over function bodies, the substrate for the forward
// dataflow engine (dataflow.go). One statement per node keeps client
// transfer functions simple; branch edges carry the branch condition so
// clients can refine state along them (e.g. `if s.tryPin()` acquires a pin
// only on the true edge).
//
// The builder covers the statement forms the repo and its fixtures use:
// blocks, if/else, for and range loops, expression/type switches, select,
// labeled and unlabeled break/continue, return, defer, go. Two deliberate
// approximations keep it small: `goto` jumps conservatively to the function
// exit, and a statement-level `panic(...)` call likewise edges to the exit
// (deferred calls still run there, which is what the resource-bracket
// clients need).
package framework

import (
	"go/ast"
	"go/token"
)

// A CFG is the control-flow graph of one function body. Entry starts the
// body; every terminating path reaches Exit (returns, panics, falling off
// the end).
type CFG struct {
	Entry *CFGNode
	Exit  *CFGNode
	Nodes []*CFGNode
}

// A CFGNode holds at most one statement. Synthetic nodes (entry, exit,
// joins, loop heads) carry a nil Stmt. Composite statements never appear
// whole: the builder decomposes them so every node's Stmt is shallow —
// clients may walk it with ast.Inspect without re-seeing nested bodies. An
// if/for condition appears as a synthetic ExprStmt wrapping the original
// condition expression; a range binding appears as a synthetic AssignStmt
// (`k, v := range x` becomes `k, v := x` for dataflow purposes, with the
// original expressions and positions).
type CFGNode struct {
	Index int
	Stmt  ast.Stmt
	Succs []CFGEdge
	Preds []*CFGNode
}

// A CFGEdge connects two nodes. When Cond is non-nil the edge is taken only
// when Cond evaluates to Branch — the if/for condition refinement hook.
type CFGEdge struct {
	To     *CFGNode
	Cond   ast.Expr
	Branch bool
}

type cfgBuilder struct {
	cfg *CFG
	// loop stack for unlabeled break/continue; switch/select push a
	// break-only frame.
	frames []cfgFrame
	// label targets for labeled break/continue.
	labels map[string]*cfgFrame
}

type cfgFrame struct {
	label    string
	brk      *CFGNode // target of break
	cont     *CFGNode // target of continue; nil for switch/select frames
	loopLike bool
}

// BuildCFG constructs the CFG of one function body. A nil body yields a
// trivial entry→exit graph.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*cfgFrame{}}
	b.cfg.Entry = b.newNode(nil)
	b.cfg.Exit = b.newNode(nil)
	if body == nil {
		b.edge(b.cfg.Entry, b.cfg.Exit, nil, false)
		return b.cfg
	}
	end := b.stmts(b.cfg.Entry, body.List, "")
	if end != nil {
		b.edge(end, b.cfg.Exit, nil, false)
	}
	return b.cfg
}

func (b *cfgBuilder) newNode(s ast.Stmt) *CFGNode {
	n := &CFGNode{Index: len(b.cfg.Nodes), Stmt: s}
	b.cfg.Nodes = append(b.cfg.Nodes, n)
	return n
}

func (b *cfgBuilder) edge(from, to *CFGNode, cond ast.Expr, branch bool) {
	from.Succs = append(from.Succs, CFGEdge{To: to, Cond: cond, Branch: branch})
	to.Preds = append(to.Preds, from)
}

// stmts threads the statement list from cur, returning the live trailing
// node, or nil when every path has left the list (return/break/...). label
// names the statement list's pending label (for `label: for {...}`).
func (b *cfgBuilder) stmts(cur *CFGNode, list []ast.Stmt, label string) *CFGNode {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after a terminator; still build nodes so
			// clients can inspect them, but leave them unconnected.
			cur = b.newNode(nil)
		}
		cur = b.stmt(cur, s, label)
		label = ""
	}
	return cur
}

// stmt wires one statement after cur and returns the live continuation node
// (nil when the statement never falls through).
func (b *cfgBuilder) stmt(cur *CFGNode, s ast.Stmt, label string) *CFGNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List, "")

	case *ast.LabeledStmt:
		return b.stmt(cur, s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init, "")
		}
		condNode := b.newNode(&ast.ExprStmt{X: s.Cond})
		b.edge(cur, condNode, nil, false)
		after := b.newNode(nil)
		thenEntry := b.newNode(nil)
		b.edge(condNode, thenEntry, s.Cond, true)
		if thenEnd := b.stmts(thenEntry, s.Body.List, ""); thenEnd != nil {
			b.edge(thenEnd, after, nil, false)
		}
		if s.Else != nil {
			elseEntry := b.newNode(nil)
			b.edge(condNode, elseEntry, s.Cond, false)
			if elseEnd := b.stmt(elseEntry, s.Else, ""); elseEnd != nil {
				b.edge(elseEnd, after, nil, false)
			}
		} else {
			b.edge(condNode, after, s.Cond, false)
		}
		if len(after.Preds) == 0 {
			return nil
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init, "")
		}
		head := b.newNode(nil)
		b.edge(cur, head, nil, false)
		after := b.newNode(nil)
		contTarget := head
		var post *CFGNode
		if s.Post != nil {
			post = b.newNode(s.Post)
			b.edge(post, head, nil, false)
			contTarget = post
		}
		frame := cfgFrame{label: label, brk: after, cont: contTarget, loopLike: true}
		b.pushFrame(frame)
		bodyEntry := b.newNode(nil)
		if s.Cond != nil {
			condNode := b.newNode(&ast.ExprStmt{X: s.Cond})
			b.edge(head, condNode, nil, false)
			b.edge(condNode, bodyEntry, s.Cond, true)
			b.edge(condNode, after, s.Cond, false)
		} else {
			b.edge(head, bodyEntry, nil, false)
		}
		if bodyEnd := b.stmts(bodyEntry, s.Body.List, ""); bodyEnd != nil {
			b.edge(bodyEnd, contTarget, nil, false)
		}
		b.popFrame(frame)
		if len(after.Preds) == 0 {
			return nil // for {} with no break never falls through
		}
		return after

	case *ast.RangeStmt:
		head := b.newNode(rangeBinding(s)) // the per-iteration variable binding
		b.edge(cur, head, nil, false)
		after := b.newNode(nil)
		b.edge(head, after, nil, false) // range may be empty / exhausted
		frame := cfgFrame{label: label, brk: after, cont: head, loopLike: true}
		b.pushFrame(frame)
		bodyEntry := b.newNode(nil)
		b.edge(head, bodyEntry, nil, false)
		if bodyEnd := b.stmts(bodyEntry, s.Body.List, ""); bodyEnd != nil {
			b.edge(bodyEnd, head, nil, false)
		}
		b.popFrame(frame)
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init, "")
		}
		var tag ast.Stmt
		if s.Tag != nil {
			tag = &ast.ExprStmt{X: s.Tag}
		}
		head := b.newNode(tag) // evaluates the tag
		b.edge(cur, head, nil, false)
		after := b.newNode(nil)
		frame := cfgFrame{label: label, brk: after}
		b.pushFrame(frame)
		b.switchClauses(head, after, s.Body.List)
		b.popFrame(frame)
		if len(after.Preds) == 0 {
			return nil
		}
		return after

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init, "")
		}
		head := b.newNode(s.Assign) // the x.(type) assignment (a simple stmt)
		b.edge(cur, head, nil, false)
		after := b.newNode(nil)
		frame := cfgFrame{label: label, brk: after}
		b.pushFrame(frame)
		b.switchClauses(head, after, s.Body.List)
		b.popFrame(frame)
		if len(after.Preds) == 0 {
			return nil
		}
		return after

	case *ast.SelectStmt:
		head := b.newNode(nil)
		b.edge(cur, head, nil, false)
		after := b.newNode(nil)
		frame := cfgFrame{label: label, brk: after}
		b.pushFrame(frame)
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			entry := b.newNode(comm.Comm) // the comm op itself; nil for default
			b.edge(head, entry, nil, false)
			if end := b.stmts(entry, comm.Body, ""); end != nil {
				b.edge(end, after, nil, false)
			}
		}
		b.popFrame(frame)
		if len(s.Body.List) == 0 || len(after.Preds) == 0 {
			return nil // select{} blocks forever, or every clause terminates
		}
		return after

	case *ast.ReturnStmt:
		n := b.newNode(s)
		b.edge(cur, n, nil, false)
		b.edge(n, b.cfg.Exit, nil, false)
		return nil

	case *ast.BranchStmt:
		n := b.newNode(s)
		b.edge(cur, n, nil, false)
		switch s.Tok {
		case token.BREAK:
			if t := b.frameFor(s.Label, false); t != nil {
				b.edge(n, t.brk, nil, false)
			} else {
				b.edge(n, b.cfg.Exit, nil, false)
			}
		case token.CONTINUE:
			if t := b.frameFor(s.Label, true); t != nil && t.cont != nil {
				b.edge(n, t.cont, nil, false)
			} else {
				b.edge(n, b.cfg.Exit, nil, false)
			}
		case token.GOTO:
			// Conservative: treat as leaving the function. No repo code and
			// no fixture uses goto; a client seeing this edge assumes exit
			// obligations apply.
			b.edge(n, b.cfg.Exit, nil, false)
		case token.FALLTHROUGH:
			// Handled by switchClauses: the clause end falls into the next
			// clause body. Here reached only for malformed code; edge to exit.
			b.edge(n, b.cfg.Exit, nil, false)
		}
		return nil

	default:
		// Simple statements: assignments, expressions, declarations, defer,
		// go, send, inc/dec, empty. One node, straight-through edge. A
		// statement-level panic(...) terminates the path.
		n := b.newNode(s)
		b.edge(cur, n, nil, false)
		if isPanicStmt(s) {
			b.edge(n, b.cfg.Exit, nil, false)
			return nil
		}
		return n
	}
}

// switchClauses wires each case clause from head, honoring fallthrough.
func (b *cfgBuilder) switchClauses(head, after *CFGNode, clauses []ast.Stmt) {
	// Pre-create clause entries so fallthrough can target the next body.
	entries := make([]*CFGNode, len(clauses))
	bodyEntries := make([]*CFGNode, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		// The clause entry is synthetic: case expressions are comparisons and
		// carry no statements (their rare side effects are out of scope).
		entries[i] = b.newNode(nil)
		bodyEntries[i] = b.newNode(nil)
		b.edge(head, entries[i], nil, false)
		b.edge(entries[i], bodyEntries[i], nil, false)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after, nil, false) // no case matched
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		body := cc.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				body = body[:n-1]
				fallsThrough = true
			}
		}
		end := b.stmts(bodyEntries[i], body, "")
		if end == nil {
			continue
		}
		if fallsThrough && i+1 < len(clauses) {
			b.edge(end, bodyEntries[i+1], nil, false)
		} else {
			b.edge(end, after, nil, false)
		}
	}
}

func (b *cfgBuilder) pushFrame(f cfgFrame) {
	b.frames = append(b.frames, f)
	if f.label != "" {
		fp := &b.frames[len(b.frames)-1]
		b.labels[f.label] = fp
	}
}

func (b *cfgBuilder) popFrame(f cfgFrame) {
	b.frames = b.frames[:len(b.frames)-1]
	if f.label != "" {
		delete(b.labels, f.label)
	}
}

// frameFor resolves a break/continue target: the labeled frame when label is
// set, otherwise the innermost frame (innermost loop for continue).
func (b *cfgBuilder) frameFor(label *ast.Ident, needLoop bool) *cfgFrame {
	if label != nil {
		return b.labels[label.Name]
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		if !needLoop || b.frames[i].loopLike {
			return &b.frames[i]
		}
	}
	return nil
}

// rangeBinding rewrites a range statement's header as a shallow statement
// for the loop-head node: `k, v := range x` becomes the synthetic assignment
// `k, v := x` (original expressions, original positions), and a bare
// `range x` becomes `x` as an expression statement. Dataflow clients then
// see the aliasing a range loop creates without special-casing RangeStmt.
func rangeBinding(s *ast.RangeStmt) ast.Stmt {
	if s.Key == nil && s.Value == nil {
		return &ast.ExprStmt{X: s.X}
	}
	var lhs []ast.Expr
	if s.Key != nil {
		lhs = append(lhs, s.Key)
	}
	if s.Value != nil {
		lhs = append(lhs, s.Value)
	}
	return &ast.AssignStmt{Lhs: lhs, Tok: s.Tok, TokPos: s.TokPos, Rhs: []ast.Expr{s.X}}
}

// isPanicStmt reports whether s is a statement-level call to the builtin
// panic. Type information is not consulted (the CFG is syntax-only); a
// shadowed panic is vanishingly rare and only makes the graph conservative.
func isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
