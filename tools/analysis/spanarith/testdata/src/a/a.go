// Fixture for spanarith: index and slice-bound arithmetic in narrow integer
// types, in the style of the sealed arena's {off, len} span math.
package a

type span struct {
	off, n int32
}

type pair struct {
	idx uint32
	val float64
}

func rawSpan(pairs []pair, sp span) []pair {
	return pairs[sp.off : sp.off+sp.n] // want `slice bound arithmetic performed in int32`
}

func widenedSpan(pairs []pair, sp span) []pair {
	return pairs[int(sp.off) : int(sp.off)+int(sp.n)] // widened before the add: fine
}

func rawIndexMul(a []float64, off, step uint32) float64 {
	return a[off*step] // want `index arithmetic performed in uint32`
}

func widenedIndexMul(a []float64, off, step uint32) float64 {
	return a[uint64(off)*uint64(step)] // widened before the multiply: fine
}

func rawIndexAdd(a []byte, base, delta uint16) byte {
	return a[base+delta] // want `index arithmetic performed in uint16`
}

func narrowValueIndex(a []float64, off int32) float64 {
	return a[off] // narrow value, no narrow arithmetic: fine
}

func intArithmetic(a []float64, i, j int) float64 {
	return a[i+j] // int-domain arithmetic is the fix, not the bug: fine
}

func mapKey(m map[uint32]int, off, step uint32) int {
	return m[off*step] // map keys cannot read out of bounds: fine
}

func shiftBound(a []uint64, i uint32) uint64 {
	return a[i>>2] // shifts only narrow, they do not wrap: fine
}

func allowed(pairs []pair, sp span) []pair {
	return pairs[sp.off : sp.off+sp.n] //fastcc:allow spanarith -- arena bounded to 2^20 pairs at seal time
}

func ownedSpan(pairs []pair, sp span) []pair {
	return pairs[sp.off : sp.off+sp.n] //fastcc:owned -- sp was range-checked by the sealer that owns the arena
}
