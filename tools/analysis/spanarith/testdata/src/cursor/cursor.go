// Fixture for spanarith's flow-sensitive cursor rule: narrow-int variables
// accumulated in loops, then used as indexes or slice bounds. The old
// single-expression rule saw none of these — the use sites carry no
// arithmetic.
package cursor

type span struct {
	off, n int32
}

type pair struct {
	idx uint32
	val float64
}

// accumulatedIndex is the motivating shape: off wraps during accumulation,
// so the plain-variable index reads the wrong memory.
func accumulatedIndex(pairs []pair, spans []span) []pair {
	var out []pair
	var off int32
	for _, sp := range spans {
		out = append(out, pairs[off]) // want `index uses int32 cursor "off" accumulated in a loop`
		off += sp.n
	}
	return out
}

// accumulatedSliceBound wraps the same way in a slice bound.
func accumulatedSliceBound(pairs []pair, spans []span) []pair {
	var out []pair
	var off int32
	for _, sp := range spans {
		out = append(out, pairs[off:off+sp.n]...) // want `slice bound uses int32 cursor "off" accumulated in a loop` `slice bound arithmetic performed in int32`
		off += sp.n
	}
	return out
}

// widenedUseStillWrong demonstrates why widening at the use site is not the
// fix: the wrap already happened inside the loop.
func widenedUseStillWrong(pairs []pair, spans []span) pair {
	var off int32
	for _, sp := range spans {
		off += sp.n
	}
	return pairs[int(off)] // want `index uses int32 cursor "off" accumulated in a loop`
}

// longFormAccumulation uses off = off + n instead of +=.
func longFormAccumulation(a []float64, steps []int32) float64 {
	var off int32
	var t float64
	for _, st := range steps {
		t += a[off] // want `index uses int32 cursor "off" accumulated in a loop`
		off = off + st
	}
	return t
}

// aliasedCursor follows the accumulated value through a copy.
func aliasedCursor(a []float64, steps []int32) float64 {
	var off int32
	for _, st := range steps {
		off += st
	}
	cur := off
	return a[cur] // want `index uses int32 cursor "cur" accumulated in a loop`
}

// wideAccumulation is the fix: accumulate in int, convert at the boundary.
func wideAccumulation(pairs []pair, spans []span) []pair {
	var out []pair
	off := 0
	for _, sp := range spans {
		out = append(out, pairs[off])
		off += int(sp.n)
	}
	return out
}

// resetEachIteration never carries the sum across iterations: clean.
func resetEachIteration(a []float64, spans []span) float64 {
	var t float64
	for _, sp := range spans {
		off := sp.off
		t += a[off]
	}
	return t
}

// straightLine accumulates outside any loop: one addition, bounded, clean
// under the cursor rule (the expression rule governs arithmetic in bounds).
func straightLine(a []float64, x, y int32) float64 {
	var off int32
	off += x
	off += y
	return a[off]
}

// allowedCursor carries an audited suppression at the use site.
func allowedCursor(a []float64, steps []int32) float64 {
	var off int32
	for _, st := range steps {
		off += st
	}
	return a[off] //fastcc:allow spanarith -- steps sum below 2^31 by construction
}
