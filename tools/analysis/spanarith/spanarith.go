// Package spanarith flags index and slice-bound arithmetic performed in
// integer types narrower than 64 bits.
//
// The sealed-shard layer addresses its pair arenas with {off, len} spans
// stored as int32 (hashtable.Span), and linearized tile indices flow through
// uint32 intra-tile coordinates. Arithmetic carried out *in* those narrow
// types — pairs[sp.Off : sp.Off+sp.Len], a[off*stride] with uint32 operands
// — wraps silently once arenas or strides grow past the narrow type's range,
// and the wrapped value then indexes the wrong (but usually in-bounds)
// memory: no panic, no race report, just corrupt spans. This is the span
// sibling of linovf, which polices dimension products in the 64-bit domain.
//
// The rule is type-directed and narrow on purpose: a diagnostic fires only
// when a +, - or * expression whose *static type* is a sized integer
// narrower than 64 bits (int8/16/32, uint8/16/32) appears inside an index or
// slice bound of an array, slice or string. The fix is to widen the operands
// before the arithmetic —
//
//	pairs[int(sp.Off) : int(sp.Off)+int(sp.Len)]
//
// (or route through a checked helper that does so, like the sealed table's
// span accessors). Indexing with a narrow *value* (a[off] with off int32) is
// fine: the conversion to int is exact, only narrow-domain arithmetic wraps.
// Proven-impossible wraps are annotated //fastcc:allow spanarith -- reason,
// or with the //fastcc:owned line marker (shared with poolescape) when the
// suppression is an ownership claim: the annotated site's owner bounds the
// operands by construction (e.g. spans its own sealer validated).
//
// A second, flow-sensitive rule catches the wrap the expression rule cannot
// see: cursor accumulation. A narrow-int variable that accumulates inside a
// loop —
//
//	var off int32
//	for _, sp := range spans {
//	    out = append(out, pairs[off])   // off may already have wrapped
//	    off += sp.n
//	}
//
// wraps *during the accumulation*, so by the time it reaches an index the
// damage is done and no widening at the use site helps (pairs[int(off)] is
// equally wrong). The analyzer runs the forward dataflow engine over each
// function's CFG, marking narrow variables that self-accumulate (`off += n`,
// `off = off + n`) on a node that lies on a CFG cycle, and reports any index
// or slice-bound use of such a cursor. The fix is to accumulate in int and
// convert at the narrow boundary instead.
package spanarith

import (
	"go/ast"
	"go/token"
	"go/types"

	"fastcc/tools/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "spanarith",
	Doc:  "flags index/slice-bound arithmetic performed in sub-64-bit integer types (span overflow)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	owned := framework.CollectLineMarkers(pass.Fset, pass.Files, "owned")
	pass.Preorder(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if indexable(pass.TypesInfo, n.X) {
				checkBound(pass, n.Index, "index", owned)
			}
		case *ast.SliceExpr:
			if indexable(pass.TypesInfo, n.X) {
				checkBound(pass, n.Low, "slice bound", owned)
				checkBound(pass, n.High, "slice bound", owned)
				checkBound(pass, n.Max, "slice bound", owned)
			}
		}
	})
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkCursors(pass, n.Body, owned)
				}
			case *ast.FuncLit:
				checkCursors(pass, n.Body, owned)
			}
			return true
		})
	}
	return nil
}

// cursorSet is the dataflow state of the accumulation rule: the narrow-int
// variables that may hold a loop-accumulated value. Join is union — a cursor
// accumulated on any path into a node is suspect there.
type cursorSet map[*types.Var]bool

// checkCursors runs the cursor-accumulation dataflow over one function body
// and reports index/slice-bound uses of accumulated narrow cursors.
func checkCursors(pass *framework.Pass, body *ast.BlockStmt, owned map[string]map[int]bool) {
	info := pass.TypesInfo
	if !hasNarrowAccum(info, body) {
		return // fast path: nothing accumulates in a narrow type here
	}
	cfg := framework.BuildCFG(body)
	inLoop := loopResident(cfg)
	flow := &framework.Flow[cursorSet]{
		CFG:  cfg,
		Init: cursorSet{},
		Transfer: func(n *framework.CFGNode, in cursorSet) cursorSet {
			if n.Stmt != nil {
				applyCursorStmt(info, n.Stmt, in, inLoop[n.Index])
			}
			return in
		},
		Join: func(acc, in cursorSet) cursorSet {
			for v := range in {
				acc[v] = true
			}
			return acc
		},
		Equal: func(a, b cursorSet) bool {
			if len(a) != len(b) {
				return false
			}
			for v := range a {
				if !b[v] {
					return false
				}
			}
			return true
		},
		Copy: func(s cursorSet) cursorSet {
			out := make(cursorSet, len(s))
			for v := range s {
				out[v] = true
			}
			return out
		},
	}
	res := flow.Solve()

	seen := map[cursorUse]bool{} // one report per cursor per line
	for _, n := range cfg.Nodes {
		if !res.Reached[n.Index] || n.Stmt == nil {
			continue
		}
		reportCursorUses(pass, n.Stmt, res.In[n.Index], owned, seen)
	}
}

// applyCursorStmt updates the cursor set for one shallow statement. A narrow
// variable that self-accumulates on a loop-resident node becomes a cursor; a
// plain re-assignment (off = 0, off = base) clears it unless the new value is
// itself an accumulated cursor.
func applyCursorStmt(info *types.Info, stmt ast.Stmt, s cursorSet, inLoop bool) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		if len(as.Lhs) != 1 {
			return
		}
		if v := boundIdentVar(info, as.Lhs[0]); v != nil && narrowInt(v.Type()) != "" && inLoop {
			s[v] = true
		}
	case token.ASSIGN, token.DEFINE:
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			v := boundIdentVar(info, lhs)
			if v == nil || narrowInt(v.Type()) == "" {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if b, ok := rhs.(*ast.BinaryExpr); ok && inLoop &&
				(b.Op == token.ADD || b.Op == token.SUB || b.Op == token.MUL) && refsVar(info, b, v) {
				s[v] = true // off = off + n inside a loop
				continue
			}
			if src := boundIdentVar(info, rhs); src != nil && s[src] {
				s[v] = true // alias of an accumulated cursor
				continue
			}
			delete(s, v) // reinitialized: off = 0 resets the cursor
		}
	}
}

// cursorUse keys report deduplication: one diagnostic per cursor per line,
// however many times the identifier appears in the bounds.
type cursorUse struct {
	v    *types.Var
	line int
}

// reportCursorUses walks one shallow statement (excluding nested function
// literals, which are analyzed separately) for index or slice-bound uses of
// accumulated cursors.
func reportCursorUses(pass *framework.Pass, stmt ast.Stmt, s cursorSet, owned map[string]map[int]bool, seen map[cursorUse]bool) {
	if len(s) == 0 {
		return
	}
	info := pass.TypesInfo
	check := func(e ast.Expr, where string) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, _ := info.Uses[id].(*types.Var)
			if v == nil || !s[v] {
				return true
			}
			key := cursorUse{v: v, line: pass.Fset.Position(id.Pos()).Line}
			if seen[key] {
				return true
			}
			seen[key] = true
			if framework.MarkedAt(pass.Fset, owned, id.Pos()) {
				return true
			}
			pass.Reportf(id.Pos(),
				"%s uses %s cursor %q accumulated in a loop; the accumulation may wrap before this use — accumulate in int and convert at the narrow boundary (or annotate //fastcc:allow spanarith with a reason)",
				where, narrowInt(v.Type()), v.Name())
			return true
		})
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IndexExpr:
			if indexable(info, n.X) {
				check(n.Index, "index")
			}
		case *ast.SliceExpr:
			if indexable(info, n.X) {
				check(n.Low, "slice bound")
				check(n.High, "slice bound")
				check(n.Max, "slice bound")
			}
		}
		return true
	})
}

// hasNarrowAccum reports whether the body contains any assignment shape the
// cursor rule cares about — the gate that keeps the CFG build off the vast
// majority of functions.
func hasNarrowAccum(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		case token.ASSIGN, token.DEFINE:
			ok := false
			for i := range as.Lhs {
				if i < len(as.Rhs) {
					if _, isBin := ast.Unparen(as.Rhs[i]).(*ast.BinaryExpr); isBin {
						ok = true
					}
				}
			}
			if !ok {
				return true
			}
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			if v := boundIdentVar(info, lhs); v != nil && narrowInt(v.Type()) != "" {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopResident computes, per CFG node, whether the node lies on a cycle —
// reachable from one of its own successors. Quadratic in the worst case, but
// only run on bodies that pass the accumulation gate.
func loopResident(cfg *framework.CFG) []bool {
	n := len(cfg.Nodes)
	out := make([]bool, n)
	for _, start := range cfg.Nodes {
		seen := make([]bool, n)
		stack := make([]*framework.CFGNode, 0, len(start.Succs))
		for _, e := range start.Succs {
			stack = append(stack, e.To)
		}
		for len(stack) > 0 {
			nd := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if nd == start {
				out[start.Index] = true
				break
			}
			if seen[nd.Index] {
				continue
			}
			seen[nd.Index] = true
			for _, e := range nd.Succs {
				stack = append(stack, e.To)
			}
		}
	}
	return out
}

// boundIdentVar resolves a plain identifier to its variable object.
func boundIdentVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// refsVar reports whether e references v.
func refsVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// checkBound reports the first +, - or * subexpression of e whose static
// type is a sized integer narrower than 64 bits.
func checkBound(pass *framework.Pass, e ast.Expr, where string, owned map[string]map[int]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch b.Op {
		case token.ADD, token.SUB, token.MUL:
		default:
			return true
		}
		if framework.MarkedAt(pass.Fset, owned, b.Pos()) {
			return false
		}
		if name := narrowInt(pass.TypesInfo.TypeOf(b)); name != "" {
			pass.Reportf(b.Pos(),
				"%s arithmetic performed in %s may wrap before widening; widen the operands to int first (e.g. int(off)+int(n)) or use a checked span helper (or annotate //fastcc:allow spanarith with a reason)",
				where, name)
			return false
		}
		return true
	})
}

// narrowInt returns the type's name when it is a sized integer narrower
// than 64 bits, and "" otherwise. int and uint are platform-word sized and
// treated as 64-bit: indexing math in them is the fix, not the bug.
func narrowInt(t types.Type) string {
	if t == nil {
		return ""
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch b.Kind() {
	case types.Int8, types.Int16, types.Int32, types.Uint8, types.Uint16, types.Uint32:
		return b.Name()
	}
	return ""
}

// indexable reports whether x is an array, slice, pointer-to-array or
// string — the types where a wrapped index reads wrong memory. Map keys and
// generic type parameters are out of scope.
func indexable(info *types.Info, x ast.Expr) bool {
	t := info.TypeOf(x)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}
