// Package spanarith flags index and slice-bound arithmetic performed in
// integer types narrower than 64 bits.
//
// The sealed-shard layer addresses its pair arenas with {off, len} spans
// stored as int32 (hashtable.Span), and linearized tile indices flow through
// uint32 intra-tile coordinates. Arithmetic carried out *in* those narrow
// types — pairs[sp.Off : sp.Off+sp.Len], a[off*stride] with uint32 operands
// — wraps silently once arenas or strides grow past the narrow type's range,
// and the wrapped value then indexes the wrong (but usually in-bounds)
// memory: no panic, no race report, just corrupt spans. This is the span
// sibling of linovf, which polices dimension products in the 64-bit domain.
//
// The rule is type-directed and narrow on purpose: a diagnostic fires only
// when a +, - or * expression whose *static type* is a sized integer
// narrower than 64 bits (int8/16/32, uint8/16/32) appears inside an index or
// slice bound of an array, slice or string. The fix is to widen the operands
// before the arithmetic —
//
//	pairs[int(sp.Off) : int(sp.Off)+int(sp.Len)]
//
// (or route through a checked helper that does so, like the sealed table's
// span accessors). Indexing with a narrow *value* (a[off] with off int32) is
// fine: the conversion to int is exact, only narrow-domain arithmetic wraps.
// Proven-impossible wraps are annotated //fastcc:allow spanarith -- reason,
// or with the //fastcc:owned line marker (shared with poolescape) when the
// suppression is an ownership claim: the annotated site's owner bounds the
// operands by construction (e.g. spans its own sealer validated).
package spanarith

import (
	"go/ast"
	"go/token"
	"go/types"

	"fastcc/tools/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "spanarith",
	Doc:  "flags index/slice-bound arithmetic performed in sub-64-bit integer types (span overflow)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	owned := framework.CollectLineMarkers(pass.Fset, pass.Files, "owned")
	pass.Preorder(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if indexable(pass.TypesInfo, n.X) {
				checkBound(pass, n.Index, "index", owned)
			}
		case *ast.SliceExpr:
			if indexable(pass.TypesInfo, n.X) {
				checkBound(pass, n.Low, "slice bound", owned)
				checkBound(pass, n.High, "slice bound", owned)
				checkBound(pass, n.Max, "slice bound", owned)
			}
		}
	})
	return nil
}

// checkBound reports the first +, - or * subexpression of e whose static
// type is a sized integer narrower than 64 bits.
func checkBound(pass *framework.Pass, e ast.Expr, where string, owned map[string]map[int]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch b.Op {
		case token.ADD, token.SUB, token.MUL:
		default:
			return true
		}
		if framework.MarkedAt(pass.Fset, owned, b.Pos()) {
			return false
		}
		if name := narrowInt(pass.TypesInfo.TypeOf(b)); name != "" {
			pass.Reportf(b.Pos(),
				"%s arithmetic performed in %s may wrap before widening; widen the operands to int first (e.g. int(off)+int(n)) or use a checked span helper (or annotate //fastcc:allow spanarith with a reason)",
				where, name)
			return false
		}
		return true
	})
}

// narrowInt returns the type's name when it is a sized integer narrower
// than 64 bits, and "" otherwise. int and uint are platform-word sized and
// treated as 64-bit: indexing math in them is the fix, not the bug.
func narrowInt(t types.Type) string {
	if t == nil {
		return ""
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch b.Kind() {
	case types.Int8, types.Int16, types.Int32, types.Uint8, types.Uint16, types.Uint32:
		return b.Name()
	}
	return ""
}

// indexable reports whether x is an array, slice, pointer-to-array or
// string — the types where a wrapped index reads wrong memory. Map keys and
// generic type parameters are out of scope.
func indexable(info *types.Info, x ast.Expr) bool {
	t := info.TypeOf(x)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}
