package spanarith_test

import (
	"testing"

	"fastcc/tools/analysis/analysistest"
	"fastcc/tools/analysis/spanarith"
)

func TestSpanArith(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), spanarith.Analyzer, "a", "cursor")
}
