// Stub of internal/core's pin protocol plus in-package bracket tests —
// tryPin/mustPin are unexported, so their call sites can only live here,
// exactly as in the real package.
package core

import "scheduler"

// ShardKey keys the shard cache.
type ShardKey struct{ Tile uint64 }

// Shard is a pinnable resource.
type Shard struct{ pins int }

func (s *Shard) tryPin() bool { return true }
func (s *Shard) mustPin()     {}

// Unpin releases one pin.
func (s *Shard) Unpin() {}

// Operand caches shards.
type Operand struct{ shards map[ShardKey]*Shard }

// Shard returns the shard for key pinned; the caller owes one Unpin.
func (o *Operand) Shard(key ShardKey, threads int) (*Shard, bool) {
	return new(Shard), true
}

// tryPinLeak acquires on the true branch but forgets the release on one of
// its sub-paths.
func tryPinLeak(s *Shard, fail bool) {
	if s.tryPin() { // want `shard pin "s" acquired here may not be released on every path`
		if fail {
			return
		}
		s.Unpin()
	}
}

// tryPinBalanced releases the conditional pin on every path it exists: clean.
func tryPinBalanced(s *Shard, fail bool) {
	if s.tryPin() {
		if fail {
			s.Unpin()
			return
		}
		s.Unpin()
	}
}

// mustPinLeak skips the release on the early return.
func mustPinLeak(s *Shard, fail bool) {
	s.mustPin() // want `shard pin "s" acquired here may not be released on every path`
	if fail {
		return
	}
	s.Unpin()
}

// balancedGuard pins the same shards its Release half unpins: clean, and
// both halves are exempt from the per-function bracket check.
func balancedGuard(ls, rs *Shard) scheduler.Guard {
	return scheduler.Guard{
		Acquire: func(w int) { ls.mustPin(); rs.mustPin() },
		Release: func(w int) { rs.Unpin(); ls.Unpin() },
	}
}

// lopsidedGuard pins two shards but releases only one.
func lopsidedGuard(ls, rs *Shard) scheduler.Guard {
	return scheduler.Guard{ // want `Guard Acquire/Release literals are unbalanced: Acquire pins ls, rs but Release unpins ls`
		Acquire: func(w int) { ls.mustPin(); rs.mustPin() },
		Release: func(w int) { ls.Unpin() },
	}
}
