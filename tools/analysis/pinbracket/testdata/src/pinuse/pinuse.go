// Client-side bracket tests: pins obtained through core's exported API and
// pool values from mempool, checked across the whole fixture program so the
// pin-returning helper summary crosses the package boundary.
package pinuse

import (
	"context"
	"errors"

	"core"
	"mempool"
)

func use(s *core.Shard) {}

// leakOnError is the headline case: a pin leaked on an error path the
// happy-path test never takes.
func leakOnError(o *core.Operand, fail bool) error {
	s, _ := o.Shard(core.ShardKey{}, 1) // want `shard pin "s" acquired here may not be released on every path`
	if fail {
		return errors.New("build failed")
	}
	s.Unpin()
	return nil
}

// ctxLeak leaks the pin on the cancellation branch.
func ctxLeak(ctx context.Context, o *core.Operand) error {
	s, _ := o.Shard(core.ShardKey{}, 1) // want `shard pin "s" acquired here may not be released on every path`
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	s.Unpin()
	return nil
}

// deferredUnpin is the idiomatic bracket: clean.
func deferredUnpin(o *core.Operand) {
	s, _ := o.Shard(core.ShardKey{}, 1)
	defer s.Unpin()
	use(s)
}

// branchReleased unpins on both paths: clean.
func branchReleased(o *core.Operand, fail bool) error {
	s, _ := o.Shard(core.ShardKey{}, 1)
	if fail {
		s.Unpin()
		return errors.New("no")
	}
	s.Unpin()
	return nil
}

// pinnedShard hands its caller a still-pinned shard: the summary transfers
// the obligation, so this function itself is clean.
func pinnedShard(o *core.Operand) *core.Shard {
	s, _ := o.Shard(core.ShardKey{}, 1)
	return s
}

// summaryLeak receives the obligation from pinnedShard's summary and drops
// it on the early return.
func summaryLeak(o *core.Operand, fail bool) {
	s := pinnedShard(o) // want `shard pin "s" acquired here may not be released on every path`
	if fail {
		return
	}
	s.Unpin()
}

// summaryBalanced defers the release of the summarized pin: clean.
func summaryBalanced(o *core.Operand) {
	s := pinnedShard(o)
	defer s.Unpin()
	use(s)
}

var fl mempool.Freelist[int, []float64]

// freelistLeak takes the value on the ok branch but loses it on the error
// sub-path.
func freelistLeak(k int, fail bool) {
	v, ok := fl.Get(k) // want `freelist value "v" acquired here may not be released on every path`
	if !ok {
		return
	}
	if fail {
		return
	}
	fl.Put(k, v)
}

// freelistBalanced puts the value back on every path it exists: clean.
func freelistBalanced(k int, fail bool) {
	v, ok := fl.Get(k)
	if !ok {
		return
	}
	if fail {
		fl.Put(k, v)
		return
	}
	fl.Put(k, v)
}

var sp mempool.SlicePool[float64]

// sliceLeak drops the pooled slice on the early return.
func sliceLeak(fail bool) {
	buf := sp.Get(64) // want `pooled slice "buf" acquired here may not be released on every path`
	if fail {
		return
	}
	sp.Put(buf)
}

// sliceDeferred parks the slice via defer: clean.
func sliceDeferred() {
	buf := sp.Get(64)
	defer sp.Put(buf)
	_ = append(buf, 1)
}

// methodValueDefer binds the release as a method value and defers calling
// it — the engine's `rel := g.release; defer rel()` idiom. The defer-site
// classification keeps the two statements straight: binding s.Unpin is not
// a call, and the deferred `unpin()` is an indirect call resolved back to
// the bound receiver's Unpin, so this is the idiomatic bracket, not a leak.
func methodValueDefer(o *core.Operand) {
	s, _ := o.Shard(core.ShardKey{}, 1)
	unpin := s.Unpin
	defer unpin()
	use(s)
}

// methodValueDeferBranches re-checks the bind on a function with real
// control flow: the deferred bound release must cover every path.
func methodValueDeferBranches(ctx context.Context, o *core.Operand) error {
	s, _ := o.Shard(core.ShardKey{}, 1)
	unpin := s.Unpin
	defer unpin()
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	use(s)
	return nil
}

// methodValueNeverDeferred binds the release but only calls it on the happy
// path: the bind itself must not count as a release, so the pin still
// leaks on the error return.
func methodValueNeverDeferred(o *core.Operand, fail bool) error {
	s, _ := o.Shard(core.ShardKey{}, 1) // want `shard pin "s" acquired here may not be released on every path`
	if fail {
		return errors.New("build failed")
	}
	s.Unpin()
	_ = s.Unpin // a dangling method value is not a release either
	return nil
}
