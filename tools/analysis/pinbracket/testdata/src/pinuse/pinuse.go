// Client-side bracket tests: pins obtained through core's exported API and
// pool values from mempool, checked across the whole fixture program so the
// pin-returning helper summary crosses the package boundary.
package pinuse

import (
	"context"
	"errors"

	"core"
	"mempool"
)

func use(s *core.Shard) {}

// leakOnError is the headline case: a pin leaked on an error path the
// happy-path test never takes.
func leakOnError(o *core.Operand, fail bool) error {
	s, _ := o.Shard(core.ShardKey{}, 1) // want `shard pin "s" acquired here may not be released on every path`
	if fail {
		return errors.New("build failed")
	}
	s.Unpin()
	return nil
}

// ctxLeak leaks the pin on the cancellation branch.
func ctxLeak(ctx context.Context, o *core.Operand) error {
	s, _ := o.Shard(core.ShardKey{}, 1) // want `shard pin "s" acquired here may not be released on every path`
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	s.Unpin()
	return nil
}

// deferredUnpin is the idiomatic bracket: clean.
func deferredUnpin(o *core.Operand) {
	s, _ := o.Shard(core.ShardKey{}, 1)
	defer s.Unpin()
	use(s)
}

// branchReleased unpins on both paths: clean.
func branchReleased(o *core.Operand, fail bool) error {
	s, _ := o.Shard(core.ShardKey{}, 1)
	if fail {
		s.Unpin()
		return errors.New("no")
	}
	s.Unpin()
	return nil
}

// pinnedShard hands its caller a still-pinned shard: the summary transfers
// the obligation, so this function itself is clean.
func pinnedShard(o *core.Operand) *core.Shard {
	s, _ := o.Shard(core.ShardKey{}, 1)
	return s
}

// summaryLeak receives the obligation from pinnedShard's summary and drops
// it on the early return.
func summaryLeak(o *core.Operand, fail bool) {
	s := pinnedShard(o) // want `shard pin "s" acquired here may not be released on every path`
	if fail {
		return
	}
	s.Unpin()
}

// summaryBalanced defers the release of the summarized pin: clean.
func summaryBalanced(o *core.Operand) {
	s := pinnedShard(o)
	defer s.Unpin()
	use(s)
}

var fl mempool.Freelist[int, []float64]

// freelistLeak takes the value on the ok branch but loses it on the error
// sub-path.
func freelistLeak(k int, fail bool) {
	v, ok := fl.Get(k) // want `freelist value "v" acquired here may not be released on every path`
	if !ok {
		return
	}
	if fail {
		return
	}
	fl.Put(k, v)
}

// freelistBalanced puts the value back on every path it exists: clean.
func freelistBalanced(k int, fail bool) {
	v, ok := fl.Get(k)
	if !ok {
		return
	}
	if fail {
		fl.Put(k, v)
		return
	}
	fl.Put(k, v)
}

var sp mempool.SlicePool[float64]

// sliceLeak drops the pooled slice on the early return.
func sliceLeak(fail bool) {
	buf := sp.Get(64) // want `pooled slice "buf" acquired here may not be released on every path`
	if fail {
		return
	}
	sp.Put(buf)
}

// sliceDeferred parks the slice via defer: clean.
func sliceDeferred() {
	buf := sp.Get(64)
	defer sp.Put(buf)
	_ = append(buf, 1)
}
