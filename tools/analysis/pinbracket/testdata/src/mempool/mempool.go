// Stub of internal/mempool: just enough surface for pinbracket's protocol
// table (package name, receiver type names, method signatures). Bodies are
// irrelevant — the analyzer exempts the mempool package itself.
package mempool

// Freelist parks reusable values per key.
type Freelist[K comparable, V any] struct {
	items map[K][]V
}

// Get pops a parked value, reporting whether one was available.
func (f *Freelist[K, V]) Get(k K) (V, bool) {
	var zero V
	return zero, false
}

// Put parks v for future Get(k) calls.
func (f *Freelist[K, V]) Put(k K, v V) {}

// SlicePool recycles scratch slices.
type SlicePool[T any] struct {
	parked [][]T
}

// Get returns an empty slice with capacity at least capHint.
func (s *SlicePool[T]) Get(capHint int) []T {
	return make([]T, 0, capHint)
}

// Put parks b for reuse.
func (s *SlicePool[T]) Put(b []T) {}
