// Stub of internal/scheduler's Guard plus in-package bracket tests —
// acquire/release are unexported, so their call sites can only live here,
// exactly as in the real package.
package scheduler

// Guard brackets per-worker resource access.
type Guard struct {
	Acquire func(w int)
	Release func(w int)
}

func (g *Guard) acquire(w int) {
	if g.Acquire != nil {
		g.Acquire(w)
	}
}

func (g *Guard) release(w int) {
	if g.Release != nil {
		g.Release(w)
	}
}

// leakOnError drops the guard on the error path — the bracket must be
// released before every return.
func leakOnError(g *Guard, fail bool) error {
	g.acquire(0) // want `guard "g" acquired here may not be released on every path`
	if fail {
		return errDropped
	}
	g.release(0)
	return nil
}

// deferredRelease is the idiomatic bracket: clean.
func deferredRelease(g *Guard) {
	g.acquire(0)
	defer g.release(0)
}

// branchBalanced releases on both paths: clean.
func branchBalanced(g *Guard, fail bool) error {
	g.acquire(0)
	if fail {
		g.release(0)
		return errDropped
	}
	g.release(0)
	return nil
}

type guardErr string

func (e guardErr) Error() string { return string(e) }

var errDropped error = guardErr("dropped")
