// Package pinbracket checks that lifecycle brackets — shard pins, scheduler
// guard acquire/release, and mempool get/put pairs — are balanced on every
// control-flow path.
//
// The shard lifecycle's safety argument (internal/core/lifecycle.go) rests
// on refcounts: eviction cannot reclaim tables while any pin is held, and a
// doomed shard is reclaimed at its last Unpin. A leaked pin therefore pins
// memory forever; a double release trips the refcount underflow panic at
// the worst possible moment. The dangerous leaks are exactly the ones a
// happy-path test never sees: early error returns, ctx.Done() branches,
// panics past a missing defer. This pass walks each function's control-flow
// graph with a may-unreleased counter per resource and reports any resource
// whose acquisitions can exceed its releases (immediate plus deferred) on
// some path to return.
//
// The protocol table is name-matched against the packages that own it:
//
//	acquire                              release
//	(core.Operand).Shard → result 0      (core.Shard).Unpin
//	(core.Shard).tryPin  → receiver*     (scheduler.Guard).release
//	(core.Shard).mustPin → receiver      (mempool.Freelist).Put → arg 1
//	(scheduler.Guard).acquire → receiver (mempool.SlicePool).Put → arg 0
//	(mempool.Freelist).Get → result 0*
//	(mempool.SlicePool).Get → result 0
//
// (* = conditional: the acquisition happens only on the true branch of the
// returned ok bool, tracked through branch-condition refinement.)
//
// Functions that return a still-pinned resource on purpose (buildShards
// hands both pinned shards to its caller) are summarized: the pin
// obligation transfers to the caller's binding of the result. Conversely, a
// resource that is returned, stored into longer-lived structure, or handed
// to a goroutine stops being this function's obligation — poolescape(x)
// police those hand-offs; pinbracket polices the paths in between.
//
// scheduler.Guard composite literals are checked as a pair: the multiset of
// resources pinned in the Acquire literal must equal the multiset unpinned
// in the Release literal, and the two literals are exempt from the
// per-function check (each is one half of a bracket by design).
//
// Suppression: //fastcc:allow pinbracket at the acquire site, or the
// //fastcc:owned line marker when the unbalanced path is an audited
// ownership transfer the analyzer cannot see (e.g. aliased results on a
// self-contraction).
package pinbracket

import (
	"go/ast"
	"go/token"
	"go/types"

	"fastcc/tools/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name:       "pinbracket",
	Doc:        "flags pin/guard/pool brackets (tryPin-Unpin, Guard acquire-release, Get-Put) unbalanced on some path",
	RunProgram: run,
}

// protoSpec describes one protocol method. Matching is by package NAME,
// receiver type name and method name so analysistest fixtures modeling the
// protocol in stub packages exercise the same code paths as the repo.
type protoSpec struct {
	pkg, typ, method string
	// For acquires: where the resource lands. result >= 0 binds that result;
	// result < 0 binds the receiver.
	result int
	// condResult >= 0 gates the acquisition on the truth of that bool result
	// (tryPin's return, Freelist.Get's ok). < 0 means unconditional.
	condResult int
	// For releases: target < 0 releases the receiver; >= 0 releases that
	// argument.
	target int
	// kind names the bracket in diagnostics.
	kind string
}

var acquireSpecs = []protoSpec{
	{pkg: "core", typ: "Operand", method: "Shard", result: 0, condResult: -1, kind: "shard pin"},
	{pkg: "core", typ: "Shard", method: "tryPin", result: -1, condResult: 0, kind: "shard pin"},
	{pkg: "core", typ: "Shard", method: "mustPin", result: -1, condResult: -1, kind: "shard pin"},
	{pkg: "scheduler", typ: "Guard", method: "acquire", result: -1, condResult: -1, kind: "guard"},
	{pkg: "mempool", typ: "Freelist", method: "Get", result: 0, condResult: 1, kind: "freelist value"},
	{pkg: "mempool", typ: "SlicePool", method: "Get", result: 0, condResult: -1, kind: "pooled slice"},
}

var releaseSpecs = []protoSpec{
	{pkg: "core", typ: "Shard", method: "Unpin", target: -1, kind: "shard pin"},
	{pkg: "scheduler", typ: "Guard", method: "release", target: -1, kind: "guard"},
	{pkg: "mempool", typ: "Freelist", method: "Put", target: 1, kind: "freelist value"},
	{pkg: "mempool", typ: "SlicePool", method: "Put", target: 0, kind: "pooled slice"},
}

func run(pass *framework.ProgramPass) error {
	graph := pass.Program.CallGraph()
	c := &checker{
		pass:      pass,
		graph:     graph,
		summaries: map[*framework.FuncNode]map[int]string{},
		sites:     map[*ast.CallExpr][]*framework.FuncNode{},
		exemptLit: map[*ast.FuncLit]bool{},
	}
	for _, node := range graph.Nodes {
		for _, site := range node.Calls {
			if len(site.Callees) > 0 {
				c.sites[site.Call] = site.Callees
			}
		}
	}

	var allFiles []*ast.File
	for _, pkg := range pass.Program.Pkgs {
		allFiles = append(allFiles, pkg.Files...)
	}
	c.owned = framework.CollectLineMarkers(pass.Program.Fset, allFiles, "owned")

	c.checkGuardLiterals()
	c.buildSummaries()

	for _, node := range graph.Nodes {
		if node.Body == nil || node.Pkg.Pkg.Name() == "mempool" {
			// The pool implementation vends and parks its own storage; its
			// internals are the protocol, not a client of it.
			continue
		}
		if node.Lit != nil && c.exemptLit[node.Lit] {
			continue // one half of a Guard bracket
		}
		c.checkNode(node)
	}
	return nil
}

type checker struct {
	pass  *framework.ProgramPass
	graph *framework.CallGraph
	// summaries maps function nodes (declarations and literals alike) to the
	// result indices they return still-acquired, with the bracket kind.
	summaries map[*framework.FuncNode]map[int]string
	// sites maps every call expression to its may-call set from the
	// devirtualized graph — the summary lookups below go through it, so a
	// pin-returning function reached through a func value or interface still
	// imposes the obligation on the caller. CallExpr nodes are unique across
	// the program, so one global map serves every function.
	sites map[*ast.CallExpr][]*framework.FuncNode
	// exemptLit marks Acquire/Release literals of checked Guard values.
	exemptLit map[*ast.FuncLit]bool
	owned     map[string]map[int]bool
}

// calleeSummaries merges the pin summaries of every function the call may
// reach. Merging over-approximates for multi-callee sites: if ANY possible
// callee returns a result still pinned, the caller owes the release.
func (c *checker) calleeSummaries(call *ast.CallExpr) map[int]string {
	callees := c.sites[call]
	if len(callees) == 0 {
		return nil
	}
	if len(callees) == 1 {
		return c.summaries[callees[0]]
	}
	var merged map[int]string
	for _, callee := range callees {
		for idx, kind := range c.summaries[callee] {
			if merged == nil {
				merged = map[int]string{}
			}
			if _, ok := merged[idx]; !ok {
				merged[idx] = kind
			}
		}
	}
	return merged
}

// matchCall resolves a method call against a spec table, returning the spec
// and the selector (for receiver resolution).
func matchCall(info *types.Info, call *ast.CallExpr, specs []protoSpec) (*protoSpec, *ast.SelectorExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	return matchSelector(info, sel, specs), sel
}

// matchSelector resolves a method selection — called or taken as a method
// value — against a spec table.
func matchSelector(info *types.Info, sel *ast.SelectorExpr, specs []protoSpec) *protoSpec {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	for i := range specs {
		s := &specs[i]
		if s.method == sel.Sel.Name && s.typ == obj.Name() && s.pkg == obj.Pkg().Name() {
			return s
		}
	}
	return nil
}

// exprVar resolves a simple expression to a local variable object; anything
// else (fields, indexes, calls) returns nil and the resource is untracked.
func exprVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Defs[e]
		if obj == nil {
			obj = info.Uses[e]
		}
		v, _ := obj.(*types.Var)
		if v != nil && !v.IsField() {
			return v
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprVar(info, e.X)
		}
	}
	return nil
}

// bracketState is the dataflow state over one function.
type bracketState struct {
	// count is the may-unreleased acquisitions per resource, saturated at 2
	// so loops terminate; join is max (a leak on any path is a leak).
	count map[*types.Var]int
	// deferred is the must-registered deferred releases per resource; join
	// is min (a defer only helps if every path registers it).
	deferred map[*types.Var]int
	// cond maps an ok-bool variable to the resource whose acquisition it
	// gates, between the binding and the branch that tests it.
	cond map[*types.Var]*types.Var
}

func newState() bracketState {
	return bracketState{count: map[*types.Var]int{}, deferred: map[*types.Var]int{}, cond: map[*types.Var]*types.Var{}}
}

func copyState(s bracketState) bracketState {
	out := bracketState{
		count:    make(map[*types.Var]int, len(s.count)),
		deferred: make(map[*types.Var]int, len(s.deferred)),
		cond:     make(map[*types.Var]*types.Var, len(s.cond)),
	}
	for k, v := range s.count {
		out.count[k] = v
	}
	for k, v := range s.deferred {
		out.deferred[k] = v
	}
	for k, v := range s.cond {
		out.cond[k] = v
	}
	return out
}

const countCap = 2

func (c *checker) checkNode(node *framework.FuncNode) {
	info := node.Pkg.TypesInfo
	// Fast path: skip functions with no protocol calls and no calls to
	// pin-returning functions.
	if !c.touchesProtocol(node) {
		return
	}

	// acquirePos records where each resource was first acquired, for
	// reporting; kinds names its bracket.
	acquirePos := map[*types.Var]token.Pos{}
	kinds := map[*types.Var]string{}
	note := func(v *types.Var, pos token.Pos, kind string) {
		if v == nil {
			return
		}
		if _, ok := acquirePos[v]; !ok {
			acquirePos[v] = pos
			kinds[v] = kind
		}
	}

	// Only resources held in variables local to this node are this node's
	// obligation: an acquisition binding a captured outer variable (a
	// goroutine filling its launcher's named result) belongs to the
	// function that owns the variable.
	lo, hi := node.Body.Pos(), node.Body.End()
	if node.Decl != nil {
		lo = node.Decl.Pos()
	} else if node.Lit != nil {
		lo = node.Lit.Pos()
	}
	local := func(v *types.Var) bool { return v != nil && lo <= v.Pos() && v.Pos() < hi }

	// Method values bound from release methods (rel := g.release): a later
	// `defer rel()` is a deferred release of the bound receiver, not an
	// unrelated indirect call. The scan is flow-insensitive — rebinding a
	// release method value mid-function would over-register, a shape the
	// codebase does not use and the fixtures document.
	deferTargets := collectReleaseBinds(info, node.Body)

	cfg := framework.BuildCFG(node.Body)
	flow := &framework.Flow[bracketState]{
		CFG:  cfg,
		Init: newState(),
		Transfer: func(n *framework.CFGNode, in bracketState) bracketState {
			return c.transfer(info, n.Stmt, in, local, note, deferTargets)
		},
		Refine: func(e framework.CFGEdge, out bracketState) bracketState {
			return c.refine(info, e.Cond, e.Branch, out)
		},
		Join:  joinState,
		Equal: equalState,
		Copy:  copyState,
	}
	res := flow.Solve()

	// Evaluate leaks at each function-leaving node separately (returns,
	// terminal panics, the fall-off-the-end node). Checking the joined exit
	// state instead would pair one path's acquisition with another path's
	// missing defer and report paths that do not exist.
	reported := map[*types.Var]bool{}
	for _, pred := range cfg.Exit.Preds {
		if !res.Reached[pred.Index] {
			continue
		}
		final := res.Out[pred.Index]
		for v, n := range final.count {
			if n-final.deferred[v] <= 0 || reported[v] {
				continue
			}
			pos, ok := acquirePos[v]
			if !ok {
				continue
			}
			reported[v] = true
			if framework.MarkedAt(c.pass.Program.Fset, c.owned, pos) {
				continue
			}
			c.pass.Reportf(pos,
				"%s %q acquired here may not be released on every path to return in %s; release it on each branch or defer the release (or annotate //fastcc:owned / //fastcc:allow pinbracket with the invariant)",
				kinds[v], v.Name(), node.Name())
		}
	}
}

// touchesProtocol reports whether the node contains any protocol call or a
// call to a pin-returning function.
func (c *checker) touchesProtocol(node *framework.FuncNode) bool {
	info := node.Pkg.TypesInfo
	found := false
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if s, _ := matchCall(info, call, acquireSpecs); s != nil {
			found = true
		} else if s, _ := matchCall(info, call, releaseSpecs); s != nil {
			found = true
		} else if len(c.calleeSummaries(call)) > 0 {
			found = true
		}
		return !found
	})
	return found
}

// releaseBind records a method value bound from a release method: the spec
// it matched and the receiver it will release when called.
type releaseBind struct {
	spec *protoSpec
	recv *types.Var
}

// collectReleaseBinds finds rel := recv.Release-shaped method-value
// bindings of protocol release methods in the body.
func collectReleaseBinds(info *types.Info, body *ast.BlockStmt) map[*types.Var]releaseBind {
	out := map[*types.Var]releaseBind{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			sel, ok := ast.Unparen(rhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if s := info.Selections[sel]; s == nil || s.Kind() != types.MethodVal {
				continue
			}
			spec := matchSelector(info, sel, releaseSpecs)
			if spec == nil {
				continue
			}
			if v := exprVar(info, as.Lhs[i]); v != nil {
				out[v] = releaseBind{spec: spec, recv: exprVar(info, sel.X)}
			}
		}
		return true
	})
	return out
}

// transfer applies one shallow statement to the state.
func (c *checker) transfer(info *types.Info, stmt ast.Stmt, s bracketState, local func(*types.Var) bool, note func(*types.Var, token.Pos, string), deferTargets map[*types.Var]releaseBind) bracketState {
	switch stmt := stmt.(type) {
	case nil:
		return s

	case *ast.AssignStmt:
		// Acquisition binding: x := recv.Get(...) / v, ok := fl.Get(k).
		if len(stmt.Rhs) == 1 {
			if call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr); ok {
				if spec, sel := matchCall(info, call, acquireSpecs); spec != nil {
					c.applyAcquireBind(info, spec, sel, call, stmt.Lhs, s, local, note)
					return s
				}
				if pinned := c.calleeSummaries(call); len(pinned) > 0 {
					for idx, kind := range pinned {
						if idx < len(stmt.Lhs) {
							if v := exprVar(info, stmt.Lhs[idx]); local(v) {
								bump(s.count, v)
								note(v, call.Pos(), kind)
							}
						}
					}
					return s
				}
			}
		}
		// Moves and escapes.
		for i, lhs := range stmt.Lhs {
			if i >= len(stmt.Rhs) {
				break
			}
			src := exprVar(info, stmt.Rhs[i])
			if src == nil || s.count[src] == 0 {
				continue
			}
			if dst := exprVar(info, lhs); local(dst) {
				// Plain move: the obligation follows the value.
				s.count[dst] += s.count[src]
				if s.count[dst] > countCap {
					s.count[dst] = countCap
				}
				delete(s.count, src)
				note(dst, lhs.Pos(), "moved resource")
			} else {
				// Stored into a field, index, captured outer variable, or
				// other non-local place: the obligation transfers out of this
				// function (poolescapex polices whether that store was
				// legitimate).
				delete(s.count, src)
			}
		}
		return s

	case *ast.ExprStmt:
		call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
		if !ok {
			return s
		}
		if spec, sel := matchCall(info, call, releaseSpecs); spec != nil {
			var v *types.Var
			if spec.target < 0 {
				v = exprVar(info, sel.X)
			} else if spec.target < len(call.Args) {
				v = exprVar(info, call.Args[spec.target])
			}
			if v != nil && s.count[v] > 0 {
				s.count[v]--
			}
			return s
		}
		if spec, sel := matchCall(info, call, acquireSpecs); spec != nil {
			// Receiver-bound unconditional acquire as a bare statement
			// (mustPin, guard.acquire). Conditional acquires as bare
			// statements discard the ok bool — the branch refinement owns
			// the count when they appear as conditions (record the site here
			// so a leak can name it); ignore otherwise.
			if spec.result < 0 {
				if v := exprVar(info, sel.X); local(v) {
					if spec.condResult < 0 {
						bump(s.count, v)
					}
					note(v, call.Pos(), spec.kind)
				}
			}
			return s
		}
		return s

	case *ast.DeferStmt:
		c.applyDefer(info, stmt.Call, s, deferTargets)
		return s

	case *ast.GoStmt:
		// Ownership moves to the goroutine: clear anything it receives or
		// captures (poolescape's goroutine rules police the hand-off).
		for _, arg := range stmt.Call.Args {
			if v := exprVar(info, arg); v != nil {
				delete(s.count, v)
			}
		}
		if lit, ok := stmt.Call.Fun.(*ast.FuncLit); ok {
			for v := range s.count {
				if capturesVar(info, lit, v) {
					delete(s.count, v)
				}
			}
		}
		return s

	case *ast.ReturnStmt:
		// Returning a resource transfers the obligation to the caller (the
		// pin-returning summary re-imposes it there).
		for _, res := range stmt.Results {
			if v := exprVar(info, res); v != nil {
				delete(s.count, v)
			}
		}
		return s
	}
	return s
}

// applyAcquireBind handles an assignment whose single RHS is an acquire call.
func (c *checker) applyAcquireBind(info *types.Info, spec *protoSpec, sel *ast.SelectorExpr, call *ast.CallExpr, lhs []ast.Expr, s bracketState, local func(*types.Var) bool, note func(*types.Var, token.Pos, string)) {
	var resource *types.Var
	if spec.result < 0 {
		resource = exprVar(info, sel.X)
	} else if spec.result < len(lhs) {
		resource = exprVar(info, lhs[spec.result])
	}
	if !local(resource) {
		// Bound anywhere but a local variable (a field, an index, a captured
		// outer variable): the obligation lands elsewhere immediately — the
		// escape analyzers police that; nothing to track here.
		return
	}
	if spec.condResult < 0 {
		bump(s.count, resource)
		note(resource, call.Pos(), spec.kind)
		return
	}
	if spec.condResult < len(lhs) {
		if okVar := exprVar(info, lhs[spec.condResult]); okVar != nil {
			s.cond[okVar] = resource
			note(resource, call.Pos(), spec.kind)
		}
	}
}

// applyDefer registers deferred releases: a direct protocol release, a call
// through a method value bound from one (rel := g.release; defer rel()), or
// a function literal containing them. A deferred non-protocol call that
// receives a tracked resource is treated as its release — the idiom is a
// cleanup helper, and reporting it would punish extraction.
func (c *checker) applyDefer(info *types.Info, call *ast.CallExpr, s bracketState, deferTargets map[*types.Var]releaseBind) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if fv, _ := info.Uses[id].(*types.Var); fv != nil {
			if bind, ok := deferTargets[fv]; ok {
				var v *types.Var
				if bind.spec.target < 0 {
					v = bind.recv
				} else if bind.spec.target < len(call.Args) {
					v = exprVar(info, call.Args[bind.spec.target])
				}
				if v != nil {
					s.deferred[v]++
				}
				return
			}
		}
	}
	if spec, sel := matchCall(info, call, releaseSpecs); spec != nil {
		var v *types.Var
		if spec.target < 0 {
			v = exprVar(info, sel.X)
		} else if spec.target < len(call.Args) {
			v = exprVar(info, call.Args[spec.target])
		}
		if v != nil {
			s.deferred[v]++
		}
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if spec, sel := matchCall(info, inner, releaseSpecs); spec != nil {
				var v *types.Var
				if spec.target < 0 {
					v = exprVar(info, sel.X)
				} else if spec.target < len(inner.Args) {
					v = exprVar(info, inner.Args[spec.target])
				}
				if v != nil {
					s.deferred[v]++
				}
			}
			return true
		})
		return
	}
	for _, arg := range call.Args {
		if v := exprVar(info, arg); v != nil && s.count[v] > 0 {
			s.deferred[v]++
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if v := exprVar(info, sel.X); v != nil && s.count[v] > 0 {
			s.deferred[v]++
		}
	}
}

// refine adjusts state along a branch edge for conditional acquisitions.
func (c *checker) refine(info *types.Info, cond ast.Expr, branch bool, s bracketState) bracketState {
	switch e := ast.Unparen(cond).(type) {
	case *ast.CallExpr:
		// if s.tryPin() { ... }: the pin exists only on the true edge.
		if spec, sel := matchCall(info, e, acquireSpecs); spec != nil && spec.condResult >= 0 && spec.result < 0 {
			if branch {
				if v := exprVar(info, sel.X); v != nil {
					bump(s.count, v)
				}
			}
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			if res, pending := s.cond[v]; pending {
				if branch {
					bump(s.count, res)
				}
				delete(s.cond, v)
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return c.refine(info, e.X, !branch, s)
		}
	case *ast.BinaryExpr:
		// On the true edge of `a && b` both operands are true; other
		// shapes stay unrefined (conservative).
		if e.Op == token.LAND && branch {
			s = c.refine(info, e.X, true, s)
			s = c.refine(info, e.Y, true, s)
		}
	}
	return s
}

func bump(count map[*types.Var]int, v *types.Var) {
	if count[v] < countCap {
		count[v]++
	}
}

func joinState(acc, in bracketState) bracketState {
	for v, n := range in.count {
		if n > acc.count[v] {
			acc.count[v] = n
		}
	}
	// deferred: a defer only covers the exit if every joining path
	// registered it.
	for v, n := range acc.deferred {
		if in.deferred[v] < n {
			if in.deferred[v] == 0 {
				delete(acc.deferred, v)
			} else {
				acc.deferred[v] = in.deferred[v]
			}
		}
	}
	// cond binds survive a join only when both sides agree.
	for v, res := range acc.cond {
		if in.cond[v] != res {
			delete(acc.cond, v)
		}
	}
	return acc
}

func equalState(a, b bracketState) bool {
	if len(a.count) != len(b.count) || len(a.deferred) != len(b.deferred) || len(a.cond) != len(b.cond) {
		return false
	}
	for v, n := range a.count {
		if b.count[v] != n {
			return false
		}
	}
	for v, n := range a.deferred {
		if b.deferred[v] != n {
			return false
		}
	}
	for v, res := range a.cond {
		if b.cond[v] != res {
			return false
		}
	}
	return true
}

// buildSummaries computes, to a fixpoint, which functions return
// still-acquired resources in which result positions. A result is pinned
// when an acquire-bound variable reaches it: bound to a named result
// (anywhere in the body, including inside closures — buildShards assigns a
// named result from a goroutine), or returned directly; or when the return
// forwards a call to another pin-returning function.
func (c *checker) buildSummaries() {
	for changed := true; changed; {
		changed = false
		for _, node := range c.graph.Nodes {
			// Literals summarize too: a closure returning a pinned shard
			// imposes the obligation on whoever calls it through a func value.
			if node.Body == nil || node.Pkg.Pkg.Name() == "mempool" {
				continue
			}
			pinned := c.summarizeNode(node)
			if len(pinned) > len(c.summaries[node]) {
				c.summaries[node] = pinned
				changed = true
			}
		}
	}
}

func (c *checker) summarizeNode(node *framework.FuncNode) map[int]string {
	info := node.Pkg.TypesInfo
	pinned := map[int]string{}

	// Named results by variable.
	namedResults := map[*types.Var]int{}
	if node.Type.Results != nil {
		idx := 0
		for _, field := range node.Type.Results.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					namedResults[v] = idx
				}
				idx++
			}
		}
	}

	// Variables bound from acquire calls anywhere in the body (closures
	// included: a goroutine assigning a named result still pins it for the
	// caller). Conditional acquires count too — if the ok bool is also
	// returned the caller refines on it, and over-approximating here only
	// asks the caller to release on the ok path, which is the contract.
	acquired := map[*types.Var]string{}
	ast.Inspect(node.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if spec, sel := matchCall(info, call, acquireSpecs); spec != nil {
			var v *types.Var
			if spec.result < 0 {
				v = exprVar(info, sel.X)
			} else if spec.result < len(as.Lhs) {
				v = exprVar(info, as.Lhs[spec.result])
			}
			if v != nil {
				acquired[v] = spec.kind
			}
		} else {
			for idx, kind := range c.calleeSummaries(call) {
				if idx < len(as.Lhs) {
					if v := exprVar(info, as.Lhs[idx]); v != nil {
						acquired[v] = kind
					}
				}
			}
		}
		return true
	})

	// A released-before-return variable still summarizes as pinned if it is
	// ALSO a named result; that over-approximation does not occur in this
	// codebase (helpers either hand pins out or bracket them, not both).
	for v, kind := range acquired {
		if idx, ok := namedResults[v]; ok {
			pinned[idx] = kind
		}
	}
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's return is not this function's return
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, res := range ret.Results {
			if v := exprVar(info, res); v != nil {
				if kind, ok := acquired[v]; ok {
					pinned[i] = kind
				}
				continue
			}
			if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && len(ret.Results) == 1 {
				// return f(...) forwarding a pin-returning callee (or a
				// direct protocol acquire).
				if spec, _ := matchCall(info, call, acquireSpecs); spec != nil && spec.result >= 0 && spec.condResult < 0 {
					pinned[spec.result] = spec.kind
				} else {
					for idx, kind := range c.calleeSummaries(call) {
						pinned[idx] = kind
					}
				}
			}
		}
		return true
	})
	return pinned
}

// checkGuardLiterals verifies that each scheduler.Guard composite literal
// acquires and releases the same resources, and exempts its two halves from
// the per-function bracket check.
func (c *checker) checkGuardLiterals() {
	for _, pkg := range c.pass.Program.Pkgs {
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				t := info.TypeOf(lit)
				if t == nil || !isGuardType(t) {
					return true
				}
				var acq, rel *ast.FuncLit
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					fl, ok := ast.Unparen(kv.Value).(*ast.FuncLit)
					if !ok {
						continue
					}
					switch key.Name {
					case "Acquire":
						acq = fl
					case "Release":
						rel = fl
					}
				}
				if acq == nil && rel == nil {
					return true
				}
				acquired := guardLitResources(info, acq, acquireSpecs)
				released := guardLitResources(info, rel, releaseSpecs)
				if !sameMultiset(acquired, released) {
					c.pass.Reportf(lit.Pos(),
						"Guard Acquire/Release literals are unbalanced: Acquire pins %s but Release unpins %s",
						describeMultiset(acquired), describeMultiset(released))
				}
				if acq != nil {
					c.exemptLit[acq] = true
				}
				if rel != nil {
					c.exemptLit[rel] = true
				}
				return true
			})
		}
	}
}

// guardLitResources collects the multiset of receiver resources of protocol
// calls in one Guard half.
func guardLitResources(info *types.Info, lit *ast.FuncLit, specs []protoSpec) map[*types.Var]int {
	out := map[*types.Var]int{}
	if lit == nil {
		return out
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if spec, sel := matchCall(info, call, specs); spec != nil {
			if v := exprVar(info, sel.X); v != nil {
				out[v]++
			}
		}
		return true
	})
	return out
}

func sameMultiset(a, b map[*types.Var]int) bool {
	if len(a) != len(b) {
		return false
	}
	for v, n := range a {
		if b[v] != n {
			return false
		}
	}
	return true
}

func describeMultiset(m map[*types.Var]int) string {
	if len(m) == 0 {
		return "nothing"
	}
	names := make([]string, 0, len(m))
	for v, n := range m {
		name := v.Name()
		if n > 1 {
			name += " (x" + itoa(n) + ")"
		}
		names = append(names, name)
	}
	// Sort for deterministic diagnostics.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := names[0]
	for _, n := range names[1:] {
		out += ", " + n
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// isGuardType reports whether t is a named type Guard declared in a package
// named "scheduler".
func isGuardType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Guard" && obj.Pkg() != nil && obj.Pkg().Name() == "scheduler"
}

// capturesVar reports whether the literal references v from outside itself.
func capturesVar(info *types.Info, lit *ast.FuncLit, v *types.Var) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}
