// Fixture for hotalloc: allocation sites in marked and unmarked functions.
package a

// plain is unmarked; it may allocate freely.
func plain(n int) []int {
	return make([]int, n)
}

// hot is a seeded-bad kernel.
//
//fastcc:hotpath
func hot(buf []int, bs []byte, v int) []int {
	tmp := make([]int, 8) // want `make in hotpath function hot allocates`
	_ = tmp
	buf = append(buf, v) // want `append in hotpath function hot`
	m := map[int]int{}   // want `composite literal in hotpath function hot`
	_ = m
	p := new(int) // want `new in hotpath function hot`
	_ = p
	f := func() int { return v } // want `closure in hotpath function hot captures "v"`
	_ = f
	s := string(bs) // want `slice-to-string conversion in hotpath function hot`
	_ = s
	return buf
}

// hotClean allocates nothing: indexing, arithmetic, and a capture-free
// function literal are all fine.
//
//fastcc:hotpath
func hotClean(buf []int) int {
	s := 0
	for _, v := range buf {
		s += v
	}
	g := func(x int) int { return x * 2 }
	return g(s)
}

// hotAmortized documents a deliberate amortized growth.
//
//fastcc:hotpath
func hotAmortized(buf []byte) []byte {
	return append(buf, 1) //fastcc:allow hotalloc -- amortized doubling, reused across tasks
}
