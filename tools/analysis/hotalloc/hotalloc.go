// Package hotalloc flags allocation sites inside functions annotated with a
// //fastcc:hotpath doc-comment marker.
//
// FaSTCC's tile kernels (hash-table upserts, accumulator drains, the
// multiply-accumulate loops of Algorithm 6) execute per nonzero or per
// update — millions to billions of times per contraction. A single heap
// allocation introduced there turns into GC pressure that dwarfs the
// arithmetic. Functions on that path carry the marker:
//
//	// Upsert adds v at (l, r).
//	//
//	//fastcc:hotpath
//	func (d *Dense) Upsert(l, r uint32, v float64) { ... }
//
// Inside marked functions the analyzer reports:
//
//   - make / new builtin calls;
//   - append calls (growth may allocate);
//   - slice and map composite literals;
//   - function literals that capture enclosing variables (closure + captured
//     variables are heap-allocated);
//   - string <-> []byte / []rune conversions (always copy).
//
// Deliberate amortized allocations (table doubling, arena chunk growth) stay
// allowed via //fastcc:allow hotalloc with a stated reason; the annotation
// then documents the amortization argument right at the allocation site.
package hotalloc

import (
	"go/ast"
	"go/types"

	"fastcc/tools/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc:  "flags heap allocations inside //fastcc:hotpath functions",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !framework.FuncHasMarker(fn, "hotpath") {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

func checkBody(pass *framework.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case framework.IsBuiltin(pass.TypesInfo, n, "make"):
				pass.Reportf(n.Pos(), "make in hotpath function %s allocates", fn.Name.Name)
			case framework.IsBuiltin(pass.TypesInfo, n, "new"):
				pass.Reportf(n.Pos(), "new in hotpath function %s allocates", fn.Name.Name)
			case framework.IsBuiltin(pass.TypesInfo, n, "append"):
				pass.Reportf(n.Pos(), "append in hotpath function %s may grow and allocate", fn.Name.Name)
			default:
				if name, ok := copyingConversion(pass.TypesInfo, n); ok {
					pass.Reportf(n.Pos(), "%s conversion in hotpath function %s copies and allocates", name, fn.Name.Name)
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "composite literal in hotpath function %s allocates", fn.Name.Name)
				}
			}
		case *ast.FuncLit:
			if captured := capturedVar(pass.TypesInfo, n); captured != "" {
				pass.Reportf(n.Pos(), "closure in hotpath function %s captures %q and allocates", fn.Name.Name, captured)
			}
			return false // do not double-report allocations inside the literal
		}
		return true
	})
}

// copyingConversion reports conversions between string and []byte/[]rune.
func copyingConversion(info *types.Info, call *ast.CallExpr) (string, bool) {
	if len(call.Args) != 1 {
		return "", false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return "", false
	}
	dst := tv.Type.Underlying()
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return "", false
	}
	srcU := src.Underlying()
	if isString(dst) && isByteOrRuneSlice(srcU) {
		return "slice-to-string", true
	}
	if isByteOrRuneSlice(dst) && isString(srcU) {
		return "string-to-slice", true
	}
	return "", false
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// capturedVar returns the name of one variable the function literal captures
// from an enclosing function scope, or "" when it captures nothing (a
// capture-free literal compiles to a static function and does not allocate
// per call).
func capturedVar(info *types.Info, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captured; variables declared
		// inside the literal itself (including its parameters) are not
		// captures either.
		if v.Parent() == nil || v.Parent().Parent() == types.Universe {
			return true
		}
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true
		}
		captured = v.Name()
		return false
	})
	return captured
}
