package hotalloc_test

import (
	"testing"

	"fastcc/tools/analysis/analysistest"
	"fastcc/tools/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer, "a")
}
