// Fixture for atomicmix: a tile-pool ticket counter in the style of
// internal/scheduler, with mixed atomic/plain access seeded in.
package a

import "sync/atomic"

type pool struct {
	next  int64
	total int64
}

func (p *pool) claim() int64 {
	return atomic.AddInt64(&p.next, 1) - 1
}

func (p *pool) reset() {
	p.next = 0 // want `next.*accessed atomically.*used plainly`
}

func (p *pool) snapshot() int64 {
	return p.next // want `next.*accessed atomically.*used plainly`
}

func (p *pool) loadOK() int64 {
	return atomic.LoadInt64(&p.next)
}

func newPool() *pool {
	return &pool{next: 0} // construction: not an access
}

var counter int64

func bump() {
	atomic.AddInt64(&counter, 1)
}

func readPlain() int64 {
	return counter // want `counter.*accessed atomically.*used plainly`
}

func (p *pool) totalPlain() int64 {
	p.total++ // never touched atomically: fine
	return p.total
}

func readAllowed() int64 {
	return counter //fastcc:allow atomicmix -- single-threaded teardown
}
