// Package atomicmix flags variables that are accessed both through
// sync/atomic operations and through plain loads or stores.
//
// The FaSTCC scheduler claims tile tasks with an atomic ticket counter
// (internal/scheduler.Pool). The classic regression there is a "mostly
// atomic" counter: atomic.AddInt64(&s.next, 1) in the workers plus a bare
// `s.next = 0` reset or `if s.next > n` fast-path read somewhere else. The
// race detector only catches the mix when both sides fire in one run; this
// analyzer catches it structurally.
//
// A variable (struct field or package-level var) is "atomic" once its
// address is passed to any sync/atomic function. Every other syntactic use
// is then reported, with two deliberate exceptions:
//
//   - composite-literal initialization (construction happens-before sharing);
//   - taking the address for a non-atomic call is still reported, because a
//     leaked address defeats the discipline anyway.
//
// The robust fix is usually to switch the field to one of the atomic.Int64
// family of types, which makes plain access impossible to express.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"fastcc/tools/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "atomicmix",
	Doc:  "flags variables accessed both via sync/atomic and via plain loads/stores",
	Run:  run,
}

func run(pass *framework.Pass) error {
	// Pass 1: collect variables whose address reaches a sync/atomic call,
	// and remember the exact &x argument nodes so pass 2 can skip them.
	atomicVars := map[*types.Var]token.Pos{}
	atomicOperands := map[ast.Expr]bool{}
	pass.Preorder(func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := framework.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			if v := refVar(pass.TypesInfo, un.X); v != nil {
				if _, seen := atomicVars[v]; !seen {
					atomicVars[v] = call.Pos()
				}
				atomicOperands[un.X] = true
				atomicOperands[ast.Unparen(un.X)] = true
			}
		}
	})
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: report plain uses of those variables.
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			expr, ok := n.(ast.Expr)
			if !ok || atomicOperands[expr] {
				return true
			}
			// Only consider the outermost reference expression: for s.next
			// the SelectorExpr is the use; its embedded idents are not
			// separate uses.
			if len(stack) >= 2 {
				if parent, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && parent.Sel == n {
					return true
				}
			}
			v := refVar(pass.TypesInfo, expr)
			if v == nil {
				return true
			}
			firstAtomic, ok := atomicVars[v]
			if !ok || inCompositeLit(stack) {
				return true
			}
			pass.Reportf(expr.Pos(),
				"%s is accessed atomically (first at %s) but used plainly here; use sync/atomic for every access or switch to atomic.Int64-style types",
				v.Name(), pass.Fset.Position(firstAtomic))
			return true
		})
	}
	return nil
}

// refVar resolves an expression to the struct field or variable it denotes:
// s.next -> field next, counter -> var counter. Returns nil for anything
// else (calls, index expressions, declaration sites, ...). Declarations are
// excluded on purpose: `var count int64` and struct field declarations are
// construction, not access.
func refVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok || v.IsField() {
			// Bare field idents only occur in declarations and composite
			// literal keys, neither of which is an access.
			return nil
		}
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj().(*types.Var)
		}
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

func inCompositeLit(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.CompositeLit); ok {
			return true
		}
	}
	return false
}
