package atomicmix_test

import (
	"testing"

	"fastcc/tools/analysis/analysistest"
	"fastcc/tools/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicmix.Analyzer, "a")
}
