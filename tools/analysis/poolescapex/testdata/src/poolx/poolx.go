// Client fixture: pool-obtained memory crossing function and package
// boundaries. The two-hop case is the one the intraprocedural poolescape
// pass cannot see.
package poolx

import (
	"mempool"
	"sink"
)

var sp mempool.SlicePool

// twoHop leaks through a callee that itself only forwards: Forward → Stash →
// package variable, diagnosed at the call that gives the memory away.
func twoHop() {
	buf := sp.Get(64)
	sink.Forward(buf) // want `pool-obtained memory passed to Forward escapes via parameter b \(passed to Stash, which escapes it \(stored in a package variable\)\)`
	sp.Put(buf)
}

// oneHop leaks through a direct store in the callee.
func oneHop() {
	buf := sp.Get(64)
	sink.Stash(buf) // want `pool-obtained memory passed to Stash escapes via parameter b \(stored in a package variable\)`
	sp.Put(buf)
}

// returned leaks through the callee's return value.
func returned() []float64 {
	buf := sp.Get(64)
	out := sink.Keep(buf) // want `pool-obtained memory passed to Keep escapes via parameter b \(returned\)`
	sp.Put(buf)
	return out
}

// toGoroutine leaks into a goroutine launched by the callee.
func toGoroutine() {
	buf := sp.Get(64)
	sink.Spawn(buf) // want `pool-obtained memory passed to Spawn escapes via parameter b \(passed to a goroutine\)`
	sp.Put(buf)
}

// reader passes the buffer to a read-only callee: clean.
func reader() float64 {
	buf := sp.Get(64)
	t := sink.Sum(buf)
	sp.Put(buf)
	return t
}

// adopted hands the buffer to a callee whose parameter is //fastcc:owned:
// the transfer is the callee's documented contract, so no report.
func adopted() {
	buf := sp.Get(64)
	sink.Adopt(buf)
}

// recycled hands the buffer back through Put, whose parameter is owned by
// the pool: clean by the same contract.
func recycled() {
	buf := sp.Get(64)
	sp.Put(buf)
}

// callerOwned transfers ownership at an audited call site: the line marker
// suppresses the report for this caller only.
func callerOwned() {
	buf := sp.Get(64)
	sink.Stash(buf) //fastcc:owned -- audited: this caller cedes the buffer to the spill list
}

// aliased leaks through a local alias of the pooled buffer.
func aliased() {
	buf := sp.Get(64)
	view := buf[:0]
	sink.Stash(view) // want `pool-obtained memory passed to Stash escapes via parameter b \(stored in a package variable\)`
	sp.Put(buf)
}
