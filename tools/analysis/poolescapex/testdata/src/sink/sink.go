// Fixture package of helpers that escape (or don't escape) their slice
// parameters — the callee half of the cross-package escape tests.
package sink

var spill [][]float64

// Stash keeps the buffer alive past the caller's recycle point.
func Stash(b []float64) {
	spill = append(spill, b)
}

// Forward hands the buffer to Stash — the escape is one more hop away.
func Forward(b []float64) {
	Stash(b)
}

// Keep returns the buffer to its caller.
func Keep(b []float64) []float64 {
	return b
}

// Spawn hands the buffer to a goroutine.
func Spawn(b []float64) {
	go consume(b)
}

func consume(b []float64) {}

// Sum only reads the buffer: callers stay clean.
func Sum(b []float64) float64 {
	var t float64
	for _, v := range b {
		t += v
	}
	return t
}

// Adopt takes ownership of b by contract: the parameter-level annotation
// exempts it from the summary and documents the transfer where it happens.
//
//fastcc:owned b -- audited transfer: the sink owns b after this call
func Adopt(b []float64) {
	spill = append(spill, b)
}
