// Devirtualization fixtures: pool-obtained memory reaching an escaping
// callee only through an indirect call — a dispatch table read, an
// interface method bounded by CHA, a func value that launches a goroutine.
// Before the call-graph refinement every one of these sites was opaque and
// the escapes below were invisible; now the may-call set contributes every
// member, and an argument escaping through ANY possible callee is a
// finding. The last case keeps the other half of the contract honest: a
// func value from outside the points-to model stays opaque and silent.
package devirtx

import "mempool"

var sp mempool.SlicePool

// --- dispatch-table shape (internal/core's kernelTable) ---

type kernel func(b []float64)

var kept [][]float64

// kStash escapes its parameter; kSum only reads it. The table holds both,
// so a dispatch through it may escape.
func kStash(b []float64) { kept = append(kept, b) }

func kSum(b []float64) {
	var t float64
	for _, v := range b {
		t += v
	}
	_ = t
}

var kernelTable = [2]kernel{kStash, kSum}

func tableDispatch(which int) {
	buf := sp.Get(64)
	kernelTable[which](buf) // want `pool-obtained memory passed to kStash escapes via parameter b \(stored in a package variable\)`
	sp.Put(buf)
}

// --- interface shape: CHA bounds the call to two impls with differing
// pool behavior ---

type consumer interface{ Consume(b []float64) }

type keeper struct{ kept [][]float64 }

func (k *keeper) Consume(b []float64) { k.kept = append(k.kept, b) }

type summer struct{ total float64 }

func (s *summer) Consume(b []float64) {
	for _, v := range b {
		s.total += v
	}
}

var _ = []consumer{&keeper{}, &summer{}}

func viaInterface(c consumer) {
	buf := sp.Get(64)
	c.Consume(buf) // want `pool-obtained memory passed to Consume escapes via parameter b \(stored in field kept\)`
	sp.Put(buf)
}

// The clean implementation called directly stays clean: the finding above
// is about the may-call set, not the method name.
func onlySummer(s *summer) {
	buf := sp.Get(64)
	s.Consume(buf)
	sp.Put(buf)
}

// --- func value whose callee hands the buffer to a goroutine ---

func launchOver(b []float64) {
	go kSum(b)
}

func viaFuncValue() {
	buf := sp.Get(64)
	run := launchOver
	run(buf) // want `pool-obtained memory passed to launchOver escapes via parameter b \(passed to a goroutine\)`
	sp.Put(buf)
}

// --- a func value from outside the points-to model stays opaque ---

var hookCh = make(chan func([]float64), 1)

// viaChannel calls a function received over a channel: no constraint in the
// points-to system models the receive, so the site stays opaque and out of
// poolescapex's scope by design — the -stats opaque count is where this
// soundness gap is tracked, not a speculative finding here.
func viaChannel() {
	buf := sp.Get(64)
	fn := <-hookCh
	fn(buf)
	sp.Put(buf)
}
