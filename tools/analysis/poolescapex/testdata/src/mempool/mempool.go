// Stub of internal/mempool for the interprocedural escape tests: just the
// producing/consuming surface poolescapex's tracking keys on.
package mempool

// SlicePool recycles scratch slices.
type SlicePool struct {
	parked [][]float64
}

// Get returns an empty slice with capacity at least capHint.
func (s *SlicePool) Get(capHint int) []float64 {
	return make([]float64, 0, capHint)
}

// Put parks b for reuse.
//
//fastcc:owned b -- the recycle point: the pool owns b after this call
func (s *SlicePool) Put(b []float64) {
	s.parked = append(s.parked, b)
}
