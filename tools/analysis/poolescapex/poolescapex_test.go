package poolescapex

import (
	"testing"

	"fastcc/tools/analysis/analysistest"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "mempool", "sink", "poolx", "devirtx")
}
