// Package poolescapex extends poolescape across function boundaries: it
// flags pool-obtained memory handed to a callee that keeps it — stores it
// into longer-lived structure, returns it, or launches a goroutine over it —
// past the caller's recycle point.
//
// poolescape (intraprocedural) already reports direct escapes in the
// function that obtained the memory. What it cannot see is a helper that
// does the escaping on the caller's behalf:
//
//	func stash(c []pair) { global.spill = c }   // the escape is here
//	...
//	buf := pool.Get(n)
//	stash(buf)                                  // but the bug is here
//	pool.Put(buf)
//
// This analyzer computes, for every function with source in the program, a
// parameter escape summary — which parameters the function stores into
// fields, globals or index targets, returns, hands to goroutines, or passes
// on to further callees whose own parameters escape (summaries reach a
// fixpoint over the call graph, so chains of any depth resolve). It then
// reports every call site where a pool-obtained value (per poolescape's
// tracking) flows into an escaping parameter.
//
// Deliberate ownership transfers are annotated on the callee with a
// parameter-level directive in the doc comment:
//
//	// Put returns b to the pool.
//	//fastcc:owned b -- recycle point; the pool owns b after this call
//	func (s *SlicePool[T]) Put(b []T) { ... }
//
// which both exempts that parameter from the summary (callers SHOULD hand
// the memory over — that is the recycle point or an audited transfer) and
// documents the contract where it is implemented. Call-site suppression via
// the //fastcc:owned line marker (shared with poolescape) is also honored
// for transfers that are one caller's business rather than the callee's
// contract.
//
// Known approximations, chosen to keep the pass quiet rather than complete:
// calls that do not resolve to source (function values, interfaces,
// export-only packages) are not reported; appending with an ellipsis
// (append(dst, src...)) is treated as an element copy; and a parameter
// captured by a non-goroutine closure only escapes if the closure body
// itself escapes it.
package poolescapex

import (
	"go/ast"
	"go/token"
	"go/types"

	"fastcc/tools/analysis/framework"
	"fastcc/tools/analysis/poolescape"
)

var Analyzer = &framework.Analyzer{
	Name:       "poolescapex",
	Doc:        "flags pool-obtained memory passed to callees that store, return, or capture it (interprocedural)",
	RunProgram: run,
}

// escapeInfo records, per parameter index, how the parameter escapes.
// Variadic parameters use the index of the final (slice) parameter.
type escapeInfo map[int]string

type summarizer struct {
	graph *framework.CallGraph
	// summaries maps each node to its parameter escape info; grown
	// monotonically to a fixpoint.
	summaries map[*framework.FuncNode]escapeInfo
	// params caches each node's parameter objects in declaration order.
	params map[*framework.FuncNode][]*types.Var
	// owned marks parameters exempted by //fastcc:owned <name> directives.
	owned map[*framework.FuncNode]map[int]bool
}

func run(pass *framework.ProgramPass) error {
	graph := pass.Program.CallGraph()
	s := &summarizer{
		graph:     graph,
		summaries: map[*framework.FuncNode]escapeInfo{},
		params:    map[*framework.FuncNode][]*types.Var{},
		owned:     map[*framework.FuncNode]map[int]bool{},
	}
	for _, node := range graph.Nodes {
		s.params[node] = paramVars(node)
		s.owned[node] = ownedParams(node, s.params[node])
		s.summaries[node] = escapeInfo{}
	}

	// Fixpoint: parameter escapes only accrue (a param starts non-escaping
	// and flips once), so iterate until a full sweep adds nothing.
	for changed := true; changed; {
		changed = false
		for _, node := range graph.Nodes {
			if node.Body == nil {
				continue
			}
			if s.summarize(node) {
				changed = true
			}
		}
	}

	// Reporting sweep: every call site whose argument is pool-obtained and
	// lands in an escaping, non-owned parameter.
	var allFiles []*ast.File
	for _, pkg := range pass.Program.Pkgs {
		allFiles = append(allFiles, pkg.Files...)
	}
	ownedLines := framework.CollectLineMarkers(pass.Program.Fset, allFiles, "owned")

	for _, node := range graph.Nodes {
		if node.Body == nil || node.Pkg.Pkg.Name() == "mempool" {
			// The pool implementation is the ownership authority; its own
			// internal hand-offs are the recycling machinery itself.
			continue
		}
		tracked := trackedWithIndexStores(node.Pkg.TypesInfo, node.Body)
		if len(tracked) == 0 {
			continue
		}
		info := node.Pkg.TypesInfo
		for _, site := range node.Calls {
			// Devirtualized sites contribute every member of the may-call
			// set: an argument escaping through ANY possible callee is a
			// finding. Opaque sites stay out of scope by design.
			for _, callee := range site.Callees {
				esc := s.summaries[callee]
				if len(esc) == 0 {
					continue
				}
				for i, arg := range site.Call.Args {
					if !poolescape.IsPooled(info, tracked, arg) || !carriesRef(info.TypeOf(arg)) {
						continue
					}
					pi := paramIndexForArg(s.params[callee], i)
					how, escapes := esc[pi]
					if !escapes || s.owned[callee][pi] {
						continue
					}
					if framework.MarkedAt(pass.Program.Fset, ownedLines, arg.Pos()) {
						continue
					}
					pname := "?"
					if pi >= 0 && pi < len(s.params[callee]) && s.params[callee][pi] != nil {
						pname = s.params[callee][pi].Name()
					}
					pass.Reportf(arg.Pos(),
						"pool-obtained memory passed to %s escapes via parameter %s (%s); copy it out, annotate the call //fastcc:owned, or mark the parameter //fastcc:owned on %s if the transfer is the contract",
						callee.Name(), pname, how, callee.Name())
				}
			}
		}
	}
	return nil
}

// summarize recomputes node's escape summary, returning whether it grew.
func (s *summarizer) summarize(node *framework.FuncNode) bool {
	params := s.params[node]
	if len(params) == 0 {
		return false
	}
	info := node.Pkg.TypesInfo
	esc := s.summaries[node]

	// aliases[v] = param index whose memory v may reference.
	aliases := map[*types.Var]int{}
	for i, p := range params {
		if p != nil {
			aliases[p] = i
		}
	}
	// Two sweeps make simple alias chains order-insensitive, matching the
	// straight-line style of the codebase.
	for sweep := 0; sweep < 2; sweep++ {
		ast.Inspect(node.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return !isGoverned(node, n) // goroutine literals handled below
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					pi, ok := rootParam(info, aliases, n.Rhs[i])
					if !ok || !carriesRef(info.TypeOf(n.Rhs[i])) {
						continue
					}
					switch l := ast.Unparen(lhs).(type) {
					case *ast.Ident:
						if v := lhsVar(info, l); v != nil {
							if v.IsField() || isPackageLevel(v) {
								mark(esc, pi, "stored in a package variable")
							} else {
								aliases[v] = pi
							}
						}
					case *ast.SelectorExpr:
						if isField(info, l) {
							mark(esc, pi, "stored in field "+l.Sel.Name)
						} else if v := lhsVar(info, l.Sel); v != nil && isPackageLevel(v) {
							mark(esc, pi, "stored in a package variable")
						}
					case *ast.IndexExpr:
						// x[i] = p: the container now references p. If the
						// container is itself a local, it becomes an alias;
						// anything else (field, param slice) is an escape.
						if base, ok := ast.Unparen(l.X).(*ast.Ident); ok {
							if v := lhsVar(info, base); v != nil && !v.IsField() && !isPackageLevel(v) {
								aliases[v] = pi
								continue
							}
						}
						mark(esc, pi, "stored through an index expression")
					case *ast.StarExpr:
						mark(esc, pi, "stored through a pointer")
					}
				}
			case *ast.RangeStmt:
				if pi, ok := rootParam(info, aliases, n.X); ok {
					if id, ok := n.Value.(*ast.Ident); ok {
						if v := lhsVar(info, id); v != nil && carriesRef(v.Type()) {
							aliases[v] = pi
						}
					}
				}
			}
			return true
		})
	}

	// Escape shapes over the resolved alias set.
	ast.Inspect(node.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return !isGoverned(node, n)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if pi, ok := rootParam(info, aliases, res); ok && carriesRef(info.TypeOf(res)) {
					mark(esc, pi, "returned")
				}
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if pi, ok := rootParam(info, aliases, arg); ok && carriesRef(info.TypeOf(arg)) {
					mark(esc, pi, "passed to a goroutine")
				}
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				for v, pi := range aliases {
					if capturesVar(info, lit, v) {
						mark(esc, pi, "captured by a goroutine")
					}
				}
			}
		}
		return true
	})

	// Transitive escapes through callees (the two-hop case). Every member of
	// a devirtualized site's may-call set contributes: the summary must hold
	// for whichever callee the dynamic dispatch picks.
	for _, site := range node.Calls {
		for _, callee := range site.Callees {
			calleeEsc := s.summaries[callee]
			if len(calleeEsc) == 0 {
				continue
			}
			for i, arg := range site.Call.Args {
				pi, ok := rootParam(info, aliases, arg)
				if !ok || !carriesRef(info.TypeOf(arg)) {
					continue
				}
				cpi := paramIndexForArg(s.params[callee], i)
				if how, escapes := calleeEsc[cpi]; escapes && !s.owned[callee][cpi] {
					mark(esc, pi, "passed to "+callee.Name()+", which escapes it ("+how+")")
				}
			}
		}
	}
	if len(esc) > len(s.summaries[node]) {
		s.summaries[node] = esc
		return true
	}
	return false
}

// mark records the first escape reason for a parameter (later reasons do not
// overwrite — the first is usually the most direct).
func mark(esc escapeInfo, pi int, how string) {
	if pi < 0 {
		return
	}
	if _, ok := esc[pi]; !ok {
		esc[pi] = how
	}
}

// rootParam resolves an expression to the parameter whose memory it may
// reference: a parameter or alias identifier, possibly behind slicing,
// indexing, field selection, dereference, address-of, or an append whose
// non-ellipsis elements include one.
func rootParam(info *types.Info, aliases map[*types.Var]int, e ast.Expr) (int, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			pi, ok := aliases[v]
			return pi, ok
		}
	case *ast.SliceExpr:
		return rootParam(info, aliases, e.X)
	case *ast.IndexExpr:
		return rootParam(info, aliases, e.X)
	case *ast.SelectorExpr:
		return rootParam(info, aliases, e.X)
	case *ast.StarExpr:
		return rootParam(info, aliases, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return rootParam(info, aliases, e.X)
		}
	case *ast.CallExpr:
		if framework.IsBuiltin(info, e, "append") {
			// append(dst, elems...) with ellipsis copies elements; without,
			// the result references each appended element.
			if !e.Ellipsis.IsValid() {
				for _, arg := range e.Args[1:] {
					if pi, ok := rootParam(info, aliases, arg); ok {
						return pi, true
					}
				}
			}
			return rootParam(info, aliases, e.Args[0])
		}
	}
	return -1, false
}

// paramIndexForArg maps argument position to parameter index, folding
// variadic tails onto the final parameter. Non-variadic calls never have
// more arguments than parameters, so the clamp is only ever exercised for
// variadic callees (including f(xs...) ellipsis calls).
func paramIndexForArg(params []*types.Var, argIdx int) int {
	if len(params) == 0 {
		return -1
	}
	last := len(params) - 1
	if argIdx >= last {
		return last
	}
	return argIdx
}

// paramVars returns the parameter objects of a node in declaration order
// (receiver excluded — receiver escapes are the type's own business).
func paramVars(node *framework.FuncNode) []*types.Var {
	if node.Type == nil || node.Type.Params == nil {
		return nil
	}
	info := node.Pkg.TypesInfo
	var out []*types.Var
	for _, field := range node.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed parameter cannot escape by name
			continue
		}
		for _, name := range field.Names {
			v, _ := info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

// ownedParams resolves //fastcc:owned <name> doc directives to parameter
// indices. Only declared functions carry doc comments; literals return nil.
func ownedParams(node *framework.FuncNode, params []*types.Var) map[int]bool {
	if node.Decl == nil {
		return nil
	}
	names := framework.FuncMarkerArgs(node.Decl, "owned")
	if len(names) == 0 {
		return nil
	}
	out := map[int]bool{}
	for _, name := range names {
		for i, p := range params {
			if p != nil && p.Name() == name {
				out[i] = true
			}
		}
	}
	return out
}

// trackedWithIndexStores extends poolescape's tracked-variable set with
// container locals that receive pooled elements by index assignment
// (pools[w] = cache.NewPool()): passing the container onward hands over the
// pooled elements too.
func trackedWithIndexStores(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	tracked := poolescape.TrackedVars(info, body)
	for sweep := 0; sweep < 2; sweep++ {
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if !poolescape.IsPooled(info, tracked, as.Rhs[i]) && !poolescape.SourceCall(info, as.Rhs[i]) {
					continue
				}
				if base, ok := ast.Unparen(idx.X).(*ast.Ident); ok {
					if v, ok := info.Uses[base].(*types.Var); ok && !v.IsField() {
						tracked[v] = true
					}
				}
			}
			return true
		})
	}
	return tracked
}

// carriesRef reports whether a value of type t can reference heap memory —
// only such values can carry pool-obtained backing storage. Scalar copies
// (b[0], an accumulated sum, a length) sever the connection; without this
// gate every element read of a pooled slice would alias its parameter.
func carriesRef(t types.Type) bool {
	if t == nil {
		return true // unknown: stay conservative
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesRef(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return carriesRef(u.Elem())
	default:
		return true // slices, pointers, maps, chans, funcs, interfaces
	}
}

// isGoverned reports whether lit is the function of a `go` statement inside
// node (those are walked by the GoStmt case, not skipped).
func isGoverned(node *framework.FuncNode, lit *ast.FuncLit) bool {
	for _, site := range node.Calls {
		if site.Go && site.Call.Fun == lit {
			return true
		}
	}
	return false
}

// capturesVar reports whether the literal references v from its enclosing
// scope.
func capturesVar(info *types.Info, lit *ast.FuncLit, v *types.Var) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if ok && info.Uses[id] == v && !(lit.Pos() <= v.Pos() && v.Pos() < lit.End()) {
			found = true
		}
		return !found
	})
	return found
}

// lhsVar resolves an identifier on the left of an assignment to its object
// (a definition for :=, a use for =).
func lhsVar(info *types.Info, id *ast.Ident) *types.Var {
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// isField reports whether sel selects a struct field.
func isField(info *types.Info, sel *ast.SelectorExpr) bool {
	v, ok := info.Uses[sel.Sel].(*types.Var)
	return ok && v.IsField()
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
