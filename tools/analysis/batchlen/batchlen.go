// Package batchlen checks the length contracts of the batched probe and
// scatter APIs at their call sites.
//
// The hot microkernels (internal/core/kernels.go) drive two APIs whose
// correctness rests on length relations the type system cannot express:
//
//   - hashtable.Sealed.LookupBatch(keys, out) requires len(out) >=
//     len(keys): the batch resolves keys[i] into out[i], and the kernel's
//     one-bounds-check preamble (`_ = out[:len(keys)]`) turns a short out
//     into a panic at best and, if a caller copies the pattern without the
//     preamble, silent truncation at worst.
//
//   - accum.ScatterMatches(ms) scatters every element of ms: callers gather
//     matches into a fixed scratch array and must pass the gathered prefix
//     (`ms[:nm]`), never the whole array (`ms[:]`), or the tail's stale
//     matches from the previous chunk are accumulated again.
//
// The pass is deliberately conservative: it reports only what it can prove
// locally. LookupBatch sites are flagged when both argument lengths resolve
// to compile-time constants (fixed-size array slicings, constant-bounded
// slice expressions, literal lengths) and out is shorter than keys.
// ScatterMatches sites are flagged when the argument is the entirety of a
// fixed-size scratch array — a full slicing `ms[:]`/`ms[0:]`/`ms[:len(ms)]`
// of an array-typed operand — since the gathered count is runtime state, a
// whole-array pass is only correct when every slot is written every chunk,
// which is never how the gather loops are shaped. Dynamic or unprovable
// lengths stay silent. Findings are suppressed per line with
// //fastcc:allow batchlen -- reason.
//
// Matching is name-based like poolescape: LookupBatch on a type declared in
// a package named "hashtable", ScatterMatches on a method (or interface
// method) declared in a package named "accum" — so fixtures model the APIs
// without importing the real module.
package batchlen

import (
	"go/ast"
	"go/constant"
	"go/types"

	"fastcc/tools/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "batchlen",
	Doc:  "checks LookupBatch keys/out widths and ScatterMatches prefix discipline at provable call sites",
	Run:  run,
}

func run(pass *framework.Pass) error {
	pass.Preorder(func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		switch {
		case isBatchMethod(pass.TypesInfo, sel, "LookupBatch", "hashtable") && len(call.Args) == 2:
			checkLookupBatch(pass, call)
		case isBatchMethod(pass.TypesInfo, sel, "ScatterMatches", "accum") && len(call.Args) == 1:
			checkScatterMatches(pass, call)
		}
	})
	return nil
}

// isBatchMethod reports whether sel resolves to a method of the given name
// declared in a package of the given name — concrete or interface method
// alike, so calls through accum.Accumulator match as well as calls on
// *accum.Dense.
func isBatchMethod(info *types.Info, sel *ast.SelectorExpr, method, pkgName string) bool {
	if sel.Sel.Name != method {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Name() == pkgName
}

func checkLookupBatch(pass *framework.Pass, call *ast.CallExpr) {
	keys, kok := constLen(pass.TypesInfo, call.Args[0])
	out, ook := constLen(pass.TypesInfo, call.Args[1])
	if kok && ook && out < keys {
		pass.Reportf(call.Pos(),
			"LookupBatch out holds %d entries but keys holds %d: the batch writes out[i] for every key (out must be at least as long as keys)",
			out, keys)
	}
}

func checkScatterMatches(pass *framework.Pass, call *ast.CallExpr) {
	if n, ok := wholeArrayLen(pass.TypesInfo, call.Args[0]); ok {
		pass.Reportf(call.Pos(),
			"ScatterMatches is passed the entire %d-entry scratch array: pass the gathered prefix (ms[:nm]) or stale matches from the previous chunk are accumulated again",
			n)
	}
}

// constLen resolves e to a compile-time element count when possible:
// fixed-size arrays (and pointers to them), full or constant-bounded
// slicings of them, composite literals, and constant-bounded slicings of
// anything.
func constLen(info *types.Info, e ast.Expr) (int64, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		if e.Slice3 {
			return 0, false
		}
		lo := int64(0)
		if e.Low != nil {
			v, ok := constVal(info, e.Low)
			if !ok {
				return 0, false
			}
			lo = v
		}
		if e.High == nil {
			// x[lo:] — length known only when x's own length is.
			n, ok := arrayLen(info, e.X)
			if !ok {
				return 0, false
			}
			return n - lo, true
		}
		hi, ok := constVal(info, e.High)
		if !ok {
			return 0, false
		}
		return hi - lo, true
	case *ast.CallExpr:
		// make([]T, n) with a constant n.
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) < 2 {
			return 0, false
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return 0, false
		}
		return constVal(info, e.Args[1])
	case *ast.CompositeLit:
		// Keyed elements can set an arbitrary length; only count plain ones.
		for _, el := range e.Elts {
			if _, keyed := el.(*ast.KeyValueExpr); keyed {
				return 0, false
			}
		}
		if _, isArr := arrayLen(info, e); isArr {
			return int64(len(e.Elts)), true
		}
		if _, isSlice := info.Types[e].Type.Underlying().(*types.Slice); isSlice {
			return int64(len(e.Elts)), true
		}
		return 0, false
	default:
		return arrayLen(info, e)
	}
}

// arrayLen returns the length of e's type when it is a fixed-size array or
// a pointer to one.
func arrayLen(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return 0, false
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	if a, ok := t.(*types.Array); ok {
		return a.Len(), true
	}
	return 0, false
}

// constVal evaluates e to an int64 constant via the type checker.
func constVal(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}

// wholeArrayLen reports whether e is the entirety of a fixed-size array: a
// full slicing x[:], x[0:], x[:N] or x[0:N] (N the array length) of an
// array-typed operand. A plain array-typed expression cannot reach a slice
// parameter, so slicings are the only shape to catch.
func wholeArrayLen(info *types.Info, e ast.Expr) (int64, bool) {
	se, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || se.Slice3 {
		return 0, false
	}
	n, ok := arrayLen(info, se.X)
	if !ok {
		return 0, false
	}
	if se.Low != nil {
		if v, ok := constVal(info, se.Low); !ok || v != 0 {
			return 0, false
		}
	}
	if se.High != nil {
		if v, ok := constVal(info, se.High); !ok || v != n {
			return 0, false
		}
	}
	return n, true
}
