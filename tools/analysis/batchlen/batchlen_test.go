package batchlen

import (
	"testing"

	"fastcc/tools/analysis/analysistest"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "hashtable", "accum", "batchlen")
}
