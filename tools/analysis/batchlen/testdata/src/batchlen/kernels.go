// Fixture call sites for the batchlen length contracts, shaped like the
// real microkernels in internal/core/kernels.go.
package batchlen

import (
	"accum"
	"hashtable"
)

// probe exercises the LookupBatch width check: flagged only when both
// lengths are compile-time constants and out is shorter than keys.
func probe(s *hashtable.Sealed, keys []uint64) {
	var out [8]int32
	var keys16 [16]uint64

	s.LookupBatch(keys16[:], out[:])  // want `out holds 8 entries but keys holds 16`
	s.LookupBatch(keys16[:8], out[:]) // equal widths: fine
	s.LookupBatch(keys16[:4], out[:]) // out longer than keys: fine
	s.LookupBatch(keys, out[:])       // dynamic keys length: unprovable, silent

	s.LookupBatch([]uint64{1, 2, 3}, make([]int32, 2)) // want `out holds 2 entries but keys holds 3`
	s.LookupBatch([]uint64{1, 2, 3}, make([]int32, 4))

	// The real kernel shape: chunked slicings with runtime bounds are
	// beyond local proof and must stay silent.
	outDyn := make([]int32, len(keys))
	for base := 0; base < len(keys); base += hashtable.LookupBatchMax {
		n := len(keys) - base
		if n > hashtable.LookupBatchMax {
			n = hashtable.LookupBatchMax
		}
		s.LookupBatch(keys[base:base+n], outDyn[:n])
	}
}

// scatter exercises the whole-array heuristic on ScatterMatches: the fixed
// scratch array must be passed as the gathered prefix.
func scatter(d *accum.Dense, a accum.Accumulator, nm int) {
	var ms [16]accum.Match

	d.ScatterMatches(ms[:])    // want `entire 16-entry scratch array`
	d.ScatterMatches(ms[0:16]) // want `entire 16-entry scratch array`
	a.ScatterMatches(ms[:])    // want `entire 16-entry scratch array`
	d.ScatterMatches(ms[:nm])  // the gathered prefix: fine
	d.ScatterMatches(ms[2:])   // a proper sub-slice, not the whole array: fine
	d.ScatterMatches(ms[:8])   // constant prefix below the array length: fine

	// A deliberate whole-array pass (every slot written each chunk) is
	// suppressed with a rationale, like any other finding.
	d.ScatterMatches(ms[:]) //fastcc:allow batchlen -- fixture: all 16 slots are rewritten before every scatter
}

// unrelated names must not trip the name-based matching.
type local struct{}

func (local) ScatterMatches(ms []accum.Match) {}

func decoys(l local, ms []accum.Match) {
	l.ScatterMatches(ms[:]) // method of this package, not accum: silent
}
