// Fixture model of internal/hashtable's batched probe API: batchlen keys on
// the package name, the type name and the method signature, not the import
// path, so this stand-in exercises the real matching logic.
package hashtable

// LookupBatchMax mirrors the real chunk bound.
const LookupBatchMax = 16

type Sealed struct{ keys []uint64 }

// LookupBatch mirrors the real contract: out must have at least len(keys)
// entries.
func (s *Sealed) LookupBatch(keys []uint64, out []int32) (hits int) {
	_ = out[:len(keys)]
	for i := range keys {
		out[i] = -1
	}
	return 0
}
