// Fixture model of internal/accum's batched scatter API.
package accum

type Match struct{ L, R []float64 }

// Accumulator carries the interface route: batchlen matches the method by
// its declaring package, so calls through the interface are checked too.
type Accumulator interface {
	ScatterMatches(ms []Match)
}

type Dense struct{ vals []float64 }

func (d *Dense) ScatterMatches(ms []Match) {
	for range ms {
	}
}
