// Fixture for errdiscard: finalizer calls with discarded errors. The types
// are fixture-local so the fixture needs no imports.
package a

type sink struct{}

func (sink) Close() error                      { return nil }
func (sink) Flush() error                      { return nil }
func (sink) Sync() error                       { return nil }
func (sink) Write(p []byte) (int, error)       { return len(p), nil }
func (sink) WriteString(s string) (int, error) { return len(s), nil }
func (sink) Unlock()                           {}

func bad(s sink) {
	s.Close()         // want `error result of sink.Close is discarded`
	s.Flush()         // want `error result of sink.Flush is discarded`
	s.Sync()          // want `error result of sink.Sync is discarded`
	s.Write(nil)      // want `error result of sink.Write is discarded`
	s.WriteString("") // want `error result of sink.WriteString is discarded`
}

func good(s sink) error {
	_ = s.Close()   // explicit discard: fine
	defer s.Close() // deferred close: fine
	s.Unlock()      // no error result: fine
	if err := s.Flush(); err != nil {
		return err
	}
	return s.Close()
}

func allowed(s sink) {
	s.Close() //fastcc:allow errdiscard -- error path, best effort
}
