// Package errdiscard flags statements that silently discard the error
// result of resource-finalizing calls: Close, Flush, Sync, Write and
// WriteString as bare expression statements.
//
// For FaSTCC the write path is the dangerous one: tnsgen and fastcc write
// multi-gigabyte .tns/.btns outputs through buffered and gzip writers, where
// the data loss only surfaces in the final Close/Flush error. A bare
// `w.Close()` statement throws that signal away.
//
// The analyzer is deliberately narrow and mechanical:
//
//   - only expression statements are flagged — `_ = f.Close()` expresses an
//     intentional discard (read-only file, error path) and passes;
//   - `defer f.Close()` passes: deferring a close on a read path is
//     idiomatic, and write paths in this repo return f.Close() explicitly
//     (see SaveTNS);
//   - only methods with the five finalizer names whose last result is error
//     are considered, so sinks like sync.Mutex.Unlock never match;
//   - strings.Builder and bytes.Buffer are exempt: their Write methods are
//     documented to always return a nil error.
package errdiscard

import (
	"go/ast"
	"go/types"

	"fastcc/tools/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "errdiscard",
	Doc:  "flags discarded error results of Close/Flush/Sync/Write/WriteString calls",
	Run:  run,
}

var finalizers = map[string]bool{
	"Close":       true,
	"Flush":       true,
	"Sync":        true,
	"Write":       true,
	"WriteString": true,
}

func run(pass *framework.Pass) error {
	pass.Preorder(func(n ast.Node) {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !finalizers[sel.Sel.Name] {
			return
		}
		fn := framework.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || !returnsError(fn) || exemptRecv(fn) {
			return
		}
		pass.Reportf(call.Pos(),
			"error result of %s.%s is discarded; handle it or assign to _ to make the discard explicit",
			recvTypeName(fn), sel.Sel.Name)
	})
	return nil
}

// returnsError reports whether the function's last result is the builtin
// error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// exemptRecv reports receivers documented to never return write errors.
func exemptRecv(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	return framework.IsNamedType(t, "strings", "Builder") ||
		framework.IsNamedType(t, "bytes", "Buffer")
}

func recvTypeName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name()
		}
		return t.String()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name()
	}
	return "?"
}
