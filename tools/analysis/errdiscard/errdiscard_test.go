package errdiscard_test

import (
	"testing"

	"fastcc/tools/analysis/analysistest"
	"fastcc/tools/analysis/errdiscard"
)

func TestErrDiscard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errdiscard.Analyzer, "a")
}
