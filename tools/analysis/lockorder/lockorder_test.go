package lockorder

import (
	"testing"

	"fastcc/tools/analysis/analysistest"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "lockdefs", "lockuse")
}
