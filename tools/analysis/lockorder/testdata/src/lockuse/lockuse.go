// Fixture package with in-package rank violations plus the cross-package
// nesting: holding its own exclusive lock while calling into lockdefs, whose
// method acquires the rank-1 exclusive lock.
package lockuse

import (
	"sync"

	"lockdefs"
)

// Table models the per-operand shard map.
type Table struct {
	mu sync.Mutex //fastcc:lockrank 2 exclusive -- never nested with LRU.mu
}

var statsMu sync.Mutex //fastcc:lockrank 3
var traceMu sync.Mutex //fastcc:lockrank 4

// crossPackage holds the exclusive Table lock across a call whose callee
// acquires the rank-1 lock — the violation is two packages apart.
func crossPackage(t *Table, l *lockdefs.LRU) {
	t.mu.Lock()
	l.Insert() // want `acquiring LRU.mu while holding Table.mu in crossPackage \(via call to Insert\): Table.mu \(rank 2\) is exclusive`
	t.mu.Unlock()
}

// outOfRank nests a lower rank under a higher one.
func outOfRank() {
	traceMu.Lock()
	statsMu.Lock() // want `rank 3 \(lockuse.statsMu\) must be acquired before rank 4 \(lockuse.traceMu\)`
	statsMu.Unlock()
	traceMu.Unlock()
}

// inRank nests in declared order: clean.
func inRank() {
	statsMu.Lock()
	traceMu.Lock()
	traceMu.Unlock()
	statsMu.Unlock()
}

// doubleLock re-acquires a lock already held — self-deadlock falls out of
// the rank comparison.
func doubleLock() {
	statsMu.Lock()
	statsMu.Lock() // want `rank 3 \(lockuse.statsMu\) must be acquired before rank 3 \(lockuse.statsMu\)`
	statsMu.Unlock()
	statsMu.Unlock()
}

// sequential holds the locks one after the other, never together: clean —
// the held-set analysis is flow-sensitive.
func sequential() {
	traceMu.Lock()
	traceMu.Unlock()
	statsMu.Lock()
	statsMu.Unlock()
}

// branchHeld creates the nesting only on one branch; may-held still flags it.
func branchHeld(cold bool) {
	if cold {
		traceMu.Lock()
	}
	statsMu.Lock() // want `rank 3 \(lockuse.statsMu\) must be acquired before rank 4 \(lockuse.traceMu\)`
	statsMu.Unlock()
	if cold {
		traceMu.Unlock()
	}
}

// exclusiveNest acquires a ranked lock while holding an exclusive one.
func exclusiveNest(t *Table) {
	t.mu.Lock()
	statsMu.Lock() // want `Table.mu \(rank 2\) is exclusive: no ranked lock may be acquired while it is held`
	statsMu.Unlock()
	t.mu.Unlock()
}

// exclusiveUnderRanked acquires an exclusive lock while a ranked one is held.
func exclusiveUnderRanked(t *Table) {
	statsMu.Lock()
	t.mu.Lock() // want `Table.mu \(rank 2\) is exclusive: it may not be acquired while any ranked lock is held`
	t.mu.Unlock()
	statsMu.Unlock()
}
