// Fixture package declaring the outer, exclusive lock of a two-package
// hierarchy — the cross-package half of the lock-rank tests.
package lockdefs

import "sync"

// LRU models the process-global eviction list.
type LRU struct {
	mu sync.Mutex //fastcc:lockrank 1 exclusive -- never nested with Table.mu
}

// Insert acquires the LRU lock; callers holding any ranked lock violate the
// hierarchy through this call.
func (l *LRU) Insert() {
	l.mu.Lock()
	defer l.mu.Unlock()
}
