// Package lockorder enforces a declared mutex acquisition hierarchy.
//
// The shard lifecycle (PR 5) holds two locks with a strict non-nesting
// contract — the process-global LRU lock and the per-operand shard-map lock
// must never be held together, in either order — and the mempool freelist
// lock sits below both. Until now that contract lived in doc comments and
// -race soaks, which only catch the interleavings a test happens to hit.
// This pass makes the hierarchy declarative: a mutex declaration (struct
// field or package variable) is annotated with its rank,
//
//	mu sync.Mutex //fastcc:lockrank 2 exclusive -- never nested with the LRU lock
//
// and the analyzer flags, whole-program and flow-sensitively, every path
// that acquires ranked locks out of order. Lower ranks are outer: while
// holding rank r, only locks of rank strictly greater than r may be
// acquired. A rank marked `exclusive` is a leaf and a root at once —
// nothing ranked may be held when it is acquired, and nothing ranked may be
// acquired while it is held. Two exclusive locks can therefore never nest
// in either order, which is exactly the LRU/operand contract.
//
// The analysis tracks may-held sets through each function's control-flow
// graph (Lock/RLock add, Unlock/RUnlock remove; a deferred unlock keeps the
// lock held to function exit, which is the point of deferring it) and
// propagates may-acquire summaries over the call graph, so a violation two
// calls deep is reported at the call site that creates the nesting.
// Goroutine launches are treated like calls: conservative, since the
// goroutine usually synchronizes with the launcher somewhere.
//
// Unannotated mutexes are invisible to this pass — the hierarchy is opt-in,
// rank by rank. Findings are suppressed with //fastcc:allow lockorder.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"fastcc/tools/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name:       "lockorder",
	Doc:        "flags mutex acquisitions that violate the //fastcc:lockrank hierarchy",
	RunProgram: run,
}

// A rankedLock is one annotated mutex declaration.
type rankedLock struct {
	Rank      int
	Exclusive bool
	Label     string // Type.field or pkg.var, for diagnostics
}

// lockOp is one Lock/Unlock-family call on a ranked mutex.
type lockOp struct {
	obj     *types.Var
	acquire bool
	pos     token.Pos
}

type checker struct {
	pass  *framework.ProgramPass
	ranks map[*types.Var]rankedLock
	// acquires is the flow-insensitive may-acquire summary per node,
	// including transitive acquisitions through callees.
	acquires map[*framework.FuncNode]map[*types.Var]bool
}

func run(pass *framework.ProgramPass) error {
	c := &checker{pass: pass, ranks: map[*types.Var]rankedLock{}, acquires: map[*framework.FuncNode]map[*types.Var]bool{}}
	for _, pkg := range pass.Program.Pkgs {
		c.collectRanks(pkg)
	}
	if len(c.ranks) == 0 {
		return nil
	}
	graph := pass.Program.CallGraph()

	// May-acquire fixpoint: sets only grow, so sweep until stable.
	for _, node := range graph.Nodes {
		c.acquires[node] = map[*types.Var]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, node := range graph.Nodes {
			if node.Body == nil {
				continue
			}
			acq := c.acquires[node]
			before := len(acq)
			for _, op := range c.lockOps(node, node.Body) {
				if op.acquire {
					acq[op.obj] = true
				}
			}
			for _, site := range node.Calls {
				// A devirtualized site may acquire whatever ANY member of its
				// may-call set acquires.
				for _, callee := range site.Callees {
					for obj := range c.acquires[callee] {
						acq[obj] = true
					}
				}
			}
			if len(acq) > before {
				changed = true
			}
		}
	}

	// Flow-sensitive held-set pass per function, then one reporting sweep
	// over the fixpoint states.
	for _, node := range graph.Nodes {
		if node.Body != nil {
			c.checkNode(node)
		}
	}
	return nil
}

// collectRanks finds //fastcc:lockrank annotations on struct fields and
// package-level variables.
func (c *checker) collectRanks(pkg *framework.Package) {
	fset := pkg.Fset
	markers := framework.CollectLineMarkerArgs(fset, pkg.Files, "lockrank")
	if len(markers) == 0 {
		return
	}
	record := func(name *ast.Ident, label string) {
		arg, ok := framework.MarkerArgAt(fset, markers, name.Pos())
		if !ok {
			return
		}
		v, _ := pkg.TypesInfo.Defs[name].(*types.Var)
		if v == nil {
			return
		}
		fields := strings.Fields(arg)
		if len(fields) == 0 {
			c.pass.Reportf(name.Pos(), "malformed //fastcc:lockrank on %s: missing rank", label)
			return
		}
		rank, err := strconv.Atoi(fields[0])
		if err != nil {
			c.pass.Reportf(name.Pos(), "malformed //fastcc:lockrank on %s: %q is not a rank", label, fields[0])
			return
		}
		exclusive := len(fields) > 1 && fields[1] == "exclusive"
		c.ranks[v] = rankedLock{Rank: rank, Exclusive: exclusive, Label: label}
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.TypeSpec:
					st, ok := spec.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						for _, name := range field.Names {
							record(name, spec.Name.Name+"."+name.Name)
						}
					}
				case *ast.ValueSpec:
					for _, name := range spec.Names {
						record(name, pkg.Pkg.Name()+"."+name.Name)
					}
				}
			}
		}
	}
}

// lockOps returns the ranked Lock/Unlock-family calls lexically inside n,
// excluding nested function literals (they are separate call-graph nodes)
// and deferred calls (a deferred unlock releases at exit, not here).
func (c *checker) lockOps(node *framework.FuncNode, n ast.Node) []lockOp {
	info := node.Pkg.TypesInfo
	var ops []lockOp
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var acquire bool
			switch sel.Sel.Name {
			case "Lock", "RLock", "TryLock", "TryRLock":
				acquire = true
			case "Unlock", "RUnlock":
				acquire = false
			default:
				return true
			}
			obj := lockVar(info, sel.X)
			if obj == nil {
				return true
			}
			if _, ranked := c.ranks[obj]; ranked {
				ops = append(ops, lockOp{obj: obj, acquire: acquire, pos: x.Pos()})
			}
		}
		return true
	})
	return ops
}

// lockVar resolves the receiver expression of a Lock call to the declared
// mutex variable: the field object for o.mu, the variable object for a
// package-level or local mutex, through pointers and parens.
func lockVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return lockVar(info, e.X)
		}
	case *ast.StarExpr:
		return lockVar(info, e.X)
	}
	return nil
}

// heldSet is the dataflow state: the ranked locks that may be held.
type heldSet map[*types.Var]bool

// checkNode runs the may-held dataflow over one function and reports
// violations from the fixpoint states.
func (c *checker) checkNode(node *framework.FuncNode) {
	// Fast path: functions that touch no ranked locks and call nothing that
	// does need no CFG.
	touches := len(c.lockOps(node, node.Body)) > 0
	if !touches {
	scan:
		for _, site := range node.Calls {
			for _, callee := range site.Callees {
				if len(c.acquires[callee]) > 0 {
					touches = true
					break scan
				}
			}
		}
	}
	if !touches {
		return
	}

	cfg := framework.BuildCFG(node.Body)
	flow := &framework.Flow[heldSet]{
		CFG:  cfg,
		Init: heldSet{},
		Transfer: func(n *framework.CFGNode, in heldSet) heldSet {
			if n.Stmt == nil {
				return in
			}
			for _, op := range c.lockOps(node, n.Stmt) {
				if op.acquire {
					in[op.obj] = true
				} else {
					delete(in, op.obj)
				}
			}
			return in
		},
		Join: func(acc, in heldSet) heldSet {
			for v := range in {
				acc[v] = true
			}
			return acc
		},
		Equal: func(a, b heldSet) bool {
			if len(a) != len(b) {
				return false
			}
			for v := range a {
				if !b[v] {
					return false
				}
			}
			return true
		},
		Copy: func(s heldSet) heldSet {
			out := make(heldSet, len(s))
			for v := range s {
				out[v] = true
			}
			return out
		},
	}
	res := flow.Solve()

	// Reporting sweep: re-walk each reached statement with its entry state,
	// checking acquisitions (direct and through callees) against held locks.
	reported := map[string]bool{}
	for _, n := range cfg.Nodes {
		if !res.Reached[n.Index] || n.Stmt == nil {
			continue
		}
		held := flow.Copy(res.In[n.Index])
		for _, op := range c.lockOps(node, n.Stmt) {
			if op.acquire {
				c.checkAcquire(node, held, op.obj, op.pos, "", reported)
				held[op.obj] = true
			} else {
				delete(held, op.obj)
			}
		}
		// Calls in this statement whose callees may acquire ranked locks.
		c.checkCalls(node, n.Stmt, held, reported)
	}
}

// checkCalls checks every resolved call lexically in stmt against held.
func (c *checker) checkCalls(node *framework.FuncNode, stmt ast.Stmt, held heldSet, reported map[string]bool) {
	if len(held) == 0 {
		return
	}
	calls := map[*ast.CallExpr][]*framework.FuncNode{}
	for _, site := range node.Calls {
		if len(site.Callees) > 0 {
			calls[site.Call] = site.Callees
		}
	}
	ast.Inspect(stmt, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, callee := range calls[call] {
			c.checkCallee(node, call, callee, held, reported)
		}
		return true
	})
}

// checkCallee checks one resolved callee of one call against held.
func (c *checker) checkCallee(node *framework.FuncNode, call *ast.CallExpr, callee *framework.FuncNode, held heldSet, reported map[string]bool) {
	for obj := range c.acquires[callee] {
		// The callee may acquire obj while we hold `held`: the nesting
		// exists even though the Lock is out of line.
		c.checkAcquire(node, held, obj, call.Pos(), " (via call to "+callee.Name()+")", reported)
	}
}

// checkAcquire reports every held lock that forbids acquiring m.
func (c *checker) checkAcquire(node *framework.FuncNode, held heldSet, m *types.Var, pos token.Pos, via string, reported map[string]bool) {
	mr := c.ranks[m]
	for l := range held {
		// l == m (self-deadlock, possibly through a callee) falls out of the
		// rank comparison: rank(l) >= rank(m) always holds for the same lock.
		lr := c.ranks[l]
		var why string
		switch {
		case lr.Exclusive:
			why = fmt.Sprintf("%s (rank %d) is exclusive: no ranked lock may be acquired while it is held", lr.Label, lr.Rank)
		case mr.Exclusive:
			why = fmt.Sprintf("%s (rank %d) is exclusive: it may not be acquired while any ranked lock is held", mr.Label, mr.Rank)
		case lr.Rank >= mr.Rank:
			why = fmt.Sprintf("rank %d (%s) must be acquired before rank %d (%s)", mr.Rank, mr.Label, lr.Rank, lr.Label)
		default:
			continue
		}
		key := fmt.Sprintf("%d/%p/%p", pos, l, m)
		if reported[key] {
			continue
		}
		reported[key] = true
		c.pass.Reportf(pos, "acquiring %s while holding %s in %s%s: %s",
			mr.Label, lr.Label, node.Name(), via, why)
	}
}
