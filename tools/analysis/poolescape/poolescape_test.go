package poolescape_test

import (
	"testing"

	"fastcc/tools/analysis/analysistest"
	"fastcc/tools/analysis/poolescape"
)

func TestPoolEscape(t *testing.T) {
	// The mempool fixture is compiled first so "a" can import it; it carries
	// no expectations of its own (the stub bodies must be clean).
	analysistest.Run(t, analysistest.TestData(), poolescape.Analyzer, "mempool", "a")
}
