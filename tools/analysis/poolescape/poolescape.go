// Package poolescape flags pool-obtained memory that escapes the scope the
// recycling discipline assumes.
//
// The engine's memory reuse (PRs 2-3) hands out storage whose lifetime ends
// at an explicit recycle point: mempool.SlicePool.Get buffers die at Put,
// ChunkCache-backed pool chunks die at Release, Freelist.Get values are
// re-vended to the next Get. None of that is visible to the garbage
// collector or the race detector — a reference that outlives the recycle
// point silently reads (or corrupts) whatever the next owner writes. This
// analyzer reports the three escape shapes that create such references:
//
//   - storing a pool-obtained value in a struct field (including composite
//     literal fields): the struct usually outlives the recycle point;
//   - returning a pool-obtained value: the caller has no Put obligation and
//     no way to know one exists;
//   - handing a pool-obtained value to a goroutine (captured by the `go`
//     statement's function literal or passed as an argument): the goroutine
//     races the recycle point.
//
// Deliberate ownership transfers — a struct that owns its arenas until an
// explicit Release, like coo.TilePartition — are annotated at the store
// site with
//
//	//fastcc:owned -- <who owns the memory and which call ends the lifetime>
//
// which both suppresses the diagnostic and documents the invariant in the
// diff. //fastcc:allow poolescape also works but //fastcc:owned is the
// convention for transfers that are part of the design.
//
// The analysis is intraprocedural and name-based on the mempool API: it
// tracks values produced by Pool.Chunks, List.Chunks, ChunkCache.NewPool,
// SlicePool.Get and Freelist.Get (through local aliases) and inspects the
// enclosing function's statements. It does not model Put ordering — any
// escape of tracked memory is reported, because a store that happens to
// precede every recycle today is one refactor away from outliving one.
package poolescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"fastcc/tools/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "poolescape",
	Doc:  "flags mempool-obtained memory stored in struct fields, returned, or handed to goroutines",
	Run:  run,
}

// poolMethods names the producing methods per mempool type: a call to one of
// these yields memory owned by the pool's recycling discipline.
var poolMethods = map[string]map[string]bool{
	"Pool":       {"Chunks": true},
	"List":       {"Chunks": true},
	"ChunkCache": {"NewPool": true},
	"SlicePool":  {"Get": true},
	"Freelist":   {"Get": true},
}

func run(pass *framework.Pass) error {
	owned := framework.CollectLineMarkers(pass.Fset, pass.Files, "owned")
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, owned)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fn *ast.FuncDecl, owned map[string]map[int]bool) {
	tracked := trackedVars(pass.TypesInfo, fn.Body)

	report := func(pos token.Pos, format string, args ...any) {
		if framework.MarkedAt(pass.Fset, owned, pos) {
			return
		}
		pass.Reportf(pos, format, args...)
	}

	pooled := func(e ast.Expr) bool { return isPooled(pass.TypesInfo, tracked, e) }

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if pooled(res) {
					report(res.Pos(),
						"pool-obtained memory returned from %s escapes its recycle point; copy it out, or annotate //fastcc:owned with the ownership invariant",
						fn.Name.Name)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if isFieldSelector(pass.TypesInfo, lhs) && pooled(n.Rhs[i]) {
					report(n.Rhs[i].Pos(),
						"pool-obtained memory stored in struct field %s may outlive its recycle point; copy it, or annotate //fastcc:owned with the ownership invariant",
						fieldName(lhs))
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(n); t == nil || !isStructType(t) {
				return true
			}
			for _, elt := range n.Elts {
				v := elt
				name := "(positional)"
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
					if id, ok := kv.Key.(*ast.Ident); ok {
						name = id.Name
					}
				}
				if pooled(v) {
					report(v.Pos(),
						"pool-obtained memory stored in struct field %s may outlive its recycle point; copy it, or annotate //fastcc:owned with the ownership invariant",
						name)
				}
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if pooled(arg) {
					report(arg.Pos(),
						"pool-obtained memory passed to a goroutine races its recycle point; copy it, or annotate //fastcc:owned with the ownership invariant")
				}
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				if name := capturedTracked(pass.TypesInfo, tracked, lit); name != "" {
					report(n.Pos(),
						"goroutine captures pool-obtained %q and races its recycle point; copy it, or annotate //fastcc:owned with the ownership invariant",
						name)
				}
			}
		}
		return true
	})
}

// trackedVars collects the variables of fn that hold pool-obtained memory:
// assigned directly from a producing call, or aliased from such a variable.
// Two passes make the alias rule order-insensitive (good enough for the
// straight-line pool usage in this codebase).
func trackedVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	tracked := map[*types.Var]bool{}
	for pass2 := 0; pass2 < 2; pass2++ {
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// v, ok := freelist.Get(k): one producing call, multiple LHS —
			// the value is the first result.
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				if sourceCall(info, as.Rhs[0]) {
					markVar(info, tracked, as.Lhs[0])
				}
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				if sourceCall(info, as.Rhs[i]) || isPooled(info, tracked, as.Rhs[i]) {
					markVar(info, tracked, lhs)
				}
			}
			return true
		})
	}
	return tracked
}

// TrackedVars, IsPooled and SourceCall export the pool-tracking core for the
// interprocedural sibling analyzer (poolescapex), which reuses the same
// notion of "pool-obtained" while adding call-graph reasoning on top.

// TrackedVars returns the local variables of body that hold pool-obtained
// memory (assigned from a producing mempool call, directly or via aliases).
func TrackedVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	return trackedVars(info, body)
}

// IsPooled reports whether e evaluates to pool-obtained memory under the
// given tracked-variable set.
func IsPooled(info *types.Info, tracked map[*types.Var]bool, e ast.Expr) bool {
	return isPooled(info, tracked, e)
}

// SourceCall reports whether e is a call to a producing mempool method.
func SourceCall(info *types.Info, e ast.Expr) bool {
	return sourceCall(info, e)
}

func markVar(info *types.Info, tracked map[*types.Var]bool, lhs ast.Expr) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if v, ok := obj.(*types.Var); ok && !v.IsField() {
		tracked[v] = true
	}
}

// isPooled reports whether e evaluates to pool-obtained memory: a producing
// call, a tracked variable, or a slice/index of either (b[:n] keeps the
// backing array).
func isPooled(info *types.Info, tracked map[*types.Var]bool, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return sourceCall(info, e)
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		return ok && tracked[v]
	case *ast.SliceExpr:
		return isPooled(info, tracked, e.X)
	case *ast.IndexExpr:
		return isPooled(info, tracked, e.X)
	}
	return false
}

// sourceCall reports whether e is a call (possibly sliced) to a producing
// mempool method — a method named in poolMethods on a type named there,
// declared in a package named "mempool".
func sourceCall(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return sourceCall(info, e.X)
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		recv := info.TypeOf(sel.X)
		if recv == nil {
			return false
		}
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg().Name() != "mempool" {
			return false
		}
		methods, ok := poolMethods[obj.Name()]
		return ok && methods[sel.Sel.Name]
	}
	return false
}

// capturedTracked returns the name of one tracked variable the function
// literal references from its enclosing scope, or "".
func capturedTracked(info *types.Info, tracked map[*types.Var]bool, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || !tracked[v] {
			return true
		}
		// Declared inside the literal itself: not a capture.
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true
		}
		name = v.Name()
		return false
	})
	return name
}

// isFieldSelector reports whether lhs is a struct-field selector (x.f with f
// a field, not a package-level or method selection).
func isFieldSelector(info *types.Info, lhs ast.Expr) bool {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	return ok && v.IsField()
}

func fieldName(lhs ast.Expr) string {
	if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "?"
}

func isStructType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, ok := t.Underlying().(*types.Struct)
	return ok
}
