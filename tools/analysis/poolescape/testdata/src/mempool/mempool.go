// Package mempool mirrors the producing method surface of
// fastcc/internal/mempool so poolescape fixtures see realistically typed
// call sites. Bodies are stubs; only the names and signatures matter — the
// analyzer keys on the package name, the receiver type name and the method
// name.
package mempool

// Pool is the chunked append-only arena stub.
type Pool[T any] struct{ chunks [][]T }

func (p *Pool[T]) Append(v T)    {}
func (p *Pool[T]) Chunks() [][]T { return p.chunks }
func (p *Pool[T]) Reset()        {}

// List is the concatenated chunk list stub.
type List[T any] struct{ chunks [][]T }

func (l *List[T]) Chunks() [][]T { return l.chunks }

// ChunkCache recycles chunk storage.
type ChunkCache[T any] struct{}

func (c *ChunkCache[T]) NewPool() *Pool[T]  { return &Pool[T]{} }
func (c *ChunkCache[T]) Release(l *List[T]) {}

// SlicePool recycles flat scratch slices.
type SlicePool[T any] struct{}

func (s *SlicePool[T]) Get(capHint int) []T { return make([]T, 0, capHint) }
func (s *SlicePool[T]) Put(b []T)           {}

// Freelist parks shaped scratch values by key.
type Freelist[K comparable, V any] struct{}

func (f *Freelist[K, V]) Get(k K) (V, bool) { var zero V; return zero, false }
func (f *Freelist[K, V]) Put(k K, v V)      {}
