// Fixture for poolescape: recycled memory escaping into struct fields,
// returns and goroutines, in the style of the engine's SlicePool/Freelist
// usage.
package a

import "mempool"

var scratch mempool.SlicePool[uint64]
var accFree mempool.Freelist[int, []float64]

type holder struct {
	buf  []uint64
	accs []float64
}

func storesField(h *holder) {
	b := scratch.Get(8)
	h.buf = b // want `stored in struct field buf`
	scratch.Put(b)
}

func storesFieldDirect(h *holder) {
	h.buf = scratch.Get(8) // want `stored in struct field buf`
}

func storesSlicedField(h *holder) {
	h.buf = scratch.Get(8)[:4] // want `stored in struct field buf`
}

func compositeField() *holder {
	return &holder{buf: scratch.Get(4)} // want `stored in struct field buf`
}

func returnsPooled() []uint64 {
	b := scratch.Get(8)
	return b // want `returned from returnsPooled`
}

func returnsAlias() []uint64 {
	b := scratch.Get(8)
	alias := b
	return alias // want `returned from returnsAlias`
}

func returnsFreelistValue() []float64 {
	acc, ok := accFree.Get(0)
	if !ok {
		return nil
	}
	return acc // want `returned from returnsFreelistValue`
}

func goroutineCapture() {
	b := scratch.Get(8)
	go func() { // want `captures pool-obtained "b"`
		b = append(b, 1)
	}()
}

func goroutineArg(fn func([]uint64)) {
	b := scratch.Get(8)
	go fn(b) // want `passed to a goroutine`
}

func ownedTransfer(h *holder) {
	// The annotated form: the holder owns the buffer until its own release
	// hook runs; the annotation documents (and suppresses) the transfer.
	h.buf = scratch.Get(8) //fastcc:owned -- holder owns buf until holder.release returns it
}

func allowSuppression() []uint64 {
	b := scratch.Get(8)
	return b //fastcc:allow poolescape -- fixture exercising the generic suppression path
}

func properUse(n int) uint64 {
	b := scratch.Get(n)
	for i := 0; i < n; i++ {
		b = append(b, uint64(i))
	}
	var sum uint64
	for _, v := range b {
		sum += v
	}
	scratch.Put(b)
	return sum // scalar derived from the buffer: fine
}

func freshAllocation() []uint64 {
	return make([]uint64, 8) // not pool-obtained: fine
}
