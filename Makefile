# Make targets mirror the CI gates in .github/workflows/ci.yml one-to-one,
# so a green `make ci` locally means a green pipeline.

GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The supported race gate is -short: full -race on the experiment
# packages replays paper workloads and is too slow for a gate.
race:
	$(GO) test -race -short ./...

# go vet plus the project's own analyzer suite (atomicmix, errdiscard,
# hotalloc, linovf, wgmisuse — see tools/analysis/ and README.md).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/fastcc-vet ./...

# Short fuzz of every existing Fuzz* target; go test -fuzz takes one
# target per package per invocation.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzParseEinsum -fuzztime=$(FUZZTIME) .
	$(GO) test -run=^$$ -fuzz=FuzzReadTNS -fuzztime=$(FUZZTIME) ./internal/coo
	$(GO) test -run=^$$ -fuzz=FuzzRead -fuzztime=$(FUZZTIME) ./internal/tnsbin

ci: build vet test race fuzz-smoke
