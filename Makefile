# Make targets mirror the CI gates in .github/workflows/ci.yml one-to-one,
# so a green `make ci` locally means a green pipeline.

GO ?= go
FUZZTIME ?= 10s

.PHONY: build test test-checked race vet vet-self test-lifecycle test-spill fuzz-smoke bench-smoke bench-reuse bench-buildscale bench-hotpath bench-hotpath-smoke bench-spill bench-spill-smoke serve-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Sanitizer build: mempool poisons recycled storage and tracks chunk
# provenance, Sealed/Shard validate generation stamps on every access, so
# the lifetime bugs the poolescape/sealedmut analyzers model statically
# become deterministic panics at runtime (see DESIGN.md).
test-checked:
	$(GO) test -tags fastcc_checked ./...

# The supported race gate is -short: full -race on the experiment
# packages replays paper workloads and is too slow for a gate.
race:
	$(GO) test -race -short ./...

# go vet plus the project's own analyzer suite: the per-package passes
# (atomicmix, errdiscard, hotalloc, linovf, poolescape, sealedmut,
# spanarith, wgmisuse) and the whole-program passes reasoning over a shared
# call graph (lockorder, pinbracket, poolescapex) — see tools/analysis/ and
# README.md. The driver binary is built once into bin/ so this leg and
# vet-self share it; CI reuses the compiled analyzer packages via the Go
# build cache.
vet:
	$(GO) vet ./...
	$(GO) build -o bin/fastcc-vet ./cmd/fastcc-vet
	./bin/fastcc-vet ./...

# The analyzer suite applied to itself: the framework, the passes and the
# driver are Go code holding the same invariants they enforce on the
# engine, and a mis-registered pass aborts here with exit 2 before it can
# silently disable a gate on the main tree.
#
# The second half is the devirtualization ledger. The whole-program passes
# re-run over the layers with the densest indirect calls (the server's
# handler plumbing, the core microkernel dispatch, the command drivers),
# then the call-graph stats are printed into the log and the opaque-site
# count — the passes' tracked soundness gap — is compared against the
# checked-in golden number. Drift fails the build in both directions: a
# rise means a change gave the passes new blind spots (resolve it or
# annotate the site //fastcc:dynamic with a rationale); a drop means the
# devirtualizer got stronger — lower the golden number to lock in the gain.
vet-self:
	$(GO) build -o bin/fastcc-vet ./cmd/fastcc-vet
	./bin/fastcc-vet ./tools/analysis/... ./cmd/fastcc-vet
	./bin/fastcc-vet -c lockorder,pinbracket,poolescapex ./internal/server ./internal/core ./cmd/...
	./bin/fastcc-vet -stats -c lockorder ./... | tee /dev/stderr | grep '^opaque call sites:' | diff tools/analysis/opaque_golden.txt -

# Shard-cache lifecycle gate: the concurrent Drop/eviction soak and the
# core lifecycle suite under the race detector, then again under the
# sanitizer build so pin-protocol violations become generation-stamp
# panics instead of silent corruption (see DESIGN.md, "Shard lifecycle
# & eviction").
test-lifecycle:
	$(GO) test -race -short -run 'TestLifecycleStress|TestPreparedDrop' .
	$(GO) test -race -short ./internal/core -run 'TestShard|TestEviction|TestClose|TestWarm|TestCache'
	$(GO) test -tags fastcc_checked -short -run 'TestLifecycleStress|TestPreparedDrop' .
	$(GO) test -tags fastcc_checked -short ./internal/core -run 'TestShard|TestEviction|TestClose|TestWarm|TestCache|TestUnpinned'

# Disk-tier gate: the spill round-trip, fault-injection and adoption suites
# under the race detector, then again under the sanitizer build so a reader
# that keeps a shard reference across a spill hits the mid-spill generation
# panic instead of silently reading reclaimed tables (see DESIGN.md,
# "Tiered storage: spill files & residency").
test-spill:
	$(GO) test -race -short ./internal/spill
	$(GO) test -race -short ./internal/core -run 'TestSpill'
	$(GO) test -race -short ./internal/server -run 'TestServerSoakSpillChurn'
	$(GO) test -tags fastcc_checked -short ./internal/spill
	$(GO) test -tags fastcc_checked -short ./internal/core -run 'TestSpill|TestSpilledShardGenerationCheck'

# Short fuzz of every existing Fuzz* target; go test -fuzz takes one
# target per package per invocation. The contraction fuzzer runs a second
# time under fastcc_checked so random tilings also exercise the poison and
# generation asserts.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzParseEinsum -fuzztime=$(FUZZTIME) .
	$(GO) test -run=^$$ -fuzz=FuzzReadTNS -fuzztime=$(FUZZTIME) ./internal/coo
	$(GO) test -run=^$$ -fuzz=FuzzRead -fuzztime=$(FUZZTIME) ./internal/tnsbin
	$(GO) test -run=^$$ -fuzz=FuzzContractTiling -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -tags fastcc_checked -run=^$$ -fuzz=FuzzContractTiling -fuzztime=$(FUZZTIME) ./internal/core

# One-iteration run of the prepared-operand reuse benchmark: exercises the
# Preshard/ContractPrepared path end to end (the warm iterations assert
# Stats.Build == 0 and ShardReused) without paying full benchmark time.
bench-smoke:
	$(GO) test -bench=Reuse -benchtime=1x -run=^$$ .
	$(GO) run ./cmd/fastcc-bench -exp buildscale -scale-frostt 0.0005 -repeats 1 -threads 2 -platform desktop8 > /dev/null

# Regenerate the checked-in BENCH_buildscale.json: Build-phase wall time
# against the worker count at fixed nnz (must be flat or falling — the
# partitioned build reads O(nnz) total regardless of workers), plus the
# cold/warm contract geomeans comparable with BENCH_reuse.json.
bench-buildscale:
	$(GO) run ./cmd/fastcc-bench -exp buildscale -scale-frostt 0.002 -repeats 5 -threads 8 -platform desktop8 > BENCH_buildscale.json

# Regenerate the checked-in BENCH_reuse.json (cold vs warm comparison on
# the FROSTT suite at benchmark scale).
bench-reuse:
	$(GO) run ./cmd/fastcc-bench -exp reuse -scale-frostt 0.002 -repeats 7 -platform desktop8 > BENCH_reuse.json

# Regenerate the checked-in BENCH_hotpath.json: contract-phase time of each
# specialized tile microkernel against the generic co-iteration loop on the
# QC suite (the accumulate-bound regime the kernels target). Repeats are
# paired and interleaved with the minimum reported; the experiment fails if
# any kernel output is not bit-identical to the generic loop's. Add
# `-pprof-dir <dir>` to the command to capture per-combo CPU profiles.
bench-hotpath:
	$(GO) run ./cmd/fastcc-bench -exp hotpath -suite qc -scale-qc 0.2 -repeats 5 > BENCH_hotpath.json

# Tiny-scale microkernel smoke: one pass of all four (rep, accum) kernels —
# RunHotpath errors out on any bit-level divergence from the generic loop —
# plus the schema check over the checked-in BENCH_hotpath.json.
bench-hotpath-smoke:
	$(GO) run ./cmd/fastcc-bench -exp hotpath -suite qc -scale-qc 0.02 -repeats 1 -threads 2 -platform desktop8 > /dev/null
	$(GO) test ./internal/experiments -run 'TestRunHotpathEmitsValidJSON|TestBenchHotpathArtifact'

# Regenerate the checked-in BENCH_spill.json: evict-then-contract timed with
# the disk tier off (rebuild) and on (re-pin from the spill file) on the
# FROSTT suite. The experiment errors if any re-pin leg missed the disk
# cache or degraded through a spill fallback.
bench-spill:
	$(GO) run ./cmd/fastcc-bench -exp spill -scale-frostt 0.002 -repeats 7 -platform desktop8 > BENCH_spill.json

# Tiny-scale disk-tier smoke: one evict/spill/re-pin pass per FROSTT case —
# RunSpill errors on any fallback or missed reload — plus the schema check
# over the checked-in BENCH_spill.json.
bench-spill-smoke:
	$(GO) run ./cmd/fastcc-bench -exp spill -scale-frostt 0.0005 -repeats 1 -threads 2 -platform desktop8 > /dev/null
	$(GO) test ./internal/experiments -run 'TestRunSpillEmitsValidJSON|TestBenchSpillArtifact'

# End-to-end daemon gate: build fastcc-serve and fastcc-client, start the
# daemon on a free port with a deliberately small cache budget and tenant
# quota, run the scripted upload -> contract -> fetch round-trip (results
# compared bit-for-bit against a local contraction), then SIGTERM and
# require exit 0 — the daemon gates that on zero leak-gauge deltas.
serve-smoke:
	$(GO) build -o bin/fastcc-serve ./cmd/fastcc-serve
	$(GO) build -o bin/fastcc-client ./cmd/fastcc-client
	sh tools/serve_smoke.sh bin

ci: build vet vet-self test test-checked race test-lifecycle test-spill fuzz-smoke bench-smoke bench-hotpath-smoke bench-spill-smoke serve-smoke
