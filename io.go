package fastcc

import (
	"compress/gzip"
	"io"
	"os"
	"strings"

	"fastcc/internal/coo"
	"fastcc/internal/tnsbin"
)

// ReadTNS parses a FROSTT-style .tns stream (1-based coordinates, value
// last; '#' comments ignored). Mode extents come from a "# dims:" header
// when present, otherwise from the maximum coordinate per mode.
func ReadTNS(r io.Reader) (*Tensor, error) { return coo.ReadTNS(r) }

// WriteTNS writes the tensor in .tns format with a "# dims:" header.
func WriteTNS(w io.Writer, t *Tensor) error { return coo.WriteTNS(w, t) }

// ReadBTNS parses the compact binary tensor format (see internal/tnsbin):
// delta-encoded sorted coordinates with a CRC-32 trailer, typically 3-6×
// smaller and much faster to parse than .tns.
func ReadBTNS(r io.Reader) (*Tensor, error) { return tnsbin.Read(r) }

// WriteBTNS writes the binary tensor format. The tensor is canonicalized
// (sorted, deduplicated) into the stream; t itself is not modified.
func WriteBTNS(w io.Writer, t *Tensor) error { return tnsbin.Write(w, t) }

// LoadTNS reads a tensor file from disk, dispatching on the extension:
// ".btns" selects the binary format, anything else the .tns text format;
// a final ".gz" on either enables transparent gzip decompression.
func LoadTNS(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	name := path
	if strings.HasSuffix(name, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		r = zr
		name = strings.TrimSuffix(name, ".gz")
	}
	if strings.HasSuffix(name, ".btns") {
		return ReadBTNS(r)
	}
	return ReadTNS(r)
}

// SaveTNS writes a tensor file to disk with the same extension dispatch as
// LoadTNS (".btns" → binary, ".gz" → gzip).
func SaveTNS(path string, t *Tensor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var w io.Writer = f
	var zw *gzip.Writer
	name := path
	if strings.HasSuffix(name, ".gz") {
		zw = gzip.NewWriter(f)
		w = zw
		name = strings.TrimSuffix(name, ".gz")
	}
	if strings.HasSuffix(name, ".btns") {
		err = WriteBTNS(w, t)
	} else {
		err = WriteTNS(w, t)
	}
	if err == nil && zw != nil {
		err = zw.Close()
	}
	if err != nil {
		_ = f.Close() // best effort; the write error is what matters
		return err
	}
	return f.Close()
}

// Equal reports whether two tensors have identical dims and identical
// canonicalized (sorted, deduplicated, zero-free) contents.
func Equal(a, b *Tensor) bool { return coo.Equal(a, b) }

// ApproxEqual is Equal with a per-element absolute-or-relative tolerance,
// for comparing results whose floating-point accumulation orders differ.
func ApproxEqual(a, b *Tensor, tol float64) bool { return coo.ApproxEqual(a, b, tol) }
