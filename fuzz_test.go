package fastcc

import "testing"

func FuzzParseEinsum(f *testing.F) {
	f.Add("ij,jk->ik", 2, 2)
	f.Add("iak,jbk->iajb", 3, 3)
	f.Add("abc,cd->abd", 3, 2)
	f.Add("", 0, 0)
	f.Add("->", 1, 1)
	f.Fuzz(func(t *testing.T, expr string, lo, ro int) {
		if lo < 0 || ro < 0 || lo > 16 || ro > 16 {
			return
		}
		spec, err := ParseEinsum(expr, lo, ro) // must never panic
		if err != nil {
			return
		}
		// Accepted specs must be structurally sound.
		if len(spec.CtrLeft) != len(spec.CtrRight) || len(spec.CtrLeft) == 0 {
			t.Fatalf("accepted malformed spec %+v for %q", spec, expr)
		}
		for _, m := range spec.CtrLeft {
			if m < 0 || m >= lo {
				t.Fatalf("left mode %d out of range for %q", m, expr)
			}
		}
		for _, m := range spec.CtrRight {
			if m < 0 || m >= ro {
				t.Fatalf("right mode %d out of range for %q", m, expr)
			}
		}
	})
}
