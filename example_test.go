package fastcc_test

import (
	"fmt"
	"sort"

	"fastcc"
)

// Contract two sparse matrices (a 2-mode contraction is ordinary sparse
// matrix multiplication).
func ExampleContract() {
	l := fastcc.NewTensor([]uint64{2, 2}, 2)
	l.Append([]uint64{0, 0}, 1)
	l.Append([]uint64{0, 1}, 2)
	r := fastcc.NewTensor([]uint64{2, 2}, 2)
	r.Append([]uint64{0, 0}, 3)
	r.Append([]uint64{1, 0}, 4)

	out, _, err := fastcc.Contract(l, r, fastcc.Spec{
		CtrLeft:  []int{1},
		CtrRight: []int{0},
	})
	if err != nil {
		panic(err)
	}
	out.Sort()
	fmt.Println("O[0,0] =", out.At([]uint64{0, 0}))
	// Output:
	// O[0,0] = 11
}

// The same contraction in Einstein notation.
func ExampleEinsum() {
	l := fastcc.NewTensor([]uint64{2, 3}, 1)
	l.Append([]uint64{1, 2}, 5)
	r := fastcc.NewTensor([]uint64{3, 2}, 1)
	r.Append([]uint64{2, 0}, 7)

	out, _, err := fastcc.Einsum("ik,kj->ij", l, r)
	if err != nil {
		panic(err)
	}
	fmt.Println("O[1,0] =", out.At([]uint64{1, 0}))
	// Output:
	// O[1,0] = 35
}

// A FROSTT-style self-contraction: the tensor contracted with itself over
// one mode.
func ExampleSelfContract() {
	t := fastcc.NewTensor([]uint64{2, 2}, 2)
	t.Append([]uint64{0, 1}, 2)
	t.Append([]uint64{1, 1}, 3)

	out, stats, err := fastcc.SelfContract(t, []int{1})
	if err != nil {
		panic(err)
	}
	fmt.Println("output order:", out.Order())
	fmt.Println("accumulator:", stats.Decision.Kind)
	// Output:
	// output order: 2
	// accumulator: dense
}

// A three-tensor network evaluated with model-driven pairwise planning.
func ExampleEinsumN() {
	t1 := fastcc.NewTensor([]uint64{2, 2}, 1)
	t1.Append([]uint64{0, 1}, 2)
	t2 := fastcc.NewTensor([]uint64{2, 2}, 1)
	t2.Append([]uint64{1, 0}, 3)
	t3 := fastcc.NewTensor([]uint64{2, 2}, 1)
	t3.Append([]uint64{0, 1}, 4)

	out, plan, err := fastcc.EinsumN("ik,kl,lm->im", []*fastcc.Tensor{t1, t2, t3})
	if err != nil {
		panic(err)
	}
	fmt.Println("steps:", len(plan.Steps))
	fmt.Println("O[0,1] =", out.At([]uint64{0, 1}))
	// Output:
	// steps: 2
	// O[0,1] = 24
}

// Inspect the probabilistic model's decision without contracting.
func ExampleStats() {
	t := fastcc.NewTensor([]uint64{64, 64}, 3)
	t.Append([]uint64{1, 2}, 1)
	t.Append([]uint64{3, 4}, 1)
	t.Append([]uint64{5, 6}, 1)

	_, stats, err := fastcc.SelfContract(t, []int{1}, fastcc.WithPlatform(fastcc.Desktop8))
	if err != nil {
		panic(err)
	}
	kinds := []string{stats.Decision.Kind.String()}
	sort.Strings(kinds)
	fmt.Println("dense tile bound:", stats.Decision.DenseT)
	// Output:
	// dense tile bound: 512
}
