// Benchmarks regenerating the paper's tables and figures as testing.B
// targets, one family per table/figure. These run at small scale so the
// full suite finishes in minutes; use cmd/fastcc-bench for the paper-style
// sweeps and tables at configurable scale.
package fastcc_test

import (
	"testing"

	"fastcc"
	"fastcc/internal/baselines"
	"fastcc/internal/coo"
	"fastcc/internal/experiments"
	"fastcc/internal/gen"
	"fastcc/internal/model"
)

// benchConfig returns the workload scales used by all benchmarks.
func benchConfig() experiments.Config {
	cfg := experiments.Default()
	cfg.ScaleFROSTT = 0.002
	cfg.ScaleQC = 0.08
	cfg.Platform = model.Desktop8
	return cfg
}

// loadCase materializes one catalog case at benchmark scale.
func loadCase(b *testing.B, id string) (*fastcc.Tensor, *fastcc.Tensor, fastcc.Spec) {
	b.Helper()
	cs, err := experiments.CaseByID(id)
	if err != nil {
		b.Fatal(err)
	}
	l, r, spec, err := cs.Load(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	return l, r, spec
}

// benchFastCC times the full FaSTCC pipeline on one case.
func benchFastCC(b *testing.B, id string, opts ...fastcc.Option) {
	l, r, spec := loadCase(b, id)
	opts = append(opts, fastcc.WithPlatform(model.Desktop8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fastcc.Contract(l, r, spec, opts...); err != nil {
			b.Fatal(err)
		}
	}
}

// matrixPair builds a uniform matrixized operand pair for the loop-order
// benchmarks (Table 1's analysis workload).
func matrixPair(b *testing.B, ext, ctr uint64, nnz int) (*coo.Matrix, *coo.Matrix) {
	b.Helper()
	l, err := gen.UniformMatrix(ext, ctr, nnz, 1, gen.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r, err := gen.UniformMatrix(ext, ctr, nnz, 2, gen.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return l, r
}

// --- Table 1: loop-order data-access costs -------------------------------

func BenchmarkTable1_LoopOrder_CI(b *testing.B) {
	l, r := matrixPair(b, 256, 64, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baselines.HashCI(l, r, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_LoopOrder_CM(b *testing.B) {
	l, r := matrixPair(b, 256, 64, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baselines.SpartaCM(l, r, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_LoopOrder_CO(b *testing.B) {
	l, r := matrixPair(b, 256, 64, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baselines.UntiledCO(l, r, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: FROSTT workload generation ---------------------------------

func BenchmarkTable2_GenerateChicago(b *testing.B) {
	spec, err := gen.FrosttByName("chicago")
	if err != nil {
		b.Fatal(err)
	}
	sc := spec.Scaled(0.002)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Generate(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 3: dense vs sparse accumulator, model choice -------------------

func BenchmarkTable3_Chicago01_Dense(b *testing.B) {
	benchFastCC(b, "chicago-01", fastcc.WithAccumulator(fastcc.AccumDense))
}

func BenchmarkTable3_Chicago01_Sparse(b *testing.B) {
	benchFastCC(b, "chicago-01", fastcc.WithAccumulator(fastcc.AccumSparse))
}

func BenchmarkTable3_Nips2_Sparse(b *testing.B) {
	benchFastCC(b, "nips-2", fastcc.WithAccumulator(fastcc.AccumSparse))
}

func BenchmarkTable3_GuanineVVOV_Model(b *testing.B) {
	benchFastCC(b, "guanine-vvov")
}

// --- Figure 2: FaSTCC vs Sparta -------------------------------------------

func benchSparta(b *testing.B, id string) {
	l, r, spec := loadCase(b, id)
	extL := coo.ExternalModes(l.Order(), spec.CtrLeft)
	extR := coo.ExternalModes(r.Order(), spec.CtrRight)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lm, err := l.Matrixize(extL, spec.CtrLeft)
		if err != nil {
			b.Fatal(err)
		}
		rm, err := r.Matrixize(extR, spec.CtrRight)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := baselines.SpartaCM(lm, rm, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2_FROSTT_Sparta(b *testing.B) { benchSparta(b, "chicago-0") }
func BenchmarkFig2_FROSTT_FaSTCC(b *testing.B) { benchFastCC(b, "chicago-0") }
func BenchmarkFig2_QC_Sparta(b *testing.B)     { benchSparta(b, "guanine-vvov") }
func BenchmarkFig2_QC_FaSTCC(b *testing.B)     { benchFastCC(b, "guanine-vvov") }
func BenchmarkFig2_Uber02_Sparta(b *testing.B) { benchSparta(b, "uber-02") }
func BenchmarkFig2_Uber02_FaSTCC(b *testing.B) { benchFastCC(b, "uber-02") }
func BenchmarkFig2_Vast01_Sparta(b *testing.B) { benchSparta(b, "vast-01") }
func BenchmarkFig2_Vast01_FaSTCC(b *testing.B) { benchFastCC(b, "vast-01") }

// --- Figure 3: thread scaling ---------------------------------------------

func BenchmarkFig3_Chicago0_1T(b *testing.B) {
	benchFastCC(b, "chicago-0", fastcc.WithThreads(1))
}

func BenchmarkFig3_Chicago0_2T(b *testing.B) {
	benchFastCC(b, "chicago-0", fastcc.WithThreads(2))
}

func BenchmarkFig3_Chicago0_4T(b *testing.B) {
	benchFastCC(b, "chicago-0", fastcc.WithThreads(4))
}

func BenchmarkFig3_Chicago0_MaxT(b *testing.B) {
	benchFastCC(b, "chicago-0", fastcc.WithThreads(0))
}

// --- Figure 4: tile-size sweep --------------------------------------------

func BenchmarkFig4_Tile64(b *testing.B) {
	benchFastCC(b, "chicago-01", fastcc.WithTileSize(64, 64))
}

func BenchmarkFig4_Tile512(b *testing.B) {
	benchFastCC(b, "chicago-01", fastcc.WithTileSize(512, 512))
}

func BenchmarkFig4_Tile2048(b *testing.B) {
	benchFastCC(b, "chicago-01", fastcc.WithTileSize(2048, 2048))
}

// --- Figure 5: sequential FaSTCC vs TACO CI --------------------------------

func BenchmarkFig5_TacoCI(b *testing.B) {
	l, r, spec := loadCase(b, "uber-02")
	extL := coo.ExternalModes(l.Order(), spec.CtrLeft)
	extR := coo.ExternalModes(r.Order(), spec.CtrRight)
	lm, err := l.Matrixize(extL, spec.CtrLeft)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := r.Matrixize(extR, spec.CtrRight)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baselines.TacoCI(lm, rm, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_FaSTCC1T(b *testing.B) {
	benchFastCC(b, "uber-02", fastcc.WithThreads(1))
}

// --- Ablation benches (design choices called out in DESIGN.md) ------------

func BenchmarkAblate_InputRep_Hash(b *testing.B) {
	benchFastCC(b, "chicago-0", fastcc.WithInputRep(fastcc.RepHash))
}

func BenchmarkAblate_InputRep_Sorted(b *testing.B) {
	benchFastCC(b, "chicago-0", fastcc.WithInputRep(fastcc.RepSorted))
}

func BenchmarkAblate_UntiledCO(b *testing.B) {
	l, r, spec := loadCase(b, "chicago-01")
	extL := coo.ExternalModes(l.Order(), spec.CtrLeft)
	extR := coo.ExternalModes(r.Order(), spec.CtrRight)
	lm, err := l.Matrixize(extL, spec.CtrLeft)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := r.Matrixize(extR, spec.CtrRight)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baselines.UntiledCO(lm, rm, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblate_TiledCO(b *testing.B) {
	benchFastCC(b, "chicago-01", fastcc.WithThreads(1))
}
