package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"fastcc"
)

// Client is the Go-side counterpart of the HTTP surface: upload operands,
// run contractions by content hash, fetch results. One Client speaks for
// one tenant; it is safe for concurrent use.
type Client struct {
	base   string // server base URL, no trailing slash
	tenant string
	hc     *http.Client
}

// NewClient creates a client for the server at base (e.g.
// "http://127.0.0.1:8080") acting as the given tenant. httpClient may be
// nil for http.DefaultClient.
func NewClient(base, tenant string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, tenant: tenant, hc: httpClient}
}

// APIError is a non-2xx response decoded from the server's error envelope.
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d %s: %s", e.Status, e.Code, e.Message)
}

// do sends a request with the tenant header and decodes error envelopes.
// On success the caller owns the returned body and must close it.
func (c *Client) do(ctx context.Context, method, path string, contentType string, body io.Reader) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set(TenantHeader, c.tenant)
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp.Body, nil
	}
	defer resp.Body.Close()
	var env errorBody
	if jerr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&env); jerr != nil || env.Error.Code == "" {
		return nil, &APIError{Status: resp.StatusCode, Code: "unknown", Message: resp.Status}
	}
	return nil, &APIError{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message}
}

func (c *Client) doJSON(ctx context.Context, method, path string, body io.Reader, out any) error {
	rc, err := c.do(ctx, method, path, "application/json", body)
	if err != nil {
		return err
	}
	defer rc.Close()
	if out == nil {
		_, err := io.Copy(io.Discard, rc)
		return err
	}
	return json.NewDecoder(rc).Decode(out)
}

// Upload registers t with the server and returns its content hash.
func (c *Client) Upload(ctx context.Context, t *fastcc.Tensor) (string, error) {
	var buf bytes.Buffer
	if err := fastcc.WriteBTNS(&buf, t); err != nil {
		return "", err
	}
	rc, err := c.do(ctx, http.MethodPost, "/v1/operands", "application/octet-stream", &buf)
	if err != nil {
		return "", err
	}
	defer rc.Close()
	var resp UploadResponse
	if err := json.NewDecoder(rc).Decode(&resp); err != nil {
		return "", err
	}
	return resp.Hash, nil
}

// Contract runs the contraction described by req on the server and returns
// the acknowledgement; fetch the output with Fetch(resp.ResultID).
func (c *Client) Contract(ctx context.Context, req *ContractRequest) (*ContractResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp ContractResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/contract", bytes.NewReader(body), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Fetch downloads a contraction result as a tensor.
func (c *Client) Fetch(ctx context.Context, resultID string) (*fastcc.Tensor, error) {
	rc, err := c.do(ctx, http.MethodGet, "/v1/results/"+resultID, "", nil)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return fastcc.ReadBTNS(rc)
}

// Release drops this tenant's reference on an uploaded operand.
func (c *Client) Release(ctx context.Context, hash string) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/operands/"+hash, nil, nil)
}

// DeleteResult removes a stored result.
func (c *Client) DeleteResult(ctx context.Context, resultID string) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/results/"+resultID, nil, nil)
}

// Stats fetches the server's observability snapshot.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.doJSON(ctx, http.MethodGet, "/v1/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
