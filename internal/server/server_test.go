package server

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fastcc"
)

// randTensor builds a random COO tensor with unique coordinates, so the
// canonical (deduplicated) encoding the server stores is value-identical to
// the original and server results can be compared bit-for-bit against
// direct contractions.
func randTensor(rng *rand.Rand, dims []uint64, nnz int) *fastcc.Tensor {
	t := fastcc.NewTensor(dims, nnz)
	coords := make([]uint64, len(dims))
	seen := make(map[string]bool, nnz)
	key := make([]byte, 0, 16*len(dims))
	for i := 0; i < nnz; i++ {
		key = key[:0]
		for m, d := range dims {
			coords[m] = rng.Uint64() % d
			key = append(key, byte(coords[m]), byte(coords[m]>>8), ',')
		}
		if seen[string(key)] {
			continue
		}
		seen[string(key)] = true
		t.Append(coords, rng.NormFloat64())
	}
	return t
}

// canon round-trips t through its canonical BTNS encoding — the form the
// server stores. Accumulation order follows operand order, so bit-identical
// comparisons against direct contractions must start from the same
// canonical operand bytes the server sees.
func canon(t *testing.T, x *fastcc.Tensor) *fastcc.Tensor {
	t.Helper()
	var buf bytes.Buffer
	if err := fastcc.WriteBTNS(&buf, x); err != nil {
		t.Fatal(err)
	}
	c, err := fastcc.ReadBTNS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// newTestServer starts a Server over httptest and returns a client bound to
// the given tenant. Cleanup closes the HTTP listener and then asserts the
// Server's own leak check passes.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, func(tenant string) *Client) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return srv, hs, func(tenant string) *Client {
		return NewClient(hs.URL, tenant, hs.Client())
	}
}

func TestServerRoundTrip(t *testing.T) {
	_, _, client := newTestServer(t, Config{Threads: 2})
	c := client("round-trip")
	ctx := context.Background()

	rng := rand.New(rand.NewSource(101))
	l := canon(t, randTensor(rng, []uint64{30, 25}, 240))
	r := canon(t, randTensor(rng, []uint64{25, 20}, 220))
	// Same thread count as the server: the tile-grid decision depends on
	// it, and a different grid means a different accumulation order.
	want, _, err := fastcc.Contract(l, r, fastcc.Spec{CtrLeft: []int{1}, CtrRight: []int{0}},
		fastcc.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}

	lh, err := c.Upload(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := c.Upload(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if lh == rh {
		t.Fatal("distinct tensors hashed identically")
	}

	// Re-uploading the same content is idempotent: same hash, charged once.
	lh2, err := c.Upload(ctx, l.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if lh2 != lh {
		t.Fatalf("same content hashed differently: %s vs %s", lh2, lh)
	}

	resp, err := c.Contract(ctx, &ContractRequest{Left: lh, Right: rh, Expr: "ik,kl->il"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Fetch(ctx, resp.ResultID)
	if err != nil {
		t.Fatal(err)
	}
	if !fastcc.Equal(got, want) {
		t.Fatal("server contraction differs from direct Contract")
	}

	// Warm second run over the same operands reuses the cached shards.
	resp2, err := c.Contract(ctx, &ContractRequest{Left: lh, Right: rh, Expr: "ik,kl->il"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.ShardReused {
		t.Error("second identical contraction did not report a shard-cache hit")
	}

	// Spec form (explicit mode lists) agrees with the einsum form.
	resp3, err := c.Contract(ctx, &ContractRequest{Left: lh, Right: rh, CtrLeft: []int{1}, CtrRight: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	got3, err := c.Fetch(ctx, resp3.ResultID)
	if err != nil {
		t.Fatal(err)
	}
	if !fastcc.Equal(got3, want) {
		t.Fatal("spec-form contraction differs from einsum form")
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Operands != 2 || st.Results != 3 {
		t.Fatalf("stats report %d operands / %d results, want 2 / 3", st.Operands, st.Results)
	}
	if st.UploadedBytes == 0 {
		t.Fatal("stats report zero uploaded bytes for an uploading tenant")
	}

	// Cleanup via the API: results and operand references go away.
	for _, id := range []string{resp.ResultID, resp2.ResultID, resp3.ResultID} {
		if err := c.DeleteResult(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Release(ctx, lh); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(ctx, rh); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Operands != 0 || st.Results != 0 || st.UploadedBytes != 0 {
		t.Fatalf("after cleanup: %d operands / %d results / %d uploaded bytes, want zeros",
			st.Operands, st.Results, st.UploadedBytes)
	}
}

// apiErrorCode extracts the server's error envelope code, failing the test
// on any other error shape.
func apiErrorCode(t *testing.T, err error) (status int, code string) {
	t.Helper()
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v (%T) is not an *APIError", err, err)
	}
	return ae.Status, ae.Code
}

func TestServerErrorPaths(t *testing.T) {
	_, hs, client := newTestServer(t, Config{Threads: 1})
	c := client("errors-tenant")
	ctx := context.Background()

	rng := rand.New(rand.NewSource(103))
	l := randTensor(rng, []uint64{10, 8}, 40)
	r := randTensor(rng, []uint64{8, 6}, 30)
	lh, err := c.Upload(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := c.Upload(ctx, r)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad expression", func(t *testing.T) {
		_, err := c.Contract(ctx, &ContractRequest{Left: lh, Right: rh, Expr: "ik,kl"})
		if s, code := apiErrorCode(t, err); s != 400 || code != "bad_expr" {
			t.Fatalf("got %d %s, want 400 bad_expr", s, code)
		}
	})
	t.Run("bad spec", func(t *testing.T) {
		_, err := c.Contract(ctx, &ContractRequest{Left: lh, Right: rh, CtrLeft: []int{7}, CtrRight: []int{0}})
		if s, code := apiErrorCode(t, err); s != 400 || code != "bad_spec" {
			t.Fatalf("got %d %s, want 400 bad_spec", s, code)
		}
	})
	t.Run("expr and spec together", func(t *testing.T) {
		_, err := c.Contract(ctx, &ContractRequest{Left: lh, Right: rh, Expr: "ik,kl->il", CtrLeft: []int{1}, CtrRight: []int{0}})
		if s, code := apiErrorCode(t, err); s != 400 || code != "bad_spec" {
			t.Fatalf("got %d %s, want 400 bad_spec", s, code)
		}
	})
	t.Run("shape mismatch", func(t *testing.T) {
		// Contract the external modes against each other: extents 10 vs 6.
		_, err := c.Contract(ctx, &ContractRequest{Left: lh, Right: rh, CtrLeft: []int{0}, CtrRight: []int{1}})
		if s, code := apiErrorCode(t, err); s != 400 || code != "shape_mismatch" {
			t.Fatalf("got %d %s, want 400 shape_mismatch", s, code)
		}
	})
	t.Run("unknown operand hash", func(t *testing.T) {
		_, err := c.Contract(ctx, &ContractRequest{Left: strings.Repeat("0", 64), Right: rh, Expr: "ik,kl->il"})
		if s, code := apiErrorCode(t, err); s != 404 || code != "unknown_operand" {
			t.Fatalf("got %d %s, want 404 unknown_operand", s, code)
		}
	})
	t.Run("cross-tenant operand is invisible", func(t *testing.T) {
		other := client("errors-other")
		_, err := other.Contract(ctx, &ContractRequest{Left: lh, Right: rh, Expr: "ik,kl->il"})
		if s, code := apiErrorCode(t, err); s != 404 || code != "unknown_operand" {
			t.Fatalf("got %d %s, want 404 unknown_operand", s, code)
		}
	})
	t.Run("unknown result", func(t *testing.T) {
		_, err := c.Fetch(ctx, "r-nope")
		if s, code := apiErrorCode(t, err); s != 404 || code != "unknown_result" {
			t.Fatalf("got %d %s, want 404 unknown_result", s, code)
		}
	})
	t.Run("cross-tenant result is invisible", func(t *testing.T) {
		resp, err := c.Contract(ctx, &ContractRequest{Left: lh, Right: rh, Expr: "ik,kl->il"})
		if err != nil {
			t.Fatal(err)
		}
		other := client("errors-other")
		if _, err := other.Fetch(ctx, resp.ResultID); err == nil {
			t.Fatal("another tenant fetched a foreign result")
		} else if s, code := apiErrorCode(t, err); s != 404 || code != "unknown_result" {
			t.Fatalf("got %d %s, want 404 unknown_result", s, code)
		}
	})
	t.Run("missing tenant header", func(t *testing.T) {
		anon := NewClient(hs.URL, "", hs.Client())
		_, err := anon.Stats(ctx)
		if s, code := apiErrorCode(t, err); s != 400 || code != "bad_option" {
			t.Fatalf("got %d %s, want 400 bad_option", s, code)
		}
	})
	t.Run("invalid tenant header", func(t *testing.T) {
		bad := NewClient(hs.URL, strings.Repeat("x", 129), hs.Client())
		_, err := bad.Stats(ctx)
		if s, code := apiErrorCode(t, err); s != 400 || code != "bad_option" {
			t.Fatalf("got %d %s, want 400 bad_option", s, code)
		}
	})
	t.Run("garbage upload body", func(t *testing.T) {
		rc, err := c.do(ctx, "POST", "/v1/operands", "application/octet-stream", bytes.NewReader([]byte("not a tensor")))
		if err == nil {
			rc.Close()
			t.Fatal("garbage body accepted")
		}
		if s, code := apiErrorCode(t, err); s != 400 || code != "bad_spec" {
			t.Fatalf("got %d %s, want 400 bad_spec", s, code)
		}
	})
}

func TestServerUploadQuota(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	big := randTensor(rng, []uint64{50, 50}, 400)
	quota := estimateBytes(big) + 100 // room for one big tensor, not two

	_, _, client := newTestServer(t, Config{UploadQuota: quota})
	c := client("quota-tenant")
	ctx := context.Background()

	if _, err := c.Upload(ctx, big); err != nil {
		t.Fatal(err)
	}
	big2 := randTensor(rng, []uint64{50, 50}, 400)
	_, err := c.Upload(ctx, big2)
	if s, code := apiErrorCode(t, err); s != 429 || code != "over_upload_quota" {
		t.Fatalf("second upload: got %d %s, want 429 over_upload_quota", s, code)
	}

	// Another tenant has its own quota — the same content registers fine,
	// dedup'd against the stored copy.
	c2 := client("quota-other")
	if _, err := c2.Upload(ctx, big.Clone()); err != nil {
		t.Fatalf("dedup'd upload by a fresh tenant: %v", err)
	}

	// Releasing frees the quota for the first tenant.
	h, err := ContentHash(big)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Release(ctx, h); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Upload(ctx, big2); err != nil {
		t.Fatalf("upload after release: %v", err)
	}
}

func TestServerQueueFullAndTimeout(t *testing.T) {
	srv, _, client := newTestServer(t, Config{
		Threads: 1, Inflight: 1, Queue: -1, Timeout: 100 * time.Millisecond,
	})
	c := client("queue-tenant")
	ctx := context.Background()

	rng := rand.New(rand.NewSource(109))
	l := randTensor(rng, []uint64{10, 8}, 40)
	r := randTensor(rng, []uint64{8, 6}, 30)
	lh, err := c.Upload(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := c.Upload(ctx, r)
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the only in-flight slot directly; with Queue=0 the next
	// contraction is rejected immediately.
	release, err := srv.adm.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer release() // idempotent; keeps a t.Fatal above from deadlocking Drain
	_, err = c.Contract(ctx, &ContractRequest{Left: lh, Right: rh, Expr: "ik,kl->il"})
	if s, code := apiErrorCode(t, err); s != 429 || code != "queue_full" {
		t.Fatalf("saturated server: got %d %s, want 429 queue_full", s, code)
	}
	release()

	if _, err := c.Contract(ctx, &ContractRequest{Left: lh, Right: rh, Expr: "ik,kl->il"}); err != nil {
		t.Fatalf("contraction after release: %v", err)
	}
}

func TestServerDeadlineMidQueue(t *testing.T) {
	srv, _, client := newTestServer(t, Config{
		Threads: 1, Inflight: 1, Queue: 4, Timeout: 80 * time.Millisecond,
	})
	c := client("deadline-tenant")
	ctx := context.Background()

	rng := rand.New(rand.NewSource(113))
	l := randTensor(rng, []uint64{10, 8}, 40)
	r := randTensor(rng, []uint64{8, 6}, 30)
	lh, err := c.Upload(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := c.Upload(ctx, r)
	if err != nil {
		t.Fatal(err)
	}

	// Hold the slot past the server's per-request timeout: the queued
	// request is evicted with 504 while the client is still waiting.
	release, err := srv.adm.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, err = c.Contract(ctx, &ContractRequest{Left: lh, Right: rh, Expr: "ik,kl->il"})
	if s, code := apiErrorCode(t, err); s != 504 || code != "deadline_exceeded" {
		t.Fatalf("queued past deadline: got %d %s, want 504 deadline_exceeded", s, code)
	}
}

func TestServerClientCancelMidQueue(t *testing.T) {
	srv, _, client := newTestServer(t, Config{Threads: 1, Inflight: 1, Queue: 4})
	c := client("cancel-tenant")
	ctx := context.Background()

	rng := rand.New(rand.NewSource(127))
	l := randTensor(rng, []uint64{10, 8}, 40)
	r := randTensor(rng, []uint64{8, 6}, 30)
	lh, err := c.Upload(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := c.Upload(ctx, r)
	if err != nil {
		t.Fatal(err)
	}

	release, err := srv.adm.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// The client hangs up while queued; its own context error surfaces and
	// the server's queue drains back to empty.
	cctx, cancel := context.WithCancel(ctx)
	errs := make(chan error, 1)
	go func() {
		_, err := c.Contract(cctx, &ContractRequest{Left: lh, Right: rh, Expr: "ik,kl->il"})
		errs <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for srv.adm.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errs:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled client: err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled client call did not return")
	}
	for srv.adm.Queued() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue did not drain: %d still queued", srv.adm.Queued())
		}
		time.Sleep(time.Millisecond)
	}
}
