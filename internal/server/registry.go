// Package server implements the multi-tenant contraction service behind
// cmd/fastcc-serve: a content-addressed operand registry, request admission
// over a bounded ticket pool, and an HTTP/JSON surface (with binary BTNS
// bodies for tensor payloads) that maps the package's typed errors onto
// status codes.
//
// Operands are identified by the SHA-256 of their canonical BTNS encoding
// (tnsbin.Write sorts and deduplicates, so two uploads of the same logical
// tensor — whatever order their triples arrived in — collapse to one entry).
// Entries are shared across tenants: each tenant referencing an operand is
// charged its full estimated bytes against an upload quota, mirroring the
// shard cache's conservative per-tenant charging (DESIGN.md), while the
// process stores one copy.
package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"fastcc"
)

// Registry errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrUnknownOperand reports a content hash with no registered operand
	// (never uploaded, or released by every tenant).
	ErrUnknownOperand = errors.New("server: unknown operand hash")

	// ErrOverUploadQuota reports that admitting an upload would push the
	// tenant's referenced-operand bytes past its upload quota.
	ErrOverUploadQuota = errors.New("server: tenant over upload quota")
)

// operandEntry is one content-addressed tensor plus the prepared operands
// derived from it, shared by every referencing tenant.
type operandEntry struct {
	hash  string
	t     *fastcc.Tensor
	bytes int64           // estimated resident size, charged per tenant
	refs  map[string]bool // tenants referencing this entry

	mu       sync.Mutex
	prepared map[string]*fastcc.Sharded // by contracted-modes key
}

// modesKey canonicalizes a contracted-modes list into a map key.
func modesKey(modes []int) string { return fmt.Sprint(modes) }

// spillKey derives the content key naming a prepared operand's spill files:
// the tensor's content hash plus a contracted-modes tag, so two mode lists
// over the same tensor (different matrixizations) never share a file name,
// and a restarted daemon deriving the same hash + modes adopts the previous
// process's on-disk shard images.
func spillKey(hash string, modes []int) string {
	var sb strings.Builder
	sb.WriteString(hash)
	sb.WriteString("-m")
	for i, m := range modes {
		if i > 0 {
			sb.WriteByte('_')
		}
		fmt.Fprintf(&sb, "%d", m)
	}
	return sb.String()
}

// sharded returns the entry's prepared operand for the given contracted
// modes, building and caching it on first use. Concurrent requests for the
// same key share one *Sharded (the heavy per-tile build is cached inside it).
func (e *operandEntry) sharded(modes []int) (*fastcc.Sharded, error) {
	key := modesKey(modes)
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.prepared[key]; ok {
		return s, nil
	}
	s, err := fastcc.PreshardKeyed(e.t, modes, spillKey(e.hash, modes))
	if err != nil {
		return nil, err
	}
	e.prepared[key] = s
	return s, nil
}

// drop releases every prepared operand's cached shards.
func (e *operandEntry) drop() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range e.prepared {
		s.Drop()
	}
	e.prepared = map[string]*fastcc.Sharded{}
}

// Registry is the content-addressed operand store. All methods are safe for
// concurrent use.
type Registry struct {
	mu          sync.Mutex
	operands    map[string]*operandEntry
	charged     map[string]int64 // tenant -> bytes of referenced operands
	uploadQuota int64            // per tenant; <= 0 means unlimited
}

// NewRegistry creates an empty registry with the given per-tenant upload
// quota in estimated operand bytes (<= 0 disables the quota).
func NewRegistry(uploadQuota int64) *Registry {
	return &Registry{
		operands:    map[string]*operandEntry{},
		charged:     map[string]int64{},
		uploadQuota: uploadQuota,
	}
}

// estimateBytes is the registry's resident-size estimate for a tensor:
// one uint64 coordinate per mode plus one float64 value per nonzero.
func estimateBytes(t *fastcc.Tensor) int64 {
	return int64(t.NNZ()) * int64(t.Order()+1) * 8
}

// ContentHash returns the hex SHA-256 of t's canonical BTNS encoding — the
// operand identity used by the registry and the HTTP surface.
func ContentHash(t *fastcc.Tensor) (string, error) {
	var buf bytes.Buffer
	if err := fastcc.WriteBTNS(&buf, t); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// Register stores t (or dedups against an existing entry with the same
// canonical content) and charges it to tenant's upload quota. Registering
// the same content twice for one tenant is idempotent and charged once.
func (r *Registry) Register(tenant string, t *fastcc.Tensor) (hash string, err error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	hash, err = ContentHash(t)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.operands[hash]
	if !ok {
		e = &operandEntry{
			hash:     hash,
			t:        t,
			bytes:    estimateBytes(t),
			refs:     map[string]bool{},
			prepared: map[string]*fastcc.Sharded{},
		}
	}
	if !e.refs[tenant] {
		if r.uploadQuota > 0 && r.charged[tenant]+e.bytes > r.uploadQuota {
			return "", fmt.Errorf("%w: %q would hold %d bytes, quota %d",
				ErrOverUploadQuota, tenant, r.charged[tenant]+e.bytes, r.uploadQuota)
		}
		e.refs[tenant] = true
		r.charged[tenant] += e.bytes
	}
	r.operands[hash] = e
	return hash, nil
}

// Lookup returns the entry for hash if tenant references it. A hash another
// tenant uploaded but this one never registered is reported as unknown —
// content addresses are not a cross-tenant discovery channel.
func (r *Registry) Lookup(tenant, hash string) (*operandEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.operands[hash]
	if !ok || !e.refs[tenant] {
		return nil, fmt.Errorf("%w: %s", ErrUnknownOperand, hash)
	}
	return e, nil
}

// Release drops tenant's reference on hash, refunds its upload-quota charge,
// and — when the last reference goes — drops the entry's prepared operands
// and forgets the tensor.
func (r *Registry) Release(tenant, hash string) error {
	r.mu.Lock()
	e, ok := r.operands[hash]
	if !ok || !e.refs[tenant] {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownOperand, hash)
	}
	delete(e.refs, tenant)
	r.charged[tenant] -= e.bytes
	if r.charged[tenant] <= 0 {
		delete(r.charged, tenant)
	}
	last := len(e.refs) == 0
	if last {
		delete(r.operands, hash)
	}
	r.mu.Unlock()
	if last {
		e.drop() // outside r.mu: Drop may block on in-flight readers
	}
	return nil
}

// ReleaseTenant drops every reference tenant holds, as if Release were
// called per hash. Used when a tenant disconnects for good.
func (r *Registry) ReleaseTenant(tenant string) {
	r.mu.Lock()
	var orphaned []*operandEntry
	for hash, e := range r.operands {
		if !e.refs[tenant] {
			continue
		}
		delete(e.refs, tenant)
		if len(e.refs) == 0 {
			delete(r.operands, hash)
			orphaned = append(orphaned, e)
		}
	}
	delete(r.charged, tenant)
	r.mu.Unlock()
	for _, e := range orphaned {
		e.drop()
	}
}

// Close drops every entry regardless of references. After Close the
// registry is empty but remains usable.
func (r *Registry) Close() {
	r.mu.Lock()
	entries := make([]*operandEntry, 0, len(r.operands))
	for _, e := range r.operands {
		entries = append(entries, e)
	}
	r.operands = map[string]*operandEntry{}
	r.charged = map[string]int64{}
	r.mu.Unlock()
	for _, e := range entries {
		e.drop()
	}
}

// Charged reports the upload-quota bytes currently charged to tenant.
func (r *Registry) Charged(tenant string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.charged[tenant]
}

// Stats reports the registry's aggregate footprint and the tenants holding
// references, sorted by ID.
func (r *Registry) Stats() (operands int, bytes int64, tenants []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.operands {
		bytes += e.bytes
	}
	for id := range r.charged {
		tenants = append(tenants, id)
	}
	sort.Strings(tenants)
	return len(r.operands), bytes, tenants
}
