package server

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"fastcc"
)

// TestServerSoakManyTenants is the PR's acceptance soak: 64 concurrent
// tenants with distinct operands hammer one server whose shard cache is
// deliberately far too small for the combined working set, under per-tenant
// quotas. Every response must be bit-identical to a direct contraction of
// the same canonical operands, per-tenant charges must respect the quotas
// at quiescence, and shutting the server down must leave every leak gauge
// at its baseline. Run it under -race (the CI gate does).
func TestServerSoakManyTenants(t *testing.T) {
	const (
		tenants     = 64
		runsEach    = 3
		cacheBudget = 64 << 10 // bytes; far below 64 tenants' working sets
		tenantQuota = 16 << 10
	)

	srv, err := New(Config{
		Threads:     2,
		CacheBudget: cacheBudget,
		TenantQuota: tenantQuota,
		Inflight:    8,
		Queue:       2 * tenants,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())

	hammerTenants(t, hs.URL, tenants)

	// Quiescent: every tenant's run-exit enforcement has settled, so no
	// account may exceed its quota (pins are all released).
	for _, ts := range fastcc.AllTenantCacheStats() {
		if ts.Bytes > tenantQuota {
			t.Errorf("tenant %s holds %d bytes at quiescence, quota %d", ts.ID, ts.Bytes, ts.QuotaBytes)
		}
	}
	cs := fastcc.ShardCacheStats()
	if cs.Evictions == 0 {
		t.Error("soak produced no evictions — cache budget was not under pressure")
	}

	// Clean shutdown: HTTP listener first, then the Server's own leak check
	// (shard cache and output chunks back to the New-time baseline).
	hs.Close()
	if err := srv.Close(); err != nil {
		t.Errorf("leak check at shutdown: %v", err)
	}
}

// TestServerSoakSpillChurn is the disk-tier soak: 128 concurrent tenants
// against a shard cache so small that almost every working set spills, with
// a spill directory big enough to keep the evicted shards on disk. Every
// response must still be bit-identical to a direct contraction (the reload
// path is on the hot serving path here), and after shutdown both the leak
// gauges and the spill directory itself must be empty — a surviving .fspl
// file is a disk leak the server Close reports. Run under -race (the CI
// gate does).
func TestServerSoakSpillChurn(t *testing.T) {
	const (
		tenants     = 128
		cacheBudget = 32 << 10 // bytes of RAM tier; forces constant eviction
		spillBudget = 64 << 20 // disk tier holds what RAM cannot
		tenantQuota = 16 << 10
	)
	spillDir := t.TempDir()
	// Spill config is process-global; restore the no-spill default so later
	// tests (and other packages' tests in this binary) are unaffected.
	defer func() {
		if err := fastcc.ConfigureSpill("", 0, false); err != nil {
			t.Errorf("disabling spill: %v", err)
		}
	}()
	base := fastcc.ShardCacheStats()

	srv, err := New(Config{
		Threads:     2,
		CacheBudget: cacheBudget,
		TenantQuota: tenantQuota,
		Inflight:    8,
		Queue:       2 * tenants,
		SpillDir:    spillDir,
		SpillBudget: spillBudget,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())

	hammerTenants(t, hs.URL, tenants)

	cs := fastcc.ShardCacheStats()
	if cs.SpillWrites-base.SpillWrites == 0 {
		t.Error("soak produced no spill writes — the disk tier was never exercised")
	}

	hs.Close()
	// Close's leak check covers the spill-file gauge (SpillPersist is off);
	// the on-disk check below catches anything the gauge missed.
	if err := srv.Close(); err != nil {
		t.Errorf("leak check at shutdown: %v", err)
	}
	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatalf("reading spill dir after shutdown: %v", err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".fspl") {
			t.Errorf("spill file %s survived shutdown", e.Name())
		}
	}
}

// hammerTenants runs n concurrent tenant lives (soakTenant) against baseURL
// and reports every failure.
func hammerTenants(t *testing.T, baseURL string, n int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := soakTenant(baseURL, i); err != nil {
				errs <- fmt.Errorf("tenant %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// soakTenant is one tenant's life: upload two distinct operands, contract
// them repeatedly (cold and warm passes), verify each download against a
// direct local contraction, then clean up via the API.
func soakTenant(baseURL string, i int) error {
	ctx := context.Background()
	c := NewClient(baseURL, fmt.Sprintf("soak-tenant-%03d", i), nil)
	rng := rand.New(rand.NewSource(int64(1000 + i)))

	// Distinct shapes and content per tenant: dims vary with the tenant
	// index so no two tenants dedup onto the same registry entry.
	d1 := uint64(20 + i%7)
	d2 := uint64(15 + i%5)
	d3 := uint64(10 + i%3)
	l := canonTensor(randTensor(rng, []uint64{d1, d2}, 200))
	r := canonTensor(randTensor(rng, []uint64{d2, d3}, 150))

	want, _, err := fastcc.Contract(l, r,
		fastcc.Spec{CtrLeft: []int{1}, CtrRight: []int{0}}, fastcc.WithThreads(2))
	if err != nil {
		return fmt.Errorf("direct contraction: %w", err)
	}

	lh, err := c.Upload(ctx, l)
	if err != nil {
		return fmt.Errorf("upload left: %w", err)
	}
	rh, err := c.Upload(ctx, r)
	if err != nil {
		return fmt.Errorf("upload right: %w", err)
	}

	for run := 0; run < runsEachSoak; run++ {
		resp, err := c.Contract(ctx, &ContractRequest{Left: lh, Right: rh, Expr: "ik,kl->il"})
		if err != nil {
			return fmt.Errorf("run %d: %w", run, err)
		}
		got, err := c.Fetch(ctx, resp.ResultID)
		if err != nil {
			return fmt.Errorf("run %d fetch: %w", run, err)
		}
		if !fastcc.Equal(got, want) {
			return fmt.Errorf("run %d: result differs from direct contraction", run)
		}
		if err := c.DeleteResult(ctx, resp.ResultID); err != nil {
			return fmt.Errorf("run %d delete: %w", run, err)
		}
	}

	if err := c.Release(ctx, lh); err != nil {
		return fmt.Errorf("release left: %w", err)
	}
	if err := c.Release(ctx, rh); err != nil {
		return fmt.Errorf("release right: %w", err)
	}
	return nil
}

const runsEachSoak = 3

// canonTensor is canon without a *testing.T, for use off the test goroutine.
func canonTensor(x *fastcc.Tensor) *fastcc.Tensor {
	var buf bytes.Buffer
	if err := fastcc.WriteBTNS(&buf, x); err != nil {
		panic(err)
	}
	c, err := fastcc.ReadBTNS(&buf)
	if err != nil {
		panic(err)
	}
	return c
}
