package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fastcc"
	"fastcc/internal/core"
	"fastcc/internal/scheduler"
)

// TenantHeader carries the caller's tenant ID on every request. The ID
// grammar is fastcc's (1–128 bytes of printable ASCII without spaces), so
// it is header-safe by construction.
const TenantHeader = "X-Fastcc-Tenant"

// Config parameterizes a Server. Zero values select the documented
// defaults.
type Config struct {
	// Threads caps worker threads per contraction (0 = GOMAXPROCS).
	Threads int
	// CacheBudget bounds the process-wide shard cache in bytes (0 = derive
	// from the platform, < 0 = unbounded); applied on every tenanted run.
	CacheBudget int64
	// TenantQuota is the per-tenant shard-cache quota in bytes, set the
	// first time a tenant touches the server (0 = no per-tenant quota).
	TenantQuota int64
	// UploadQuota bounds each tenant's referenced-operand bytes in the
	// registry (0 = unlimited).
	UploadQuota int64
	// Inflight and Queue bound concurrent contractions and the waiting
	// line behind them (defaults 2 and 16; Queue < 0 disables queueing —
	// a saturated server rejects immediately).
	Inflight, Queue int
	// Timeout bounds each contraction request end to end (default 60s).
	Timeout time.Duration
	// SpillDir enables the shard cache's disk tier: shards evicted by the
	// cache budget or a tenant quota are serialized there and read back on
	// the next request that needs them. Empty disables spilling.
	SpillDir string
	// SpillBudget bounds the spill directory's on-disk bytes (0 = unbounded).
	SpillBudget int64
	// SpillPersist keeps spill files of reloaded or dropped shards on disk
	// as adoptable orphans, so a restarted daemon pointed at the same
	// SpillDir serves its first requests from the previous process's warm
	// cache. Without it a clean shutdown leaves the directory empty (and
	// Close checks that it did).
	SpillPersist bool
}

func (c Config) withDefaults() Config {
	if c.Inflight == 0 {
		c.Inflight = 2
	}
	if c.Queue == 0 {
		c.Queue = 16
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	return c
}

// resultEntry is one finished contraction output awaiting download.
type resultEntry struct {
	tenant string
	t      *fastcc.Tensor
	nnz    int
}

// Server is the contraction service: a Registry of content-addressed
// operands, an Admission bound on concurrent contractions, and a results
// store. Create with New, expose via Handler, tear down with Close.
type Server struct {
	cfg Config
	reg *Registry
	adm *scheduler.Admission
	mux *http.ServeMux

	mu      sync.Mutex
	results map[string]*resultEntry
	tenants map[string]bool // every tenant ever seen; quota set + dropped at Close
	nextID  atomic.Int64

	// Shard-cache baseline captured at New; Close checks the deltas are
	// zero after dropping all state (the server leaks nothing it created).
	baseBytes, baseShards, baseChunks int64
}

// New creates a Server, configuring the spill tier when Config.SpillDir is
// set (a bad spill directory fails here, not on the first request). The
// shard-cache gauges observed now become the leak-check baseline for Close.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.SpillDir != "" {
		if err := fastcc.ConfigureSpill(cfg.SpillDir, cfg.SpillBudget, cfg.SpillPersist); err != nil {
			return nil, fmt.Errorf("server: opening spill dir: %w", err)
		}
	}
	cs := fastcc.ShardCacheStats()
	s := &Server{
		cfg:        cfg,
		reg:        NewRegistry(cfg.UploadQuota),
		adm:        scheduler.NewAdmission(cfg.Inflight, cfg.Queue),
		mux:        http.NewServeMux(),
		results:    map[string]*resultEntry{},
		tenants:    map[string]bool{},
		baseBytes:  cs.CachedBytes,
		baseShards: cs.Shards,
		baseChunks: core.OutputChunksOutstanding(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.tenanted(s.handleStats))
	s.mux.HandleFunc("POST /v1/operands", s.tenanted(s.handleUpload))
	s.mux.HandleFunc("DELETE /v1/operands/{hash}", s.tenanted(s.handleReleaseOperand))
	s.mux.HandleFunc("POST /v1/contract", s.tenanted(s.handleContract))
	s.mux.HandleFunc("GET /v1/results/{id}", s.tenanted(s.handleFetchResult))
	s.mux.HandleFunc("DELETE /v1/results/{id}", s.tenanted(s.handleDeleteResult))
	return s, nil
}

// Handler returns the HTTP surface; mount it on any http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains in-flight contractions, drops every result, registry entry
// and tenant account, then verifies the shard-cache and output-chunk gauges
// returned to their New-time baseline. A nonzero delta is returned as an
// error — the daemon exits nonzero on it, which is what make serve-smoke
// asserts.
func (s *Server) Close() error {
	s.adm.Drain()
	s.mu.Lock()
	s.results = map[string]*resultEntry{}
	tenants := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		tenants = append(tenants, id)
	}
	s.tenants = map[string]bool{}
	s.mu.Unlock()

	s.reg.Close()
	for _, id := range tenants {
		if err := fastcc.DropTenant(id); err != nil {
			return fmt.Errorf("server: dropping tenant %q: %w", id, err)
		}
	}

	cs := fastcc.ShardCacheStats()
	var leaks []string
	if d := cs.CachedBytes - s.baseBytes; d != 0 {
		leaks = append(leaks, fmt.Sprintf("shard-cache bytes %+d", d))
	}
	if d := cs.Shards - s.baseShards; d != 0 {
		leaks = append(leaks, fmt.Sprintf("shards %+d", d))
	}
	if d := core.OutputChunksOutstanding() - s.baseChunks; d != 0 {
		leaks = append(leaks, fmt.Sprintf("output chunks %+d", d))
	}
	// Without persist-mode, dropping every operand must also have emptied
	// the spill directory — a surviving file is a disk leak. Persist-mode
	// intentionally leaves orphans for the next process to adopt.
	if s.cfg.SpillDir != "" && !s.cfg.SpillPersist && cs.SpillFiles != 0 {
		leaks = append(leaks, fmt.Sprintf("spill files %d (%d bytes)", cs.SpillFiles, cs.SpillDiskBytes))
	}
	if leaks != nil {
		return fmt.Errorf("server: leak gauges nonzero after shutdown: %v", leaks)
	}
	return nil
}

// --- wire types ---------------------------------------------------------

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// UploadResponse acknowledges a registered operand.
type UploadResponse struct {
	Hash  string   `json:"hash"`
	NNZ   int      `json:"nnz"`
	Dims  []uint64 `json:"dims"`
	Bytes int64    `json:"bytes"`
}

// ContractRequest names two registered operands and the contraction to run
// over them: either an einsum expression or explicit contracted-mode lists.
type ContractRequest struct {
	Left  string `json:"left"`
	Right string `json:"right"`
	// Expr is an einsum expression ("ik,kl->il"); mutually exclusive with
	// CtrLeft/CtrRight.
	Expr     string `json:"expr,omitempty"`
	CtrLeft  []int  `json:"ctr_left,omitempty"`
	CtrRight []int  `json:"ctr_right,omitempty"`
}

// ContractResponse acknowledges a finished contraction; the output tensor
// is fetched separately by ResultID.
type ContractResponse struct {
	ResultID  string `json:"result_id"`
	OutputNNZ int    `json:"output_nnz"`
	// Timings in nanoseconds, from the run's Stats.
	BuildNS    int64 `json:"build_ns"`
	ContractNS int64 `json:"contract_ns"`
	TotalNS    int64 `json:"total_ns"`
	// ShardReused reports a full shard-cache hit (Build was skipped).
	ShardReused bool `json:"shard_reused"`
}

// StatsResponse is the observability snapshot GET /v1/stats returns.
type StatsResponse struct {
	Cache         fastcc.CacheStats    `json:"cache"`
	Tenants       []fastcc.TenantStats `json:"tenants"`
	InFlight      int                  `json:"in_flight"`
	Queued        int                  `json:"queued"`
	Operands      int                  `json:"operands"`
	OperandBytes  int64                `json:"operand_bytes"`
	Results       int                  `json:"results"`
	UploadedBytes int64                `json:"uploaded_bytes"` // calling tenant's registry charge
}

// --- error mapping ------------------------------------------------------

// statusCode maps the package's typed errors onto HTTP statuses: validation
// failures are the client's fault (400), unknown names are 404, resource
// exhaustion is 429, cancellation 499 (the de-facto client-closed-request
// code) and deadline expiry 504.
func statusCode(err error) (int, string) {
	switch {
	case errors.Is(err, fastcc.ErrBadExpr):
		return http.StatusBadRequest, "bad_expr"
	case errors.Is(err, fastcc.ErrBadSpec):
		return http.StatusBadRequest, "bad_spec"
	case errors.Is(err, fastcc.ErrBadOption):
		return http.StatusBadRequest, "bad_option"
	case errors.Is(err, fastcc.ErrShapeMismatch):
		return http.StatusBadRequest, "shape_mismatch"
	case errors.Is(err, ErrUnknownOperand):
		return http.StatusNotFound, "unknown_operand"
	case errors.Is(err, errUnknownResult):
		return http.StatusNotFound, "unknown_result"
	case errors.Is(err, ErrOverUploadQuota):
		return http.StatusTooManyRequests, "over_upload_quota"
	case errors.Is(err, scheduler.ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, scheduler.ErrAdmissionClosed):
		return http.StatusServiceUnavailable, "shutting_down"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return 499, "canceled"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

var errUnknownResult = errors.New("server: unknown result id")

func writeError(w http.ResponseWriter, err error) {
	status, code := statusCode(err)
	var body errorBody
	body.Error.Code = code
	body.Error.Message = err.Error()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(&body)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// --- handlers -----------------------------------------------------------

// validTenantID mirrors fastcc's WithTenant grammar so malformed IDs are
// rejected at the door with the same ErrBadOption family.
func validTenantID(id string) error {
	if id == "" {
		return fmt.Errorf("%w: missing %s header", fastcc.ErrBadOption, TenantHeader)
	}
	if len(id) > 128 {
		return fmt.Errorf("%w: tenant ID longer than 128 bytes", fastcc.ErrBadOption)
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return fmt.Errorf("%w: tenant ID must be printable ASCII without spaces", fastcc.ErrBadOption)
		}
	}
	return nil
}

// tenanted wraps a handler with tenant-header extraction/validation and
// first-touch account setup (per-tenant shard quota).
func (s *Server) tenanted(h func(w http.ResponseWriter, r *http.Request, tenant string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := r.Header.Get(TenantHeader)
		if err := validTenantID(tenant); err != nil {
			writeError(w, err)
			return
		}
		s.mu.Lock()
		first := !s.tenants[tenant]
		s.tenants[tenant] = true
		s.mu.Unlock()
		if first && s.cfg.TenantQuota > 0 {
			if err := fastcc.SetTenantQuota(tenant, s.cfg.TenantQuota); err != nil {
				writeError(w, err)
				return
			}
		}
		h(w, r, tenant)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request, tenant string) {
	limit := s.cfg.UploadQuota
	if limit <= 0 {
		limit = 1 << 30
	}
	t, err := fastcc.ReadBTNS(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		writeError(w, fmt.Errorf("%w: decoding BTNS body: %v", fastcc.ErrBadSpec, err))
		return
	}
	hash, err := s.reg.Register(tenant, t)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, &UploadResponse{Hash: hash, NNZ: t.NNZ(), Dims: t.Dims, Bytes: estimateBytes(t)})
}

func (s *Server) handleReleaseOperand(w http.ResponseWriter, r *http.Request, tenant string) {
	if err := s.reg.Release(tenant, r.PathValue("hash")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// resolveSpec turns a ContractRequest's expression or mode lists into the
// engine Spec for the two resolved operands.
func resolveSpec(req *ContractRequest, l, r *fastcc.Tensor) (fastcc.Spec, error) {
	if req.Expr != "" {
		if req.CtrLeft != nil || req.CtrRight != nil {
			return fastcc.Spec{}, fmt.Errorf("%w: expr and ctr_left/ctr_right are mutually exclusive", fastcc.ErrBadSpec)
		}
		return fastcc.ParseEinsum(req.Expr, l.Order(), r.Order())
	}
	spec := fastcc.Spec{CtrLeft: req.CtrLeft, CtrRight: req.CtrRight}
	if err := spec.Validate(l, r); err != nil {
		return fastcc.Spec{}, err
	}
	return spec, nil
}

func (s *Server) handleContract(w http.ResponseWriter, r *http.Request, tenant string) {
	var req ContractRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: decoding request: %v", fastcc.ErrBadSpec, err))
		return
	}
	le, err := s.reg.Lookup(tenant, req.Left)
	if err != nil {
		writeError(w, err)
		return
	}
	re, err := s.reg.Lookup(tenant, req.Right)
	if err != nil {
		writeError(w, err)
		return
	}
	spec, err := resolveSpec(&req, le.t, re.t)
	if err != nil {
		writeError(w, err)
		return
	}

	// Admission: bounded in-flight contractions, bounded queue, and the
	// request's own context (client disconnect, server timeout) evicting it
	// from the queue.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	release, err := s.adm.Acquire(ctx)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()

	lsh, err := le.sharded(spec.CtrLeft)
	if err != nil {
		writeError(w, err)
		return
	}
	rsh, err := re.sharded(spec.CtrRight)
	if err != nil {
		writeError(w, err)
		return
	}
	opts := []fastcc.Option{
		fastcc.WithTenant(tenant),
		fastcc.WithContext(ctx),
		fastcc.WithShardBudget(s.cfg.CacheBudget),
	}
	if s.cfg.Threads > 0 {
		opts = append(opts, fastcc.WithThreads(s.cfg.Threads))
	}
	out, stats, err := fastcc.ContractPrepared(lsh, rsh, opts...)
	if err != nil {
		writeError(w, err)
		return
	}

	id := "r" + strconv.FormatInt(s.nextID.Add(1), 16)
	s.mu.Lock()
	s.results[id] = &resultEntry{tenant: tenant, t: out, nnz: out.NNZ()}
	s.mu.Unlock()
	writeJSON(w, &ContractResponse{
		ResultID:    id,
		OutputNNZ:   out.NNZ(),
		BuildNS:     stats.Build.Nanoseconds(),
		ContractNS:  stats.Contract.Nanoseconds(),
		TotalNS:     stats.Total.Nanoseconds(),
		ShardReused: stats.ShardReused,
	})
}

func (s *Server) takeResult(tenant, id string, remove bool) (*resultEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.results[id]
	if !ok || e.tenant != tenant {
		return nil, fmt.Errorf("%w: %s", errUnknownResult, id)
	}
	if remove {
		delete(s.results, id)
	}
	return e, nil
}

func (s *Server) handleFetchResult(w http.ResponseWriter, r *http.Request, tenant string) {
	e, err := s.takeResult(tenant, r.PathValue("id"), false)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := fastcc.WriteBTNS(w, e.t); err != nil {
		// Headers are gone; the truncated body fails the client's decode.
		return
	}
}

func (s *Server) handleDeleteResult(w http.ResponseWriter, r *http.Request, tenant string) {
	if _, err := s.takeResult(tenant, r.PathValue("id"), true); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request, tenant string) {
	operands, bytes, _ := s.reg.Stats()
	s.mu.Lock()
	nresults := len(s.results)
	s.mu.Unlock()
	writeJSON(w, &StatsResponse{
		Cache:         fastcc.ShardCacheStats(),
		Tenants:       fastcc.AllTenantCacheStats(),
		InFlight:      s.adm.InFlight(),
		Queued:        s.adm.Queued(),
		Operands:      operands,
		OperandBytes:  bytes,
		Results:       nresults,
		UploadedBytes: s.reg.Charged(tenant),
	})
}
