package coo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStridesRowMajor(t *testing.T) {
	s, err := Strides([]uint64{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{12, 4, 1}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("strides=%v want %v", s, want)
		}
	}
}

func TestStridesOverflow(t *testing.T) {
	if _, err := Strides([]uint64{1 << 33, 1 << 33}); err == nil {
		t.Fatal("want overflow error")
	}
	if _, err := Strides([]uint64{4, 0, 4}); err == nil {
		t.Fatal("want zero-extent error")
	}
	if _, err := LinearSize([]uint64{1 << 40, 1 << 30}); err == nil {
		t.Fatal("want LinearSize overflow error")
	}
}

func TestLinearizeDelinearizeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := rng.Intn(4) + 1
		dims := make([]uint64, order)
		for m := range dims {
			dims[m] = uint64(rng.Intn(9) + 1)
		}
		strides, err := Strides(dims)
		if err != nil {
			return false
		}
		coords := make([]uint64, order)
		for m := range coords {
			coords[m] = rng.Uint64() % dims[m]
		}
		idx := Linearize(coords, strides)
		back := make([]uint64, order)
		Delinearize(idx, dims, back)
		for m := range coords {
			if back[m] != coords[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearizeIsBijective(t *testing.T) {
	dims := []uint64{3, 4, 2}
	strides, _ := Strides(dims)
	seen := map[uint64]bool{}
	coords := make([]uint64, 3)
	for a := uint64(0); a < 3; a++ {
		for b := uint64(0); b < 4; b++ {
			for c := uint64(0); c < 2; c++ {
				coords[0], coords[1], coords[2] = a, b, c
				idx := Linearize(coords, strides)
				if idx >= 24 || seen[idx] {
					t.Fatalf("index %d out of range or repeated", idx)
				}
				seen[idx] = true
			}
		}
	}
}

func TestLinearizeModes(t *testing.T) {
	a := mkTensor(t, []uint64{2, 3, 4},
		[][]uint64{{1, 2, 3}, {0, 0, 0}}, []float64{1, 2})
	// Linearize modes (2, 0): dims (4,2), strides (2,1) → 3*2+1=7, 0.
	got, err := a.LinearizeModes([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 || got[1] != 0 {
		t.Fatalf("LinearizeModes = %v, want [7 0]", got)
	}
}

func TestMatrixizeAndFromPairsRoundTrip(t *testing.T) {
	// Matrixize over (ext, ctr), then rebuild a tensor from (ext-left,
	// ext-right) pairs and check a known case end-to-end.
	a := mkTensor(t, []uint64{2, 3, 4},
		[][]uint64{{1, 2, 3}, {0, 1, 2}}, []float64{5, 7})
	m, err := a.Matrixize([]int{0, 1}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if m.ExtDim != 6 || m.CtrDim != 4 || m.NNZ() != 2 {
		t.Fatalf("matrixized dims ext=%d ctr=%d nnz=%d", m.ExtDim, m.CtrDim, m.NNZ())
	}
	// Element (1,2,3): ext = 1*3+2 = 5, ctr = 3.
	if m.Ext[0] != 5 || m.Ctr[0] != 3 || m.Val[0] != 5 {
		t.Fatalf("element 0: ext=%d ctr=%d val=%g", m.Ext[0], m.Ctr[0], m.Val[0])
	}

	out, err := FromPairs([]uint64{5}, []uint64{2}, []float64{3.5},
		[]uint64{2, 3}, []uint64{4})
	if err != nil {
		t.Fatal(err)
	}
	if out.Order() != 3 || out.NNZ() != 1 {
		t.Fatalf("FromPairs: %v", out)
	}
	if got := out.At([]uint64{1, 2, 2}); got != 3.5 {
		t.Fatalf("FromPairs value at (1,2,2) = %g", got)
	}
}

func TestFromPairsEmptyRightGroup(t *testing.T) {
	// Contraction of all right modes: rDims empty, r index always 0.
	out, err := FromPairs([]uint64{3}, []uint64{0}, []float64{1.0},
		[]uint64{5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Order() != 1 || out.At([]uint64{3}) != 1.0 {
		t.Fatalf("unexpected result %v", out)
	}
}

func TestFromPairsLengthMismatch(t *testing.T) {
	if _, err := FromPairs([]uint64{1}, []uint64{}, []float64{1}, []uint64{2}, []uint64{2}); err == nil {
		t.Fatal("want length mismatch error")
	}
}

func TestSpecValidate(t *testing.T) {
	l := New([]uint64{4, 5}, 0)
	r := New([]uint64{5, 6}, 0)
	ok := Spec{CtrLeft: []int{1}, CtrRight: []int{0}}
	if err := ok.Validate(l, r); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []Spec{
		{CtrLeft: []int{1}, CtrRight: []int{0, 1}}, // arity mismatch
		{CtrLeft: []int{}, CtrRight: []int{}},      // empty
		{CtrLeft: []int{2}, CtrRight: []int{0}},    // out of range
		{CtrLeft: []int{1, 1}, CtrRight: []int{0, 1}},
		{CtrLeft: []int{0}, CtrRight: []int{1}}, // extent mismatch 4 vs 6
	}
	for i, s := range cases {
		if err := s.Validate(l, r); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
}

func TestExternalModes(t *testing.T) {
	got := ExternalModes(5, []int{1, 3})
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("ExternalModes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExternalModes = %v want %v", got, want)
		}
	}
}
