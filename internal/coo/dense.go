package coo

import "fmt"

// ToDense materializes the tensor as a row-major dense array. It refuses
// index spaces above maxDenseElems (dense materialization is a debugging
// and interop aid, not a compute path).
const maxDenseElems = 1 << 28 // 2 GiB of float64

// ToDense returns the dense row-major array of the tensor, accumulating
// duplicates.
func (t *Tensor) ToDense() ([]float64, error) {
	size, err := LinearSize(t.Dims)
	if err != nil {
		return nil, err
	}
	if size > maxDenseElems {
		return nil, fmt.Errorf("%w: dense materialization of %d elements refused", ErrShape, size)
	}
	strides, err := Strides(t.Dims)
	if err != nil {
		return nil, err
	}
	out := make([]float64, size)
	coords := make([]uint64, t.Order())
	for i := range t.Vals {
		out[Linearize(t.CoordsOf(i, coords), strides)] += t.Vals[i]
	}
	return out, nil
}

// FromDense builds a COO tensor from a row-major dense array, storing only
// elements with |v| > tol (tol 0 keeps all nonzeros).
func FromDense(data []float64, dims []uint64, tol float64) (*Tensor, error) {
	size, err := LinearSize(dims)
	if err != nil {
		return nil, err
	}
	if uint64(len(data)) != size {
		return nil, fmt.Errorf("%w: %d elements for dims %v (want %d)", ErrShape, len(data), dims, size)
	}
	t := New(dims, 0)
	coords := make([]uint64, len(dims))
	for i, v := range data {
		if v == 0 || (v < tol && -v < tol) {
			continue
		}
		Delinearize(uint64(i), dims, coords)
		t.Append(coords, v)
	}
	return t, nil
}
