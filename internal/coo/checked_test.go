package coo

import "testing"

// mustPanicWhenChecked runs fn expecting a stamp panic under
// -tags fastcc_checked and silent success otherwise.
func mustPanicWhenChecked(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if Checked && r == nil {
			t.Fatalf("%s: fastcc_checked build did not panic on a deliberate post-stamp mutation", what)
		}
		if !Checked && r != nil {
			t.Fatalf("%s: normal build panicked unexpectedly: %v", what, r)
		}
	}()
	fn()
}

func stampedMatrix() *Matrix {
	m := &Matrix{
		Ext: []uint64{0, 1, 3, 3}, Ctr: []uint64{0, 2, 1, 3}, Val: []float64{1, 2, 3, 4},
		ExtDim: 4, CtrDim: 4,
	}
	m.Stamp()
	return m
}

// TestMatrixStampCleanVerify pins the happy path in both modes: an
// unmutated matrix verifies repeatedly without complaint.
func TestMatrixStampCleanVerify(t *testing.T) {
	m := stampedMatrix()
	for i := 0; i < 3; i++ {
		m.VerifyStamp("test")
	}
}

// TestMatrixStampDetectsValueMutation injects the bug class the stamp
// exists for: the caller keeps its tensor after Preshard and writes a
// value through the shared Val slice.
func TestMatrixStampDetectsValueMutation(t *testing.T) {
	m := stampedMatrix()
	m.Val[2] = 99 // deliberate mutation through the original slice
	mustPanicWhenChecked(t, "Val mutation", func() {
		m.VerifyStamp("test")
	})
}

// TestMatrixStampDetectsIndexMutation: a single flipped linearized index is
// just as fatal to cached tables as a value change.
func TestMatrixStampDetectsIndexMutation(t *testing.T) {
	m := stampedMatrix()
	m.Ext[0] = 2
	mustPanicWhenChecked(t, "Ext mutation", func() {
		m.VerifyStamp("test")
	})
}

// TestMatrixStampDetectsTruncation: reslicing the backing arrays changes
// the lengths the hash covers, not just the contents.
func TestMatrixStampDetectsTruncation(t *testing.T) {
	m := stampedMatrix()
	m.Ctr = m.Ctr[:len(m.Ctr)-1]
	mustPanicWhenChecked(t, "Ctr truncation", func() {
		m.VerifyStamp("test")
	})
}

// TestMatrixVerifyUnstampedPanics: a shard build reaching a matrix that
// never passed the NewOperand funnel is itself a lifecycle violation.
func TestMatrixVerifyUnstampedPanics(t *testing.T) {
	m := &Matrix{Ext: []uint64{0}, Ctr: []uint64{0}, Val: []float64{1}, ExtDim: 1, CtrDim: 1}
	mustPanicWhenChecked(t, "unstamped verify", func() {
		m.VerifyStamp("test")
	})
}

// TestMatrixRestampMovesContract: Stamp after a mutation re-freezes the
// contract at the new content (the one-shot Contract path re-wraps the
// same tensor across calls).
func TestMatrixRestampMovesContract(t *testing.T) {
	m := stampedMatrix()
	m.Val[0] = 7
	m.Stamp()
	m.VerifyStamp("test")
}
