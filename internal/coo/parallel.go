package coo

import (
	"fmt"
	"sync"
)

// FromPairsP is FromPairs with the de-linearization passes parallelized
// over element chunks — the output post-processing is a measured phase of
// the contraction (paper Section 2.1), and for dense-ish outputs it touches
// more elements than either input. workers <= 1 falls back to FromPairs.
func FromPairsP(ls, rs []uint64, vals []float64, lDims, rDims []uint64, workers int) (*Tensor, error) {
	if workers <= 1 || len(vals) < 1<<14 {
		return FromPairs(ls, rs, vals, lDims, rDims)
	}
	if len(ls) != len(rs) || len(ls) != len(vals) {
		return nil, fmt.Errorf("%w: pair arrays of unequal length", ErrShape)
	}
	dims := append(append([]uint64(nil), lDims...), rDims...)
	out := New(dims, 0)
	n := len(vals)
	out.Vals = append([]float64(nil), vals...)
	for m := range dims {
		out.Coords[m] = make([]uint64, n)
	}
	lStrides, err := Strides(lDims)
	if err != nil {
		return nil, err
	}
	rStrides, err := Strides(rDims)
	if err != nil {
		return nil, err
	}

	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for m := range lDims {
				s, d := lStrides[m], lDims[m]
				cs := out.Coords[m]
				for i := lo; i < hi; i++ {
					cs[i] = (ls[i] / s) % d
				}
			}
			for m := range rDims {
				s, d := rStrides[m], rDims[m]
				cs := out.Coords[len(lDims)+m]
				for i := lo; i < hi; i++ {
					cs[i] = (rs[i] / s) % d
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}
