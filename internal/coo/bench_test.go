package coo

import (
	"math/rand"
	"testing"
)

func benchTensor(n int) *Tensor {
	rng := rand.New(rand.NewSource(1))
	return randomTensor(rng, []uint64{1 << 12, 1 << 10, 1 << 8}, n)
}

func BenchmarkSort100k(b *testing.B) {
	orig := benchTensor(100_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := orig.Clone()
		t.Sort()
	}
}

func BenchmarkDedup100k(b *testing.B) {
	orig := benchTensor(100_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := orig.Clone()
		t.Dedup()
	}
}

func BenchmarkMatrixize100k(b *testing.B) {
	t := benchTensor(100_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := t.Matrixize([]int{0, 1}, []int{2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFromPairsP100k(b *testing.B) {
	n := 100_000
	rng := rand.New(rand.NewSource(2))
	ls := make([]uint64, n)
	rs := make([]uint64, n)
	vs := make([]float64, n)
	for i := range vs {
		ls[i] = rng.Uint64() % (1 << 20)
		rs[i] = rng.Uint64() % (1 << 20)
		vs[i] = 1
	}
	lDims := []uint64{1 << 10, 1 << 10}
	rDims := []uint64{1 << 10, 1 << 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FromPairsP(ls, rs, vs, lDims, rDims, 0); err != nil {
			b.Fatal(err)
		}
	}
}
