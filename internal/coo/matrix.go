package coo

import "fmt"

// Matrix is a matrixized view of one operand of a contraction: every nonzero
// is described by a linearized external index Ext, a linearized contraction
// index Ctr, and its value. This is the O[l,r] = Σ_c L[l,c]·R[c,r] form the
// paper optimizes (Section 2.1); FaSTCC and all baselines consume it.
type Matrix struct {
	Ext []uint64 // linearized external index per nonzero (l for L, r for R)
	Ctr []uint64 // linearized contraction index per nonzero (c)
	Val []float64

	ExtDim uint64 // extent of the linearized external index space
	CtrDim uint64 // extent of the linearized contraction index space

	ck checkedMatrix // content stamp; zero-sized unless built with fastcc_checked
}

// NNZ returns the number of nonzeros in the view.
func (m *Matrix) NNZ() int { return len(m.Val) }

// Density returns nnz / (ExtDim * CtrDim).
func (m *Matrix) Density() float64 {
	if m.ExtDim == 0 || m.CtrDim == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.ExtDim) * float64(m.CtrDim))
}

// Spec names the contracted modes of a binary contraction: mode
// CtrLeft[k] of the left operand is summed against mode CtrRight[k] of the
// right operand. The remaining (external) modes keep their original order;
// the output's modes are the left externals followed by the right externals.
type Spec struct {
	CtrLeft  []int
	CtrRight []int
}

// Validate checks the spec against the two operand tensors. Structural
// problems with the spec itself unwrap to ErrBadSpec; a contracted-extent
// mismatch between the operands is reported as a *ShapeError (which unwraps
// to ErrShape).
func (s Spec) Validate(l, r *Tensor) error {
	if err := s.ValidateModes(l.Order(), r.Order()); err != nil {
		return err
	}
	for k := range s.CtrLeft {
		dl, dr := l.Dims[s.CtrLeft[k]], r.Dims[s.CtrRight[k]]
		if dl != dr {
			return &ShapeError{
				LeftMode: s.CtrLeft[k], LeftExtent: dl,
				RightMode: s.CtrRight[k], RightExtent: dr,
			}
		}
	}
	return nil
}

// ValidateModes checks the spec's structure against the operand orders
// alone, without extents — the part a prepared operand can check before its
// partner is known. Failures unwrap to ErrBadSpec.
func (s Spec) ValidateModes(lOrder, rOrder int) error {
	if len(s.CtrLeft) != len(s.CtrRight) {
		return fmt.Errorf("%w: %d left vs %d right contraction modes", ErrBadSpec, len(s.CtrLeft), len(s.CtrRight))
	}
	if len(s.CtrLeft) == 0 {
		return fmt.Errorf("%w: contraction must sum over at least one mode", ErrBadSpec)
	}
	if len(s.CtrLeft) > lOrder || len(s.CtrRight) > rOrder {
		return fmt.Errorf("%w: more contraction modes than tensor modes", ErrBadSpec)
	}
	if err := checkModeSet(s.CtrLeft, lOrder); err != nil {
		return fmt.Errorf("left operand: %w", err)
	}
	if err := checkModeSet(s.CtrRight, rOrder); err != nil {
		return fmt.Errorf("right operand: %w", err)
	}
	return nil
}

func checkModeSet(modes []int, order int) error {
	seen := make(map[int]bool, len(modes))
	for _, m := range modes {
		if m < 0 || m >= order {
			return fmt.Errorf("%w: mode %d out of range [0,%d)", ErrBadSpec, m, order)
		}
		if seen[m] {
			return fmt.Errorf("%w: mode %d contracted twice", ErrBadSpec, m)
		}
		seen[m] = true
	}
	return nil
}

// ExternalModes returns the modes of a tensor of the given order that are
// not in ctr, preserving their original order.
func ExternalModes(order int, ctr []int) []int {
	isCtr := make([]bool, order)
	for _, m := range ctr {
		isCtr[m] = true
	}
	ext := make([]int, 0, order-len(ctr))
	for m := 0; m < order; m++ {
		if !isCtr[m] {
			ext = append(ext, m)
		}
	}
	return ext
}

// Matrixize linearizes a tensor into a Matrix view: extModes form the
// external index and ctrModes the contraction index. This is the paper's
// pre-processing step; it is accounted for in measured contraction time.
func (t *Tensor) Matrixize(extModes, ctrModes []int) (*Matrix, error) {
	extDims := subDims(t.Dims, extModes)
	ctrDims := subDims(t.Dims, ctrModes)
	extSize, err := LinearSize(extDims)
	if err != nil {
		return nil, err
	}
	ctrSize, err := LinearSize(ctrDims)
	if err != nil {
		return nil, err
	}
	ext, err := t.LinearizeModes(extModes)
	if err != nil {
		return nil, err
	}
	ctr, err := t.LinearizeModes(ctrModes)
	if err != nil {
		return nil, err
	}
	return &Matrix{
		Ext:    ext,
		Ctr:    ctr,
		Val:    t.Vals, // shared: views do not own values
		ExtDim: extSize,
		CtrDim: ctrSize,
	}, nil
}

// FromPairs assembles an output tensor from linearized (l, r) output pairs,
// de-linearizing l over the left external dims and r over the right external
// dims (the paper's post-processing step). The element order of the result
// follows the input order; callers canonicalize via Sort/Dedup if needed.
func FromPairs(ls, rs []uint64, vals []float64, lDims, rDims []uint64) (*Tensor, error) {
	if len(ls) != len(rs) || len(ls) != len(vals) {
		return nil, fmt.Errorf("%w: pair arrays of unequal length", ErrShape)
	}
	dims := append(append([]uint64(nil), lDims...), rDims...)
	out := New(dims, len(vals))
	out.Vals = append(out.Vals, vals...)
	n := len(vals)
	for m := range dims {
		out.Coords[m] = out.Coords[m][:0]
		out.Coords[m] = append(out.Coords[m], make([]uint64, n)...)
	}
	// De-linearize by repeated div/mod, one side at a time, streaming over
	// each destination mode array.
	delinearizeInto(out.Coords[:len(lDims)], ls, lDims)
	delinearizeInto(out.Coords[len(lDims):], rs, rDims)
	return out, nil
}

// delinearizeInto writes the coordinates of each linear index in idxs into
// the per-mode destination arrays dst (len(dst) == len(dims)).
func delinearizeInto(dst [][]uint64, idxs []uint64, dims []uint64) {
	if len(dims) == 0 {
		return
	}
	strides, err := Strides(dims)
	if err != nil {
		// Dims came from an existing tensor, so they linearized before.
		panic("coo: delinearizeInto with invalid dims: " + err.Error())
	}
	for m := range dims {
		s, d := strides[m], dims[m]
		cs := dst[m]
		for i, idx := range idxs {
			cs[i] = (idx / s) % d
		}
	}
}
