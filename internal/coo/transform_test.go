package coo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPermute(t *testing.T) {
	a := mkTensor(t, []uint64{2, 3, 4}, [][]uint64{{1, 2, 3}}, []float64{7})
	p, err := a.Permute([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dims[0] != 4 || p.Dims[1] != 2 || p.Dims[2] != 3 {
		t.Fatalf("dims %v", p.Dims)
	}
	if got := p.At([]uint64{3, 1, 2}); got != 7 {
		t.Fatalf("permuted value %g", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteRejectsBad(t *testing.T) {
	a := mkTensor(t, []uint64{2, 2}, nil, nil)
	for _, perm := range [][]int{{0}, {0, 0}, {0, 2}, {-1, 0}} {
		if _, err := a.Permute(perm); err == nil {
			t.Fatalf("perm %v accepted", perm)
		}
	}
}

func TestPermuteInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := rng.Intn(4) + 1
		dims := make([]uint64, order)
		for m := range dims {
			dims[m] = uint64(rng.Intn(5) + 1)
		}
		a := randomTensor(rng, dims, rng.Intn(30))
		perm := rng.Perm(order)
		inv := make([]int, order)
		for k, m := range perm {
			inv[m] = k
		}
		p, err := a.Permute(perm)
		if err != nil {
			return false
		}
		back, err := p.Permute(inv)
		if err != nil {
			return false
		}
		return Equal(a, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleAndNorm(t *testing.T) {
	a := mkTensor(t, []uint64{4}, [][]uint64{{0}, {2}}, []float64{3, 4})
	if a.Norm2() != 25 {
		t.Fatalf("Norm2=%g", a.Norm2())
	}
	a.Scale(2)
	if a.Vals[0] != 6 || a.Vals[1] != 8 {
		t.Fatalf("scaled %v", a.Vals)
	}
}

func TestAdd(t *testing.T) {
	a := mkTensor(t, []uint64{3, 3}, [][]uint64{{0, 0}, {1, 1}}, []float64{1, 2})
	b := mkTensor(t, []uint64{3, 3}, [][]uint64{{1, 1}, {2, 2}}, []float64{5, -3})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.NNZ() != 3 {
		t.Fatalf("nnz=%d", sum.NNZ())
	}
	if sum.At([]uint64{1, 1}) != 7 || sum.At([]uint64{2, 2}) != -3 {
		t.Fatal("wrong sums")
	}
	// Cancellation drops the entry.
	c := mkTensor(t, []uint64{3, 3}, [][]uint64{{0, 0}}, []float64{-1})
	s2, err := Add(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if s2.At([]uint64{0, 0}) != 0 || s2.NNZ() != 1 {
		t.Fatalf("cancellation kept: %v", s2.Vals)
	}
	if _, err := Add(a, mkTensor(t, []uint64{3}, nil, nil)); err == nil {
		t.Fatal("order mismatch accepted")
	}
	if _, err := Add(a, mkTensor(t, []uint64{3, 4}, nil, nil)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestAxpyLeavesOperands(t *testing.T) {
	x := mkTensor(t, []uint64{2}, [][]uint64{{0}}, []float64{3})
	y := mkTensor(t, []uint64{2}, [][]uint64{{0}, {1}}, []float64{1, 1})
	z, err := Axpy(2, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if z.At([]uint64{0}) != 7 || z.At([]uint64{1}) != 1 {
		t.Fatal("axpy wrong")
	}
	if x.Vals[0] != 3 {
		t.Fatal("Axpy mutated x")
	}
}

func TestSliceMode(t *testing.T) {
	a := mkTensor(t, []uint64{3, 4, 2},
		[][]uint64{{0, 1, 0}, {0, 3, 1}, {2, 1, 0}}, []float64{1, 2, 3})
	s, err := a.SliceMode(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Order() != 2 || s.NNZ() != 2 {
		t.Fatalf("slice %v", s)
	}
	if s.At([]uint64{0, 0}) != 1 || s.At([]uint64{2, 0}) != 3 {
		t.Fatal("slice values wrong")
	}
	if _, err := a.SliceMode(5, 0); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := a.SliceMode(1, 99); err == nil {
		t.Fatal("bad coordinate accepted")
	}
}

func TestModeHistogram(t *testing.T) {
	a := mkTensor(t, []uint64{3, 2},
		[][]uint64{{0, 0}, {0, 1}, {2, 0}}, []float64{1, 1, 1})
	h, err := a.ModeHistogram(0)
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != 2 || h[1] != 0 || h[2] != 1 {
		t.Fatalf("histogram %v", h)
	}
	if _, err := a.ModeHistogram(9); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestFromPairsPMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	n := 1 << 15 // above the parallel threshold
	ls := make([]uint64, n)
	rs := make([]uint64, n)
	vs := make([]float64, n)
	lDims := []uint64{50, 40}
	rDims := []uint64{30, 20, 10}
	for i := range vs {
		ls[i] = rng.Uint64() % 2000
		rs[i] = rng.Uint64() % 6000
		vs[i] = float64(rng.Intn(9) + 1)
	}
	seq, err := FromPairs(ls, rs, vs, lDims, rDims)
	if err != nil {
		t.Fatal(err)
	}
	par, err := FromPairsP(ls, rs, vs, lDims, rDims, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(seq, par) {
		t.Fatal("parallel delinearize disagrees with sequential")
	}
	// Small inputs fall back to the sequential path.
	small, err := FromPairsP(ls[:10], rs[:10], vs[:10], lDims, rDims, 4)
	if err != nil {
		t.Fatal(err)
	}
	seqSmall, _ := FromPairs(ls[:10], rs[:10], vs[:10], lDims, rDims)
	if !Equal(small, seqSmall) {
		t.Fatal("small-input fallback wrong")
	}
	if _, err := FromPairsP(ls[:5], rs[:4], vs[:5], lDims, rDims, 4); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestToDenseFromDenseRoundTrip(t *testing.T) {
	a := mkTensor(t, []uint64{2, 3},
		[][]uint64{{0, 1}, {1, 2}, {0, 1}}, []float64{1, 2, 3}) // dup at (0,1)
	d, err := a.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 6 || d[1] != 4 || d[5] != 2 {
		t.Fatalf("dense %v", d)
	}
	back, err := FromDense(d, []uint64{2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := a.Clone()
	want.Dedup()
	if !Equal(want, back) {
		t.Fatal("dense round trip")
	}
}

func TestFromDenseTolerance(t *testing.T) {
	d := []float64{0.5, -0.01, 0, 2}
	tn, err := FromDense(d, []uint64{4}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if tn.NNZ() != 2 {
		t.Fatalf("nnz=%d", tn.NNZ())
	}
}

func TestDenseErrors(t *testing.T) {
	huge := New([]uint64{1 << 20, 1 << 20}, 0)
	if _, err := huge.ToDense(); err == nil {
		t.Fatal("huge dense accepted")
	}
	if _, err := FromDense([]float64{1, 2}, []uint64{3}, 0); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FromDense(nil, []uint64{1 << 40, 1 << 40}, 0); err == nil {
		t.Fatal("overflow dims accepted")
	}
}
