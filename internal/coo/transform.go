package coo

import "fmt"

// Permute returns a new tensor whose mode k is the receiver's mode
// perm[k] — a lazy transpose: only slice headers and dim metadata move,
// coordinate arrays are shared with the receiver (copy-on-write is the
// caller's responsibility; use Clone().Permute(...) for an independent
// tensor).
func (t *Tensor) Permute(perm []int) (*Tensor, error) {
	if len(perm) != t.Order() {
		return nil, fmt.Errorf("%w: permutation %v for order-%d tensor", ErrShape, perm, t.Order())
	}
	seen := make([]bool, t.Order())
	for _, m := range perm {
		if m < 0 || m >= t.Order() || seen[m] {
			return nil, fmt.Errorf("%w: %v is not a permutation", ErrShape, perm)
		}
		seen[m] = true
	}
	out := &Tensor{
		Dims:   make([]uint64, t.Order()),
		Coords: make([][]uint64, t.Order()),
		Vals:   t.Vals,
	}
	for k, m := range perm {
		out.Dims[k] = t.Dims[m]
		out.Coords[k] = t.Coords[m]
	}
	return out, nil
}

// Scale multiplies every stored value by a, in place. Scaling by zero
// leaves explicit zeros; call DropZeros to remove them.
func (t *Tensor) Scale(a float64) {
	for i := range t.Vals {
		t.Vals[i] *= a
	}
}

// Add returns a + b (elementwise), requiring identical dims. The result is
// canonicalized (sorted, deduplicated); exact cancellations are dropped.
func Add(a, b *Tensor) (*Tensor, error) {
	if len(a.Dims) != len(b.Dims) {
		return nil, fmt.Errorf("%w: adding order-%d and order-%d tensors", ErrShape, a.Order(), b.Order())
	}
	for m := range a.Dims {
		if a.Dims[m] != b.Dims[m] {
			return nil, fmt.Errorf("%w: dims %v vs %v", ErrShape, a.Dims, b.Dims)
		}
	}
	out := New(a.Dims, a.NNZ()+b.NNZ())
	for m := range a.Coords {
		out.Coords[m] = append(out.Coords[m], a.Coords[m]...)
		out.Coords[m] = append(out.Coords[m], b.Coords[m]...)
	}
	out.Vals = append(out.Vals, a.Vals...)
	out.Vals = append(out.Vals, b.Vals...)
	out.Dedup()
	out.DropZeros()
	return out, nil
}

// Axpy returns a·x + y, a convenience over Scale and Add that leaves the
// operands untouched.
func Axpy(alpha float64, x, y *Tensor) (*Tensor, error) {
	ax := x.Clone()
	ax.Scale(alpha)
	return Add(ax, y)
}

// SliceMode returns the order-(n-1) sub-tensor at coordinate idx of mode m:
// all elements with Coords[m] == idx, with mode m removed.
func (t *Tensor) SliceMode(m int, idx uint64) (*Tensor, error) {
	if m < 0 || m >= t.Order() {
		return nil, fmt.Errorf("%w: mode %d out of range", ErrShape, m)
	}
	if idx >= t.Dims[m] {
		return nil, fmt.Errorf("%w: coordinate %d beyond extent %d", ErrShape, idx, t.Dims[m])
	}
	dims := make([]uint64, 0, t.Order()-1)
	for k, d := range t.Dims {
		if k != m {
			dims = append(dims, d)
		}
	}
	out := New(dims, 0)
	coords := make([]uint64, len(dims))
	for i := range t.Vals {
		if t.Coords[m][i] != idx {
			continue
		}
		coords = coords[:0]
		for k := range t.Coords {
			if k != m {
				coords = append(coords, t.Coords[k][i])
			}
		}
		out.Append(coords, t.Vals[i])
	}
	return out, nil
}

// Norm2 returns the Frobenius norm squared: Σ v².
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Vals {
		s += v * v
	}
	return s
}

// ModeHistogram counts nonzeros per coordinate of mode m — the per-slice
// nnz distribution used to reason about load balance and slice densities.
func (t *Tensor) ModeHistogram(m int) ([]int64, error) {
	if m < 0 || m >= t.Order() {
		return nil, fmt.Errorf("%w: mode %d out of range", ErrShape, m)
	}
	h := make([]int64, t.Dims[m])
	for _, c := range t.Coords[m] {
		h[c]++
	}
	return h, nil
}
