package coo

import (
	"math/bits"
	"sync"

	"fastcc/internal/mempool"
)

// TilePartition is a tile-major regrouping of a Matrix for the engine's
// Build phase (paper Algorithm 5): nonzero k of tile i lives at position
// Offs[i]+k of the Ctr/Intra/Val arenas, with the operand's original
// nonzero order preserved inside every tile. Each tile's segment is
// contiguous, so a builder thread reads exactly the bytes of the tiles it
// owns — total Build reads drop from O(workers × nnz) under the
// scan-and-filter scheme to O(nnz).
//
// The arenas are drawn from a package-level recycling pool; call Release
// when the partition has been consumed so the next Build reuses them.
type TilePartition struct {
	// Tile is the tile side the partition was computed for.
	Tile uint64
	// Tiles is the tile-grid size ceil(ExtDim/Tile).
	Tiles int
	// Offs bounds tile i's segment: entries Offs[i]..Offs[i+1].
	Offs []int
	// Ctr holds the contraction index of every nonzero, tile-major.
	Ctr []uint64
	// Intra holds the intra-tile external index (ext - tile*i) per nonzero.
	Intra []uint32
	// Val holds the value per nonzero, tile-major.
	Val []float64

	nonEmpty []int
}

// partition arena recycling: Build runs allocate three nnz-sized arenas and
// one counting grid per shard; between builds they park here.
var (
	partInt mempool.SlicePool[int]
	partU64 mempool.SlicePool[uint64]
	partU32 mempool.SlicePool[uint32]
	partF64 mempool.SlicePool[float64]
)

// partitionGridCap bounds the parallel counting grid (workers × tiles
// entries). Above it the counting and scatter passes run with fewer
// workers — still a single O(nnz) sweep, just less parallel — so degenerate
// tilings (tile side 1 over a huge extent) do not allocate a quadratic grid.
const partitionGridCap = 1 << 22

// partitionWorkers caps the partition team so the counting grid stays under
// partitionGridCap entries and tiny inputs stay serial.
func partitionWorkers(workers, tiles, nnz int) int {
	if workers < 1 {
		workers = 1
	}
	if nnz < 1<<14 {
		return 1
	}
	if tiles > 0 {
		if maxW := partitionGridCap / tiles; workers > maxW {
			workers = maxW
		}
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// PartitionByTile regroups m's nonzeros into contiguous per-tile segments
// with a two-pass parallel partition: a counting pass over worker-private
// rows of a shared grid, a prefix sum turning counts into write cursors,
// and a scatter pass into the arenas. Both passes read each nonzero exactly
// once, and the scatter preserves the operand's nonzero order within every
// tile (workers own ascending chunks and cursors are laid out worker-major
// inside each tile's segment), so downstream table builds see the same
// insertion order regardless of worker count.
func PartitionByTile(m *Matrix, tile uint64, workers int) *TilePartition {
	nnz := m.NNZ()
	tiles := int((m.ExtDim + tile - 1) / tile)
	// Ownership transfer: the arenas below belong to the TilePartition from
	// Get until its Release puts them back; nothing else may Put them, and
	// no reference survives Release (the build phase reads them strictly
	// before calling it).
	p := &TilePartition{
		Tile:  tile,
		Tiles: tiles,
		Offs:  partInt.Get(tiles + 1)[:tiles+1], //fastcc:owned
		Ctr:   partU64.Get(nnz)[:nnz],           //fastcc:owned
		Intra: partU32.Get(nnz)[:nnz],           //fastcc:owned
		Val:   partF64.Get(nnz)[:nnz],           //fastcc:owned
	}
	pw := partitionWorkers(workers, tiles, nnz)

	// Tile sides are powers of two whenever the model chose them; replace
	// the division in the per-nonzero loops with a shift in that case.
	shift := -1
	if tile&(tile-1) == 0 {
		shift = bits.TrailingZeros64(tile)
	}
	mask := tile - 1
	tileOf := func(ext uint64) int {
		if shift >= 0 {
			return int(ext >> shift)
		}
		return int(ext / tile)
	}

	// Pass 1: count nonzeros per (worker, tile). Row w of the grid is
	// private to worker w; chunks are contiguous nnz ranges.
	counts := partInt.Get(pw * tiles)[:pw*tiles]
	for i := range counts {
		counts[i] = 0
	}
	chunk := (nnz + pw - 1) / pw
	parallelChunks(pw, nnz, chunk, func(w, lo, hi int) {
		row := counts[w*tiles : (w+1)*tiles]
		for k := lo; k < hi; k++ {
			row[tileOf(m.Ext[k])]++
		}
	})

	// Prefix sum: segment starts per tile, then per-worker write cursors
	// inside each segment (worker-major so ascending chunks keep the global
	// nonzero order within a tile).
	pos := 0
	for t := 0; t < tiles; t++ {
		p.Offs[t] = pos
		for w := 0; w < pw; w++ {
			c := counts[w*tiles+t]
			counts[w*tiles+t] = pos
			pos += c
		}
	}
	p.Offs[tiles] = pos

	// Pass 2: scatter. Workers write disjoint arena positions, so the pass
	// is race-free without synchronization.
	parallelChunks(pw, nnz, chunk, func(w, lo, hi int) {
		cur := counts[w*tiles : (w+1)*tiles]
		for k := lo; k < hi; k++ {
			ext := m.Ext[k]
			var i int
			var intra uint32
			if shift >= 0 {
				i = int(ext >> shift)
				intra = uint32(ext & mask)
			} else {
				i = int(ext / tile)
				intra = uint32(ext - uint64(i)*tile)
			}
			at := cur[i]
			cur[i] = at + 1
			p.Ctr[at] = m.Ctr[k]
			p.Intra[at] = intra
			p.Val[at] = m.Val[k]
		}
	})
	partInt.Put(counts)

	p.nonEmpty = make([]int, 0, tiles)
	for t := 0; t < tiles; t++ {
		if p.Offs[t+1] > p.Offs[t] {
			p.nonEmpty = append(p.nonEmpty, t)
		}
	}
	return p
}

// NonEmpty returns the indices of tiles holding at least one nonzero, in
// ascending order. The slice is freshly allocated by PartitionByTile (not
// arena-backed), so callers may retain it past Release.
func (p *TilePartition) NonEmpty() []int { return p.nonEmpty }

// Len returns the nonzero count of tile i.
func (p *TilePartition) Len(i int) int { return p.Offs[i+1] - p.Offs[i] }

// Release returns the partition's arenas to the recycling pool. The
// partition must not be used afterwards; the arenas will be overwritten by
// future builds.
func (p *TilePartition) Release() {
	partInt.Put(p.Offs)
	partU64.Put(p.Ctr)
	partU32.Put(p.Intra)
	partF64.Put(p.Val)
	p.Offs, p.Ctr, p.Intra, p.Val = nil, nil, nil, nil
}

// parallelChunks runs fn(w, lo, hi) over contiguous chunks of [0, n) on
// `workers` goroutines (serial when workers == 1).
func parallelChunks(workers, n, chunk int, fn func(w, lo, hi int)) {
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
