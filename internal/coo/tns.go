package coo

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The FROSTT .tns text format: one nonzero per line, whitespace-separated,
// 1-based coordinates followed by the value. Lines starting with '#' and
// blank lines are ignored. Mode extents are not part of the format; ReadTNS
// infers each extent as the maximum coordinate seen (callers may widen Dims
// afterwards).

// WriteTNS writes the tensor in .tns format, with a header comment recording
// the dims so ReadTNS on our own output restores exact extents.
func WriteTNS(w io.Writer, t *Tensor) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# dims:")
	for _, d := range t.Dims {
		fmt.Fprintf(bw, " %d", d)
	}
	fmt.Fprintln(bw)
	var sb strings.Builder
	for i := range t.Vals {
		sb.Reset()
		for m := range t.Coords {
			sb.WriteString(strconv.FormatUint(t.Coords[m][i]+1, 10))
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.FormatFloat(t.Vals[i], 'g', -1, 64))
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTNS parses a .tns stream. The tensor order is taken from the first
// data line; extents come from a "# dims:" header when present, otherwise
// from the maximum coordinate per mode.
func ReadTNS(r io.Reader) (*Tensor, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var t *Tensor
	var headerDims []uint64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# dims:"); ok {
				for _, f := range strings.Fields(rest) {
					d, err := strconv.ParseUint(f, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("coo: line %d: bad dims header: %v", lineNo, err)
					}
					headerDims = append(headerDims, d)
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("coo: line %d: want at least one coordinate and a value, got %q", lineNo, line)
		}
		order := len(fields) - 1
		if t == nil {
			t = New(make([]uint64, order), 1024)
		} else if t.Order() != order {
			return nil, fmt.Errorf("coo: line %d: order %d differs from first line's %d", lineNo, order, t.Order())
		}
		for m := 0; m < order; m++ {
			c, err := strconv.ParseUint(fields[m], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("coo: line %d: bad coordinate %q: %v", lineNo, fields[m], err)
			}
			if c == 0 {
				return nil, fmt.Errorf("coo: line %d: coordinate 0 (format is 1-based)", lineNo)
			}
			t.Coords[m] = append(t.Coords[m], c-1)
			if c > t.Dims[m] {
				t.Dims[m] = c
			}
		}
		v, err := strconv.ParseFloat(fields[order], 64)
		if err != nil {
			return nil, fmt.Errorf("coo: line %d: bad value %q: %v", lineNo, fields[order], err)
		}
		t.Vals = append(t.Vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("coo: reading tns: %w", err)
	}
	if t == nil {
		if headerDims != nil {
			return New(headerDims, 0), nil
		}
		return nil, fmt.Errorf("coo: empty tns input")
	}
	if headerDims != nil {
		if len(headerDims) != t.Order() {
			return nil, fmt.Errorf("coo: dims header has %d modes, data has %d", len(headerDims), t.Order())
		}
		for m, d := range headerDims {
			if t.Dims[m] > d {
				return nil, fmt.Errorf("coo: mode %d coordinate %d exceeds declared extent %d", m, t.Dims[m], d)
			}
			t.Dims[m] = d
		}
	}
	return t, nil
}
