package coo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkTensor(t *testing.T, dims []uint64, elems [][]uint64, vals []float64) *Tensor {
	t.Helper()
	tn := New(dims, len(vals))
	for i, e := range elems {
		tn.Append(e, vals[i])
	}
	if err := tn.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return tn
}

func randomTensor(rng *rand.Rand, dims []uint64, nnz int) *Tensor {
	t := New(dims, nnz)
	coords := make([]uint64, len(dims))
	for i := 0; i < nnz; i++ {
		for m, d := range dims {
			coords[m] = rng.Uint64() % d
		}
		t.Append(coords, float64(rng.Intn(9)+1))
	}
	return t
}

func TestNewAndAppend(t *testing.T) {
	tn := New([]uint64{3, 4, 5}, 4)
	if tn.Order() != 3 || tn.NNZ() != 0 {
		t.Fatalf("empty tensor: order=%d nnz=%d", tn.Order(), tn.NNZ())
	}
	tn.Append([]uint64{1, 2, 3}, 2.5)
	tn.Append([]uint64{0, 0, 0}, -1)
	if tn.NNZ() != 2 {
		t.Fatalf("nnz=%d want 2", tn.NNZ())
	}
	if got := tn.At([]uint64{1, 2, 3}); got != 2.5 {
		t.Fatalf("At = %g want 2.5", got)
	}
	if err := tn.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tn := New([]uint64{2, 2}, 1)
	tn.Coords[0] = append(tn.Coords[0], 5) // out of range, lengths mismatched
	if err := tn.Validate(); err == nil {
		t.Fatal("want error for ragged coords")
	}
	tn2 := New([]uint64{2, 2}, 1)
	tn2.Append([]uint64{1, 1}, 1)
	tn2.Coords[1][0] = 7
	if err := tn2.Validate(); err == nil {
		t.Fatal("want error for out-of-range coordinate")
	}
	tn3 := New([]uint64{2}, 1)
	tn3.Append([]uint64{0}, math.NaN())
	if err := tn3.Validate(); err == nil {
		t.Fatal("want error for NaN value")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := mkTensor(t, []uint64{4, 4}, [][]uint64{{1, 2}, {3, 0}}, []float64{1, 2})
	b := a.Clone()
	b.Coords[0][0] = 0
	b.Vals[1] = 99
	if a.Coords[0][0] != 1 || a.Vals[1] != 2 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestSortAndIsSorted(t *testing.T) {
	a := mkTensor(t, []uint64{3, 3},
		[][]uint64{{2, 1}, {0, 2}, {1, 0}, {0, 1}}, []float64{4, 2, 3, 1})
	if a.IsSorted() {
		t.Fatal("unexpectedly sorted")
	}
	a.Sort()
	if !a.IsSorted() {
		t.Fatal("not sorted after Sort")
	}
	wantCoords := [][]uint64{{0, 1}, {0, 2}, {1, 0}, {2, 1}}
	wantVals := []float64{1, 2, 3, 4}
	for i := range wantVals {
		if a.Coords[0][i] != wantCoords[i][0] || a.Coords[1][i] != wantCoords[i][1] || a.Vals[i] != wantVals[i] {
			t.Fatalf("element %d = (%d,%d)=%g, want (%d,%d)=%g",
				i, a.Coords[0][i], a.Coords[1][i], a.Vals[i], wantCoords[i][0], wantCoords[i][1], wantVals[i])
		}
	}
}

func TestSortHugeDimsFallback(t *testing.T) {
	// Dims whose product overflows uint64 force the comparator path.
	dims := []uint64{1 << 40, 1 << 40, 1 << 40}
	a := New(dims, 3)
	a.Append([]uint64{5, 0, 0}, 1)
	a.Append([]uint64{1, 9, 9}, 2)
	a.Append([]uint64{1, 2, 3}, 3)
	a.Sort()
	if !a.IsSorted() {
		t.Fatal("fallback sort failed")
	}
	if a.Vals[0] != 3 || a.Vals[1] != 2 || a.Vals[2] != 1 {
		t.Fatalf("vals after sort: %v", a.Vals)
	}
}

func TestDedupSums(t *testing.T) {
	a := mkTensor(t, []uint64{2, 2},
		[][]uint64{{1, 1}, {0, 0}, {1, 1}, {0, 0}, {1, 0}}, []float64{1, 2, 3, 4, 5})
	a.Dedup()
	if a.NNZ() != 3 {
		t.Fatalf("nnz=%d want 3", a.NNZ())
	}
	if got := a.At([]uint64{1, 1}); got != 4 {
		t.Fatalf("(1,1)=%g want 4", got)
	}
	if got := a.At([]uint64{0, 0}); got != 6 {
		t.Fatalf("(0,0)=%g want 6", got)
	}
	if !a.IsSorted() {
		t.Fatal("Dedup output must be sorted")
	}
}

func TestDropZerosAndTiny(t *testing.T) {
	a := mkTensor(t, []uint64{4}, [][]uint64{{0}, {1}, {2}, {3}}, []float64{0, 1e-12, -2, 0})
	a.DropZeros()
	if a.NNZ() != 2 {
		t.Fatalf("nnz=%d want 2", a.NNZ())
	}
	a.dropTiny(1e-9)
	if a.NNZ() != 1 || a.Vals[0] != -2 {
		t.Fatalf("after dropTiny: nnz=%d vals=%v", a.NNZ(), a.Vals)
	}
}

func TestEqualAndApproxEqual(t *testing.T) {
	a := mkTensor(t, []uint64{3, 3}, [][]uint64{{0, 1}, {2, 2}}, []float64{1, 2})
	b := mkTensor(t, []uint64{3, 3}, [][]uint64{{2, 2}, {0, 1}}, []float64{2, 1})
	if !Equal(a, b) {
		t.Fatal("order-insensitive equality failed")
	}
	c := b.Clone()
	c.Vals[0] += 1e-13
	if Equal(a, c) {
		t.Fatal("exact equality should fail on perturbed value")
	}
	if !ApproxEqual(a, c, 1e-9) {
		t.Fatal("approx equality should pass")
	}
	d := mkTensor(t, []uint64{3, 4}, [][]uint64{{0, 1}}, []float64{1})
	if Equal(a, d) {
		t.Fatal("different dims must not compare equal")
	}
	// Cancellation: duplicate coords summing to zero equal an empty tensor.
	e := mkTensor(t, []uint64{3, 3}, [][]uint64{{1, 1}, {1, 1}}, []float64{5, -5})
	f := New([]uint64{3, 3}, 0)
	if !Equal(e, f) {
		t.Fatal("cancelling duplicates should equal empty tensor")
	}
}

func TestDensityAndSize(t *testing.T) {
	a := mkTensor(t, []uint64{10, 10}, [][]uint64{{0, 0}, {1, 1}}, []float64{1, 1})
	if a.Size() != 100 {
		t.Fatalf("Size=%g", a.Size())
	}
	if d := a.Density(); d != 0.02 {
		t.Fatalf("Density=%g", d)
	}
}

func TestDedupPropertyRandom(t *testing.T) {
	// Dedup must preserve the At() sum for every coordinate.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []uint64{uint64(rng.Intn(4) + 1), uint64(rng.Intn(4) + 1)}
		a := randomTensor(rng, dims, rng.Intn(30))
		before := map[[2]uint64]float64{}
		for i := range a.Vals {
			before[[2]uint64{a.Coords[0][i], a.Coords[1][i]}] += a.Vals[i]
		}
		a.Dedup()
		seen := map[[2]uint64]bool{}
		for i := range a.Vals {
			k := [2]uint64{a.Coords[0][i], a.Coords[1][i]}
			if seen[k] {
				return false // duplicate survived
			}
			seen[k] = true
			if a.Vals[i] != before[k] {
				return false
			}
		}
		for k, v := range before {
			if v != 0 && !seen[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoordsOf(t *testing.T) {
	a := mkTensor(t, []uint64{5, 6, 7}, [][]uint64{{1, 2, 3}}, []float64{9})
	got := a.CoordsOf(0, nil)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("CoordsOf = %v", got)
	}
}
