package coo

import (
	"fmt"
	"math/bits"
)

// Strides returns row-major strides for the given mode extents: the last
// mode varies fastest. Strides(d)[m] is the multiplier applied to the mode-m
// coordinate when linearizing. An error is returned if the product of
// extents does not fit in a uint64 (linearized indices would overflow).
func Strides(dims []uint64) ([]uint64, error) {
	strides := make([]uint64, len(dims))
	acc := uint64(1)
	for m := len(dims) - 1; m >= 0; m-- {
		strides[m] = acc
		if dims[m] == 0 {
			return nil, fmt.Errorf("%w: mode %d has zero extent", ErrShape, m)
		}
		hi, lo := bits.Mul64(acc, dims[m])
		if hi != 0 {
			return nil, fmt.Errorf("%w: linearized extent of dims %v overflows uint64", ErrShape, dims)
		}
		acc = lo
	}
	return strides, nil
}

// LinearSize returns the product of extents, or an error on uint64 overflow.
func LinearSize(dims []uint64) (uint64, error) {
	acc := uint64(1)
	for m, d := range dims {
		if d == 0 {
			return 0, fmt.Errorf("%w: mode %d has zero extent", ErrShape, m)
		}
		hi, lo := bits.Mul64(acc, d)
		if hi != 0 {
			return 0, fmt.Errorf("%w: linearized extent of dims %v overflows uint64", ErrShape, dims)
		}
		acc = lo
	}
	return acc, nil
}

// Linearize maps a coordinate tuple to a single row-major index. The
// strides must come from Strides, which rejects extent sets whose product
// overflows uint64; in-range coordinates therefore cannot overflow here.
//
//fastcc:hotpath
func Linearize(coords, strides []uint64) uint64 {
	idx := uint64(0)
	for m, c := range coords {
		idx += c * strides[m] //fastcc:allow linovf -- Strides validated the extent product
	}
	return idx
}

// Delinearize is the inverse of Linearize for the given extents: it writes
// the coordinate tuple of idx into dst (which must have len(dims) entries).
func Delinearize(idx uint64, dims []uint64, dst []uint64) {
	for m := len(dims) - 1; m >= 0; m-- {
		dst[m] = idx % dims[m]
		idx /= dims[m]
	}
}

// subDims gathers the extents of the selected modes, in order.
func subDims(dims []uint64, modes []int) []uint64 {
	out := make([]uint64, len(modes))
	for k, m := range modes {
		out[k] = dims[m]
	}
	return out
}

// LinearizeModes computes, for every stored element, the linearized index of
// the selected mode subset. The result has one entry per nonzero.
func (t *Tensor) LinearizeModes(modes []int) ([]uint64, error) {
	dims := subDims(t.Dims, modes)
	strides, err := Strides(dims)
	if err != nil {
		return nil, err
	}
	n := t.NNZ()
	out := make([]uint64, n)
	// Accumulate one mode at a time so each pass streams through a single
	// coordinate array (SoA-friendly).
	for k, m := range modes {
		cs := t.Coords[m]
		s := strides[k]
		for i := 0; i < n; i++ {
			out[i] += cs[i] * s
		}
	}
	return out, nil
}
