//go:build !fastcc_checked

package coo

// Checked reports whether the fastcc_checked matrix content stamps are
// compiled in. Tests use it to decide whether a deliberate mutation of a
// stamped matrix must panic (checked builds) or pass silently (normal
// builds).
const Checked = false

// checkedMatrix is the zero-sized placeholder for the checked-mode content
// stamp; the normal build trusts the "do not mutate after wrapping"
// contract documented on core.NewOperand and Preshard and pays nothing
// for it.
type checkedMatrix struct{}

// Stamp / VerifyStamp implement the content hash only under fastcc_checked;
// the normal build wraps and shards the matrix without hashing it.
func (m *Matrix) Stamp()             {}
func (m *Matrix) VerifyStamp(string) {}
