package coo

import (
	"strings"
	"testing"
)

func FuzzReadTNS(f *testing.F) {
	f.Add("1 2 3 1.5\n4 1 1 -2\n")
	f.Add("# dims: 4 4\n1 1 0.5\n")
	f.Add("# comment\n\n2 2 1e300\n")
	f.Add("0 0 0\n")
	f.Add("x")
	f.Fuzz(func(t *testing.T, in string) {
		tn, err := ReadTNS(strings.NewReader(in)) // must never panic
		if err != nil {
			return
		}
		if verr := tn.Validate(); verr != nil {
			t.Fatalf("ReadTNS accepted invalid tensor: %v\ninput: %q", verr, in)
		}
		// Round-trip: our own writer output must re-parse equal.
		var sb strings.Builder
		if werr := WriteTNS(&sb, tn); werr != nil {
			t.Fatalf("WriteTNS: %v", werr)
		}
		back, rerr := ReadTNS(strings.NewReader(sb.String()))
		if rerr != nil {
			t.Fatalf("re-parse: %v", rerr)
		}
		if !Equal(tn, back) {
			t.Fatalf("write/read round trip changed tensor\ninput: %q", in)
		}
	})
}
