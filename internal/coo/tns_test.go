package coo

import (
	"math/rand"
	"strings"
	"testing"
)

func TestTNSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomTensor(rng, []uint64{9, 5, 13}, 40)
	a.Dedup()
	var sb strings.Builder
	if err := WriteTNS(&sb, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadTNS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, b) {
		t.Fatal("tns round trip not equal")
	}
	if len(b.Dims) != 3 || b.Dims[0] != 9 || b.Dims[1] != 5 || b.Dims[2] != 13 {
		t.Fatalf("dims lost in round trip: %v", b.Dims)
	}
}

func TestReadTNSInfersDims(t *testing.T) {
	in := "1 2 3 1.5\n4 1 1 -2\n"
	tn, err := ReadTNS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tn.Order() != 3 || tn.NNZ() != 2 {
		t.Fatalf("got %v", tn)
	}
	if tn.Dims[0] != 4 || tn.Dims[1] != 2 || tn.Dims[2] != 3 {
		t.Fatalf("inferred dims %v", tn.Dims)
	}
	if got := tn.At([]uint64{0, 1, 2}); got != 1.5 {
		t.Fatalf("value = %g", got)
	}
}

func TestReadTNSCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\n1 1 2.0\n# another\n2 2 3.0\n"
	tn, err := ReadTNS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tn.NNZ() != 2 {
		t.Fatalf("nnz=%d", tn.NNZ())
	}
}

func TestReadTNSErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"short line":        "1\n",
		"zero coord":        "0 1 1.0\n",
		"bad coord":         "x 1 1.0\n",
		"bad value":         "1 1 zzz\n",
		"order change":      "1 1 1.0\n1 1 1 1.0\n",
		"bad dims header":   "# dims: x\n1 1 1.0\n",
		"dims header short": "# dims: 4\n1 1 1.0\n",
		"coord beyond dims": "# dims: 2 2\n3 1 1.0\n",
	}
	for name, in := range cases {
		if _, err := ReadTNS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestReadTNSHeaderOnlyEmptyTensor(t *testing.T) {
	tn, err := ReadTNS(strings.NewReader("# dims: 3 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tn.Order() != 2 || tn.NNZ() != 0 || tn.Dims[1] != 4 {
		t.Fatalf("got %v", tn)
	}
}
