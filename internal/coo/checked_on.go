//go:build fastcc_checked

// fastcc_checked mode: a Matrix carries a content stamp — a hash over its
// backing slices — set when the matrix is frozen behind an operand
// (core.NewOperand, reached from Preshard and from the one-shot Contract
// path) and re-verified at every shard build. Cached shards index into the
// matrix's arrays, so a caller mutating the tensor through the original
// slices after preparing it would silently poison every table built later;
// under the checked build that mutation becomes a deterministic panic at
// the next build instead.
//
// The stamp is a full O(nnz) rehash per verification. That is far too slow
// for production — which is exactly why the invariant is a documented
// contract plus this sanitizer, not a runtime check in normal builds.
package coo

import (
	"fmt"
	"math"
)

// Checked reports whether the fastcc_checked matrix content stamps are
// compiled in.
const Checked = true

type checkedMatrix struct {
	sum     uint64
	stamped bool
}

// Stamp freezes the matrix's content hash. Call it at the point the
// "immutable from here on" contract begins; VerifyStamp panics on any
// later divergence. Restamping is allowed and moves the contract point.
func (m *Matrix) Stamp() {
	m.ck.sum = m.contentSum()
	m.ck.stamped = true
}

// VerifyStamp panics when the matrix content no longer hashes to the value
// frozen by Stamp — some caller mutated the tensor through the original
// slices after handing it to an operand — or when the matrix was never
// stamped, meaning a shard build reached a matrix that skipped the
// NewOperand funnel.
func (m *Matrix) VerifyStamp(where string) {
	if !m.ck.stamped {
		panic(fmt.Sprintf(
			"%s: matrix content stamp missing: shard build reached a matrix that never passed through core.NewOperand/Preshard",
			where))
	}
	if got := m.contentSum(); got != m.ck.sum {
		panic(fmt.Sprintf(
			"%s: matrix content stamp mismatch (sum %#x, stamped %#x): the operand's backing slices were mutated after Preshard/NewOperand; cached shard tables index into them, so every later build would be silently wrong",
			where, got, m.ck.sum))
	}
}

// contentSum hashes the matrix's dims, lengths and all three backing
// slices with word-at-a-time FNV-1a. Word granularity (rather than
// per-byte) keeps the checked build's O(nnz) verification tolerable while
// still catching any single-element mutation.
func (m *Matrix) contentSum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		h = (h ^ x) * prime64
	}
	mix(m.ExtDim)
	mix(m.CtrDim)
	mix(uint64(len(m.Ext)))
	mix(uint64(len(m.Ctr)))
	mix(uint64(len(m.Val)))
	for _, x := range m.Ext {
		mix(x)
	}
	for _, x := range m.Ctr {
		mix(x)
	}
	for _, v := range m.Val {
		mix(math.Float64bits(v))
	}
	return h
}
