package coo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPartitionMatrix(rng *rand.Rand, extDim, ctrDim uint64, nnz int) *Matrix {
	m := &Matrix{ExtDim: extDim, CtrDim: ctrDim}
	for i := 0; i < nnz; i++ {
		m.Ext = append(m.Ext, rng.Uint64()%extDim)
		m.Ctr = append(m.Ctr, rng.Uint64()%ctrDim)
		m.Val = append(m.Val, float64(rng.Intn(9)-4))
	}
	return m
}

// checkPartition verifies the partition invariants against the source
// matrix: segment sizes match per-tile counts, every entry maps back to a
// source nonzero of that tile, and the original nonzero order is preserved
// within each tile.
func checkPartition(t *testing.T, m *Matrix, tile uint64, p *TilePartition) {
	t.Helper()
	wantTiles := int((m.ExtDim + tile - 1) / tile)
	if p.Tiles != wantTiles || len(p.Offs) != wantTiles+1 {
		t.Fatalf("tiles=%d offs=%d want %d", p.Tiles, len(p.Offs), wantTiles)
	}
	if p.Offs[0] != 0 || p.Offs[wantTiles] != m.NNZ() {
		t.Fatalf("offs bounds [%d, %d] want [0, %d]", p.Offs[0], p.Offs[wantTiles], m.NNZ())
	}
	// Reconstruct each tile's expected entry sequence by a serial filter
	// pass (the seed's scan order) and compare 1:1.
	type entry struct {
		ctr   uint64
		intra uint32
		val   float64
	}
	want := make([][]entry, wantTiles)
	for k := 0; k < m.NNZ(); k++ {
		i := int(m.Ext[k] / tile)
		want[i] = append(want[i], entry{m.Ctr[k], uint32(m.Ext[k] - uint64(i)*tile), m.Val[k]})
	}
	for i := 0; i < wantTiles; i++ {
		lo, hi := p.Offs[i], p.Offs[i+1]
		if hi-lo != len(want[i]) {
			t.Fatalf("tile %d has %d entries want %d", i, hi-lo, len(want[i]))
		}
		for k := lo; k < hi; k++ {
			w := want[i][k-lo]
			if p.Ctr[k] != w.ctr || p.Intra[k] != w.intra || p.Val[k] != w.val {
				t.Fatalf("tile %d entry %d = (%d,%d,%g) want (%d,%d,%g)",
					i, k-lo, p.Ctr[k], p.Intra[k], p.Val[k], w.ctr, w.intra, w.val)
			}
		}
	}
	// NonEmpty must list exactly the tiles with entries, ascending.
	ne := p.NonEmpty()
	j := 0
	for i := 0; i < wantTiles; i++ {
		if len(want[i]) > 0 {
			if j >= len(ne) || ne[j] != i {
				t.Fatalf("NonEmpty missing tile %d: %v", i, ne)
			}
			j++
		}
	}
	if j != len(ne) {
		t.Fatalf("NonEmpty has %d extra entries: %v", len(ne)-j, ne)
	}
}

func TestPartitionByTileBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		extDim, ctrDim uint64
		tile           uint64
		nnz            int
	}{
		{100, 7, 32, 500},    // pow2 tile, ragged last
		{100, 7, 30, 500},    // non-pow2 tile
		{64, 5, 64, 200},     // single tile
		{64, 5, 1, 200},      // degenerate 1-wide tiles
		{10, 3, 1 << 12, 30}, // tile larger than extent
		{97, 13, 30, 0},      // empty matrix
	} {
		m := randomPartitionMatrix(rng, tc.extDim, tc.ctrDim, tc.nnz)
		p := PartitionByTile(m, tc.tile, 4)
		checkPartition(t, m, tc.tile, p)
		p.Release()
	}
}

func TestPartitionOrderIndependentOfWorkers(t *testing.T) {
	// The scatter must preserve global nonzero order within each tile for
	// ANY worker count — downstream hash builds rely on identical insertion
	// order for bit-identical tables.
	rng := rand.New(rand.NewSource(2))
	m := randomPartitionMatrix(rng, 300, 20, 50000)
	ref := PartitionByTile(m, 32, 1)
	defer ref.Release()
	for _, workers := range []int{2, 3, 8, 64} {
		p := PartitionByTile(m, 32, workers)
		if len(p.Ctr) != len(ref.Ctr) {
			t.Fatalf("workers=%d: arena length %d want %d", workers, len(p.Ctr), len(ref.Ctr))
		}
		for k := range ref.Ctr {
			if p.Ctr[k] != ref.Ctr[k] || p.Intra[k] != ref.Intra[k] || p.Val[k] != ref.Val[k] {
				t.Fatalf("workers=%d: entry %d differs from serial partition", workers, k)
			}
		}
		for i := range ref.Offs {
			if p.Offs[i] != ref.Offs[i] {
				t.Fatalf("workers=%d: offs[%d]=%d want %d", workers, i, p.Offs[i], ref.Offs[i])
			}
		}
		p.Release()
	}
}

func TestPartitionArenaReuse(t *testing.T) {
	// Release parks the arenas; the next partition of comparable size must
	// not corrupt results (the arenas are fully overwritten).
	rng := rand.New(rand.NewSource(3))
	a := randomPartitionMatrix(rng, 128, 9, 3000)
	b := randomPartitionMatrix(rng, 90, 11, 2500)
	pa := PartitionByTile(a, 16, 3)
	checkPartition(t, a, 16, pa)
	pa.Release()
	pb := PartitionByTile(b, 30, 3)
	checkPartition(t, b, 30, pb)
	pb.Release()
}

func TestPartitionWorkersBounds(t *testing.T) {
	if w := partitionWorkers(8, 10, 1<<20); w != 8 {
		t.Fatalf("normal case: %d", w)
	}
	if w := partitionWorkers(8, 10, 100); w != 1 {
		t.Fatalf("tiny input should go serial: %d", w)
	}
	if w := partitionWorkers(64, partitionGridCap, 1<<20); w != 1 {
		t.Fatalf("huge grid should clamp to 1: %d", w)
	}
	if w := partitionWorkers(0, 10, 1<<20); w != 1 {
		t.Fatalf("zero workers: %d", w)
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		extDim := uint64(rng.Intn(200) + 1)
		ctrDim := uint64(rng.Intn(40) + 1)
		tile := uint64(rng.Intn(70) + 1)
		m := randomPartitionMatrix(rng, extDim, ctrDim, rng.Intn(400))
		p := PartitionByTile(m, tile, rng.Intn(6)+1)
		defer p.Release()
		// Totals and round-trip: every tile segment's entries map back into
		// the tile's extent range.
		total := 0
		for i := 0; i < p.Tiles; i++ {
			lo, hi := p.Offs[i], p.Offs[i+1]
			if hi < lo {
				return false
			}
			total += hi - lo
			for k := lo; k < hi; k++ {
				ext := uint64(i)*tile + uint64(p.Intra[k])
				if ext >= extDim {
					return false
				}
			}
		}
		return total == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
