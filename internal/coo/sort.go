package coo

import (
	"math"
	"sort"

	"fastcc/internal/radix"
)

// lessAt compares elements i and j lexicographically over modes 0..order-1.
func (t *Tensor) lessAt(i, j int) bool {
	for m := range t.Coords {
		ci, cj := t.Coords[m][i], t.Coords[m][j]
		if ci != cj {
			return ci < cj
		}
	}
	return false
}

// equalAt reports whether elements i and j have identical coordinates.
func (t *Tensor) equalAt(i, j int) bool {
	for m := range t.Coords {
		if t.Coords[m][i] != t.Coords[m][j] {
			return false
		}
	}
	return true
}

// Sort orders elements lexicographically by coordinate tuple (mode 0
// outermost). When the whole index space linearizes into a uint64 the sort
// uses precomputed keys; otherwise it falls back to tuple comparison.
func (t *Tensor) Sort() {
	n := t.NNZ()
	if n <= 1 {
		return
	}
	if size, err := LinearSize(t.Dims); err == nil && size > 0 {
		modes := make([]int, t.Order())
		for m := range modes {
			modes[m] = m
		}
		keys, kerr := t.LinearizeModes(modes)
		if kerr == nil {
			t.sortByKeys(keys)
			return
		}
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return t.lessAt(perm[a], perm[b]) })
	t.applyPerm(perm)
}

// sortByKeys stably sorts elements by the given per-element keys using the
// parallel radix sort (paper-scale tensors have tens of millions of
// nonzeros, and canonicalization is sort-dominated).
func (t *Tensor) sortByKeys(keys []uint64) {
	n := len(keys)
	if n > 1<<32 {
		// Permutation payload is uint32; fall back for gigantic tensors.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		sort.Slice(perm, func(a, b int) bool { return keys[perm[a]] < keys[perm[b]] })
		t.applyPerm(perm)
		return
	}
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	radix.SortWithPerm(keys, perm, 0)
	t.applyPerm32(perm)
}

// applyPerm reorders all element arrays so that new position p holds old
// element perm[p].
func (t *Tensor) applyPerm(perm []int) {
	n := len(perm)
	tmpU := make([]uint64, n)
	for m := range t.Coords {
		src := t.Coords[m]
		for p, i := range perm {
			tmpU[p] = src[i]
		}
		copy(src, tmpU)
	}
	tmpV := make([]float64, n)
	for p, i := range perm {
		tmpV[p] = t.Vals[i]
	}
	copy(t.Vals, tmpV)
}

// applyPerm32 is applyPerm for the radix sort's uint32 permutation.
func (t *Tensor) applyPerm32(perm []uint32) {
	n := len(perm)
	tmpU := make([]uint64, n)
	for m := range t.Coords {
		src := t.Coords[m]
		for p, i := range perm {
			tmpU[p] = src[i]
		}
		copy(src, tmpU)
	}
	tmpV := make([]float64, n)
	for p, i := range perm {
		tmpV[p] = t.Vals[i]
	}
	copy(t.Vals, tmpV)
}

// Dedup sorts the tensor and then sums values of duplicate coordinates,
// compacting in place. The result has strictly increasing coordinate tuples.
func (t *Tensor) Dedup() {
	t.Sort()
	n := t.NNZ()
	if n <= 1 {
		return
	}
	w := 0
	for i := 1; i < n; i++ {
		if t.equalAt(w, i) {
			t.Vals[w] += t.Vals[i]
			continue
		}
		w++
		if w != i {
			for m := range t.Coords {
				t.Coords[m][w] = t.Coords[m][i]
			}
			t.Vals[w] = t.Vals[i]
		}
	}
	w++
	for m := range t.Coords {
		t.Coords[m] = t.Coords[m][:w]
	}
	t.Vals = t.Vals[:w]
}

// Equal reports exact equality of dims and canonicalized (sorted, deduped)
// contents. Both tensors are cloned so the receivers are not mutated.
func Equal(a, b *Tensor) bool {
	return ApproxEqual(a, b, 0)
}

// ApproxEqual reports equality of dims and canonicalized contents with
// per-element absolute-or-relative tolerance tol. Elements with value zero
// are dropped before comparison.
func ApproxEqual(a, b *Tensor, tol float64) bool {
	if len(a.Dims) != len(b.Dims) {
		return false
	}
	for m := range a.Dims {
		if a.Dims[m] != b.Dims[m] {
			return false
		}
	}
	ca, cb := a.Clone(), b.Clone()
	ca.Dedup()
	cb.Dedup()
	ca.dropTiny(tol)
	cb.dropTiny(tol)
	if ca.NNZ() != cb.NNZ() {
		return false
	}
	for i := range ca.Vals {
		for m := range ca.Coords {
			if ca.Coords[m][i] != cb.Coords[m][i] {
				return false
			}
		}
		va, vb := ca.Vals[i], cb.Vals[i]
		if va == vb {
			continue
		}
		diff := math.Abs(va - vb)
		scale := math.Max(math.Abs(va), math.Abs(vb))
		if diff > tol && diff > tol*scale {
			return false
		}
	}
	return true
}

// dropTiny removes entries with |v| <= tol (and exact zeros when tol == 0).
func (t *Tensor) dropTiny(tol float64) {
	w := 0
	for i, v := range t.Vals {
		if math.Abs(v) <= tol {
			continue
		}
		for m := range t.Coords {
			t.Coords[m][w] = t.Coords[m][i]
		}
		t.Vals[w] = v
		w++
	}
	for m := range t.Coords {
		t.Coords[m] = t.Coords[m][:w]
	}
	t.Vals = t.Vals[:w]
}

// IsSorted reports whether elements are in nondecreasing lexicographic order.
func (t *Tensor) IsSorted() bool {
	for i := 1; i < t.NNZ(); i++ {
		if t.lessAt(i, i-1) {
			return false
		}
	}
	return true
}
