// Package coo implements the COOrdinate (COO) sparse tensor representation
// used as the input and output format of FaSTCC, together with the
// linearization machinery that turns an N-mode contraction into the
// matrixized form O[l,r] = sum_c L[l,c]*R[c,r] (paper Section 2.1).
//
// Coordinates are stored structure-of-arrays: Coords[m][i] is the coordinate
// of nonzero i along mode m. This layout keeps per-mode scans (linearization,
// histogramming, sorting keys) sequential in memory.
package coo

import (
	"errors"
	"fmt"
	"math"
)

// Tensor is an N-mode sparse tensor in COO format.
//
// Invariants (checked by Validate):
//   - len(Coords) == len(Dims) (one coordinate array per mode)
//   - all coordinate arrays and Vals have equal length
//   - every coordinate is < the corresponding mode extent
//
// Duplicate coordinates are permitted (they denote pending accumulation)
// until Dedup is called; most consumers require deduplicated input.
type Tensor struct {
	// Dims holds the extent of each mode.
	Dims []uint64
	// Coords[m][i] is the mode-m coordinate of the i-th stored element.
	Coords [][]uint64
	// Vals[i] is the numeric value of the i-th stored element.
	Vals []float64
}

// ErrShape reports a structural problem with a tensor or a contraction spec.
var ErrShape = errors.New("coo: shape error")

// ErrBadSpec reports a contraction spec that is malformed independently of
// the operands' extents: mismatched or empty mode lists, out-of-range modes,
// or a mode contracted twice. It unwraps from every such Validate failure so
// callers can distinguish "fix the spec" from "fix the data" (ErrShape).
var ErrBadSpec = errors.New("coo: bad contraction spec")

// ShapeError reports a contracted-extent mismatch between two operands,
// carrying the mode/extent detail so callers can diagnose programmatically
// via errors.As. It unwraps to ErrShape.
type ShapeError struct {
	LeftMode, RightMode     int
	LeftExtent, RightExtent uint64
}

func (e *ShapeError) Error() string {
	return fmt.Sprintf("%v: contracted extents differ (left mode %d extent %d, right mode %d extent %d)",
		ErrShape, e.LeftMode, e.LeftExtent, e.RightMode, e.RightExtent)
}

// Unwrap makes errors.Is(err, ErrShape) hold for extent mismatches.
func (e *ShapeError) Unwrap() error { return ErrShape }

// New returns an empty tensor with the given mode extents and capacity hint.
func New(dims []uint64, capHint int) *Tensor {
	t := &Tensor{
		Dims:   append([]uint64(nil), dims...),
		Coords: make([][]uint64, len(dims)),
		Vals:   make([]float64, 0, capHint),
	}
	for m := range t.Coords {
		t.Coords[m] = make([]uint64, 0, capHint)
	}
	return t
}

// Order returns the number of modes.
func (t *Tensor) Order() int { return len(t.Dims) }

// NNZ returns the number of stored elements.
func (t *Tensor) NNZ() int { return len(t.Vals) }

// Size returns the total number of positions in the dense index space as a
// float64 (the product of extents can overflow uint64 for large tensors).
func (t *Tensor) Size() float64 {
	s := 1.0
	for _, d := range t.Dims {
		s *= float64(d)
	}
	return s
}

// Density returns NNZ divided by the dense index-space size.
func (t *Tensor) Density() float64 {
	s := t.Size()
	if s == 0 {
		return 0
	}
	return float64(t.NNZ()) / s
}

// Append adds one element. coords must have one entry per mode; it is copied.
func (t *Tensor) Append(coords []uint64, v float64) {
	for m := range t.Coords {
		t.Coords[m] = append(t.Coords[m], coords[m])
	}
	t.Vals = append(t.Vals, v)
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{
		Dims:   append([]uint64(nil), t.Dims...),
		Coords: make([][]uint64, len(t.Coords)),
		Vals:   append([]float64(nil), t.Vals...),
	}
	for m := range t.Coords {
		c.Coords[m] = append([]uint64(nil), t.Coords[m]...)
	}
	return c
}

// Validate checks the structural invariants listed on Tensor.
func (t *Tensor) Validate() error {
	if len(t.Coords) != len(t.Dims) {
		return fmt.Errorf("%w: %d coordinate arrays for %d modes", ErrShape, len(t.Coords), len(t.Dims))
	}
	n := len(t.Vals)
	for m, cs := range t.Coords {
		if len(cs) != n {
			return fmt.Errorf("%w: mode %d has %d coords, want %d", ErrShape, m, len(cs), n)
		}
		for i, c := range cs {
			if c >= t.Dims[m] {
				return fmt.Errorf("%w: element %d coord %d out of range for mode %d (extent %d)", ErrShape, i, c, m, t.Dims[m])
			}
		}
	}
	for i, v := range t.Vals {
		if math.IsNaN(v) {
			return fmt.Errorf("%w: element %d is NaN", ErrShape, i)
		}
	}
	return nil
}

// At returns the sum of values stored at the given coordinates. It is a
// linear scan intended for tests and small tensors only.
func (t *Tensor) At(coords []uint64) float64 {
	sum := 0.0
outer:
	for i := range t.Vals {
		for m := range t.Coords {
			if t.Coords[m][i] != coords[m] {
				continue outer
			}
		}
		sum += t.Vals[i]
	}
	return sum
}

// CoordsOf copies the coordinates of element i into dst and returns it.
func (t *Tensor) CoordsOf(i int, dst []uint64) []uint64 {
	dst = dst[:0]
	for m := range t.Coords {
		dst = append(dst, t.Coords[m][i])
	}
	return dst
}

// DropZeros removes elements whose value is exactly zero, in place.
func (t *Tensor) DropZeros() {
	w := 0
	for i, v := range t.Vals {
		if v == 0 {
			continue
		}
		for m := range t.Coords {
			t.Coords[m][w] = t.Coords[m][i]
		}
		t.Vals[w] = v
		w++
	}
	for m := range t.Coords {
		t.Coords[m] = t.Coords[m][:w]
	}
	t.Vals = t.Vals[:w]
}

// String summarizes the tensor without dumping elements.
func (t *Tensor) String() string {
	return fmt.Sprintf("coo.Tensor{order=%d dims=%v nnz=%d}", t.Order(), t.Dims, t.NNZ())
}
