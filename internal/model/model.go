package model

import (
	"fmt"
	"math"
	"math/bits"
)

// AccumKind selects the output tile accumulator.
type AccumKind int

const (
	// AccumAuto lets the probabilistic model decide (Algorithm 7).
	AccumAuto AccumKind = iota
	// AccumDense forces the dense tile (value buffer + apos + bitmask).
	AccumDense
	// AccumSparse forces the sparse tile (open-addressing hash table).
	AccumSparse
)

func (k AccumKind) String() string {
	switch k {
	case AccumAuto:
		return "auto"
	case AccumDense:
		return "dense"
	case AccumSparse:
		return "sparse"
	}
	return fmt.Sprintf("AccumKind(%d)", int(k))
}

// KernelID names one member of the tile microkernel family: the inner
// loop the contract phase runs per tile pair. The four specialized kernels
// cover the {hash, sorted} representation × {dense, sparse} accumulator
// grid; KernelGeneric is the single pre-specialization loop kept as the
// reference implementation (and as the baseline the hotpath experiment
// measures the specialized kernels against).
type KernelID int

const (
	// KernelAuto lets SelectKernel pick the specialized kernel matching
	// the run's representation and accumulator.
	KernelAuto KernelID = iota
	// KernelGeneric forces the generic co-iteration loop with interface
	// accumulator dispatch — the reference the specialized family is
	// checked (bit-for-bit) and benchmarked against.
	KernelGeneric
	// KernelHashDense co-iterates sealed hash tables with batched probes
	// and scatters straight into the dense tile grid.
	KernelHashDense
	// KernelHashSparse co-iterates sealed hash tables with batched probes
	// and upserts into the sparse (hash) accumulator.
	KernelHashSparse
	// KernelSortedDense merges sorted tiles and scatters into the dense
	// grid.
	KernelSortedDense
	// KernelSortedSparse merges sorted tiles into the sparse accumulator.
	KernelSortedSparse

	// NumKernels bounds the kernel-id space for counter arrays.
	NumKernels = int(KernelSortedSparse) + 1
)

func (k KernelID) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelGeneric:
		return "generic"
	case KernelHashDense:
		return "hash-dense"
	case KernelHashSparse:
		return "hash-sparse"
	case KernelSortedDense:
		return "sorted-dense"
	case KernelSortedSparse:
		return "sorted-sparse"
	}
	return fmt.Sprintf("KernelID(%d)", int(k))
}

// SelectKernel picks the specialized microkernel for a run: the sorted flag
// carries the input representation (core.InputRep, which this package must
// not import), kind the resolved accumulator. AccumAuto never reaches here
// — Decide/ForceKind resolve the kind first — but map it to the generic
// loop rather than guessing.
func SelectKernel(sorted bool, kind AccumKind) KernelID {
	switch {
	case sorted && kind == AccumDense:
		return KernelSortedDense
	case sorted && kind == AccumSparse:
		return KernelSortedSparse
	case !sorted && kind == AccumDense:
		return KernelHashDense
	case !sorted && kind == AccumSparse:
		return KernelHashSparse
	}
	return KernelGeneric
}

// maxTileSide caps tile sides so intra-tile indices fit in uint32 (tile
// tables and accumulators store them as uint32).
const maxTileSide = uint64(1) << 31

// Inputs are the contraction statistics the model consumes: nonzero counts
// of the two matrixized operands and the extents of the linearized index
// spaces L, R and C.
type Inputs struct {
	NNZL, NNZR int64
	LDim, RDim uint64
	CDim       uint64
}

// Decision is the model output: accumulator kind and tile sizes, plus the
// intermediate estimates reported in the paper's Table 3.
type Decision struct {
	Kind  AccumKind
	TileL uint64
	TileR uint64
	// Kernel is the tile microkernel the contract phase will run, resolved
	// by the engine from the representation and accumulator kind (or forced
	// by the caller). Zero (KernelAuto) in a raw Decide output; the engine's
	// plan step fills it in so Stats exposes the choice.
	Kernel KernelID

	// PL and PR are the input densities p_L = nnz_L/(L·C), p_R = nnz_R/(R·C).
	PL, PR float64
	// PNonzero is the estimated output density 1-(1-pL·pR)^C (Section 5.1).
	PNonzero float64
	// ENNZ is E_nnz(T²), the expected nonzeros in a cache-sized dense tile.
	ENNZ float64
	// DenseT is the cache-derived dense tile side sqrt(L3/(Ncores·DT))
	// rounded down to a power of two (Section 6.2).
	DenseT uint64
}

// EstimateOutputDensity computes Φ_res = 1 - (1 - pL·pR)^C under the
// uniform-random-nonzeros assumption of Section 5.1, evaluated in log space
// for numerical robustness at the extreme densities of FROSTT tensors
// (pL as small as 7.8e-8 with C ~ 1e9).
func EstimateOutputDensity(in Inputs) (pL, pR, pNonzero float64) {
	lc := float64(in.LDim) * float64(in.CDim)
	rc := float64(in.RDim) * float64(in.CDim)
	if lc == 0 || rc == 0 {
		return 0, 0, 0
	}
	pL = float64(in.NNZL) / lc
	pR = float64(in.NNZR) / rc
	pOverlap := pL * pR
	if pOverlap <= 0 {
		return pL, pR, 0
	}
	if pOverlap >= 1 {
		return pL, pR, 1
	}
	// 1-(1-x)^C = -expm1(C*log1p(-x)): exact for tiny x·C where the direct
	// form underflows to 0.
	pNonzero = -math.Expm1(float64(in.CDim) * math.Log1p(-pOverlap))
	return pL, pR, pNonzero
}

// DenseTileSide returns sqrt(L3/(Ncores·DT)) rounded DOWN to a power of two
// (the paper rounds 724 down to 512 so the drain bitmask arithmetic works).
func DenseTileSide(p Platform) uint64 {
	words := p.L3Bytes / (int64(p.Cores) * p.WordBytes)
	if words < 1 {
		return 1
	}
	t := uint64(math.Sqrt(float64(words)))
	return floorPow2(t)
}

// SparseTileSide returns sqrt(L3_bytes/(17.7·δ·N)) rounded UP to the next
// power of two (Section 5.4: 16-byte entries at 90 % utilization,
// 16/0.9 ≈ 17.7). δ is the estimated output density.
func SparseTileSide(p Platform, delta float64) uint64 {
	if delta <= 0 {
		return maxTileSide
	}
	t2 := float64(p.L3Bytes) / (17.7 * delta * float64(p.Cores))
	t := uint64(math.Ceil(math.Sqrt(t2)))
	ct := ceilPow2(t)
	if ct > maxTileSide {
		return maxTileSide
	}
	return ct
}

// Decide runs Algorithm 7: estimate the expected nonzeros in a cache-sized
// dense tile; if at least one, use dense tiles of that size, otherwise use
// sparse tiles sized from the output density. Tile sides are clamped to the
// (power-of-two ceiling of the) output extents so degenerate dimensions do
// not waste accumulator space.
func Decide(in Inputs, p Platform) (Decision, error) {
	if err := p.Validate(); err != nil {
		return Decision{}, err
	}
	if in.LDim == 0 || in.RDim == 0 || in.CDim == 0 {
		return Decision{}, fmt.Errorf("model: zero-extent index space %+v", in)
	}
	d := Decision{}
	d.PL, d.PR, d.PNonzero = EstimateOutputDensity(in)
	d.DenseT = DenseTileSide(p)
	d.ENNZ = d.PNonzero * float64(d.DenseT) * float64(d.DenseT)
	if d.ENNZ >= 1 {
		d.Kind = AccumDense
		d.TileL, d.TileR = d.DenseT, d.DenseT
	} else {
		d.Kind = AccumSparse
		t := SparseTileSide(p, d.PNonzero)
		d.TileL, d.TileR = t, t
	}
	d.TileL = clampTile(d.TileL, in.LDim)
	d.TileR = clampTile(d.TileR, in.RDim)
	return d, nil
}

// clampTile shrinks a tile side to the power-of-two ceiling of the extent
// when the extent is smaller than the tile, and enforces the uint32 bound.
func clampTile(t, dim uint64) uint64 {
	if dim < t {
		t = ceilPow2(dim)
	}
	if t > maxTileSide {
		t = maxTileSide
	}
	if t == 0 {
		t = 1
	}
	return t
}

// ForceKind returns the decision with the accumulator kind overridden and
// the tile sizes recomputed for that kind (forcing dense on a
// sparse-decided contraction must not keep the huge sparse tile, and vice
// versa).
func (d Decision) ForceKind(kind AccumKind, in Inputs, p Platform) Decision {
	if kind == AccumAuto || kind == d.Kind {
		return d
	}
	d.Kind = kind
	switch kind {
	case AccumDense:
		d.TileL, d.TileR = d.DenseT, d.DenseT
	case AccumSparse:
		t := SparseTileSide(p, d.PNonzero)
		d.TileL, d.TileR = t, t
	}
	d.TileL = clampTile(d.TileL, in.LDim)
	d.TileR = clampTile(d.TileR, in.RDim)
	return d
}

// ExpectedOutputNNZ returns the model's estimate of total output nonzeros.
func ExpectedOutputNNZ(in Inputs) float64 {
	_, _, p := EstimateOutputDensity(in)
	return p * float64(in.LDim) * float64(in.RDim)
}

func floorPow2(x uint64) uint64 {
	if x == 0 {
		return 1
	}
	return 1 << (63 - bits.LeadingZeros64(x))
}

func ceilPow2(x uint64) uint64 {
	if x <= 1 {
		return 1
	}
	return 1 << (64 - bits.LeadingZeros64(x-1))
}
