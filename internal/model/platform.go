// Package model implements FaSTCC's probabilistic modeling (paper Section 5
// and Algorithm 7): it estimates the output tensor's density from the input
// densities, chooses between a dense and a sparse tile accumulator, and
// selects the tile size from the platform's last-level-cache capacity.
package model

import (
	"fmt"
	"runtime"
)

// Platform describes the machine parameters the model needs: core count,
// shared last-level cache capacity, the floating-point word size DT, and
// the microarchitectural parameters the tile microkernels dispatch on
// (cache-line size and probe software-pipeline depth). The paper evaluates
// two platforms, reproduced here as profiles; Auto derives a profile for
// the current machine.
//
// LineBytes and ProbeDepth may be left zero: Line() and ProbeBatch()
// substitute detection defaults, so pre-existing Platform literals keep
// their meaning.
type Platform struct {
	Name      string
	Cores     int
	L3Bytes   int64
	WordBytes int64
	// LineBytes is the cache-line size the kernels' batching arithmetic
	// assumes; 0 means the architecture default (see Line).
	LineBytes int64
	// ProbeDepth is the number of hash probes the batched Sealed lookup
	// keeps in flight per LookupBatch chunk — the software-pipeline depth
	// that hides probe latency behind independent loads. 0 means the
	// default (see ProbeBatch).
	ProbeDepth int
}

// Architecture defaults for the dispatch seam. 64-byte lines hold on every
// platform Go targets that this engine cares about (x86-64, arm64 except
// Apple's 128-byte L2 sectors, riscv64); eight in-flight probes covers the
// typical 4-to-12-deep load queues' useful MLP without spilling the batch
// scratch out of registers/L1.
const (
	DefaultLineBytes  = 64
	DefaultProbeDepth = 8
	// MaxProbeDepth bounds ProbeDepth to the batch scratch the sealed
	// table's LookupBatch carries on its stack.
	MaxProbeDepth = 16
)

// Desktop8 models the paper's 8-core Intel i7-11700F: 16 MiB shared L3,
// 64-byte lines. Its dense tile size works out to sqrt(2 MiB / 8 B) = 512.
var Desktop8 = Platform{Name: "desktop8", Cores: 8, L3Bytes: 16 << 20, WordBytes: 8, LineBytes: 64, ProbeDepth: 8}

// Server64 models the paper's 64-core Threadripper 3990X: 256 MiB shared
// L3, 64-byte lines. sqrt(4 MiB / 8 B) = 724, rounded down to the power of
// two 512. The deeper load queues of Zen 2 take a 16-deep probe pipeline.
var Server64 = Platform{Name: "server64", Cores: 64, L3Bytes: 256 << 20, WordBytes: 8, LineBytes: 64, ProbeDepth: 16}

// Auto returns a profile for the current machine: GOMAXPROCS cores and an
// assumed 2 MiB L3 share per core (typical of recent x86 parts; exact LLC
// detection is not portable from pure Go), with architecture-default line
// size and probe depth.
func Auto() Platform {
	n := runtime.GOMAXPROCS(0)
	return Platform{
		Name: "auto", Cores: n, L3Bytes: int64(n) * (2 << 20), WordBytes: 8,
		LineBytes: DefaultLineBytes, ProbeDepth: DefaultProbeDepth,
	}
}

// Line returns the cache-line size in bytes, substituting the architecture
// default when the profile left it zero.
func (p Platform) Line() int64 {
	if p.LineBytes > 0 {
		return p.LineBytes
	}
	return DefaultLineBytes
}

// ProbeBatch returns the batched-probe pipeline depth, clamped to
// [1, MaxProbeDepth], substituting the default when the profile left it
// zero.
func (p Platform) ProbeBatch() int {
	d := p.ProbeDepth
	if d <= 0 {
		d = DefaultProbeDepth
	}
	if d > MaxProbeDepth {
		d = MaxProbeDepth
	}
	return d
}

// WithCores returns a copy of p with the core count (and proportional L3
// share assumption left intact) overridden — used by thread-scaling sweeps.
func (p Platform) WithCores(n int) Platform {
	p.Cores = n
	return p
}

// Validate checks that the platform parameters are usable.
func (p Platform) Validate() error {
	if p.Cores <= 0 {
		return fmt.Errorf("model: platform %q has %d cores", p.Name, p.Cores)
	}
	if p.L3Bytes <= 0 || p.WordBytes <= 0 {
		return fmt.Errorf("model: platform %q has invalid cache/word sizes", p.Name)
	}
	if p.LineBytes < 0 || p.ProbeDepth < 0 {
		return fmt.Errorf("model: platform %q has negative line size or probe depth", p.Name)
	}
	return nil
}
