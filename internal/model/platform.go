// Package model implements FaSTCC's probabilistic modeling (paper Section 5
// and Algorithm 7): it estimates the output tensor's density from the input
// densities, chooses between a dense and a sparse tile accumulator, and
// selects the tile size from the platform's last-level-cache capacity.
package model

import (
	"fmt"
	"runtime"
)

// Platform describes the machine parameters the model needs: core count,
// shared last-level cache capacity, and the floating-point word size DT.
// The paper evaluates two platforms, reproduced here as profiles; Auto
// derives a profile for the current machine.
type Platform struct {
	Name      string
	Cores     int
	L3Bytes   int64
	WordBytes int64
}

// Desktop8 models the paper's 8-core Intel i7-11700F: 16 MiB shared L3.
// Its dense tile size works out to sqrt(2 MiB / 8 B) = 512.
var Desktop8 = Platform{Name: "desktop8", Cores: 8, L3Bytes: 16 << 20, WordBytes: 8}

// Server64 models the paper's 64-core Threadripper 3990X: 256 MiB shared
// L3. sqrt(4 MiB / 8 B) = 724, rounded down to the power of two 512.
var Server64 = Platform{Name: "server64", Cores: 64, L3Bytes: 256 << 20, WordBytes: 8}

// Auto returns a profile for the current machine: GOMAXPROCS cores and an
// assumed 2 MiB L3 share per core (typical of recent x86 parts; exact LLC
// detection is not portable from pure Go).
func Auto() Platform {
	n := runtime.GOMAXPROCS(0)
	return Platform{Name: "auto", Cores: n, L3Bytes: int64(n) * (2 << 20), WordBytes: 8}
}

// WithCores returns a copy of p with the core count (and proportional L3
// share assumption left intact) overridden — used by thread-scaling sweeps.
func (p Platform) WithCores(n int) Platform {
	p.Cores = n
	return p
}

// Validate checks that the platform parameters are usable.
func (p Platform) Validate() error {
	if p.Cores <= 0 {
		return fmt.Errorf("model: platform %q has %d cores", p.Name, p.Cores)
	}
	if p.L3Bytes <= 0 || p.WordBytes <= 0 {
		return fmt.Errorf("model: platform %q has invalid cache/word sizes", p.Name)
	}
	return nil
}
