package model

import (
	"math"
	"testing"
)

func TestExpectedDistinctKeysEdges(t *testing.T) {
	cases := []struct {
		pairs int
		cdim  uint64
		want  int
	}{
		{0, 100, 0},
		{-3, 100, 0},
		{10, 0, 0},
		{10, 1, 1},
		{1, 1000, 1},
	}
	for _, c := range cases {
		if got := ExpectedDistinctKeys(c.pairs, c.cdim); got != c.want {
			t.Errorf("ExpectedDistinctKeys(%d, %d) = %d want %d", c.pairs, c.cdim, got, c.want)
		}
	}
}

func TestExpectedDistinctKeysBounds(t *testing.T) {
	for _, c := range []struct {
		pairs int
		cdim  uint64
	}{
		{10, 1000}, {1000, 10}, {500, 500}, {1 << 20, 1 << 10}, {7, 1 << 40},
	} {
		got := ExpectedDistinctKeys(c.pairs, c.cdim)
		if got < 1 {
			t.Fatalf("(%d,%d): %d < 1", c.pairs, c.cdim, got)
		}
		if got > c.pairs {
			t.Fatalf("(%d,%d): %d exceeds pair count", c.pairs, c.cdim, got)
		}
		if uint64(got) > c.cdim {
			t.Fatalf("(%d,%d): %d exceeds key space", c.pairs, c.cdim, got)
		}
	}
}

func TestExpectedDistinctKeysRegimes(t *testing.T) {
	// Sparse regime (pairs << cdim): nearly every draw is a fresh key.
	if got := ExpectedDistinctKeys(100, 1<<30); got < 99 || got > 100 {
		t.Fatalf("sparse regime: %d want ~100", got)
	}
	// Dense regime (pairs >> cdim): nearly the whole key space is hit.
	if got := ExpectedDistinctKeys(1<<20, 256); got < 255 || got > 256 {
		t.Fatalf("dense regime: %d want ~256", got)
	}
	// Balanced regime matches the closed form.
	pairs, cdim := 1000, uint64(1000)
	want := float64(cdim) * (1 - math.Pow(1-1/float64(cdim), float64(pairs)))
	got := ExpectedDistinctKeys(pairs, cdim)
	if math.Abs(float64(got)-want) > 2 {
		t.Fatalf("balanced regime: %d want ~%.1f", got, want)
	}
}

func TestBlockShapeFitsBudgetAndClamps(t *testing.T) {
	p := Desktop8 // 16 MiB L3 -> 8 MiB panel budget, 4 MiB per side
	// 64 KiB per tile on both sides: 4 MiB / 64 KiB = 64 tiles per side.
	bl, br := BlockShape(p, 64<<10, 64<<10, 1000, 1000, 1)
	if bl != 64 || br != 64 {
		t.Fatalf("block %dx%d want 64x64", bl, br)
	}
	// Clamped to the grid when tiles are few.
	bl, br = BlockShape(p, 1, 1, 3, 5, 1)
	if bl != 3 || br != 5 {
		t.Fatalf("clamp: %dx%d want 3x5", bl, br)
	}
	// Huge tiles force 1x1 blocks.
	bl, br = BlockShape(p, 1<<30, 1<<30, 100, 100, 1)
	if bl != 1 || br != 1 {
		t.Fatalf("huge tiles: %dx%d want 1x1", bl, br)
	}
	// Degenerate inputs.
	if bl, br = BlockShape(p, 0, -5, 0, 10, 4); bl != 1 || br != 1 {
		t.Fatalf("degenerate: %dx%d", bl, br)
	}
}

func TestBlockShapeKeepsWorkersBusy(t *testing.T) {
	p := Desktop8
	// Tiny tiles would fit the whole 40x40 grid in one block; with 8
	// workers the shape must shrink until >= 4 blocks per worker exist.
	bl, br := BlockShape(p, 16, 16, 40, 40, 8)
	nb := blocks(40, bl) * blocks(40, br)
	if nb < blockBalanceFactor*8 {
		t.Fatalf("only %d blocks for 8 workers (block %dx%d)", nb, bl, br)
	}
	// A grid too small to ever reach the target must still terminate with
	// 1x1 blocks rather than loop.
	bl, br = BlockShape(p, 16, 16, 2, 2, 64)
	if bl != 1 || br != 1 {
		t.Fatalf("small grid: %dx%d want 1x1", bl, br)
	}
}

func TestBlockShapeAsymmetricSides(t *testing.T) {
	p := Desktop8
	// R tiles 16x heavier than L tiles: BR should come out ~16x smaller.
	bl, br := BlockShape(p, 4<<10, 64<<10, 10000, 10000, 1)
	if bl <= br {
		t.Fatalf("asymmetric shape not reflected: %dx%d", bl, br)
	}
	if blf, brf := float64(bl), float64(br); blf/brf < 8 || blf/brf > 32 {
		t.Fatalf("ratio %f off the 16x footprint ratio", blf/brf)
	}
}
