package model

import "math"

// ExpectedDistinctKeys estimates how many distinct contraction indices
// appear among `pairs` nonzeros drawn from a key space of extent cdim,
// under the same uniform-random-nonzeros assumption as the output-density
// model (Section 5.1): cdim·(1-(1-1/cdim)^pairs), evaluated in log space
// for robustness at the extremes. The Build phase sizes each tile's hash
// table from this — the table's hint is a DISTINCT-KEY count, and passing a
// raw pair count (pairs = keys × average run length) over-allocates the
// slot arrays by the run-length factor.
func ExpectedDistinctKeys(pairs int, cdim uint64) int {
	if pairs <= 0 || cdim == 0 {
		return 0
	}
	if cdim == 1 {
		return 1
	}
	d := -float64(cdim) * math.Expm1(float64(pairs)*math.Log1p(-1/float64(cdim)))
	// Distinct keys can exceed neither the draw count nor the key space.
	hi := float64(pairs)
	if float64(cdim) < hi {
		hi = float64(cdim)
	}
	if d > hi {
		d = hi
	}
	if d < 1 {
		d = 1
	}
	return int(math.Ceil(d))
}

// blockBalanceFactor is the minimum number of super-blocks per worker the
// blocked schedule keeps available: blocks are claimed whole, so too few of
// them would serialize the tail. Shrinking blocks trades some cache reuse
// for load balance, which is the right direction — a block that never runs
// concurrently reuses nothing.
const blockBalanceFactor = 4

// BlockShape chooses the LLC super-block of the contract schedule
// (Algorithm 7's data-volume term applied to the task grid): BL L-tiles ×
// BR R-tiles contracted together by one worker, sized so the block's input
// panels fit in a worker-share of the last-level cache. Within a block the
// worker iterates L-tiles outer and R-tiles inner, so the BR-tile R panel
// is read from DRAM once and reused BL times from cache — against the
// unblocked i-major sweep, which re-streams the entire R shard through the
// LLC for every L tile.
//
// bytesL/bytesR are the average in-memory footprints of one non-empty tile
// of each shard; nL/nR the non-empty tile counts; workers the contract-
// phase team size. The result is clamped to [1, nL]×[1, nR] and shrunk
// until the block grid keeps every worker busy (blockBalanceFactor blocks
// per worker) whenever the task grid allows it.
func BlockShape(p Platform, bytesL, bytesR int64, nL, nR, workers int) (bl, br int) {
	if nL < 1 || nR < 1 {
		return 1, 1
	}
	if bytesL < 1 {
		bytesL = 1
	}
	if bytesR < 1 {
		bytesR = 1
	}
	if workers < 1 {
		workers = 1
	}
	// Half the LLC for the input panels (the other half stays for the
	// accumulators and output pools), split evenly between the two sides.
	budget := p.L3Bytes / 2
	if budget < 1 {
		budget = 1
	}
	bl = clampBlock(budget/(2*bytesL), nL)
	br = clampBlock(budget/(2*bytesR), nR)

	// Load balance: keep at least blockBalanceFactor blocks per worker by
	// halving the larger block side (preferring to keep BR — the reused
	// panel — intact longest). A single worker claims blocks sequentially,
	// so it keeps the largest (best-locality) shape untouched.
	if workers == 1 {
		return bl, br
	}
	for blocks(nL, bl)*blocks(nR, br) < blockBalanceFactor*workers && (bl > 1 || br > 1) {
		if bl >= br {
			bl /= 2
			if bl < 1 {
				bl = 1
			}
		} else {
			br /= 2
			if br < 1 {
				br = 1
			}
		}
	}
	return bl, br
}

// blocks returns the block count along one axis: ceil(n/b).
func blocks(n, b int) int { return (n + b - 1) / b }

func clampBlock(b int64, n int) int {
	if b < 1 {
		return 1
	}
	if b > int64(n) {
		return n
	}
	return int(b)
}
