package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDenseTileSidePaperPlatforms(t *testing.T) {
	// Desktop: 16 MiB / 8 cores / 8 B = 256 Ki words, sqrt = 512 (§6.2).
	if got := DenseTileSide(Desktop8); got != 512 {
		t.Fatalf("desktop dense tile = %d want 512", got)
	}
	// Server: 4 MiB share → sqrt = 724 → floor pow2 = 512 (§6.2).
	if got := DenseTileSide(Server64); got != 512 {
		t.Fatalf("server dense tile = %d want 512", got)
	}
}

func TestEstimateOutputDensityKnownValues(t *testing.T) {
	// Dense-ish inputs: pL = pR = 0.5, C = 1 → Pnonzero = 0.25.
	in := Inputs{NNZL: 50, NNZR: 50, LDim: 10, RDim: 10, CDim: 10}
	pL, pR, p := EstimateOutputDensity(in)
	if pL != 0.5 || pR != 0.5 {
		t.Fatalf("pL=%g pR=%g", pL, pR)
	}
	want := 1 - math.Pow(1-0.25, 10)
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("Pnonzero=%g want %g", p, want)
	}
}

func TestEstimateOutputDensityTinyDensities(t *testing.T) {
	// NIPS-mode-2-like statistics (paper Table 3): pL = pR ≈ 1.83e-6,
	// C = 14036. The direct (1-x)^C would round to 1; log-space must give
	// ≈ C·pL·pR.
	in := Inputs{NNZL: 3101609, NNZR: 3101609, LDim: 120759228, RDim: 120759228, CDim: 14036}
	pL, _, p := EstimateOutputDensity(in)
	if pL < 1.5e-6 || pL > 2.2e-6 {
		t.Fatalf("pL=%g, want ≈1.83e-6", pL)
	}
	approx := float64(in.CDim) * pL * pL
	if p <= 0 || math.Abs(p-approx)/approx > 1e-3 {
		t.Fatalf("Pnonzero=%g want ≈%g", p, approx)
	}
}

func TestEstimateOutputDensityEdges(t *testing.T) {
	if _, _, p := EstimateOutputDensity(Inputs{NNZL: 0, NNZR: 10, LDim: 4, RDim: 4, CDim: 4}); p != 0 {
		t.Fatalf("empty left: p=%g", p)
	}
	// Fully dense inputs: every output element nonzero.
	if _, _, p := EstimateOutputDensity(Inputs{NNZL: 16, NNZR: 16, LDim: 4, RDim: 4, CDim: 4}); p != 1 {
		t.Fatalf("dense inputs: p=%g", p)
	}
	if _, _, p := EstimateOutputDensity(Inputs{LDim: 0, RDim: 4, CDim: 4}); p != 0 {
		t.Fatalf("zero dims: p=%g", p)
	}
}

func TestDecideDenseForDenseOutputs(t *testing.T) {
	// chicago-like: moderate density → expected tile nonzeros >> 1 → dense.
	in := Inputs{NNZL: 5_000_000, NNZR: 5_000_000, LDim: 59136, RDim: 59136, CDim: 6186}
	d, err := Decide(in, Desktop8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != AccumDense {
		t.Fatalf("kind=%v want dense (ENNZ=%g)", d.Kind, d.ENNZ)
	}
	if d.TileL != 512 || d.TileR != 512 {
		t.Fatalf("tiles %dx%d want 512x512", d.TileL, d.TileR)
	}
	if d.ENNZ < 1 {
		t.Fatalf("ENNZ=%g", d.ENNZ)
	}
}

func TestDecideSparseForUltraSparseOutputs(t *testing.T) {
	// NIPS-mode-2-like: ultra-sparse output → sparse accumulator with a
	// tile far larger than the 512 dense bound (paper: 2^20).
	in := Inputs{NNZL: 3_101_609, NNZR: 3_101_609, LDim: 120_759_228, RDim: 120_759_228, CDim: 14036}
	d, err := Decide(in, Desktop8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != AccumSparse {
		t.Fatalf("kind=%v want sparse (ENNZ=%g)", d.Kind, d.ENNZ)
	}
	if d.TileL <= 512 {
		t.Fatalf("sparse tile %d should exceed dense bound", d.TileL)
	}
	if d.TileL&(d.TileL-1) != 0 {
		t.Fatalf("tile %d not a power of two", d.TileL)
	}
}

func TestDecideClampsToSmallDims(t *testing.T) {
	in := Inputs{NNZL: 100, NNZR: 100, LDim: 10, RDim: 3000, CDim: 10}
	d, err := Decide(in, Desktop8)
	if err != nil {
		t.Fatal(err)
	}
	if d.TileL != 16 {
		t.Fatalf("TileL=%d want 16 (pow2 ceiling of 10)", d.TileL)
	}
	if d.TileR > 512 {
		t.Fatalf("TileR=%d", d.TileR)
	}
}

func TestDecideErrors(t *testing.T) {
	if _, err := Decide(Inputs{LDim: 0, RDim: 1, CDim: 1}, Desktop8); err == nil {
		t.Fatal("want zero-dim error")
	}
	if _, err := Decide(Inputs{LDim: 1, RDim: 1, CDim: 1}, Platform{Cores: 0, L3Bytes: 1, WordBytes: 8}); err == nil {
		t.Fatal("want platform error")
	}
}

func TestSparseTileSideInverseSqrtOfDensity(t *testing.T) {
	// §5.4: T ∝ 1/sqrt(δ). Quadrupling δ should halve T (up to pow2 rounding).
	t1 := SparseTileSide(Desktop8, 1e-6)
	t2 := SparseTileSide(Desktop8, 4e-6)
	if t1 != t2*2 {
		t.Fatalf("T(δ)=%d, T(4δ)=%d; want exact halving", t1, t2)
	}
	if got := SparseTileSide(Desktop8, 0); got != uint64(1)<<31 {
		t.Fatalf("zero density should give max tile, got %d", got)
	}
}

func TestPow2Helpers(t *testing.T) {
	cases := []struct{ in, floor, ceil uint64 }{
		{0, 1, 1}, {1, 1, 1}, {2, 2, 2}, {3, 2, 4}, {5, 4, 8},
		{724, 512, 1024}, {1 << 20, 1 << 20, 1 << 20},
	}
	for _, c := range cases {
		if got := floorPow2(c.in); got != c.floor {
			t.Errorf("floorPow2(%d)=%d want %d", c.in, got, c.floor)
		}
		if got := ceilPow2(c.in); got != c.ceil {
			t.Errorf("ceilPow2(%d)=%d want %d", c.in, got, c.ceil)
		}
	}
}

func TestDecidePropertyDensityMonotone(t *testing.T) {
	// More input nonzeros never decreases the estimated output density.
	f := func(seed int64) bool {
		n := seed%1000 + 1
		base := Inputs{NNZL: n, NNZR: 500, LDim: 1000, RDim: 1000, CDim: 100}
		more := base
		more.NNZL = n * 2
		_, _, p1 := EstimateOutputDensity(base)
		_, _, p2 := EstimateOutputDensity(more)
		return p2 >= p1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedOutputNNZ(t *testing.T) {
	in := Inputs{NNZL: 16, NNZR: 16, LDim: 4, RDim: 4, CDim: 4}
	if got := ExpectedOutputNNZ(in); got != 16 {
		t.Fatalf("ExpectedOutputNNZ=%g want 16 (dense output)", got)
	}
}

func TestAutoAndWithCores(t *testing.T) {
	p := Auto()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	q := p.WithCores(3)
	if q.Cores != 3 || p.Cores == 3 && q.Cores != p.Cores {
		t.Fatalf("WithCores: %+v", q)
	}
	if AccumAuto.String() != "auto" || AccumDense.String() != "dense" || AccumSparse.String() != "sparse" {
		t.Fatal("AccumKind strings")
	}
}

func TestDecideConsistencyProperty(t *testing.T) {
	// Internal consistency of Decision fields: ENNZ = PNonzero·DenseT² and
	// the kind follows the ENNZ >= 1 rule.
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		n := seed%10_000 + 1
		in := Inputs{
			NNZL: n, NNZR: n*2 + 1,
			LDim: uint64(n%977 + 1), RDim: uint64(n%1231 + 1), CDim: uint64(n%53 + 1),
		}
		d, err := Decide(in, Desktop8)
		if err != nil {
			return false
		}
		wantENNZ := d.PNonzero * float64(d.DenseT) * float64(d.DenseT)
		if math.Abs(d.ENNZ-wantENNZ) > 1e-9*math.Max(1, wantENNZ) {
			return false
		}
		if (d.ENNZ >= 1) != (d.Kind == AccumDense) {
			return false
		}
		return d.TileL > 0 && d.TileR > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBiggerCacheNeverShrinksTiles(t *testing.T) {
	in := Inputs{NNZL: 5000, NNZR: 5000, LDim: 1 << 20, RDim: 1 << 20, CDim: 1 << 10}
	small := Platform{Name: "s", Cores: 8, L3Bytes: 8 << 20, WordBytes: 8}
	big := Platform{Name: "b", Cores: 8, L3Bytes: 64 << 20, WordBytes: 8}
	ds, err := Decide(in, small)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Decide(in, big)
	if err != nil {
		t.Fatal(err)
	}
	if db.TileL < ds.TileL {
		t.Fatalf("bigger L3 shrank tile: %d -> %d", ds.TileL, db.TileL)
	}
}

func TestForceKind(t *testing.T) {
	in := Inputs{NNZL: 100, NNZR: 100, LDim: 1 << 24, RDim: 1 << 24, CDim: 64}
	d, err := Decide(in, Desktop8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != AccumSparse {
		t.Fatalf("expected sparse baseline decision, got %v", d.Kind)
	}
	forced := d.ForceKind(AccumDense, in, Desktop8)
	if forced.Kind != AccumDense {
		t.Fatal("kind not forced")
	}
	if forced.TileL != d.DenseT {
		t.Fatalf("forced dense tile %d want %d", forced.TileL, d.DenseT)
	}
	// Forcing the same kind or Auto is a no-op.
	if same := d.ForceKind(AccumSparse, in, Desktop8); same.TileL != d.TileL {
		t.Fatal("same-kind force changed tiles")
	}
	if same := d.ForceKind(AccumAuto, in, Desktop8); same.Kind != d.Kind {
		t.Fatal("auto force changed kind")
	}
	// Round trip back to sparse restores a sparse-sized tile.
	back := forced.ForceKind(AccumSparse, in, Desktop8)
	if back.TileL <= back.DenseT {
		t.Fatalf("sparse tile %d should exceed dense bound %d", back.TileL, back.DenseT)
	}
}
