package radix

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func checkSorted(t *testing.T, keys []uint64) {
	t.Helper()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("not sorted at %d: %d > %d", i, keys[i-1], keys[i])
		}
	}
}

func TestSortSmall(t *testing.T) {
	keys := []uint64{5, 1, 4, 1, 3}
	perm := []uint32{0, 1, 2, 3, 4}
	SortWithPerm(keys, perm, 1)
	checkSorted(t, keys)
	// Stability: the two 1s keep input order (indices 1 then 3).
	if perm[0] != 1 || perm[1] != 3 {
		t.Fatalf("not stable: perm=%v", perm)
	}
}

func TestSortEdgeCases(t *testing.T) {
	SortWithPerm(nil, nil, 0)                 // empty
	SortWithPerm([]uint64{7}, []uint32{0}, 0) // single
	keys := []uint64{0, 0, 0}                 // all zero
	perm := []uint32{0, 1, 2}
	SortWithPerm(keys, perm, 0)
	if perm[0] != 0 || perm[2] != 2 {
		t.Fatalf("all-zero keys reordered: %v", perm)
	}
}

func TestSortPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	SortWithPerm([]uint64{1, 2}, []uint32{0}, 1)
}

func TestSortMatchesStdlibSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = rng.Uint64() >> uint(rng.Intn(60)) // varied magnitudes
	}
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	Sort(keys, 1)
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestSortParallelLargeMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 1 << 16 // above the parallel threshold
	keys := make([]uint64, n)
	perm := make([]uint32, n)
	for i := range keys {
		keys[i] = rng.Uint64() % (1 << 40)
		perm[i] = uint32(i)
	}
	orig := append([]uint64(nil), keys...)
	SortWithPerm(keys, perm, 4)
	checkSorted(t, keys)
	// perm maps sorted position → original index.
	for i := range keys {
		if orig[perm[i]] != keys[i] {
			t.Fatalf("perm broken at %d", i)
		}
	}
}

func TestSortStabilityParallel(t *testing.T) {
	// Many duplicate keys: payload order within a key must follow input.
	n := 1 << 15
	keys := make([]uint64, n)
	perm := make([]uint32, n)
	for i := range keys {
		keys[i] = uint64(i % 7)
		perm[i] = uint32(i)
	}
	SortWithPerm(keys, perm, 4)
	for i := 1; i < n; i++ {
		if keys[i] == keys[i-1] && perm[i] <= perm[i-1] {
			t.Fatalf("instability at %d: key %d, perm %d after %d", i, keys[i], perm[i], perm[i-1])
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		perm := make([]uint32, len(keys))
		for i := range perm {
			perm[i] = uint32(i)
		}
		orig := append([]uint64(nil), keys...)
		SortWithPerm(keys, perm, 2)
		for i := 1; i < len(keys); i++ {
			if keys[i-1] > keys[i] {
				return false
			}
		}
		for i := range keys {
			if orig[perm[i]] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRadixSort1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	orig := make([]uint64, 1<<20)
	for i := range orig {
		orig[i] = rng.Uint64() % (1 << 48)
	}
	keys := make([]uint64, len(orig))
	perm := make([]uint32, len(orig))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, orig)
		for j := range perm {
			perm[j] = uint32(j)
		}
		SortWithPerm(keys, perm, 0)
	}
}

func BenchmarkStdlibSort1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	orig := make([]uint64, 1<<20)
	for i := range orig {
		orig[i] = rng.Uint64() % (1 << 48)
	}
	keys := make([]uint64, len(orig))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, orig)
		sort.Slice(keys, func(x, y int) bool { return keys[x] < keys[y] })
	}
}
