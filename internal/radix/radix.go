// Package radix implements a parallel least-significant-digit radix sort
// on uint64 keys with a carried payload permutation. COO canonicalization
// (Sort/Dedup) and CSF construction sort by linearized coordinates, which
// on paper-scale tensors (tens of millions of nonzeros) dominates
// preprocessing time; an LSD radix over the significant bytes is both
// O(n·bytes) and parallel-friendly, unlike comparison sorting.
//
// The sort is stable (required: Dedup relies on equal keys staying
// adjacent in input order so duplicate accumulation is deterministic).
package radix

import (
	"math/bits"

	"fastcc/internal/scheduler"
)

// digitBits is the radix width: 8 bits → 256 buckets per pass, the sweet
// spot for L1-resident histograms.
const digitBits = 8
const buckets = 1 << digitBits

// SortWithPerm stably sorts keys ascending and applies the identical
// reordering to perm (typically the identity permutation of element
// indices, which afterwards maps sorted position → original position).
// len(perm) must equal len(keys). workers <= 0 uses GOMAXPROCS.
func SortWithPerm(keys []uint64, perm []uint32, workers int) {
	n := len(keys)
	if n != len(perm) {
		panic("radix: keys and perm length mismatch")
	}
	if n < 2 {
		return
	}
	var maxKey uint64
	for _, k := range keys {
		maxKey |= k
	}
	passes := (bits.Len64(maxKey) + digitBits - 1) / digitBits
	if passes == 0 {
		return // all keys zero: already sorted
	}

	workers = scheduler.Workers(workers)
	// Small inputs: parallel overhead exceeds the work.
	if n < 1<<14 || workers == 1 {
		sortSerial(keys, perm, passes)
		return
	}
	sortParallel(keys, perm, passes, workers)
}

// Sort sorts keys ascending (no payload).
func Sort(keys []uint64, workers int) {
	perm := make([]uint32, len(keys))
	for i := range perm {
		perm[i] = uint32(i)
	}
	SortWithPerm(keys, perm, workers)
}

func sortSerial(keys []uint64, perm []uint32, passes int) {
	n := len(keys)
	tmpK := make([]uint64, n)
	tmpP := make([]uint32, n)
	var hist [buckets]int
	for p := 0; p < passes; p++ {
		shift := uint(p * digitBits)
		for i := range hist {
			hist[i] = 0
		}
		for _, k := range keys {
			hist[(k>>shift)&(buckets-1)]++
		}
		// Skip passes where every key shares the digit.
		if hist[keys[0]>>shift&(buckets-1)] == n {
			continue
		}
		sum := 0
		for d := 0; d < buckets; d++ {
			c := hist[d]
			hist[d] = sum
			sum += c
		}
		for i, k := range keys {
			d := (k >> shift) & (buckets - 1)
			pos := hist[d]
			hist[d]++
			tmpK[pos] = k
			tmpP[pos] = perm[i]
		}
		copy(keys, tmpK)
		copy(perm, tmpP)
	}
}

// sortParallel runs each pass as: per-chunk histograms → global exclusive
// prefix over (digit, chunk) → per-chunk stable scatter into reserved
// ranges. Chunks are contiguous, so stability within a digit follows from
// chunk order plus in-chunk order.
func sortParallel(keys []uint64, perm []uint32, passes, workers int) {
	n := len(keys)
	tmpK := make([]uint64, n)
	tmpP := make([]uint32, n)
	hists := make([][buckets]int, workers)
	chunk := (n + workers - 1) / workers

	srcK, srcP := keys, perm
	dstK, dstP := tmpK, tmpP
	for p := 0; p < passes; p++ {
		shift := uint(p * digitBits)
		scheduler.Static(workers, func(w, _ int) {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			h := &hists[w]
			for i := range h {
				h[i] = 0
			}
			for _, k := range srcK[lo:min(hi, n)] {
				h[(k>>shift)&(buckets-1)]++
			}
		})
		// Exclusive prefix in (digit-major, chunk-minor) order.
		sum := 0
		for d := 0; d < buckets; d++ {
			for w := 0; w < workers; w++ {
				c := hists[w][d]
				hists[w][d] = sum
				sum += c
			}
		}
		scheduler.Static(workers, func(w, _ int) {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			h := &hists[w]
			for i := lo; i < hi && i < n; i++ {
				k := srcK[i]
				d := (k >> shift) & (buckets - 1)
				pos := h[d]
				h[d]++
				dstK[pos] = k
				dstP[pos] = srcP[i]
			}
		})
		srcK, dstK = dstK, srcK
		srcP, dstP = dstP, srcP
	}
	if &srcK[0] != &keys[0] {
		copy(keys, srcK)
		copy(perm, srcP)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
