package hashtable

// Pair is one nonzero of an input tile: the intra-tile external index and
// its value. Intra-tile indices fit in uint32 because tile sides are bounded
// by cache-derived sizes far below 2^32.
type Pair struct {
	Idx uint32
	Val float64
}

const (
	sliceMaxLoad   = 0.7
	sliceEmptySlot = int32(-1)
)

// SliceTable is an open-addressing map from a uint64 key (the linearized
// contraction index c) to a growable list of Pairs. It is the
// representation HL_i : C → P({0..T_L-1} × V) from paper Section 4.1.
//
// Slots hold an index into a per-key list arena, so growth rehashes only
// 12 bytes per distinct key and never moves pair data. Not concurrency-safe;
// each builder thread owns its tables.
type SliceTable struct {
	mask    uint64
	keys    []uint64
	listIdx []int32
	lists   [][]Pair
	pairs   int
}

// NewSliceTable returns a table sized for about keyHint distinct keys. The
// slot arrays are drawn from the sealed-arena pools: Seal steals them into
// the read-only form and Sealed.Recycle eventually returns them, closing
// the build→seal→evict→rebuild loop without fresh allocations.
func NewSliceTable(keyHint int) *SliceTable {
	capacity := nextPow2(int(float64(keyHint)/sliceMaxLoad) + 1)
	if capacity < 8 {
		capacity = 8
	}
	t := &SliceTable{
		mask:    uint64(capacity - 1),
		keys:    arenaU64.Get(capacity)[:capacity], //fastcc:owned -- stolen by Seal, recycled by Sealed.Recycle
		listIdx: arenaI32.Get(capacity)[:capacity], //fastcc:owned -- stolen by Seal, recycled by Sealed.Recycle
	}
	for i := range t.listIdx {
		t.listIdx[i] = sliceEmptySlot
	}
	return t
}

// Len returns the number of distinct keys.
func (t *SliceTable) Len() int { return len(t.lists) }

// Pairs returns the total number of stored (key, pair) entries.
func (t *SliceTable) Pairs() int { return t.pairs }

// Slots returns the open-addressing slot count (footprint introspection).
func (t *SliceTable) Slots() int { return len(t.keys) }

// Insert appends (idx, val) to key's pair list, creating the key if new.
//
//fastcc:hotpath
func (t *SliceTable) Insert(key uint64, idx uint32, val float64) {
	slot := t.findSlot(key)
	if t.listIdx[slot] == sliceEmptySlot {
		if float64(len(t.lists)+1) > sliceMaxLoad*float64(len(t.keys)) {
			t.grow()
			slot = t.findSlot(key)
		}
		t.keys[slot] = key
		t.listIdx[slot] = int32(len(t.lists))
		t.lists = append(t.lists, nil) //fastcc:allow hotalloc -- amortized arena growth, once per distinct key
	}
	li := t.listIdx[slot]
	t.lists[li] = append(t.lists[li], Pair{Idx: idx, Val: val}) //fastcc:allow hotalloc -- amortized per-key list growth
	t.pairs++
}

// Lookup returns the pair list for key, or nil when absent. The returned
// slice is owned by the table and must not be modified.
//
//fastcc:hotpath
func (t *SliceTable) Lookup(key uint64) []Pair {
	slot := t.findSlot(key)
	if t.listIdx[slot] == sliceEmptySlot {
		return nil
	}
	return t.lists[t.listIdx[slot]]
}

// Contains reports whether key is present.
func (t *SliceTable) Contains(key uint64) bool {
	return t.listIdx[t.findSlot(key)] != sliceEmptySlot
}

// ForEach visits every (key, pair list) in unspecified order.
func (t *SliceTable) ForEach(fn func(key uint64, pairs []Pair)) {
	for slot, li := range t.listIdx {
		if li != sliceEmptySlot {
			fn(t.keys[slot], t.lists[li])
		}
	}
}

// Keys appends all distinct keys to dst and returns it.
func (t *SliceTable) Keys(dst []uint64) []uint64 {
	for slot, li := range t.listIdx {
		if li != sliceEmptySlot {
			dst = append(dst, t.keys[slot])
		}
	}
	return dst
}

// findSlot probes linearly from the key's home slot to the first slot that
// either holds key or is empty.
func (t *SliceTable) findSlot(key uint64) uint64 {
	slot := Mix(key) & t.mask
	for {
		if t.listIdx[slot] == sliceEmptySlot || t.keys[slot] == key {
			return slot
		}
		slot = (slot + 1) & t.mask
	}
}

// grow doubles the slot array and rehashes keys; pair lists are untouched.
// The outgrown slot arrays flow back to the arena pools immediately — they
// have no other referent, so recycling them here (not at eviction) keeps the
// steady-state pool stocked with right-sized storage.
func (t *SliceTable) grow() {
	oldKeys, oldIdx := t.keys, t.listIdx
	capacity := len(oldKeys) * 2
	t.keys = arenaU64.Get(capacity)[:capacity]    //fastcc:owned -- stolen by Seal, recycled by Sealed.Recycle
	t.listIdx = arenaI32.Get(capacity)[:capacity] //fastcc:owned -- stolen by Seal, recycled by Sealed.Recycle
	t.mask = uint64(capacity - 1)
	for i := range t.listIdx {
		t.listIdx[i] = sliceEmptySlot
	}
	for slot, li := range oldIdx {
		if li == sliceEmptySlot {
			continue
		}
		k := oldKeys[slot]
		ns := t.findSlot(k)
		t.keys[ns] = k
		t.listIdx[ns] = li
	}
	arenaU64.Put(oldKeys)
	arenaI32.Put(oldIdx)
}
