package hashtable

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRobinBasic(t *testing.T) {
	tb := NewRobinTable(0)
	tb.Upsert(5, 1)
	tb.Upsert(5, 2)
	tb.Upsert(9, -1)
	if tb.Len() != 2 {
		t.Fatalf("Len=%d", tb.Len())
	}
	if v, ok := tb.Get(5); !ok || v != 3 {
		t.Fatalf("Get(5)=%g,%v", v, ok)
	}
	if _, ok := tb.Get(6); ok {
		t.Fatal("phantom key")
	}
}

func TestRobinGrowAndReset(t *testing.T) {
	tb := NewRobinTable(0)
	const n = 30000
	for i := uint64(0); i < n; i++ {
		tb.Upsert(i*7, 1)
		tb.Upsert(i*7, float64(i))
	}
	if tb.Len() != n || tb.Grows() == 0 {
		t.Fatalf("Len=%d grows=%d", tb.Len(), tb.Grows())
	}
	for i := uint64(0); i < n; i += 791 {
		if v, ok := tb.Get(i * 7); !ok || v != 1+float64(i) {
			t.Fatalf("Get(%d)=%g,%v", i*7, v, ok)
		}
	}
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatal("reset failed")
	}
	if _, ok := tb.Get(7); ok {
		t.Fatal("entry survived reset")
	}
}

func TestRobinVersusMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewRobinTable(0)
		model := map[uint64]float64{}
		for i := 0; i < 800; i++ {
			k := rng.Uint64() % 100
			v := float64(rng.Intn(9) - 4)
			tb.Upsert(k, v)
			model[k] += v
		}
		if tb.Len() != len(model) {
			return false
		}
		for k, want := range model {
			if got, ok := tb.Get(k); !ok || got != want {
				return false
			}
		}
		count := 0
		sum := 0.0
		tb.ForEach(func(_ uint64, v float64) { count++; sum += v })
		wantSum := 0.0
		for _, v := range model {
			wantSum += v
		}
		return count == len(model) && sum == wantSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRobinProbeDistanceBounded(t *testing.T) {
	// At 85 % load Robin Hood keeps max probe distance small; linear
	// probing's worst chain can be far longer. Sanity-check the invariantly
	// ordered probe property by asserting a modest bound.
	tb := NewRobinTable(1 << 14)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12000; i++ {
		tb.Upsert(rng.Uint64(), 1)
	}
	if mp := tb.MaxProbe(); mp > 64 {
		t.Fatalf("max probe distance %d too large", mp)
	}
}

func BenchmarkRobinUpsert(b *testing.B) {
	tb := NewRobinTable(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Upsert(uint64(i)&0xFFFF, 1.0)
	}
}
