package hashtable

import (
	"testing"

	"fastcc/internal/mempool"
)

// expectPanicWhenChecked asserts fn panics under -tags fastcc_checked and
// runs clean otherwise (where the generation hooks compile to no-ops).
func expectPanicWhenChecked(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if mempool.Checked && r == nil {
			t.Fatalf("%s: fastcc_checked build did not panic", what)
		}
		if !mempool.Checked && r != nil {
			t.Fatalf("%s: normal build panicked: %v", what, r)
		}
	}()
	fn()
}

// TestSealedGenerationStamp: a properly sealed table passes every checked
// access; the stamp must never fire on the happy path.
func TestSealedGenerationStamp(t *testing.T) {
	tbl := NewSliceTable(4)
	tbl.Insert(7, 1, 1.5)
	tbl.Insert(7, 2, 2.5)
	tbl.Insert(9, 3, 3.5)
	s := tbl.Seal()
	if s.Len() != 2 || s.Pairs() != 3 {
		t.Fatalf("Len=%d Pairs=%d, want 2/3", s.Len(), s.Pairs())
	}
	for i := 0; i < s.Len(); i++ {
		_ = s.KeyAt(i)
		_ = s.PairsAt(i)
	}
	if got := len(s.Lookup(7)); got != 2 {
		t.Fatalf("Lookup(7) len=%d, want 2", got)
	}
}

// TestSealedInvalidatedAccessPanics: once a table is retired, every cursor
// and probe access must fail fast under fastcc_checked instead of serving
// spans into storage that may have been recycled.
func TestSealedInvalidatedAccessPanics(t *testing.T) {
	tbl := NewSliceTable(4)
	tbl.Insert(7, 1, 1.5)
	s := tbl.Seal()
	s.invalidate()
	expectPanicWhenChecked(t, "KeyAt after invalidate", func() { _ = s.KeyAt(0) })
	expectPanicWhenChecked(t, "PairsAt after invalidate", func() { _ = s.PairsAt(0) })
	expectPanicWhenChecked(t, "Lookup after invalidate", func() { _ = s.Lookup(7) })
}

// TestSealedCorruptSpanPanics: checkSpan re-derives bounds against the
// arena, catching corrupted sealed state that int-widened slicing alone
// would surface only as a less specific slice panic.
func TestSealedCorruptSpanPanics(t *testing.T) {
	if !mempool.Checked {
		t.Skip("span re-validation is compiled in only under fastcc_checked")
	}
	tbl := NewSliceTable(4)
	tbl.Insert(7, 1, 1.5)
	s := tbl.Seal()
	s.spans[0].Len = int32(len(s.pairs)) + 5 //fastcc:allow sealedmut -- test corrupts sealed state on purpose
	expectPanicWhenChecked(t, "PairsAt with corrupt span", func() { _ = s.PairsAt(0) })
}
