package hashtable

// RobinTable is a Robin Hood-probing variant of FloatTable. Feng et al.
// (PPoPP '24, cited by the paper in Section 7.2) report gains over
// Sparta's chaining tables from better hashing schemes; Robin Hood probing
// bounds the variance of probe distances, trading slightly more work per
// insert for shorter worst-case lookups at high load. It exists here as an
// ablation alternative to the plain linear-probing sparse accumulator.
//
// Slots store the probe distance (+1, zero meaning empty) so occupancy
// needs no bitmap and displacement compares are O(1).
type RobinTable struct {
	mask  uint64
	keys  []uint64
	vals  []float64
	dist  []uint8 // probe distance + 1; 0 = empty
	n     int
	grows int
}

const robinMaxLoad = 0.85

// NewRobinTable returns a table sized for about hint entries.
func NewRobinTable(hint int) *RobinTable {
	capacity := nextPow2(int(float64(hint)/robinMaxLoad) + 1)
	if capacity < 16 {
		capacity = 16
	}
	return &RobinTable{
		mask: uint64(capacity - 1),
		keys: make([]uint64, capacity),
		vals: make([]float64, capacity),
		dist: make([]uint8, capacity),
	}
}

// Len returns the number of distinct keys.
func (t *RobinTable) Len() int { return t.n }

// Grows returns the number of capacity doublings.
func (t *RobinTable) Grows() int { return t.grows }

// Upsert adds v to the value at key, inserting if absent.
//
//fastcc:hotpath
func (t *RobinTable) Upsert(key uint64, v float64) {
	if float64(t.n+1) > robinMaxLoad*float64(len(t.keys)) {
		t.grow()
	}
	slot := Mix(key) & t.mask
	d := uint8(1)
	for {
		if t.dist[slot] == 0 {
			t.keys[slot] = key
			t.vals[slot] = v
			t.dist[slot] = d
			t.n++
			return
		}
		if t.keys[slot] == key {
			t.vals[slot] += v
			return
		}
		if t.dist[slot] < d {
			// Rob the rich: displace the closer-to-home resident and keep
			// inserting it further along.
			t.keys[slot], key = key, t.keys[slot]
			t.vals[slot], v = v, t.vals[slot]
			t.dist[slot], d = d, t.dist[slot]
		}
		slot = (slot + 1) & t.mask
		if d == 255 {
			// Pathological clustering: grow and retry rather than let the
			// distance counter saturate.
			t.grow()
			t.Upsert(key, v)
			return
		}
		d++
	}
}

// Get returns the accumulated value for key.
func (t *RobinTable) Get(key uint64) (float64, bool) {
	slot := Mix(key) & t.mask
	d := uint8(1)
	for {
		if t.dist[slot] == 0 || t.dist[slot] < d {
			// A Robin Hood table keeps residents ordered by distance: once
			// we see a closer-to-home entry, key cannot be further along.
			return 0, false
		}
		if t.keys[slot] == key {
			return t.vals[slot], true
		}
		slot = (slot + 1) & t.mask
		d++
		if d == 0 { // wrapped uint8: key definitively absent
			return 0, false
		}
	}
}

// ForEach visits every (key, value).
func (t *RobinTable) ForEach(fn func(key uint64, v float64)) {
	for slot := range t.keys {
		if t.dist[slot] != 0 {
			fn(t.keys[slot], t.vals[slot])
		}
	}
}

// Reset drops all entries, keeping capacity.
func (t *RobinTable) Reset() {
	clear(t.dist)
	t.n = 0
}

// MaxProbe returns the largest probe distance currently in the table — the
// metric Robin Hood hashing optimizes.
func (t *RobinTable) MaxProbe() int {
	m := 0
	for _, d := range t.dist {
		if int(d) > m {
			m = int(d)
		}
	}
	return m
}

func (t *RobinTable) grow() {
	oldKeys, oldVals, oldDist := t.keys, t.vals, t.dist
	capacity := len(oldKeys) * 2
	t.keys = make([]uint64, capacity)
	t.vals = make([]float64, capacity)
	t.dist = make([]uint8, capacity)
	t.mask = uint64(capacity - 1)
	t.n = 0
	t.grows++
	for slot, d := range oldDist {
		if d != 0 {
			t.Upsert(oldKeys[slot], oldVals[slot])
		}
	}
}
