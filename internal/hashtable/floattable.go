package hashtable

// FloatTable is an open-addressing map from uint64 keys to accumulated
// float64 values: the sparse tile accumulator of paper Section 5.4. Each
// logical entry is 16 bytes (8-byte key + 8-byte value), matching the
// paper's sizing formula T = sqrt(L3_bytes / (17.7 * δ * N)); occupancy is
// tracked in a side bitmap so the full key space remains usable.
//
// The table grows at 85% load so that a model-sized table targeting 90%
// utilization of its cache share rarely spills (one final growth would
// double it; the model's headroom factor 17.7 ≈ 16/0.9 accounts for this).
type FloatTable struct {
	mask  uint64
	keys  []uint64
	vals  []float64
	occ   []uint64 // occupancy bitmap, one bit per slot
	n     int
	grows int
}

const floatMaxLoad = 0.85

// NewFloatTable returns a table sized for about hint entries.
func NewFloatTable(hint int) *FloatTable {
	capacity := nextPow2(int(float64(hint)/floatMaxLoad) + 1)
	if capacity < 16 {
		capacity = 16
	}
	return &FloatTable{
		mask: uint64(capacity - 1),
		keys: make([]uint64, capacity),
		vals: make([]float64, capacity),
		occ:  make([]uint64, (capacity+63)/64),
	}
}

// Len returns the number of distinct keys.
func (t *FloatTable) Len() int { return t.n }

// Cap returns the current slot count.
func (t *FloatTable) Cap() int { return len(t.keys) }

// Grows returns how many times the table has doubled (resize-cost metric
// referenced in paper Section 6.4).
func (t *FloatTable) Grows() int { return t.grows }

func (t *FloatTable) occupied(slot uint64) bool {
	return t.occ[slot>>6]&(1<<(slot&63)) != 0
}

func (t *FloatTable) setOccupied(slot uint64) {
	t.occ[slot>>6] |= 1 << (slot & 63)
}

// Upsert adds v to the value stored at key, inserting the key when absent —
// WS.upsert from paper Algorithm 4.
//
//fastcc:hotpath
func (t *FloatTable) Upsert(key uint64, v float64) {
	slot := Mix(key) & t.mask
	for {
		if !t.occupied(slot) {
			if float64(t.n+1) > floatMaxLoad*float64(len(t.keys)) {
				t.grow()
				t.Upsert(key, v)
				return
			}
			t.keys[slot] = key
			t.vals[slot] = v
			t.setOccupied(slot)
			t.n++
			return
		}
		if t.keys[slot] == key {
			t.vals[slot] += v
			return
		}
		slot = (slot + 1) & t.mask
	}
}

// Get returns the accumulated value for key.
//
//fastcc:hotpath
func (t *FloatTable) Get(key uint64) (float64, bool) {
	slot := Mix(key) & t.mask
	for {
		if !t.occupied(slot) {
			return 0, false
		}
		if t.keys[slot] == key {
			return t.vals[slot], true
		}
		slot = (slot + 1) & t.mask
	}
}

// ForEach visits every (key, value) in unspecified order.
func (t *FloatTable) ForEach(fn func(key uint64, v float64)) {
	for slot := uint64(0); slot < uint64(len(t.keys)); slot++ {
		if t.occupied(slot) {
			fn(t.keys[slot], t.vals[slot])
		}
	}
}

// Reset drops all entries but keeps capacity, so a worker can reuse one
// accumulator across tile tasks.
func (t *FloatTable) Reset() {
	clear(t.occ)
	t.n = 0
}

func (t *FloatTable) grow() {
	oldKeys, oldVals, oldOcc := t.keys, t.vals, t.occ
	capacity := len(oldKeys) * 2
	t.keys = make([]uint64, capacity)
	t.vals = make([]float64, capacity)
	t.occ = make([]uint64, (capacity+63)/64)
	t.mask = uint64(capacity - 1)
	t.n = 0
	t.grows++
	for slot := range oldKeys {
		if oldOcc[slot>>6]&(1<<(uint(slot)&63)) != 0 {
			t.insertFresh(oldKeys[slot], oldVals[slot])
		}
	}
}

// insertFresh inserts a key known to be absent, without load checking
// (capacity was just doubled).
func (t *FloatTable) insertFresh(key uint64, v float64) {
	slot := Mix(key) & t.mask
	for t.occupied(slot) {
		slot = (slot + 1) & t.mask
	}
	t.keys[slot] = key
	t.vals[slot] = v
	t.setOccupied(slot)
	t.n++
}
