//go:build fastcc_checked

// fastcc_checked mode: Sealed tables carry a generation stamp set once at
// the end of Seal and checked on every cursor or probe access, so reading a
// table that never finished sealing (zero value, manual literal, or a
// future recycled-and-invalidated table) panics deterministically instead
// of returning garbage spans. checkSpan additionally re-derives each span's
// bounds against the arena — the dynamic twin of the spanarith analyzer's
// static rule.
package hashtable

import "fmt"

// sealedLiveGen marks a Sealed whose Seal completed. Any other value —
// including the zero value's 0 — fails checkLive.
const sealedLiveGen uint32 = 0x5EA1ED01

type checkedSealed struct {
	gen uint32
}

func (s *Sealed) stampLive() { s.ck.gen = sealedLiveGen }

// invalidate retires the table: every later access panics. Reserved for a
// future recycling path; exercised by the checked-mode lifetime tests.
//
//fastcc:sealer -- lifecycle transition, the inverse of Seal's stamp
func (s *Sealed) invalidate() { s.ck.gen = 0 }

func (s *Sealed) checkLive(op string) {
	if s.ck.gen != sealedLiveGen {
		panic(fmt.Sprintf(
			"hashtable.Sealed.%s: generation check failed (gen=%#x, want %#x): table was never sealed or was invalidated before this access",
			op, s.ck.gen, sealedLiveGen))
	}
}

func (s *Sealed) checkSpan(op string, sp Span) {
	s.checkLive(op)
	off, ln := int(sp.Off), int(sp.Len)
	if off < 0 || ln < 0 || off+ln > len(s.pairs) {
		panic(fmt.Sprintf(
			"hashtable.Sealed.%s: span {off=%d len=%d} out of arena bounds (pairs=%d): sealed state corrupted",
			op, off, ln, len(s.pairs)))
	}
}
