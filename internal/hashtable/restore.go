package hashtable

// Spill-restore arena taps: when the shard cache reloads a spilled table
// from disk (internal/core, spill.go), the dense arrays are decoded straight
// into storage drawn from the same sealed-arena pools Seal uses, so a
// restored table recycles exactly like a built one and the pools' leak
// accounting (Outstanding) stays balanced across spill round trips.
// DiscardRestore is the failure path's inverse: a decode that dies partway
// hands back whatever it drew.

// RestoreKeys draws dense-key storage for a spill restore.
func RestoreKeys(n int) []uint64 { return arenaU64.Get(n) } //fastcc:owned -- stolen by RestoreSealed, recycled by Sealed.Recycle; DiscardRestore on decode failure

// RestoreSpans draws span storage for a spill restore.
func RestoreSpans(n int) []Span { return arenaSpan.Get(n) } //fastcc:owned -- stolen by RestoreSealed, recycled by Sealed.Recycle; DiscardRestore on decode failure

// RestorePairs draws pair-arena storage for a spill restore.
func RestorePairs(n int) []Pair { return arenaPair.Get(n) } //fastcc:owned -- stolen by RestoreSealed, recycled by Sealed.Recycle; DiscardRestore on decode failure

// DiscardRestore returns restore storage to the pools when a spill decode
// fails before RestoreSealed takes ownership. Nil slices are skipped.
func DiscardRestore(keys []uint64, spans []Span, pairs []Pair) {
	if keys != nil {
		arenaU64.Put(keys)
	}
	if spans != nil {
		arenaSpan.Put(spans)
	}
	if pairs != nil {
		arenaPair.Put(pairs)
	}
}

// RestoreSealed reassembles the sealed form from its spilled dense content:
// the stored slot mask plus pool-drawn keys (insertion order), spans and
// pair arena, exactly as DiscardRestore would have received them. The slot
// arrays are not stored in spill files — replaying the dense keys through
// Mix over the stored mask rebuilds a valid open-addressing index, and
// every lookup resolves to the same dense key index as before the spill,
// which is all bit-identical contraction output requires. The returned
// table owns all four slices; Recycle returns everything to the pools.
//
//fastcc:sealer -- the spill twin of Seal: the restore path populating a Sealed
func RestoreSealed(mask uint64, keys []uint64, spans []Span, pairs []Pair) *Sealed {
	slots := int(mask) + 1
	s := &Sealed{
		mask:     mask,
		slotKeys: arenaU64.Get(slots)[:slots], //fastcc:owned -- recycled by Sealed.Recycle
		slotIdx:  arenaI32.Get(slots)[:slots], //fastcc:owned -- recycled by Sealed.Recycle
		keys:     keys,
		spans:    spans,
		pairs:    pairs,
	}
	for i := range s.slotIdx {
		s.slotIdx[i] = sliceEmptySlot
	}
	for li, k := range keys {
		slot := Mix(k) & mask
		for s.slotIdx[slot] != sliceEmptySlot {
			slot = (slot + 1) & mask
		}
		s.slotKeys[slot] = k
		s.slotIdx[slot] = int32(li)
	}
	s.stampLive()
	return s
}
