package hashtable

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d want %d", in, got, want)
		}
	}
}

func TestMixSpreadsSequentialKeys(t *testing.T) {
	// Sequential keys must not collide in low bits after mixing.
	const n, maskBits = 4096, 12
	seen := map[uint64]int{}
	for i := uint64(0); i < n; i++ {
		seen[Mix(i)&((1<<maskBits)-1)]++
	}
	// Perfectly uniform would be 1 per slot; allow modest clumping.
	for slot, c := range seen {
		if c > 8 {
			t.Fatalf("slot %d has %d sequential keys; Mix too weak", slot, c)
		}
	}
	if len(seen) < n/3 {
		t.Fatalf("only %d distinct slots for %d keys", len(seen), n)
	}
}

func TestSliceTableBasic(t *testing.T) {
	tb := NewSliceTable(0)
	tb.Insert(7, 1, 1.5)
	tb.Insert(7, 2, 2.5)
	tb.Insert(9, 3, 3.5)
	if tb.Len() != 2 || tb.Pairs() != 3 {
		t.Fatalf("Len=%d Pairs=%d", tb.Len(), tb.Pairs())
	}
	ps := tb.Lookup(7)
	if len(ps) != 2 || ps[0] != (Pair{1, 1.5}) || ps[1] != (Pair{2, 2.5}) {
		t.Fatalf("Lookup(7) = %v", ps)
	}
	if tb.Lookup(8) != nil {
		t.Fatal("Lookup(8) should be nil")
	}
	if !tb.Contains(9) || tb.Contains(10) {
		t.Fatal("Contains wrong")
	}
}

func TestSliceTableGrowPreservesAll(t *testing.T) {
	tb := NewSliceTable(0) // force many grows
	const n = 10000
	for i := uint64(0); i < n; i++ {
		tb.Insert(i*3, uint32(i), float64(i))
		tb.Insert(i*3, uint32(i+1), float64(i)+0.5)
	}
	if tb.Len() != n || tb.Pairs() != 2*n {
		t.Fatalf("Len=%d Pairs=%d", tb.Len(), tb.Pairs())
	}
	for i := uint64(0); i < n; i++ {
		ps := tb.Lookup(i * 3)
		if len(ps) != 2 || ps[0].Val != float64(i) {
			t.Fatalf("key %d: %v", i*3, ps)
		}
	}
}

func TestSliceTableForEachAndKeys(t *testing.T) {
	tb := NewSliceTable(4)
	want := map[uint64]int{}
	for i := uint64(0); i < 100; i++ {
		k := i % 17
		tb.Insert(k, uint32(i), 1)
		want[k]++
	}
	visited := 0
	tb.ForEach(func(k uint64, ps []Pair) {
		visited++
		if len(ps) != want[k] {
			t.Fatalf("key %d has %d pairs want %d", k, len(ps), want[k])
		}
	})
	if visited != 17 {
		t.Fatalf("ForEach visited %d keys", visited)
	}
	keys := tb.Keys(nil)
	if len(keys) != 17 {
		t.Fatalf("Keys returned %d", len(keys))
	}
}

func TestSliceTableVersusMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewSliceTable(0)
		model := map[uint64][]Pair{}
		for i := 0; i < 500; i++ {
			k := rng.Uint64() % 64
			p := Pair{Idx: uint32(rng.Intn(100)), Val: float64(rng.Intn(10))}
			tb.Insert(k, p.Idx, p.Val)
			model[k] = append(model[k], p)
		}
		if tb.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got := tb.Lookup(k)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatTableUpsertGet(t *testing.T) {
	tb := NewFloatTable(0)
	tb.Upsert(5, 1.0)
	tb.Upsert(5, 2.0)
	tb.Upsert(0, -1)
	if tb.Len() != 2 {
		t.Fatalf("Len=%d", tb.Len())
	}
	if v, ok := tb.Get(5); !ok || v != 3.0 {
		t.Fatalf("Get(5) = %g %v", v, ok)
	}
	if v, ok := tb.Get(0); !ok || v != -1 {
		t.Fatalf("Get(0) = %g %v", v, ok)
	}
	if _, ok := tb.Get(99); ok {
		t.Fatal("Get(99) should miss")
	}
}

func TestFloatTableGrowAndReset(t *testing.T) {
	tb := NewFloatTable(0)
	const n = 50000
	for i := uint64(0); i < n; i++ {
		tb.Upsert(i, 1)
		tb.Upsert(i, float64(i))
	}
	if tb.Len() != n {
		t.Fatalf("Len=%d", tb.Len())
	}
	if tb.Grows() == 0 {
		t.Fatal("expected growth")
	}
	for i := uint64(0); i < n; i += 997 {
		if v, ok := tb.Get(i); !ok || v != 1+float64(i) {
			t.Fatalf("Get(%d) = %g %v", i, v, ok)
		}
	}
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	if _, ok := tb.Get(3); ok {
		t.Fatal("entry survived Reset")
	}
	tb.Upsert(3, 7)
	if v, _ := tb.Get(3); v != 7 {
		t.Fatalf("after reset Get(3)=%g", v)
	}
}

func TestFloatTableForEachSum(t *testing.T) {
	tb := NewFloatTable(8)
	total := 0.0
	for i := uint64(0); i < 300; i++ {
		tb.Upsert(i%37, 2)
		total += 2
	}
	sum := 0.0
	count := 0
	tb.ForEach(func(_ uint64, v float64) { sum += v; count++ })
	if count != 37 || sum != total {
		t.Fatalf("count=%d sum=%g want 37/%g", count, sum, total)
	}
}

func TestFloatTableVersusMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewFloatTable(0)
		model := map[uint64]float64{}
		for i := 0; i < 1000; i++ {
			k := rng.Uint64() % 128
			v := float64(rng.Intn(7) - 3)
			tb.Upsert(k, v)
			model[k] += v
		}
		if tb.Len() != len(model) {
			return false
		}
		for k, want := range model {
			if got, ok := tb.Get(k); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatTableExtremeKeys(t *testing.T) {
	// Keys 0 and MaxUint64 must be valid (bitmap occupancy, no sentinel).
	tb := NewFloatTable(2)
	tb.Upsert(0, 1)
	tb.Upsert(^uint64(0), 2)
	if v, ok := tb.Get(0); !ok || v != 1 {
		t.Fatal("key 0 broken")
	}
	if v, ok := tb.Get(^uint64(0)); !ok || v != 2 {
		t.Fatal("key MaxUint64 broken")
	}
}

func BenchmarkFloatTableUpsert(b *testing.B) {
	tb := NewFloatTable(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Upsert(uint64(i)&0xFFFF, 1.0)
	}
}

func BenchmarkSliceTableInsert(b *testing.B) {
	tb := NewSliceTable(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Insert(uint64(i)&0xFFF, uint32(i), 1.0)
	}
}
