// Package hashtable implements the open-addressing hash tables at the heart
// of FaSTCC (paper Sections 2.2 and 4):
//
//   - SliceTable maps a contraction index c to the list of (intra-tile
//     index, value) pairs of a tile's nonzeros — the HL_i / HR_j maps of
//     Algorithm 6.
//   - FloatTable maps a packed (l,r) output position to an accumulated
//     float64 — the sparse tile accumulator of Section 5.4.
//
// Both use linear probing over power-of-two capacities. Open addressing was
// chosen by the paper over Sparta's chaining tables for space efficiency and
// data locality; the chaining design lives in internal/chainhash for the
// Sparta baseline.
package hashtable

import "math/bits"

// Mix is a strong 64-bit finalizer (the splitmix64 output permutation). It
// maps sequential contraction indices to well-spread slots so linear probing
// does not clump on structured inputs.
func Mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nextPow2 returns the smallest power of two >= n (minimum 1).
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << (bits.Len(uint(n - 1)))
}
