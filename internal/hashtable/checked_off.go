//go:build !fastcc_checked

package hashtable

// checkedSealed is the zero-sized placeholder for the fastcc_checked
// generation stamp; the normal build carries no lifetime state and the
// check hooks below compile to nothing on the KeyAt/PairsAt/Lookup hot
// paths.
type checkedSealed struct{}

func (s *Sealed) stampLive()             {}
func (s *Sealed) invalidate()            {}
func (s *Sealed) checkLive(string)       {}
func (s *Sealed) checkSpan(string, Span) {}
