package hashtable

import "fastcc/internal/mempool"

// Span bounds one key's pair run inside a Sealed table's arena.
type Span struct {
	Off int32
	Len int32
}

// Sealed-arena recycling: the shard-cache eviction policy retires whole
// sealed tables, whose storage flows back through these pools and is drawn
// again by the next Seal (and by NewSliceTable for the slot arrays Seal
// steals). Under fastcc_checked the pools poison parked storage, so an
// unpinned reader touching a recycled table's arrays trips the sentinel or
// the generation stamp instead of reading another shard's data.
var (
	arenaU64  mempool.SlicePool[uint64]
	arenaI32  mempool.SlicePool[int32]
	arenaSpan mempool.SlicePool[Span]
	arenaPair mempool.SlicePool[Pair]
)

// Per-element footprints of the sealed arrays (Pair pads to 16 bytes).
const (
	bytesPerSlotKey = 8
	bytesPerSlotIdx = 4
	bytesPerKey     = 8
	bytesPerSpan    = 8
	bytesPerPair    = 16
)

// Sealed is the read-only SoA form of a SliceTable: one contiguous []Pair
// arena with per-key {off, len} spans in place of the mutable table's
// [][]Pair double indirection. Sealing happens once at the end of the Build
// phase; the Contract phase then co-iterates sealed tables with a flat
// cursor (KeyAt/PairsAt over dense indices) instead of a ForEach closure,
// and every Lookup resolves to a span into the arena — no per-key slice
// headers scattered across the heap, no pointer chase per probe.
//
// Immutable after Seal, so concurrent contractions read it without locks.
type Sealed struct {
	mask uint64
	// slotKeys/slotIdx are the open-addressing slot arrays (stolen from the
	// sealed SliceTable — sealing allocates no new slot storage); slotIdx
	// maps a slot to a dense key index or sliceEmptySlot.
	slotKeys []uint64
	slotIdx  []int32
	// keys/spans are dense, indexed by insertion order; pairs is the arena.
	keys  []uint64
	spans []Span
	pairs []Pair

	ck checkedSealed // generation stamp; zero-sized unless built with fastcc_checked
}

// Seal converts the table into its read-only SoA form. The pair lists are
// copied once into a contiguous arena sized exactly Pairs(); the slot
// arrays are reused as the sealed lookup index. The SliceTable must not be
// used afterwards: its per-key lists are released for the GC and its slot
// arrays now belong to the sealed table.
//
//fastcc:sealer -- the one function allowed to populate a Sealed
func (t *SliceTable) Seal() *Sealed {
	n := len(t.lists)
	s := &Sealed{
		mask:     t.mask,
		slotKeys: t.keys,
		slotIdx:  t.listIdx,
		keys:     arenaU64.Get(n)[:n],    //fastcc:owned -- recycled by Sealed.Recycle
		spans:    arenaSpan.Get(n)[:n],   //fastcc:owned -- recycled by Sealed.Recycle
		pairs:    arenaPair.Get(t.pairs), //fastcc:owned -- recycled by Sealed.Recycle
	}
	// Dense index li was assigned in key-insertion order; recover each
	// key's value from its slot so cursor iteration follows that order.
	for slot, li := range t.listIdx {
		if li != sliceEmptySlot {
			s.keys[li] = t.keys[slot]
		}
	}
	for li, ps := range t.lists {
		s.spans[li] = Span{Off: int32(len(s.pairs)), Len: int32(len(ps))}
		s.pairs = append(s.pairs, ps...)
		t.lists[li] = nil // release the mutable list for the GC as we go
	}
	t.lists = nil
	t.keys = nil
	t.listIdx = nil
	s.stampLive()
	return s
}

// slicePairs resolves a span into the arena through int-widened bounds, so
// the slice arithmetic cannot wrap even if spans ever outgrow int32 math
// (the spanarith analyzer enforces this shape on all new span code).
//
//fastcc:hotpath
func (s *Sealed) slicePairs(sp Span) []Pair {
	return s.pairs[int(sp.Off) : int(sp.Off)+int(sp.Len)]
}

// Len returns the number of distinct keys.
func (s *Sealed) Len() int { return len(s.keys) }

// Mask returns the open-addressing slot mask (slot count - 1). Spill files
// store it so a restored table is probed over the same slot geometry as the
// one that was evicted (growth history is not reproducible from the dense
// arrays alone).
func (s *Sealed) Mask() uint64 { return s.mask }

// Pairs returns the total number of stored (key, pair) entries.
func (s *Sealed) Pairs() int { return len(s.pairs) }

// Slots returns the open-addressing slot count (footprint introspection).
func (s *Sealed) Slots() int { return len(s.slotKeys) }

// KeyAt returns the dense index i's key (0 <= i < Len()), in insertion
// order — the cursor side of tile co-iteration.
//
//fastcc:hotpath
func (s *Sealed) KeyAt(i int) uint64 {
	s.checkLive("KeyAt")
	return s.keys[i]
}

// PairsAt returns the dense index i's pair run. The slice aliases the
// arena and must not be modified.
//
//fastcc:hotpath
func (s *Sealed) PairsAt(i int) []Pair {
	// Liveness before the spans read: a recycled table must fail the
	// generation check, not an index bound on its released arrays.
	s.checkLive("PairsAt")
	sp := s.spans[i]
	s.checkSpan("PairsAt", sp)
	return s.slicePairs(sp)
}

// Lookup returns the pair run for key, or nil when absent — the probe side
// of tile co-iteration. The slice aliases the arena; do not modify.
//
//fastcc:hotpath
func (s *Sealed) Lookup(key uint64) []Pair {
	s.checkLive("Lookup")
	slot := Mix(key) & s.mask
	for {
		li := s.slotIdx[slot]
		if li == sliceEmptySlot {
			return nil
		}
		if s.slotKeys[slot] == key {
			sp := s.spans[li]
			s.checkSpan("Lookup", sp)
			return s.slicePairs(sp)
		}
		slot = (slot + 1) & s.mask
	}
}

// Contains reports whether key is present.
func (s *Sealed) Contains(key uint64) bool { return s.Lookup(key) != nil }

// Keys returns the dense key array in insertion order — the flat iteration
// side of tile co-iteration, and the array the batched probe side consumes
// in chunks. The slice aliases the sealed storage and must not be modified.
//
//fastcc:hotpath
func (s *Sealed) Keys() []uint64 {
	s.checkLive("Keys")
	return s.keys
}

// LookupBatchMax bounds one LookupBatch chunk: the stack scratch the
// software pipeline spreads its in-flight probes over. Callers may pass
// longer key slices — the pipeline restarts every LookupBatchMax keys.
const LookupBatchMax = 16

// LookupBatch resolves keys[i] to its dense key index in out[i] (usable
// with PairsAt), or -1 when absent, and returns the number present. The
// point is latency overlap: where Lookup serializes one hash → load →
// compare chain per key, LookupBatch hashes a whole chunk and issues its
// home-slot loads in a branch-free pass — up to LookupBatchMax independent
// cache misses in flight — and only then resolves collisions, so probe
// latency amortizes across the chunk instead of summing.
//
// out must have at least len(keys) entries; out[len(keys):] is untouched.
//
//fastcc:hotpath
func (s *Sealed) LookupBatch(keys []uint64, out []int32) (hits int) {
	s.checkLive("LookupBatch")
	_ = out[:len(keys)] // one bounds check for the whole batch
	var (
		slots    [LookupBatchMax]uint64
		homeIdx  [LookupBatchMax]int32
		homeKeys [LookupBatchMax]uint64
	)
	for base := 0; base < len(keys); base += LookupBatchMax {
		n := len(keys) - base
		if n > LookupBatchMax {
			n = LookupBatchMax
		}
		chunk := keys[base : base+n]
		// Pipeline pass: hash every key and load its home slot's index and
		// key. Nothing here branches on a loaded value, so the loads of the
		// whole chunk overlap in the load queue.
		for i, k := range chunk {
			slot := Mix(k) & s.mask
			slots[i] = slot
			homeIdx[i] = s.slotIdx[slot]
			homeKeys[i] = s.slotKeys[slot]
		}
		// Resolve pass: the common cases — empty home slot (miss) or key
		// match at home (hit) — complete from the prefetched state; only
		// collision chains fall through to the serial probe walk.
		for i, k := range chunk {
			li := homeIdx[i]
			switch {
			case li == sliceEmptySlot:
				out[base+i] = -1
			case homeKeys[i] == k:
				out[base+i] = li
				hits++
			default:
				out[base+i] = s.probeFrom(slots[i], k)
				if out[base+i] >= 0 {
					hits++
				}
			}
		}
	}
	return hits
}

// probeFrom continues a linear probe for key from the slot after home,
// returning the dense key index or -1. The home slot itself was already
// checked by LookupBatch's pipeline pass.
//
//fastcc:hotpath
func (s *Sealed) probeFrom(home uint64, key uint64) int32 {
	slot := (home + 1) & s.mask
	for {
		li := s.slotIdx[slot]
		if li == sliceEmptySlot {
			return -1
		}
		if s.slotKeys[slot] == key {
			return li
		}
		slot = (slot + 1) & s.mask
	}
}

// ForEach visits every (key, pair run) in insertion order. Kept for tests
// and tooling; the contraction kernel uses the KeyAt/PairsAt cursor.
func (s *Sealed) ForEach(fn func(key uint64, pairs []Pair)) {
	for i := range s.keys {
		fn(s.keys[i], s.PairsAt(i))
	}
}

// MemBytes reports the table's in-memory footprint: the slot arrays, the
// dense key/span arrays, and the pair arena. This is the byte figure the
// shard-cache eviction budget charges per tile.
func (s *Sealed) MemBytes() int64 {
	return int64(len(s.slotKeys))*bytesPerSlotKey +
		int64(len(s.slotIdx))*bytesPerSlotIdx +
		int64(len(s.keys))*bytesPerKey +
		int64(len(s.spans))*bytesPerSpan +
		int64(cap(s.pairs))*bytesPerPair
}

// Recycle retires the table and returns its storage to the arena pools for
// future Seal calls — the eviction half of the sealed-table lifecycle. The
// table must have no readers: the shard cache only calls this after the
// owning shard's pin count has dropped to zero and its retire bit is set.
// Under fastcc_checked the generation stamp is invalidated first, so any
// reader that skipped pinning panics deterministically at its next access
// instead of observing another shard's recycled data.
//
//fastcc:sealer -- lifecycle transition, the inverse of Seal
func (s *Sealed) Recycle() {
	s.invalidate()
	arenaU64.Put(s.slotKeys)
	arenaI32.Put(s.slotIdx)
	arenaU64.Put(s.keys)
	arenaSpan.Put(s.spans)
	arenaPair.Put(s.pairs)
	s.slotKeys, s.slotIdx, s.keys, s.spans, s.pairs = nil, nil, nil, nil, nil
}
