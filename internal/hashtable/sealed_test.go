package hashtable

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSealedBasic(t *testing.T) {
	tb := NewSliceTable(0)
	tb.Insert(7, 1, 1.5)
	tb.Insert(7, 2, 2.5)
	tb.Insert(9, 3, 3.5)
	s := tb.Seal()
	if s.Len() != 2 || s.Pairs() != 3 {
		t.Fatalf("Len=%d Pairs=%d", s.Len(), s.Pairs())
	}
	ps := s.Lookup(7)
	if len(ps) != 2 || ps[0] != (Pair{1, 1.5}) || ps[1] != (Pair{2, 2.5}) {
		t.Fatalf("Lookup(7) = %v", ps)
	}
	if s.Lookup(8) != nil {
		t.Fatal("Lookup(8) should be nil")
	}
	if !s.Contains(9) || s.Contains(10) {
		t.Fatal("Contains wrong")
	}
	// Cursor order is insertion order: key 7 first, then 9.
	if s.KeyAt(0) != 7 || s.KeyAt(1) != 9 {
		t.Fatalf("cursor keys %d,%d", s.KeyAt(0), s.KeyAt(1))
	}
	if len(s.PairsAt(0)) != 2 || len(s.PairsAt(1)) != 1 {
		t.Fatal("cursor pair runs wrong")
	}
}

func TestSealedMatchesSliceTable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewSliceTable(0)
		model := map[uint64][]Pair{}
		for i := 0; i < 800; i++ {
			k := rng.Uint64() % 97
			p := Pair{Idx: uint32(rng.Intn(1000)), Val: float64(rng.Intn(19) - 9)}
			tb.Insert(k, p.Idx, p.Val)
			model[k] = append(model[k], p)
		}
		s := tb.Seal()
		if s.Len() != len(model) {
			return false
		}
		// Lookup agrees with the model, pair order preserved.
		for k, want := range model {
			got := s.Lookup(k)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		// The cursor visits every key exactly once with the same runs.
		visited := map[uint64]bool{}
		for i := 0; i < s.Len(); i++ {
			k := s.KeyAt(i)
			if visited[k] {
				return false
			}
			visited[k] = true
			if len(s.PairsAt(i)) != len(model[k]) {
				return false
			}
		}
		return len(visited) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSealedArenaIsContiguous(t *testing.T) {
	tb := NewSliceTable(8)
	for i := uint64(0); i < 1000; i++ {
		tb.Insert(i%31, uint32(i), float64(i))
	}
	s := tb.Seal()
	if s.Pairs() != 1000 {
		t.Fatalf("Pairs=%d", s.Pairs())
	}
	// Spans tile the arena exactly: cursor order runs are adjacent.
	off := int32(0)
	for i := 0; i < s.Len(); i++ {
		sp := s.spans[i]
		if sp.Off != off {
			t.Fatalf("key %d span starts at %d want %d", i, sp.Off, off)
		}
		off += sp.Len
	}
	if int(off) != len(s.pairs) {
		t.Fatalf("spans cover %d of %d pairs", off, len(s.pairs))
	}
	if cap(s.pairs) != len(s.pairs) {
		t.Fatalf("arena over-allocated: cap %d len %d", cap(s.pairs), len(s.pairs))
	}
}

func TestSealedForEachMatchesCursor(t *testing.T) {
	tb := NewSliceTable(4)
	for i := uint64(0); i < 300; i++ {
		tb.Insert(i%23, uint32(i), 1)
	}
	s := tb.Seal()
	i := 0
	s.ForEach(func(k uint64, ps []Pair) {
		if k != s.KeyAt(i) || len(ps) != len(s.PairsAt(i)) {
			t.Fatalf("ForEach diverges from cursor at %d", i)
		}
		i++
	})
	if i != s.Len() {
		t.Fatalf("ForEach visited %d of %d", i, s.Len())
	}
}

// TestSliceTableFootprintWithAccurateHint is the sizing-bug regression
// test: NewSliceTable's hint is a DISTINCT-KEY count, not a pair count.
// With an accurate key hint the table must not grow, and its slot count
// must stay within one doubling of the load-factor-implied minimum — the
// seed bug passed per-tile PAIR counts here, over-allocating slot arrays by
// the pairs-per-key factor.
func TestSliceTableFootprintWithAccurateHint(t *testing.T) {
	const distinct, pairsPerKey = 1000, 16
	tb := NewSliceTable(distinct)
	slots0 := tb.Slots()
	for i := 0; i < distinct*pairsPerKey; i++ {
		tb.Insert(uint64(i%distinct), uint32(i), 1)
	}
	if tb.Slots() != slots0 {
		t.Fatalf("accurately hinted table grew: %d -> %d slots", slots0, tb.Slots())
	}
	d := float64(distinct)
	minSlots := nextPow2(int(d/sliceMaxLoad) + 1)
	if tb.Slots() > 2*minSlots {
		t.Fatalf("footprint %d slots exceeds 2x the load-implied minimum %d", tb.Slots(), minSlots)
	}
	// A pair-count hint (the seed bug) allocates ~pairsPerKey/loadFactor x
	// more slots than needed; pin the ratio so the bug cannot return.
	over := NewSliceTable(distinct * pairsPerKey)
	if over.Slots() < 8*tb.Slots() {
		t.Fatalf("test premise broken: pair-count hint gives %d slots vs %d", over.Slots(), tb.Slots())
	}
	// Sealing preserves the accurate footprint: the arena is exactly the
	// pair count, the slot arrays are reused, not reallocated.
	s := tb.Seal()
	if s.Slots() != slots0 {
		t.Fatalf("seal changed slot footprint: %d -> %d", slots0, s.Slots())
	}
	if s.Pairs() != distinct*pairsPerKey || cap(s.pairs) != s.Pairs() {
		t.Fatalf("sealed arena: len %d cap %d want exactly %d", s.Pairs(), cap(s.pairs), distinct*pairsPerKey)
	}
}

// TestLookupBatchMatchesLookup pins the batched probe against the serial
// one across table sizes, including key counts that are not a multiple of
// the batch width (the chunked pipeline's remainder path) and a heavy mix
// of absent keys.
func TestLookupBatchMatchesLookup(t *testing.T) {
	for _, distinct := range []int{0, 1, 7, LookupBatchMax - 1, LookupBatchMax, LookupBatchMax + 1, 61, 500} {
		rng := rand.New(rand.NewSource(int64(distinct) + 1))
		tb := NewSliceTable(distinct)
		for i := 0; i < distinct*4; i++ {
			tb.Insert(uint64(i%max(distinct, 1)), uint32(i), float64(rng.Intn(9)))
		}
		s := tb.Seal()

		// Probe the full key set plus interleaved absent keys.
		var keys []uint64
		for i := 0; i < s.Len(); i++ {
			keys = append(keys, s.KeyAt(i), uint64(1_000_000+i))
		}
		out := make([]int32, len(keys))
		hits := s.LookupBatch(keys, out)
		if hits != s.Len() {
			t.Fatalf("distinct=%d: hits=%d want %d", distinct, hits, s.Len())
		}
		for i, k := range keys {
			want := s.Lookup(k)
			switch {
			case want == nil && out[i] != -1:
				t.Fatalf("distinct=%d key %d: batch found absent key (li=%d)", distinct, k, out[i])
			case want != nil && out[i] < 0:
				t.Fatalf("distinct=%d key %d: batch missed present key", distinct, k)
			case want != nil:
				got := s.PairsAt(int(out[i]))
				if len(got) != len(want) || (len(got) > 0 && &got[0] != &want[0]) {
					t.Fatalf("distinct=%d key %d: batch resolved a different pair run", distinct, k)
				}
			}
		}
	}
}

// TestLookupBatchCollisionChains drives the slow (probe-walk) path: a table
// held at high load so home-slot collisions are common.
func TestLookupBatchCollisionChains(t *testing.T) {
	// A deliberately under-hinted table: every insert after the first few
	// probes past occupied slots.
	tb := NewSliceTable(0)
	const n = 3000
	for i := 0; i < n; i++ {
		tb.Insert(uint64(i)*2654435761, uint32(i), 1)
	}
	s := tb.Seal()
	keys := s.Keys()
	out := make([]int32, len(keys))
	if hits := s.LookupBatch(keys, out); hits != s.Len() {
		t.Fatalf("hits=%d want %d", hits, s.Len())
	}
	for i := range keys {
		if int(out[i]) != i {
			t.Fatalf("key %d resolved to dense index %d", i, out[i])
		}
	}
	// A batch of all-absent keys exercises chain termination.
	absent := make([]uint64, 100)
	for i := range absent {
		absent[i] = uint64(n+i)*2654435761 + 1
	}
	out = out[:len(absent)]
	if hits := s.LookupBatch(absent, out); hits != 0 {
		t.Fatalf("absent batch reported %d hits", hits)
	}
	for i, li := range out {
		if li != -1 {
			t.Fatalf("absent key %d resolved to %d", i, li)
		}
	}
}

func TestSealedKeysAliasCursor(t *testing.T) {
	tb := NewSliceTable(4)
	for i := uint64(0); i < 100; i++ {
		tb.Insert(i%13, uint32(i), 1)
	}
	s := tb.Seal()
	ks := s.Keys()
	if len(ks) != s.Len() {
		t.Fatalf("Keys() len %d want %d", len(ks), s.Len())
	}
	for i, k := range ks {
		if k != s.KeyAt(i) {
			t.Fatalf("Keys()[%d]=%d diverges from KeyAt=%d", i, k, s.KeyAt(i))
		}
	}
}

func BenchmarkSealedLookup(b *testing.B) {
	tb := NewSliceTable(1 << 12)
	for i := 0; i < 1<<14; i++ {
		tb.Insert(uint64(i)&0xFFF, uint32(i), 1.0)
	}
	s := tb.Seal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Lookup(uint64(i) & 0xFFF)
	}
}

func BenchmarkSealedLookupBatch(b *testing.B) {
	tb := NewSliceTable(1 << 12)
	for i := 0; i < 1<<14; i++ {
		tb.Insert(uint64(i)&0xFFF, uint32(i), 1.0)
	}
	s := tb.Seal()
	keys := s.Keys()
	out := make([]int32, len(keys))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.LookupBatch(keys, out)
	}
}

func BenchmarkSealedCursorSweep(b *testing.B) {
	tb := NewSliceTable(1 << 12)
	for i := 0; i < 1<<14; i++ {
		tb.Insert(uint64(i)&0xFFF, uint32(i), 1.0)
	}
	s := tb.Seal()
	b.ReportAllocs()
	sum := 0.0
	for i := 0; i < b.N; i++ {
		for di := 0; di < s.Len(); di++ {
			ps := s.PairsAt(di)
			for _, p := range ps {
				sum += p.Val
			}
		}
	}
	_ = sum
}
