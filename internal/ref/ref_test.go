package ref

import (
	"testing"

	"fastcc/internal/coo"
)

func TestContractMatrixKnown(t *testing.T) {
	l := &coo.Matrix{
		Ext: []uint64{0, 1}, Ctr: []uint64{0, 0},
		Val: []float64{2, 3}, ExtDim: 2, CtrDim: 1,
	}
	r := &coo.Matrix{
		Ext: []uint64{0, 1}, Ctr: []uint64{0, 0},
		Val: []float64{5, 7}, ExtDim: 2, CtrDim: 1,
	}
	got := ContractMatrix(l, r)
	want := map[[2]uint64]float64{
		{0, 0}: 10, {0, 1}: 14, {1, 0}: 15, {1, 1}: 21,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("got[%v]=%g want %g", k, got[k], v)
		}
	}
}

func TestContractMatrixDuplicates(t *testing.T) {
	// Duplicate (ext, ctr) entries are independent contributions.
	l := &coo.Matrix{
		Ext: []uint64{0, 0}, Ctr: []uint64{0, 0},
		Val: []float64{1, 1}, ExtDim: 1, CtrDim: 1,
	}
	r := &coo.Matrix{
		Ext: []uint64{0}, Ctr: []uint64{0},
		Val: []float64{3}, ExtDim: 1, CtrDim: 1,
	}
	got := ContractMatrix(l, r)
	if got[[2]uint64{0, 0}] != 6 {
		t.Fatalf("duplicates mishandled: %v", got)
	}
}

func TestContractTensors(t *testing.T) {
	l := coo.New([]uint64{2, 3}, 2)
	l.Append([]uint64{0, 1}, 2)
	l.Append([]uint64{1, 2}, 3)
	r := coo.New([]uint64{3, 2}, 2)
	r.Append([]uint64{1, 0}, 4)
	r.Append([]uint64{2, 1}, 5)
	out, err := Contract(l, r, coo.Spec{CtrLeft: []int{1}, CtrRight: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if out.At([]uint64{0, 0}) != 8 || out.At([]uint64{1, 1}) != 15 {
		t.Fatalf("reference contraction wrong: %v %v", out.Coords, out.Vals)
	}
	if !out.IsSorted() {
		t.Fatal("reference output must be canonical")
	}
	if _, err := Contract(l, r, coo.Spec{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestHelpers(t *testing.T) {
	tn := TriplesToMatrixTensor([]uint64{1}, []uint64{2}, []float64{3}, 4, 4)
	if tn.At([]uint64{1, 2}) != 3 {
		t.Fatal("TriplesToMatrixTensor wrong")
	}
	m := map[[2]uint64]float64{{0, 1}: 2, {3, 3}: 0}
	tn2 := MapToMatrixTensor(m, 4, 4)
	if tn2.NNZ() != 1 || tn2.At([]uint64{0, 1}) != 2 {
		t.Fatal("MapToMatrixTensor should drop zeros")
	}
}
