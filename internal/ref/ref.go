// Package ref provides naive, obviously-correct reference implementations
// of sparse tensor contraction used as test oracles for FaSTCC and all
// baselines. Everything here favors clarity over speed.
package ref

import (
	"fastcc/internal/coo"
)

// ContractMatrix computes O[l,r] = Σ_c L[l,c]·R[c,r] with Go maps.
// The result maps packed keys to values via the Pairs type.
func ContractMatrix(l, r *coo.Matrix) map[[2]uint64]float64 {
	// Group the right operand by contraction index.
	rByC := map[uint64][]int{}
	for k := range r.Val {
		rByC[r.Ctr[k]] = append(rByC[r.Ctr[k]], k)
	}
	out := map[[2]uint64]float64{}
	for k := range l.Val {
		c := l.Ctr[k]
		for _, j := range rByC[c] {
			out[[2]uint64{l.Ext[k], r.Ext[j]}] += l.Val[k] * r.Val[j]
		}
	}
	return out
}

// Contract contracts two COO tensors per spec and returns the output tensor
// (sorted, deduplicated, exact zeros kept out).
func Contract(l, r *coo.Tensor, spec coo.Spec) (*coo.Tensor, error) {
	if err := spec.Validate(l, r); err != nil {
		return nil, err
	}
	extL := coo.ExternalModes(l.Order(), spec.CtrLeft)
	extR := coo.ExternalModes(r.Order(), spec.CtrRight)
	lm, err := l.Matrixize(extL, spec.CtrLeft)
	if err != nil {
		return nil, err
	}
	rm, err := r.Matrixize(extR, spec.CtrRight)
	if err != nil {
		return nil, err
	}
	prod := ContractMatrix(lm, rm)
	ls := make([]uint64, 0, len(prod))
	rs := make([]uint64, 0, len(prod))
	vs := make([]float64, 0, len(prod))
	for k, v := range prod {
		if v == 0 {
			continue
		}
		ls = append(ls, k[0])
		rs = append(rs, k[1])
		vs = append(vs, v)
	}
	lDims := make([]uint64, len(extL))
	for i, m := range extL {
		lDims[i] = l.Dims[m]
	}
	rDims := make([]uint64, len(extR))
	for i, m := range extR {
		rDims[i] = r.Dims[m]
	}
	out, err := coo.FromPairs(ls, rs, vs, lDims, rDims)
	if err != nil {
		return nil, err
	}
	out.Dedup()
	return out, nil
}

// TriplesToMatrixTensor converts matrixized (l, r, v) triples into a 2-mode
// COO tensor for comparison against reference maps.
func TriplesToMatrixTensor(ls, rs []uint64, vs []float64, lDim, rDim uint64) *coo.Tensor {
	t := coo.New([]uint64{lDim, rDim}, len(vs))
	t.Coords[0] = append(t.Coords[0], ls...)
	t.Coords[1] = append(t.Coords[1], rs...)
	t.Vals = append(t.Vals, vs...)
	return t
}

// MapToMatrixTensor converts a reference result map to a 2-mode COO tensor.
func MapToMatrixTensor(m map[[2]uint64]float64, lDim, rDim uint64) *coo.Tensor {
	t := coo.New([]uint64{lDim, rDim}, len(m))
	for k, v := range m {
		if v == 0 {
			continue
		}
		t.Append([]uint64{k[0], k[1]}, v)
	}
	t.Sort()
	return t
}
