// Package tnsbin implements a compact binary sparse-tensor format ("BTNS")
// for benchmark I/O. The text .tns format is convenient but costs ~20
// bytes per coordinate; paper-scale tensors (26M nonzeros for vast) parse
// slowly and bloat on disk. BTNS stores elements sorted by linearized
// coordinate with varint delta-encoded keys and raw little-endian values,
// typically 3-6× smaller than .tns and parseable at memory speed.
//
// Layout (all multi-byte integers little-endian or uvarint):
//
//	magic   "BTNS"                  4 bytes
//	version uvarint                 (currently 1)
//	order   uvarint
//	dims    order × uvarint
//	nnz     uvarint
//	keys    nnz × uvarint           delta of linearized coordinate (+1 for
//	                                successors, so duplicates are invalid)
//	vals    nnz × float64           raw IEEE-754 bits
//	crc     uint32                  IEEE CRC-32 of everything above
//
// The format requires the tensor's full index space to linearize into a
// uint64 (true for every benchmark in the paper); Write returns an error
// otherwise and callers fall back to .tns.
package tnsbin

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"fastcc/internal/coo"
)

var magic = [4]byte{'B', 'T', 'N', 'S'}

const version = 1

// Write encodes the tensor. The input is canonicalized (sorted,
// deduplicated) into a clone first; t is not modified.
func Write(w io.Writer, t *coo.Tensor) error {
	if _, err := coo.LinearSize(t.Dims); err != nil {
		return fmt.Errorf("tnsbin: %w", err)
	}
	c := t.Clone()
	c.Dedup()
	modes := make([]int, c.Order())
	for m := range modes {
		modes[m] = m
	}
	keys, err := c.LinearizeModes(modes)
	if err != nil {
		return fmt.Errorf("tnsbin: %w", err)
	}

	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(version); err != nil {
		return err
	}
	if err := putUvarint(uint64(c.Order())); err != nil {
		return err
	}
	for _, d := range c.Dims {
		if err := putUvarint(d); err != nil {
			return err
		}
	}
	if err := putUvarint(uint64(c.NNZ())); err != nil {
		return err
	}
	prev := uint64(0)
	for i, k := range keys {
		delta := k + 1 // +1 guarantees strictly increasing keys round-trip
		if i > 0 {
			delta = k - prev
			if delta == 0 {
				return fmt.Errorf("tnsbin: duplicate coordinate after dedup (key %d)", k)
			}
		}
		if err := putUvarint(delta); err != nil {
			return err
		}
		prev = k
	}
	for _, v := range c.Vals {
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(v))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Trailer CRC covers everything written so far.
	binary.LittleEndian.PutUint32(buf[:4], crc.Sum32())
	_, err = w.Write(buf[:4])
	return err
}

// Read decodes a BTNS stream. The stream is buffered in memory (tensors
// are in-memory objects anyway) so the checksum covers exactly the bytes
// parsed.
func Read(r io.Reader) (*coo.Tensor, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("tnsbin: %w", err)
	}
	if len(data) < len(magic)+4 {
		return nil, fmt.Errorf("tnsbin: truncated stream (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("tnsbin: checksum mismatch (file %08x, computed %08x)", got, want)
	}
	br := bytes.NewReader(body)

	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("tnsbin: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("tnsbin: bad magic %q", m[:])
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("tnsbin: version: %w", err)
	}
	if ver != version {
		return nil, fmt.Errorf("tnsbin: unsupported version %d", ver)
	}
	order, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("tnsbin: order: %w", err)
	}
	if order == 0 || order > 64 {
		return nil, fmt.Errorf("tnsbin: implausible order %d", order)
	}
	dims := make([]uint64, order)
	for i := range dims {
		if dims[i], err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("tnsbin: dims: %w", err)
		}
		if dims[i] == 0 {
			return nil, fmt.Errorf("tnsbin: zero extent at mode %d", i)
		}
	}
	size, err := coo.LinearSize(dims)
	if err != nil {
		return nil, fmt.Errorf("tnsbin: %w", err)
	}
	nnz64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("tnsbin: nnz: %w", err)
	}
	if nnz64 > size {
		return nil, fmt.Errorf("tnsbin: nnz %d exceeds index space %d", nnz64, size)
	}
	nnz := int(nnz64)

	keys := make([]uint64, nnz)
	key := uint64(0)
	for i := 0; i < nnz; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("tnsbin: key %d: %w", i, err)
		}
		if delta == 0 {
			return nil, fmt.Errorf("tnsbin: zero key delta at element %d", i)
		}
		if i == 0 {
			key = delta - 1
		} else {
			next := key + delta
			if next < key {
				return nil, fmt.Errorf("tnsbin: key overflow at element %d", i)
			}
			key = next
		}
		if key >= size {
			return nil, fmt.Errorf("tnsbin: key %d beyond index space at element %d", key, i)
		}
		keys[i] = key
	}
	t := coo.New(dims, nnz)
	var vb [8]byte
	for i := 0; i < nnz; i++ {
		if _, err := io.ReadFull(br, vb[:]); err != nil {
			return nil, fmt.Errorf("tnsbin: value %d: %w", i, err)
		}
		t.Vals = append(t.Vals, math.Float64frombits(binary.LittleEndian.Uint64(vb[:])))
	}
	// De-linearize keys into per-mode coordinate arrays.
	for m := range dims {
		t.Coords[m] = t.Coords[m][:0]
		t.Coords[m] = append(t.Coords[m], make([]uint64, nnz)...)
	}
	coords := make([]uint64, order)
	for i, k := range keys {
		coo.Delinearize(k, dims, coords)
		for m := range dims {
			t.Coords[m][i] = coords[m]
		}
	}

	if br.Len() != 0 {
		return nil, fmt.Errorf("tnsbin: %d trailing bytes after payload", br.Len())
	}
	return t, nil
}
