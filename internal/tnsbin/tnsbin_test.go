package tnsbin

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fastcc/internal/coo"
)

func randomTensor(rng *rand.Rand, dims []uint64, nnz int) *coo.Tensor {
	t := coo.New(dims, nnz)
	coords := make([]uint64, len(dims))
	for i := 0; i < nnz; i++ {
		for m, d := range dims {
			coords[m] = rng.Uint64() % d
		}
		t.Append(coords, rng.NormFloat64())
	}
	return t
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomTensor(rng, []uint64{40, 7, 19}, 500)
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := a.Clone()
	want.Dedup()
	if !coo.Equal(want, b) {
		t.Fatal("round trip mismatch")
	}
	if !b.IsSorted() {
		t.Fatal("BTNS must decode sorted")
	}
}

func TestRoundTripEmptyAndScalarish(t *testing.T) {
	empty := coo.New([]uint64{5, 5}, 0)
	var buf bytes.Buffer
	if err := Write(&buf, empty); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 || got.Order() != 2 {
		t.Fatalf("empty round trip: %v", got)
	}
	// First key at coordinate zero (delta encoding edge).
	one := coo.New([]uint64{3}, 1)
	one.Append([]uint64{0}, -2.5)
	buf.Reset()
	if err := Write(&buf, one); err != nil {
		t.Fatal(err)
	}
	got, err = Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.At([]uint64{0}) != -2.5 {
		t.Fatal("zero-coordinate element lost")
	}
}

func TestWriteRejectsHugeIndexSpace(t *testing.T) {
	huge := coo.New([]uint64{1 << 40, 1 << 40}, 0)
	if err := Write(&bytes.Buffer{}, huge); err == nil {
		t.Fatal("overflowing dims accepted")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomTensor(rng, []uint64{20, 20}, 50)
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip one payload byte: checksum must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x40
	if _, err := Read(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted payload: err=%v", err)
	}
	// Truncate: must error, not panic.
	for _, cut := range []int{0, 3, 7, len(good) / 2, len(good) - 1} {
		if _, err := Read(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Bad magic.
	bad2 := append([]byte(nil), good...)
	bad2[0] = 'X'
	if _, err := Read(bytes.NewReader(bad2)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestFormatIsCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomTensor(rng, []uint64{500, 400, 30}, 5000)
	a.Dedup()
	var bin, txt bytes.Buffer
	if err := Write(&bin, a); err != nil {
		t.Fatal(err)
	}
	if err := coo.WriteTNS(&txt, a); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Fatalf("BTNS (%d B) not smaller than .tns (%d B)", bin.Len(), txt.Len())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := rng.Intn(4) + 1
		dims := make([]uint64, order)
		for m := range dims {
			dims[m] = uint64(rng.Intn(12) + 1)
		}
		a := randomTensor(rng, dims, rng.Intn(80))
		var buf bytes.Buffer
		if err := Write(&buf, a); err != nil {
			return false
		}
		b, err := Read(&buf)
		if err != nil {
			return false
		}
		want := a.Clone()
		want.Dedup()
		return coo.Equal(want, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func FuzzRead(f *testing.F) {
	rng := rand.New(rand.NewSource(4))
	a := randomTensor(rng, []uint64{9, 9}, 20)
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("BTNS"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tn, err := Read(bytes.NewReader(data)) // must never panic
		if err == nil {
			if verr := tn.Validate(); verr != nil {
				t.Fatalf("accepted invalid tensor: %v", verr)
			}
		}
	})
}
