// Section encoding: the flat, CRC-trailed byte layer shared by BTNS's
// sibling formats — today the shard spill files (internal/spill), whose
// sections are fixed-width little-endian scalars and length-prefixed flat
// arrays rather than BTNS's delta-coded coordinate stream. A SectionWriter
// appends typed fields to one contiguous buffer and Finish seals it with
// the same IEEE CRC-32 trailer BTNS uses; NewSectionReader verifies and
// strips that trailer before any field is parsed, so a truncated or
// bit-flipped file fails loudly at open, never as a misparsed field.
package tnsbin

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Section-stream errors, surfaced by NewSectionReader and the typed reads.
var (
	// ErrSectionTruncated reports a stream shorter than its declared
	// contents (including one too short to carry the CRC trailer).
	ErrSectionTruncated = errors.New("tnsbin: section stream truncated")
	// ErrSectionChecksum reports a CRC-32 trailer mismatch.
	ErrSectionChecksum = errors.New("tnsbin: section checksum mismatch")
)

// SectionWriter accumulates typed fields into one flat buffer. The zero
// value is ready to use; call Finish to seal the stream with its CRC
// trailer (or Bytes to embed the raw fields inside another stream).
type SectionWriter struct {
	buf []byte
}

// U8 appends one byte.
func (w *SectionWriter) U8(v uint8) { w.buf = append(w.buf, v) }

// U32 appends a fixed-width little-endian uint32.
func (w *SectionWriter) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 appends a fixed-width little-endian uint64.
func (w *SectionWriter) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Uvarint appends a varint-coded uint64.
func (w *SectionWriter) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Raw appends b verbatim (a nested stream or opaque payload).
func (w *SectionWriter) Raw(b []byte) { w.buf = append(w.buf, b...) }

// U64s appends a length-prefixed (uvarint) array of fixed-width uint64s.
func (w *SectionWriter) U64s(vs []uint64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// U32s appends a length-prefixed array of fixed-width uint32s.
func (w *SectionWriter) U32s(vs []uint32) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.U32(v)
	}
}

// I32s appends a length-prefixed array of fixed-width int32s (two's
// complement through uint32).
func (w *SectionWriter) I32s(vs []int32) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.U32(uint32(v))
	}
}

// F64s appends a length-prefixed array of raw IEEE-754 float64 bits.
func (w *SectionWriter) F64s(vs []float64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.U64(math.Float64bits(v))
	}
}

// Len reports the bytes accumulated so far (CRC trailer excluded).
func (w *SectionWriter) Len() int { return len(w.buf) }

// Bytes returns the accumulated fields without a CRC trailer, for
// embedding inside an enclosing stream that carries its own.
func (w *SectionWriter) Bytes() []byte { return w.buf }

// Finish seals the stream: the IEEE CRC-32 of every byte appended so far
// is written as a 4-byte little-endian trailer and the whole buffer is
// returned. The writer must not be reused afterwards.
func (w *SectionWriter) Finish() []byte {
	crc := crc32.ChecksumIEEE(w.buf)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc)
	return w.buf
}

// SectionReader parses a sealed section stream. Errors are sticky: the
// first failed read poisons the reader and every later read returns the
// zero value, so decode loops can run unconditionally and check Err once.
type SectionReader struct {
	buf []byte
	pos int
	err error
}

// NewSectionReader verifies data's CRC-32 trailer and returns a reader
// positioned at the first field. ErrSectionTruncated reports a stream too
// short to carry the trailer; ErrSectionChecksum a trailer mismatch.
func NewSectionReader(data []byte) (*SectionReader, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: %d bytes, need at least the 4-byte CRC trailer", ErrSectionTruncated, len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: trailer %08x, computed %08x", ErrSectionChecksum, got, want)
	}
	return &SectionReader{buf: body}, nil
}

// fail records the first error and poisons all later reads.
func (r *SectionReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: reading %s at offset %d of %d", ErrSectionTruncated, what, r.pos, len(r.buf))
	}
}

// take returns the next n bytes, or nil after recording a truncation.
func (r *SectionReader) take(n int, what string) []byte {
	if r.err != nil || n < 0 || len(r.buf)-r.pos < n {
		r.fail(what)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// U8 reads one byte.
func (r *SectionReader) U8() uint8 {
	b := r.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a fixed-width little-endian uint32.
func (r *SectionReader) U32() uint32 {
	b := r.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width little-endian uint64.
func (r *SectionReader) U64() uint64 {
	b := r.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Uvarint reads a varint-coded uint64.
func (r *SectionReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.pos += n
	return v
}

// arrayLen reads a length prefix, bounding it by the bytes remaining at
// the given element width so a corrupt length cannot drive a huge
// allocation before the truncation is noticed.
func (r *SectionReader) arrayLen(elemBytes int, what string) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.buf)-r.pos)/uint64(elemBytes) {
		r.fail(what)
		return 0
	}
	return int(n)
}

// U64s reads a length-prefixed array of fixed-width uint64s into a slice
// drawn by alloc (so callers can supply pooled storage); alloc receives
// the element count and must return a slice of at least that length.
func (r *SectionReader) U64s(alloc func(n int) []uint64) []uint64 {
	n := r.arrayLen(8, "u64 array")
	if r.err != nil {
		return nil
	}
	out := alloc(n)[:n]
	for i := range out {
		out[i] = r.U64()
	}
	return out
}

// U32s is U64s for uint32 elements.
func (r *SectionReader) U32s(alloc func(n int) []uint32) []uint32 {
	n := r.arrayLen(4, "u32 array")
	if r.err != nil {
		return nil
	}
	out := alloc(n)[:n] //fastcc:dynamic -- caller-supplied pool tap; no in-repo caller seeds points-to for this width yet
	for i := range out {
		out[i] = r.U32()
	}
	return out
}

// I32s is U64s for int32 elements.
func (r *SectionReader) I32s(alloc func(n int) []int32) []int32 {
	n := r.arrayLen(4, "i32 array")
	if r.err != nil {
		return nil
	}
	out := alloc(n)[:n]
	for i := range out {
		out[i] = int32(r.U32())
	}
	return out
}

// F64s is U64s for raw IEEE-754 float64 elements.
func (r *SectionReader) F64s(alloc func(n int) []float64) []float64 {
	n := r.arrayLen(8, "f64 array")
	if r.err != nil {
		return nil
	}
	out := alloc(n)[:n] //fastcc:dynamic -- caller-supplied pool tap; no in-repo caller seeds points-to for this width yet
	for i := range out {
		out[i] = math.Float64frombits(r.U64())
	}
	return out
}

// Remaining reports the unread bytes (CRC trailer excluded).
func (r *SectionReader) Remaining() int { return len(r.buf) - r.pos }

// Rest returns every unread byte and advances to the end.
func (r *SectionReader) Rest() []byte {
	b := r.buf[r.pos:]
	r.pos = len(r.buf)
	return b
}

// Err reports the sticky decode error, nil on a clean parse so far.
func (r *SectionReader) Err() error { return r.err }
