//go:build fastcc_checked

// fastcc_checked mode: every Lock on a ranked mutex is validated against the
// acquiring goroutine's stack of currently held ranks, so a hierarchy
// violation the static lockorder pass could not see (a path through an
// opaque call, an interleaving a -race soak never hit) becomes a
// deterministic panic at the acquisition site instead of a once-a-month
// deadlock. The check runs BEFORE blocking on the inner mutex: an inversion
// is exactly the shape that deadlocks, and a panic is only useful if it
// fires instead of the hang.
package lockcheck

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"
)

// Checked reports whether the dynamic lock-rank checking is compiled in.
const Checked = true

// Mutex is a sync.Mutex whose place in the lock hierarchy is named by its
// type parameter; under fastcc_checked, Lock validates the acquisition
// against this goroutine's held ranks and panics on a violation.
type Mutex[R Rank] struct {
	mu sync.Mutex
}

func (m *Mutex[R]) Lock() {
	var r R
	acquire(r)
	m.mu.Lock()
}

// TryLock validates only on success: a failed try holds nothing. A
// successful try that inverts the hierarchy still panics — TryLock cannot
// deadlock, but the hierarchy is a statement about the program's design,
// and dynamic mode exists to report where it breaks.
func (m *Mutex[R]) TryLock() bool {
	if !m.mu.TryLock() {
		return false
	}
	var r R
	acquire(r)
	return true
}

func (m *Mutex[R]) Unlock() {
	var r R
	release(r)
	m.mu.Unlock()
}

// heldEntry is one ranked lock currently held by some goroutine.
type heldEntry struct {
	rank  int
	excl  bool
	label string
}

// The held-rank registry: goroutine ID → stack of held ranked locks. A
// single locked map is deliberately dumb — checked builds buy determinism,
// not speed — and entries are deleted when a goroutine's stack empties so
// short-lived goroutines do not leak registry slots.
var (
	heldMu sync.Mutex
	held   = map[uint64][]heldEntry{}
)

// gid extracts the current goroutine's ID from the runtime.Stack header
// ("goroutine 123 [running]:"). There is no supported API for this on
// purpose; a checked-build sanitizer is the one place the discouraged trick
// is the right tool, because the alternative is threading a token through
// every Lock call site.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		panic("lockcheck: unparseable runtime.Stack header")
	}
	id, err := strconv.ParseUint(string(fields[1]), 10, 64)
	if err != nil {
		panic("lockcheck: unparseable goroutine id: " + err.Error())
	}
	return id
}

// acquire validates r against every rank this goroutine already holds and
// pushes it. The violation wording mirrors the static lockorder
// diagnostics, so a dynamic panic and a static finding for the same bug
// read the same.
func acquire(r Rank) {
	rank, excl := r.LockRank()
	label := r.RankLabel()
	g := gid()
	heldMu.Lock()
	defer heldMu.Unlock()
	for _, h := range held[g] {
		var why string
		switch {
		case h.excl:
			why = fmt.Sprintf("%s (rank %d) is exclusive: no ranked lock may be acquired while it is held", h.label, h.rank)
		case excl:
			why = fmt.Sprintf("%s (rank %d) is exclusive: it may not be acquired while any ranked lock is held", label, rank)
		case rank <= h.rank:
			why = fmt.Sprintf("rank %d is not above held rank %d (lower ranks are outer)", rank, h.rank)
		default:
			continue
		}
		panic(fmt.Sprintf("lockcheck: acquiring %s (rank %d) while holding %s (rank %d): %s", label, rank, h.label, h.rank, why))
	}
	held[g] = append(held[g], heldEntry{rank: rank, excl: excl, label: label})
}

// release pops the most recent matching entry. Matching by rank+label
// rather than strict stack order tolerates out-of-order unlocks of
// independent locks, which the hierarchy permits.
func release(r Rank) {
	rank, _ := r.LockRank()
	label := r.RankLabel()
	g := gid()
	heldMu.Lock()
	defer heldMu.Unlock()
	s := held[g]
	for i := len(s) - 1; i >= 0; i-- {
		if s[i].rank == rank && s[i].label == label {
			held[g] = append(s[:i], s[i+1:]...)
			break
		}
	}
	if len(held[g]) == 0 {
		delete(held, g)
	}
}
