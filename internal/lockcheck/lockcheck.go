// Package lockcheck is the dynamic twin of the lockorder static pass
// (tools/analysis/lockorder): the same //fastcc:lockrank hierarchy, enforced
// at runtime under the fastcc_checked build tag.
//
// The static pass proves ordering over every path it can see, but its view
// stops at the soundness gaps the call-graph stats report as opaque — calls
// through interfaces it cannot bound, cgo, reflection. The dynamic twin
// covers exactly those: each goroutine carries a stack of the ranked locks
// it currently holds, and an acquisition that violates the declared order —
// rank not strictly above every held rank, or an `exclusive` lock nested
// with any ranked lock in either order — panics deterministically at the
// Lock call, naming both locks and the rule broken, in the same words the
// static diagnostic would use.
//
// A ranked mutex is declared by naming its rank as a type:
//
//	type lruRank struct{}
//
//	func (lruRank) LockRank() (int, bool) { return 1, true } // rank 1, exclusive
//	func (lruRank) RankLabel() string     { return "shardCache.mu" }
//
//	mu lockcheck.Mutex[lruRank] //fastcc:lockrank 1 exclusive -- never nested with Operand.mu
//
// Carrying the rank in the type parameter keeps the zero value ready to use
// (no SetRank call to forget, no per-instance state) and keeps the normal
// build at literal zero cost: without fastcc_checked, Mutex is a thin
// wrapper whose Lock/Unlock inline to sync.Mutex calls. The //fastcc:lockrank
// marker stays on the same declaration so the static pass and the dynamic
// twin read one source of truth; drift between the marker and LockRank is a
// bug in the declaration, not in either checker.
//
// Like the rest of fastcc_checked (mempool poisoning, Sealed generation
// stamps), the twin trades throughput for determinism: the held-rank
// registry is a single locked map keyed by goroutine ID, which is exactly as
// slow as it sounds and exactly why it compiles to nothing in normal builds.
package lockcheck

// A Rank names one level of the lock hierarchy as a type, so a ranked
// mutex's order is part of its declaration rather than per-instance state.
//
// LockRank returns the numeric rank (lower ranks are outer: while a rank-r
// lock is held, only strictly greater ranks may be acquired) and whether the
// lock is exclusive (a leaf and a root at once: nothing ranked may be held
// when it is acquired, and nothing ranked acquired while it is held).
// RankLabel names the lock in panic messages; use the declaration's
// Type.field spelling so dynamic panics and static diagnostics agree.
//
// Both methods must be pure functions of the type: the checker calls them on
// the zero value.
type Rank interface {
	LockRank() (rank int, exclusive bool)
	RankLabel() string
}
