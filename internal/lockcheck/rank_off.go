//go:build !fastcc_checked

package lockcheck

import "sync"

// Checked reports whether the dynamic lock-rank checking is compiled in.
// Tests use it to decide whether a deliberate inversion must panic (checked
// builds) or pass silently (normal builds).
const Checked = false

// Mutex is a sync.Mutex whose place in the lock hierarchy is named by its
// type parameter. In the normal build it is a thin wrapper — these
// forwarders inline, so a ranked mutex costs exactly a sync.Mutex — and the
// rank is enforced statically only (tools/analysis/lockorder). The field is
// unexported in both builds so no caller can reach the inner mutex and
// bypass the checked build's accounting.
type Mutex[R Rank] struct {
	mu sync.Mutex
}

func (m *Mutex[R]) Lock()         { m.mu.Lock() }
func (m *Mutex[R]) TryLock() bool { return m.mu.TryLock() }
func (m *Mutex[R]) Unlock()       { m.mu.Unlock() }
