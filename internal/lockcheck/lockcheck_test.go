package lockcheck

import (
	"sync"
	"testing"
)

// Test ranks spanning the three declaration shapes the engine uses: an
// ordinary outer rank, an ordinary inner rank, and an exclusive rank.
type (
	outerRank struct{}
	innerRank struct{}
	exclRank  struct{}
)

func (outerRank) LockRank() (int, bool) { return 10, false }
func (outerRank) RankLabel() string     { return "test.outer" }
func (innerRank) LockRank() (int, bool) { return 20, false }
func (innerRank) RankLabel() string     { return "test.inner" }
func (exclRank) LockRank() (int, bool)  { return 30, true }
func (exclRank) RankLabel() string      { return "test.excl" }

// mustPanicWhenChecked runs fn expecting a lock-rank panic under
// -tags fastcc_checked and silent success otherwise.
func mustPanicWhenChecked(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if Checked && r == nil {
			t.Fatalf("%s: fastcc_checked build did not panic on a deliberate lock-rank violation", what)
		}
		if !Checked && r != nil {
			t.Fatalf("%s: normal build panicked unexpectedly: %v", what, r)
		}
	}()
	fn()
}

// TestOrderedNestingIsSilent holds outer-then-inner — the declared order —
// and must pass in both builds; a checked build that panics on legal
// nesting would be unusable as a CI gate.
func TestOrderedNestingIsSilent(t *testing.T) {
	var outer Mutex[outerRank]
	var inner Mutex[innerRank]
	outer.Lock()
	inner.Lock()
	inner.Unlock()
	outer.Unlock()
	// The full cycle again, proving release really popped the entries.
	outer.Lock()
	inner.Lock()
	inner.Unlock()
	outer.Unlock()
}

// TestInversionPanicsWhenChecked injects the exact bug class the twin
// exists for: acquiring a lower (outer) rank while a higher (inner) rank is
// held. The static pass flags this shape when it can see the path; the
// dynamic twin must catch it on whatever path actually ran.
func TestInversionPanicsWhenChecked(t *testing.T) {
	var outer Mutex[outerRank]
	var inner Mutex[innerRank]
	inner.Lock()
	defer inner.Unlock()
	mustPanicWhenChecked(t, "rank inversion", func() {
		outer.Lock()
		// Normal build only: undo so the test leaves no lock held.
		outer.Unlock()
	})
}

// TestExclusiveIsLeafAndRoot checks both halves of the exclusive contract:
// acquiring an exclusive lock while anything ranked is held, and acquiring
// anything ranked while an exclusive lock is held.
func TestExclusiveIsLeafAndRoot(t *testing.T) {
	var outer Mutex[outerRank]
	var excl Mutex[exclRank]

	outer.Lock()
	mustPanicWhenChecked(t, "exclusive acquired under a ranked lock", func() {
		excl.Lock()
		excl.Unlock()
	})
	outer.Unlock()

	excl.Lock()
	mustPanicWhenChecked(t, "ranked lock acquired under an exclusive lock", func() {
		outer.Lock()
		outer.Unlock()
	})
	excl.Unlock()
}

// TestSameRankNestingPanicsWhenChecked nests two instances of the same
// rank: "strictly greater" excludes equality, which is what makes a
// self-deadlock through two same-ranked freelists a reported violation
// rather than a silent hang.
func TestSameRankNestingPanicsWhenChecked(t *testing.T) {
	var a, b Mutex[outerRank]
	a.Lock()
	defer a.Unlock()
	mustPanicWhenChecked(t, "same-rank nesting", func() {
		b.Lock()
		b.Unlock()
	})
}

// TestGoroutinesAreIsolated holds an inner rank on one goroutine while
// another acquires an outer rank: held stacks are per-goroutine, so this is
// not a nesting and must stay silent in both builds.
func TestGoroutinesAreIsolated(t *testing.T) {
	var outer Mutex[outerRank]
	var inner Mutex[innerRank]
	inner.Lock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		outer.Lock()
		outer.Unlock()
	}()
	wg.Wait()
	inner.Unlock()
}

// TestTryLockValidates proves the TryLock path is accounted like Lock: a
// successful try pushes the rank (so a following inversion panics) and a
// released try pops it (so legal reuse stays silent).
func TestTryLockValidates(t *testing.T) {
	var outer Mutex[outerRank]
	var inner Mutex[innerRank]
	if !inner.TryLock() {
		t.Fatal("uncontended TryLock failed")
	}
	mustPanicWhenChecked(t, "inversion after TryLock", func() {
		outer.Lock()
		outer.Unlock()
	})
	inner.Unlock()
	outer.Lock()
	outer.Unlock()
}
