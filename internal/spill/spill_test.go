package spill

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeBody is the opaque payload the tests spill; contents are irrelevant
// to the envelope checks.
func writeBody(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

func openTestDir(t *testing.T, budget int64, keep bool) *Dir {
	t.Helper()
	d, err := Open(OS{}, t.TempDir(), budget, keep)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return d
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := openTestDir(t, 0, false)
	body := writeBody(256)
	h, err := d.Write("k1-t8-r0"+Ext, 42, body)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	r, err := d.Read(h)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	got := r.Rest()
	if len(got) != len(body) {
		t.Fatalf("body length %d, want %d", len(got), len(body))
	}
	for i := range got {
		if got[i] != body[i] {
			t.Fatalf("body byte %d = %#x, want %#x", i, got[i], body[i])
		}
	}
	if files, bytes, _ := d.Stats(); files != 1 || bytes != h.Size() {
		t.Fatalf("Stats = (%d files, %d bytes), want (1, %d)", files, bytes, h.Size())
	}
	d.Release(h)
	if files, bytes, _ := d.Stats(); files != 0 || bytes != 0 {
		t.Fatalf("after Release: Stats = (%d files, %d bytes), want (0, 0)", files, bytes)
	}
}

func TestReadMissingFile(t *testing.T) {
	d := openTestDir(t, 0, false)
	h, err := d.Write("k1-t8-r0"+Ext, 1, writeBody(64))
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := os.Remove(filepath.Join(d.Path(), h.Name())); err != nil {
		t.Fatalf("removing spill file: %v", err)
	}
	if _, err := d.Read(h); !errors.Is(err, ErrMissing) {
		t.Fatalf("Read after delete = %v, want ErrMissing", err)
	}
}

func TestReadTruncatedFile(t *testing.T) {
	d := openTestDir(t, 0, false)
	h, err := d.Write("k1-t8-r0"+Ext, 1, writeBody(64))
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	full := filepath.Join(d.Path(), h.Name())
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(h); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Read of truncated file = %v, want ErrTruncated", err)
	}
}

func TestReadFlippedChecksumByte(t *testing.T) {
	d := openTestDir(t, 0, false)
	h, err := d.Write("k1-t8-r0"+Ext, 1, writeBody(64))
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	full := filepath.Join(d.Path(), h.Name())
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF // flip one body byte; size unchanged
	if err := os.WriteFile(full, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(h); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Read of bit-flipped file = %v, want ErrChecksum", err)
	}
}

func TestReadWrongGenerationStamp(t *testing.T) {
	d := openTestDir(t, 0, false)
	body := writeBody(64)
	h, err := d.Write("k1-t8-r0"+Ext, 7, body)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	// Another shard incarnation rewrites the same name with a new stamp;
	// the old handle must observe staleness, not the new bytes.
	if _, err := d.Write("k1-t8-r0"+Ext, 8, body); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if _, err := d.Read(h); !errors.Is(err, ErrStale) {
		t.Fatalf("Read with stale handle = %v, want ErrStale", err)
	}
}

// failFS injects write failures — the ENOSPC / read-only-directory seam.
type failFS struct {
	OS
	writeErr error
}

func (f *failFS) WriteFile(name string, b []byte) error {
	if f.writeErr != nil {
		return f.writeErr
	}
	return f.OS.WriteFile(name, b)
}

func TestWriteFailureSurfacesError(t *testing.T) {
	enospc := fmt.Errorf("write %s: no space left on device", "x")
	fs := &failFS{writeErr: enospc}
	d, err := Open(fs, t.TempDir(), 0, false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := d.Write("k1-t8-r0"+Ext, 1, writeBody(64)); !errors.Is(err, enospc) {
		t.Fatalf("Write with failing FS = %v, want wrapped ENOSPC", err)
	}
	if files, bytes, _ := d.Stats(); files != 0 || bytes != 0 {
		t.Fatalf("failed write left accounting at (%d files, %d bytes), want (0, 0)", files, bytes)
	}
}

func TestWriteOverBudget(t *testing.T) {
	d := openTestDir(t, 16, false) // smaller than any envelope
	if _, err := d.Write("k1-t8-r0"+Ext, 1, writeBody(64)); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("Write into tiny budget = %v, want ErrOverBudget", err)
	}
}

func TestBudgetMakesRoomOldestFirst(t *testing.T) {
	d := openTestDir(t, 0, false)
	h1, err := d.Write("k1-t8-r0"+Ext, 1, writeBody(256))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := d.Write("k2-t8-r0"+Ext, 2, writeBody(256))
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits two files: the third write evicts only the oldest.
	d.SetBudget(2*h1.Size() + h2.Size()/2)
	if _, err := d.Write("k3-t8-r0"+Ext, 3, writeBody(256)); err != nil {
		t.Fatalf("budgeted write: %v", err)
	}
	if _, err := d.Read(h1); !errors.Is(err, ErrMissing) {
		t.Fatalf("oldest file should have been evicted for room; Read = %v, want ErrMissing", err)
	}
	if _, err := d.Read(h2); err != nil {
		t.Fatalf("newer file should survive room-making; Read = %v", err)
	}
}

func TestOpenScavengesAnonAndCorrupt(t *testing.T) {
	path := t.TempDir()
	d, err := Open(OS{}, path, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	// A keyed file released in keep mode becomes an orphan on disk…
	h, err := d.Write("keyed-t8-r0"+Ext, 5, writeBody(64))
	if err != nil {
		t.Fatal(err)
	}
	d.Release(h)
	// …an anonymous file and a corrupt file are startup-scavenge fodder.
	if _, err := d.Write(AnonPrefix+"1-t8-r0"+Ext, 6, writeBody(64)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(path, "corrupt-t8-r0"+Ext), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(path, "unrelated.txt"), []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(OS{}, path, 0, true)
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	files, _, scavenged := d2.Stats()
	if files != 1 {
		t.Fatalf("re-Open indexed %d files, want 1 (the keyed orphan)", files)
	}
	if scavenged != 2 {
		t.Fatalf("re-Open scavenged %d files, want 2 (anon + corrupt)", scavenged)
	}
	if _, err := os.Stat(filepath.Join(path, "unrelated.txt")); err != nil {
		t.Fatalf("scavenge touched a non-spill file: %v", err)
	}
	h2, ok := d2.TakeOrphan("keyed-t8-r0" + Ext)
	if !ok {
		t.Fatal("TakeOrphan failed on the surviving keyed file")
	}
	if h2.gen != 5 {
		t.Fatalf("adopted orphan carries gen %d, want 5", h2.gen)
	}
	if r, err := d2.Read(h2); err != nil || r.Remaining() != 64 {
		t.Fatalf("adopted orphan Read = (%v remaining, %v), want (64, nil)", r.Remaining(), err)
	}
	if _, ok := d2.TakeOrphan("keyed-t8-r0" + Ext); ok {
		t.Fatal("TakeOrphan succeeded twice for one orphan")
	}
}

func TestReleaseKeepLeavesOrphan(t *testing.T) {
	d := openTestDir(t, 0, true)
	h, err := d.Write("keyed-t8-r0"+Ext, 9, writeBody(64))
	if err != nil {
		t.Fatal(err)
	}
	d.Release(h)
	if _, err := os.Stat(filepath.Join(d.Path(), h.Name())); err != nil {
		t.Fatalf("keep-mode Release deleted the file: %v", err)
	}
	if h2, ok := d.TakeOrphan(h.Name()); !ok || h2.gen != 9 {
		t.Fatalf("released file not adoptable as orphan (ok=%v)", ok)
	}
}

func TestDiscardAlwaysDeletes(t *testing.T) {
	d := openTestDir(t, 0, true) // even in keep mode
	h, err := d.Write("keyed-t8-r0"+Ext, 9, writeBody(64))
	if err != nil {
		t.Fatal(err)
	}
	d.Discard(h)
	if _, err := os.Stat(filepath.Join(d.Path(), h.Name())); !os.IsNotExist(err) {
		t.Fatalf("Discard left the file behind (stat err=%v)", err)
	}
	if files, bytes, _ := d.Stats(); files != 0 || bytes != 0 {
		t.Fatalf("Discard left accounting at (%d, %d)", files, bytes)
	}
}
