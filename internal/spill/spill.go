// Package spill manages the on-disk tier of the shard cache: when the
// byte-budgeted LRU (internal/core, lifecycle.go) evicts a sealed shard and
// a spill directory is configured, the shard's tables are serialized into a
// compact section-encoded file here instead of being thrown away, and a
// later re-pin reads them back — skipping the full re-linearize + re-hash
// rebuild. DBCSR-style blocked residency (PAPERS.md): the RAM budget bounds
// the hot set, the disk budget bounds the warm set, and everything beyond
// both still falls back to rebuild.
//
// The package owns three things:
//
//   - The file envelope: a section stream (internal/tnsbin) carrying magic,
//     version and the writing shard's generation stamp ahead of an opaque
//     body, sealed by one CRC-32 trailer over the whole file. The body's
//     layout belongs to the caller (core encodes its tile tables there).
//   - The directory manager (Dir): a byte budget over every file on disk,
//     oldest-first room-making, a startup scavenge that deletes anonymous
//     and corrupt leftovers and indexes valid keyed files as orphans for
//     adoption by a restarted process (the server's warm-restart path).
//   - The failure taxonomy: every way a read-back can go wrong — missing
//     file, truncated file, checksum mismatch, stale generation, malformed
//     header — is a distinct typed error, so the caller can fall back to
//     rebuild and count the cause instead of guessing.
//
// All filesystem access goes through the FS seam, so tests inject write
// failures (ENOSPC, read-only directory) and corruption deterministically.
package spill

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"fastcc/internal/tnsbin"
)

// Read-back and write failures, each the typed cause the shard cache
// records (metrics.CacheCounters.SpillFallbacks) before rebuilding.
var (
	// ErrMissing reports a spill file that no longer exists (deleted by the
	// disk budget's room-making or by an external cleaner).
	ErrMissing = errors.New("spill: file missing")
	// ErrTruncated reports a file shorter (or longer) than the handle's
	// recorded size — a partial write or an external truncation, detected
	// by size before any checksum work.
	ErrTruncated = errors.New("spill: file truncated")
	// ErrChecksum reports a CRC-32 trailer mismatch: the bytes on disk are
	// not the bytes written.
	ErrChecksum = errors.New("spill: checksum mismatch")
	// ErrStale reports a generation-stamp mismatch: the file was rewritten
	// by another shard incarnation between spill and re-pin.
	ErrStale = errors.New("spill: stale generation stamp")
	// ErrBadHeader reports a malformed envelope (wrong magic or version) or
	// a body whose shape contradicts the shard being reloaded.
	ErrBadHeader = errors.New("spill: bad header")
	// ErrOverBudget reports a write the disk budget could not make room
	// for even after evicting every unpinned file.
	ErrOverBudget = errors.New("spill: over disk budget")
)

// FS is the filesystem seam every Dir operation goes through. The
// production implementation is OS (plain os calls); fault-injection tests
// substitute failing or corrupting implementations.
type FS interface {
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte) error
	Remove(name string) error
	ReadDir(dir string) ([]string, error)
	MkdirAll(dir string) error
}

// OS is the production FS: plain os package calls.
type OS struct{}

func (OS) ReadFile(name string) ([]byte, error)    { return os.ReadFile(name) }
func (OS) WriteFile(name string, b []byte) error   { return os.WriteFile(name, b, 0o644) }
func (OS) Remove(name string) error                { return os.Remove(name) }
func (OS) MkdirAll(dir string) error               { return os.MkdirAll(dir, 0o755) }
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() { //fastcc:dynamic -- os.DirEntry is a stdlib interface; its implementations live outside the loaded packages
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// Envelope constants. The body follows the generation stamp; one CRC-32
// trailer (tnsbin section trailer) covers envelope and body together.
var fsplMagic = uint32('F') | uint32('S')<<8 | uint32('P')<<16 | uint32('L')<<24

const fsplVersion = 1

// Ext is the spill-file extension; Dir ignores (and never deletes)
// anything else living in its directory.
const Ext = ".fspl"

// EnvelopeBytes is the fixed per-file overhead around the body: the
// envelope fields (magic, version, generation stamp) plus the CRC-32
// trailer. Tooling subtracts it to report body sizes.
const EnvelopeBytes = 4 + 4 + 8 + 4

// AnonPrefix marks spill files of operands without a content key. They are
// reloadable only by the process that wrote them, so the startup scavenge
// deletes any found on disk.
const AnonPrefix = "anon-"

// Header is a spill file's parsed envelope, also surfaced by tooling
// (cmd/tnsinfo -spill).
type Header struct {
	Version uint32
	Gen     uint64 // writing shard's generation stamp
	Size    int64  // whole-file size including trailer
}

// entry is one on-disk file: either owned (a live Handle points at it) or
// an orphan awaiting adoption (written by an earlier process, or released
// back by a keep-mode Dir).
type entry struct {
	size   int64
	gen    uint64
	seq    uint64 // insertion age, for oldest-first room-making
	orphan bool
}

// Handle is the caller's claim on one spill file. It records the size and
// generation stamp the file must still carry at read time; drift is a
// typed error, never silent.
type Handle struct {
	d    *Dir
	name string
	size int64
	gen  uint64
}

// Size reports the on-disk byte size the handle's file was written with.
func (h *Handle) Size() int64 { return h.size }

// Name reports the file name (within the directory) the handle points at.
func (h *Handle) Name() string { return h.name }

// Dir is one spill directory under one byte budget. All methods are safe
// for concurrent use; the mutex is never held across filesystem IO on the
// read path (reads copy the bookkeeping they need), and write IO under it
// is what serializes room-making against concurrent writers.
type Dir struct {
	fs   FS
	path string
	keep bool // leave files on disk at Release (warm-restart persistence)

	mu     sync.Mutex
	budget int64 // bytes; <= 0 means unlimited
	bytes  int64 // summed size of every indexed file
	files  map[string]*entry
	seq    uint64
	scav   int // files the startup scavenge deleted
}

// Open prepares a spill directory: creates it if needed, deletes anonymous
// and unparsable leftovers (the startup scavenge), and indexes every valid
// keyed file as an orphan available for adoption. keep selects warm-restart
// persistence: released files stay on disk as orphans instead of being
// deleted, so the next process starts with this one's warm set.
func Open(fs FS, path string, budget int64, keep bool) (*Dir, error) {
	if fs == nil {
		fs = OS{}
	}
	if err := fs.MkdirAll(path); err != nil {
		return nil, fmt.Errorf("spill: creating %s: %w", path, err)
	}
	names, err := fs.ReadDir(path)
	if err != nil {
		return nil, fmt.Errorf("spill: scanning %s: %w", path, err)
	}
	d := &Dir{fs: fs, path: path, budget: budget, keep: keep, files: map[string]*entry{}}
	for _, name := range names {
		if !strings.HasSuffix(name, Ext) {
			continue // not ours; never touch it
		}
		full := filepath.Join(path, name)
		if strings.HasPrefix(name, AnonPrefix) {
			_ = fs.Remove(full)
			d.scav++
			continue
		}
		data, rerr := fs.ReadFile(full)
		hdr, perr := ParseHeader(data)
		if rerr != nil || perr != nil {
			_ = fs.Remove(full)
			d.scav++
			continue
		}
		d.seq++
		d.files[name] = &entry{size: hdr.Size, gen: hdr.Gen, seq: d.seq, orphan: true}
		d.bytes += hdr.Size
	}
	return d, nil
}

// ParseHeader verifies data as a complete spill file (envelope fields and
// whole-file CRC) and returns its header. Tooling and the startup scavenge
// share this; the per-handle size/generation checks live in Read.
func ParseHeader(data []byte) (Header, error) {
	r, err := tnsbin.NewSectionReader(data)
	if err != nil {
		if errors.Is(err, tnsbin.ErrSectionChecksum) {
			return Header{}, fmt.Errorf("%w: %v", ErrChecksum, err)
		}
		return Header{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if m := r.U32(); m != fsplMagic || r.Err() != nil {
		return Header{}, fmt.Errorf("%w: magic %08x", ErrBadHeader, m)
	}
	h := Header{Version: r.U32(), Gen: r.U64(), Size: int64(len(data))}
	if r.Err() != nil {
		return Header{}, fmt.Errorf("%w: %v", ErrBadHeader, r.Err())
	}
	if h.Version != fsplVersion {
		return Header{}, fmt.Errorf("%w: version %d, want %d", ErrBadHeader, h.Version, fsplVersion)
	}
	return h, nil
}

// Path returns the directory this Dir manages.
func (d *Dir) Path() string { return d.path }

// Keep reports whether the Dir persists released files (warm restart).
func (d *Dir) Keep() bool { return d.keep }

// Stats reports the on-disk gauges: indexed file count, their summed
// bytes, and how many leftovers the startup scavenge deleted.
func (d *Dir) Stats() (files int, bytes int64, scavenged int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.files), d.bytes, d.scav
}

// SetBudget replaces the byte budget and enforces it immediately.
func (d *Dir) SetBudget(budget int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.budget = budget
	d.makeRoomLocked(0)
}

// makeRoomLocked deletes indexed files oldest-first until need more bytes
// fit under the budget, preferring orphans (nobody holds a claim) before
// owned files (whose handles will observe ErrMissing and rebuild — the
// documented graceful degradation, never a wrong answer). Reports whether
// the room exists afterwards.
func (d *Dir) makeRoomLocked(need int64) bool {
	if d.budget <= 0 {
		return true
	}
	for _, orphansOnly := range []bool{true, false} {
		for d.bytes+need > d.budget {
			name, e := d.oldestLocked(orphansOnly)
			if e == nil {
				break
			}
			_ = d.fs.Remove(filepath.Join(d.path, name))
			d.bytes -= e.size
			delete(d.files, name)
		}
	}
	return d.bytes+need <= d.budget
}

// oldestLocked returns the lowest-seq entry (orphans only when asked).
func (d *Dir) oldestLocked(orphansOnly bool) (string, *entry) {
	var (
		bestName string
		best     *entry
	)
	for name, e := range d.files {
		if orphansOnly && !e.orphan {
			continue
		}
		if best == nil || e.seq < best.seq {
			bestName, best = name, e
		}
	}
	return bestName, best
}

// Write seals body into the envelope (magic, version, gen, body, CRC) and
// writes it as name, replacing any existing file of that name and making
// room under the byte budget first. On any failure the file is removed
// (best effort) and no handle exists — the caller falls back to plain
// eviction.
func (d *Dir) Write(name string, gen uint64, body []byte) (*Handle, error) {
	var w tnsbin.SectionWriter
	w.U32(fsplMagic)
	w.U32(fsplVersion)
	w.U64(gen)
	w.Raw(body)
	data := w.Finish()
	size := int64(len(data))

	d.mu.Lock()
	if old := d.files[name]; old != nil {
		// Replacing our own earlier file: uncharge it before sizing the room.
		d.bytes -= old.size
		delete(d.files, name)
	}
	if !d.makeRoomLocked(size) {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %d bytes into budget %d", ErrOverBudget, size, d.budget)
	}
	if err := d.fs.WriteFile(filepath.Join(d.path, name), data); err != nil {
		d.mu.Unlock()
		_ = d.fs.Remove(filepath.Join(d.path, name))
		return nil, fmt.Errorf("spill: writing %s: %w", name, err)
	}
	d.seq++
	d.files[name] = &entry{size: size, gen: gen, seq: d.seq}
	d.bytes += size
	d.mu.Unlock()
	return &Handle{d: d, name: name, size: size, gen: gen}, nil
}

// Read loads and verifies the handle's file, returning a section reader
// positioned at the body. Every failure is one of the typed errors above,
// checked in a deterministic order: existence, then size against the
// handle's record, then the whole-file checksum, then envelope fields,
// then the generation stamp.
func (d *Dir) Read(h *Handle) (*tnsbin.SectionReader, error) {
	data, err := d.fs.ReadFile(filepath.Join(d.path, h.name))
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrMissing, h.name, err)
	}
	if int64(len(data)) != h.size {
		return nil, fmt.Errorf("%w: %s is %d bytes, wrote %d", ErrTruncated, h.name, len(data), h.size)
	}
	r, err := tnsbin.NewSectionReader(data)
	if err != nil {
		if errors.Is(err, tnsbin.ErrSectionChecksum) {
			return nil, fmt.Errorf("%w: %s: %v", ErrChecksum, h.name, err)
		}
		return nil, fmt.Errorf("%w: %s: %v", ErrTruncated, h.name, err)
	}
	if m := r.U32(); m != fsplMagic {
		return nil, fmt.Errorf("%w: %s: magic %08x", ErrBadHeader, h.name, m)
	}
	if v := r.U32(); v != fsplVersion {
		return nil, fmt.Errorf("%w: %s: version %d, want %d", ErrBadHeader, h.name, v, fsplVersion)
	}
	if g := r.U64(); g != h.gen {
		return nil, fmt.Errorf("%w: %s carries gen %#x, handle expects %#x", ErrStale, h.name, g, h.gen)
	}
	return r, nil
}

// Release ends the handle's claim after a successful reload or a shard
// drop. Keep-mode directories leave the file on disk as an orphan (same
// generation stamp, adoptable by a restarted process); otherwise the file
// is deleted and its bytes uncharged.
func (d *Dir) Release(h *Handle) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.files[h.name]
	if e == nil || e.gen != h.gen {
		return // already replaced or evicted by room-making
	}
	if d.keep && !strings.HasPrefix(h.name, AnonPrefix) {
		e.orphan = true
		return
	}
	_ = d.fs.Remove(filepath.Join(d.path, h.name))
	d.bytes -= e.size
	delete(d.files, h.name)
}

// Discard deletes the handle's file unconditionally — the corrupt-file
// path, where keeping the bytes would only re-fail the next adoption.
func (d *Dir) Discard(h *Handle) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e := d.files[h.name]; e != nil && e.gen == h.gen {
		d.bytes -= e.size
		delete(d.files, h.name)
	}
	_ = d.fs.Remove(filepath.Join(d.path, h.name))
}

// TakeOrphan claims the named orphan file (indexed by the startup scan or
// released by a keep-mode Dir) for adoption, returning a handle carrying
// the generation stamp the scan recorded. ok is false when no orphan of
// that name exists — owned files are never taken out from under their
// handles.
func (d *Dir) TakeOrphan(name string) (*Handle, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.files[name]
	if e == nil || !e.orphan {
		return nil, false
	}
	e.orphan = false
	return &Handle{d: d, name: name, size: e.size, gen: e.gen}, true
}

// Dir returns the directory manager a handle belongs to.
func (h *Handle) Dir() *Dir { return h.d }
