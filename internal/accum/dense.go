package accum

import (
	"math/bits"

	"fastcc/internal/hashtable"
)

// Dense is the dense tile accumulator of paper Section 4.2. A tile of
// TL × TR positions is stored as:
//
//	vals — TL*TR float64 buffer of accumulated values ("nnz" in the paper)
//	apos — append-only list of active (first-touched) positions
//	bm   — bitmask with one bit per position
//
// An update tests-and-sets bit p; first touches append p to apos. The drain
// iterates apos only — O(nnz of the tile), not O(TL*TR) — and clears the
// touched state so the tile is immediately reusable (constant-time updates,
// three random accesses into dense arrays, exactly as the paper describes).
//
// TR must be a power of two so the packed position p = l<<log2(TR) | r can
// be split back with shifts during the drain (the paper rounds tile sizes to
// powers of two for this bitmask arithmetic).
type Dense struct {
	logTR uint
	maskR uint32
	vals  []float64
	apos  []uint32
	bm    []uint64
}

// NewDense returns a dense accumulator for TL × TR tiles. TR must be a
// power of two; TL*TR must fit in uint32.
func NewDense(tl, tr uint32) *Dense {
	if tr == 0 || tr&(tr-1) != 0 {
		panic("accum: dense tile TR must be a power of two")
	}
	size := uint64(tl) * uint64(tr)
	if size > 1<<32 {
		panic("accum: dense tile too large")
	}
	return &Dense{
		logTR: uint(bits.TrailingZeros32(tr)),
		maskR: tr - 1,
		vals:  make([]float64, size),
		apos:  make([]uint32, 0, 1024),
		bm:    make([]uint64, (size+63)/64),
	}
}

// Upsert adds v at (l, r): test-and-set bm[p]; append p to apos when newly
// set; accumulate into vals[p].
//
//fastcc:hotpath
func (d *Dense) Upsert(l, r uint32, v float64) {
	p := l<<d.logTR | r
	w, b := p>>6, uint64(1)<<(p&63)
	if d.bm[w]&b == 0 {
		d.bm[w] |= b
		d.apos = append(d.apos, p) //fastcc:allow hotalloc -- amortized: apos tops out at tile nnz and is reused across tasks
	}
	d.vals[p] += v
}

// Match is one co-iteration match: the left and right pair runs that share
// a contraction key, contracted as the outer product L × R. Kernels batch
// matches and scatter a whole batch per call, so the call boundary and the
// accumulator field reloads amortize over the batch instead of recurring
// per matched key.
type Match struct {
	L, R []hashtable.Pair
}

// ScatterMatches accumulates every match's outer product into the tile:
// vals[l<<logTR|r] += lv·rv for each pair combination, matches in slice
// order and each match in L-major order — the identical accumulation order
// to the equivalent Upsert loop, so results are bit-for-bit the same. This
// is the dense microkernel's inner loop: against per-update Upsert calls it
// hoists the tile's field loads out of the whole batch, keeps the row base
// l<<logTR in a register across each inner sweep, and exposes the
// flat-index scatter to the compiler without a call boundary per
// multiply-accumulate.
//
//fastcc:hotpath
func (d *Dense) ScatterMatches(ms []Match) {
	vals, bm, logTR := d.vals, d.bm, d.logTR
	apos := d.apos
	for _, m := range ms {
		for _, lp := range m.L {
			lv := lp.Val
			row := lp.Idx << logTR
			for _, rp := range m.R {
				p := row | rp.Idx
				w, b := p>>6, uint64(1)<<(p&63)
				if bm[w]&b == 0 {
					bm[w] |= b
					apos = append(apos, p) //fastcc:allow hotalloc -- amortized: apos tops out at tile nnz and is reused across tasks
				}
				vals[p] += lv * rp.Val
			}
		}
	}
	d.apos = apos
}

// Len returns the number of active positions.
func (d *Dense) Len() int { return len(d.apos) }

// Drain visits active positions via apos (nnz-proportional, per Section
// 4.2's "parallel drain"), then resets the touched state in the same pass.
//
//fastcc:hotpath
func (d *Dense) Drain(fn func(l, r uint32, v float64)) {
	for _, p := range d.apos {
		fn(p>>d.logTR, p&d.maskR, d.vals[p])
		d.vals[p] = 0
		d.bm[p>>6] &^= 1 << (p & 63)
	}
	d.apos = d.apos[:0]
}

// Reset clears without visiting values.
func (d *Dense) Reset() {
	for _, p := range d.apos {
		d.vals[p] = 0
		d.bm[p>>6] &^= 1 << (p & 63)
	}
	d.apos = d.apos[:0]
}

// FootprintBytes reports the buffer footprint, used by tests to validate
// the model's cache-fitting tile sizes.
func (d *Dense) FootprintBytes() int {
	return len(d.vals)*8 + cap(d.apos)*4 + len(d.bm)*8
}
