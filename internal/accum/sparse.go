package accum

import "fastcc/internal/hashtable"

// Sparse is the sparse tile accumulator of paper Section 5.4: an
// open-addressing hash table keyed by the packed intra-tile position
// (l<<32 | r), 16 bytes per entry. It permits tiles far larger than the
// dense limit sqrt(L3/(N*DT)) when the output is ultra-sparse.
type Sparse struct {
	t *hashtable.FloatTable
}

// NewSparse returns a sparse accumulator sized for about hint nonzeros.
func NewSparse(hint int) *Sparse {
	return &Sparse{t: hashtable.NewFloatTable(hint)}
}

func packLR(l, r uint32) uint64 { return uint64(l)<<32 | uint64(r) }

// Upsert adds v at (l, r).
//
//fastcc:hotpath
func (s *Sparse) Upsert(l, r uint32, v float64) {
	s.t.Upsert(packLR(l, r), v)
}

// ScatterMatches accumulates every match's outer product into the table,
// matches in slice order and each match in L-major order — the sparse
// microkernel's inner loop. The key merge stays amortized in the backing
// FloatTable (linear probing, grow at 85% load); what the specialization
// removes is the interface/method hops per multiply-accumulate, with the
// packed-key construction inline and the call boundary amortized over the
// whole match batch.
//
//fastcc:hotpath
func (s *Sparse) ScatterMatches(ms []Match) {
	t := s.t
	for _, m := range ms {
		for _, lp := range m.L {
			lv := lp.Val
			hi := uint64(lp.Idx) << 32
			for _, rp := range m.R {
				t.Upsert(hi|uint64(rp.Idx), lv*rp.Val)
			}
		}
	}
}

// Len returns the number of distinct touched positions.
func (s *Sparse) Len() int { return s.t.Len() }

// Drain visits all entries then resets the table for reuse.
func (s *Sparse) Drain(fn func(l, r uint32, v float64)) {
	s.t.ForEach(func(k uint64, v float64) {
		fn(uint32(k>>32), uint32(k), v)
	})
	s.t.Reset()
}

// Reset empties without draining.
func (s *Sparse) Reset() { s.t.Reset() }

// Grows reports hash-table doublings (resize-cost metric).
func (s *Sparse) Grows() int { return s.t.Grows() }

// SparseRobin is a sparse accumulator backed by a Robin Hood-probing table
// (internal/hashtable.RobinTable) — the "more advanced hashing techniques"
// direction of Feng et al. cited in paper Section 7.2, kept as an ablation
// alternative to the linear-probing Sparse.
type SparseRobin struct {
	t *hashtable.RobinTable
}

// NewSparseRobin returns a Robin Hood sparse accumulator.
func NewSparseRobin(hint int) *SparseRobin {
	return &SparseRobin{t: hashtable.NewRobinTable(hint)}
}

// Upsert adds v at (l, r).
//
//fastcc:hotpath
func (s *SparseRobin) Upsert(l, r uint32, v float64) {
	s.t.Upsert(packLR(l, r), v)
}

// Len returns the number of distinct touched positions.
func (s *SparseRobin) Len() int { return s.t.Len() }

// Drain visits all entries then resets the table for reuse.
func (s *SparseRobin) Drain(fn func(l, r uint32, v float64)) {
	s.t.ForEach(func(k uint64, v float64) {
		fn(uint32(k>>32), uint32(k), v)
	})
	s.t.Reset()
}

// Reset empties without draining.
func (s *SparseRobin) Reset() { s.t.Reset() }

var (
	_ Accumulator = (*Dense)(nil)
	_ Accumulator = (*Sparse)(nil)
	_ Accumulator = (*SparseRobin)(nil)
)
