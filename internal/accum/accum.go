// Package accum implements the two output-tile accumulators of FaSTCC
// (paper Sections 4.2 and 5): a dense tile backed by a value buffer, an
// active-position list and a bitmask, and a sparse tile backed by an
// open-addressing hash table. Both present the same Accumulator interface
// so the contraction kernel is accumulator-agnostic; the probabilistic
// model in internal/model decides which to instantiate.
package accum

// Accumulator accumulates contributions to one output tile and then drains
// its nonzeros. Implementations are reused across tile tasks via Reset.
// Intra-tile indices l and r satisfy l < TL, r < TR.
type Accumulator interface {
	// Upsert adds v to position (l, r) — WS.upsert of Algorithm 4.
	Upsert(l, r uint32, v float64)
	// Drain visits every nonzero position exactly once, in unspecified
	// order, and leaves the accumulator empty and reusable.
	Drain(fn func(l, r uint32, v float64))
	// Len returns the number of distinct touched positions.
	Len() int
	// Reset empties the accumulator without draining.
	Reset()
}
