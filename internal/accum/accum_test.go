package accum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastcc/internal/hashtable"
)

// exerciseAgainstMap drives an accumulator with random upserts and checks
// the drain against a map model, twice, to verify reuse after drain.
func exerciseAgainstMap(t *testing.T, a Accumulator, tl, tr uint32, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < 2; round++ {
		model := map[[2]uint32]float64{}
		n := rng.Intn(500)
		for i := 0; i < n; i++ {
			l := uint32(rng.Intn(int(tl)))
			r := uint32(rng.Intn(int(tr)))
			v := float64(rng.Intn(9) - 4)
			a.Upsert(l, r, v)
			model[[2]uint32{l, r}] += v
		}
		if a.Len() != len(model) {
			t.Fatalf("round %d: Len=%d want %d", round, a.Len(), len(model))
		}
		got := map[[2]uint32]float64{}
		a.Drain(func(l, r uint32, v float64) {
			k := [2]uint32{l, r}
			if _, dup := got[k]; dup {
				t.Fatalf("round %d: position (%d,%d) drained twice", round, l, r)
			}
			got[k] = v
		})
		if len(got) != len(model) {
			t.Fatalf("round %d: drained %d want %d", round, len(got), len(model))
		}
		for k, want := range model {
			if got[k] != want {
				t.Fatalf("round %d: (%d,%d)=%g want %g", round, k[0], k[1], got[k], want)
			}
		}
		if a.Len() != 0 {
			t.Fatalf("round %d: Len=%d after drain", round, a.Len())
		}
	}
}

func TestDenseAgainstMap(t *testing.T) {
	exerciseAgainstMap(t, NewDense(13, 16), 13, 16, 1)
}

func TestSparseAgainstMap(t *testing.T) {
	exerciseAgainstMap(t, NewSparse(4), 1<<10, 1<<10, 2)
}

func TestDenseRequiresPow2TR(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for non-power-of-two TR")
		}
	}()
	NewDense(8, 12)
}

func TestDenseResetClearsState(t *testing.T) {
	d := NewDense(4, 4)
	d.Upsert(1, 2, 5)
	d.Upsert(3, 3, 1)
	d.Reset()
	if d.Len() != 0 {
		t.Fatal("Len after Reset")
	}
	d.Upsert(1, 2, 7)
	seen := 0
	d.Drain(func(l, r uint32, v float64) {
		seen++
		if l != 1 || r != 2 || v != 7 {
			t.Fatalf("stale value: (%d,%d)=%g", l, r, v)
		}
	})
	if seen != 1 {
		t.Fatalf("drained %d entries", seen)
	}
}

func TestDenseDrainIsNNZProportional(t *testing.T) {
	// A huge tile with 3 nonzeros must drain exactly 3 entries (apos path).
	d := NewDense(1<<10, 1<<10)
	d.Upsert(0, 0, 1)
	d.Upsert(1023, 1023, 2)
	d.Upsert(512, 1, 3)
	count := 0
	d.Drain(func(_, _ uint32, _ float64) { count++ })
	if count != 3 {
		t.Fatalf("drained %d", count)
	}
}

func TestDenseCornerPositions(t *testing.T) {
	d := NewDense(8, 8)
	d.Upsert(0, 0, 1)
	d.Upsert(7, 7, 2)
	d.Upsert(0, 7, 3)
	d.Upsert(7, 0, 4)
	got := map[[2]uint32]float64{}
	d.Drain(func(l, r uint32, v float64) { got[[2]uint32{l, r}] = v })
	want := map[[2]uint32]float64{{0, 0}: 1, {7, 7}: 2, {0, 7}: 3, {7, 0}: 4}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("(%d,%d)=%g want %g", k[0], k[1], got[k], v)
		}
	}
}

func TestSparseLargeIndices(t *testing.T) {
	s := NewSparse(0)
	s.Upsert(1<<20, 1<<21, 1.5)
	s.Upsert(1<<20, 1<<21, 0.5)
	s.Upsert(0, 1<<21, 1)
	found := map[[2]uint32]float64{}
	s.Drain(func(l, r uint32, v float64) { found[[2]uint32{l, r}] = v })
	if found[[2]uint32{1 << 20, 1 << 21}] != 2.0 || found[[2]uint32{0, 1 << 21}] != 1 {
		t.Fatalf("got %v", found)
	}
}

func TestAccumulatorEquivalenceProperty(t *testing.T) {
	// Dense and Sparse must produce identical drains for identical input
	// streams (the model may pick either; results must not depend on it).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const tl, tr = 16, 32
		d := NewDense(tl, tr)
		s := NewSparse(8)
		n := rng.Intn(300)
		for i := 0; i < n; i++ {
			l := uint32(rng.Intn(tl))
			r := uint32(rng.Intn(tr))
			v := float64(rng.Intn(5) - 2)
			d.Upsert(l, r, v)
			s.Upsert(l, r, v)
		}
		dm := map[[2]uint32]float64{}
		sm := map[[2]uint32]float64{}
		d.Drain(func(l, r uint32, v float64) { dm[[2]uint32{l, r}] = v })
		s.Drain(func(l, r uint32, v float64) { sm[[2]uint32{l, r}] = v })
		if len(dm) != len(sm) {
			return false
		}
		for k, v := range dm {
			if sm[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// randPairs builds a random pair run with indices below bound.
func randPairs(rng *rand.Rand, n int, bound uint32) []hashtable.Pair {
	ps := make([]hashtable.Pair, n)
	for i := range ps {
		ps[i] = hashtable.Pair{Idx: uint32(rng.Intn(int(bound))), Val: float64(rng.Intn(9) - 4)}
	}
	return ps
}

// TestScatterMatchesUpsert pins the specialized batched outer-product
// scatter against the per-update Upsert loop it replaces, bit for bit (same
// accumulation order), for both accumulator kinds — including empty
// batches, empty and single-element runs, and runs with repeated indices.
func TestScatterMatchesUpsert(t *testing.T) {
	const tl, tr = 32, 64
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		// A batch of up to 5 matches, each an independent pair-run product.
		var ms []Match
		for m := rng.Intn(5); m >= 0; m-- {
			ms = append(ms, Match{
				L: randPairs(rng, rng.Intn(20), tl),
				R: randPairs(rng, rng.Intn(20), tr),
			})
		}

		dRef, dKrn := NewDense(tl, tr), NewDense(tl, tr)
		sRef, sKrn := NewSparse(4), NewSparse(4)
		for _, m := range ms {
			for _, lp := range m.L {
				for _, rp := range m.R {
					dRef.Upsert(lp.Idx, rp.Idx, lp.Val*rp.Val)
					sRef.Upsert(lp.Idx, rp.Idx, lp.Val*rp.Val)
				}
			}
		}
		dKrn.ScatterMatches(ms)
		sKrn.ScatterMatches(ms)

		drain := func(a Accumulator) map[[2]uint32]float64 {
			m := map[[2]uint32]float64{}
			a.Drain(func(l, r uint32, v float64) { m[[2]uint32{l, r}] = v })
			return m
		}
		for _, cmp := range []struct {
			name     string
			ref, krn Accumulator
		}{{"dense", dRef, dKrn}, {"sparse", sRef, sKrn}} {
			if cmp.ref.Len() != cmp.krn.Len() {
				t.Fatalf("trial %d %s: Len %d vs %d", trial, cmp.name, cmp.ref.Len(), cmp.krn.Len())
			}
			ref, krn := drain(cmp.ref), drain(cmp.krn)
			for k, v := range ref {
				if krn[k] != v {
					t.Fatalf("trial %d %s: (%d,%d)=%g want %g", trial, cmp.name, k[0], k[1], krn[k], v)
				}
			}
		}
	}
}

// TestSparseGrowthDrainOrdering drives the sparse accumulator through
// multiple table growths and verifies the growth/drain interaction: every
// entry inserted before, between and after growths drains exactly once with
// the full accumulated sum, Grows() is monotone, and a drain after growth
// leaves the (now larger) table empty and reusable without further growth.
func TestSparseGrowthDrainOrdering(t *testing.T) {
	s := NewSparse(0) // minimum capacity: 16 slots, grows at 85% load
	grows0 := s.Grows()
	model := map[[2]uint32]float64{}
	// Phase 1: force at least two doublings with accumulation onto existing
	// keys interleaved between inserts of fresh keys.
	for i := 0; i < 200; i++ {
		l, r := uint32(i%50), uint32(i/50)
		s.Upsert(l, r, 1)
		s.Upsert(l, r, 0.5) // accumulate onto the just-inserted key
		model[[2]uint32{l, r}] += 1.5
	}
	if s.Grows() <= grows0 {
		t.Fatalf("200 inserts into a 16-slot table did not grow it (grows=%d)", s.Grows())
	}
	if s.Len() != len(model) {
		t.Fatalf("Len=%d want %d", s.Len(), len(model))
	}
	got := map[[2]uint32]float64{}
	s.Drain(func(l, r uint32, v float64) {
		k := [2]uint32{l, r}
		if _, dup := got[k]; dup {
			t.Fatalf("position (%d,%d) drained twice after growth", l, r)
		}
		got[k] = v
	})
	for k, want := range model {
		if got[k] != want {
			t.Fatalf("(%d,%d)=%g want %g", k[0], k[1], got[k], want)
		}
	}
	// Phase 2: the drained table keeps its grown capacity; refilling to the
	// same population must not grow again, and values must not leak.
	growsAfter := s.Grows()
	if s.Len() != 0 {
		t.Fatalf("Len=%d after drain", s.Len())
	}
	for i := 0; i < 200; i++ {
		s.Upsert(uint32(i%50), uint32(i/50), 2)
	}
	if s.Grows() != growsAfter {
		t.Fatalf("refill after drain grew the table again (%d -> %d)", growsAfter, s.Grows())
	}
	s.Drain(func(l, r uint32, v float64) {
		if v != 2 {
			t.Fatalf("stale accumulation at (%d,%d): %g", l, r, v)
		}
	})
}

// TestScatterMatchesAcrossGrowth scatters a batch large enough to grow the
// sparse table mid-scatter; the result must match the Upsert-loop reference.
func TestScatterMatchesAcrossGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ms := []Match{{L: randPairs(rng, 40, 1<<12), R: randPairs(rng, 40, 1<<12)}}
	ref, krn := NewSparse(0), NewSparse(0)
	for _, lp := range ms[0].L {
		for _, rp := range ms[0].R {
			ref.Upsert(lp.Idx, rp.Idx, lp.Val*rp.Val)
		}
	}
	krn.ScatterMatches(ms)
	if ref.Len() != krn.Len() || krn.Grows() == 0 {
		t.Fatalf("Len %d vs %d, grows=%d (expected mid-scatter growth)", ref.Len(), krn.Len(), krn.Grows())
	}
	rm := map[[2]uint32]float64{}
	ref.Drain(func(l, r uint32, v float64) { rm[[2]uint32{l, r}] = v })
	krn.Drain(func(l, r uint32, v float64) {
		if rm[[2]uint32{l, r}] != v {
			t.Fatalf("(%d,%d)=%g want %g", l, r, v, rm[[2]uint32{l, r}])
		}
	})
}

func BenchmarkDenseUpsert(b *testing.B) {
	d := NewDense(512, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Upsert(uint32(i)&511, uint32(i*7)&511, 1)
		if i&0xFFFF == 0xFFFF {
			d.Reset()
		}
	}
}

func BenchmarkSparseUpsert(b *testing.B) {
	s := NewSparse(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Upsert(uint32(i)&4095, uint32(i*7)&4095, 1)
		if i&0xFFFF == 0xFFFF {
			s.Reset()
		}
	}
}

func TestSparseRobinAgainstMap(t *testing.T) {
	exerciseAgainstMap(t, NewSparseRobin(4), 1<<10, 1<<10, 5)
}

func TestSparseRobinMatchesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b := NewSparse(8), NewSparseRobin(8)
	for i := 0; i < 5000; i++ {
		l := uint32(rng.Intn(1 << 12))
		r := uint32(rng.Intn(1 << 12))
		v := float64(rng.Intn(7) - 3)
		a.Upsert(l, r, v)
		b.Upsert(l, r, v)
	}
	am := map[[2]uint32]float64{}
	bm := map[[2]uint32]float64{}
	a.Drain(func(l, r uint32, v float64) { am[[2]uint32{l, r}] = v })
	b.Drain(func(l, r uint32, v float64) { bm[[2]uint32{l, r}] = v })
	if len(am) != len(bm) {
		t.Fatalf("lens %d vs %d", len(am), len(bm))
	}
	for k, v := range am {
		if bm[k] != v {
			t.Fatalf("disagree at %v: %g vs %g", k, v, bm[k])
		}
	}
}
