package hicoo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastcc/internal/coo"
)

func randomTensor(rng *rand.Rand, dims []uint64, nnz int) *coo.Tensor {
	t := coo.New(dims, nnz)
	coords := make([]uint64, len(dims))
	for i := 0; i < nnz; i++ {
		for m, d := range dims {
			coords[m] = rng.Uint64() % d
		}
		t.Append(coords, float64(rng.Intn(9)+1))
	}
	return t
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomTensor(rng, []uint64{100, 37, 260}, 800)
	h, err := FromCOO(a, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := a.Clone()
	want.Dedup()
	if h.NNZ() != want.NNZ() {
		t.Fatalf("nnz %d want %d", h.NNZ(), want.NNZ())
	}
	back := h.ToCOO()
	if !coo.Equal(want, back) {
		t.Fatal("round trip mismatch")
	}
}

func TestBlockGrouping(t *testing.T) {
	// Elements in the same 4x4 block must be contiguous and share BInds.
	a := coo.New([]uint64{16, 16}, 6)
	a.Append([]uint64{0, 0}, 1)
	a.Append([]uint64{3, 3}, 2) // same block as (0,0) with B=4
	a.Append([]uint64{4, 0}, 3) // block (1,0)
	a.Append([]uint64{0, 4}, 4) // block (0,1)
	a.Append([]uint64{15, 15}, 5)
	a.Append([]uint64{1, 2}, 6) // block (0,0) again
	h, err := FromCOO(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBlocks() != 4 {
		t.Fatalf("blocks=%d want 4", h.NumBlocks())
	}
	// First block must be (0,0) with 3 elements.
	if h.BInds[0][0] != 0 || h.BInds[1][0] != 0 {
		t.Fatalf("first block (%d,%d)", h.BInds[0][0], h.BInds[1][0])
	}
	if h.BPtr[1]-h.BPtr[0] != 3 {
		t.Fatalf("first block has %d elements", h.BPtr[1]-h.BPtr[0])
	}
	minB, maxB, mean := h.BlockDensityStats()
	if minB != 1 || maxB != 3 || mean != 1.5 {
		t.Fatalf("stats %d/%d/%g", minB, maxB, mean)
	}
}

func TestIndexCompression(t *testing.T) {
	// A clustered tensor (all nonzeros in a few blocks) must compress well.
	a := coo.New([]uint64{1 << 16, 1 << 16}, 0)
	coords := make([]uint64, 2)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		base := uint64(rng.Intn(4)) * 4096
		coords[0] = base + uint64(rng.Intn(128))
		coords[1] = base + uint64(rng.Intn(128))
		a.Append(coords, 1)
	}
	h, err := FromCOO(a, 7)
	if err != nil {
		t.Fatal(err)
	}
	hb, cb := h.IndexBytes()
	if hb*4 > cb {
		t.Fatalf("HiCOO index %dB not <1/4 of COO %dB on clustered data", hb, cb)
	}
}

func TestErrors(t *testing.T) {
	a := coo.New([]uint64{8, 8}, 0)
	if _, err := FromCOO(a, 0); err == nil {
		t.Fatal("block bits 0 accepted")
	}
	if _, err := FromCOO(a, 9); err == nil {
		t.Fatal("block bits 9 accepted")
	}
	scalar := coo.New(nil, 0)
	if _, err := FromCOO(scalar, 4); err == nil {
		t.Fatal("order-0 accepted")
	}
	// Block grid exceeding uint32: dims 2^40 with block bits 1.
	huge := coo.New([]uint64{1 << 40}, 0)
	if _, err := FromCOO(huge, 1); err == nil {
		t.Fatal("huge block grid accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := rng.Intn(4) + 1
		dims := make([]uint64, order)
		for m := range dims {
			dims[m] = uint64(rng.Intn(60) + 1)
		}
		bits := uint(rng.Intn(MaxBlockBits) + 1)
		a := randomTensor(rng, dims, rng.Intn(120))
		h, err := FromCOO(a, bits)
		if err != nil {
			return false
		}
		want := a.Clone()
		want.Dedup()
		return coo.Equal(want, h.ToCOO())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicConversion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomTensor(rng, []uint64{64, 64, 64}, 300)
	h1, err := FromCOO(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := FromCOO(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h1.NumBlocks() != h2.NumBlocks() || h1.NNZ() != h2.NNZ() {
		t.Fatal("nondeterministic structure")
	}
	for i := range h1.Vals {
		if h1.Vals[i] != h2.Vals[i] {
			t.Fatal("nondeterministic element order")
		}
	}
}

func BenchmarkFromCOO100k(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := randomTensor(rng, []uint64{1 << 12, 1 << 10, 1 << 8}, 100_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FromCOO(a, 7); err != nil {
			b.Fatal(err)
		}
	}
}
