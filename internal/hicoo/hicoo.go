// Package hicoo implements the HiCOO (Hierarchical COOrdinate) compressed
// sparse tensor format used throughout the ParTI/Athena/Sparta ecosystem
// the paper builds its baseline on (refs [21][22]). Nonzeros are grouped
// into B×B×…×B blocks (B a power of two); per block HiCOO stores one set
// of block coordinates (uint32 per mode) and per element only the
// offsets inside the block (uint8 per mode) — cutting index storage from
// 8 bytes per mode per nonzero to ~1 byte for clustered tensors.
//
// FaSTCC itself consumes COO (like Sparta), so HiCOO here serves as an
// interchange/storage format: conversion both ways, block-grouped
// iteration, and space accounting, with the same canonicalization
// guarantees as the rest of the repo.
package hicoo

import (
	"fmt"

	"fastcc/internal/coo"
	"fastcc/internal/radix"
)

// MaxBlockBits bounds the block side to 256 so element offsets fit uint8.
const MaxBlockBits = 8

// Tensor is a sparse tensor in HiCOO form.
//
// Elements are grouped by block: block b spans elements
// BPtr[b]..BPtr[b+1]-1. BInds[m][b] is the mode-m block coordinate of
// block b; EInds[m][i] the mode-m offset of element i inside its block.
// The full coordinate of element i in block b is
// BInds[m][b]<<BlockBits | EInds[m][i].
type Tensor struct {
	Dims      []uint64
	BlockBits uint
	BPtr      []int64
	BInds     [][]uint32
	EInds     [][]uint8
	Vals      []float64
}

// FromCOO converts a COO tensor to HiCOO with 2^blockBits-sided blocks.
// The input is canonicalized (sorted, deduplicated) into block-major
// order; t is not modified.
func FromCOO(t *coo.Tensor, blockBits uint) (*Tensor, error) {
	if blockBits == 0 || blockBits > MaxBlockBits {
		return nil, fmt.Errorf("hicoo: block bits %d out of range [1,%d]", blockBits, MaxBlockBits)
	}
	order := t.Order()
	if order == 0 {
		return nil, fmt.Errorf("hicoo: order-0 tensor has no blocks")
	}
	gridDims := make([]uint64, order)
	for m, d := range t.Dims {
		g := (d + (1 << blockBits) - 1) >> blockBits
		if g > 1<<32-1 {
			return nil, fmt.Errorf("hicoo: mode %d block grid %d exceeds uint32", m, g)
		}
		gridDims[m] = g
	}
	gridStrides, err := coo.Strides(gridDims)
	if err != nil {
		return nil, fmt.Errorf("hicoo: %w", err)
	}

	c := t.Clone()
	c.Dedup()
	n := c.NNZ()

	// Block-major ordering: stable radix by within-block key, then stable
	// radix by block key — equivalent to sorting by (block, within).
	within := make([]uint64, n)
	blocks := make([]uint64, n)
	mask := uint64(1<<blockBits) - 1
	for i := 0; i < n; i++ {
		var bk, wk uint64
		for m := 0; m < order; m++ {
			cm := c.Coords[m][i]
			bk += (cm >> blockBits) * gridStrides[m] //fastcc:allow linovf -- coo.Strides validated the grid product above
			wk = wk<<blockBits | (cm & mask)
		}
		blocks[i] = bk
		within[i] = wk
	}
	if uint(order)*blockBits > 64 {
		return nil, fmt.Errorf("hicoo: order %d with %d block bits overflows the within-block key", order, blockBits)
	}
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	radix.SortWithPerm(within, perm, 0)
	blocksPerm := make([]uint64, n)
	for p, orig := range perm {
		blocksPerm[p] = blocks[orig]
	}
	radix.SortWithPerm(blocksPerm, perm, 0)

	h := &Tensor{
		Dims:      append([]uint64(nil), c.Dims...),
		BlockBits: blockBits,
		BInds:     make([][]uint32, order),
		EInds:     make([][]uint8, order),
		Vals:      make([]float64, 0, n),
	}
	for m := range h.EInds {
		h.EInds[m] = make([]uint8, 0, n)
	}
	prevBlock := uint64(0)
	for p := 0; p < n; p++ {
		orig := int(perm[p])
		bk := blocks[orig]
		if p == 0 || bk != prevBlock {
			h.BPtr = append(h.BPtr, int64(p))
			for m := 0; m < order; m++ {
				h.BInds[m] = append(h.BInds[m], uint32(c.Coords[m][orig]>>blockBits))
			}
			prevBlock = bk
		}
		for m := 0; m < order; m++ {
			h.EInds[m] = append(h.EInds[m], uint8(c.Coords[m][orig]&mask))
		}
		h.Vals = append(h.Vals, c.Vals[orig])
	}
	h.BPtr = append(h.BPtr, int64(n))
	return h, nil
}

// Order returns the number of modes.
func (h *Tensor) Order() int { return len(h.Dims) }

// NNZ returns the number of stored elements.
func (h *Tensor) NNZ() int { return len(h.Vals) }

// NumBlocks returns the number of nonempty blocks.
func (h *Tensor) NumBlocks() int { return len(h.BPtr) - 1 }

// ForEach visits every nonzero in block-major order with reconstructed
// full coordinates.
func (h *Tensor) ForEach(fn func(coords []uint64, v float64)) {
	order := h.Order()
	coords := make([]uint64, order)
	for b := 0; b < h.NumBlocks(); b++ {
		for i := h.BPtr[b]; i < h.BPtr[b+1]; i++ {
			for m := 0; m < order; m++ {
				coords[m] = uint64(h.BInds[m][b])<<h.BlockBits | uint64(h.EInds[m][i])
			}
			fn(coords, h.Vals[i])
		}
	}
}

// ToCOO converts back to COO (sorted block-major; callers may Sort).
func (h *Tensor) ToCOO() *coo.Tensor {
	out := coo.New(h.Dims, h.NNZ())
	h.ForEach(func(coords []uint64, v float64) {
		out.Append(coords, v)
	})
	return out
}

// IndexBytes reports the index storage of the HiCOO form and of the
// equivalent COO form, the compression HiCOO exists for.
func (h *Tensor) IndexBytes() (hicoo, cooBytes int64) {
	order := int64(h.Order())
	hicoo = int64(len(h.BPtr))*8 + int64(h.NumBlocks())*order*4 + int64(h.NNZ())*order
	cooBytes = int64(h.NNZ()) * order * 8
	return hicoo, cooBytes
}

// BlockDensityStats summarizes nonzeros per block: min, max and mean —
// the clustering signal block-based kernels exploit.
func (h *Tensor) BlockDensityStats() (minNNZ, maxNNZ int64, mean float64) {
	nb := h.NumBlocks()
	if nb == 0 {
		return 0, 0, 0
	}
	minNNZ = int64(h.NNZ()) + 1
	for b := 0; b < nb; b++ {
		c := h.BPtr[b+1] - h.BPtr[b]
		if c < minNNZ {
			minNNZ = c
		}
		if c > maxNNZ {
			maxNNZ = c
		}
	}
	mean = float64(h.NNZ()) / float64(nb)
	return minNNZ, maxNNZ, mean
}
