package experiments

import (
	"fmt"
	"sort"
)

// Experiments maps experiment names (as accepted by fastcc-bench -exp) to
// their runners. "fig2" and "fig4" take the suite from the dispatcher.
var runners = map[string]func(Config, string) error{
	"table1":     func(c Config, _ string) error { return RunTable1(c) },
	"table2":     func(c Config, _ string) error { return RunTable2(c) },
	"table3":     func(c Config, _ string) error { return RunTable3(c) },
	"fig2":       RunFig2,
	"fig3":       func(c Config, _ string) error { return RunFig3(c) },
	"fig4":       RunFig4,
	"fig5":       func(c Config, _ string) error { return RunFig5(c) },
	"ablate":     func(c Config, _ string) error { return RunAblations(c) },
	"model":      func(c Config, _ string) error { return RunModelAccuracy(c) },
	"phases":     func(c Config, _ string) error { return RunPhases(c) },
	"reuse":      func(c Config, _ string) error { return RunReuse(c) },
	"buildscale": func(c Config, _ string) error { return RunBuildScale(c) },
	"hotpath":    RunHotpath,
	"spill":      func(c Config, _ string) error { return RunSpill(c) },
}

// Names lists the available experiments in stable order.
func Names() []string {
	names := make([]string, 0, len(runners))
	for n := range runners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run dispatches one experiment by name; "all" runs everything in order.
func Run(cfg Config, name, suite string) error {
	if name == "all" {
		for _, n := range []string{"table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "ablate", "model", "phases", "reuse", "buildscale", "hotpath", "spill"} {
			fmt.Fprintf(cfg.writer(), "\n===== %s =====\n\n", n)
			if err := Run(cfg, n, suite); err != nil {
				return err
			}
		}
		return nil
	}
	fn, ok := runners[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v and \"all\")", name, Names())
	}
	return fn(cfg, suite)
}
