package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"fastcc"
	"fastcc/internal/core"
)

// SpillResult is one case of the disk-tier experiment, serialized into
// BENCH_spill.json: the same evict-then-contract cycle timed twice, once
// with the spill tier disabled (eviction discards the shard, the next run
// rebuilds it from the linearized operand) and once with it enabled
// (eviction writes the shard image to disk, the next run re-pins it from
// the spill file).
type SpillResult struct {
	Case string `json:"case"`
	// RebuildSeconds is the contract after a plain eviction: shard tables
	// are gone and the run pays linearize-order build again.
	RebuildSeconds float64 `json:"rebuild_seconds"`
	// RepinSeconds is the contract after a spill eviction: the run reads
	// the shard image back from disk instead of rebuilding.
	RepinSeconds float64 `json:"repin_seconds"`
	// ShardReused is the re-pin run's Stats.ShardReused (must be true —
	// a reload counts as a cache hit).
	ShardReused bool `json:"shard_reused"`
	// SpillReads is how many shard images the re-pin leg loaded from disk.
	SpillReads int64 `json:"spill_reads"`
	// Speedup is RebuildSeconds / RepinSeconds.
	Speedup float64 `json:"speedup"`
}

// SpillReport is the full experiment output: per-case comparisons plus the
// geometric-mean speedup of re-pinning from disk over rebuilding.
type SpillReport struct {
	Cases          []SpillResult `json:"cases"`
	GeomeanSpeedup float64       `json:"geomean_speedup"`
}

// RunSpill measures what the disk tier buys: for each FROSTT-shaped
// self-contraction it preshards the operands, then repeatedly evicts the
// sealed shard and times the next ContractPrepared — first with no spill
// directory (the eviction discards the tables, so the timed run rebuilds),
// then with one (the eviction spills, so the timed run re-pins from disk).
// The re-pin runs must report ShardReused with zero spill fallbacks; a
// corrupt or failed reload would silently degrade into the rebuild path and
// invalidate the comparison.
func RunSpill(cfg Config) error {
	dir, err := os.MkdirTemp("", "fastcc-bench-spill-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	var report SpillReport
	logSum, logN := 0.0, 0
	for _, cs := range Catalog() {
		if cs.Suite != "frostt" {
			continue
		}
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			return err
		}
		res, err := measureSpill(cfg, dir, cs.ID, l, r, spec)
		if err != nil {
			return fmt.Errorf("spill %s: %w", cs.ID, err)
		}
		report.Cases = append(report.Cases, res)
		if res.Speedup > 0 {
			logSum += math.Log(res.Speedup)
			logN++
		}
	}
	if logN > 0 {
		report.GeomeanSpeedup = math.Exp(logSum / float64(logN))
	}
	enc := json.NewEncoder(cfg.writer())
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

func measureSpill(cfg Config, dir, id string, l, r *fastcc.Tensor, spec fastcc.Spec) (SpillResult, error) {
	opts := fastccOpts(cfg)

	// FROSTT cases are self-contractions (l == r), so one Preshard covers
	// both sides.
	ls, err := fastcc.Preshard(l, spec.CtrLeft, opts...)
	if err != nil {
		return SpillResult{}, err
	}
	rs := ls
	if r != l {
		if rs, err = fastcc.Preshard(r, spec.CtrRight, opts...); err != nil {
			return SpillResult{}, err
		}
	}
	// Prime the cache with the model-chosen tile shard.
	if _, _, err := fastcc.ContractPrepared(ls, rs, opts...); err != nil {
		return SpillResult{}, err
	}

	// evictThenContract drops the cached shard through a 1-byte budget —
	// routed through the spill tier iff one is configured — restores the
	// budget, and times the next prepared contract.
	evictThenContract := func() (time.Duration, *fastcc.Stats, error) {
		best := time.Duration(0)
		var bestStats *fastcc.Stats
		for i := 0; i < cfg.repeats(); i++ {
			core.SetShardBudget(1)
			core.SetShardBudget(-1)
			t0 := time.Now()
			_, st, err := fastcc.ContractPrepared(ls, rs, opts...)
			if err != nil {
				return 0, nil, err
			}
			if d := time.Since(t0); i == 0 || d < best {
				best, bestStats = d, st
			}
		}
		return best, bestStats, nil
	}

	// Leg 1 — no spill tier: eviction discards, the timed run rebuilds.
	rebuild, rebuildStats, err := evictThenContract()
	if err != nil {
		return SpillResult{}, err
	}
	if rebuildStats.ShardReused {
		return SpillResult{}, fmt.Errorf("rebuild leg reused a shard that should have been evicted: %+v", rebuildStats)
	}

	// Leg 2 — spill tier on: eviction writes the image, the timed run
	// re-pins it from disk.
	if err := fastcc.ConfigureSpill(dir, 0, false); err != nil {
		return SpillResult{}, err
	}
	defer func() { _ = fastcc.ConfigureSpill("", 0, false) }()
	before := fastcc.ShardCacheStats()
	repin, repinStats, err := evictThenContract()
	if err != nil {
		return SpillResult{}, err
	}
	after := fastcc.ShardCacheStats()
	if err := fastcc.ConfigureSpill("", 0, false); err != nil {
		return SpillResult{}, err
	}
	if !repinStats.ShardReused {
		return SpillResult{}, fmt.Errorf("re-pin leg did not reload from disk: %+v", repinStats)
	}
	if fb := after.SpillFallbacks - before.SpillFallbacks; fb != 0 {
		return SpillResult{}, fmt.Errorf("re-pin leg degraded to rebuild %d times (spill fallbacks)", fb)
	}

	res := SpillResult{
		Case:           id,
		RebuildSeconds: rebuild.Seconds(),
		RepinSeconds:   repin.Seconds(),
		ShardReused:    repinStats.ShardReused,
		SpillReads:     after.SpillReads - before.SpillReads,
	}
	if repin > 0 {
		res.Speedup = rebuild.Seconds() / repin.Seconds()
	}
	return res, nil
}
