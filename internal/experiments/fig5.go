package experiments

import (
	"fmt"
)

// RunFig5 reproduces paper Figure 5: sequential FaSTCC (best tile) against
// the TACO-style CI scheme, single-threaded — TACO does not parallelize
// sparse-output contractions. The CI scheme's O(L·R) fiber-pair
// co-iteration is orders of magnitude slower on contractions with large
// external spaces, so this experiment shrinks the workloads further (the
// paper's two-orders-of-magnitude gaps would otherwise take hours).
func RunFig5(cfg Config) error {
	w := cfg.writer()
	// CI is quadratic in nonempty fibers: run at reduced scale.
	cfg.ScaleFROSTT *= 0.25
	cfg.ScaleQC *= 0.5
	cfg.Threads = 1
	fmt.Fprintf(w, "Figure 5: sequential speedup over TACO CI (frostt scale=%g, qc scale=%g)\n\n",
		cfg.ScaleFROSTT, cfg.ScaleQC)
	t := newTable("contraction", "taco-ci(s)", "fastcc-1T(s)", "speedup")

	for _, cs := range Catalog() {
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			return err
		}
		tacoOut, tacoD, err := runBaseline(cfg, baseTaco, l, r, spec, nil)
		if err != nil {
			return fmt.Errorf("%s taco: %w", cs.ID, err)
		}
		dec, err := decideFor(cfg, l, r, spec)
		if err != nil {
			return err
		}
		fastD, _, err := bestTileTime(cfg, l, r, spec, dec)
		if err != nil {
			return fmt.Errorf("%s fastcc: %w", cs.ID, err)
		}
		if cfg.Verify {
			out, _, _, err := runFastCC(cfg, l, r, spec)
			if err != nil {
				return err
			}
			if err := verifyAgainst(cs.ID, out, tacoOut); err != nil {
				return err
			}
		}
		t.addf("%s|%s|%s|%.1fx", cs.ID, secs(tacoD), secs(fastD),
			tacoD.Seconds()/fastD.Seconds())
	}
	cfg.print(t)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "CI co-iterates every (left fiber, right fiber) pair — O(L·R) queries")
	fmt.Fprintln(w, "(Table 1) — so its gap to FaSTCC grows with the external index spaces.")
	return nil
}
