package experiments

import (
	"fmt"
	"math"
)

// RunModelAccuracy validates Section 5.1's probabilistic density estimator
// beyond what the paper prints: for every benchmark contraction it compares
// the predicted output density Φ_res = 1-(1-pL·pR)^C (and the implied
// output nonzero count) against the measured output. Real tensors violate
// the uniform-random assumption — the interesting column is the ratio,
// which shows where clustering makes the model conservative (ratio < 1,
// clustered overlaps produce fewer distinct outputs) or optimistic.
func RunModelAccuracy(cfg Config) error {
	w := cfg.writer()
	fmt.Fprintln(w, "Model accuracy: predicted vs measured output density (Section 5.1)")
	fmt.Fprintln(w)
	t := newTable("contraction", "pred density", "meas density", "pred nnz", "meas nnz", "meas/pred")

	for _, cs := range Catalog() {
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			return err
		}
		dec, err := decideFor(cfg, l, r, spec)
		if err != nil {
			return err
		}
		out, _, _, err := runFastCC(cfg, l, r, spec)
		if err != nil {
			return err
		}
		size := out.Size()
		meas := 0.0
		if size > 0 {
			meas = float64(out.NNZ()) / size
		}
		predNNZ := dec.PNonzero * size
		ratio := math.Inf(1)
		if predNNZ > 0 {
			ratio = float64(out.NNZ()) / predNNZ
		}
		t.addf("%s|%.3g|%.3g|%.3g|%d|%.2f",
			cs.ID, dec.PNonzero, meas, predNNZ, out.NNZ(), ratio)
	}
	cfg.print(t)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "The uniform-random model tends to UNDERestimate density for clustered")
	fmt.Fprintln(w, "inputs on small outputs (overlaps concentrate) and OVERestimate the")
	fmt.Fprintln(w, "distinct-output count when slices are correlated; the dense/sparse")
	fmt.Fprintln(w, "decision only needs the estimate within a factor of ~T², so it is robust.")
	return nil
}
