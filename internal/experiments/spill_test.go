package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestRunSpillEmitsValidJSON is the tiny-scale smoke of the disk-tier
// experiment: every FROSTT case evicted to disk and re-pinned, asserting the
// report parses, every re-pin leg actually reloaded from a spill file
// (ShardReused with SpillReads > 0 — RunSpill itself errors on fallbacks,
// this re-checks the serialized fields so a report with a silent rebuild
// can't be produced).
func TestRunSpillEmitsValidJSON(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	if err := RunSpill(cfg); err != nil {
		t.Fatal(err)
	}
	var report SpillReport
	if err := json.Unmarshal([]byte(buf.String()), &report); err != nil {
		t.Fatalf("spill output is not valid JSON: %v", err)
	}
	checkSpillReport(t, report)
	if want := len(CatalogSuite("frostt")); len(report.Cases) != want {
		t.Fatalf("report has %d cases, want %d", len(report.Cases), want)
	}
}

// TestBenchSpillArtifact validates the checked-in BENCH_spill.json: strict
// schema (no unknown fields), every case re-pinned from disk, and the
// headline criterion — re-pinning beats rebuilding on geomean.
func TestBenchSpillArtifact(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_spill.json")
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var report SpillReport
	if err := dec.Decode(&report); err != nil {
		t.Fatalf("BENCH_spill.json does not match the SpillReport schema: %v", err)
	}
	checkSpillReport(t, report)
	if report.GeomeanSpeedup <= 1.0 {
		t.Fatalf("re-pin-from-disk geomean %.3f does not beat rebuild (want > 1.0)",
			report.GeomeanSpeedup)
	}
}

// checkSpillReport enforces the invariants shared by fresh runs and the
// checked-in artifact.
func checkSpillReport(t *testing.T, report SpillReport) {
	t.Helper()
	if len(report.Cases) == 0 {
		t.Fatal("report has no cases")
	}
	if report.GeomeanSpeedup <= 0 {
		t.Fatalf("geomean speedup %v", report.GeomeanSpeedup)
	}
	for _, c := range report.Cases {
		if !c.ShardReused {
			t.Fatalf("case %s: re-pin leg did not reuse the spilled shard", c.Case)
		}
		if c.SpillReads <= 0 {
			t.Fatalf("case %s: re-pin leg read %d spill files, want > 0", c.Case, c.SpillReads)
		}
		if c.RebuildSeconds <= 0 || c.RepinSeconds <= 0 || c.Speedup <= 0 {
			t.Fatalf("case %s: non-positive timing: %+v", c.Case, c)
		}
	}
}
