package experiments

import (
	"math"
	"strings"
	"testing"
)

// paperPL records the pL values (as fractions) from the paper's Table 3.
// Density-preserving scaling means the synthesized workloads should land
// within a small factor of these despite the 100×-smaller nonzero counts;
// DLPNO is generated from scratch so its band is looser.
var paperPL = map[string]struct {
	pl     float64
	within float64
}{
	"chicago-0":     {0.0146, 2},
	"chicago-01":    {0.0146, 2},
	"chicago-123":   {0.0146, 2},
	"uber-02":       {0.0004, 2},
	"uber-123":      {0.0004, 2},
	"nips-2":        {1.83e-6, 2},
	"nips-23":       {1.83e-6, 2},
	"nips-013":      {1.83e-6, 2},
	"vast-01":       {7.78e-8, 8}, // tiny extents round coarsely at small scales
	"vast-014":      {7.78e-8, 8},
	"guanine-ovov":  {0.0063, 8},
	"guanine-vvoo":  {0.1836, 8},
	"guanine-vvov":  {0.1836, 8},
	"caffeine-ovov": {0.0366, 8},
	"caffeine-vvoo": {0.419, 8},
	"caffeine-vvov": {0.419, 8},
}

// TestWorkloadDensityFidelity pins the synthesized workloads to the
// paper's Table 3 input densities: if a generator change drifts a pL out
// of band, the model's dense/sparse decisions — and with them every
// downstream experiment shape — silently change. Run at the default
// scales (the ones EXPERIMENTS.md reports).
func TestWorkloadDensityFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale workload generation")
	}
	cfg := Default()
	cfg.Out = &strings.Builder{}
	for _, cs := range Catalog() {
		want, ok := paperPL[cs.ID]
		if !ok {
			t.Fatalf("no paper pL recorded for %s", cs.ID)
		}
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cs.ID, err)
		}
		dec, err := decideFor(cfg, l, r, spec)
		if err != nil {
			t.Fatalf("%s: %v", cs.ID, err)
		}
		ratio := dec.PL / want.pl
		if math.IsNaN(ratio) || ratio > want.within || ratio < 1/want.within {
			t.Errorf("%s: pL=%.3g, paper %.3g (off by %.2fx, budget %gx)",
				cs.ID, dec.PL, want.pl, ratio, want.within)
		}
	}
}

// TestModelDecisionsMatchPaper pins Algorithm 7's choices on the default
// workloads to the paper's Table 3 column: sparse for nips-2 and nips-23,
// dense for everything else. (nips-013 is borderline in both; we only
// require it not be forced sparse at default scale by a wide margin.)
func TestModelDecisionsMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale workload generation")
	}
	cfg := Default()
	cfg.Out = &strings.Builder{}
	for _, cs := range Catalog() {
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cs.ID, err)
		}
		dec, err := decideFor(cfg, l, r, spec)
		if err != nil {
			t.Fatalf("%s: %v", cs.ID, err)
		}
		wantSparse := cs.ID == "nips-2" || cs.ID == "nips-23"
		isSparse := dec.ENNZ < 1
		if wantSparse && !isSparse {
			t.Errorf("%s: paper chooses sparse, model says E_nnz=%.3g", cs.ID, dec.ENNZ)
		}
		if !wantSparse && cs.ID != "nips-013" && isSparse {
			t.Errorf("%s: paper chooses dense, model says E_nnz=%.3g", cs.ID, dec.ENNZ)
		}
	}
}
