// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on synthetic workloads:
//
//	Table 1  — loop-order data-access analysis, measured vs. analytic
//	Table 2  — FROSTT tensor geometries
//	Table 3  — model output and dense/sparse accumulator timings
//	Fig. 2   — FaSTCC speedup over Sparta (FROSTT + quantum chemistry)
//	Fig. 3   — thread scaling of the FaSTCC kernel
//	Fig. 4   — execution time vs. tile size (U-curves)
//	Fig. 5   — sequential FaSTCC speedup over TACO's CI scheme
//
// plus ablations of the design choices (accumulator kind, tiling, CSF vs.
// hash CI). Each experiment prints a paper-style text table to the
// configured writer; absolute times are machine-dependent, but the shapes
// (who wins, by what factor, where crossovers fall) reproduce the paper.
package experiments

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"fastcc"
	"fastcc/internal/coo"
	"fastcc/internal/gen"
	"fastcc/internal/model"
)

// Config controls experiment scale and resources.
type Config struct {
	// ScaleFROSTT shrinks the FROSTT tensors (1 = paper size). The default
	// 0.01 runs the whole suite in minutes on a laptop.
	ScaleFROSTT float64
	// ScaleQC shrinks the quantum-chemistry orbital spaces (1 = preset).
	ScaleQC float64
	// Threads used by parallel engines; 0 = GOMAXPROCS.
	Threads int
	// Platform drives the tile-size model.
	Platform model.Platform
	// Seed makes workloads reproducible.
	Seed uint64
	// Repeats per timing; the minimum is reported.
	Repeats int
	// Verify cross-checks engine outputs against each other (slower).
	Verify bool
	// Out receives the rendered tables; nil = os.Stdout.
	Out io.Writer
	// ProfileDir, when non-empty, makes profile-aware experiments (hotpath)
	// write CPU profiles into this directory, one .pprof per measured pass.
	ProfileDir string
	// Format selects table rendering: "table" (default) or "csv".
	Format string
}

// Default returns the laptop-sized configuration.
func Default() Config {
	return Config{
		ScaleFROSTT: 0.01,
		ScaleQC:     0.25,
		Threads:     0,
		Platform:    model.Auto(),
		Seed:        42,
		Repeats:     1,
	}
}

func (c Config) writer() io.Writer {
	if c.Out != nil {
		return c.Out
	}
	return os.Stdout
}

func (c Config) repeats() int {
	if c.Repeats < 1 {
		return 1
	}
	return c.Repeats
}

// Case is one benchmark contraction of the evaluation.
type Case struct {
	// ID follows the paper's naming (chicago-0, nips-23, guanine-ovov...).
	ID    string
	Suite string // "frostt" or "qc"
	// Load materializes the operands and contraction spec at the config's
	// scale. Self-contractions return the same tensor twice.
	Load func(cfg Config) (l, r *coo.Tensor, spec coo.Spec, err error)
}

// Catalog returns all 16 evaluation contractions: 10 FROSTT
// self-contractions and 6 quantum-chemistry contractions (Section 6.1).
func Catalog() []Case {
	var cases []Case
	for _, spec := range gen.FrosttSuite {
		spec := spec
		for _, modes := range spec.Contractions {
			modes := modes
			cases = append(cases, Case{
				ID:    gen.ContractionName(spec.Name, modes),
				Suite: "frostt",
				Load: func(cfg Config) (*coo.Tensor, *coo.Tensor, coo.Spec, error) {
					t, err := spec.Scaled(cfg.ScaleFROSTT).Generate(cfg.Seed)
					if err != nil {
						return nil, nil, coo.Spec{}, err
					}
					s := coo.Spec{CtrLeft: modes, CtrRight: modes}
					return t, t, s, nil
				},
			})
		}
	}
	for _, mol := range gen.Molecules {
		mol := mol
		for _, kind := range gen.QCKinds {
			kind := kind
			cases = append(cases, Case{
				ID:    mol.Name + "-" + kind,
				Suite: "qc",
				Load: func(cfg Config) (*coo.Tensor, *coo.Tensor, coo.Spec, error) {
					return mol.Scaled(cfg.ScaleQC).Contraction(kind)
				},
			})
		}
	}
	return cases
}

// CatalogSuite filters the catalog by suite name ("frostt", "qc", "all").
func CatalogSuite(suite string) []Case {
	all := Catalog()
	if suite == "" || suite == "all" {
		return all
	}
	var out []Case
	for _, c := range all {
		if c.Suite == suite {
			out = append(out, c)
		}
	}
	return out
}

// CaseByID finds one case by its paper-style name.
func CaseByID(id string) (Case, error) {
	for _, c := range Catalog() {
		if c.ID == id {
			return c, nil
		}
	}
	return Case{}, fmt.Errorf("experiments: unknown case %q", id)
}

// timeIt runs fn cfg.Repeats times and returns the minimum duration.
func timeIt(cfg Config, fn func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < cfg.repeats(); i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// table is a minimal aligned text-table renderer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// secs renders a duration in seconds with three significant decimals.
func secs(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

// fastccOpts assembles the common option set.
func fastccOpts(cfg Config, extra ...fastcc.Option) []fastcc.Option {
	opts := []fastcc.Option{
		fastcc.WithThreads(cfg.Threads),
		fastcc.WithPlatform(cfg.Platform),
	}
	return append(opts, extra...)
}

// renderCSV emits the table as RFC-4180-ish CSV (fields with commas or
// quotes are quoted) for downstream plotting.
func (t *table) renderCSV(w io.Writer) {
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
}

// print renders a finished table in the configured format.
func (c Config) print(t *table) {
	if c.Format == "csv" {
		t.renderCSV(c.writer())
		return
	}
	t.render(c.writer())
}
