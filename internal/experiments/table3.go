package experiments

import (
	"fmt"

	"fastcc"
	"fastcc/internal/coo"
	"fastcc/internal/model"
)

// RunTable3 reproduces paper Table 3: for every benchmark contraction it
// reports the model's input densities, the expected nonzeros in a
// cache-sized dense tile, the measured times with a dense and with a sparse
// accumulator, and the model's dense/sparse choice. Runs whose dense tile
// grid would be intractably large are reported DNF, matching the paper's
// NIPS-2 dense entry.
func RunTable3(cfg Config) error {
	w := cfg.writer()
	fmt.Fprintf(w, "Table 3: model output per contraction (platform=%s, threads=%d)\n\n",
		cfg.Platform.Name, cfg.Threads)
	t := newTable("contraction", "pL(%)", "pR(%)", "E_nnz(T^2)", "Time_D(s)", "Time_S(s)", "D/S")

	for _, cs := range Catalog() {
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			return err
		}
		dec, err := decideFor(cfg, l, r, spec)
		if err != nil {
			return err
		}
		choice := "D"
		if dec.Kind == model.AccumSparse {
			choice = "S"
		}

		// Forced-dense timing (DNF when the dense tile grid explodes).
		timeD := "DNF"
		if grid, err := denseGrid(l, r, spec, dec.DenseT); err == nil && grid <= 32<<20 {
			outD, _, d, err := runFastCC(cfg, l, r, spec, fastcc.WithAccumulator(fastcc.AccumDense))
			if err != nil {
				return fmt.Errorf("%s dense: %w", cs.ID, err)
			}
			timeD = secs(d)
			if cfg.Verify {
				outS, _, _, err := runFastCC(cfg, l, r, spec, fastcc.WithAccumulator(fastcc.AccumSparse))
				if err != nil {
					return err
				}
				if err := verifyAgainst(cs.ID, outD, outS); err != nil {
					return err
				}
			}
		}

		// Forced-sparse timing.
		_, _, dS, err := runFastCC(cfg, l, r, spec, fastcc.WithAccumulator(fastcc.AccumSparse))
		if err != nil {
			return fmt.Errorf("%s sparse: %w", cs.ID, err)
		}

		t.addf("%s|%.3g|%.3g|%.3g|%s|%s|%s",
			cs.ID, dec.PL*100, dec.PR*100, dec.ENNZ, timeD, secs(dS), choice)
	}
	cfg.print(t)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "D/S is the model's choice (Algorithm 7): dense when a cache-sized tile")
	fmt.Fprintln(w, "expects at least one nonzero, sparse otherwise.")
	return nil
}

// decideFor runs the model on the matrixized statistics of a contraction.
func decideFor(cfg Config, l, r *coo.Tensor, spec coo.Spec) (model.Decision, error) {
	extL := coo.ExternalModes(l.Order(), spec.CtrLeft)
	extR := coo.ExternalModes(r.Order(), spec.CtrRight)
	lDims := make([]uint64, 0, len(extL))
	for _, m := range extL {
		lDims = append(lDims, l.Dims[m])
	}
	rDims := make([]uint64, 0, len(extR))
	for _, m := range extR {
		rDims = append(rDims, r.Dims[m])
	}
	cDims := make([]uint64, 0, len(spec.CtrLeft))
	for _, m := range spec.CtrLeft {
		cDims = append(cDims, l.Dims[m])
	}
	lSize, err := coo.LinearSize(lDims)
	if err != nil {
		return model.Decision{}, err
	}
	rSize, err := coo.LinearSize(rDims)
	if err != nil {
		return model.Decision{}, err
	}
	cSize, err := coo.LinearSize(cDims)
	if err != nil {
		return model.Decision{}, err
	}
	return model.Decide(model.Inputs{
		NNZL: int64(l.NNZ()), NNZR: int64(r.NNZ()),
		LDim: lSize, RDim: rSize, CDim: cSize,
	}, cfg.Platform)
}
