package experiments

import (
	"fmt"

	"fastcc/internal/baselines"
	"fastcc/internal/gen"
	"fastcc/internal/metrics"
)

// RunTable1 reproduces paper Table 1: the comparative data-access analysis
// of the three loop orders. For a family of uniform random contractions it
// runs the instrumented CI, CM and CO engines and prints measured hash
// queries, retrieved data volume and dense-equivalent accumulator size next
// to the closed-form predictions:
//
//	CI: queries O(L·R),   volume O(L·nnzR + R·nnzL),      Size_Acc 1
//	CM: queries L+nnzL,   volume nnzL + nnzR·nnzL/C,      Size_Acc R
//	CO: queries O(2C),    volume nnzL + nnzR,             Size_Acc L·R
func RunTable1(cfg Config) error {
	w := cfg.writer()
	fmt.Fprintln(w, "Table 1: data movement and accumulator space by loop order")
	fmt.Fprintln(w, "(measured by instrumented engines on uniform random inputs; 'pred' = closed form)")
	fmt.Fprintln(w)

	shapes := []struct {
		name             string
		extL, extR, ctrC uint64
		nnz              int
	}{
		{"balanced", 256, 256, 64, 4000},
		{"wide-C", 128, 128, 1024, 4000},
		{"narrow-C", 512, 512, 16, 4000},
	}

	t := newTable("shape", "scheme", "queries", "pred", "volume", "pred", "ws_words", "pred")
	for _, s := range shapes {
		l, err := gen.UniformMatrix(s.extL, s.ctrC, s.nnz, cfg.Seed, gen.Options{IntValues: true})
		if err != nil {
			return err
		}
		r, err := gen.UniformMatrix(s.extR, s.ctrC, s.nnz, cfg.Seed+1, gen.Options{IntValues: true})
		if err != nil {
			return err
		}
		nnzL, nnzR := int64(l.NNZ()), int64(r.NNZ())
		L, R, C := int64(s.extL), int64(s.extR), int64(s.ctrC)

		var ci, cm, co metrics.Counters
		if _, err := baselines.HashCI(l, r, &ci); err != nil {
			return err
		}
		if _, err := baselines.SpartaCM(l, r, 1, &cm); err != nil {
			return err
		}
		if _, err := baselines.UntiledCO(l, r, &co); err != nil {
			return err
		}
		sci, scm, sco := ci.Snapshot(), cm.Snapshot(), co.Snapshot()

		t.addf("%s|CI|%d|%d|%d|%d|%d|%d", s.name,
			sci.Queries, 2*L*R,
			sci.Volume, L*nnzR+R*nnzL,
			sci.WorkspaceWords, 1)
		t.addf("%s|CM|%d|%d|%d|%d|%d|%d", s.name,
			scm.Queries, L+nnzL,
			scm.Volume, nnzL+nnzR*nnzL/C,
			scm.WorkspaceWords, R)
		t.addf("%s|CO|%d|%d|%d|%d|%d|%d", s.name,
			sco.Queries, 2*C,
			sco.Volume, nnzL+nnzR,
			sco.WorkspaceWords, L*R)
	}
	cfg.print(t)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "CI pays O(L·R) queries and the largest volume; CO touches each input")
	fmt.Fprintln(w, "nonzero once but needs an L·R-word accumulator — the trade-off FaSTCC's")
	fmt.Fprintln(w, "tiling resolves (paper Section 3.4-3.5).")
	return nil
}

// RunTable2 reproduces paper Table 2: the FROSTT tensor geometries actually
// generated at the configured scale (and the paper-scale originals).
func RunTable2(cfg Config) error {
	w := cfg.writer()
	fmt.Fprintf(w, "Table 2: FROSTT tensor dimensions and size (scale=%g)\n\n", cfg.ScaleFROSTT)
	t := newTable("tensor", "paper dims", "paper nnz", "scaled dims", "generated nnz", "density")
	for _, s := range gen.FrosttSuite {
		sc := s.Scaled(cfg.ScaleFROSTT)
		tn, err := sc.Generate(cfg.Seed)
		if err != nil {
			return err
		}
		t.addf("%s|%s|%d|%s|%d|%.3g", s.Name,
			dimsString(s.Dims), s.NNZ, dimsString(sc.Dims), tn.NNZ(), tn.Density())
	}
	cfg.print(t)
	return nil
}

func dimsString(dims []uint64) string {
	s := ""
	for i, d := range dims {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprintf("%d", d)
	}
	return s
}
