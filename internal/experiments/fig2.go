package experiments

import (
	"fmt"
	"time"

	"fastcc"
	"fastcc/internal/coo"
	"fastcc/internal/model"
)

// RunFig2 reproduces paper Figure 2: FaSTCC's speedup over Sparta on every
// benchmark contraction, both with the model-chosen tile size and with the
// best tile size found by a sweep. suite selects "frostt" (Fig. 2a/2b),
// "qc" (Fig. 2c/2d) or "all".
func RunFig2(cfg Config, suite string) error {
	w := cfg.writer()
	fmt.Fprintf(w, "Figure 2 (%s): speedup over Sparta (platform=%s, threads=%d)\n\n",
		suite, cfg.Platform.Name, cfg.Threads)
	t := newTable("contraction", "sparta(s)", "fastcc-model(s)", "fastcc-best(s)",
		"best tile", "speedup-model", "speedup-best")

	for _, cs := range CatalogSuite(suite) {
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			return err
		}
		spartaOut, spartaD, err := runBaseline(cfg, baseSparta, l, r, spec, nil)
		if err != nil {
			return fmt.Errorf("%s sparta: %w", cs.ID, err)
		}
		modelOut, stats, modelD, err := runFastCC(cfg, l, r, spec)
		if err != nil {
			return fmt.Errorf("%s fastcc: %w", cs.ID, err)
		}
		if cfg.Verify {
			if err := verifyAgainst(cs.ID, modelOut, spartaOut); err != nil {
				return err
			}
		}
		bestD, bestTile, err := bestTileTime(cfg, l, r, spec, stats.Decision)
		if err != nil {
			return fmt.Errorf("%s sweep: %w", cs.ID, err)
		}
		if modelD < bestD {
			// The model's own configuration beat every swept tile.
			bestD, bestTile = modelD, stats.TileL
		}
		t.addf("%s|%s|%s|%s|%d|%.2fx|%.2fx", cs.ID,
			secs(spartaD), secs(modelD), secs(bestD), bestTile,
			spartaD.Seconds()/modelD.Seconds(), spartaD.Seconds()/bestD.Seconds())
	}
	cfg.print(t)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "speedup-model uses Algorithm 7's tile size; speedup-best the sweep's")
	fmt.Fprintln(w, "winner. Values > 1 mean FaSTCC is faster than Sparta.")
	return nil
}

// sweepTileSizes returns the tile sides to try around the model decision.
// Dense sweeps are capped so per-worker accumulators stay modest.
func sweepTileSizes(dec model.Decision) []uint64 {
	var out []uint64
	if dec.Kind == model.AccumDense {
		for t := uint64(64); t <= 2048; t *= 2 {
			out = append(out, t)
		}
		return out
	}
	base := dec.TileL
	if base < 64 {
		base = 64
	}
	for t := base / 8; t <= base*4; t *= 2 {
		if t >= 8 {
			out = append(out, t)
		}
	}
	return out
}

// bestTileTime sweeps tile sizes with the model's accumulator kind and
// returns the fastest time and its tile.
func bestTileTime(cfg Config, l, r *coo.Tensor, spec coo.Spec, dec model.Decision) (time.Duration, uint64, error) {
	var bestD time.Duration
	var bestT uint64
	for _, tile := range sweepTileSizes(dec) {
		_, _, d, err := runFastCC(cfg, l, r, spec,
			fastcc.WithTileSize(tile, tile), fastcc.WithAccumulator(dec.Kind))
		if err != nil {
			return 0, 0, err
		}
		if bestT == 0 || d < bestD {
			bestD, bestT = d, tile
		}
	}
	return bestD, bestT, nil
}
