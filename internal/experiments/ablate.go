package experiments

import (
	"fmt"

	"fastcc"
	"fastcc/internal/accum"
	"fastcc/internal/chainhash"
	"fastcc/internal/coo"
	"fastcc/internal/gen"
	"fastcc/internal/hashtable"
)

// RunAblations exercises the design choices DESIGN.md calls out, beyond the
// paper's headline plots:
//
//  1. tiled CO (FaSTCC) vs. the untiled CO of Algorithm 4;
//  2. forced-dense vs. forced-sparse accumulators on a dense-output and an
//     ultra-sparse-output workload (extends Table 3);
//  3. the CI scheme on CSF vs. on hash tables;
//  4. open-addressing vs. chaining input-table construction (the paper's
//     Section 6.4 discussion of Sparta's fast chained insertions).
func RunAblations(cfg Config) error {
	w := cfg.writer()
	fmt.Fprintln(w, "Ablations")
	fmt.Fprintln(w)

	// Workloads: a dense-output case and a sparse-output case.
	denseCase, err := CaseByID("chicago-01")
	if err != nil {
		return err
	}
	sparseCase, err := CaseByID("nips-2")
	if err != nil {
		return err
	}

	// 1. Tiled vs untiled CO (sequential comparison; untiled is sequential).
	fmt.Fprintln(w, "A1: tiled CO (FaSTCC, 1 thread) vs untiled CO (Algorithm 4)")
	t1 := newTable("contraction", "untiled(s)", "tiled(s)", "ratio")
	for _, cs := range []Case{denseCase, sparseCase} {
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			return err
		}
		seqCfg := cfg
		seqCfg.Threads = 1
		_, untiledD, err := runBaseline(seqCfg, baseUntiled, l, r, spec, nil)
		if err != nil {
			return err
		}
		_, _, tiledD, err := runFastCC(seqCfg, l, r, spec)
		if err != nil {
			return err
		}
		t1.addf("%s|%s|%s|%.2fx", cs.ID, secs(untiledD), secs(tiledD),
			untiledD.Seconds()/tiledD.Seconds())
	}
	cfg.print(t1)
	fmt.Fprintln(w)

	// 2. Accumulator ablation.
	fmt.Fprintln(w, "A2: forced accumulator kind (model would choose per Algorithm 7)")
	t2 := newTable("contraction", "dense(s)", "sparse(s)", "model chooses")
	for _, cs := range []Case{denseCase, sparseCase} {
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			return err
		}
		dec, err := decideFor(cfg, l, r, spec)
		if err != nil {
			return err
		}
		denseS := "DNF"
		if grid, err := denseGrid(l, r, spec, dec.DenseT); err == nil && grid <= 32<<20 {
			_, _, d, err := runFastCC(cfg, l, r, spec, fastcc.WithAccumulator(fastcc.AccumDense))
			if err != nil {
				return err
			}
			denseS = secs(d)
		}
		_, _, dS, err := runFastCC(cfg, l, r, spec, fastcc.WithAccumulator(fastcc.AccumSparse))
		if err != nil {
			return err
		}
		t2.addf("%s|%s|%s|%s", cs.ID, denseS, secs(dS), dec.Kind.String())
	}
	cfg.print(t2)
	fmt.Fprintln(w)

	// 3. CI on CSF vs CI on hash tables (small uniform workload: CI is
	// quadratic in the external extents).
	fmt.Fprintln(w, "A3: CI scheme on CSF (TACO) vs on hash tables")
	lm, err := gen.UniformMatrix(400, 64, 3000, cfg.Seed, gen.Options{})
	if err != nil {
		return err
	}
	rm, err := gen.UniformMatrix(400, 64, 3000, cfg.Seed+1, gen.Options{})
	if err != nil {
		return err
	}
	lt := matrixAsTensor(lm)
	rt := matrixAsTensor(rm)
	spec2 := coo.Spec{CtrLeft: []int{1}, CtrRight: []int{1}}
	_, csfD, err := runBaseline(cfg, baseTaco, lt, rt, spec2, nil)
	if err != nil {
		return err
	}
	_, hashD, err := runBaseline(cfg, baseHashCI, lt, rt, spec2, nil)
	if err != nil {
		return err
	}
	t3 := newTable("variant", "time(s)")
	t3.addf("csf-ci|%s", secs(csfD))
	t3.addf("hash-ci|%s", secs(hashD))
	cfg.print(t3)
	fmt.Fprintln(w)

	// 4. Input-table construction: open addressing vs chaining.
	fmt.Fprintln(w, "A4: input-table build, open addressing vs chaining (1M inserts)")
	big, err := gen.UniformMatrix(1<<20, 1<<16, 1_000_000, cfg.Seed, gen.Options{})
	if err != nil {
		return err
	}
	oaD, err := timeIt(cfg, func() error {
		t := hashtable.NewSliceTable(1024)
		for k := range big.Val {
			t.Insert(big.Ctr[k], uint32(big.Ext[k]&0xFFFFFFFF), big.Val[k])
		}
		return nil
	})
	if err != nil {
		return err
	}
	chD, err := timeIt(cfg, func() error {
		t := chainhash.New(1024)
		for k := range big.Val {
			t.Insert(big.Ctr[k], big.Ext[k], big.Val[k])
		}
		return nil
	})
	if err != nil {
		return err
	}
	t4 := newTable("table", "build(s)")
	t4.addf("open-addressing|%s", secs(oaD))
	t4.addf("chaining|%s", secs(chD))
	cfg.print(t4)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Chaining inserts cheaply but loses lookup locality; open addressing")
	fmt.Fprintln(w, "pays resize costs at insertion (the Vast/Uber discussion, Section 6.4).")
	fmt.Fprintln(w)

	// 5. Sparse accumulator probing scheme: linear vs Robin Hood (the
	// improved-hashing direction of Feng et al., Section 7.2).
	fmt.Fprintln(w, "A5: sparse accumulator upserts, linear vs Robin Hood probing (2M upserts)")
	keys := make([]uint64, 2_000_000)
	rg := gen.NewRNG(cfg.Seed)
	for i := range keys {
		keys[i] = rg.Uint64() % (1 << 21)
	}
	linD, err := timeIt(cfg, func() error {
		a := accum.NewSparse(1 << 18)
		for _, k := range keys {
			a.Upsert(uint32(k>>10), uint32(k&1023), 1)
		}
		return nil
	})
	if err != nil {
		return err
	}
	robD, err := timeIt(cfg, func() error {
		a := accum.NewSparseRobin(1 << 18)
		for _, k := range keys {
			a.Upsert(uint32(k>>10), uint32(k&1023), 1)
		}
		return nil
	})
	if err != nil {
		return err
	}
	t5 := newTable("probing", "time(s)")
	t5.addf("linear|%s", secs(linD))
	t5.addf("robin-hood|%s", secs(robD))
	cfg.print(t5)
	fmt.Fprintln(w)

	// 6. CM workspace kind: Sparta's sparse workspace vs the dense-array
	// workspace option of Section 3.2.
	fmt.Fprintln(w, "A6: CM scheme workspace, sparse (Sparta) vs dense 1D array (Section 3.2)")
	l6, r6, spec6, err := denseCase.Load(cfg)
	if err != nil {
		return err
	}
	_, cmSparseD, err := runBaseline(cfg, baseSparta, l6, r6, spec6, nil)
	if err != nil {
		return err
	}
	_, cmDenseD, err := runBaseline(cfg, baseCMDense, l6, r6, spec6, nil)
	if err != nil {
		return err
	}
	t6 := newTable("workspace", "time(s)")
	t6.addf("sparse (hash)|%s", secs(cmSparseD))
	t6.addf("dense 1D array|%s", secs(cmDenseD))
	cfg.print(t6)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "A dense CM workspace wins when R fits in cache; it is infeasible for")
	fmt.Fprintln(w, "the huge linearized R of high-order outputs — the same trade FaSTCC's")
	fmt.Fprintln(w, "tiled accumulators resolve per-tile.")
	fmt.Fprintln(w)

	// 7. Input-tile representation: hash tables (the paper) vs radix-sorted
	// grouped arrays with merge co-iteration.
	fmt.Fprintln(w, "A7: input-tile representation, hash tables vs sorted arrays")
	t7 := newTable("contraction", "hash(s)", "sorted(s)")
	for _, cs := range []Case{denseCase, sparseCase} {
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			return err
		}
		_, _, hashD, err := runFastCC(cfg, l, r, spec, fastcc.WithInputRep(fastcc.RepHash))
		if err != nil {
			return err
		}
		_, _, sortD, err := runFastCC(cfg, l, r, spec, fastcc.WithInputRep(fastcc.RepSorted))
		if err != nil {
			return err
		}
		t7.addf("%s|%s|%s", cs.ID, secs(hashD), secs(sortD))
	}
	cfg.print(t7)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Sorted tiles pay a radix sort per tile at build but co-iterate without")
	fmt.Fprintln(w, "hashing; hash tiles insert in one pass and probe per key.")
	return nil
}

// matrixAsTensor converts a matrixized operand back to a 2-mode tensor.
func matrixAsTensor(m *coo.Matrix) *coo.Tensor {
	t := coo.New([]uint64{m.ExtDim, m.CtrDim}, m.NNZ())
	t.Coords[0] = append(t.Coords[0], m.Ext...)
	t.Coords[1] = append(t.Coords[1], m.Ctr...)
	t.Vals = append(t.Vals, m.Val...)
	return t
}
