package experiments

import (
	"fmt"

	"fastcc"
)

// RunFig4 reproduces paper Figure 4: execution time as a function of tile
// size for every benchmark contraction. The characteristic U-shape — too
// small pays tile-grid overhead and repeated input traffic, too large
// spills the accumulator out of cache — motivates the model's tile-size
// selection. suite selects "frostt" (Fig. 4a), "qc" (Fig. 4b) or "all".
func RunFig4(cfg Config, suite string) error {
	w := cfg.writer()
	fmt.Fprintf(w, "Figure 4 (%s): execution time vs tile size (threads=%d)\n\n", suite, cfg.Threads)

	for _, cs := range CatalogSuite(suite) {
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			return err
		}
		dec, err := decideFor(cfg, l, r, spec)
		if err != nil {
			return err
		}
		t := newTable("tile", "time(s)", "tasks", "model?")
		for _, tile := range sweepTileSizes(dec) {
			_, stats, d, err := runFastCC(cfg, l, r, spec,
				fastcc.WithTileSize(tile, tile), fastcc.WithAccumulator(dec.Kind))
			if err != nil {
				return fmt.Errorf("%s tile=%d: %w", cs.ID, tile, err)
			}
			mark := ""
			if tile == dec.TileL {
				mark = "<= model"
			}
			t.addf("%d|%s|%d|%s", tile, secs(d), stats.Tasks, mark)
		}
		fmt.Fprintf(w, "%s (accumulator=%s):\n", cs.ID, dec.Kind)
		cfg.print(t)
		fmt.Fprintln(w)
	}
	return nil
}
