package experiments

import (
	"fmt"
	"time"

	"fastcc"
	"fastcc/internal/baselines"
	"fastcc/internal/coo"
	"fastcc/internal/metrics"
)

// runFastCC times a full FaSTCC contraction (linearize → contract →
// delinearize) and returns the output of the last repeat.
func runFastCC(cfg Config, l, r *coo.Tensor, spec coo.Spec, extra ...fastcc.Option) (*coo.Tensor, *fastcc.Stats, time.Duration, error) {
	var out *coo.Tensor
	var stats *fastcc.Stats
	d, err := timeIt(cfg, func() error {
		var err error
		out, stats, err = fastcc.Contract(l, r, spec, fastccOpts(cfg, extra...)...)
		return err
	})
	return out, stats, d, err
}

// baselineKind names a baseline engine.
type baselineKind string

const (
	baseSparta  baselineKind = "sparta-cm"
	baseCMDense baselineKind = "cm-dense-ws"
	baseTaco    baselineKind = "taco-ci"
	baseHashCI  baselineKind = "hash-ci"
	baseUntiled baselineKind = "untiled-co"
)

// runBaseline times a baseline through the same full pipeline FaSTCC is
// measured on: mode-group linearization, contraction, de-linearization.
func runBaseline(cfg Config, kind baselineKind, l, r *coo.Tensor, spec coo.Spec, ctr *metrics.Counters) (*coo.Tensor, time.Duration, error) {
	var out *coo.Tensor
	d, err := timeIt(cfg, func() error {
		extL := coo.ExternalModes(l.Order(), spec.CtrLeft)
		extR := coo.ExternalModes(r.Order(), spec.CtrRight)
		lm, err := l.Matrixize(extL, spec.CtrLeft)
		if err != nil {
			return err
		}
		rm, err := r.Matrixize(extR, spec.CtrRight)
		if err != nil {
			return err
		}
		var res *baselines.Result
		switch kind {
		case baseSparta:
			res, err = baselines.SpartaCM(lm, rm, cfg.Threads, ctr)
		case baseCMDense:
			res, err = baselines.SpartaCMDenseWS(lm, rm, cfg.Threads, ctr)
		case baseTaco:
			res, err = baselines.TacoCI(lm, rm, ctr)
		case baseHashCI:
			res, err = baselines.HashCI(lm, rm, ctr)
		case baseUntiled:
			res, err = baselines.UntiledCO(lm, rm, ctr)
		default:
			err = fmt.Errorf("experiments: unknown baseline %q", kind)
		}
		if err != nil {
			return err
		}
		lDims := make([]uint64, len(extL))
		for i, m := range extL {
			lDims[i] = l.Dims[m]
		}
		rDims := make([]uint64, len(extR))
		for i, m := range extR {
			rDims[i] = r.Dims[m]
		}
		out, err = coo.FromPairs(res.L, res.R, res.V, lDims, rDims)
		return err
	})
	return out, d, err
}

// verifyAgainst compares two engine outputs with a relative tolerance
// suited to differing accumulation orders.
func verifyAgainst(id string, a, b *coo.Tensor) error {
	if !coo.ApproxEqual(a, b, 1e-9) {
		return fmt.Errorf("experiments: %s: engines disagree (%d vs %d nnz)", id, a.NNZ(), b.NNZ())
	}
	return nil
}

// denseFeasible estimates whether a forced-dense run is tractable: the
// paper reports DNF for NIPS-2 with a dense accumulator, where tile-pair
// tasks far outnumber useful work. We refuse when the task grid exceeds
// the budget.
func denseFeasible(stats fastcc.Stats) bool {
	return int64(stats.NL)*int64(stats.NR) <= 32<<20
}

// denseGrid predicts the dense tile-grid size without running.
func denseGrid(l, r *coo.Tensor, spec coo.Spec, denseT uint64) (int64, error) {
	extL := coo.ExternalModes(l.Order(), spec.CtrLeft)
	extR := coo.ExternalModes(r.Order(), spec.CtrRight)
	gather := func(dims []uint64, modes []int) []uint64 {
		out := make([]uint64, len(modes))
		for k, m := range modes {
			out[k] = dims[m]
		}
		return out
	}
	lDim, err := coo.LinearSize(gather(l.Dims, extL))
	if err != nil {
		return 0, fmt.Errorf("experiments: left output extent: %w", err)
	}
	rDim, err := coo.LinearSize(gather(r.Dims, extR))
	if err != nil {
		return 0, fmt.Errorf("experiments: right output extent: %w", err)
	}
	if denseT == 0 {
		return 0, fmt.Errorf("experiments: zero dense tile")
	}
	nl := int64((lDim + denseT - 1) / denseT)
	nr := int64((rDim + denseT - 1) / denseT)
	return nl * nr, nil
}
