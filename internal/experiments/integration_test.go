package experiments

import (
	"strings"
	"testing"

	"fastcc"
	"fastcc/internal/coo"
)

// TestAllEnginesAgreeOnCatalog is the repo's widest integration test: for
// every one of the 16 evaluation contractions (at tiny scale), the FaSTCC
// engine in four configurations (hash/sorted representation × dense/sparse
// accumulator), the Sparta-CM baseline and the TACO-CI baseline must all
// produce the same tensor.
func TestAllEnginesAgreeOnCatalog(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	for _, cs := range Catalog() {
		cs := cs
		t.Run(cs.ID, func(t *testing.T) {
			l, r, spec, err := cs.Load(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := runBaseline(cfg, baseSparta, l, r, spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			taco, _, err := runBaseline(cfg, baseTaco, l, r, spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !coo.ApproxEqual(want, taco, 1e-9) {
				t.Fatal("sparta vs taco mismatch")
			}
			variants := []struct {
				name string
				opts []fastcc.Option
			}{
				{"hash-dense", []fastcc.Option{fastcc.WithInputRep(fastcc.RepHash), fastcc.WithAccumulator(fastcc.AccumDense)}},
				{"hash-sparse", []fastcc.Option{fastcc.WithInputRep(fastcc.RepHash), fastcc.WithAccumulator(fastcc.AccumSparse)}},
				{"sorted-dense", []fastcc.Option{fastcc.WithInputRep(fastcc.RepSorted), fastcc.WithAccumulator(fastcc.AccumDense)}},
				{"sorted-sparse", []fastcc.Option{fastcc.WithInputRep(fastcc.RepSorted), fastcc.WithAccumulator(fastcc.AccumSparse)}},
			}
			for _, v := range variants {
				if strings.HasSuffix(v.name, "dense") {
					dec, err := decideFor(cfg, l, r, spec)
					if err != nil {
						t.Fatal(err)
					}
					if grid, err := denseGrid(l, r, spec, dec.DenseT); err != nil || grid > 1<<22 {
						continue // dense accumulator infeasible for this case at this scale
					}
				}
				got, _, _, err := runFastCC(cfg, l, r, spec, v.opts...)
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				if !coo.ApproxEqual(got, want, 1e-9) {
					t.Fatalf("%s disagrees with sparta (%d vs %d nnz)", v.name, got.NNZ(), want.NNZ())
				}
			}
		})
	}
}
