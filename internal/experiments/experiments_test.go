package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"fastcc/internal/model"
)

// tinyConfig is small enough that every experiment finishes in seconds.
func tinyConfig(buf *strings.Builder) Config {
	cfg := Default()
	cfg.ScaleFROSTT = 0.0005
	cfg.ScaleQC = 0.02
	cfg.Threads = 2
	cfg.Platform = model.Desktop8
	cfg.Verify = true
	cfg.Out = buf
	return cfg
}

func TestCatalogComplete(t *testing.T) {
	cases := Catalog()
	if len(cases) != 16 {
		t.Fatalf("catalog has %d cases, want 16 (10 FROSTT + 6 QC)", len(cases))
	}
	wantIDs := []string{
		"nips-2", "nips-23", "nips-013",
		"chicago-0", "chicago-01", "chicago-123",
		"vast-01", "vast-014", "uber-02", "uber-123",
		"guanine-ovov", "guanine-vvoo", "guanine-vvov",
		"caffeine-ovov", "caffeine-vvoo", "caffeine-vvov",
	}
	have := map[string]bool{}
	for _, c := range cases {
		have[c.ID] = true
	}
	for _, id := range wantIDs {
		if !have[id] {
			t.Fatalf("missing case %q", id)
		}
	}
	if len(CatalogSuite("frostt")) != 10 || len(CatalogSuite("qc")) != 6 {
		t.Fatalf("suite split wrong: %d/%d", len(CatalogSuite("frostt")), len(CatalogSuite("qc")))
	}
	if _, err := CaseByID("nope"); err == nil {
		t.Fatal("unknown case should error")
	}
}

func TestCasesLoadAndValidate(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	for _, cs := range Catalog() {
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cs.ID, err)
		}
		if err := spec.Validate(l, r); err != nil {
			t.Fatalf("%s: %v", cs.ID, err)
		}
		if l.NNZ() == 0 || r.NNZ() == 0 {
			t.Fatalf("%s: empty operands at tiny scale", cs.ID)
		}
	}
}

func TestRunTable1OutputShape(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	if err := RunTable1(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "CI", "CM", "CO", "queries", "ws_words", "balanced"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable2OutputShape(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	if err := RunTable2(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"nips", "chicago", "vast", "uber", "2482x2862x14036x17"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable3OutputShape(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	if err := RunTable3(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"chicago-0", "nips-2", "guanine-vvov", "D/S"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig2Verifies(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	// Verify=true makes Fig2 cross-check FaSTCC against Sparta per case.
	if err := RunFig2(cfg, "qc"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "caffeine-vvov") {
		t.Fatalf("missing qc rows:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "chicago") {
		t.Fatal("frostt rows in qc suite")
	}
}

func TestRunFig3OutputShape(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	cfg.Threads = 2
	if err := RunFig3(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T=1", "T=2", "chicago-0", "1.00x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig4OutputShape(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	if err := RunFig4(cfg, "qc"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<= model") {
		t.Fatalf("model tile not marked:\n%s", out)
	}
}

func TestRunFig5OutputShape(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	if err := RunFig5(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"taco-ci", "speedup", "nips-2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAblations(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	if err := RunAblations(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"A1", "A2", "A3", "A4", "untiled", "open-addressing", "chaining"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDispatch(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	if err := Run(cfg, "table2", "all"); err != nil {
		t.Fatal(err)
	}
	if err := Run(cfg, "nope", "all"); err == nil {
		t.Fatal("unknown experiment should error")
	}
	names := Names()
	if len(names) != 14 {
		t.Fatalf("Names() = %v", names)
	}
	if err := Run(cfg, "model", "all"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "meas/pred") {
		t.Fatal("model experiment output missing")
	}
}

func TestRunReuseEmitsValidJSON(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	if err := RunReuse(cfg); err != nil {
		t.Fatal(err)
	}
	var report ReuseReport
	if err := json.Unmarshal([]byte(buf.String()), &report); err != nil {
		t.Fatalf("reuse output is not valid JSON: %v", err)
	}
	if len(report.Cases) == 0 {
		t.Fatal("reuse report has no cases")
	}
	for _, c := range report.Cases {
		if !c.ShardReused || c.WarmBuildSeconds != 0 {
			t.Fatalf("case %s: warm run missed the shard cache: %+v", c.Case, c)
		}
	}
	if report.GeomeanSpeedup <= 0 {
		t.Fatalf("geomean speedup = %v", report.GeomeanSpeedup)
	}
}

func TestRunBuildScaleEmitsValidJSON(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	cfg.Threads = 2 // ladder [1, 2] keeps the smoke run cheap
	if err := RunBuildScale(cfg); err != nil {
		t.Fatal(err)
	}
	var report BuildScaleReport
	if err := json.Unmarshal([]byte(buf.String()), &report); err != nil {
		t.Fatalf("buildscale output is not valid JSON: %v", err)
	}
	if report.MaxThreads != 2 || len(report.Cases) == 0 {
		t.Fatalf("report shape: max_threads=%d cases=%d", report.MaxThreads, len(report.Cases))
	}
	for _, c := range report.Cases {
		if len(c.Points) != 2 || c.Points[0].Threads != 1 || c.Points[1].Threads != 2 {
			t.Fatalf("case %s: ladder %+v", c.Case, c.Points)
		}
		for _, p := range c.Points {
			if p.BuildSeconds <= 0 {
				t.Fatalf("case %s: no build time at %d threads", c.Case, p.Threads)
			}
		}
		if !c.ShardReused || c.WarmBuildSeconds != 0 {
			t.Fatalf("case %s: warm run missed the shard cache: %+v", c.Case, c)
		}
		if c.NNZ <= 0 || c.BuildSpeedupAtMax <= 0 {
			t.Fatalf("case %s: %+v", c.Case, c)
		}
	}
	if report.GeomeanWarmSeconds <= 0 || report.GeomeanColdSeconds <= 0 {
		t.Fatalf("geomeans: %+v", report)
	}
}

func TestBuildScaleLadder(t *testing.T) {
	for _, c := range []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{6, []int{1, 2, 4, 6}},
		{8, []int{1, 2, 4, 8}},
	} {
		got := buildScaleLadder(c.max)
		if len(got) != len(c.want) {
			t.Fatalf("ladder(%d) = %v want %v", c.max, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ladder(%d) = %v want %v", c.max, got, c.want)
			}
		}
	}
}

func TestDenseGridPrediction(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	cs, err := CaseByID("chicago-0")
	if err != nil {
		t.Fatal(err)
	}
	l, r, spec, err := cs.Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := denseGrid(l, r, spec, 512)
	if err != nil {
		t.Fatal(err)
	}
	if grid < 1 {
		t.Fatalf("grid=%d", grid)
	}
	if _, err := denseGrid(l, r, spec, 0); err == nil {
		t.Fatal("zero tile should error")
	}
}
