package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestRunHotpathEmitsValidJSON is the tiny-scale smoke of the microkernel
// experiment: every (rep, accum) combination over the QC suite, asserting the
// report parses, covers all four kernels, and that every case came back
// bit-identical (RunHotpath itself errors on divergence — this re-checks the
// serialized flags so a report with a silent false can't be produced).
func TestRunHotpathEmitsValidJSON(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	if err := RunHotpath(cfg, "qc"); err != nil {
		t.Fatal(err)
	}
	var report HotpathReport
	if err := json.Unmarshal([]byte(buf.String()), &report); err != nil {
		t.Fatalf("hotpath output is not valid JSON: %v", err)
	}
	checkHotpathReport(t, report)
	if len(report.Combos) != len(hotpathCombos) {
		t.Fatalf("report has %d combos, want %d", len(report.Combos), len(hotpathCombos))
	}
	wantCases := len(CatalogSuite("qc")) * len(hotpathCombos)
	if len(report.Cases) != wantCases {
		t.Fatalf("report has %d cases, want %d", len(report.Cases), wantCases)
	}
}

// TestBenchHotpathArtifact validates the checked-in BENCH_hotpath.json:
// strict schema (no unknown fields), all cases bit-identical, and the
// headline criterion — the hash×dense microkernel at or above a 1.2x
// contract-phase geomean over the generic loop.
func TestBenchHotpathArtifact(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_hotpath.json")
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var report HotpathReport
	if err := dec.Decode(&report); err != nil {
		t.Fatalf("BENCH_hotpath.json does not match the HotpathReport schema: %v", err)
	}
	checkHotpathReport(t, report)
	for _, c := range report.Combos {
		if c.Rep == "hash" && c.Accum == "dense" && c.GeomeanSpeedup < 1.2 {
			t.Fatalf("hash-dense geomean %.3f below the 1.2x acceptance bar", c.GeomeanSpeedup)
		}
	}
}

// checkHotpathReport enforces the invariants shared by fresh runs and the
// checked-in artifact.
func checkHotpathReport(t *testing.T, report HotpathReport) {
	t.Helper()
	if len(report.Combos) == 0 || len(report.Cases) == 0 {
		t.Fatalf("report shape: %d combos, %d cases", len(report.Combos), len(report.Cases))
	}
	seen := map[string]bool{}
	for _, c := range report.Combos {
		seen[c.Rep+"-"+c.Accum] = true
		if c.GeomeanSpeedup <= 0 {
			t.Fatalf("combo %s-%s: geomean %v", c.Rep, c.Accum, c.GeomeanSpeedup)
		}
	}
	for _, k := range []string{"hash-dense", "hash-sparse", "sorted-dense", "sorted-sparse"} {
		if !seen[k] {
			t.Fatalf("combo %s missing from report", k)
		}
	}
	for _, c := range report.Cases {
		if !c.BitIdentical {
			t.Fatalf("case %s %s: kernel output not bit-identical", c.Case, c.Kernel)
		}
		if c.GenericSeconds <= 0 || c.KernelSeconds <= 0 {
			t.Fatalf("case %s %s: non-positive timings %+v", c.Case, c.Kernel, c)
		}
		if c.Rep == "hash" && c.ProbeBatches <= 0 {
			t.Fatalf("case %s %s: hash kernel reported no probe batches", c.Case, c.Kernel)
		}
		if c.Rep == "sorted" && c.ProbeBatches != 0 {
			t.Fatalf("case %s %s: sorted kernel reported probe batches", c.Case, c.Kernel)
		}
	}
}
