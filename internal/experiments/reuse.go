package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"fastcc"
)

// ReuseResult is one case of the prepared-operand amortization experiment,
// serialized into BENCH_reuse.json.
type ReuseResult struct {
	Case string `json:"case"`
	// ColdSeconds is a full fastcc.Contract: linearize + build + contract.
	ColdSeconds float64 `json:"cold_seconds"`
	// WarmSeconds is fastcc.ContractPrepared against a *Sharded whose tile
	// shard is already cached: the contract stage only.
	WarmSeconds float64 `json:"warm_seconds"`
	// WarmBuildSeconds is the warm run's reported Stats.Build (must be 0).
	WarmBuildSeconds float64 `json:"warm_build_seconds"`
	// ShardReused is the warm run's Stats.ShardReused (must be true).
	ShardReused bool    `json:"shard_reused"`
	Speedup     float64 `json:"speedup"`
}

// ReuseReport is the full experiment output: per-case comparisons plus the
// geometric-mean speedup of the warm path over the cold path.
type ReuseReport struct {
	Cases          []ReuseResult `json:"cases"`
	GeomeanSpeedup float64       `json:"geomean_speedup"`
}

// RunReuse measures what the prepared-operand API amortizes: for each
// FROSTT-shaped self-contraction it times the cold path (Contract from the
// raw tensor, re-linearizing and re-sharding every call) against the warm
// path (ContractPrepared on a cached *Sharded), and emits the comparison as
// JSON. The warm runs must report Stats.Build == 0 with ShardReused set —
// that is the acceptance contract for the shard cache.
func RunReuse(cfg Config) error {
	var report ReuseReport
	logSum, logN := 0.0, 0
	for _, cs := range Catalog() {
		if cs.Suite != "frostt" {
			continue
		}
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			return err
		}
		res, err := measureReuse(cfg, cs.ID, l, r, spec)
		if err != nil {
			return fmt.Errorf("reuse %s: %w", cs.ID, err)
		}
		report.Cases = append(report.Cases, res)
		if res.Speedup > 0 {
			logSum += math.Log(res.Speedup)
			logN++
		}
	}
	if logN > 0 {
		report.GeomeanSpeedup = math.Exp(logSum / float64(logN))
	}
	enc := json.NewEncoder(cfg.writer())
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

func measureReuse(cfg Config, id string, l, r *fastcc.Tensor, spec fastcc.Spec) (ReuseResult, error) {
	opts := fastccOpts(cfg)

	cold := time.Duration(0)
	for i := 0; i < cfg.repeats(); i++ {
		t0 := time.Now()
		if _, _, err := fastcc.Contract(l, r, spec, opts...); err != nil {
			return ReuseResult{}, err
		}
		if d := time.Since(t0); i == 0 || d < cold {
			cold = d
		}
	}

	// FROSTT cases are self-contractions (l == r), so one Preshard covers
	// both sides; a general pair preshards each.
	ls, err := fastcc.Preshard(l, spec.CtrLeft, opts...)
	if err != nil {
		return ReuseResult{}, err
	}
	rs := ls
	if r != l {
		if rs, err = fastcc.Preshard(r, spec.CtrRight, opts...); err != nil {
			return ReuseResult{}, err
		}
	}
	// First prepared run builds the model-chosen tile shard into the cache.
	if _, _, err := fastcc.ContractPrepared(ls, rs, opts...); err != nil {
		return ReuseResult{}, err
	}
	warm := time.Duration(0)
	var warmStats *fastcc.Stats
	for i := 0; i < cfg.repeats(); i++ {
		t0 := time.Now()
		_, st, err := fastcc.ContractPrepared(ls, rs, opts...)
		if err != nil {
			return ReuseResult{}, err
		}
		if d := time.Since(t0); i == 0 || d < warm {
			warm, warmStats = d, st
		}
	}

	res := ReuseResult{
		Case:             id,
		ColdSeconds:      cold.Seconds(),
		WarmSeconds:      warm.Seconds(),
		WarmBuildSeconds: warmStats.Build.Seconds(),
		ShardReused:      warmStats.ShardReused,
	}
	if warm > 0 {
		res.Speedup = cold.Seconds() / warm.Seconds()
	}
	if !warmStats.ShardReused || warmStats.Build != 0 {
		return res, fmt.Errorf("warm run did not hit the shard cache: %+v", warmStats)
	}
	return res, nil
}
