package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"fastcc"
	"fastcc/internal/coo"
	"fastcc/internal/model"
)

// HotpathResult is one (case, combo) comparison of the specialized tile
// microkernel against the generic co-iteration loop, contract phase only
// (the build phase is identical — both run over the same warm shards).
type HotpathResult struct {
	Case  string `json:"case"`
	Rep   string `json:"rep"`
	Accum string `json:"accum"`
	// Kernel is the specialized kernel the run resolved to.
	Kernel string `json:"kernel"`
	// GenericSeconds / KernelSeconds are the minimum contract-phase times
	// over the configured repeats.
	GenericSeconds float64 `json:"generic_seconds"`
	KernelSeconds  float64 `json:"kernel_seconds"`
	Speedup        float64 `json:"speedup"`
	// BitIdentical reports that the specialized kernel reproduced the
	// generic loop's output exactly (same sorted coordinates, same float64
	// bits) — the experiment fails if any case is false.
	BitIdentical bool `json:"bit_identical"`
	// Probe-batch observability of the specialized run (hash kernels only;
	// zero for sorted kernels, which probe nothing).
	ProbeBatches int64   `json:"probe_batches"`
	ProbeHitRate float64 `json:"probe_hit_rate"`
}

// HotpathCombo summarizes one (rep, accum) combination across cases.
type HotpathCombo struct {
	Rep            string  `json:"rep"`
	Accum          string  `json:"accum"`
	Kernel         string  `json:"kernel"`
	GeomeanSpeedup float64 `json:"geomean_speedup"`
}

// HotpathReport is the full -exp hotpath output, serialized into
// BENCH_hotpath.json.
type HotpathReport struct {
	Combos []HotpathCombo  `json:"combos"`
	Cases  []HotpathResult `json:"cases"`
}

// hotpathCombos enumerates the microkernel family.
var hotpathCombos = []struct {
	rep InputRepChoice
	acc model.AccumKind
}{
	{InputRepChoice{fastcc.RepHash, "hash"}, model.AccumDense},
	{InputRepChoice{fastcc.RepHash, "hash"}, model.AccumSparse},
	{InputRepChoice{fastcc.RepSorted, "sorted"}, model.AccumDense},
	{InputRepChoice{fastcc.RepSorted, "sorted"}, model.AccumSparse},
}

// InputRepChoice pairs a representation with its report label.
type InputRepChoice struct {
	Rep  fastcc.InputRep
	Name string
}

// RunHotpath is the microkernel speed experiment: for every (rep, accum)
// combination it contracts the selected suite twice over the same warm shards
// — once with the generic loop forced (WithKernel(KernelGeneric)), once
// with the specialized kernel — comparing contract-phase times and
// demanding bit-for-bit identical output. The two arms alternate within each
// repeat (GC fenced) so host-level drift lands on both alike. With
// cfg.ProfileDir set, each combination's measurement loop is captured as a
// CPU profile (hotpath_<rep>-<accum>.pprof) holding both inner loops for
// side-by-side inspection in pprof.
func RunHotpath(cfg Config, suite string) error {
	type loaded struct {
		id     string
		ls, rs *fastcc.Sharded
	}
	var report HotpathReport
	for _, combo := range hotpathCombos {
		kernel := model.SelectKernel(combo.rep.Rep == fastcc.RepSorted, combo.acc)
		comboOpts := fastccOpts(cfg,
			fastcc.WithInputRep(combo.rep.Rep),
			fastcc.WithAccumulator(combo.acc),
		)
		slug := combo.rep.Name + "-" + combo.acc.String()

		// Load and preshard every case once per combo; the first contraction
		// below warms the shard cache so both timing passes run Build-free.
		var cases []loaded
		for _, cs := range CatalogSuite(suite) {
			l, r, spec, err := cs.Load(cfg)
			if err != nil {
				return err
			}
			ls, err := fastcc.Preshard(l, spec.CtrLeft)
			if err != nil {
				return fmt.Errorf("hotpath %s: %w", cs.ID, err)
			}
			rs := ls
			if r != l {
				if rs, err = fastcc.Preshard(r, spec.CtrRight); err != nil {
					return fmt.Errorf("hotpath %s: %w", cs.ID, err)
				}
			}
			if _, _, err := fastcc.ContractPrepared(ls, rs, comboOpts...); err != nil {
				return fmt.Errorf("hotpath %s warm: %w", cs.ID, err)
			}
			cases = append(cases, loaded{cs.ID, ls, rs})
		}

		// Measure: paired, interleaved repeats — generic then specialized
		// within each repeat, GC fenced — so slow drift on the host (GC debt,
		// CPU contention) hits both arms alike instead of biasing whichever
		// pass ran second. Minimum contract-phase time per arm is reported.
		genOpts := append(append([]fastcc.Option{}, comboOpts...), fastcc.WithKernel(fastcc.KernelGeneric))
		krnOpts := append(append([]fastcc.Option{}, comboOpts...), fastcc.WithMetrics())
		err := withProfile(cfg, "hotpath_"+slug, func() error {
			for _, c := range cases {
				var genBest, krnBest float64
				var krnStats *fastcc.Stats
				var genOut, krnOut *fastcc.Tensor
				for rep := 0; rep < cfg.repeats(); rep++ {
					runtime.GC()
					gOut, gSt, err := fastcc.ContractPrepared(c.ls, c.rs, genOpts...)
					if err != nil {
						return fmt.Errorf("hotpath %s generic: %w", c.id, err)
					}
					if s := gSt.Contract.Seconds(); rep == 0 || s < genBest {
						genBest = s
					}
					genOut = gOut
					runtime.GC()
					kOut, kSt, err := fastcc.ContractPrepared(c.ls, c.rs, krnOpts...)
					if err != nil {
						return fmt.Errorf("hotpath %s kernel: %w", c.id, err)
					}
					if s := kSt.Contract.Seconds(); rep == 0 || s < krnBest {
						krnBest, krnStats = s, kSt
					}
					krnOut = kOut
				}
				if got := krnStats.Decision.Kernel; got != kernel {
					return fmt.Errorf("hotpath %s: resolved kernel %v, want %v", c.id, got, kernel)
				}
				res := HotpathResult{
					Case: c.id, Rep: combo.rep.Name, Accum: combo.acc.String(),
					Kernel:         kernel.String(),
					GenericSeconds: genBest,
					KernelSeconds:  krnBest,
					BitIdentical:   bitIdenticalTensors(genOut, krnOut),
					ProbeBatches:   krnStats.Counters.ProbeBatches,
				}
				if krnBest > 0 {
					res.Speedup = genBest / krnBest
				}
				if q := krnStats.Counters.Queries; q > 0 {
					res.ProbeHitRate = float64(krnStats.Counters.ProbeHits) / float64(q)
				}
				report.Cases = append(report.Cases, res)
			}
			return nil
		})
		if err != nil {
			return err
		}
		for _, c := range cases {
			c.ls.Drop()
			if c.rs != c.ls {
				c.rs.Drop()
			}
		}

		// Per-combo geomean over this combo's slice of the case list.
		logSum, logN := 0.0, 0
		for _, res := range report.Cases[len(report.Cases)-len(cases):] {
			if !res.BitIdentical {
				return fmt.Errorf("hotpath %s %s: specialized kernel diverged from the generic loop", res.Case, res.Kernel)
			}
			if res.Speedup > 0 {
				logSum += math.Log(res.Speedup)
				logN++
			}
		}
		sum := HotpathCombo{Rep: combo.rep.Name, Accum: combo.acc.String(), Kernel: kernel.String()}
		if logN > 0 {
			sum.GeomeanSpeedup = math.Exp(logSum / float64(logN))
		}
		report.Combos = append(report.Combos, sum)
	}
	enc := json.NewEncoder(cfg.writer())
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// bitIdenticalTensors reports whether two contraction outputs agree exactly:
// same sorted coordinates and identical float64 bit patterns.
func bitIdenticalTensors(a, b *fastcc.Tensor) bool {
	a.Sort()
	b.Sort()
	if !coo.Equal(a, b) {
		return false
	}
	for i := range a.Vals {
		if math.Float64bits(a.Vals[i]) != math.Float64bits(b.Vals[i]) {
			return false
		}
	}
	return true
}

// withProfile runs fn under a CPU profile written to cfg.ProfileDir/name.pprof
// when a profile directory is configured, or plain otherwise.
func withProfile(cfg Config, name string, fn func() error) error {
	if cfg.ProfileDir == "" {
		return fn()
	}
	if err := os.MkdirAll(cfg.ProfileDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(cfg.ProfileDir, name+".pprof"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		return fmt.Errorf("experiments: start profile %s: %w", name, err)
	}
	t0 := time.Now()
	ferr := fn()
	pprof.StopCPUProfile()
	// Stderr, not cfg.writer(): the report writer carries pure JSON and a
	// redirected `fastcc-bench ... > out.json` must stay parseable.
	fmt.Fprintf(os.Stderr, "# profile %s.pprof captured (%.2fs)\n", name, time.Since(t0).Seconds())
	return ferr
}
