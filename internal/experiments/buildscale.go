package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"time"

	"fastcc"
)

// BuildScalePoint is one (thread count, build time) sample of the Build
// phase scaling sweep.
type BuildScalePoint struct {
	Threads      int     `json:"threads"`
	BuildSeconds float64 `json:"build_seconds"`
}

// BuildScaleCase is one contraction's build-scaling ladder plus its
// cold/warm contract comparison at the full thread count.
type BuildScaleCase struct {
	Case string `json:"case"`
	NNZ  int    `json:"nnz"`
	// Points is the thread ladder (1, 2, 4, ... max). Under the seed's
	// scan-and-filter build, BuildSeconds grew with the thread count (total
	// reads O(workers x nnz)); the partitioned build must hold it flat or
	// falling at fixed nnz.
	Points []BuildScalePoint `json:"points"`
	// BuildSpeedupAtMax is build(1 thread) / build(max threads): >= 1 means
	// adding workers no longer makes the Build phase slower.
	BuildSpeedupAtMax float64 `json:"build_speedup_at_max"`
	// ColdSeconds is a full fastcc.Contract (linearize + build + contract);
	// WarmSeconds is ContractPrepared over cached shards (contract only).
	ColdSeconds      float64 `json:"cold_seconds"`
	WarmSeconds      float64 `json:"warm_seconds"`
	WarmBuildSeconds float64 `json:"warm_build_seconds"`
	ShardReused      bool    `json:"shard_reused"`
}

// BuildScaleReport is the full experiment output, serialized into
// BENCH_buildscale.json.
type BuildScaleReport struct {
	MaxThreads          int              `json:"max_threads"`
	Cases               []BuildScaleCase `json:"cases"`
	GeomeanBuildSpeedup float64          `json:"geomean_build_speedup"`
	GeomeanColdSeconds  float64          `json:"geomean_cold_seconds"`
	GeomeanWarmSeconds  float64          `json:"geomean_warm_seconds"`
}

// buildScaleLadder returns the thread counts to sweep: powers of two up to
// max, with max itself always included.
func buildScaleLadder(max int) []int {
	var ladder []int
	for th := 1; th < max; th *= 2 {
		ladder = append(ladder, th)
	}
	return append(ladder, max)
}

// RunBuildScale measures the Build phase against the worker count at fixed
// nnz — the acceptance check for the partitioned build, whose total read
// volume is O(nnz) regardless of workers, where the seed's scan-and-filter
// build read O(workers x nnz) and slowed down as cores were added — plus
// the cold/warm contract comparison at full thread count (the warm geomean
// guards against a contract-phase regression relative to BENCH_reuse.json).
func RunBuildScale(cfg Config) error {
	max := cfg.Threads
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}
	ladder := buildScaleLadder(max)

	report := BuildScaleReport{MaxThreads: max}
	logBuild, logCold, logWarm := 0.0, 0.0, 0.0
	n := 0
	for _, cs := range Catalog() {
		if cs.Suite != "frostt" {
			continue
		}
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			return err
		}
		res, err := measureBuildScale(cfg, cs.ID, ladder, l, r, spec)
		if err != nil {
			return fmt.Errorf("buildscale %s: %w", cs.ID, err)
		}
		report.Cases = append(report.Cases, res)
		if res.BuildSpeedupAtMax > 0 && res.ColdSeconds > 0 && res.WarmSeconds > 0 {
			logBuild += math.Log(res.BuildSpeedupAtMax)
			logCold += math.Log(res.ColdSeconds)
			logWarm += math.Log(res.WarmSeconds)
			n++
		}
	}
	if n > 0 {
		report.GeomeanBuildSpeedup = math.Exp(logBuild / float64(n))
		report.GeomeanColdSeconds = math.Exp(logCold / float64(n))
		report.GeomeanWarmSeconds = math.Exp(logWarm / float64(n))
	}
	enc := json.NewEncoder(cfg.writer())
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

func measureBuildScale(cfg Config, id string, ladder []int, l, r *fastcc.Tensor, spec fastcc.Spec) (BuildScaleCase, error) {
	res := BuildScaleCase{Case: id, NNZ: l.NNZ()}

	// Build ladder: a fresh Preshard per repeat (the shard cache would
	// otherwise absorb every measurement after the first); the first
	// prepared contraction reports the lazily built shard's Stats.Build.
	for _, th := range ladder {
		opts := []fastcc.Option{fastcc.WithThreads(th), fastcc.WithPlatform(cfg.Platform)}
		best := time.Duration(0)
		for i := 0; i < cfg.repeats(); i++ {
			ls, err := fastcc.Preshard(l, spec.CtrLeft, opts...)
			if err != nil {
				return res, err
			}
			rs := ls
			if r != l {
				if rs, err = fastcc.Preshard(r, spec.CtrRight, opts...); err != nil {
					return res, err
				}
			}
			_, st, err := fastcc.ContractPrepared(ls, rs, opts...)
			if err != nil {
				return res, err
			}
			if st.Build <= 0 {
				return res, fmt.Errorf("cold prepared run reported no build time: %+v", st)
			}
			if i == 0 || st.Build < best {
				best = st.Build
			}
		}
		res.Points = append(res.Points, BuildScalePoint{Threads: th, BuildSeconds: best.Seconds()})
	}
	if first, last := res.Points[0].BuildSeconds, res.Points[len(res.Points)-1].BuildSeconds; last > 0 {
		res.BuildSpeedupAtMax = first / last
	}

	// Cold/warm comparison at full thread count, mirroring the reuse
	// experiment so the two artifacts stay comparable.
	opts := fastccOpts(cfg)
	cold, err := timeIt(cfg, func() error {
		_, _, err := fastcc.Contract(l, r, spec, opts...)
		return err
	})
	if err != nil {
		return res, err
	}
	ls, err := fastcc.Preshard(l, spec.CtrLeft, opts...)
	if err != nil {
		return res, err
	}
	rs := ls
	if r != l {
		if rs, err = fastcc.Preshard(r, spec.CtrRight, opts...); err != nil {
			return res, err
		}
	}
	if _, _, err := fastcc.ContractPrepared(ls, rs, opts...); err != nil {
		return res, err
	}
	warm := time.Duration(0)
	var warmStats *fastcc.Stats
	for i := 0; i < cfg.repeats(); i++ {
		t0 := time.Now()
		_, st, err := fastcc.ContractPrepared(ls, rs, opts...)
		if err != nil {
			return res, err
		}
		if d := time.Since(t0); i == 0 || d < warm {
			warm, warmStats = d, st
		}
	}
	res.ColdSeconds = cold.Seconds()
	res.WarmSeconds = warm.Seconds()
	res.WarmBuildSeconds = warmStats.Build.Seconds()
	res.ShardReused = warmStats.ShardReused
	if !warmStats.ShardReused || warmStats.Build != 0 {
		return res, fmt.Errorf("warm run did not hit the shard cache: %+v", warmStats)
	}
	return res, nil
}
