package experiments

import (
	"fmt"
)

// RunPhases breaks FaSTCC's runtime into the paper's four steps per
// contraction (Section 4.2: hash-table construction, tile contraction +
// accumulation + drain, list concatenation) plus the linearization pre/post
// passes. This directly supports the paper's Section 6.4 explanation that
// Vast and Uber are bottlenecked on building HL_i/HR_j rather than on the
// contraction itself.
func RunPhases(cfg Config) error {
	w := cfg.writer()
	fmt.Fprintf(w, "Phase breakdown of the FaSTCC pipeline (threads=%d)\n\n", cfg.Threads)
	t := newTable("contraction", "total(s)", "linearize%", "build%", "contract%", "concat+delin%", "build-bound?")

	for _, cs := range Catalog() {
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			return err
		}
		_, stats, _, err := runFastCC(cfg, l, r, spec)
		if err != nil {
			return err
		}
		total := stats.Total.Seconds()
		if total <= 0 {
			continue
		}
		pct := func(s float64) float64 { return 100 * s / total }
		build := stats.Build.Seconds()
		note := ""
		if build > stats.Contract.Seconds() {
			note = "build-bound"
		}
		t.addf("%s|%s|%.0f%%|%.0f%%|%.0f%%|%.0f%%|%s",
			cs.ID, secs(stats.Total),
			pct(stats.Linearize.Seconds()),
			pct(build),
			pct(stats.Contract.Seconds()),
			pct(stats.Concat.Seconds()+stats.Delinearize.Seconds()),
			note)
	}
	cfg.print(t)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Contractions whose build phase dominates are the ones where Sparta's")
	fmt.Fprintln(w, "cheap chained insertions win (paper Section 6.4: Vast, Uber).")
	return nil
}
