package experiments

import (
	"fmt"
	"runtime"
)

// fig3Cases are the representative contractions used for the scaling study
// (a dense-accumulator FROSTT case, a small-output FROSTT case, and the
// heaviest quantum-chemistry case).
var fig3Cases = []string{"chicago-0", "uber-02", "guanine-vvov"}

// RunFig3 reproduces paper Figure 3: strong scaling of the FaSTCC kernel
// from 1 thread up to the machine's core count. It prints the factor
// improvement over single-thread execution per thread count.
func RunFig3(cfg Config) error {
	w := cfg.writer()
	maxThreads := cfg.Threads
	if maxThreads <= 0 {
		maxThreads = runtime.GOMAXPROCS(0)
	}
	cpus := runtime.NumCPU()
	// Sweep at least to 8 workers so the scheduler's behaviour is visible
	// even on small machines; counts beyond the CPU count oversubscribe
	// and should plateau near 1.0x rather than regress.
	sweepMax := maxThreads
	if sweepMax < 8 {
		sweepMax = 8
	}
	var counts []int
	for n := 1; n <= sweepMax; n *= 2 {
		counts = append(counts, n)
	}
	if counts[len(counts)-1] != sweepMax {
		counts = append(counts, sweepMax)
	}

	fmt.Fprintf(w, "Figure 3: FaSTCC kernel speedup over 1 thread (machine has %d CPUs;\ncolumns beyond that oversubscribe and should hold ≈ flat)\n\n", cpus)
	header := []string{"contraction"}
	for _, n := range counts {
		header = append(header, fmt.Sprintf("T=%d", n))
	}
	t := newTable(header...)

	for _, id := range fig3Cases {
		cs, err := CaseByID(id)
		if err != nil {
			return err
		}
		l, r, spec, err := cs.Load(cfg)
		if err != nil {
			return err
		}
		row := []string{cs.ID}
		base := 0.0
		for _, n := range counts {
			c := cfg
			c.Threads = n
			_, _, d, err := runFastCC(c, l, r, spec)
			if err != nil {
				return fmt.Errorf("%s T=%d: %w", cs.ID, n, err)
			}
			if n == 1 {
				base = d.Seconds()
			}
			row = append(row, fmt.Sprintf("%.2fx", base/d.Seconds()))
		}
		t.add(row...)
	}
	cfg.print(t)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Each column is T1/TN for the full FaSTCC pipeline (build + contract +")
	fmt.Fprintln(w, "drain); dynamic tile scheduling absorbs load imbalance (Section 4.2).")
	return nil
}
