package chainhash

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	tb := New(0)
	tb.Insert(1, 10, 1.0)
	tb.Insert(1, 11, 2.0)
	tb.Insert(2, 20, 3.0)
	if tb.Len() != 2 || tb.Pairs() != 3 {
		t.Fatalf("Len=%d Pairs=%d", tb.Len(), tb.Pairs())
	}
	ps := tb.Lookup(1)
	if len(ps) != 2 || ps[0] != (Pair{10, 1.0}) || ps[1] != (Pair{11, 2.0}) {
		t.Fatalf("Lookup(1) = %v", ps)
	}
	if tb.Lookup(3) != nil {
		t.Fatal("missing key should be nil")
	}
}

func TestChainingUnderOverload(t *testing.T) {
	// Fixed bucket count: inserting far more keys than buckets must still
	// be correct (chains grow).
	tb := New(1) // 16 buckets
	const n = 3000
	for i := uint64(0); i < n; i++ {
		tb.Insert(i, i*2, float64(i))
	}
	if tb.Len() != n {
		t.Fatalf("Len=%d", tb.Len())
	}
	for i := uint64(0); i < n; i += 111 {
		ps := tb.Lookup(i)
		if len(ps) != 1 || ps[0].Idx != i*2 {
			t.Fatalf("key %d: %v", i, ps)
		}
	}
}

func TestForEachKeys(t *testing.T) {
	tb := New(8)
	for i := uint64(0); i < 40; i++ {
		tb.Insert(i%10, i, 1)
	}
	count := 0
	totalPairs := 0
	tb.ForEach(func(_ uint64, ps []Pair) { count++; totalPairs += len(ps) })
	if count != 10 || totalPairs != 40 {
		t.Fatalf("ForEach: keys=%d pairs=%d", count, totalPairs)
	}
	if len(tb.Keys(nil)) != 10 {
		t.Fatal("Keys wrong length")
	}
}

func TestVersusMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New(4)
		model := map[uint64][]Pair{}
		for i := 0; i < 400; i++ {
			k := rng.Uint64() % 50
			p := Pair{Idx: rng.Uint64() % 1000, Val: float64(rng.Intn(9))}
			tb.Insert(k, p.Idx, p.Val)
			model[k] = append(model[k], p)
		}
		if tb.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got := tb.Lookup(k)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
