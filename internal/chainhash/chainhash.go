// Package chainhash implements a closed-addressing (chaining) hash table in
// the style used by Sparta/Athena (paper Sections 2.2 and 7.2): keys hash to
// a bucket, buckets chain overflow nodes in a linked list. Chaining gives
// cheap insertions (no resize-and-rehash of element data) at the cost of
// pointer-chasing on lookup — exactly the trade-off the paper discusses when
// comparing against FaSTCC's open-addressing tables.
//
// The table maps a uint64 key (a linearized index) to a list of
// (index, value) pairs, mirroring Sparta's tensor representations
// HL : L → P(C×V) and HR : C → P(R×V).
package chainhash

import "fastcc/internal/hashtable"

// Pair is one stored nonzero under a key: a companion linearized index and
// the value. Unlike the tile tables, companion indices here are full uint64
// linearized indices (Sparta does not tile).
type Pair struct {
	Idx uint64
	Val float64
}

// node is one chain link holding the pairs for a single key.
type node struct {
	key   uint64
	pairs []Pair
	next  *node
}

// Table is a chaining hash table. Not concurrency-safe.
type Table struct {
	buckets []*node
	mask    uint64
	keys    int
	pairs   int
}

// New returns a table with about hint/loadFactor buckets. The bucket count
// is fixed at construction: chaining degrades gracefully under overload
// instead of rehashing (Sparta's design point for fast insertion).
func New(hint int) *Table {
	n := 16
	for n < hint*2 {
		n <<= 1
	}
	return &Table{buckets: make([]*node, n), mask: uint64(n - 1)}
}

// Len returns the number of distinct keys.
func (t *Table) Len() int { return t.keys }

// Pairs returns the total number of stored pairs.
func (t *Table) Pairs() int { return t.pairs }

// Insert appends (idx, val) under key.
func (t *Table) Insert(key, idx uint64, val float64) {
	b := hashtable.Mix(key) & t.mask
	for n := t.buckets[b]; n != nil; n = n.next {
		if n.key == key {
			n.pairs = append(n.pairs, Pair{idx, val})
			t.pairs++
			return
		}
	}
	t.buckets[b] = &node{key: key, pairs: []Pair{{idx, val}}, next: t.buckets[b]}
	t.keys++
	t.pairs++
}

// Lookup returns the pair list for key (nil if absent); the slice is owned
// by the table.
func (t *Table) Lookup(key uint64) []Pair {
	for n := t.buckets[hashtable.Mix(key)&t.mask]; n != nil; n = n.next {
		if n.key == key {
			return n.pairs
		}
	}
	return nil
}

// ForEach visits every (key, pairs) in unspecified order.
func (t *Table) ForEach(fn func(key uint64, pairs []Pair)) {
	for _, n := range t.buckets {
		for ; n != nil; n = n.next {
			fn(n.key, n.pairs)
		}
	}
}

// Keys appends all distinct keys to dst and returns it.
func (t *Table) Keys(dst []uint64) []uint64 {
	for _, n := range t.buckets {
		for ; n != nil; n = n.next {
			dst = append(dst, n.key)
		}
	}
	return dst
}
