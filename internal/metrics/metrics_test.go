package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestNilReceiverIsSafe(t *testing.T) {
	var c *Counters
	c.AddQueries(1)
	c.AddVolume(2)
	c.AddUpdates(3)
	c.AddOutput(4)
	c.MaxWorkspace(5)
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

func TestAccumulation(t *testing.T) {
	var c Counters
	c.AddQueries(3)
	c.AddQueries(4)
	c.AddVolume(10)
	c.AddUpdates(1)
	c.AddOutput(2)
	s := c.Snapshot()
	if s.Queries != 7 || s.Volume != 10 || s.Updates != 1 || s.Output != 2 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestMaxWorkspaceHighWater(t *testing.T) {
	var c Counters
	c.MaxWorkspace(100)
	c.MaxWorkspace(50)
	c.MaxWorkspace(200)
	c.MaxWorkspace(150)
	if got := c.Snapshot().WorkspaceWords; got != 200 {
		t.Fatalf("high water = %d", got)
	}
}

func TestConcurrentCounting(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddQueries(1)
				c.MaxWorkspace(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Queries != 8000 {
		t.Fatalf("queries=%d", s.Queries)
	}
	if s.WorkspaceWords != 7999 {
		t.Fatalf("ws high water=%d", s.WorkspaceWords)
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{Queries: 1, Volume: 2, Updates: 3, WorkspaceWords: 4, Output: 5}
	str := s.String()
	for _, want := range []string{"queries=1", "volume=2", "updates=3", "ws_words=4", "out=5"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
}
