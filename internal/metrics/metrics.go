// Package metrics provides the instrumentation counters used to validate
// the paper's loop-order analysis (Table 1) empirically: hash-table query
// counts, retrieved data volume, accumulator update counts, and workspace
// sizes. Counters are atomic so parallel kernels can share one Counters
// value; a nil *Counters disables collection at negligible cost.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// Counters aggregates data-access statistics for one contraction run.
type Counters struct {
	// Queries counts hash-table (or CSF fiber) lookups into the INPUT
	// tensors — the "Queries" column of paper Table 1.
	Queries atomic.Int64
	// Volume counts input nonzero elements retrieved, including repeats —
	// the "Data Volume" column of Table 1.
	Volume atomic.Int64
	// Updates counts accumulator upsert operations (multiply-accumulates);
	// identical across loop orders for a given contraction.
	Updates atomic.Int64
	// WorkspaceWords records the maximum dense-equivalent workspace size in
	// 8-byte words — the "Size_Acc" column of Table 1.
	WorkspaceWords atomic.Int64
	// Output counts nonzeros appended to the output COO list.
	Output atomic.Int64
}

// AddQueries records n input-table queries. Safe on a nil receiver.
func (c *Counters) AddQueries(n int64) {
	if c != nil {
		c.Queries.Add(n)
	}
}

// AddVolume records n input nonzeros retrieved.
func (c *Counters) AddVolume(n int64) {
	if c != nil {
		c.Volume.Add(n)
	}
}

// AddUpdates records n accumulator updates.
func (c *Counters) AddUpdates(n int64) {
	if c != nil {
		c.Updates.Add(n)
	}
}

// MaxWorkspace raises the recorded workspace high-water mark to w words.
func (c *Counters) MaxWorkspace(w int64) {
	if c == nil {
		return
	}
	for {
		cur := c.WorkspaceWords.Load()
		if w <= cur || c.WorkspaceWords.CompareAndSwap(cur, w) {
			return
		}
	}
}

// AddOutput records n output nonzeros.
func (c *Counters) AddOutput(n int64) {
	if c != nil {
		c.Output.Add(n)
	}
}

// Snapshot is a plain-value copy of the counters.
type Snapshot struct {
	Queries        int64
	Volume         int64
	Updates        int64
	WorkspaceWords int64
	Output         int64
}

// Snapshot returns the current counter values; zero-valued on nil receiver.
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		Queries:        c.Queries.Load(),
		Volume:         c.Volume.Load(),
		Updates:        c.Updates.Load(),
		WorkspaceWords: c.WorkspaceWords.Load(),
		Output:         c.Output.Load(),
	}
}

// String renders the snapshot compactly for logs and experiment tables.
func (s Snapshot) String() string {
	return fmt.Sprintf("queries=%d volume=%d updates=%d ws_words=%d out=%d",
		s.Queries, s.Volume, s.Updates, s.WorkspaceWords, s.Output)
}
