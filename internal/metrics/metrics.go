// Package metrics provides the instrumentation counters used to validate
// the paper's loop-order analysis (Table 1) empirically: hash-table query
// counts, retrieved data volume, accumulator update counts, and workspace
// sizes. Counters are atomic so parallel kernels can share one Counters
// value; a nil *Counters disables collection at negligible cost.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// Counters aggregates data-access statistics for one contraction run.
type Counters struct {
	// Queries counts hash-table (or CSF fiber) lookups into the INPUT
	// tensors — the "Queries" column of paper Table 1.
	Queries atomic.Int64
	// Volume counts input nonzero elements retrieved, including repeats —
	// the "Data Volume" column of Table 1.
	Volume atomic.Int64
	// Updates counts accumulator upsert operations (multiply-accumulates);
	// identical across loop orders for a given contraction.
	Updates atomic.Int64
	// WorkspaceWords records the maximum dense-equivalent workspace size in
	// 8-byte words — the "Size_Acc" column of Table 1.
	WorkspaceWords atomic.Int64
	// Output counts nonzeros appended to the output COO list.
	Output atomic.Int64
	// ProbeBatches counts batched sealed-table probe calls issued by the
	// hash microkernels; ProbeHits/ProbeMisses split the individual keys
	// those batches resolved into present and absent. Queries still counts
	// every key, so Table 1 comparisons are unaffected by batching.
	ProbeBatches, ProbeHits, ProbeMisses atomic.Int64
	// KernelTasks counts tile-pair tasks executed per microkernel, indexed
	// by model.KernelID (kernelSlots bounds the id space so this package
	// stays import-free; out-of-range ids are dropped).
	KernelTasks [kernelSlots]atomic.Int64
}

// kernelSlots sizes the per-kernel task counter array. Must be at least
// model.NumKernels; kept a couple of slots wider so a new kernel id does
// not need a lock-step metrics change.
const kernelSlots = 8

// AddQueries records n input-table queries. Safe on a nil receiver.
func (c *Counters) AddQueries(n int64) {
	if c != nil {
		c.Queries.Add(n)
	}
}

// AddVolume records n input nonzeros retrieved.
func (c *Counters) AddVolume(n int64) {
	if c != nil {
		c.Volume.Add(n)
	}
}

// AddUpdates records n accumulator updates.
func (c *Counters) AddUpdates(n int64) {
	if c != nil {
		c.Updates.Add(n)
	}
}

// MaxWorkspace raises the recorded workspace high-water mark to w words.
func (c *Counters) MaxWorkspace(w int64) {
	if c == nil {
		return
	}
	for {
		cur := c.WorkspaceWords.Load()
		if w <= cur || c.WorkspaceWords.CompareAndSwap(cur, w) {
			return
		}
	}
}

// AddOutput records n output nonzeros.
func (c *Counters) AddOutput(n int64) {
	if c != nil {
		c.Output.Add(n)
	}
}

// AddProbeBatches records batched-probe traffic: batches LookupBatch calls
// that resolved hits present keys and misses absent ones.
func (c *Counters) AddProbeBatches(batches, hits, misses int64) {
	if c == nil {
		return
	}
	c.ProbeBatches.Add(batches)
	c.ProbeHits.Add(hits)
	c.ProbeMisses.Add(misses)
}

// AddKernelTasks records n tile-pair tasks executed by kernel id (a
// model.KernelID); ids outside the counter array are dropped.
func (c *Counters) AddKernelTasks(id int, n int64) {
	if c == nil || id < 0 || id >= kernelSlots {
		return
	}
	c.KernelTasks[id].Add(n)
}

// CacheCounters aggregates shard-cache lifecycle statistics: how often the
// engine's Build phase was served from an Operand's shard cache, and what
// the byte-budgeted eviction policy reclaimed. One process-wide instance
// lives in the core engine; the gauges a snapshot adds on top (resident and
// pinned bytes) are derived from the cache's LRU state at snapshot time.
type CacheCounters struct {
	// Hits counts shard fetches served from the cache (including waiting
	// out another goroutine's in-flight build); Misses counts builds.
	Hits, Misses atomic.Int64
	// Evictions counts shards retired by the byte budget; EvictedBytes is
	// their cumulative footprint. Drops (Operand.Close / Sharded.Drop)
	// count separately.
	Evictions, EvictedBytes atomic.Int64
	// Drops counts shards retired by an explicit Close/Drop call.
	Drops atomic.Int64
	// SpillWrites/SpillReads count shard images written to and reloaded from
	// the disk tier; SpillAdopts the subset of reloads served from a previous
	// process's on-disk files (warm restart); SpillFallbacks the spill writes
	// and read-backs that failed with a typed error and degraded to a plain
	// rebuild; SpillBytes the cumulative bytes written to disk.
	SpillWrites, SpillReads, SpillAdopts, SpillFallbacks, SpillBytes atomic.Int64
}

// Snapshot returns a plain-value copy of the lifecycle counters. The
// CachedBytes/PinnedBytes/Shards gauges are left zero here — the cache that
// owns the LRU fills them in.
func (c *CacheCounters) Snapshot() CacheSnapshot {
	if c == nil {
		return CacheSnapshot{}
	}
	return CacheSnapshot{
		Hits:           c.Hits.Load(),
		Misses:         c.Misses.Load(),
		Evictions:      c.Evictions.Load(),
		EvictedBytes:   c.EvictedBytes.Load(),
		Drops:          c.Drops.Load(),
		SpillWrites:    c.SpillWrites.Load(),
		SpillReads:     c.SpillReads.Load(),
		SpillAdopts:    c.SpillAdopts.Load(),
		SpillFallbacks: c.SpillFallbacks.Load(),
		SpillBytes:     c.SpillBytes.Load(),
	}
}

// CacheSnapshot is a point-in-time view of the shard cache: monotonic
// lifecycle counters plus the resident-state gauges.
type CacheSnapshot struct {
	Hits, Misses            int64
	Evictions, EvictedBytes int64
	Drops                   int64
	// Disk-tier lifecycle counters (see CacheCounters).
	SpillWrites, SpillReads, SpillAdopts, SpillFallbacks, SpillBytes int64
	// CachedBytes is the resident footprint of every live cached shard;
	// PinnedBytes the subset currently pinned by in-flight contractions;
	// Shards the resident shard count.
	CachedBytes, PinnedBytes, Shards int64
	// SpillFiles/SpillDiskBytes are the disk-tier residency gauges: spill
	// files currently on disk and their summed size. Zero when no spill
	// directory is configured.
	SpillFiles, SpillDiskBytes int64
}

// String renders the cache snapshot compactly for logs.
func (s CacheSnapshot) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d evicted_bytes=%d drops=%d cached_bytes=%d pinned_bytes=%d shards=%d spill_writes=%d spill_reads=%d spill_adopts=%d spill_fallbacks=%d spill_bytes=%d spill_files=%d spill_disk_bytes=%d",
		s.Hits, s.Misses, s.Evictions, s.EvictedBytes, s.Drops, s.CachedBytes, s.PinnedBytes, s.Shards,
		s.SpillWrites, s.SpillReads, s.SpillAdopts, s.SpillFallbacks, s.SpillBytes, s.SpillFiles, s.SpillDiskBytes)
}

// TenantSnapshot is a point-in-time view of one tenant's shard-cache
// accounting: the quota it is held to, the resident bytes currently charged
// to it (every shard a tenant's contractions built or reused is charged to
// that tenant in full — a shard shared by several tenants appears in each of
// their snapshots), and the lifecycle counters of its runs. The core cache
// that owns the accounts fills these in under its own lock, so one snapshot
// is internally consistent.
type TenantSnapshot struct {
	// ID is the tenant identifier the runs were tagged with.
	ID string
	// QuotaBytes is the per-tenant shard-cache quota (0 = no quota).
	QuotaBytes int64
	// Bytes is the resident footprint of every live shard claimed by this
	// tenant; PinnedBytes the subset currently pinned by in-flight
	// contractions; Shards the claimed shard count.
	Bytes, PinnedBytes, Shards int64
	// Hits and Misses count this tenant's shard fetches served from the
	// cache versus built.
	Hits, Misses int64
	// Evictions counts shards retired specifically to bring this tenant
	// back under its quota; EvictedBytes is their cumulative footprint.
	// Budget-driven global evictions count in CacheSnapshot, not here.
	Evictions, EvictedBytes int64
	// SpillWrites/SpillReads count disk-tier round trips of shards this
	// tenant had claimed when they were evicted; SpillBytes the cumulative
	// bytes those writes put on disk. A shard claimed by several tenants
	// charges each of them, mirroring the resident-byte accounting.
	SpillWrites, SpillReads, SpillBytes int64
}

// String renders the tenant snapshot compactly for logs.
func (s TenantSnapshot) String() string {
	return fmt.Sprintf("tenant=%s quota=%d bytes=%d pinned=%d shards=%d hits=%d misses=%d evictions=%d evicted_bytes=%d spill_writes=%d spill_reads=%d spill_bytes=%d",
		s.ID, s.QuotaBytes, s.Bytes, s.PinnedBytes, s.Shards, s.Hits, s.Misses, s.Evictions, s.EvictedBytes,
		s.SpillWrites, s.SpillReads, s.SpillBytes)
}

// Snapshot is a plain-value copy of the counters.
type Snapshot struct {
	Queries        int64
	Volume         int64
	Updates        int64
	WorkspaceWords int64
	Output         int64
	// ProbeBatches/ProbeHits/ProbeMisses are the batched-probe statistics
	// of the hash microkernels (zero under the generic or sorted kernels).
	ProbeBatches, ProbeHits, ProbeMisses int64
	// KernelTasks is the per-kernel tile-task histogram, indexed by
	// model.KernelID.
	KernelTasks [kernelSlots]int64
}

// Snapshot returns the current counter values; zero-valued on nil receiver.
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Queries:        c.Queries.Load(),
		Volume:         c.Volume.Load(),
		Updates:        c.Updates.Load(),
		WorkspaceWords: c.WorkspaceWords.Load(),
		Output:         c.Output.Load(),
		ProbeBatches:   c.ProbeBatches.Load(),
		ProbeHits:      c.ProbeHits.Load(),
		ProbeMisses:    c.ProbeMisses.Load(),
	}
	for i := range c.KernelTasks {
		s.KernelTasks[i] = c.KernelTasks[i].Load()
	}
	return s
}

// String renders the snapshot compactly for logs and experiment tables.
func (s Snapshot) String() string {
	return fmt.Sprintf("queries=%d volume=%d updates=%d ws_words=%d out=%d probe_batches=%d probe_hits=%d probe_misses=%d",
		s.Queries, s.Volume, s.Updates, s.WorkspaceWords, s.Output, s.ProbeBatches, s.ProbeHits, s.ProbeMisses)
}
