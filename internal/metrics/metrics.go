// Package metrics provides the instrumentation counters used to validate
// the paper's loop-order analysis (Table 1) empirically: hash-table query
// counts, retrieved data volume, accumulator update counts, and workspace
// sizes. Counters are atomic so parallel kernels can share one Counters
// value; a nil *Counters disables collection at negligible cost.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// Counters aggregates data-access statistics for one contraction run.
type Counters struct {
	// Queries counts hash-table (or CSF fiber) lookups into the INPUT
	// tensors — the "Queries" column of paper Table 1.
	Queries atomic.Int64
	// Volume counts input nonzero elements retrieved, including repeats —
	// the "Data Volume" column of Table 1.
	Volume atomic.Int64
	// Updates counts accumulator upsert operations (multiply-accumulates);
	// identical across loop orders for a given contraction.
	Updates atomic.Int64
	// WorkspaceWords records the maximum dense-equivalent workspace size in
	// 8-byte words — the "Size_Acc" column of Table 1.
	WorkspaceWords atomic.Int64
	// Output counts nonzeros appended to the output COO list.
	Output atomic.Int64
}

// AddQueries records n input-table queries. Safe on a nil receiver.
func (c *Counters) AddQueries(n int64) {
	if c != nil {
		c.Queries.Add(n)
	}
}

// AddVolume records n input nonzeros retrieved.
func (c *Counters) AddVolume(n int64) {
	if c != nil {
		c.Volume.Add(n)
	}
}

// AddUpdates records n accumulator updates.
func (c *Counters) AddUpdates(n int64) {
	if c != nil {
		c.Updates.Add(n)
	}
}

// MaxWorkspace raises the recorded workspace high-water mark to w words.
func (c *Counters) MaxWorkspace(w int64) {
	if c == nil {
		return
	}
	for {
		cur := c.WorkspaceWords.Load()
		if w <= cur || c.WorkspaceWords.CompareAndSwap(cur, w) {
			return
		}
	}
}

// AddOutput records n output nonzeros.
func (c *Counters) AddOutput(n int64) {
	if c != nil {
		c.Output.Add(n)
	}
}

// CacheCounters aggregates shard-cache lifecycle statistics: how often the
// engine's Build phase was served from an Operand's shard cache, and what
// the byte-budgeted eviction policy reclaimed. One process-wide instance
// lives in the core engine; the gauges a snapshot adds on top (resident and
// pinned bytes) are derived from the cache's LRU state at snapshot time.
type CacheCounters struct {
	// Hits counts shard fetches served from the cache (including waiting
	// out another goroutine's in-flight build); Misses counts builds.
	Hits, Misses atomic.Int64
	// Evictions counts shards retired by the byte budget; EvictedBytes is
	// their cumulative footprint. Drops (Operand.Close / Sharded.Drop)
	// count separately.
	Evictions, EvictedBytes atomic.Int64
	// Drops counts shards retired by an explicit Close/Drop call.
	Drops atomic.Int64
}

// Snapshot returns a plain-value copy of the lifecycle counters. The
// CachedBytes/PinnedBytes/Shards gauges are left zero here — the cache that
// owns the LRU fills them in.
func (c *CacheCounters) Snapshot() CacheSnapshot {
	if c == nil {
		return CacheSnapshot{}
	}
	return CacheSnapshot{
		Hits:         c.Hits.Load(),
		Misses:       c.Misses.Load(),
		Evictions:    c.Evictions.Load(),
		EvictedBytes: c.EvictedBytes.Load(),
		Drops:        c.Drops.Load(),
	}
}

// CacheSnapshot is a point-in-time view of the shard cache: monotonic
// lifecycle counters plus the resident-state gauges.
type CacheSnapshot struct {
	Hits, Misses            int64
	Evictions, EvictedBytes int64
	Drops                   int64
	// CachedBytes is the resident footprint of every live cached shard;
	// PinnedBytes the subset currently pinned by in-flight contractions;
	// Shards the resident shard count.
	CachedBytes, PinnedBytes, Shards int64
}

// String renders the cache snapshot compactly for logs.
func (s CacheSnapshot) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d evicted_bytes=%d drops=%d cached_bytes=%d pinned_bytes=%d shards=%d",
		s.Hits, s.Misses, s.Evictions, s.EvictedBytes, s.Drops, s.CachedBytes, s.PinnedBytes, s.Shards)
}

// Snapshot is a plain-value copy of the counters.
type Snapshot struct {
	Queries        int64
	Volume         int64
	Updates        int64
	WorkspaceWords int64
	Output         int64
}

// Snapshot returns the current counter values; zero-valued on nil receiver.
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		Queries:        c.Queries.Load(),
		Volume:         c.Volume.Load(),
		Updates:        c.Updates.Load(),
		WorkspaceWords: c.WorkspaceWords.Load(),
		Output:         c.Output.Load(),
	}
}

// String renders the snapshot compactly for logs and experiment tables.
func (s Snapshot) String() string {
	return fmt.Sprintf("queries=%d volume=%d updates=%d ws_words=%d out=%d",
		s.Queries, s.Volume, s.Updates, s.WorkspaceWords, s.Output)
}
