//go:build !fastcc_checked

package mempool

// Checked reports whether the fastcc_checked lifetime assertions are
// compiled in. Tests use it to decide whether a deliberate use-after-recycle
// must panic (checked builds) or pass silently (normal builds).
const Checked = false

// checkedCache and checkedSlice are the zero-sized placeholders for the
// checked-mode bookkeeping; the normal build parks storage in sync.Pool and
// performs no poisoning or provenance tracking, keeping the recycle path
// free of locks and sweeps.
type (
	checkedCache[T any]                  struct{}
	checkedSlice[T any]                  struct{}
	checkedFreelist[K comparable, V any] struct{}
)

// note / checkPut implement Freelist provenance only under fastcc_checked;
// the normal build parks values without validating which key they belong to.
func (f *Freelist[K, V]) note(K, V)     {}
func (f *Freelist[K, V]) checkPut(K, V) {}

func (c *ChunkCache[T]) park(b []T) { c.pool.Put(b) }

func (c *ChunkCache[T]) unpark() ([]T, bool) {
	v := c.pool.Get()
	if v == nil {
		return nil, false
	}
	return v.([]T)[:0], true
}

// noteVended / vended implement provenance tracking only under
// fastcc_checked; the normal build trusts the capacity check in Release.
func (c *ChunkCache[T]) noteVended([]T)  {}
func (c *ChunkCache[T]) vended([]T) bool { return true }

func (s *SlicePool[T]) park(b []T) { s.pool.Put(b) }

func (s *SlicePool[T]) unpark() ([]T, bool) {
	v := s.pool.Get()
	if v == nil {
		return nil, false
	}
	return v.([]T)[:0], true
}

// poison is the checked-mode sentinel writer; a no-op here so shared code
// (Pool.Reset) can call it unconditionally.
func poison[T any]([]T) {}
