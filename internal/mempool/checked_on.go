//go:build fastcc_checked

// fastcc_checked mode: every recycle point poisons the parked storage with a
// sentinel byte and every re-vend asserts the sentinel survived, so a write
// through a stale reference — the bug class the poolescape analyzer models
// statically — becomes a deterministic panic at the next Get instead of
// silent cross-run corruption. Parking uses a locked LIFO instead of
// sync.Pool so the panic reproduces: sync.Pool may drop or migrate items
// between Put and Get, which would let a corrupted chunk escape detection.
//
// Poisoning scribbles over the slice's full capacity, so it is only applied
// to pointer-free element types (checked once per pool via reflection).
// Element types containing pointers — whose bytes the GC owns, so the
// sentinel scribble must skip them — are covered by the shadow layer
// instead: parked chunks are cleared to zero values (always GC-safe) and
// re-vends assert the zeros survived, so the same stale-write bug class
// panics deterministically for pointered chunk lists too. Independent of
// element type, every cache keeps a shadow epoch counter per chunk backing
// array (parity = residency), catching a chunk parked twice with no
// intervening vend — the double-Put that would alias one chunk to two
// future Gets, which the byte sentinel alone cannot see.
package mempool

import (
	"fmt"
	"reflect"
	"sync"
	"unsafe"
)

// Checked reports whether the fastcc_checked lifetime assertions are
// compiled in.
const Checked = true

// poisonByte is the sentinel pattern written over parked storage. 0xA5 is
// asymmetric and non-zero, so neither fresh allocations nor common stores
// (0, -1) mimic it.
const poisonByte = 0xA5

type checkedCache[T any] struct {
	mu     sync.Mutex
	parked [][]T
	// vended records the backing arrays this cache has handed out, keyed by
	// the array pointer; Release consults it to reject foreign chunks.
	vendedSet map[*T]struct{}
	epochs    epochSet
}

func (c *ChunkCache[T]) park(b []T) {
	poison(b)
	shadowPark(b)
	c.ck.mu.Lock()
	defer c.ck.mu.Unlock()
	c.ck.epochs.park(chunkKey(b), "mempool.ChunkCache")
	c.ck.parked = append(c.ck.parked, b)
}

func (c *ChunkCache[T]) unpark() ([]T, bool) {
	c.ck.mu.Lock()
	n := len(c.ck.parked)
	if n == 0 {
		c.ck.mu.Unlock()
		return nil, false
	}
	b := c.ck.parked[n-1]
	c.ck.parked[n-1] = nil
	c.ck.parked = c.ck.parked[:n-1]
	c.ck.epochs.unpark(chunkKey(b))
	c.ck.mu.Unlock()
	assertPoisoned(b, "mempool.ChunkCache")
	assertShadow(b, "mempool.ChunkCache")
	return b[:0], true
}

func (c *ChunkCache[T]) noteVended(b []T) {
	if cap(b) == 0 {
		return
	}
	c.ck.mu.Lock()
	if c.ck.vendedSet == nil {
		c.ck.vendedSet = make(map[*T]struct{})
	}
	c.ck.vendedSet[unsafe.SliceData(b[:cap(b)])] = struct{}{}
	c.ck.mu.Unlock()
}

func (c *ChunkCache[T]) vended(b []T) bool {
	if cap(b) == 0 {
		return false
	}
	c.ck.mu.Lock()
	_, ok := c.ck.vendedSet[unsafe.SliceData(b[:cap(b)])]
	c.ck.mu.Unlock()
	return ok
}

type checkedSlice[T any] struct {
	mu     sync.Mutex
	parked [][]T
	epochs epochSet
}

// checkedFreelist tracks which freelist key each parked value belongs to,
// so a wrong-shaped value re-parked under a different key is rejected at
// Put instead of vended at a future Get (the ROADMAP's Freelist.Put
// provenance gap). Values are keyed by their own identity; non-comparable
// value types are skipped (they cannot be map keys).
type checkedFreelist[K comparable, V any] struct {
	mu   sync.Mutex
	prov map[any]K
}

// freelistProvKey returns v as a map key when its dynamic type is
// comparable, which is what identity-based provenance needs.
func freelistProvKey(v any) (any, bool) {
	rv := reflect.ValueOf(v)
	if !rv.IsValid() || !rv.Comparable() {
		return nil, false
	}
	return v, true
}

func (f *Freelist[K, V]) note(k K, v V) {
	id, ok := freelistProvKey(v)
	if !ok {
		return
	}
	f.ck.mu.Lock()
	defer f.ck.mu.Unlock()
	if f.ck.prov == nil {
		f.ck.prov = make(map[any]K)
	}
	if bound, seen := f.ck.prov[id]; seen && bound != k {
		panic(fmt.Sprintf(
			"mempool.Freelist.Note: value already bound to key %v re-registered under %v: a shaped value is being moved between freelist keys",
			bound, k))
	}
	f.ck.prov[id] = k
}

func (f *Freelist[K, V]) checkPut(k K, v V) {
	id, ok := freelistProvKey(v)
	if !ok {
		return
	}
	f.ck.mu.Lock()
	defer f.ck.mu.Unlock()
	if f.ck.prov == nil {
		f.ck.prov = make(map[any]K)
	}
	if bound, seen := f.ck.prov[id]; seen {
		if bound != k {
			panic(fmt.Sprintf(
				"mempool.Freelist.Put: value bound to key %v parked under %v: wrong-shaped value would be vended to a future Get(%v)",
				bound, k, k))
		}
		return
	}
	f.ck.prov[id] = k // first Put binds the value to its key
}

func (s *SlicePool[T]) park(b []T) {
	poison(b)
	shadowPark(b)
	s.ck.mu.Lock()
	defer s.ck.mu.Unlock()
	s.ck.epochs.park(chunkKey(b), "mempool.SlicePool")
	s.ck.parked = append(s.ck.parked, b)
}

func (s *SlicePool[T]) unpark() ([]T, bool) {
	s.ck.mu.Lock()
	n := len(s.ck.parked)
	if n == 0 {
		s.ck.mu.Unlock()
		return nil, false
	}
	b := s.ck.parked[n-1]
	s.ck.parked[n-1] = nil
	s.ck.parked = s.ck.parked[:n-1]
	s.ck.epochs.unpark(chunkKey(b))
	s.ck.mu.Unlock()
	assertPoisoned(b, "mempool.SlicePool")
	assertShadow(b, "mempool.SlicePool")
	return b[:0], true
}

// epochSet is the checked-mode shadow epoch registry: one monotonically
// increasing counter per chunk backing array, incremented at every park and
// every unpark, so the counter's parity is the chunk's residency — even is
// live (vended or never seen), odd is parked. It closes a gap the byte
// sentinel leaves open regardless of element type: a chunk parked twice
// with no intervening vend (double Put) passes the poison assert — the
// second park just re-writes the sentinel — yet aliases one backing array
// to two future Gets. The parity check rejects the second park instead.
type epochSet struct {
	ep map[unsafe.Pointer]uint64
}

// park advances the chunk to parked; callers must hold the owning cache's
// mutex (the panic path releases it via their deferred Unlock).
func (e *epochSet) park(p unsafe.Pointer, owner string) {
	if p == nil {
		return
	}
	if e.ep == nil {
		e.ep = make(map[unsafe.Pointer]uint64)
	}
	if e.ep[p]%2 == 1 {
		panic(fmt.Sprintf(
			"%s: double recycle detected: chunk parked twice with no intervening Get (shadow epoch %d); two future Gets would vend aliases of the same storage",
			owner, e.ep[p]))
	}
	e.ep[p]++
}

// unpark advances the chunk back to live; callers must hold the owning
// cache's mutex.
func (e *epochSet) unpark(p unsafe.Pointer) {
	if p == nil || e.ep == nil {
		return
	}
	e.ep[p]++
}

// chunkKey identifies a chunk by its backing-array pointer (nil for
// zero-capacity slices, which carry no storage to track).
func chunkKey[T any](b []T) unsafe.Pointer {
	if cap(b) == 0 {
		return nil
	}
	return unsafe.Pointer(unsafe.SliceData(b[:cap(b)]))
}

// shadowPark is poison's twin for the element types the byte sentinel must
// skip: it clears the chunk's full capacity to zero values — always safe
// under the GC — so assertShadow can detect a write through a stale
// reference at re-vend time. Clearing also drops whatever the elements
// pointed at, so parked pointered chunks never pin dead object graphs.
func shadowPark[T any](b []T) {
	if !pointered[T]() {
		return
	}
	full := b[:cap(b)]
	var zero T
	for i := range full {
		full[i] = zero
	}
}

// assertShadow panics when a zero-parked chunk no longer reads as zero
// values: someone wrote through a stale reference between Put/Release and
// this re-vend. Pointer-free storage is covered by assertPoisoned instead.
func assertShadow[T any](b []T, owner string) {
	if !pointered[T]() {
		return
	}
	full := b[:cap(b)]
	for i := range full {
		if !reflect.ValueOf(&full[i]).Elem().IsZero() {
			panic(fmt.Sprintf(
				"%s: use-after-recycle detected: element %d of a parked chunk was overwritten after Put/Release (want the zero value written at park time); some caller retained pointered storage past its recycle point",
				owner, i))
		}
	}
}

// pointered reports whether T contains pointers and has bytes to check —
// exactly the element types byteView refuses and the shadow layer covers.
func pointered[T any]() bool {
	var zero T
	t := reflect.TypeOf(zero)
	return t != nil && t.Size() > 0 && !pointerFree(t)
}

// poison writes the sentinel over b's full capacity when T is pointer-free.
func poison[T any](b []T) {
	bs, ok := byteView(b)
	if !ok {
		return
	}
	for i := range bs {
		bs[i] = poisonByte
	}
}

// assertPoisoned panics when any byte of b's storage no longer carries the
// sentinel written at park time: someone wrote through a stale reference
// between Put/Release and this re-vend.
func assertPoisoned[T any](b []T, owner string) {
	bs, ok := byteView(b)
	if !ok {
		return
	}
	for i, x := range bs {
		if x != poisonByte {
			panic(fmt.Sprintf(
				"%s: use-after-recycle detected: byte %d of a parked chunk was overwritten after Put/Release (want poison %#x, found %#x); some caller retained the storage past its recycle point",
				owner, i, poisonByte, x))
		}
	}
}

// byteView reinterprets b's full capacity as raw bytes. It refuses element
// types containing pointers (the GC owns those bits) and zero-sized or
// zero-capacity storage.
func byteView[T any](b []T) ([]byte, bool) {
	if cap(b) == 0 {
		return nil, false
	}
	var zero T
	t := reflect.TypeOf(zero)
	if t == nil || t.Size() == 0 || !pointerFree(t) {
		return nil, false
	}
	full := b[:cap(b)]
	n := cap(b) * int(t.Size())
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(full))), n), true
}

// pointerFree reports whether values of t contain no pointers anywhere, so
// scribbling their bytes cannot confuse the garbage collector.
func pointerFree(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return pointerFree(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !pointerFree(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
