package mempool

import (
	"testing"
	"testing/quick"
)

func TestAppendAcrossChunks(t *testing.T) {
	p := New[int](4)
	for i := 0; i < 11; i++ {
		p.Append(i)
	}
	if p.Len() != 11 {
		t.Fatalf("Len=%d", p.Len())
	}
	if got := len(p.Chunks()); got != 3 {
		t.Fatalf("chunks=%d want 3", got)
	}
	i := 0
	p.ForEach(func(v int) {
		if v != i {
			t.Fatalf("element %d = %d", i, v)
		}
		i++
	})
	if i != 11 {
		t.Fatalf("visited %d", i)
	}
}

func TestDefaultChunkLen(t *testing.T) {
	p := New[byte](0)
	p.Append(1)
	if cap(p.Chunks()[0]) != DefaultChunkLen {
		t.Fatalf("cap=%d", cap(p.Chunks()[0]))
	}
}

func TestReset(t *testing.T) {
	p := New[int](2)
	for i := 0; i < 5; i++ {
		p.Append(i)
	}
	p.Reset()
	if p.Len() != 0 {
		t.Fatalf("Len after reset = %d", p.Len())
	}
	p.Append(42)
	if p.Len() != 1 {
		t.Fatal("append after reset")
	}
	sum := 0
	p.ForEach(func(v int) { sum += v })
	if sum != 42 {
		t.Fatalf("stale elements after reset, sum=%d", sum)
	}
}

func TestConcatNoCopy(t *testing.T) {
	a := New[int](2)
	b := New[int](2)
	for i := 0; i < 3; i++ {
		a.Append(i)
		b.Append(10 + i)
	}
	l := Concat(a, nil, b)
	if l.Len() != 6 {
		t.Fatalf("Len=%d", l.Len())
	}
	want := []int{0, 1, 2, 10, 11, 12}
	i := 0
	l.ForEach(func(v int) {
		if v != want[i] {
			t.Fatalf("element %d = %d want %d", i, v, want[i])
		}
		i++
	})
	// No copy: mutating the pool's chunk shows through the list.
	a.Chunks()[0][0] = 99
	found := false
	l.ForEach(func(v int) { found = found || v == 99 })
	if !found {
		t.Fatal("Concat copied data; expected shared chunks")
	}
}

func TestConcatSkipsEmpty(t *testing.T) {
	a := New[int](2)
	l := Concat(a)
	if l.Len() != 0 || len(l.Chunks()) != 0 {
		t.Fatalf("empty concat: %d/%d", l.Len(), len(l.Chunks()))
	}
}

func TestPoolOrderProperty(t *testing.T) {
	f := func(vals []int16) bool {
		p := New[int16](3)
		for _, v := range vals {
			p.Append(v)
		}
		if p.Len() != len(vals) {
			return false
		}
		i := 0
		ok := true
		p.ForEach(func(v int16) {
			ok = ok && v == vals[i]
			i++
		})
		return ok && i == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
