package mempool

import (
	"testing"
	"testing/quick"
)

func TestAppendAcrossChunks(t *testing.T) {
	p := New[int](4)
	for i := 0; i < 11; i++ {
		p.Append(i)
	}
	if p.Len() != 11 {
		t.Fatalf("Len=%d", p.Len())
	}
	if got := len(p.Chunks()); got != 3 {
		t.Fatalf("chunks=%d want 3", got)
	}
	i := 0
	p.ForEach(func(v int) {
		if v != i {
			t.Fatalf("element %d = %d", i, v)
		}
		i++
	})
	if i != 11 {
		t.Fatalf("visited %d", i)
	}
}

func TestDefaultChunkLen(t *testing.T) {
	p := New[byte](0)
	p.Append(1)
	if cap(p.Chunks()[0]) != DefaultChunkLen {
		t.Fatalf("cap=%d", cap(p.Chunks()[0]))
	}
}

func TestReset(t *testing.T) {
	p := New[int](2)
	for i := 0; i < 5; i++ {
		p.Append(i)
	}
	p.Reset()
	if p.Len() != 0 {
		t.Fatalf("Len after reset = %d", p.Len())
	}
	p.Append(42)
	if p.Len() != 1 {
		t.Fatal("append after reset")
	}
	sum := 0
	p.ForEach(func(v int) { sum += v })
	if sum != 42 {
		t.Fatalf("stale elements after reset, sum=%d", sum)
	}
}

func TestConcatNoCopy(t *testing.T) {
	a := New[int](2)
	b := New[int](2)
	for i := 0; i < 3; i++ {
		a.Append(i)
		b.Append(10 + i)
	}
	l := Concat(a, nil, b)
	if l.Len() != 6 {
		t.Fatalf("Len=%d", l.Len())
	}
	want := []int{0, 1, 2, 10, 11, 12}
	i := 0
	l.ForEach(func(v int) {
		if v != want[i] {
			t.Fatalf("element %d = %d want %d", i, v, want[i])
		}
		i++
	})
	// No copy: mutating the pool's chunk shows through the list.
	a.Chunks()[0][0] = 99
	found := false
	l.ForEach(func(v int) { found = found || v == 99 })
	if !found {
		t.Fatal("Concat copied data; expected shared chunks")
	}
}

func TestConcatSkipsEmpty(t *testing.T) {
	a := New[int](2)
	l := Concat(a)
	if l.Len() != 0 || len(l.Chunks()) != 0 {
		t.Fatalf("empty concat: %d/%d", l.Len(), len(l.Chunks()))
	}
}

func TestChunkCacheRecycles(t *testing.T) {
	c := NewChunkCache[int](4)
	p := c.NewPool()
	for i := 0; i < 9; i++ {
		p.Append(i)
	}
	l := Concat(p)
	if l.Len() != 9 {
		t.Fatalf("Len=%d", l.Len())
	}
	// Remember the chunk backing arrays, release, and check a new pool gets
	// recycled storage rather than fresh allocations.
	seen := map[*int]bool{}
	for _, ch := range l.Chunks() {
		seen[&ch[:1][0]] = true
	}
	c.Release(l)
	if l.Len() != 0 || len(l.Chunks()) != 0 {
		t.Fatalf("Release left %d elements / %d chunks", l.Len(), len(l.Chunks()))
	}
	p2 := c.NewPool()
	p2.Append(42)
	ch := p2.Chunks()[0]
	if !seen[&ch[:1][0]] {
		t.Skip("sync.Pool dropped the chunk (GC ran); recycling not observable")
	}
	if ch[0] != 42 {
		t.Fatalf("recycled chunk content %v", ch[0])
	}
}

func TestChunkCacheDefaultLen(t *testing.T) {
	c := NewChunkCache[byte](0)
	p := c.NewPool()
	p.Append(1)
	if cap(p.Chunks()[0]) != DefaultChunkLen {
		t.Fatalf("cap=%d", cap(p.Chunks()[0]))
	}
}

func TestFreelist(t *testing.T) {
	f := NewFreelist[string, int](2)
	if _, ok := f.Get("a"); ok {
		t.Fatal("empty freelist returned a value")
	}
	f.Put("a", 1)
	f.Put("a", 2)
	f.Put("a", 3) // over perKey: dropped
	if v, ok := f.Get("a"); !ok || v != 2 {
		t.Fatalf("got %d/%v", v, ok)
	}
	if v, ok := f.Get("a"); !ok || v != 1 {
		t.Fatalf("got %d/%v", v, ok)
	}
	if _, ok := f.Get("a"); ok {
		t.Fatal("third value should have been dropped")
	}
	if _, ok := f.Get("b"); ok {
		t.Fatal("wrong key hit")
	}
}

func TestSlicePool(t *testing.T) {
	var s SlicePool[uint64]
	b := s.Get(100)
	if len(b) != 0 || cap(b) < 100 {
		t.Fatalf("len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, 7, 8, 9)
	s.Put(b)
	b2 := s.Get(10)
	if len(b2) != 0 {
		t.Fatalf("recycled slice not empty: len=%d", len(b2))
	}
	// A larger request than any parked slice must still be satisfied.
	b3 := s.Get(1 << 16)
	if cap(b3) < 1<<16 {
		t.Fatalf("cap=%d", cap(b3))
	}
}

func TestPoolOrderProperty(t *testing.T) {
	f := func(vals []int16) bool {
		p := New[int16](3)
		for _, v := range vals {
			p.Append(v)
		}
		if p.Len() != len(vals) {
			return false
		}
		i := 0
		ok := true
		p.ForEach(func(v int16) {
			ok = ok && v == vals[i]
			i++
		})
		return ok && i == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
