// Package mempool provides chunked, append-only arenas. FaSTCC threads push
// output nonzeros into thread-local chunk lists and the coordinator later
// concatenates those lists by reference, never copying element data — the
// Go analogue of the paper's 512 MB-chunk memory-pool layer for COO output
// construction (Section 4.2).
package mempool

// DefaultChunkLen is the number of elements per chunk when none is given.
// The paper uses 512 MB chunks; we size in elements so the pool is type-
// agnostic, and default to 64 Ki elements (1.5 MiB for a 24-byte triple) —
// large enough to amortize allocation, small enough for laptop workloads.
const DefaultChunkLen = 64 * 1024

// Pool is a chunked append-only arena of T. The zero value is NOT ready to
// use; call New. Pools are not safe for concurrent use: each worker owns one.
type Pool[T any] struct {
	chunkLen int
	chunks   [][]T
	n        int
}

// New returns a pool with the given chunk length (elements per allocation).
// chunkLen <= 0 selects DefaultChunkLen.
func New[T any](chunkLen int) *Pool[T] {
	if chunkLen <= 0 {
		chunkLen = DefaultChunkLen
	}
	return &Pool[T]{chunkLen: chunkLen}
}

// Append adds one element, allocating a new chunk when the tail is full.
//
//fastcc:hotpath
func (p *Pool[T]) Append(v T) {
	if len(p.chunks) == 0 || len(p.chunks[len(p.chunks)-1]) == cap(p.chunks[len(p.chunks)-1]) {
		p.chunks = append(p.chunks, make([]T, 0, p.chunkLen)) //fastcc:allow hotalloc -- chunk allocation IS the amortization, once per chunkLen appends
	}
	last := len(p.chunks) - 1
	p.chunks[last] = append(p.chunks[last], v) //fastcc:allow hotalloc -- tail append is capacity-bounded, never reallocates
	p.n++
}

// Len returns the number of elements appended.
func (p *Pool[T]) Len() int { return p.n }

// Chunks returns the underlying chunk slices. Callers must treat them as
// read-only; they remain owned by the pool.
func (p *Pool[T]) Chunks() [][]T { return p.chunks }

// ForEach calls fn for every element in append order.
func (p *Pool[T]) ForEach(fn func(T)) {
	for _, c := range p.chunks {
		for i := range c {
			fn(c[i])
		}
	}
}

// Reset drops all elements but keeps the last chunk's storage for reuse.
func (p *Pool[T]) Reset() {
	if len(p.chunks) > 0 {
		last := p.chunks[len(p.chunks)-1][:0]
		p.chunks = p.chunks[:0]
		p.chunks = append(p.chunks, last)
	}
	p.n = 0
}

// List concatenates pools by reference (pointer movement, no element
// copies), in the order given — the paper's master-thread concatenation of
// thread-local COO lists.
type List[T any] struct {
	chunks [][]T
	n      int
}

// Concat builds a List from the pools' chunks without copying elements.
func Concat[T any](pools ...*Pool[T]) *List[T] {
	l := &List[T]{}
	for _, p := range pools {
		if p == nil {
			continue
		}
		for _, c := range p.chunks {
			if len(c) > 0 {
				l.chunks = append(l.chunks, c)
				l.n += len(c)
			}
		}
	}
	return l
}

// Len returns the total number of elements in the list.
func (l *List[T]) Len() int { return l.n }

// ForEach calls fn for every element.
func (l *List[T]) ForEach(fn func(T)) {
	for _, c := range l.chunks {
		for i := range c {
			fn(c[i])
		}
	}
}

// Chunks exposes the chunk slices (read-only).
func (l *List[T]) Chunks() [][]T { return l.chunks }
