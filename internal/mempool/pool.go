// Package mempool provides chunked, append-only arenas. FaSTCC threads push
// output nonzeros into thread-local chunk lists and the coordinator later
// concatenates those lists by reference, never copying element data — the
// Go analogue of the paper's 512 MB-chunk memory-pool layer for COO output
// construction (Section 4.2).
//
// For repeated contractions the package also provides the recycling layer
// the prepared-operand API builds on: ChunkCache returns drained chunk
// storage to a free pool instead of the garbage collector, Freelist keeps
// shaped scratch objects (accumulators) alive between runs, and SlicePool
// recycles flat scratch slices.
//
// # Checked mode
//
// Recycling bugs — a caller holding a buffer past Put/Release, a foreign
// chunk smuggled into a cache — are invisible to the garbage collector and
// the race detector. Building with -tags fastcc_checked arms this package's
// lifetime assertions: recycled storage of pointer-free element types is
// poisoned with a sentinel byte pattern when parked and verified when
// re-vended, so a write after the recycle point becomes a deterministic
// panic at the next Get instead of silent corruption; parking switches from
// sync.Pool to a deterministic LIFO so the panic is reproducible; and
// ChunkCache additionally tracks chunk provenance, rejecting (and counting)
// storage it never vended. The static side of the same contract is the
// poolescape analyzer in tools/analysis.
package mempool

import (
	"sync"
	"sync/atomic"

	"fastcc/internal/lockcheck"
)

// DefaultChunkLen is the number of elements per chunk when none is given.
// The paper uses 512 MB chunks; we size in elements so the pool is type-
// agnostic, and default to 64 Ki elements (1.5 MiB for a 24-byte triple) —
// large enough to amortize allocation, small enough for laptop workloads.
const DefaultChunkLen = 64 * 1024

// Pool is a chunked append-only arena of T. The zero value is NOT ready to
// use; call New. Pools are not safe for concurrent use: each worker owns one.
type Pool[T any] struct {
	chunkLen int
	chunks   [][]T
	n        int
	cache    *ChunkCache[T] // non-nil when chunks are drawn from a cache
}

// New returns a pool with the given chunk length (elements per allocation).
// chunkLen <= 0 selects DefaultChunkLen.
func New[T any](chunkLen int) *Pool[T] {
	if chunkLen <= 0 {
		chunkLen = DefaultChunkLen
	}
	return &Pool[T]{chunkLen: chunkLen}
}

// newChunk returns fresh chunk storage: recycled when the pool is backed by
// a ChunkCache, freshly allocated otherwise.
func (p *Pool[T]) newChunk() []T {
	if p.cache != nil {
		return p.cache.get()
	}
	return make([]T, 0, p.chunkLen)
}

// Append adds one element, allocating a new chunk when the tail is full.
//
//fastcc:hotpath
func (p *Pool[T]) Append(v T) {
	if len(p.chunks) == 0 || len(p.chunks[len(p.chunks)-1]) == cap(p.chunks[len(p.chunks)-1]) {
		p.chunks = append(p.chunks, p.newChunk()) //fastcc:allow hotalloc -- chunk allocation IS the amortization, once per chunkLen appends
	}
	last := len(p.chunks) - 1
	p.chunks[last] = append(p.chunks[last], v) //fastcc:allow hotalloc -- tail append is capacity-bounded, never reallocates
	p.n++
}

// Len returns the number of elements appended.
func (p *Pool[T]) Len() int { return p.n }

// Chunks returns the underlying chunk slices. Callers must treat them as
// read-only; they remain owned by the pool.
func (p *Pool[T]) Chunks() [][]T { return p.chunks }

// ForEach calls fn for every element in append order.
func (p *Pool[T]) ForEach(fn func(T)) {
	for _, c := range p.chunks {
		for i := range c {
			fn(c[i])
		}
	}
}

// Reset drops all elements but keeps the last chunk's storage for reuse.
// Under fastcc_checked the retained storage is poisoned, so a stale Chunks
// reference reading past Reset sees the sentinel pattern instead of
// plausible stale data.
func (p *Pool[T]) Reset() {
	if len(p.chunks) > 0 {
		last := p.chunks[len(p.chunks)-1][:0]
		poison(last)
		p.chunks = p.chunks[:0]
		p.chunks = append(p.chunks, last)
	}
	p.n = 0
}

// List concatenates pools by reference (pointer movement, no element
// copies), in the order given — the paper's master-thread concatenation of
// thread-local COO lists.
type List[T any] struct {
	chunks [][]T
	n      int
}

// Concat builds a List from the pools' chunks without copying elements.
//
//fastcc:owned pools -- pointer movement IS the contract: the List takes over
// the pools' chunks, and List.Release (or output recycling) hands them back
func Concat[T any](pools ...*Pool[T]) *List[T] {
	l := &List[T]{}
	for _, p := range pools {
		if p == nil {
			continue
		}
		for _, c := range p.chunks {
			if len(c) > 0 {
				l.chunks = append(l.chunks, c)
				l.n += len(c)
			}
		}
	}
	return l
}

// Len returns the total number of elements in the list.
func (l *List[T]) Len() int { return l.n }

// ForEach calls fn for every element.
func (l *List[T]) ForEach(fn func(T)) {
	for _, c := range l.chunks {
		for i := range c {
			fn(c[i])
		}
	}
}

// Chunks exposes the chunk slices (read-only).
func (l *List[T]) Chunks() [][]T { return l.chunks }

// ChunkCache recycles fixed-length chunk storage between contraction runs.
// Pools created via NewPool draw their chunks from the cache; once a run's
// output List has been fully copied out, Release returns every chunk for
// the next run. Safe for concurrent use (it wraps sync.Pool; a deterministic
// locked LIFO under fastcc_checked), so parallel contractions share one
// cache.
type ChunkCache[T any] struct {
	chunkLen int
	pool     sync.Pool
	dropped  atomic.Uint64
	// vendedN/returnedN count chunks handed to pools and chunks that came
	// back through Release; their difference is the leak-accounting gauge
	// Outstanding.
	vendedN, returnedN atomic.Int64
	ck                 checkedCache[T] // zero-sized unless built with fastcc_checked
}

// NewChunkCache returns a cache of chunks with the given length; <= 0
// selects DefaultChunkLen.
func NewChunkCache[T any](chunkLen int) *ChunkCache[T] {
	if chunkLen <= 0 {
		chunkLen = DefaultChunkLen
	}
	return &ChunkCache[T]{chunkLen: chunkLen}
}

// NewPool returns an empty Pool whose chunks come from (and may return to)
// this cache.
func (c *ChunkCache[T]) NewPool() *Pool[T] {
	return &Pool[T]{chunkLen: c.chunkLen, cache: c}
}

func (c *ChunkCache[T]) get() []T {
	c.vendedN.Add(1)
	if b, ok := c.unpark(); ok {
		return b
	}
	b := make([]T, 0, c.chunkLen)
	c.noteVended(b)
	return b
}

// Outstanding reports how many vended chunks have not yet come back through
// Release — the cache's leak-accounting gauge. A workload that recycles
// every output list leaves the gauge where it found it; a positive drift
// means some caller is retaining chunk storage. Foreign chunks smuggled
// into Release are dropped without counting as returns, so in normal
// (unchecked) builds a same-capacity foreign chunk can skew the gauge low;
// the fastcc_checked build's provenance tracking keeps it exact.
func (c *ChunkCache[T]) Outstanding() int64 {
	return c.vendedN.Load() - c.returnedN.Load()
}

// Dropped reports how many chunks Release rejected instead of recycling:
// wrong-capacity storage always, and storage this cache never vended under
// fastcc_checked. A nonzero count means some caller is feeding the cache
// chunks it does not own — recycling those would hand one run's live memory
// to another.
func (c *ChunkCache[T]) Dropped() uint64 { return c.dropped.Load() }

// Release returns all chunk storage of l to the cache and empties l. Call
// only when every element has been copied out: the chunks will be handed to
// future pools and overwritten. Wrong-capacity or foreign chunks are not
// recycled — they are dropped for the garbage collector and counted in
// Dropped, because a chunk the cache cannot vouch for may still be
// referenced by its real owner.
//
//fastcc:owned l -- the recycle point: the cache owns l's chunks after this call
func (c *ChunkCache[T]) Release(l *List[T]) {
	if l == nil {
		return
	}
	for _, ch := range l.chunks {
		if cap(ch) != c.chunkLen || !c.vended(ch) {
			c.dropped.Add(1)
			continue
		}
		c.returnedN.Add(1)
		c.park(ch[:0])
	}
	l.chunks = nil
	l.n = 0
}

// Freelist is a bounded, concurrency-safe free list of reusable values
// grouped by a comparable key — the engine parks per-worker accumulators
// here between runs, keyed by their shape, so repeated contractions stop
// reallocating tile-sized buffers.
type Freelist[K comparable, V any] struct {
	mu     lockcheck.Mutex[freelistRank] //fastcc:lockrank 3 -- leaf below the core lifecycle locks; park/vend only
	perKey int
	items  map[K][]V
	ck     checkedFreelist[K, V] // zero-sized unless built with fastcc_checked
}

// freelistRank pins Freelist.mu into the dynamic lock-rank hierarchy
// (internal/lockcheck), mirroring the //fastcc:lockrank marker above for
// fastcc_checked builds.
type freelistRank struct{}

func (freelistRank) LockRank() (int, bool) { return 3, false }
func (freelistRank) RankLabel() string     { return "Freelist.mu" }

// NewFreelist returns a free list keeping at most perKey parked values per
// key (<= 0 selects 16).
func NewFreelist[K comparable, V any](perKey int) *Freelist[K, V] {
	if perKey <= 0 {
		perKey = 16
	}
	return &Freelist[K, V]{perKey: perKey, items: make(map[K][]V)}
}

// Get pops a parked value for key, reporting whether one was available.
func (f *Freelist[K, V]) Get(k K) (V, bool) {
	f.mu.Lock()
	vs := f.items[k]
	if len(vs) == 0 {
		f.mu.Unlock()
		var zero V
		return zero, false
	}
	v := vs[len(vs)-1]
	var zero V
	vs[len(vs)-1] = zero // do not pin the parked value through the backing array
	f.items[k] = vs[:len(vs)-1]
	f.mu.Unlock()
	f.note(k, v) // checked builds re-affirm the vended value's key binding
	return v, true
}

// Note registers v as belonging to key k for the checked build's provenance
// validation; a later Put of v under any other key panics at the Put instead
// of vending a wrong-shaped value at a future Get. Callers that construct a
// value for a specific key (the engine's per-shape accumulators) should Note
// it at construction time. A no-op without -tags fastcc_checked.
func (f *Freelist[K, V]) Note(k K, v V) { f.note(k, v) }

// Put parks v for future Get(k) calls; full lists drop v for the GC. Under
// fastcc_checked, a value whose recorded provenance names a different key
// panics here — the wrong-shaped-accumulator-under-the-right-key bug is
// rejected at the recycle point, not discovered at reuse. A value never seen
// before is bound to k by this Put.
//
//fastcc:owned v -- the recycle point: the freelist owns v after this call
func (f *Freelist[K, V]) Put(k K, v V) {
	f.checkPut(k, v)
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.items[k]) >= f.perKey {
		return
	}
	f.items[k] = append(f.items[k], v)
}

// SlicePool recycles variable-capacity scratch slices (the engine's
// de-linearization buffers). Safe for concurrent use.
type SlicePool[T any] struct {
	pool    sync.Pool
	dropped atomic.Uint64
	// vended/returned count Get and Put calls; their difference is the
	// leak-accounting gauge Outstanding.
	vended, returned atomic.Int64
	ck               checkedSlice[T] // zero-sized unless built with fastcc_checked
}

// Get returns an empty slice with capacity at least capHint, recycled when
// a large-enough one is parked.
func (s *SlicePool[T]) Get(capHint int) []T {
	s.vended.Add(1)
	if b, ok := s.unpark(); ok && cap(b) >= capHint {
		return b
	}
	return make([]T, 0, capHint)
}

// Outstanding reports how many Get results have not come back through Put —
// the pool's leak-accounting gauge. A balanced workload leaves it where it
// found it.
func (s *SlicePool[T]) Outstanding() int64 {
	return s.vended.Load() - s.returned.Load()
}

// Put parks b for reuse; the caller must not retain it. Zero-capacity
// slices carry no storage worth parking and are dropped with a count
// (still a return for leak accounting: the caller handed back what it held).
//
//fastcc:owned b -- the recycle point: the pool owns b after this call
func (s *SlicePool[T]) Put(b []T) {
	s.returned.Add(1)
	if cap(b) == 0 {
		s.dropped.Add(1)
		return
	}
	s.park(b[:0])
}

// Dropped reports how many Put calls were rejected (zero-capacity slices).
func (s *SlicePool[T]) Dropped() uint64 { return s.dropped.Load() }
