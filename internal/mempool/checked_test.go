package mempool

import "testing"

// mustPanicWhenChecked runs fn expecting a poison panic under
// -tags fastcc_checked and silent success otherwise. It returns the
// recovered value ("" when no panic fired).
func mustPanicWhenChecked(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if Checked && r == nil {
			t.Fatalf("%s: fastcc_checked build did not panic on a deliberate use-after-recycle", what)
		}
		if !Checked && r != nil {
			t.Fatalf("%s: normal build panicked unexpectedly: %v", what, r)
		}
	}()
	fn()
}

// TestSlicePoolUseAfterRecycle injects the exact bug class the poisoning
// exists for: a caller keeps its slice after Put and writes through it. The
// checked build must turn the next Get into a deterministic panic; the
// normal build silently recycles (which is why checked mode exists).
func TestSlicePoolUseAfterRecycle(t *testing.T) {
	var s SlicePool[uint64]
	b := s.Get(16)
	b = append(b, 1, 2, 3)
	s.Put(b)
	b[0] = 42 // deliberate use-after-recycle: b aliases parked storage
	mustPanicWhenChecked(t, "SlicePool", func() {
		_ = s.Get(8)
	})
}

// TestChunkCacheUseAfterRecycle is the same injection through the chunk
// path: a stale List chunk reference written after Release must poison-panic
// when the cache re-vends the storage to the next pool.
func TestChunkCacheUseAfterRecycle(t *testing.T) {
	c := NewChunkCache[int](4)
	p := c.NewPool()
	for i := 0; i < 4; i++ {
		p.Append(i)
	}
	l := Concat(p)
	stale := l.Chunks()[0]
	c.Release(l)
	stale[2] = 99 // deliberate use-after-recycle through the old chunk
	mustPanicWhenChecked(t, "ChunkCache", func() {
		c.NewPool().Append(7)
	})
}

// TestSlicePoolCleanRecycleDoesNotPanic pins the other half of the checked
// contract: a correct Put/Get cycle must never trip the poison assert.
func TestSlicePoolCleanRecycleDoesNotPanic(t *testing.T) {
	var s SlicePool[float64]
	for i := 0; i < 3; i++ {
		b := s.Get(32)
		b = append(b, 1.5, 2.5)
		s.Put(b)
	}
	b := s.Get(16)
	if len(b) != 0 {
		t.Fatalf("recycled slice not empty: %d", len(b))
	}
}

// TestChunkCacheRejectsWrongCapacity: a chunk of the wrong capacity must be
// dropped with a count, never recycled — recycling it would vend
// wrong-shaped storage to the next pool.
func TestChunkCacheRejectsWrongCapacity(t *testing.T) {
	c := NewChunkCache[int](4)
	foreign := New[int](8) // chunkLen 8: caps can never match the cache's 4
	for i := 0; i < 3; i++ {
		foreign.Append(i)
	}
	c.Release(Concat(foreign))
	if got := c.Dropped(); got != 1 {
		t.Fatalf("Dropped=%d after one wrong-capacity chunk, want 1", got)
	}
	p := c.NewPool()
	p.Append(1)
	if got := cap(p.Chunks()[0]); got != 4 {
		t.Fatalf("cache vended a foreign chunk: cap=%d want 4", got)
	}
}

// TestChunkCacheForeignSameCapacity: same capacity, wrong provenance. The
// normal build cannot tell these apart (capacity is its only signal) and
// recycles; the checked build tracks which arrays the cache vended and
// rejects the impostor.
func TestChunkCacheForeignSameCapacity(t *testing.T) {
	c := NewChunkCache[int](4)
	foreign := New[int](4) // same chunkLen, but storage the cache never vended
	foreign.Append(1)
	c.Release(Concat(foreign))
	if Checked {
		if got := c.Dropped(); got != 1 {
			t.Fatalf("checked build: Dropped=%d for a foreign same-cap chunk, want 1", got)
		}
	} else {
		if got := c.Dropped(); got != 0 {
			t.Fatalf("normal build: Dropped=%d, capacity-matched chunks are accepted", got)
		}
	}
}

// TestFreelistCrossKeyPutPanicsWhenChecked injects the ROADMAP's provenance
// gap: a shaped value vended for one key is parked under another. The
// checked build must reject it at the Put (the recycle point); the normal
// build silently parks — a wrong-shaped value a future Get would vend.
func TestFreelistCrossKeyPutPanicsWhenChecked(t *testing.T) {
	f := NewFreelist[string, *int](4)
	v := new(int)
	f.Note("shape-a", v) // construction-time binding, as the engine does
	mustPanicWhenChecked(t, "Freelist cross-key Put", func() {
		f.Put("shape-b", v)
	})
}

// TestFreelistFirstPutBindsKey: a value never Noted is bound by its first
// Put; a later Put under a different key is the same cross-key violation.
func TestFreelistFirstPutBindsKey(t *testing.T) {
	f := NewFreelist[int, *int](4)
	v := new(int)
	f.Put(1, v) // first Put binds v to key 1
	got, ok := f.Get(1)
	if !ok || got != v {
		t.Fatalf("Get(1) = (%p, %v), want the parked value back", got, ok)
	}
	mustPanicWhenChecked(t, "Freelist rebind via Put", func() {
		f.Put(2, v)
	})
}

// TestFreelistConflictingNotePanicsWhenChecked: re-registering a value under
// a different key at Note time is caught at the Note, before the value ever
// parks.
func TestFreelistConflictingNotePanicsWhenChecked(t *testing.T) {
	f := NewFreelist[int, *int](4)
	v := new(int)
	f.Note(1, v)
	mustPanicWhenChecked(t, "Freelist conflicting Note", func() {
		f.Note(2, v)
	})
}

// TestFreelistCleanCycleNeverPanics pins the happy path in both modes:
// Note + Put + Get under one key round-trips the value with no provenance
// complaint, repeatedly.
func TestFreelistCleanCycleNeverPanics(t *testing.T) {
	f := NewFreelist[string, *int](4)
	v := new(int)
	f.Note("k", v)
	for i := 0; i < 3; i++ {
		f.Put("k", v)
		got, ok := f.Get("k")
		if !ok || got != v {
			t.Fatalf("cycle %d: Get = (%p, %v), want the parked value", i, got, ok)
		}
	}
}

// TestFreelistNonComparableValuesSkipProvenance: values whose dynamic type
// cannot be a map key (slices) are exempt from tracking — cross-key Put
// must not panic in either build, because identity cannot be established.
func TestFreelistNonComparableValuesSkipProvenance(t *testing.T) {
	f := NewFreelist[int, []int](4)
	v := []int{1, 2, 3}
	f.Put(1, v)
	f.Put(2, v) // untrackable: no identity, no provenance, no panic
	if _, ok := f.Get(1); !ok {
		t.Fatal("Get(1) found nothing after Put(1)")
	}
	if _, ok := f.Get(2); !ok {
		t.Fatal("Get(2) found nothing after Put(2)")
	}
}

// TestChunkCachePointeredUseAfterRecycle: an element type containing
// pointers forces the byte sentinel to stand down (the GC owns those bits);
// the shadow layer's zero-fill parking must catch the same stale write.
func TestChunkCachePointeredUseAfterRecycle(t *testing.T) {
	c := NewChunkCache[[]int](4)
	p := c.NewPool()
	p.Append([]int{1, 2})
	l := Concat(p)
	stale := l.Chunks()[0]
	c.Release(l)
	if Checked && stale[:1][0] != nil {
		t.Fatal("parked pointered chunk not cleared to zero values")
	}
	stale[:1][0] = []int{9} // deliberate use-after-recycle through the old chunk
	mustPanicWhenChecked(t, "ChunkCache pointered", func() {
		c.NewPool().Append([]int{7})
	})
}

// TestChunkCachePointeredCleanRecycle pins the other half of the shadow
// contract: a correct Release/NewPool cycle over a pointered element type
// must never trip the zero assert, and the recycled chunk must work.
func TestChunkCachePointeredCleanRecycle(t *testing.T) {
	c := NewChunkCache[[]int](4)
	for i := 0; i < 3; i++ {
		p := c.NewPool()
		p.Append([]int{i})
		p.Append([]int{i, i})
		c.Release(Concat(p))
	}
	p := c.NewPool()
	p.Append([]int{42})
	if got := p.Chunks()[0][0][0]; got != 42 {
		t.Fatalf("recycled pointered chunk read back %d, want 42", got)
	}
}

// TestSlicePoolDoublePutPanicsWhenChecked injects the aliasing bug the
// shadow epoch exists for: the same backing array parked twice with no
// intervening Get passes the poison assert (the second park re-writes the
// sentinel) but would vend one chunk to two future Gets. The parity check
// must reject the second park; the normal build silently double-parks.
func TestSlicePoolDoublePutPanicsWhenChecked(t *testing.T) {
	var s SlicePool[uint64]
	b := s.Get(8)
	b = append(b, 1)
	s.Put(b)
	mustPanicWhenChecked(t, "SlicePool double Put", func() {
		s.Put(b)
	})
}

// TestSlicePoolPointeredUseAfterRecycle is the SlicePool twin of the
// pointered chunk test: scratch slices of pointered types get the shadow
// zero-fill, not the sentinel.
func TestSlicePoolPointeredUseAfterRecycle(t *testing.T) {
	var s SlicePool[[]float64]
	b := s.Get(4)
	b = append(b, []float64{1.5})
	s.Put(b)
	b[:1][0] = []float64{9} // deliberate use-after-recycle
	mustPanicWhenChecked(t, "SlicePool pointered", func() {
		_ = s.Get(2)
	})
}

// TestSlicePoolEpochReusableAfterCleanCycle: park/vend/park on the same
// array must never trip the parity check — only back-to-back parks do.
func TestSlicePoolEpochReusableAfterCleanCycle(t *testing.T) {
	var s SlicePool[uint64]
	b := s.Get(8)
	for i := 0; i < 3; i++ {
		s.Put(b)
		b = s.Get(4) // LIFO returns the same backing array
	}
	s.Put(b)
}

// TestSlicePoolDropsZeroCapacity: parking nothing is counted, not recycled.
func TestSlicePoolDropsZeroCapacity(t *testing.T) {
	var s SlicePool[byte]
	s.Put(nil)
	s.Put([]byte{})
	if got := s.Dropped(); got != 2 {
		t.Fatalf("Dropped=%d want 2", got)
	}
}

// TestPoolResetPoisonsRetainedChunk: under fastcc_checked, a stale Chunks
// reference held across Reset must read the sentinel, not plausible stale
// values; appends after Reset still work because they overwrite the poison.
func TestPoolResetPoisonsRetainedChunk(t *testing.T) {
	p := New[uint32](4)
	for i := 0; i < 3; i++ {
		p.Append(uint32(i + 1))
	}
	stale := p.Chunks()[0]
	p.Reset()
	if Checked {
		if stale[:3][0] != 0xA5A5A5A5 {
			t.Fatalf("retained chunk not poisoned after Reset: %#x", stale[:3][0])
		}
	}
	p.Append(7)
	if p.Chunks()[0][0] != 7 {
		t.Fatalf("append after Reset = %d, want 7", p.Chunks()[0][0])
	}
}
