package gen

import (
	"fmt"
	"math"

	"fastcc/internal/coo"
)

// The DLPNO (domain-localized pair natural orbital) generator synthesizes
// the three-center integral tensors of the paper's quantum-chemistry
// benchmarks (Section 6.1). The paper obtains TE_ov, TE_vv and TE_oo for
// Caffeine and Guanine from the TAMM system; we reproduce their structure
// from first principles: orbitals are localized at atomic centers, and a
// three-center integral (a, b | k) is nonzero only when orbitals a and b
// are spatially close and the auxiliary function k is close to the pair —
// with Gaussian-decay magnitudes. This yields the block-sparse, spatially
// clustered slices (and the very different o/v densities of Table 3) that
// make these contractions interesting.

// Molecule parameterizes one synthetic molecule.
type Molecule struct {
	Name  string
	Atoms int
	// Orbital space sizes: occupied, virtual (PAO), auxiliary (fitting).
	NOcc, NVirt, NAux int
	// Locality cutoffs (unit-cube distances). Virtuals are diffuse, so
	// RVV > ROV > ROO; each tensor also has its own auxiliary-fitting
	// cutoff. Together these reproduce the paper's density ordering
	// p(TE_vv) >> p(TE_ov) > p(TE_oo) (Table 3).
	ROO, ROV, RVV          float64
	RAuxOO, RAuxOV, RAuxVV float64
	Seed                   uint64
}

// Guanine approximates the paper's Guanine problem: moderate density
// (Table 3 reports p_vv ≈ 18 %, p_ov ≈ 0.6 %, p_oo ≈ 0.2 %).
var Guanine = Molecule{
	Name: "guanine", Atoms: 16,
	NOcc: 39, NVirt: 210, NAux: 280,
	ROO: 0.10, ROV: 0.15, RVV: 0.46,
	RAuxOO: 0.28, RAuxOV: 0.52, RAuxVV: 0.62,
	Seed: 1001,
}

// Caffeine approximates the paper's Caffeine problem: denser pair domains
// (Table 3 reports p_vv ≈ 42 %, p_ov ≈ 3.7 %, p_oo ≈ 1 %).
var Caffeine = Molecule{
	Name: "caffeine", Atoms: 24,
	NOcc: 37, NVirt: 160, NAux: 220,
	ROO: 0.17, ROV: 0.26, RVV: 0.75,
	RAuxOO: 0.38, RAuxOV: 0.66, RAuxVV: 0.85,
	Seed: 2002,
}

// Molecules lists the quantum-chemistry presets.
var Molecules = []Molecule{Guanine, Caffeine}

// MoleculeByName returns the preset with the given name.
func MoleculeByName(name string) (Molecule, error) {
	for _, m := range Molecules {
		if m.Name == name {
			return m, nil
		}
	}
	return Molecule{}, fmt.Errorf("gen: unknown molecule %q", name)
}

// Scaled shrinks the orbital spaces by scale^(1/3) each (so tensor nonzero
// counts scale roughly linearly with scale) while keeping cutoffs — and
// therefore densities — unchanged.
func (m Molecule) Scaled(scale float64) Molecule {
	if scale >= 1 || scale <= 0 {
		return m
	}
	f := math.Pow(scale, 1.0/3)
	shrink := func(n int) int {
		s := int(math.Round(float64(n) * f))
		if s < 4 {
			s = 4
		}
		return s
	}
	m.NOcc, m.NVirt, m.NAux = shrink(m.NOcc), shrink(m.NVirt), shrink(m.NAux)
	return m
}

type point struct{ x, y, z float64 }

func dist2(a, b point) float64 {
	dx, dy, dz := a.x-b.x, a.y-b.y, a.z-b.z
	return dx*dx + dy*dy + dz*dz
}

func mid(a, b point) point {
	return point{(a.x + b.x) / 2, (a.y + b.y) / 2, (a.z + b.z) / 2}
}

// geometry holds the orbital centers for one molecule realization.
type geometry struct {
	occ, virt, aux []point
}

// layout places atoms uniformly in the unit cube and attaches each orbital
// to an atom with a small jitter — orbitals on the same atom are close,
// giving the block structure of localized bases.
func (m Molecule) layout() *geometry {
	rng := NewRNG(m.Seed)
	atoms := make([]point, m.Atoms)
	for i := range atoms {
		atoms[i] = point{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	place := func(n int) []point {
		ps := make([]point, n)
		for i := range ps {
			a := atoms[rng.Intn(len(atoms))]
			ps[i] = point{
				a.x + (rng.Float64()-0.5)*0.08,
				a.y + (rng.Float64()-0.5)*0.08,
				a.z + (rng.Float64()-0.5)*0.08,
			}
		}
		return ps
	}
	return &geometry{occ: place(m.NOcc), virt: place(m.NVirt), aux: place(m.NAux)}
}

// buildTE assembles a three-center tensor TE(a, b, k) over the given center
// sets: nonzero iff dist(a,b) ≤ rPair and dist(k, midpoint) ≤ rAux, with
// Gaussian-decay values. Pair screening first keeps generation at
// O(A·B + pairs·K).
func (m Molecule) buildTE(as, bs, ks []point, rPair, rAux float64, seed uint64) *coo.Tensor {
	rng := NewRNG(m.Seed*2654435761 + seed)
	dims := []uint64{uint64(len(as)), uint64(len(bs)), uint64(len(ks))}
	t := coo.New(dims, 0)
	rp2 := rPair * rPair
	rk2 := rAux * rAux
	coords := make([]uint64, 3)
	for i, pa := range as {
		for j, pb := range bs {
			dab2 := dist2(pa, pb)
			if dab2 > rp2 {
				continue
			}
			center := mid(pa, pb)
			for k, pk := range ks {
				dk2 := dist2(pk, center)
				if dk2 > rk2 {
					continue
				}
				mag := math.Exp(-2*dab2 - dk2)
				if rng.Uint64()&1 == 0 {
					mag = -mag
				}
				coords[0], coords[1], coords[2] = uint64(i), uint64(j), uint64(k)
				t.Append(coords, mag)
			}
		}
	}
	return t
}

// TEov builds TE_ov(i, μ, k) — occupied × virtual × auxiliary.
func (m Molecule) TEov() *coo.Tensor {
	g := m.layout()
	return m.buildTE(g.occ, g.virt, g.aux, m.ROV, m.RAuxOV, 11)
}

// TEoo builds TE_oo(i, j, k) — occupied × occupied × auxiliary.
func (m Molecule) TEoo() *coo.Tensor {
	g := m.layout()
	return m.buildTE(g.occ, g.occ, g.aux, m.ROO, m.RAuxOO, 22)
}

// TEvv builds TE_vv(μ, ν, k) — virtual × virtual × auxiliary.
func (m Molecule) TEvv() *coo.Tensor {
	g := m.layout()
	return m.buildTE(g.virt, g.virt, g.aux, m.RVV, m.RAuxVV, 33)
}

// QCKinds names the three DLPNO contractions of the paper.
var QCKinds = []string{"ovov", "vvoo", "vvov"}

// Contraction returns the operand tensors and spec of one paper contraction:
//
//	ovov: Int(i,μ,j,ν)   = TE_ov(i,μ,k)  × TE_ov(j,ν,k)
//	vvoo: Int(μ,ν,i,j)   = TE_vv(μ,ν,k)  × TE_oo(i,j,k)
//	vvov: Int(μ,ν,i,μ1)  = TE_vv(μ,ν,k)  × TE_ov(i,μ1,k)
//
// All three contract the auxiliary index k (mode 2 of both operands).
func (m Molecule) Contraction(kind string) (l, r *coo.Tensor, spec coo.Spec, err error) {
	spec = coo.Spec{CtrLeft: []int{2}, CtrRight: []int{2}}
	switch kind {
	case "ovov":
		l, r = m.TEov(), m.TEov()
	case "vvoo":
		l, r = m.TEvv(), m.TEoo()
	case "vvov":
		l, r = m.TEvv(), m.TEov()
	default:
		return nil, nil, coo.Spec{}, fmt.Errorf("gen: unknown QC contraction %q (want ovov, vvoo or vvov)", kind)
	}
	return l, r, spec, nil
}
