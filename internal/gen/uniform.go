package gen

import (
	"fmt"

	"fastcc/internal/coo"
)

// Options tunes random tensor generation.
type Options struct {
	// Skew biases coordinates toward low indices (1 = uniform). Real
	// FROSTT tensors are far from uniform; a mild skew (1.5-3) reproduces
	// the clustered slices that make output-density estimation interesting.
	Skew float64
	// IntValues selects small integer values (exact accumulation) instead
	// of signed reals; tests use this for bit-exact comparisons.
	IntValues bool
}

// Uniform generates a sparse tensor with nnz distinct random coordinates.
// nnz is clamped to half the dense index-space size so rejection sampling
// terminates quickly. Deterministic in (dims, nnz, seed, opts).
func Uniform(dims []uint64, nnz int, seed uint64, opts Options) (*coo.Tensor, error) {
	size, err := coo.LinearSize(dims)
	if err != nil {
		// Index space exceeds uint64: collisions are vanishingly unlikely;
		// sample without distinctness tracking.
		return uniformHuge(dims, nnz, seed, opts)
	}
	if size == 0 {
		return nil, fmt.Errorf("gen: empty index space %v", dims)
	}
	maxNNZ := int(size / 2)
	if maxNNZ == 0 {
		maxNNZ = 1
	}
	if nnz > maxNNZ {
		nnz = maxNNZ
	}
	rng := NewRNG(seed)
	strides, err := coo.Strides(dims)
	if err != nil {
		return nil, err
	}
	t := coo.New(dims, nnz)
	seen := make(map[uint64]struct{}, nnz)
	coords := make([]uint64, len(dims))
	attempts := 0
	maxAttempts := 40*nnz + 1000
	for len(seen) < nnz {
		if attempts++; attempts > maxAttempts {
			// Heavy skew can make distinct draws scarce; accept what we
			// have rather than loop forever.
			break
		}
		for m, d := range dims {
			coords[m] = rng.Skewed(d, opts.Skew)
		}
		key := coo.Linearize(coords, strides)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		t.Append(coords, value(rng, opts))
	}
	return t, nil
}

func uniformHuge(dims []uint64, nnz int, seed uint64, opts Options) (*coo.Tensor, error) {
	rng := NewRNG(seed)
	t := coo.New(dims, nnz)
	coords := make([]uint64, len(dims))
	for i := 0; i < nnz; i++ {
		for m, d := range dims {
			coords[m] = rng.Skewed(d, opts.Skew)
		}
		t.Append(coords, value(rng, opts))
	}
	t.Dedup()
	return t, nil
}

func value(rng *RNG, opts Options) float64 {
	if opts.IntValues {
		return rng.IntValue()
	}
	return rng.Value()
}

// UniformMatrix generates a matrixized operand directly (for kernel-level
// tests and microbenchmarks that skip the tensor pipeline).
func UniformMatrix(extDim, ctrDim uint64, nnz int, seed uint64, opts Options) (*coo.Matrix, error) {
	t, err := Uniform([]uint64{extDim, ctrDim}, nnz, seed, opts)
	if err != nil {
		return nil, err
	}
	return t.Matrixize([]int{0}, []int{1})
}
