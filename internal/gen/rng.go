// Package gen generates the benchmark workloads of the paper's evaluation
// (Section 6.1): uniform random sparse tensors, synthetic FROSTT-geometry
// tensors (Table 2), and block-sparse DLPNO quantum-chemistry tensors for
// the ovov/vvoo/vvov contractions. All generators are deterministic given a
// seed, so experiments are reproducible run to run.
package gen

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic generator (xoshiro256** seeded via
// splitmix64). It is independent of math/rand so generated workloads stay
// byte-identical across Go releases.
type RNG struct {
	s [4]uint64
}

// NewRNG seeds the generator. Any seed (including 0) is valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 stream to fill the state (never all-zero).
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("gen: Uint64n(0)")
	}
	// Multiply-shift rejection-free mapping (slight bias < 2^-64·n,
	// irrelevant for workload generation).
	hi, _ := bits.Mul64(r.Uint64(), n)
	return hi
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int { return int(r.Uint64n(uint64(n))) }

// Value returns a nonzero tensor value: uniform magnitude in (0.1, 1.1)
// with random sign, so accumulated results rarely cancel exactly.
func (r *RNG) Value() float64 {
	v := 0.1 + r.Float64()
	if r.Uint64()&1 == 0 {
		return -v
	}
	return v
}

// IntValue returns a small nonzero integer value in [1, 9] — exact in
// float64 accumulation, used where tests require bit-exact comparisons.
func (r *RNG) IntValue() float64 { return float64(r.Intn(9) + 1) }

// Skewed returns a coordinate in [0, n) biased toward low indices with the
// given skew exponent: 1 is uniform; larger values concentrate mass (a
// crude stand-in for the nonuniform coordinate distributions of real
// FROSTT tensors).
func (r *RNG) Skewed(n uint64, skew float64) uint64 {
	if skew <= 1 {
		return r.Uint64n(n)
	}
	u := r.Float64()
	c := uint64(math.Pow(u, skew) * float64(n))
	if c >= n {
		c = n - 1
	}
	return c
}
