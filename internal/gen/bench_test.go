package gen

import "testing"

func BenchmarkUniform100k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Uniform([]uint64{1 << 12, 1 << 12, 64}, 100_000, uint64(i), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDLPNOGuanineSmall(b *testing.B) {
	m := Guanine.Scaled(0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.TEvv()
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
