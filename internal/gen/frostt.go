package gen

import (
	"fmt"
	"math"

	"fastcc/internal/coo"
)

// FrosttSpec describes one FROSTT benchmark tensor (paper Table 2) and the
// self-contraction mode sets the Sparta evaluation uses on it.
type FrosttSpec struct {
	Name string
	// Dims are the paper's mode extents.
	Dims []uint64
	// NNZ is the paper's nonzero count.
	NNZ int
	// Contractions lists the evaluated self-contraction mode sets; e.g.
	// Chicago is contracted over {0}, {0,1} and {1,2,3}.
	Contractions [][]int
	// Skew is the coordinate skew used when synthesizing the tensor
	// (FROSTT data are clustered, not uniform).
	Skew float64
}

// FrosttSuite reproduces Table 2 of the paper with the contraction sets of
// Section 6.1 (named there nips2/nips23/nips013, chic0/chic01/chic123,
// uber02/uber123, vast01/vast014).
var FrosttSuite = []FrosttSpec{
	{
		Name: "nips",
		Dims: []uint64{2482, 2862, 14036, 17},
		NNZ:  3_101_609,
		Contractions: [][]int{
			{2},       // nips2
			{2, 3},    // nips23
			{0, 1, 3}, // nips013
		},
		Skew: 2,
	},
	{
		Name: "chicago",
		Dims: []uint64{6186, 24, 77, 32},
		NNZ:  5_330_673,
		Contractions: [][]int{
			{0},       // chic0
			{0, 1},    // chic01
			{1, 2, 3}, // chic123
		},
		Skew: 1.5,
	},
	{
		Name: "vast",
		Dims: []uint64{165_427, 11_374, 2, 100, 89},
		NNZ:  26_021_945,
		Contractions: [][]int{
			{0, 1},    // vast01
			{0, 1, 4}, // vast014
		},
		Skew: 1.5,
	},
	{
		Name: "uber",
		Dims: []uint64{183, 24, 1140, 1717},
		NNZ:  3_309_490,
		Contractions: [][]int{
			{0, 2},    // uber02
			{1, 2, 3}, // uber123
		},
		Skew: 1.5,
	},
}

// FrosttByName returns the spec with the given name.
func FrosttByName(name string) (FrosttSpec, error) {
	for _, s := range FrosttSuite {
		if s.Name == name {
			return s, nil
		}
	}
	return FrosttSpec{}, fmt.Errorf("gen: unknown FROSTT tensor %q", name)
}

// Scaled returns a copy of the spec shrunk by the given factor in [0, 1]:
// nonzeros scale by the factor and every mode extent by factor^(1/order),
// which preserves the tensor's density — and therefore the model's
// dense/sparse decisions — at laptop-sized nonzero counts.
func (s FrosttSpec) Scaled(scale float64) FrosttSpec {
	if scale >= 1 || scale <= 0 {
		return s
	}
	out := s
	out.Dims = make([]uint64, len(s.Dims))
	dimScale := math.Pow(scale, 1/float64(len(s.Dims)))
	for m, d := range s.Dims {
		nd := uint64(math.Round(float64(d) * dimScale))
		if nd < 2 {
			nd = 2
		}
		out.Dims[m] = nd
	}
	out.NNZ = int(float64(s.NNZ) * scale)
	if out.NNZ < 16 {
		out.NNZ = 16
	}
	return out
}

// Generate synthesizes the tensor: distinct coordinates with the spec's
// skew, deterministic in the seed.
func (s FrosttSpec) Generate(seed uint64) (*coo.Tensor, error) {
	return Uniform(s.Dims, s.NNZ, seed, Options{Skew: s.Skew})
}

// ContractionName renders the paper's naming convention: tensor name plus
// the contracted mode digits (e.g. "chicago-0", "nips-23").
func ContractionName(tensor string, modes []int) string {
	name := tensor + "-"
	for _, m := range modes {
		name += fmt.Sprintf("%d", m)
	}
	return name
}
