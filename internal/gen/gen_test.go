package gen

import (
	"math"
	"testing"

	"fastcc/internal/coo"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds agree %d/100 times", same)
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(17); v >= 17 {
			t.Fatalf("Uint64n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		if v := r.IntValue(); v < 1 || v > 9 {
			t.Fatalf("IntValue out of range: %g", v)
		}
		if v := r.Value(); v == 0 || math.Abs(v) > 1.1 {
			t.Fatalf("Value out of range: %g", v)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(99)
	const buckets, draws = 16, 160000
	var hist [buckets]int
	for i := 0; i < draws; i++ {
		hist[r.Uint64n(buckets)]++
	}
	want := draws / buckets
	for b, c := range hist {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d has %d draws, want ≈%d", b, c, want)
		}
	}
}

func TestSkewedBiasesLow(t *testing.T) {
	r := NewRNG(5)
	const n, draws = 1000, 20000
	lowUniform, lowSkewed := 0, 0
	for i := 0; i < draws; i++ {
		if r.Skewed(n, 1) < n/10 {
			lowUniform++
		}
		if r.Skewed(n, 3) < n/10 {
			lowSkewed++
		}
	}
	if lowSkewed < 2*lowUniform {
		t.Fatalf("skew 3 low-decile share %d not ≫ uniform %d", lowSkewed, lowUniform)
	}
}

func TestUniformDistinctAndValid(t *testing.T) {
	tn, err := Uniform([]uint64{30, 20, 10}, 500, 9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Validate(); err != nil {
		t.Fatal(err)
	}
	if tn.NNZ() != 500 {
		t.Fatalf("nnz=%d", tn.NNZ())
	}
	c := tn.Clone()
	c.Dedup()
	if c.NNZ() != 500 {
		t.Fatalf("coordinates not distinct: %d after dedup", c.NNZ())
	}
}

func TestUniformClampsToHalfSpace(t *testing.T) {
	tn, err := Uniform([]uint64{4, 4}, 1000, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tn.NNZ() > 8 {
		t.Fatalf("nnz=%d exceeds half the 16-cell space", tn.NNZ())
	}
}

func TestUniformDeterministic(t *testing.T) {
	a, _ := Uniform([]uint64{50, 50}, 200, 77, Options{Skew: 2})
	b, _ := Uniform([]uint64{50, 50}, 200, 77, Options{Skew: 2})
	if !coo.Equal(a, b) {
		t.Fatal("same seed, different tensor")
	}
	c, _ := Uniform([]uint64{50, 50}, 200, 78, Options{Skew: 2})
	if coo.Equal(a, c) {
		t.Fatal("different seeds, same tensor")
	}
}

func TestUniformHugeIndexSpace(t *testing.T) {
	dims := []uint64{1 << 40, 1 << 40, 1 << 40} // product overflows uint64
	tn, err := Uniform(dims, 100, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tn.NNZ() == 0 || tn.Validate() != nil {
		t.Fatalf("huge-space generation broken: nnz=%d", tn.NNZ())
	}
}

func TestUniformMatrix(t *testing.T) {
	m, err := UniformMatrix(100, 40, 300, 5, Options{IntValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.ExtDim != 100 || m.CtrDim != 40 || m.NNZ() != 300 {
		t.Fatalf("matrix %d/%d nnz=%d", m.ExtDim, m.CtrDim, m.NNZ())
	}
	for i := range m.Val {
		if m.Ext[i] >= 100 || m.Ctr[i] >= 40 || m.Val[i] < 1 {
			t.Fatalf("entry %d out of range", i)
		}
	}
}

func TestFrosttSuiteMatchesTable2(t *testing.T) {
	want := map[string]struct {
		order int
		nnz   int
	}{
		"nips": {4, 3_101_609}, "chicago": {4, 5_330_673},
		"vast": {5, 26_021_945}, "uber": {4, 3_309_490},
	}
	for _, s := range FrosttSuite {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected tensor %q", s.Name)
		}
		if len(s.Dims) != w.order || s.NNZ != w.nnz {
			t.Fatalf("%s: order=%d nnz=%d want %d/%d", s.Name, len(s.Dims), s.NNZ, w.order, w.nnz)
		}
		if len(s.Contractions) < 2 {
			t.Fatalf("%s: needs at least 2 contraction sets", s.Name)
		}
	}
	if len(FrosttSuite) != 4 {
		t.Fatalf("suite has %d tensors", len(FrosttSuite))
	}
}

func TestFrosttScaledPreservesDensity(t *testing.T) {
	s, err := FrosttByName("chicago")
	if err != nil {
		t.Fatal(err)
	}
	sc := s.Scaled(0.01)
	orig := float64(s.NNZ)
	for _, d := range s.Dims {
		orig /= float64(d)
	}
	scaled := float64(sc.NNZ)
	for _, d := range sc.Dims {
		scaled /= float64(d)
	}
	if scaled < orig/3 || scaled > orig*3 {
		t.Fatalf("density drifted: %g vs %g", scaled, orig)
	}
	if sc.NNZ >= s.NNZ {
		t.Fatal("scale did not shrink")
	}
	if full := s.Scaled(1.5); full.NNZ != s.NNZ {
		t.Fatal("scale >= 1 should be identity")
	}
}

func TestFrosttGenerate(t *testing.T) {
	s, _ := FrosttByName("uber")
	sc := s.Scaled(0.002)
	tn, err := sc.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Validate(); err != nil {
		t.Fatal(err)
	}
	if tn.NNZ() < sc.NNZ/2 {
		t.Fatalf("nnz=%d want ≈%d", tn.NNZ(), sc.NNZ)
	}
	if _, err := FrosttByName("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestContractionName(t *testing.T) {
	if got := ContractionName("chicago", []int{1, 2, 3}); got != "chicago-123" {
		t.Fatalf("got %q", got)
	}
}

func TestDLPNODensityOrdering(t *testing.T) {
	// The paper's structure: p(TE_vv) ≫ p(TE_ov) > p(TE_oo) for both
	// molecules, with caffeine denser than guanine in vv.
	for _, mol := range Molecules {
		m := mol.Scaled(0.05)
		vv, ov, oo := m.TEvv(), m.TEov(), m.TEoo()
		for _, tn := range []*coo.Tensor{vv, ov, oo} {
			if err := tn.Validate(); err != nil {
				t.Fatalf("%s: %v", m.Name, err)
			}
			if tn.NNZ() == 0 {
				t.Fatalf("%s: empty tensor", m.Name)
			}
		}
		dvv, dov, doo := vv.Density(), ov.Density(), oo.Density()
		if !(dvv > 3*dov) {
			t.Fatalf("%s: vv density %g not ≫ ov %g", m.Name, dvv, dov)
		}
		if !(dov > doo) {
			t.Fatalf("%s: ov density %g not > oo %g", m.Name, dov, doo)
		}
	}
}

func TestDLPNOContractionKinds(t *testing.T) {
	m := Guanine.Scaled(0.02)
	for _, kind := range QCKinds {
		l, r, spec, err := m.Contraction(kind)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Validate(l, r); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if l.Order() != 3 || r.Order() != 3 {
			t.Fatalf("%s: operand orders %d/%d", kind, l.Order(), r.Order())
		}
	}
	if _, _, _, err := m.Contraction("xxxx"); err == nil {
		t.Fatal("unknown kind should error")
	}
	if _, err := MoleculeByName("water"); err == nil {
		t.Fatal("unknown molecule should error")
	}
	if g, err := MoleculeByName("guanine"); err != nil || g.Name != "guanine" {
		t.Fatal("MoleculeByName failed")
	}
}

func TestDLPNODeterministic(t *testing.T) {
	a := Guanine.Scaled(0.02).TEov()
	b := Guanine.Scaled(0.02).TEov()
	if !coo.Equal(a, b) {
		t.Fatal("DLPNO generation not deterministic")
	}
}

func TestMoleculeScaledShrinks(t *testing.T) {
	m := Caffeine.Scaled(0.1)
	if m.NOcc >= Caffeine.NOcc || m.NVirt >= Caffeine.NVirt || m.NAux >= Caffeine.NAux {
		t.Fatalf("not shrunk: %+v", m)
	}
	if m.NOcc < 4 || m.NVirt < 4 || m.NAux < 4 {
		t.Fatalf("shrunk below floor: %+v", m)
	}
	if id := Caffeine.Scaled(2); id.NOcc != Caffeine.NOcc {
		t.Fatal("scale > 1 should be identity")
	}
}
