// Package csf implements the Compressed Sparse Fiber format (SPLATT-style,
// paper Section 2.2): a sparse tensor structured as a tree whose level-k
// nodes are the distinct mode-k indices under a fixed outer-to-inner mode
// order, and whose leaves are the nonzeros. Construction sorts the nonzeros
// (the O(nnz·log nnz) cost the paper attributes to CSF) and compresses runs
// level by level.
//
// CSF underlies the TACO-style contraction-inner baseline: the contraction
// index is placed innermost so fibers can be co-iterated by sorted merge.
package csf

import (
	"fmt"

	"fastcc/internal/coo"
)

// Tree is a CSF tensor. For a D-mode tensor:
//
//	Fids[k]      — index values of the level-k nodes (k = 0..D-1)
//	Fptr[k][i]   — children of level-k node i are level-(k+1) nodes
//	               Fptr[k][i] .. Fptr[k][i+1]-1  (k = 0..D-2)
//	Vals[j]      — value of leaf j (aligned with Fids[D-1])
//
// Sibling Fids runs are strictly increasing, so fibers are sorted along
// every level — the property the CI baseline's merge intersection relies on.
type Tree struct {
	// ModeOrder[k] is the original tensor mode stored at CSF level k.
	ModeOrder []int
	// Dims are the mode extents in CSF level order.
	Dims []uint64
	Fids [][]uint64
	Fptr [][]int64
	Vals []float64
}

// Build constructs a CSF tree from a COO tensor using the given
// outer-to-inner mode order (a permutation of 0..order-1). The input is
// cloned, permuted, sorted and deduplicated; t is not modified.
func Build(t *coo.Tensor, modeOrder []int) (*Tree, error) {
	d := t.Order()
	if len(modeOrder) != d {
		return nil, fmt.Errorf("csf: mode order has %d entries for order-%d tensor", len(modeOrder), d)
	}
	seen := make([]bool, d)
	for _, m := range modeOrder {
		if m < 0 || m >= d || seen[m] {
			return nil, fmt.Errorf("csf: mode order %v is not a permutation", modeOrder)
		}
		seen[m] = true
	}

	// Permute a deep copy so the sort happens in CSF level order.
	p := t.Clone()
	permDims := make([]uint64, d)
	permCoords := make([][]uint64, d)
	for k, m := range modeOrder {
		permDims[k] = p.Dims[m]
		permCoords[k] = p.Coords[m]
	}
	p.Dims, p.Coords = permDims, permCoords
	p.Dedup()

	tr := &Tree{
		ModeOrder: append([]int(nil), modeOrder...),
		Dims:      permDims,
		Fids:      make([][]uint64, d),
		Fptr:      make([][]int64, d-1),
		Vals:      append([]float64(nil), p.Vals...),
	}
	n := p.NNZ()
	for i := 0; i < n; i++ {
		// First level at which this element diverges from the previous one;
		// all deeper levels start new nodes.
		div := 0
		if i > 0 {
			for div < d && p.Coords[div][i] == p.Coords[div][i-1] {
				div++
			}
		}
		if i > 0 && div == d {
			// Dedup guarantees distinct coordinates.
			panic("csf: duplicate coordinates after dedup")
		}
		for k := div; k < d; k++ {
			if k < d-1 {
				tr.Fptr[k] = append(tr.Fptr[k], int64(len(tr.Fids[k+1])))
			}
			tr.Fids[k] = append(tr.Fids[k], p.Coords[k][i])
		}
	}
	// Close child ranges with end sentinels.
	for k := 0; k < d-1; k++ {
		tr.Fptr[k] = append(tr.Fptr[k], int64(len(tr.Fids[k+1])))
	}
	return tr, nil
}

// Order returns the number of levels.
func (t *Tree) Order() int { return len(t.Fids) }

// NNZ returns the number of leaves.
func (t *Tree) NNZ() int { return len(t.Vals) }

// NumNodes returns the node count at level k.
func (t *Tree) NumNodes(k int) int { return len(t.Fids[k]) }

// Children returns the child node range [start, end) of node i at level k.
func (t *Tree) Children(k, i int) (start, end int64) {
	return t.Fptr[k][i], t.Fptr[k][i+1]
}

// ForEach walks the tree and reports every nonzero with coordinates in CSF
// level order. Intended for tests and conversion back to COO.
func (t *Tree) ForEach(fn func(coords []uint64, v float64)) {
	d := t.Order()
	coords := make([]uint64, d)
	var walk func(k int, i int64)
	walk = func(k int, i int64) {
		coords[k] = t.Fids[k][i]
		if k == d-1 {
			fn(coords, t.Vals[i])
			return
		}
		start, end := t.Children(k, int(i))
		for c := start; c < end; c++ {
			walk(k+1, c)
		}
	}
	for i := 0; i < t.NumNodes(0); i++ {
		walk(0, int64(i))
	}
}

// ToCOO converts the tree back to a COO tensor in ORIGINAL mode order.
func (t *Tree) ToCOO() *coo.Tensor {
	d := t.Order()
	origDims := make([]uint64, d)
	for k, m := range t.ModeOrder {
		origDims[m] = t.Dims[k]
	}
	out := coo.New(origDims, t.NNZ())
	orig := make([]uint64, d)
	t.ForEach(func(coords []uint64, v float64) {
		for k, m := range t.ModeOrder {
			orig[m] = coords[k]
		}
		out.Append(orig, v)
	})
	return out
}

// FiberMatrix is the two-level CSF specialization used by the CI baseline:
// roots are linearized external indices, leaves are linearized contraction
// indices sorted within each fiber (a CSR matrix with explicit row ids).
type FiberMatrix struct {
	RootIDs []uint64  // distinct external indices, ascending
	Ptr     []int64   // fiber j spans Ptr[j] .. Ptr[j+1]-1
	CtrIDs  []uint64  // contraction indices, ascending within each fiber
	Vals    []float64 // aligned with CtrIDs
}

// BuildFiberMatrix builds the two-level CSF for a matrixized operand with
// the external index outer and the contraction index inner (the layout TACO
// requires for the CI scheme, Section 3.1).
func BuildFiberMatrix(m *coo.Matrix) *FiberMatrix {
	// Assemble a 2-mode COO tensor (ext, ctr) and reuse the tree builder.
	t := coo.New([]uint64{m.ExtDim, m.CtrDim}, m.NNZ())
	t.Coords[0] = append(t.Coords[0], m.Ext...)
	t.Coords[1] = append(t.Coords[1], m.Ctr...)
	t.Vals = append(t.Vals, m.Val...)
	tr, err := Build(t, []int{0, 1})
	if err != nil {
		panic("csf: two-mode build cannot fail: " + err.Error())
	}
	return &FiberMatrix{
		RootIDs: tr.Fids[0],
		Ptr:     tr.Fptr[0],
		CtrIDs:  tr.Fids[1],
		Vals:    tr.Vals,
	}
}

// NumFibers returns the number of nonempty external slices.
func (f *FiberMatrix) NumFibers() int { return len(f.RootIDs) }

// Fiber returns the sorted (ctr, val) arrays of fiber j.
func (f *FiberMatrix) Fiber(j int) (ctr []uint64, vals []float64) {
	s, e := f.Ptr[j], f.Ptr[j+1]
	return f.CtrIDs[s:e], f.Vals[s:e]
}
