package csf

import (
	"math/rand"
	"testing"
)

func BenchmarkBuild100k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	t := randomTensor(rng, []uint64{1 << 12, 1 << 8, 1 << 10}, 100_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(t, []int{0, 1, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFiberMatrix100k(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	t := randomTensor(rng, []uint64{1 << 14, 1 << 10}, 100_000)
	m, err := t.Matrixize([]int{0}, []int{1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildFiberMatrix(m)
	}
}
