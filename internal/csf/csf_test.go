package csf

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fastcc/internal/coo"
)

func randomTensor(rng *rand.Rand, dims []uint64, nnz int) *coo.Tensor {
	t := coo.New(dims, nnz)
	coords := make([]uint64, len(dims))
	for i := 0; i < nnz; i++ {
		for m, d := range dims {
			coords[m] = rng.Uint64() % d
		}
		t.Append(coords, float64(rng.Intn(9)+1))
	}
	return t
}

func TestBuildSmallKnownTree(t *testing.T) {
	// 2x3 matrix: (0,1)=a (0,2)=b (1,0)=c
	m := coo.New([]uint64{2, 3}, 3)
	m.Append([]uint64{0, 1}, 1)
	m.Append([]uint64{0, 2}, 2)
	m.Append([]uint64{1, 0}, 3)
	tr, err := Build(m, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes(0) != 2 || tr.NNZ() != 3 {
		t.Fatalf("roots=%d nnz=%d", tr.NumNodes(0), tr.NNZ())
	}
	if tr.Fids[0][0] != 0 || tr.Fids[0][1] != 1 {
		t.Fatalf("root ids %v", tr.Fids[0])
	}
	s, e := tr.Children(0, 0)
	if s != 0 || e != 2 {
		t.Fatalf("children of root 0: [%d,%d)", s, e)
	}
	s, e = tr.Children(0, 1)
	if s != 2 || e != 3 {
		t.Fatalf("children of root 1: [%d,%d)", s, e)
	}
	if tr.Fids[1][0] != 1 || tr.Fids[1][1] != 2 || tr.Fids[1][2] != 0 {
		t.Fatalf("leaf ids %v", tr.Fids[1])
	}
	if tr.Vals[2] != 3 {
		t.Fatalf("vals %v", tr.Vals)
	}
}

func TestBuildRejectsBadModeOrder(t *testing.T) {
	m := coo.New([]uint64{2, 2}, 0)
	for _, order := range [][]int{{0}, {0, 0}, {0, 2}, {-1, 0}} {
		if _, err := Build(m, order); err == nil {
			t.Fatalf("order %v: want error", order)
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := rng.Intn(3) + 2
		dims := make([]uint64, order)
		for m := range dims {
			dims[m] = uint64(rng.Intn(6) + 1)
		}
		a := randomTensor(rng, dims, rng.Intn(60))
		perm := rng.Perm(order)
		tr, err := Build(a, perm)
		if err != nil {
			return false
		}
		back := tr.ToCOO()
		ref := a.Clone()
		ref.Dedup() // CSF dedups; compare against deduped input
		return coo.Equal(ref, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestFibersAreSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomTensor(rng, []uint64{20, 30, 10}, 400)
	tr, err := Build(a, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Roots strictly increasing.
	if !sort.SliceIsSorted(tr.Fids[0], func(i, j int) bool { return tr.Fids[0][i] < tr.Fids[0][j] }) {
		t.Fatal("roots not sorted")
	}
	// Every child run strictly increasing.
	for k := 0; k < tr.Order()-1; k++ {
		for i := 0; i < tr.NumNodes(k); i++ {
			s, e := tr.Children(k, i)
			for c := s + 1; c < e; c++ {
				if tr.Fids[k+1][c-1] >= tr.Fids[k+1][c] {
					t.Fatalf("level %d node %d: children not strictly increasing", k, i)
				}
			}
		}
	}
}

func TestBuildDedupsDuplicates(t *testing.T) {
	m := coo.New([]uint64{2, 2}, 3)
	m.Append([]uint64{1, 1}, 2)
	m.Append([]uint64{1, 1}, 3)
	m.Append([]uint64{0, 0}, 1)
	tr, err := Build(m, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NNZ() != 2 {
		t.Fatalf("nnz=%d want 2", tr.NNZ())
	}
	back := tr.ToCOO()
	if got := back.At([]uint64{1, 1}); got != 5 {
		t.Fatalf("(1,1)=%g want 5", got)
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	m := coo.New([]uint64{3, 3}, 2)
	m.Append([]uint64{2, 0}, 1)
	m.Append([]uint64{0, 1}, 2)
	if _, err := Build(m, []int{1, 0}); err != nil {
		t.Fatal(err)
	}
	if m.Coords[0][0] != 2 || m.Vals[0] != 1 {
		t.Fatal("Build mutated its input")
	}
}

func TestFiberMatrix(t *testing.T) {
	m := &coo.Matrix{
		Ext:    []uint64{5, 5, 2, 5},
		Ctr:    []uint64{9, 1, 4, 6},
		Val:    []float64{1, 2, 3, 4},
		ExtDim: 10, CtrDim: 10,
	}
	fm := BuildFiberMatrix(m)
	if fm.NumFibers() != 2 {
		t.Fatalf("fibers=%d", fm.NumFibers())
	}
	if fm.RootIDs[0] != 2 || fm.RootIDs[1] != 5 {
		t.Fatalf("roots %v", fm.RootIDs)
	}
	ctr, vals := fm.Fiber(1)
	if len(ctr) != 3 || ctr[0] != 1 || ctr[1] != 6 || ctr[2] != 9 {
		t.Fatalf("fiber 1 ctr %v", ctr)
	}
	if vals[0] != 2 || vals[1] != 4 || vals[2] != 1 {
		t.Fatalf("fiber 1 vals %v", vals)
	}
}

func TestEmptyTensor(t *testing.T) {
	m := coo.New([]uint64{4, 4}, 0)
	tr, err := Build(m, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NNZ() != 0 || tr.NumNodes(0) != 0 {
		t.Fatal("empty tensor should give empty tree")
	}
	count := 0
	tr.ForEach(func([]uint64, float64) { count++ })
	if count != 0 {
		t.Fatal("ForEach on empty tree")
	}
}
