package baselines

import (
	"fmt"

	"fastcc/internal/coo"
	"fastcc/internal/mempool"
	"fastcc/internal/metrics"
	"fastcc/internal/scheduler"
)

// SpartaCMDenseWS is the contraction-middle scheme with the paper's other
// workspace option (Section 3.2): a dense 1D array of extent R per worker,
// "along with some auxiliary data structures to keep track of which
// elements of the workspace are updated" — here a touched-position list,
// so the per-slice drain and reset are nnz-proportional.
//
// This variant is only usable when R fits in memory (the untiled analogue
// of FaSTCC's dense tile); it errors out beyond the budget, exactly the
// limitation that motivates tiling for very sparse high-dimensional
// outputs.
func SpartaCMDenseWS(l, r *coo.Matrix, threads int, ctr *metrics.Counters) (*Result, error) {
	if err := checkOperands(l, r); err != nil {
		return nil, err
	}
	const maxWords = 1 << 28 // 2 GiB of float64 per worker is plainly absurd
	if r.ExtDim > maxWords {
		return nil, fmt.Errorf("baselines: dense CM workspace of %d words is infeasible (use SpartaCM)", r.ExtDim)
	}
	hl := buildByExt(l)
	hr := buildByCtr(r)
	lKeys := hl.Keys(nil)

	threads = scheduler.Workers(threads)
	pools := make([]*mempool.Pool[triple], threads)
	type denseWS struct {
		vals    []float64
		touched []uint64
	}
	workspaces := make([]*denseWS, threads)
	scheduler.Pool(threads, len(lKeys), func(w, task int) {
		ws := workspaces[w]
		if ws == nil {
			ws = &denseWS{vals: make([]float64, r.ExtDim)}
			workspaces[w] = ws
			pools[w] = mempool.New[triple](0)
		}
		lIdx := lKeys[task]
		lPairs := hl.Lookup(lIdx)
		ctr.AddQueries(1)
		ctr.AddVolume(int64(len(lPairs)))
		for _, lp := range lPairs {
			rPairs := hr.Lookup(lp.Idx)
			ctr.AddQueries(1)
			if rPairs == nil {
				continue
			}
			ctr.AddVolume(int64(len(rPairs)))
			ctr.AddUpdates(int64(len(rPairs)))
			for _, rp := range rPairs {
				if ws.vals[rp.Idx] == 0 {
					ws.touched = append(ws.touched, rp.Idx)
				}
				ws.vals[rp.Idx] += lp.Val * rp.Val
			}
		}
		pool := pools[w]
		for _, rIdx := range ws.touched {
			if v := ws.vals[rIdx]; v != 0 {
				pool.Append(triple{lIdx, rIdx, v})
			}
			ws.vals[rIdx] = 0
		}
		ws.touched = ws.touched[:0]
	})
	ctr.MaxWorkspace(int64(r.ExtDim))
	res := gather(pools)
	ctr.AddOutput(int64(res.NNZ()))
	return res, nil
}
