package baselines

import (
	"sort"

	"fastcc/internal/chainhash"
	"fastcc/internal/coo"
	"fastcc/internal/csf"
	"fastcc/internal/metrics"
)

// TacoCI runs the contraction-index-inner scheme the TACO compiler
// generates for a CSF×CSF→sparse contraction (paper Algorithm 2 and
// Section 3.1): both operands are stored with the contraction index
// innermost; every pair of (left fiber, right fiber) is co-iterated by
// sorted merge, producing one scalar output element at a time. TACO emits
// sequential code for sparse outputs (Section 6.6), so this runs on one
// thread by design.
func TacoCI(l, r *coo.Matrix, ctr *metrics.Counters) (*Result, error) {
	if err := checkOperands(l, r); err != nil {
		return nil, err
	}
	// CSF construction sorts: the O(nnz log nnz) cost Section 3.1 notes.
	fl := csf.BuildFiberMatrix(l)
	fr := csf.BuildFiberMatrix(r)

	res := &Result{}
	for li := 0; li < fl.NumFibers(); li++ {
		lc, lv := fl.Fiber(li)
		for ri := 0; ri < fr.NumFibers(); ri++ {
			rc, rv := fr.Fiber(ri)
			ctr.AddQueries(2) // access one fiber from each operand
			ctr.AddVolume(int64(len(lc)) + int64(len(rc)))
			sum, hit := mergeDot(lc, lv, rc, rv, ctr)
			if hit {
				res.L = append(res.L, fl.RootIDs[li])
				res.R = append(res.R, fr.RootIDs[ri])
				res.V = append(res.V, sum)
			}
		}
	}
	ctr.MaxWorkspace(1) // one scalar accumulator (Table 1)
	ctr.AddOutput(int64(res.NNZ()))
	return res, nil
}

// mergeDot computes the sparse dot product of two fibers sorted by
// contraction index. hit reports whether any index matched (TACO appends
// the output element only when the co-iteration found overlap).
func mergeDot(lc []uint64, lv []float64, rc []uint64, rv []float64, ctr *metrics.Counters) (sum float64, hit bool) {
	i, j := 0, 0
	var updates int64
	for i < len(lc) && j < len(rc) {
		switch {
		case lc[i] < rc[j]:
			i++
		case lc[i] > rc[j]:
			j++
		default:
			sum += lv[i] * rv[j]
			updates++
			hit = true
			i++
			j++
		}
	}
	ctr.AddUpdates(updates)
	return sum, hit
}

// HashCI runs the same CI loop order on chaining hash tables instead of
// CSF: HL : l → P(C×V) and HR : r → P(C×V), with each pair list sorted by
// contraction index once after construction so the inner co-iteration is a
// sorted merge. Used for the CSF-vs-hash ablation.
func HashCI(l, r *coo.Matrix, ctr *metrics.Counters) (*Result, error) {
	if err := checkOperands(l, r); err != nil {
		return nil, err
	}
	hl := buildByExt(l)
	hr := buildByExt(r)
	sortChains(hl)
	sortChains(hr)
	lKeys := hl.Keys(nil)
	rKeys := hr.Keys(nil)
	sort.Slice(lKeys, func(i, j int) bool { return lKeys[i] < lKeys[j] })
	sort.Slice(rKeys, func(i, j int) bool { return rKeys[i] < rKeys[j] })

	res := &Result{}
	for _, lIdx := range lKeys {
		lPairs := hl.Lookup(lIdx)
		for _, rIdx := range rKeys {
			rPairs := hr.Lookup(rIdx)
			ctr.AddQueries(2)
			ctr.AddVolume(int64(len(lPairs)) + int64(len(rPairs)))
			sum, hit := mergeDotPairs(lPairs, rPairs, ctr)
			if hit {
				res.L = append(res.L, lIdx)
				res.R = append(res.R, rIdx)
				res.V = append(res.V, sum)
			}
		}
	}
	ctr.MaxWorkspace(1)
	ctr.AddOutput(int64(res.NNZ()))
	return res, nil
}

func sortChains(t *chainhash.Table) {
	t.ForEach(func(_ uint64, pairs []chainhash.Pair) {
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].Idx < pairs[j].Idx })
	})
}

// mergeDotPairs is run-aware: operands that were not deduplicated may hold
// several pairs with the same contraction index, and every cross product of
// matching runs contributes.
func mergeDotPairs(lp, rp []chainhash.Pair, ctr *metrics.Counters) (sum float64, hit bool) {
	i, j := 0, 0
	var updates int64
	for i < len(lp) && j < len(rp) {
		switch {
		case lp[i].Idx < rp[j].Idx:
			i++
		case lp[i].Idx > rp[j].Idx:
			j++
		default:
			c := lp[i].Idx
			i2 := i
			for i2 < len(lp) && lp[i2].Idx == c {
				i2++
			}
			j2 := j
			for j2 < len(rp) && rp[j2].Idx == c {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					sum += lp[a].Val * rp[b].Val
					updates++
				}
			}
			hit = true
			i, j = i2, j2
		}
	}
	ctr.AddUpdates(updates)
	return sum, hit
}

var _ = coo.ErrShape
