package baselines

import (
	"math/bits"

	"fastcc/internal/chainhash"
	"fastcc/internal/coo"
	"fastcc/internal/hashtable"
	"fastcc/internal/metrics"
)

// UntiledCO runs paper Algorithm 4 verbatim: contraction-index-outer with a
// single global workspace spanning the whole L×R output space. Both inputs
// are stored keyed by the contraction index; each slice pair is combined by
// outer product into the workspace; the workspace drains once at the end.
//
// This is the scheme whose accumulator footprint motivates FaSTCC's tiling
// (Section 3.5): correct, minimal input traffic (2C queries, nnzL+nnzR
// volume), but a workspace of L·R dense-equivalent words with no cache
// locality. It is sequential — parallelizing it is exactly what the tiled
// scheme is for.
func UntiledCO(l, r *coo.Matrix, ctr *metrics.Counters) (*Result, error) {
	if err := checkOperands(l, r); err != nil {
		return nil, err
	}
	hl := buildByCtr(l)
	hr := buildByCtr(r)

	res := &Result{}
	hi, lo := bits.Mul64(l.ExtDim, r.ExtDim)
	if hi == 0 {
		// (l, r) packs into a uint64 key: use the open-addressing table.
		ws := hashtable.NewFloatTable(1024)
		rDim := r.ExtDim
		coIterate(hl, hr, ctr, func(li, ri uint64, v float64) {
			ws.Upsert(li*rDim+ri, v) //fastcc:allow linovf -- hi == 0 above proves L*R fits uint64
		})
		ws.ForEach(func(k uint64, v float64) {
			res.L = append(res.L, k/rDim)
			res.R = append(res.R, k%rDim)
			res.V = append(res.V, v)
		})
		ctr.MaxWorkspace(int64(min64(lo, 1<<62)))
	} else {
		// The output index space exceeds uint64: key the workspace by the
		// index pair directly.
		ws := map[[2]uint64]float64{}
		coIterate(hl, hr, ctr, func(li, ri uint64, v float64) {
			ws[[2]uint64{li, ri}] += v
		})
		for k, v := range ws {
			res.L = append(res.L, k[0])
			res.R = append(res.R, k[1])
			res.V = append(res.V, v)
		}
		ctr.MaxWorkspace(1 << 62) // saturated: L·R overflows int64
	}
	ctr.AddOutput(int64(res.NNZ()))
	return res, nil
}

// coIterate visits every (l, r, lv*rv) contribution in CO order: for each
// contraction index with nonzeros on both sides, the outer product of the
// two slices.
func coIterate(hl, hr *chainhash.Table, ctr *metrics.Counters, emit func(li, ri uint64, v float64)) {
	var queries, volume, updates int64
	hl.ForEach(func(c uint64, lPairs []chainhash.Pair) {
		queries += 2 // one slice extraction per operand (2C total, Table 1)
		rPairs := hr.Lookup(c)
		if rPairs == nil {
			return
		}
		volume += int64(len(lPairs)) + int64(len(rPairs))
		updates += int64(len(lPairs)) * int64(len(rPairs))
		for _, lp := range lPairs {
			for _, rp := range rPairs {
				emit(lp.Idx, rp.Idx, lp.Val*rp.Val)
			}
		}
	})
	ctr.AddQueries(queries)
	ctr.AddVolume(volume)
	ctr.AddUpdates(updates)
}

var _ = coo.ErrShape
