// Package baselines implements the comparison systems of the paper's
// evaluation, from scratch:
//
//   - SpartaCM — the contraction-index-middle scheme of the Sparta library
//     (Algorithms 3 and 8): chaining hash tables, per-slice sparse
//     workspace, parallel over left slices.
//   - TacoCI — the contraction-index-inner scheme TACO generates for
//     CSF×CSF→sparse (Algorithm 2): sequential sorted-merge co-iteration
//     over fibers.
//   - HashCI — the same CI loop order on hash tables instead of CSF, for
//     the chaining-vs-CSF ablation.
//   - UntiledCO — Algorithm 4 verbatim: contraction-index-outer with one
//     global (untiled) sparse workspace, motivating FaSTCC's tiling.
//
// All baselines operate on matrixized operands and are instrumented with
// the Table 1 counters (queries, data volume, workspace size).
package baselines

import (
	"fmt"
	"sort"

	"fastcc/internal/chainhash"
	"fastcc/internal/coo"
	"fastcc/internal/hashtable"
	"fastcc/internal/mempool"
	"fastcc/internal/metrics"
	"fastcc/internal/scheduler"
)

// Result is the matrixized output of a baseline contraction.
type Result struct {
	L, R []uint64
	V    []float64
}

// NNZ returns the number of output nonzeros.
func (r *Result) NNZ() int { return len(r.V) }

// ToTensor converts the result to a 2-mode COO tensor for comparisons.
func (r *Result) ToTensor(lDim, rDim uint64) *coo.Tensor {
	t := coo.New([]uint64{lDim, rDim}, len(r.V))
	t.Coords[0] = append(t.Coords[0], r.L...)
	t.Coords[1] = append(t.Coords[1], r.R...)
	t.Vals = append(t.Vals, r.V...)
	return t
}

func checkOperands(l, r *coo.Matrix) error {
	if l.CtrDim != r.CtrDim {
		return fmt.Errorf("baselines: contraction extents differ (%d vs %d)", l.CtrDim, r.CtrDim)
	}
	if l.ExtDim == 0 || r.ExtDim == 0 || l.CtrDim == 0 {
		return fmt.Errorf("baselines: zero-extent operand")
	}
	return nil
}

// buildByExt builds HL : ext → P(ctr × V) (Sparta's left representation).
func buildByExt(m *coo.Matrix) *chainhash.Table {
	t := chainhash.New(int(min64(uint64(m.NNZ()), m.ExtDim)))
	for k := range m.Val {
		t.Insert(m.Ext[k], m.Ctr[k], m.Val[k])
	}
	return t
}

// buildByCtr builds HR : ctr → P(ext × V) (Sparta's right representation,
// and both operands of the CO scheme).
func buildByCtr(m *coo.Matrix) *chainhash.Table {
	t := chainhash.New(int(min64(uint64(m.NNZ()), m.CtrDim)))
	for k := range m.Val {
		t.Insert(m.Ctr[k], m.Ext[k], m.Val[k])
	}
	return t
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// SpartaCM runs the contraction-index-middle scheme (paper Algorithm 8):
// for each left slice l, for each nonzero (c, lv) of the slice, extract the
// right slice R[c,*] and accumulate lv·rv into a per-l sparse workspace,
// then drain the workspace to the output. Slices are processed in parallel
// (Sparta parallelizes over the left external index).
func SpartaCM(l, r *coo.Matrix, threads int, ctr *metrics.Counters) (*Result, error) {
	if err := checkOperands(l, r); err != nil {
		return nil, err
	}
	hl := buildByExt(l)
	hr := buildByCtr(r)
	lKeys := hl.Keys(nil)
	sort.Slice(lKeys, func(i, j int) bool { return lKeys[i] < lKeys[j] })

	threads = scheduler.Workers(threads)
	pools := make([]*mempool.Pool[triple], threads)
	workspaces := make([]*hashtable.FloatTable, threads)
	scheduler.Pool(threads, len(lKeys), func(w, task int) {
		ws := workspaces[w]
		if ws == nil {
			ws = hashtable.NewFloatTable(256)
			workspaces[w] = ws
			pools[w] = mempool.New[triple](0)
		}
		lIdx := lKeys[task]
		lPairs := hl.Lookup(lIdx)
		ctr.AddQueries(1) // the HL(l) extraction
		ctr.AddVolume(int64(len(lPairs)))
		for _, lp := range lPairs {
			rPairs := hr.Lookup(lp.Idx)
			ctr.AddQueries(1) // one HR(c) query per left nonzero
			if rPairs == nil {
				continue
			}
			ctr.AddVolume(int64(len(rPairs)))
			ctr.AddUpdates(int64(len(rPairs)))
			for _, rp := range rPairs {
				ws.Upsert(rp.Idx, lp.Val*rp.Val)
			}
		}
		pool := pools[w]
		ws.ForEach(func(rIdx uint64, v float64) {
			pool.Append(triple{lIdx, rIdx, v})
		})
		ws.Reset()
	})
	ctr.MaxWorkspace(int64(r.ExtDim)) // dense-equivalent WS : R → V (Table 1)
	res := gather(pools)
	ctr.AddOutput(int64(res.NNZ()))
	return res, nil
}

type triple struct {
	l, r uint64
	v    float64
}

func gather(pools []*mempool.Pool[triple]) *Result {
	list := mempool.Concat(pools...)
	res := &Result{
		L: make([]uint64, 0, list.Len()),
		R: make([]uint64, 0, list.Len()),
		V: make([]float64, 0, list.Len()),
	}
	list.ForEach(func(t triple) {
		res.L = append(res.L, t.l)
		res.R = append(res.R, t.r)
		res.V = append(res.V, t.v)
	})
	return res
}
