package baselines

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastcc/internal/coo"
	"fastcc/internal/metrics"
	"fastcc/internal/ref"
)

// randomMatrix generates nnz entries with possibly-duplicate coordinates
// (baselines must tolerate duplicates: each is an unreduced contribution).
func randomMatrix(rng *rand.Rand, extDim, ctrDim uint64, nnz int) *coo.Matrix {
	m := &coo.Matrix{ExtDim: extDim, CtrDim: ctrDim}
	for i := 0; i < nnz; i++ {
		m.Ext = append(m.Ext, rng.Uint64()%extDim)
		m.Ctr = append(m.Ctr, rng.Uint64()%ctrDim)
		m.Val = append(m.Val, float64(rng.Intn(9)-4))
	}
	return m
}

// distinctMatrix generates at most nnz entries with distinct coordinates,
// for tests that compare per-scheme operation counts (a CSF build merges
// duplicates, which would legitimately change the counts).
func distinctMatrix(rng *rand.Rand, extDim, ctrDim uint64, nnz int) *coo.Matrix {
	m := &coo.Matrix{ExtDim: extDim, CtrDim: ctrDim}
	seen := map[[2]uint64]bool{}
	for i := 0; i < nnz; i++ {
		k := [2]uint64{rng.Uint64() % extDim, rng.Uint64() % ctrDim}
		if seen[k] {
			continue
		}
		seen[k] = true
		m.Ext = append(m.Ext, k[0])
		m.Ctr = append(m.Ctr, k[1])
		m.Val = append(m.Val, float64(rng.Intn(9)+1))
	}
	return m
}

type engine struct {
	name string
	run  func(l, r *coo.Matrix, ctr *metrics.Counters) (*Result, error)
}

func engines() []engine {
	return []engine{
		{"sparta-cm", func(l, r *coo.Matrix, c *metrics.Counters) (*Result, error) { return SpartaCM(l, r, 3, c) }},
		{"cm-dense-ws", func(l, r *coo.Matrix, c *metrics.Counters) (*Result, error) { return SpartaCMDenseWS(l, r, 2, c) }},
		{"taco-ci", TacoCI},
		{"hash-ci", HashCI},
		{"untiled-co", UntiledCO},
	}
}

func checkAgainstRef(t *testing.T, name string, res *Result, l, r *coo.Matrix) {
	t.Helper()
	got := ref.TriplesToMatrixTensor(res.L, res.R, res.V, l.ExtDim, r.ExtDim)
	want := ref.MapToMatrixTensor(ref.ContractMatrix(l, r), l.ExtDim, r.ExtDim)
	if !coo.Equal(got, want) {
		t.Fatalf("%s: mismatch (got %d nnz, want %d)", name, got.NNZ(), want.NNZ())
	}
}

func TestAllBaselinesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	l := randomMatrix(rng, 80, 25, 600)
	r := randomMatrix(rng, 70, 25, 500)
	for _, e := range engines() {
		res, err := e.run(l, r, nil)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		checkAgainstRef(t, e.name, res, l, r)
	}
}

func TestBaselinesEmptyAndDisjoint(t *testing.T) {
	empty := &coo.Matrix{ExtDim: 5, CtrDim: 5}
	lOnly := &coo.Matrix{Ext: []uint64{1}, Ctr: []uint64{0}, Val: []float64{2}, ExtDim: 5, CtrDim: 5}
	rOnly := &coo.Matrix{Ext: []uint64{1}, Ctr: []uint64{4}, Val: []float64{3}, ExtDim: 5, CtrDim: 5}
	for _, e := range engines() {
		if res, err := e.run(empty, empty, nil); err != nil || res.NNZ() != 0 {
			t.Fatalf("%s empty: %v %d", e.name, err, res.NNZ())
		}
		if res, err := e.run(lOnly, rOnly, nil); err != nil || res.NNZ() != 0 {
			t.Fatalf("%s disjoint: %v %d", e.name, err, res.NNZ())
		}
	}
}

func TestBaselinesRejectBadOperands(t *testing.T) {
	a := &coo.Matrix{ExtDim: 4, CtrDim: 4}
	b := &coo.Matrix{ExtDim: 4, CtrDim: 5}
	z := &coo.Matrix{ExtDim: 0, CtrDim: 4}
	for _, e := range engines() {
		if _, err := e.run(a, b, nil); err == nil {
			t.Fatalf("%s: ctr mismatch accepted", e.name)
		}
		if _, err := e.run(z, a, nil); err == nil {
			t.Fatalf("%s: zero extent accepted", e.name)
		}
	}
}

func TestSpartaCMThreadCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	l := randomMatrix(rng, 120, 30, 900)
	r := randomMatrix(rng, 100, 30, 800)
	for _, threads := range []int{1, 2, 8} {
		res, err := SpartaCM(l, r, threads, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstRef(t, "sparta-cm", res, l, r)
	}
}

func TestTable1CounterShapes(t *testing.T) {
	// Verify the instrumented counters follow Table 1's scalings.
	rng := rand.New(rand.NewSource(31))
	const extL, extR, ctrDim = 40, 50, 20
	l := distinctMatrix(rng, extL, ctrDim, 300)
	r := distinctMatrix(rng, extR, ctrDim, 300)

	var ci, cm, co metrics.Counters
	if _, err := TacoCI(l, r, &ci); err != nil {
		t.Fatal(err)
	}
	if _, err := SpartaCM(l, r, 1, &cm); err != nil {
		t.Fatal(err)
	}
	if _, err := UntiledCO(l, r, &co); err != nil {
		t.Fatal(err)
	}
	sci, scm, sco := ci.Snapshot(), cm.Snapshot(), co.Snapshot()

	// Updates (multiply-accumulate count) identical across loop orders.
	if sci.Updates != scm.Updates || scm.Updates != sco.Updates {
		t.Fatalf("updates differ: CI=%d CM=%d CO=%d", sci.Updates, scm.Updates, sco.Updates)
	}
	// CO queries = 2·(distinct c in L) ≤ 2C — far fewer than CI's O(L·R).
	if sco.Queries > 2*ctrDim {
		t.Fatalf("CO queries=%d > 2C=%d", sco.Queries, 2*ctrDim)
	}
	if sci.Queries < sco.Queries || sci.Queries > 2*extL*extR {
		t.Fatalf("CI queries=%d outside (CO, 2·L·R]", sci.Queries)
	}
	// CM queries = (distinct l) + nnzL ≤ L + nnzL.
	if scm.Queries > extL+int64(l.NNZ()) {
		t.Fatalf("CM queries=%d > L+nnzL", scm.Queries)
	}
	// CO volume = nnzL + nnzR exactly (each slice touched once; slices with
	// no partner on the other side are never extracted, so ≤).
	if sco.Volume > int64(l.NNZ()+r.NNZ()) {
		t.Fatalf("CO volume=%d > nnzL+nnzR", sco.Volume)
	}
	// Ordering: CI volume ≥ CM volume ≥ CO volume on balanced inputs.
	if !(sci.Volume >= scm.Volume && scm.Volume >= sco.Volume) {
		t.Fatalf("volume ordering violated: CI=%d CM=%d CO=%d", sci.Volume, scm.Volume, sco.Volume)
	}
	// Workspace: CI=1, CM=R, CO=L·R (Table 1's Size_Acc column).
	if sci.WorkspaceWords != 1 || scm.WorkspaceWords != extR || sco.WorkspaceWords != extL*extR {
		t.Fatalf("workspace: CI=%d CM=%d CO=%d", sci.WorkspaceWords, scm.WorkspaceWords, sco.WorkspaceWords)
	}
}

func TestUntiledCOHugeIndexSpaceFallback(t *testing.T) {
	// L·R overflows uint64 → map-keyed workspace path.
	l := &coo.Matrix{Ext: []uint64{1 << 40}, Ctr: []uint64{3}, Val: []float64{2}, ExtDim: 1 << 41, CtrDim: 8}
	r := &coo.Matrix{Ext: []uint64{1 << 39}, Ctr: []uint64{3}, Val: []float64{5}, ExtDim: 1 << 41, CtrDim: 8}
	res, err := UntiledCO(l, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NNZ() != 1 || res.L[0] != 1<<40 || res.R[0] != 1<<39 || res.V[0] != 10 {
		t.Fatalf("got %+v", res)
	}
}

func TestResultToTensor(t *testing.T) {
	res := &Result{L: []uint64{1}, R: []uint64{2}, V: []float64{3}}
	tn := res.ToTensor(4, 4)
	if tn.NNZ() != 1 || tn.At([]uint64{1, 2}) != 3 {
		t.Fatal("ToTensor wrong")
	}
}

func TestBaselinesAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomMatrix(rng, uint64(rng.Intn(30)+1), uint64(rng.Intn(12)+1), rng.Intn(120))
		r := randomMatrix(rng, uint64(rng.Intn(30)+1), l.CtrDim, rng.Intn(120))
		want := ref.MapToMatrixTensor(ref.ContractMatrix(l, r), l.ExtDim, r.ExtDim)
		for _, e := range engines() {
			res, err := e.run(l, r, nil)
			if err != nil {
				return false
			}
			got := ref.TriplesToMatrixTensor(res.L, res.R, res.V, l.ExtDim, r.ExtDim)
			if !coo.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCMDenseWSCancellation(t *testing.T) {
	// Values that transiently cancel to zero must still drain correctly
	// (the touched-list tracks first touches by zero-value checks).
	l := &coo.Matrix{
		Ext: []uint64{0, 0, 0}, Ctr: []uint64{0, 1, 2},
		Val: []float64{2, -2, 1}, ExtDim: 2, CtrDim: 3,
	}
	r := &coo.Matrix{
		Ext: []uint64{5, 5, 5}, Ctr: []uint64{0, 1, 2},
		Val: []float64{1, 1, 1}, ExtDim: 8, CtrDim: 3,
	}
	res, err := SpartaCMDenseWS(l, r, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// O[0,5] = 2 - 2 + 1 = 1.
	if res.NNZ() != 1 || res.L[0] != 0 || res.R[0] != 5 || res.V[0] != 1 {
		t.Fatalf("got %+v", res)
	}
}

func TestCMDenseWSRejectsHugeR(t *testing.T) {
	l := &coo.Matrix{ExtDim: 4, CtrDim: 4}
	r := &coo.Matrix{ExtDim: 1 << 40, CtrDim: 4}
	if _, err := SpartaCMDenseWS(l, r, 1, nil); err == nil {
		t.Fatal("huge dense workspace accepted")
	}
}
