package core

import (
	"math/rand"
	"testing"

	"fastcc/internal/mempool"
	"fastcc/internal/testutil"
)

// The tests in this file pin the shard-cache lifecycle protocol: Shard
// returns pinned, pins block eviction, Close/Drop dooms, and reclaimed
// storage flows back through the pools. The cache is process-global, so
// every assertion here is a delta against a captured baseline, never an
// absolute — other tests in the binary legitimately leave residents behind.

// lifecycleOperand builds a fresh operand big enough to have several
// non-empty tiles under the given key.
func lifecycleOperand(seed int64) *Operand {
	rng := rand.New(rand.NewSource(seed))
	return NewOperand(randomMatrix(rng, 200, 30, 1500))
}

func TestShardReturnsPinnedAndCountsHits(t *testing.T) {
	op := lifecycleOperand(11)
	defer op.Close()
	key := ShardKey{Tile: 32, Rep: RepHash}

	before := CacheStats()
	s, built := op.Shard(key, 2)
	if !built {
		t.Fatal("first Shard call did not build")
	}
	if !s.pinnedNow() {
		t.Fatal("Shard returned an unpinned shard")
	}
	s2, built2 := op.Shard(key, 2)
	if built2 || s2 != s {
		t.Fatalf("second Shard call built=%v same=%v, want hit on the same shard", built2, s2 == s)
	}
	s2.Unpin()
	s.Unpin()
	after := CacheStats()
	if after.Misses-before.Misses != 1 || after.Hits-before.Hits != 1 {
		t.Fatalf("counter deltas hits=%d misses=%d, want 1 and 1",
			after.Hits-before.Hits, after.Misses-before.Misses)
	}
}

func TestEvictionSkipsPinnedShards(t *testing.T) {
	op := lifecycleOperand(13)
	defer op.Close()
	key := ShardKey{Tile: 32, Rep: RepHash}
	s, _ := op.Shard(key, 2)

	// A 1-byte budget demands eviction of everything — but the pin must hold.
	SetShardBudget(1)
	if !op.Cached(key) {
		t.Fatal("pinned shard was evicted")
	}
	if st := CacheStats(); st.PinnedBytes <= 0 {
		t.Fatalf("PinnedBytes=%d with a pinned resident shard", st.PinnedBytes)
	}
	// Reads through the shard must still be live.
	for _, i := range s.NonEmpty() {
		if s.sealedAt(i) == nil {
			t.Fatalf("tile %d vanished under a pinned shard", i)
		}
	}

	before := CacheStats()
	s.Unpin()
	SetShardBudget(1) // re-enforce now that the pin is gone
	if op.Cached(key) {
		t.Fatal("unpinned shard survived a 1-byte budget")
	}
	after := CacheStats()
	if after.Evictions <= before.Evictions {
		t.Fatalf("Evictions did not grow (%d -> %d)", before.Evictions, after.Evictions)
	}
	if after.EvictedBytes <= before.EvictedBytes {
		t.Fatalf("EvictedBytes did not grow (%d -> %d)", before.EvictedBytes, after.EvictedBytes)
	}
	SetShardBudget(-1) // back to unlimited for the rest of the binary
}

func TestCloseDropsAndRebuilds(t *testing.T) {
	op := lifecycleOperand(17)
	key := ShardKey{Tile: 16, Rep: RepSorted}
	op.Warm(key, 2)
	if !op.Cached(key) {
		t.Fatal("Warm did not cache the shard")
	}

	before := CacheStats()
	op.Close()
	if op.Cached(key) {
		t.Fatal("shard still cached after Close")
	}
	after := CacheStats()
	if after.Drops-before.Drops != 1 {
		t.Fatalf("Drops delta = %d, want 1", after.Drops-before.Drops)
	}

	// The operand stays usable: the next Shard call rebuilds.
	s, built := op.Shard(key, 2)
	if !built {
		t.Fatal("Shard after Close did not rebuild")
	}
	s.Unpin()
	op.Close()
}

func TestCloseWhilePinnedDefersReclaim(t *testing.T) {
	op := lifecycleOperand(19)
	key := ShardKey{Tile: 32, Rep: RepHash}
	s, _ := op.Shard(key, 2)

	op.Close() // dooms; s is pinned, so its tables must survive
	for _, i := range s.NonEmpty() {
		if s.sealedAt(i) == nil {
			t.Fatalf("tile %d reclaimed under a pinned doomed shard", i)
		}
	}
	if op.Cached(key) {
		t.Fatal("doomed shard still visible through the operand")
	}

	before := CacheStats()
	s.Unpin() // last pin out: the deferred drop runs here
	after := CacheStats()
	if after.Drops-before.Drops != 1 {
		t.Fatalf("Drops delta = %d after last Unpin of a doomed shard, want 1", after.Drops-before.Drops)
	}
	if s.tryPin() {
		t.Fatal("pin succeeded on a reclaimed shard")
	}
}

func TestWarmHoldsNoPin(t *testing.T) {
	op := lifecycleOperand(23)
	defer op.Close()
	key := ShardKey{Tile: 32, Rep: RepHash}
	if built := op.Warm(key, 2); !built {
		t.Fatal("first Warm did not build")
	}
	if built := op.Warm(key, 2); built {
		t.Fatal("second Warm rebuilt a cached shard")
	}
	// Warm left no pin behind, so a squeeze must reclaim the shard.
	SetShardBudget(1)
	if op.Cached(key) {
		t.Fatal("warmed shard survived a 1-byte budget: Warm leaked a pin")
	}
	SetShardBudget(-1)
}

func TestCacheChargeReturnsToBaseline(t *testing.T) {
	cachedBytes := testutil.Gauge{Name: "shard-cache bytes", Read: func() int64 { return CacheStats().CachedBytes }}
	residentShards := testutil.Gauge{Name: "shard-cache shards", Read: func() int64 { return CacheStats().Shards }}
	base := testutil.Capture(cachedBytes, residentShards)

	for _, rep := range []InputRep{RepHash, RepSorted} {
		op := lifecycleOperand(29)
		s, _ := op.Shard(ShardKey{Tile: 16, Rep: rep}, 2)
		s.Unpin()
		op.Close()
	}
	base.Assert(t)
}

// TestUnpinnedReadAfterReclaimPanicsWhenChecked injects the exact bug the
// pin protocol exists to prevent: a reader keeps a sealed-table reference,
// releases its pin, the shard is dropped, and the reader touches the table
// anyway. Under fastcc_checked the table's generation stamp (invalidated by
// Sealed.Recycle) turns that into a deterministic panic. The normal build's
// behavior after reclaim is undefined (the arrays are recycled), so the test
// only runs checked.
func TestUnpinnedReadAfterReclaimPanicsWhenChecked(t *testing.T) {
	if !mempool.Checked {
		t.Skip("generation stamps require -tags fastcc_checked")
	}
	op := lifecycleOperand(31)
	key := ShardKey{Tile: 32, Rep: RepHash}
	s, _ := op.Shard(key, 2)
	tbl := s.sealedAt(s.NonEmpty()[0])
	s.Unpin()
	op.Close() // reclaims: tbl's arenas are recycled, its stamp invalidated

	defer func() {
		if recover() == nil {
			t.Fatal("read through a recycled sealed table did not panic under fastcc_checked")
		}
	}()
	tbl.KeyAt(0)
}

// TestShardAccessAfterReclaimPanicsWhenChecked is the shard-level twin: the
// tile accessors themselves must trip on the retired generation stamp.
func TestShardAccessAfterReclaimPanicsWhenChecked(t *testing.T) {
	if !mempool.Checked {
		t.Skip("generation stamps require -tags fastcc_checked")
	}
	op := lifecycleOperand(37)
	s, _ := op.Shard(ShardKey{Tile: 32, Rep: RepHash}, 2)
	i := s.NonEmpty()[0]
	s.Unpin()
	op.Close()

	defer func() {
		if recover() == nil {
			t.Fatal("sealedAt on a reclaimed shard did not panic under fastcc_checked")
		}
	}()
	_ = s.sealedAt(i)
}
