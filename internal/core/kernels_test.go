package core

import (
	"math"
	"math/rand"
	"testing"

	"fastcc/internal/coo"
	"fastcc/internal/hashtable"
	"fastcc/internal/mempool"
	"fastcc/internal/metrics"
	"fastcc/internal/model"
	"fastcc/internal/ref"
)

// TestKernelResolution pins the once-per-run dispatch: KernelAuto resolves
// to the specialization matching (rep, accumulator), an explicit
// KernelGeneric is honored, and a mismatched forced kernel fails at plan
// time.
func TestKernelResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := randomMatrix(rng, 120, 30, 900)
	r := randomMatrix(rng, 110, 30, 800)
	cases := []struct {
		rep  InputRep
		acc  model.AccumKind
		want model.KernelID
	}{
		{RepHash, model.AccumDense, model.KernelHashDense},
		{RepHash, model.AccumSparse, model.KernelHashSparse},
		{RepSorted, model.AccumDense, model.KernelSortedDense},
		{RepSorted, model.AccumSparse, model.KernelSortedSparse},
	}
	for _, c := range cases {
		cfg := Config{Threads: 2, TileL: 32, TileR: 32, Accum: c.acc, Rep: c.rep, Platform: tinyLLC}
		out, st, err := Contract(l, r, cfg)
		if err != nil {
			t.Fatalf("%v/%v: %v", c.rep, c.acc, err)
		}
		RecycleOutput(out)
		if st.Decision.Kernel != c.want {
			t.Fatalf("%v/%v: resolved kernel %v want %v", c.rep, c.acc, st.Decision.Kernel, c.want)
		}
		cfg.Kernel = model.KernelGeneric
		out, st, err = Contract(l, r, cfg)
		if err != nil {
			t.Fatalf("%v/%v generic: %v", c.rep, c.acc, err)
		}
		RecycleOutput(out)
		if st.Decision.Kernel != model.KernelGeneric {
			t.Fatalf("%v/%v: forced generic resolved to %v", c.rep, c.acc, st.Decision.Kernel)
		}
	}
	// A specialized kernel for the wrong representation is a plan error.
	bad := Config{Threads: 2, TileL: 32, TileR: 32, Accum: model.AccumDense,
		Rep: RepSorted, Kernel: model.KernelHashDense, Platform: tinyLLC}
	if _, _, err := Contract(l, r, bad); err == nil {
		t.Fatal("hash kernel on sorted rep did not fail plan")
	}
	bad = Config{Threads: 2, TileL: 32, TileR: 32, Accum: model.AccumSparse,
		Rep: RepHash, Kernel: model.KernelHashDense, Platform: tinyLLC}
	if _, _, err := Contract(l, r, bad); err == nil {
		t.Fatal("dense kernel on sparse accumulator did not fail plan")
	}
}

// TestKernelGenericMatchesSpecialized is the microkernel acceptance test:
// for every (rep, accum) combination the specialized kernel must reproduce
// the generic loop bit for bit — same sorted coordinates, same float64 bit
// patterns — and both must match the reference contraction.
func TestKernelGenericMatchesSpecialized(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	l := randomMatrix(rng, 310, 45, 2600)
	r := randomMatrix(rng, 270, 45, 2200)
	want := ref.MapToMatrixTensor(ref.ContractMatrix(l, r), l.ExtDim, r.ExtDim)
	want.Sort()
	combos := []struct {
		name string
		rep  InputRep
		acc  model.AccumKind
	}{
		{"hash/dense", RepHash, model.AccumDense},
		{"hash/sparse", RepHash, model.AccumSparse},
		{"sorted/dense", RepSorted, model.AccumDense},
		{"sorted/sparse", RepSorted, model.AccumSparse},
	}
	for _, c := range combos {
		cfg := Config{Threads: 4, TileL: 17, TileR: 32, Accum: c.acc, Rep: c.rep, Platform: tinyLLC}
		gen := cfg
		gen.Kernel = model.KernelGeneric
		spec := collectSorted(t, l, r, cfg)
		base := collectSorted(t, l, r, gen)
		if !coo.Equal(spec, want) {
			t.Fatalf("%s: specialized kernel differs from reference", c.name)
		}
		assertBitIdentical(t, c.name+" generic-vs-specialized", base, spec)
	}
}

// TestIterateSmallerSideByDistinctKeys is the heuristic regression test: an
// asymmetric tile pair where the LEFT table has many distinct keys with one
// pair each and the RIGHT has few keys with many pairs each. Iterating by
// distinct-key count means the query count equals the right side's key
// count; a pair-count (or fixed-side) heuristic would iterate the left.
// Both the generic loop and the batched hash kernels must make the same
// choice — their accumulation orders (and so the output bits) depend on it.
func TestIterateSmallerSideByDistinctKeys(t *testing.T) {
	const manyKeys, fewKeys, pairsPerKey = 90, 7, 40
	big := hashtable.NewSliceTable(manyKeys)
	for k := 0; k < manyKeys; k++ {
		big.Insert(uint64(k), uint32(k%31), 1)
	}
	small := hashtable.NewSliceTable(fewKeys)
	for k := 0; k < fewKeys; k++ {
		for p := 0; p < pairsPerKey; p++ {
			small.Insert(uint64(k), uint32(p), 1) // pair count 280 >> big's 90
		}
	}
	hl, hr := big.Seal(), small.Seal()
	for _, dir := range []struct {
		name   string
		hl, hr *hashtable.Sealed
	}{{"small-right", hl, hr}, {"small-left", hr, hl}} {
		iter, probeInto, _ := chooseSides(dir.hl, dir.hr)
		if iter.Len() != fewKeys || probeInto.Len() != manyKeys {
			t.Fatalf("%s: chooseSides iterated the %d-key side", dir.name, iter.Len())
		}
		for _, kern := range []struct {
			name string
			run  func(wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters)
		}{
			{"generic", func(wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters) {
				contractTilePair(dir.hl, dir.hr, 0, 0, wk, pool, ctr)
			}},
			{"batched", func(wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters) {
				contractHashDense(dir.hl, dir.hr, 0, 0, wk, pool, ctr, hashtable.LookupBatchMax)
			}},
		} {
			var ctr metrics.Counters
			wk := newWorker(model.AccumDense, 128, 32, 0)
			pool := outputChunks.NewPool()
			kern.run(wk, pool, &ctr)
			outputChunks.Release(mempool.Concat(pool))
			if q := ctr.Snapshot().Queries; q != fewKeys {
				t.Fatalf("%s/%s: %d queries, want %d (cheaper side not iterated)",
					dir.name, kern.name, q, fewKeys)
			}
		}
	}
}

// TestHashKernelProbeCounters checks the new observability: hash kernels
// report probe batches, and hits+misses add up to queries.
func TestHashKernelProbeCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	l := randomMatrix(rng, 200, 40, 1500)
	r := randomMatrix(rng, 180, 40, 1300)
	for _, acc := range []model.AccumKind{model.AccumDense, model.AccumSparse} {
		var ctr metrics.Counters
		out, st, err := Contract(l, r, Config{
			Threads: 2, TileL: 32, TileR: 32, Accum: acc, Platform: tinyLLC, Counters: &ctr,
		})
		if err != nil {
			t.Fatalf("accum=%v: %v", acc, err)
		}
		RecycleOutput(out)
		s := ctr.Snapshot()
		if s.ProbeBatches == 0 {
			t.Fatalf("accum=%v: no probe batches recorded", acc)
		}
		if s.ProbeHits+s.ProbeMisses != s.Queries {
			t.Fatalf("accum=%v: hits %d + misses %d != queries %d", acc, s.ProbeHits, s.ProbeMisses, s.Queries)
		}
		if s.ProbeHits == 0 {
			t.Fatalf("accum=%v: contraction with output found no probe hits", acc)
		}
		if got := s.KernelTasks[int(st.Decision.Kernel)]; got != int64(st.Tasks) {
			t.Fatalf("accum=%v: kernel %v ran %d tasks, stats say %d", acc, st.Decision.Kernel, got, st.Tasks)
		}
	}
	// Sorted kernels probe nothing: the batch counters must stay zero.
	var ctr metrics.Counters
	out, _, err := Contract(l, r, Config{
		Threads: 2, TileL: 32, TileR: 32, Rep: RepSorted, Accum: model.AccumSparse,
		Platform: tinyLLC, Counters: &ctr,
	})
	if err != nil {
		t.Fatal(err)
	}
	RecycleOutput(out)
	if s := ctr.Snapshot(); s.ProbeBatches != 0 || s.ProbeHits != 0 || s.ProbeMisses != 0 {
		t.Fatalf("sorted rep recorded probe batches: %+v", s)
	}
}

// TestTileNNZHintClamps pins the sparse-hint clamp boundaries, including the
// NaN expectation a degenerate PNonzero produces (int(NaN) is
// implementation-defined, so NaN must take the floor branch explicitly).
func TestTileNNZHintClamps(t *testing.T) {
	mk := func(p float64) model.Decision { return model.Decision{PNonzero: p} }
	cases := []struct {
		name   string
		dec    model.Decision
		tl, tr uint64
		want   int
	}{
		{"below floor", mk(1e-9), 100, 100, 64},
		{"at floor", mk(1), 8, 8, 64},
		{"just above floor", mk(1), 13, 5, 65},
		{"interior", mk(0.5), 1000, 1000, 500000},
		{"above ceiling", mk(1), 1 << 16, 1 << 16, 1 << 22},
		{"zero pnonzero", mk(0), 1000, 1000, 64},
		{"nan pnonzero", mk(math.NaN()), 1000, 1000, 64},
		{"nan from inf times zero", mk(math.Inf(1)), 0, 1000, 64},
	}
	for _, c := range cases {
		if got := tileNNZHint(c.dec, c.tl, c.tr); got != c.want {
			t.Errorf("%s: tileNNZHint = %d, want %d", c.name, got, c.want)
		}
	}
}

// benchTilePairData builds one asymmetric tile pair in both representations
// with a realistic key overlap, plus the matching workers.
type benchTilePairData struct {
	hl, hr *hashtable.Sealed
	sl, sr *sortedTile
}

func newBenchTilePair(nKeysL, nKeysR, pairsPerKey int) *benchTilePairData {
	mkSealed := func(nKeys, stride int) *hashtable.Sealed {
		tb := hashtable.NewSliceTable(nKeys)
		for k := 0; k < nKeys; k++ {
			for p := 0; p < pairsPerKey; p++ {
				tb.Insert(uint64(k*stride), uint32((k+p)%32), 1.25)
			}
		}
		return tb.Seal()
	}
	mkSorted := func(nKeys, stride int) *sortedTile {
		st := &sortedTile{}
		for k := 0; k < nKeys; k++ {
			st.keys = append(st.keys, uint64(k*stride))
			st.offs = append(st.offs, int32(len(st.pairs)))
			for p := 0; p < pairsPerKey; p++ {
				st.pairs = append(st.pairs, hashtable.Pair{Idx: uint32((k + p) % 32), Val: 1.25})
			}
		}
		st.offs = append(st.offs, int32(len(st.pairs)))
		return st
	}
	// Left keys stride 1, right stride 2: half the smaller side intersects.
	return &benchTilePairData{
		hl: mkSealed(nKeysL, 1), hr: mkSealed(nKeysR, 2),
		sl: mkSorted(nKeysL, 1), sr: mkSorted(nKeysR, 2),
	}
}

// BenchmarkTilePair compares the microkernel family on one tile pair per
// (rep, accum) combination, with the generic loop as the in-benchmark
// baseline — `go test -bench TilePair ./internal/core` answers "did the
// specialization help" without the full experiment harness.
func BenchmarkTilePair(b *testing.B) {
	const tl, tr = 64, 32
	d := newBenchTilePair(1024, 512, 8)
	run := func(name string, kind model.AccumKind, fn func(wk *worker, pool *mempool.Pool[Triple])) {
		b.Run(name, func(b *testing.B) {
			wk := newWorker(kind, tl, tr, 1<<12)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pool := outputChunks.NewPool()
				fn(wk, pool)
				outputChunks.Release(mempool.Concat(pool))
			}
		})
	}
	run("hash/dense/generic", model.AccumDense, func(wk *worker, pool *mempool.Pool[Triple]) {
		contractTilePair(d.hl, d.hr, 0, 0, wk, pool, nil)
	})
	run("hash/dense/kernel", model.AccumDense, func(wk *worker, pool *mempool.Pool[Triple]) {
		contractHashDense(d.hl, d.hr, 0, 0, wk, pool, nil, hashtable.LookupBatchMax)
	})
	run("hash/sparse/generic", model.AccumSparse, func(wk *worker, pool *mempool.Pool[Triple]) {
		contractTilePair(d.hl, d.hr, 0, 0, wk, pool, nil)
	})
	run("hash/sparse/kernel", model.AccumSparse, func(wk *worker, pool *mempool.Pool[Triple]) {
		contractHashSparse(d.hl, d.hr, 0, 0, wk, pool, nil, hashtable.LookupBatchMax)
	})
	run("sorted/dense/generic", model.AccumDense, func(wk *worker, pool *mempool.Pool[Triple]) {
		contractTilePairSorted(d.sl, d.sr, 0, 0, wk, pool, nil)
	})
	run("sorted/dense/kernel", model.AccumDense, func(wk *worker, pool *mempool.Pool[Triple]) {
		contractSortedDense(d.sl, d.sr, 0, 0, wk, pool, nil)
	})
	run("sorted/sparse/generic", model.AccumSparse, func(wk *worker, pool *mempool.Pool[Triple]) {
		contractTilePairSorted(d.sl, d.sr, 0, 0, wk, pool, nil)
	})
	run("sorted/sparse/kernel", model.AccumSparse, func(wk *worker, pool *mempool.Pool[Triple]) {
		contractSortedSparse(d.sl, d.sr, 0, 0, wk, pool, nil)
	})
}
