//go:build fastcc_checked

// fastcc_checked mode: a Shard carries a generation stamp set once at the
// end of build; the tile accessors the contract phase reads through verify
// it, so consuming a shard whose build never completed — a zero value, a
// manual literal, or a future recycled shard — panics deterministically
// instead of contracting over half-built tables.
package core

import "fmt"

// shardBuiltGen marks a Shard whose build completed. The zero value's 0
// fails checkBuilt.
const shardBuiltGen uint32 = 0x5A4DB001

type checkedShard struct {
	gen uint32
}

func (s *Shard) stampBuilt() { s.ck.gen = shardBuiltGen }

func (s *Shard) checkBuilt(op string) {
	if s.ck.gen != shardBuiltGen {
		panic(fmt.Sprintf(
			"core.Shard.%s: generation check failed (gen=%#x, want %#x): shard build never completed or shard was recycled",
			op, s.ck.gen, shardBuiltGen))
	}
}
