//go:build fastcc_checked

// fastcc_checked mode: a Shard carries a generation stamp set once at the
// end of build; the tile accessors the contract phase reads through verify
// it, so consuming a shard whose build never completed — a zero value, a
// manual literal, or a future recycled shard — panics deterministically
// instead of contracting over half-built tables.
package core

import "fmt"

// shardBuiltGen marks a Shard whose build completed; shardRetiredGen marks
// one whose storage was reclaimed by eviction or Drop; shardSpilledGen marks
// one whose tables were reclaimed after their image moved to the disk tier.
// The zero value's 0 fails checkBuilt like any other non-live stamp.
const (
	shardBuiltGen   uint32 = 0x5A4DB001
	shardRetiredGen uint32 = 0x5A4DDEAD
	shardSpilledGen uint32 = 0x5A4D5B11
)

type checkedShard struct {
	gen uint32
}

func (s *Shard) stampBuilt()   { s.ck.gen = shardBuiltGen }
func (s *Shard) stampRetired() { s.ck.gen = shardRetiredGen }
func (s *Shard) stampSpilled() { s.ck.gen = shardSpilledGen }

func (s *Shard) checkBuilt(op string) {
	switch s.ck.gen {
	case shardBuiltGen:
	case shardRetiredGen:
		panic(fmt.Sprintf(
			"core.Shard.%s: generation check failed (gen=%#x): shard was recycled — a reader reached a retired shard's tables without holding a pin",
			op, s.ck.gen))
	case shardSpilledGen:
		panic(fmt.Sprintf(
			"core.Shard.%s: generation check failed (gen=%#x): shard was reclaimed mid-spill — its tables moved to the disk tier and a reader kept a reference to the old in-RAM shard",
			op, s.ck.gen))
	default:
		panic(fmt.Sprintf(
			"core.Shard.%s: generation check failed (gen=%#x, want %#x): shard build never completed",
			op, s.ck.gen, shardBuiltGen))
	}
}
