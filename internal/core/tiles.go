package core

import (
	"math/bits"

	"fastcc/internal/accum"
	"fastcc/internal/coo"
	"fastcc/internal/hashtable"
	"fastcc/internal/mempool"
	"fastcc/internal/metrics"
	"fastcc/internal/model"
)

// worker holds the per-worker reusable accumulator.
type worker struct {
	acc accum.Accumulator
}

func newWorker(kind model.AccumKind, tl, tr uint64, sparseHint int) *worker {
	switch kind {
	case model.AccumSparse:
		return &worker{acc: accum.NewSparse(sparseHint)}
	default:
		return &worker{acc: accum.NewDense(uint32(tl), uint32(tr))}
	}
}

// tileNNZHint sizes the sparse accumulator from the model's expected
// nonzeros per tile, bounded to keep initial allocations modest.
func tileNNZHint(dec model.Decision, tl, tr uint64) int {
	e := dec.PNonzero * float64(tl) * float64(tr)
	switch {
	case e < 64:
		return 64
	case e > 1<<22:
		return 1 << 22
	default:
		return int(e)
	}
}

// buildTileTables builds the per-tile hash tables this worker owns
// (ownership i mod teamSize == w) by scanning the whole operand and
// filtering — the paper's thread-local construction scheme. Workers write
// disjoint slots of tables, so no synchronization is needed beyond the
// team barrier.
//
//fastcc:hotpath
func buildTileTables(tables []*hashtable.SliceTable, m *coo.Matrix, tile uint64, w, teamSize int) {
	nnz := m.NNZ()
	hint := 0
	if len(tables) > 0 {
		hint = nnz / len(tables)
	}
	// Tile sides are powers of two whenever the model chose them; replace
	// the division in the hot filter loop with a shift in that case.
	shift := -1
	if tile&(tile-1) == 0 {
		shift = bits.TrailingZeros64(tile)
	}
	mask := tile - 1
	for k := 0; k < nnz; k++ {
		ext := m.Ext[k]
		var i int
		var intra uint32
		if shift >= 0 {
			i = int(ext >> shift)
			intra = uint32(ext & mask)
		} else {
			i = int(ext / tile)
			intra = uint32(ext - uint64(i)*tile)
		}
		if i%teamSize != w {
			continue
		}
		t := tables[i]
		if t == nil {
			t = hashtable.NewSliceTable(hint)
			tables[i] = t
		}
		t.Insert(m.Ctr[k], intra, m.Val[k])
	}
}

// nonEmptyTiles lists the indices of tiles holding at least one nonzero.
func nonEmptyTiles(tables []*hashtable.SliceTable) []int {
	out := make([]int, 0, len(tables))
	for i, t := range tables {
		if t != nil && t.Len() > 0 {
			out = append(out, i)
		}
	}
	return out
}

// contractTilePair computes one output tile (Algorithm 6): co-iterate the
// contraction keys of the two input tiles, form the outer product of the
// matching slices into the worker's accumulator, then drain to the
// worker-local COO list with global coordinates restored.
//
//fastcc:hotpath
func contractTilePair(hl, hr *hashtable.SliceTable, baseL, baseR uint64,
	wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters) {

	// Iterate the table with fewer distinct keys and probe the other: the
	// intersection is the same, the query count smaller.
	probeInto := hr
	iter := hl
	swapped := false
	if hr.Len() < hl.Len() {
		iter, probeInto = hr, hl
		swapped = true
	}
	var queries, volume, updates int64
	// Devirtualize the accumulator for the upsert-dominated inner loops:
	// the interface call would otherwise sit on every multiply-accumulate.
	dense, _ := wk.acc.(*accum.Dense)
	sparse, _ := wk.acc.(*accum.Sparse)
	iter.ForEach(func(c uint64, ips []hashtable.Pair) { //fastcc:allow hotalloc -- one closure per tile task, outside the per-update loops
		queries++
		pps := probeInto.Lookup(c)
		if pps == nil {
			return
		}
		volume += int64(len(ips)) + int64(len(pps))
		updates += int64(len(ips)) * int64(len(pps))
		lps, rps := ips, pps
		if swapped {
			// iter is the right tile: ips are r-indices, pps l-indices.
			lps, rps = pps, ips
		}
		switch {
		case dense != nil:
			for _, lp := range lps {
				lv, li := lp.Val, lp.Idx
				for _, rp := range rps {
					dense.Upsert(li, rp.Idx, lv*rp.Val)
				}
			}
		case sparse != nil:
			for _, lp := range lps {
				lv, li := lp.Val, lp.Idx
				for _, rp := range rps {
					sparse.Upsert(li, rp.Idx, lv*rp.Val)
				}
			}
		default:
			acc := wk.acc
			for _, lp := range lps {
				lv, li := lp.Val, lp.Idx
				for _, rp := range rps {
					acc.Upsert(li, rp.Idx, lv*rp.Val)
				}
			}
		}
	})
	ctr.AddQueries(queries)
	ctr.AddVolume(volume)
	ctr.AddUpdates(updates)
	wk.acc.Drain(func(l, r uint32, v float64) { //fastcc:allow hotalloc -- one closure per tile task, outside the per-update loops
		pool.Append(Triple{L: baseL + uint64(l), R: baseR + uint64(r), V: v})
	})
}
