package core

import (
	"fastcc/internal/accum"
	"fastcc/internal/coo"
	"fastcc/internal/hashtable"
	"fastcc/internal/mempool"
	"fastcc/internal/metrics"
	"fastcc/internal/model"
)

// worker holds the per-worker reusable accumulator. Exactly one of
// dense/sparse is non-nil and aliases acc: the specialized kernels read the
// typed field directly so no interface dispatch or per-tile type assertion
// sits on the accumulate path.
type worker struct {
	acc    accum.Accumulator
	dense  *accum.Dense
	sparse *accum.Sparse
}

func newWorker(kind model.AccumKind, tl, tr uint64, sparseHint int) *worker {
	switch kind {
	case model.AccumSparse:
		s := accum.NewSparse(sparseHint)
		return &worker{acc: s, sparse: s}
	default:
		d := accum.NewDense(uint32(tl), uint32(tr))
		return &worker{acc: d, dense: d}
	}
}

// tileNNZHint sizes the sparse accumulator from the model's expected
// nonzeros per tile, bounded to keep initial allocations modest.
func tileNNZHint(dec model.Decision, tl, tr uint64) int {
	e := dec.PNonzero * float64(tl) * float64(tr)
	switch {
	case !(e >= 64):
		// Covers e < 64 AND a NaN expectation (PNonzero NaN or zero-extent
		// degenerate input): every comparison with NaN is false, so the old
		// `e < 64` fallthrough reached int(NaN) — implementation-defined.
		return 64
	case e > 1<<22:
		return 1 << 22
	default:
		return int(e)
	}
}

// buildSealedTiles builds and seals the hash tables of the non-empty tiles
// this worker owns (idx mod teamSize == w over the partition's non-empty
// list). Each tile's nonzeros sit in a contiguous partition segment, so a
// worker reads only the bytes of its own tiles — no scan-and-filter over
// the whole operand. The mutable table is sized from the model's
// distinct-key estimate (its hint is a KEY count, not a pair count) and
// sealed into the read-only SoA form the contract phase iterates.
//
// Workers write disjoint slots of tables, so no synchronization is needed
// beyond the team barrier.
//
//fastcc:hotpath
func buildSealedTiles(tables []*hashtable.Sealed, part *coo.TilePartition, ctrDim uint64, w, teamSize int) {
	ne := part.NonEmpty()
	for idx := w; idx < len(ne); idx += teamSize {
		i := ne[idx]
		lo, hi := part.Offs[i], part.Offs[i+1]
		t := hashtable.NewSliceTable(model.ExpectedDistinctKeys(hi-lo, ctrDim))
		for k := lo; k < hi; k++ {
			t.Insert(part.Ctr[k], part.Intra[k], part.Val[k])
		}
		tables[i] = t.Seal()
	}
}

// contractTilePair computes one output tile (Algorithm 6): co-iterate the
// contraction keys of the two input tiles, form the outer product of the
// matching slices into the worker's accumulator, then drain to the
// worker-local COO list with global coordinates restored. The sealed
// tables' dense cursor (KeyAt/PairsAt) replaces the seed's ForEach closure:
// the key sweep is a linear walk of two flat arrays with no per-key
// indirection or callback.
//
//fastcc:hotpath
func contractTilePair(hl, hr *hashtable.Sealed, baseL, baseR uint64,
	wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters) {

	// Iterate the table with fewer distinct keys and probe the other: the
	// intersection is the same, the query count smaller.
	iter, probeInto, swapped := chooseSides(hl, hr)
	var queries, volume, updates int64
	// Devirtualize the accumulator for the upsert-dominated inner loops:
	// the interface call would otherwise sit on every multiply-accumulate.
	dense, sparse := wk.dense, wk.sparse
	n := iter.Len()
	for di := 0; di < n; di++ {
		queries++
		pps := probeInto.Lookup(iter.KeyAt(di))
		if pps == nil {
			continue
		}
		ips := iter.PairsAt(di)
		volume += int64(len(ips)) + int64(len(pps))
		updates += int64(len(ips)) * int64(len(pps))
		lps, rps := ips, pps
		if swapped {
			// iter is the right tile: ips are r-indices, pps l-indices.
			lps, rps = pps, ips
		}
		switch {
		case dense != nil:
			for _, lp := range lps {
				lv, li := lp.Val, lp.Idx
				for _, rp := range rps {
					dense.Upsert(li, rp.Idx, lv*rp.Val)
				}
			}
		case sparse != nil:
			for _, lp := range lps {
				lv, li := lp.Val, lp.Idx
				for _, rp := range rps {
					sparse.Upsert(li, rp.Idx, lv*rp.Val)
				}
			}
		default:
			acc := wk.acc
			for _, lp := range lps {
				lv, li := lp.Val, lp.Idx
				for _, rp := range rps {
					acc.Upsert(li, rp.Idx, lv*rp.Val)
				}
			}
		}
	}
	ctr.AddQueries(queries)
	ctr.AddVolume(volume)
	ctr.AddUpdates(updates)
	wk.acc.Drain(func(l, r uint32, v float64) { //fastcc:allow hotalloc -- one closure per tile task, outside the per-update loops
		pool.Append(Triple{L: baseL + uint64(l), R: baseR + uint64(r), V: v})
	})
}
