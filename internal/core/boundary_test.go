package core

import (
	"math/rand"
	"testing"

	"fastcc/internal/coo"
	"fastcc/internal/metrics"
	"fastcc/internal/model"
	"fastcc/internal/ref"
)

// Boundary-condition tests for the tiled engine: ragged last tiles, tiles
// equal to and exceeding the extents, extreme aspect ratios, and values at
// the tile seams.

func TestContractRaggedLastTile(t *testing.T) {
	// Extents not divisible by the tile: the last tile is ragged and its
	// intra-tile indices must still map back to correct globals.
	l := &coo.Matrix{ExtDim: 100, CtrDim: 3}
	r := &coo.Matrix{ExtDim: 70, CtrDim: 3}
	// Place nonzeros exactly at the seams and in the ragged remainder.
	for _, e := range []uint64{0, 31, 32, 63, 64, 95, 96, 99} {
		l.Ext = append(l.Ext, e)
		l.Ctr = append(l.Ctr, e%3)
		l.Val = append(l.Val, float64(e+1))
	}
	for _, e := range []uint64{0, 31, 32, 63, 64, 69} {
		r.Ext = append(r.Ext, e)
		r.Ctr = append(r.Ctr, e%3)
		r.Val = append(r.Val, float64(e+2))
	}
	out, st, err := Contract(l, r, Config{Threads: 3, TileL: 32, TileR: 32})
	if err != nil {
		t.Fatal(err)
	}
	if st.NL != 4 || st.NR != 3 {
		t.Fatalf("grid %dx%d want 4x3", st.NL, st.NR)
	}
	var ls, rs []uint64
	var vs []float64
	out.ForEach(func(tr Triple) { ls = append(ls, tr.L); rs = append(rs, tr.R); vs = append(vs, tr.V) })
	got := ref.TriplesToMatrixTensor(ls, rs, vs, l.ExtDim, r.ExtDim)
	want := ref.MapToMatrixTensor(ref.ContractMatrix(l, r), l.ExtDim, r.ExtDim)
	if !coo.Equal(got, want) {
		t.Fatal("ragged tiling broke seam elements")
	}
}

func TestContractTileLargerThanExtent(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	l := randomMatrix(rng, 10, 5, 30)
	r := randomMatrix(rng, 10, 5, 30)
	// A tile far larger than either extent: one task, full contraction.
	out, st, err := Contract(l, r, Config{Threads: 2, TileL: 1 << 12, TileR: 1 << 12, Accum: model.AccumSparse})
	if err != nil {
		t.Fatal(err)
	}
	if st.NL != 1 || st.NR != 1 || st.Tasks > 1 {
		t.Fatalf("grid %dx%d tasks=%d", st.NL, st.NR, st.Tasks)
	}
	var ls, rs []uint64
	var vs []float64
	out.ForEach(func(tr Triple) { ls = append(ls, tr.L); rs = append(rs, tr.R); vs = append(vs, tr.V) })
	got := ref.TriplesToMatrixTensor(ls, rs, vs, l.ExtDim, r.ExtDim)
	want := ref.MapToMatrixTensor(ref.ContractMatrix(l, r), l.ExtDim, r.ExtDim)
	if !coo.Equal(got, want) {
		t.Fatal("single-tile contraction wrong")
	}
}

func TestContractExtremeAspectTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	l := randomMatrix(rng, 128, 16, 400)
	r := randomMatrix(rng, 128, 16, 400)
	for _, tile := range [][2]uint64{{1, 128}, {128, 1}, {2, 64}} {
		out, _, err := Contract(l, r, Config{Threads: 2, TileL: tile[0], TileR: tile[1]})
		if err != nil {
			t.Fatalf("tile %v: %v", tile, err)
		}
		var ls, rs []uint64
		var vs []float64
		out.ForEach(func(tr Triple) { ls = append(ls, tr.L); rs = append(rs, tr.R); vs = append(vs, tr.V) })
		got := ref.TriplesToMatrixTensor(ls, rs, vs, l.ExtDim, r.ExtDim)
		want := ref.MapToMatrixTensor(ref.ContractMatrix(l, r), l.ExtDim, r.ExtDim)
		if !coo.Equal(got, want) {
			t.Fatalf("tile %v wrong", tile)
		}
	}
}

func TestContractNonPow2TileWithSparseAccum(t *testing.T) {
	// The dense accumulator requires power-of-two TileR; the sparse one
	// must accept arbitrary tile sizes.
	rng := rand.New(rand.NewSource(35))
	l := randomMatrix(rng, 90, 11, 300)
	r := randomMatrix(rng, 77, 11, 300)
	out, st, err := Contract(l, r, Config{Threads: 2, TileL: 30, TileR: 21, Accum: model.AccumSparse})
	if err != nil {
		t.Fatal(err)
	}
	if st.NL != 3 || st.NR != 4 {
		t.Fatalf("grid %dx%d", st.NL, st.NR)
	}
	var ls, rs []uint64
	var vs []float64
	out.ForEach(func(tr Triple) { ls = append(ls, tr.L); rs = append(rs, tr.R); vs = append(vs, tr.V) })
	got := ref.TriplesToMatrixTensor(ls, rs, vs, l.ExtDim, r.ExtDim)
	want := ref.MapToMatrixTensor(ref.ContractMatrix(l, r), l.ExtDim, r.ExtDim)
	if !coo.Equal(got, want) {
		t.Fatal("non-pow2 sparse tiling wrong")
	}
}

func TestContractManyMoreThreadsThanTasks(t *testing.T) {
	l := &coo.Matrix{Ext: []uint64{0}, Ctr: []uint64{0}, Val: []float64{2}, ExtDim: 4, CtrDim: 1}
	r := &coo.Matrix{Ext: []uint64{1}, Ctr: []uint64{0}, Val: []float64{3}, ExtDim: 4, CtrDim: 1}
	out, _, err := Contract(l, r, Config{Threads: 16, TileL: 2, TileR: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("nnz=%d", out.Len())
	}
	out.ForEach(func(tr Triple) {
		if tr.L != 0 || tr.R != 1 || tr.V != 6 {
			t.Fatalf("got (%d,%d)=%g", tr.L, tr.R, tr.V)
		}
	})
}

func TestContractSingleC(t *testing.T) {
	// CtrDim == 1: every nonzero pair contributes (a pure outer product).
	l := &coo.Matrix{Ext: []uint64{0, 1, 2}, Ctr: []uint64{0, 0, 0}, Val: []float64{1, 2, 3}, ExtDim: 3, CtrDim: 1}
	r := &coo.Matrix{Ext: []uint64{0, 1}, Ctr: []uint64{0, 0}, Val: []float64{10, 100}, ExtDim: 2, CtrDim: 1}
	out, _, err := Contract(l, r, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 {
		t.Fatalf("outer product nnz=%d want 6", out.Len())
	}
	sum := 0.0
	out.ForEach(func(tr Triple) { sum += tr.V })
	if sum != (1+2+3)*(10+100) {
		t.Fatalf("sum=%g", sum)
	}
}

func TestContractDuplicateInputCoordinates(t *testing.T) {
	// Duplicates are independent contributions and must accumulate.
	l := &coo.Matrix{Ext: []uint64{5, 5}, Ctr: []uint64{2, 2}, Val: []float64{1, 1}, ExtDim: 8, CtrDim: 4}
	r := &coo.Matrix{Ext: []uint64{3}, Ctr: []uint64{2}, Val: []float64{10}, ExtDim: 8, CtrDim: 4}
	out, _, err := Contract(l, r, Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	out.ForEach(func(tr Triple) {
		if tr.V != 20 {
			t.Fatalf("duplicate accumulation wrong: %g", tr.V)
		}
	})
}

func TestSortedRepMatchesHashRep(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	l := randomMatrix(rng, 200, 40, 2000)
	r := randomMatrix(rng, 150, 40, 1500)
	collect := func(rep InputRep) *coo.Tensor {
		out, _, err := Contract(l, r, Config{Threads: 3, TileL: 64, TileR: 64, Rep: rep})
		if err != nil {
			t.Fatal(err)
		}
		var ls, rs []uint64
		var vs []float64
		out.ForEach(func(tr Triple) { ls = append(ls, tr.L); rs = append(rs, tr.R); vs = append(vs, tr.V) })
		tn := ref.TriplesToMatrixTensor(ls, rs, vs, l.ExtDim, r.ExtDim)
		tn.Sort()
		return tn
	}
	h := collect(RepHash)
	s := collect(RepSorted)
	if !coo.Equal(h, s) {
		t.Fatal("sorted rep disagrees with hash rep")
	}
	want := ref.MapToMatrixTensor(ref.ContractMatrix(l, r), l.ExtDim, r.ExtDim)
	if !coo.Equal(s, want) {
		t.Fatal("sorted rep disagrees with reference")
	}
}

func TestSortedRepWithSparseAccumAndRaggedTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	l := randomMatrix(rng, 97, 13, 700)
	r := randomMatrix(rng, 83, 13, 600)
	out, stc, err := Contract(l, r, Config{Threads: 2, TileL: 30, TileR: 41, Accum: model.AccumSparse, Rep: RepSorted})
	if err != nil {
		t.Fatal(err)
	}
	if stc.NL != 4 || stc.NR != 3 {
		t.Fatalf("grid %dx%d", stc.NL, stc.NR)
	}
	var ls, rs []uint64
	var vs []float64
	out.ForEach(func(tr Triple) { ls = append(ls, tr.L); rs = append(rs, tr.R); vs = append(vs, tr.V) })
	got := ref.TriplesToMatrixTensor(ls, rs, vs, l.ExtDim, r.ExtDim)
	want := ref.MapToMatrixTensor(ref.ContractMatrix(l, r), l.ExtDim, r.ExtDim)
	if !coo.Equal(got, want) {
		t.Fatal("sorted rep + sparse accum wrong")
	}
}

func TestInputRepString(t *testing.T) {
	if RepHash.String() != "hash" || RepSorted.String() != "sorted" {
		t.Fatal("InputRep strings")
	}
}

func TestRepsAgreeOnUpdateCounts(t *testing.T) {
	// Hash and sorted representations must perform the exact same number
	// of multiply-accumulates (the work is representation-independent).
	rng := rand.New(rand.NewSource(38))
	l := randomMatrix(rng, 120, 25, 900)
	r := randomMatrix(rng, 110, 25, 800)
	count := func(rep InputRep) int64 {
		var c metrics.Counters
		if _, _, err := Contract(l, r, Config{Threads: 2, TileL: 32, TileR: 32, Rep: rep, Counters: &c}); err != nil {
			t.Fatal(err)
		}
		return c.Snapshot().Updates
	}
	h, s := count(RepHash), count(RepSorted)
	if h != s || h == 0 {
		t.Fatalf("updates differ: hash=%d sorted=%d", h, s)
	}
}
