// The disk tier of the shard cache: serialization of evicted shards into
// spill files and their restoration at the next pin.
//
// Placement in the lifecycle (lifecycle.go): eviction victims reach reap
// already retired, unpinned, unlinked from the LRU and unclaimed. With a
// spill directory configured, reap hands each victim to trySpill, which
// serializes the still-live tables into a section-encoded body, writes it
// through the spill.Dir (envelope: magic, version, generation stamp, CRC
// trailer), installs the handle on the shard under its operand's lock, and
// only then recycles the RAM tables. The shard stays mapped as a "spilled"
// stub — retired (pins fail) but carrying the disk image. When
// Operand.Shard next finds that stub, it takes the handle, reads the file
// back, and restores the tables into a fresh born-pinned shard; any typed
// failure (missing, truncated, checksum, stale generation, malformed body)
// counts a fallback and degrades to the ordinary rebuild — never a wrong
// answer.
//
// Content-keyed operands (NewKeyedOperand) name their spill files by key,
// so a keep-mode directory lets a restarted process adopt the previous
// process's files (Dir.TakeOrphan) instead of rebuilding — the server's
// warm-restart path. Anonymous operands get process-local names the next
// startup scavenges.
package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"

	"fastcc/internal/coo"
	"fastcc/internal/hashtable"
	"fastcc/internal/spill"
	"fastcc/internal/tnsbin"
)

// Process-wide spill state: the directory manager (nil = disk tier off),
// the generation-stamp sequence for spill writes, and the anonymous
// operand naming sequence.
var (
	spillDirPtr atomic.Pointer[spill.Dir]
	spillSeq    atomic.Uint64
	spillAnon   atomic.Uint64
)

// ConfigureSpill (re)configures the process-wide disk tier: dir is the
// spill directory (created if needed, scavenged of stale leftovers),
// budget bounds its bytes (<= 0 unlimited), keep selects warm-restart
// persistence (released files stay on disk as adoptable orphans). An empty
// dir disables the disk tier; reconfiguring with the same dir and keep
// mode just re-applies the budget.
func ConfigureSpill(dir string, budget int64, keep bool) error {
	if dir == "" {
		spillDirPtr.Store(nil)
		return nil
	}
	if cur := spillDirPtr.Load(); cur != nil && cur.Path() == dir && cur.Keep() == keep {
		cur.SetBudget(budget)
		return nil
	}
	d, err := spill.Open(spill.OS{}, dir, budget, keep)
	if err != nil {
		return err
	}
	spillDirPtr.Store(d)
	return nil
}

// configureSpill applies one run Config's spill settings. An empty SpillDir
// means "leave the process-wide configuration alone" (so tenanted server
// runs do not disturb the daemon's keep-mode setup), not "disable" — that
// is ConfigureSpill's job.
func configureSpill(dir string, budget int64) error {
	if dir == "" {
		return nil
	}
	if cur := spillDirPtr.Load(); cur != nil && cur.Path() == dir {
		cur.SetBudget(budget)
		return nil
	}
	return ConfigureSpill(dir, budget, false)
}

// SpillDirStats reports the disk-tier gauges of the configured spill
// directory (zeros when the tier is off): file count, summed bytes, and
// files the startup scavenge deleted.
func SpillDirStats() (files int, bytes int64, scavenged int) {
	if d := spillDirPtr.Load(); d != nil {
		return d.Stats()
	}
	return 0, 0, 0
}

// SpillFaultSnapshot breaks SpillFallbacks down by typed cause — what the
// fault-injection tests assert against.
type SpillFaultSnapshot struct {
	Missing, Truncated, Checksum, Stale, BadHeader int64
	// WriteFailed counts spill writes the directory refused (over budget)
	// or the filesystem failed (ENOSPC, read-only directory).
	WriteFailed int64
}

var spillFaults struct {
	missing, truncated, checksum, stale, badHeader, writeFailed atomic.Int64
}

// SpillFaults returns the per-cause fallback counters.
func SpillFaults() SpillFaultSnapshot {
	return SpillFaultSnapshot{
		Missing:     spillFaults.missing.Load(),
		Truncated:   spillFaults.truncated.Load(),
		Checksum:    spillFaults.checksum.Load(),
		Stale:       spillFaults.stale.Load(),
		BadHeader:   spillFaults.badHeader.Load(),
		WriteFailed: spillFaults.writeFailed.Load(),
	}
}

// countSpillFault records one degraded spill operation: the global fallback
// counter plus the typed-cause breakdown.
func countSpillFault(err error) {
	shardLRU.counters.SpillFallbacks.Add(1)
	switch {
	case errors.Is(err, spill.ErrMissing):
		spillFaults.missing.Add(1)
	case errors.Is(err, spill.ErrChecksum):
		spillFaults.checksum.Add(1)
	case errors.Is(err, spill.ErrStale):
		spillFaults.stale.Add(1)
	case errors.Is(err, spill.ErrBadHeader):
		spillFaults.badHeader.Add(1)
	case errors.Is(err, spill.ErrTruncated):
		spillFaults.truncated.Add(1)
	default:
		spillFaults.writeFailed.Add(1)
	}
}

// sanitizeSpillKey maps an operand content key onto a safe file-name stem:
// only [A-Za-z0-9._-] survive, and a key that would collide with the
// anonymous namespace is prefixed out of it.
func sanitizeSpillKey(key string) string {
	var b strings.Builder
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	s := b.String()
	if s == "" || strings.HasPrefix(s, spill.AnonPrefix) {
		s = "k" + s
	}
	return s
}

// spillNameLocked derives this operand's spill file name for one ShardKey.
// Content-keyed operands use the key (stable across processes, so keep-mode
// files are adoptable); anonymous operands draw a process-local id the next
// startup scavenges. Caller holds o.mu (the lazy anonymous id is operand
// state).
func (o *Operand) spillNameLocked(key ShardKey) string {
	base := o.spillKey
	if base == "" {
		if o.spillID == "" {
			o.spillID = spill.AnonPrefix + strconv.FormatUint(spillAnon.Add(1), 10)
		}
		base = o.spillID
	}
	return fmt.Sprintf("%s-t%d-r%d%s", base, key.Tile, key.Rep, spill.Ext)
}

// adoptSpillLocked looks for an orphan spill file of a previous process
// matching this content-keyed operand and shard key. Caller holds o.mu.
func (o *Operand) adoptSpillLocked(key ShardKey) *spill.Handle {
	if o.spillKey == "" {
		return nil
	}
	d := spillDirPtr.Load()
	if d == nil {
		return nil
	}
	h, ok := d.TakeOrphan(o.spillNameLocked(key))
	if !ok {
		return nil
	}
	return h
}

// takeSpillLocked transfers ownership of the shard's disk image to the
// caller (nil when the shard never spilled). Caller holds the owner's mu;
// whoever takes the handle owes it a Release or Discard.
func (s *Shard) takeSpillLocked() *spill.Handle {
	h := s.spill
	s.spill = nil //fastcc:allow sealedmut -- spill handle, lifecycle state guarded by Operand.mu
	return h
}

// trySpill intercepts one eviction victim on its way to recycling: the
// caller (shardCache.reap) guarantees s is retired, unpinned, unlinked and
// unclaimed, with its tables still live. On success the tables' image is on
// disk, the handle is installed on the still-mapped shard, and the RAM
// storage is recycled; any failure (disk tier off, write refused, operand
// closed or remapped mid-spill) reports false and the caller falls back to
// the plain recycle path.
func trySpill(s *Shard) bool {
	d := spillDirPtr.Load()
	if d == nil {
		return false
	}
	body := encodeShard(s)
	o := s.owner
	o.mu.Lock()
	name := o.spillNameLocked(s.Key)
	o.mu.Unlock()
	h, err := d.Write(name, spillSeq.Add(1), body)
	if err != nil {
		countSpillFault(err)
		return false
	}
	o.mu.Lock()
	if cur, ok := o.shards[s.Key]; !ok || cur != s {
		// The operand was closed or the key rebuilt while we serialized:
		// nothing will ever reload this file, so take it back off disk.
		o.mu.Unlock()
		d.Discard(h)
		return false
	}
	s.spill = h //fastcc:allow sealedmut -- spill handle, lifecycle state guarded by Operand.mu
	o.mu.Unlock()
	// Mark the spilled state in the lifecycle word (tryPin keeps failing on
	// the retired bit; the spilled bit records why) and free the RAM tier.
	for {
		st := s.state.Load()
		if s.state.CompareAndSwap(st, st|shardSpilled) {
			break
		}
	}
	s.recycle()
	s.stampSpilled()
	shardLRU.counters.SpillWrites.Add(1)
	shardLRU.counters.SpillBytes.Add(h.Size())
	creditTenantSpill(s.spillClaims, h.Size(), true)
	return true
}

// creditTenantSpill charges one spill write (or read) to every tenant that
// had claimed the shard when it was evicted.
func creditTenantSpill(claims []string, bytes int64, write bool) {
	if len(claims) == 0 {
		return
	}
	c := &shardLRU
	c.mu.Lock()
	for _, id := range claims {
		if a := c.tenants[id]; a != nil {
			if write {
				a.spillWrites++
				a.spillBytes += bytes
			} else {
				a.spillReads++
			}
		}
	}
	c.mu.Unlock()
}

// loadSpill restores a spilled shard image into this freshly created,
// born-pinned shard. On success the shard is fully built (tables, bytes,
// generation stamp) and the file is released (kept as an orphan in a
// keep-mode directory, deleted otherwise). On any failure the typed cause
// is counted, the file is discarded, partially decoded tiles are recycled,
// and the caller rebuilds this same shard from the operand — graceful
// degradation, never a wrong answer.
//
//fastcc:sealer -- the spill twin of build: the restore path populating a Shard
func (s *Shard) loadSpill(h *spill.Handle, m *coo.Matrix) bool {
	d := h.Dir()
	r, err := d.Read(h)
	if err == nil {
		err = s.decodeSpill(r, m)
	}
	if err != nil {
		countSpillFault(err)
		d.Discard(h)
		return false
	}
	s.bytes = s.footprint()
	s.stampBuilt()
	shardLRU.counters.SpillReads.Add(1)
	d.Release(h)
	return true
}

// badSpillBody wraps a body-level inconsistency as spill.ErrBadHeader, the
// taxonomy's "shape contradicts the shard being reloaded" bucket.
func badSpillBody(format string, args ...any) error {
	return fmt.Errorf("%w: body: %s", spill.ErrBadHeader, fmt.Sprintf(format, args...))
}

// decodeSpill parses the section body into this shard's tables, verifying
// at every step that the image matches the shard key and the operand it is
// being reattached to. A failure partway recycles everything decoded so
// far and leaves the shard empty for the rebuild fallback.
//
//fastcc:sealer -- the spill twin of build: the restore path populating a Shard
func (s *Shard) decodeSpill(r *tnsbin.SectionReader, m *coo.Matrix) (err error) {
	defer func() {
		if err != nil {
			s.abortSpillDecode()
		}
	}()
	rep := InputRep(r.U8())
	tile := r.U64()
	nTiles := int(r.Uvarint())
	nPairs := int(r.Uvarint())
	nKeys := int(r.Uvarint())
	if r.Err() != nil {
		return r.Err()
	}
	if rep != s.Key.Rep || tile != s.Key.Tile {
		return badSpillBody("image is (tile %d, rep %v), shard wants (tile %d, rep %v)", tile, rep, s.Key.Tile, s.Key.Rep)
	}
	if want := int((m.ExtDim + tile - 1) / tile); nTiles != want {
		return badSpillBody("%d tiles, operand grid has %d", nTiles, want)
	}
	if nPairs != m.NNZ() {
		return badSpillBody("%d pairs, operand has %d nonzeros", nPairs, m.NNZ())
	}
	ne := int(r.Uvarint())
	if r.Err() != nil {
		return r.Err()
	}
	if ne < 0 || ne > nTiles {
		return badSpillBody("%d non-empty tiles of %d", ne, nTiles)
	}
	s.nonEmpty = make([]int, ne)
	for i := range s.nonEmpty {
		v := int(r.Uvarint())
		if r.Err() != nil {
			return r.Err()
		}
		if v >= nTiles || (i > 0 && v <= s.nonEmpty[i-1]) {
			return badSpillBody("non-empty tile index %d out of order or range", v)
		}
		s.nonEmpty[i] = v
	}
	s.pairs = nPairs
	if rep == RepSorted {
		s.sorted = make([]*sortedTile, nTiles)
		for _, i := range s.nonEmpty {
			st, derr := decodeSortedTile(r)
			if derr != nil {
				return derr
			}
			s.sorted[i] = st
			s.keys += len(st.keys)
		}
	} else {
		s.sealed = make([]*hashtable.Sealed, nTiles)
		for _, i := range s.nonEmpty {
			t, derr := decodeSealedTile(r)
			if derr != nil {
				return derr
			}
			s.sealed[i] = t
			s.keys += t.Len()
		}
	}
	if s.keys != nKeys {
		return badSpillBody("tiles carry %d keys, header says %d", s.keys, nKeys)
	}
	if r.Remaining() != 0 {
		return badSpillBody("%d trailing bytes", r.Remaining())
	}
	return nil
}

// abortSpillDecode recycles whatever decodeSpill populated before failing
// and leaves the shard as empty as Shard() created it, ready for build.
//
//fastcc:sealer -- failure-path inverse of decodeSpill
func (s *Shard) abortSpillDecode() {
	for i, t := range s.sealed {
		if t != nil {
			t.Recycle()
			s.sealed[i] = nil
		}
	}
	for i, st := range s.sorted {
		if st != nil {
			st.recycle()
			s.sorted[i] = nil
		}
	}
	s.sealed, s.sorted, s.nonEmpty = nil, nil, nil
	s.pairs, s.keys = 0, 0
}

// encodeShard serializes the shard's tables as a section body (the
// spill.Dir envelope adds magic, version, generation and CRC). Layout:
//
//	u8      rep                     u64     tile side
//	uvarint tiles                   uvarint pairs
//	uvarint keys                    uvarint non-empty count
//	uvarint non-empty tile indices (ascending)
//	per non-empty tile, in index order:
//	  RepHash:   u64 mask · u64s keys · uvarint pairs · uvarint lens ·
//	             u32 idxs · f64-bit vals
//	  RepSorted: u64s keys · i32s offs (CSR) · uvarint pairs ·
//	             u32 idxs · f64-bit vals
//
// Spans and slot arrays are not stored: spans rebuild cumulatively from the
// per-key lens (Seal lays the arena out contiguously in dense order), and
// the slot index rebuilds by replaying the dense keys over the stored mask.
func encodeShard(s *Shard) []byte {
	var w tnsbin.SectionWriter
	w.U8(uint8(s.Key.Rep))
	w.U64(s.Key.Tile)
	w.Uvarint(uint64(s.Tiles()))
	w.Uvarint(uint64(s.pairs))
	w.Uvarint(uint64(s.keys))
	w.Uvarint(uint64(len(s.nonEmpty)))
	for _, i := range s.nonEmpty {
		w.Uvarint(uint64(i))
	}
	if s.Key.Rep == RepSorted {
		for _, i := range s.nonEmpty {
			encodeSortedTile(&w, s.sorted[i])
		}
	} else {
		for _, i := range s.nonEmpty {
			encodeSealedTile(&w, s.sealed[i])
		}
	}
	return w.Bytes()
}

func encodeSealedTile(w *tnsbin.SectionWriter, t *hashtable.Sealed) {
	w.U64(t.Mask())
	w.U64s(t.Keys())
	w.Uvarint(uint64(t.Pairs()))
	n := t.Len()
	for i := 0; i < n; i++ {
		w.Uvarint(uint64(len(t.PairsAt(i))))
	}
	for i := 0; i < n; i++ {
		for _, p := range t.PairsAt(i) {
			w.U32(p.Idx)
		}
	}
	for i := 0; i < n; i++ {
		for _, p := range t.PairsAt(i) {
			w.U64(math.Float64bits(p.Val))
		}
	}
}

func encodeSortedTile(w *tnsbin.SectionWriter, st *sortedTile) {
	w.U64s(st.keys)
	w.I32s(st.offs)
	w.Uvarint(uint64(len(st.pairs)))
	for _, p := range st.pairs {
		w.U32(p.Idx)
	}
	for _, p := range st.pairs {
		w.U64(math.Float64bits(p.Val))
	}
}

// readPairBlock reads the idx/val halves of one tile's pair arena into
// dst (already pool-drawn, len set to the pair count).
func readPairBlock(r *tnsbin.SectionReader, dst []hashtable.Pair) {
	for i := range dst {
		dst[i].Idx = r.U32()
	}
	for i := range dst {
		dst[i].Val = math.Float64frombits(r.U64())
	}
}

// pairCount reads and bounds one tile's pair count: 12 bytes (u32 idx +
// f64 val) must remain per pair, so a corrupt count cannot drive a huge
// pool draw before the truncation is noticed.
func pairCount(r *tnsbin.SectionReader) (int, error) {
	n := r.Uvarint()
	if r.Err() != nil {
		return 0, r.Err()
	}
	if n > uint64(r.Remaining())/12 {
		return 0, badSpillBody("pair count %d exceeds remaining bytes", n)
	}
	return int(n), nil
}

func decodeSealedTile(r *tnsbin.SectionReader) (*hashtable.Sealed, error) {
	mask := r.U64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	// mask+1 must be a power of two no larger than the addressable slot
	// space; anything else is a malformed image.
	if mask == ^uint64(0) || (mask+1)&mask != 0 || mask+1 > 1<<31 {
		return nil, badSpillBody("slot mask %#x is not a power-of-two capacity", mask)
	}
	keys := r.U64s(hashtable.RestoreKeys)
	if r.Err() != nil {
		hashtable.DiscardRestore(keys, nil, nil)
		return nil, r.Err()
	}
	if uint64(len(keys)) > mask+1 {
		hashtable.DiscardRestore(keys, nil, nil)
		return nil, badSpillBody("%d keys overfill %d slots", len(keys), mask+1)
	}
	nPairs, err := pairCount(r)
	if err != nil {
		hashtable.DiscardRestore(keys, nil, nil)
		return nil, err
	}
	spans := hashtable.RestoreSpans(len(keys))[:len(keys)]
	off := 0
	for i := range spans {
		ln := int(r.Uvarint())
		if r.Err() != nil || ln < 0 || off+ln > nPairs {
			hashtable.DiscardRestore(keys, spans, nil)
			if r.Err() != nil {
				return nil, r.Err()
			}
			return nil, badSpillBody("span lengths overrun the %d-pair arena", nPairs)
		}
		spans[i] = hashtable.Span{Off: int32(off), Len: int32(ln)}
		off += ln
	}
	if off != nPairs {
		hashtable.DiscardRestore(keys, spans, nil)
		return nil, badSpillBody("span lengths sum to %d, arena has %d pairs", off, nPairs)
	}
	pairs := hashtable.RestorePairs(nPairs)[:nPairs]
	readPairBlock(r, pairs)
	if r.Err() != nil {
		hashtable.DiscardRestore(keys, spans, pairs)
		return nil, r.Err()
	}
	return hashtable.RestoreSealed(mask, keys, spans, pairs), nil
}

func decodeSortedTile(r *tnsbin.SectionReader) (*sortedTile, error) {
	keys := r.U64s(func(n int) []uint64 { return sortedKeyPool.Get(n) }) //fastcc:owned -- stolen by the returned sortedTile, recycled by sortedTile.recycle; discard below on failure
	offs := r.I32s(func(n int) []int32 { return sortedOffPool.Get(n) })  //fastcc:owned -- stolen by the returned sortedTile, recycled by sortedTile.recycle; discard below on failure
	// Only hand back what was actually drawn: a read that fails before its
	// alloc callback runs leaves the slice nil, and a Put(nil) would skew
	// the pools' vended/returned leak gauges.
	discard := func() {
		if keys != nil {
			sortedKeyPool.Put(keys)
		}
		if offs != nil {
			sortedOffPool.Put(offs)
		}
	}
	if r.Err() != nil {
		discard()
		return nil, r.Err()
	}
	nPairs, err := pairCount(r)
	if err != nil {
		discard()
		return nil, err
	}
	if len(offs) != len(keys)+1 || len(offs) == 0 || offs[0] != 0 || int(offs[len(offs)-1]) != nPairs {
		discard()
		return nil, badSpillBody("sorted tile CSR shape (%d keys, %d offs, %d pairs)", len(keys), len(offs), nPairs)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			discard()
			return nil, badSpillBody("sorted tile offsets decrease at %d", i)
		}
	}
	pairs := sortedPairPool.Get(nPairs)[:nPairs]
	readPairBlock(r, pairs)
	if r.Err() != nil {
		discard()
		sortedPairPool.Put(pairs)
		return nil, r.Err()
	}
	return &sortedTile{keys: keys, offs: offs, pairs: pairs}, nil //fastcc:owned -- the restore twin of buildSortedTiles: recycled by sortedTile.recycle
}
