package core

import (
	"fastcc/internal/coo"
	"fastcc/internal/hashtable"
	"fastcc/internal/mempool"
	"fastcc/internal/metrics"
	"fastcc/internal/radix"
)

// InputRep selects how input tiles are represented. The paper's design is
// hash tables keyed by the contraction index (RepHash); RepSorted is an
// engineering ablation that stores each tile as c-sorted grouped arrays
// and co-iterates tile pairs by sorted merge — no hashing, but an
// O(nnz_tile log nnz_tile) radix sort per tile at build time and a merge
// walk over both key sets per tile pair.
type InputRep int

const (
	// RepHash uses open-addressing hash tables (the paper's FaSTCC).
	RepHash InputRep = iota
	// RepSorted uses radix-sorted grouped arrays with merge co-iteration.
	RepSorted
)

func (r InputRep) String() string {
	if r == RepSorted {
		return "sorted"
	}
	return "hash"
}

// sortedTile is one input tile in RepSorted form: distinct contraction
// indices ascending in keys, with offs[k]..offs[k+1] bounding the pairs of
// key k (a per-tile CSR over c).
type sortedTile struct {
	keys  []uint64
	offs  []int32
	pairs []hashtable.Pair
}

// Sorted-tile recycling: the RepSorted twin of the hashtable sealed-arena
// pools. Eviction retires whole sorted shards; their arrays flow back here
// and are drawn again by the next buildSortedTiles. Under fastcc_checked the
// pools poison parked storage.
var (
	sortedKeyPool  mempool.SlicePool[uint64]
	sortedOffPool  mempool.SlicePool[int32]
	sortedPairPool mempool.SlicePool[hashtable.Pair]
)

// memBytes reports the tile's in-memory footprint for eviction accounting.
func (st *sortedTile) memBytes() int64 {
	return int64(cap(st.keys))*8 + int64(cap(st.offs))*4 + int64(cap(st.pairs))*16
}

// recycle returns the tile's arrays to the sorted pools. Callers must hold
// the retired shard's reclamation ownership (see Shard.recycle).
//
//fastcc:sealer -- lifecycle transition, the inverse of buildSortedTiles
func (st *sortedTile) recycle() {
	sortedKeyPool.Put(st.keys)
	sortedOffPool.Put(st.offs)
	sortedPairPool.Put(st.pairs)
	st.keys, st.offs, st.pairs = nil, nil, nil
}

// buildSortedTiles is the RepSorted analogue of buildSealedTiles: worker w
// radix-sorts the partition segments of its owned non-empty tiles by
// contraction index (in place — the partition arenas are consumed by the
// build and released afterwards) and compresses the runs into CSR form.
// The seed's gather-into-rawTile copy is gone: the partition already
// delivers each tile's nonzeros contiguously.
func buildSortedTiles(tables []*sortedTile, part *coo.TilePartition, w, teamSize int) {
	ne := part.NonEmpty()
	for idx := w; idx < len(ne); idx += teamSize {
		i := ne[idx]
		lo, hi := part.Offs[i], part.Offs[i+1]
		n := hi - lo
		cs := part.Ctr[lo:hi]
		perm := make([]uint32, n)
		for j := range perm {
			perm[j] = uint32(j)
		}
		// Per-tile sorts run inside an already-parallel team: one worker.
		radix.SortWithPerm(cs, perm, 1)
		// Pool-drawn with upper-bound capacity (distinct keys <= n), so the
		// append loops below never reallocate away the recycled storage.
		st := &sortedTile{
			keys:  sortedKeyPool.Get(n),      //fastcc:owned -- recycled by sortedTile.recycle
			offs:  sortedOffPool.Get(n + 1),  //fastcc:owned -- recycled by sortedTile.recycle
			pairs: sortedPairPool.Get(n)[:n], //fastcc:owned -- recycled by sortedTile.recycle
		}
		for p, orig := range perm {
			st.pairs[p] = hashtable.Pair{Idx: part.Intra[lo+int(orig)], Val: part.Val[lo+int(orig)]}
		}
		for j, c := range cs {
			if j == 0 || c != cs[j-1] {
				st.keys = append(st.keys, c)
				st.offs = append(st.offs, int32(j))
			}
		}
		st.offs = append(st.offs, int32(n))
		tables[i] = st
	}
}

// contractTilePairSorted computes one output tile by merging the two
// tiles' sorted key arrays; matching keys contract their pair runs by
// outer product into the worker's accumulator.
//
//fastcc:hotpath
func contractTilePairSorted(sl, sr *sortedTile, baseL, baseR uint64,
	wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters) {

	var queries, volume, updates int64
	dense, sparse := wk.dense, wk.sparse
	i, j := 0, 0
	for i < len(sl.keys) && j < len(sr.keys) {
		queries++
		switch {
		case sl.keys[i] < sr.keys[j]:
			i++
		case sl.keys[i] > sr.keys[j]:
			j++
		default:
			lps := sl.pairs[sl.offs[i]:sl.offs[i+1]]
			rps := sr.pairs[sr.offs[j]:sr.offs[j+1]]
			volume += int64(len(lps)) + int64(len(rps))
			updates += int64(len(lps)) * int64(len(rps))
			switch {
			case dense != nil:
				for _, lp := range lps {
					lv, li := lp.Val, lp.Idx
					for _, rp := range rps {
						dense.Upsert(li, rp.Idx, lv*rp.Val)
					}
				}
			case sparse != nil:
				for _, lp := range lps {
					lv, li := lp.Val, lp.Idx
					for _, rp := range rps {
						sparse.Upsert(li, rp.Idx, lv*rp.Val)
					}
				}
			default:
				for _, lp := range lps {
					lv, li := lp.Val, lp.Idx
					for _, rp := range rps {
						wk.acc.Upsert(li, rp.Idx, lv*rp.Val)
					}
				}
			}
			i++
			j++
		}
	}
	ctr.AddQueries(queries)
	ctr.AddVolume(volume)
	ctr.AddUpdates(updates)
	wk.acc.Drain(func(l, r uint32, v float64) { //fastcc:allow hotalloc -- one closure per tile task, outside the per-update loops
		pool.Append(Triple{L: baseL + uint64(l), R: baseR + uint64(r), V: v})
	})
}
