package core

import (
	"math/bits"

	"fastcc/internal/accum"
	"fastcc/internal/coo"
	"fastcc/internal/hashtable"
	"fastcc/internal/mempool"
	"fastcc/internal/metrics"
	"fastcc/internal/radix"
)

// InputRep selects how input tiles are represented. The paper's design is
// hash tables keyed by the contraction index (RepHash); RepSorted is an
// engineering ablation that stores each tile as c-sorted grouped arrays
// and co-iterates tile pairs by sorted merge — no hashing, but an
// O(nnz_tile log nnz_tile) radix sort per tile at build time and a merge
// walk over both key sets per tile pair.
type InputRep int

const (
	// RepHash uses open-addressing hash tables (the paper's FaSTCC).
	RepHash InputRep = iota
	// RepSorted uses radix-sorted grouped arrays with merge co-iteration.
	RepSorted
)

func (r InputRep) String() string {
	if r == RepSorted {
		return "sorted"
	}
	return "hash"
}

// sortedTile is one input tile in RepSorted form: distinct contraction
// indices ascending in keys, with offs[k]..offs[k+1] bounding the pairs of
// key k (a per-tile CSR over c).
type sortedTile struct {
	keys  []uint64
	offs  []int32
	pairs []hashtable.Pair
}

// rawTile accumulates a tile's nonzeros during the scan, before sorting.
type rawTile struct {
	cs    []uint64
	pairs []hashtable.Pair
}

// buildSortedTileTables is the RepSorted analogue of buildTileTables:
// worker w gathers the nonzeros of its owned tiles, then radix-sorts each
// tile by contraction index and compresses runs into the CSR form.
func buildSortedTileTables(tables []*sortedTile, m *coo.Matrix, tile uint64, w, teamSize int) {
	nnz := m.NNZ()
	raws := make([]*rawTile, len(tables))
	shift := -1
	if tile&(tile-1) == 0 {
		shift = bits.TrailingZeros64(tile)
	}
	mask := tile - 1
	for k := 0; k < nnz; k++ {
		ext := m.Ext[k]
		var i int
		var intra uint32
		if shift >= 0 {
			i = int(ext >> shift)
			intra = uint32(ext & mask)
		} else {
			i = int(ext / tile)
			intra = uint32(ext - uint64(i)*tile)
		}
		if i%teamSize != w {
			continue
		}
		rt := raws[i]
		if rt == nil {
			rt = &rawTile{}
			raws[i] = rt
		}
		rt.cs = append(rt.cs, m.Ctr[k])
		rt.pairs = append(rt.pairs, hashtable.Pair{Idx: intra, Val: m.Val[k]})
	}
	for i, rt := range raws {
		if rt == nil {
			continue
		}
		perm := make([]uint32, len(rt.cs))
		for j := range perm {
			perm[j] = uint32(j)
		}
		// Per-tile sorts run inside an already-parallel team: one worker.
		radix.SortWithPerm(rt.cs, perm, 1)
		st := &sortedTile{pairs: make([]hashtable.Pair, len(rt.pairs))}
		for p, orig := range perm {
			st.pairs[p] = rt.pairs[orig]
		}
		for j, c := range rt.cs {
			if j == 0 || c != rt.cs[j-1] {
				st.keys = append(st.keys, c)
				st.offs = append(st.offs, int32(j))
			}
		}
		st.offs = append(st.offs, int32(len(rt.cs)))
		tables[i] = st
	}
}

// nonEmptySorted lists tiles holding at least one nonzero.
func nonEmptySorted(tables []*sortedTile) []int {
	out := make([]int, 0, len(tables))
	for i, t := range tables {
		if t != nil && len(t.keys) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// contractTilePairSorted computes one output tile by merging the two
// tiles' sorted key arrays; matching keys contract their pair runs by
// outer product into the worker's accumulator.
//
//fastcc:hotpath
func contractTilePairSorted(sl, sr *sortedTile, baseL, baseR uint64,
	wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters) {

	var queries, volume, updates int64
	dense, _ := wk.acc.(*accum.Dense)
	sparse, _ := wk.acc.(*accum.Sparse)
	i, j := 0, 0
	for i < len(sl.keys) && j < len(sr.keys) {
		queries++
		switch {
		case sl.keys[i] < sr.keys[j]:
			i++
		case sl.keys[i] > sr.keys[j]:
			j++
		default:
			lps := sl.pairs[sl.offs[i]:sl.offs[i+1]]
			rps := sr.pairs[sr.offs[j]:sr.offs[j+1]]
			volume += int64(len(lps)) + int64(len(rps))
			updates += int64(len(lps)) * int64(len(rps))
			switch {
			case dense != nil:
				for _, lp := range lps {
					lv, li := lp.Val, lp.Idx
					for _, rp := range rps {
						dense.Upsert(li, rp.Idx, lv*rp.Val)
					}
				}
			case sparse != nil:
				for _, lp := range lps {
					lv, li := lp.Val, lp.Idx
					for _, rp := range rps {
						sparse.Upsert(li, rp.Idx, lv*rp.Val)
					}
				}
			default:
				for _, lp := range lps {
					lv, li := lp.Val, lp.Idx
					for _, rp := range rps {
						wk.acc.Upsert(li, rp.Idx, lv*rp.Val)
					}
				}
			}
			i++
			j++
		}
	}
	ctr.AddQueries(queries)
	ctr.AddVolume(volume)
	ctr.AddUpdates(updates)
	wk.acc.Drain(func(l, r uint32, v float64) { //fastcc:allow hotalloc -- one closure per tile task, outside the per-update loops
		pool.Append(Triple{L: baseL + uint64(l), R: baseR + uint64(r), V: v})
	})
}
