package core

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fastcc/internal/coo"
	"fastcc/internal/model"
	"fastcc/internal/ref"
	"fastcc/internal/spill"
	"fastcc/internal/tnsbin"
)

// enableSpill points the process-wide spill tier at a fresh test directory
// and restores the no-spill default at cleanup, so tests in other files
// never see a half-configured disk tier.
func enableSpill(t *testing.T, budget int64) string {
	t.Helper()
	dir := t.TempDir()
	if err := ConfigureSpill(dir, budget, false); err != nil {
		t.Fatalf("ConfigureSpill(%q): %v", dir, err)
	}
	t.Cleanup(func() {
		if err := ConfigureSpill("", 0, false); err != nil {
			t.Errorf("disabling spill: %v", err)
		}
	})
	return dir
}

// spillFiles lists the .fspl files currently in dir.
func spillFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading spill dir: %v", err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), spill.Ext) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// TestSpillEquivalence is the disk tier's bit-identity acceptance test: for
// every {representation × accumulator} combination, contract cold, force
// every shard through spill-to-disk with a 1-byte budget, contract again —
// the second run must serve its shards from the spill files (reported as
// reuse, no rebuild) and reproduce the cold output bit for bit.
func TestSpillEquivalence(t *testing.T) {
	enableSpill(t, 0)
	rng := rand.New(rand.NewSource(515))
	// 300/17 leaves partial edge tiles, so spilled tiles include a
	// non-dividing remainder tile on the left grid.
	lm := randomMatrix(rng, 300, 40, 2500)
	rm := randomMatrix(rng, 260, 40, 2000)

	type combo struct {
		name string
		rep  InputRep
		acc  model.AccumKind
	}
	combos := []combo{
		{"hash/dense", RepHash, model.AccumDense},
		{"hash/sparse", RepHash, model.AccumSparse},
		{"sorted/dense", RepSorted, model.AccumDense},
		{"sorted/sparse", RepSorted, model.AccumSparse},
	}
	for _, c := range combos {
		l, r := NewOperand(lm), NewOperand(rm)
		cfg := Config{Threads: 4, TileL: 17, TileR: 32, Accum: c.acc, Rep: c.rep, Platform: tinyLLC}
		run := func() (*coo.Tensor, *Stats) {
			out, st, err := ContractOperands(l, r, cfg)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			var ls, rs []uint64
			var vs []float64
			out.ForEach(func(tr Triple) { ls = append(ls, tr.L); rs = append(rs, tr.R); vs = append(vs, tr.V) })
			tn := ref.TriplesToMatrixTensor(ls, rs, vs, lm.ExtDim, rm.ExtDim)
			tn.Sort()
			return tn, st
		}
		cold, _ := run()

		// Force-evict everything; with the disk tier enabled every victim
		// must spill instead of being thrown away.
		before := CacheStats()
		SetShardBudget(1)
		after := CacheStats()
		if after.SpillWrites-before.SpillWrites < 2 {
			t.Fatalf("%s: eviction spilled %d shards, want both operands'",
				c.name, after.SpillWrites-before.SpillWrites)
		}

		reloaded, st := run()
		now := CacheStats()
		if !st.ShardReusedL || !st.ShardReusedR {
			t.Fatalf("%s: post-spill run rebuilt instead of reloading (%+v)", c.name, st)
		}
		if now.SpillReads-after.SpillReads < 2 {
			t.Fatalf("%s: reload performed %d spill reads, want both operands'",
				c.name, now.SpillReads-after.SpillReads)
		}
		if d := now.SpillFallbacks - before.SpillFallbacks; d != 0 {
			t.Fatalf("%s: healthy round trip counted %d spill fallbacks", c.name, d)
		}
		assertBitIdentical(t, c.name+" reloaded", cold, reloaded)

		l.Close()
		r.Close()
	}
	SetShardBudget(-1)
}

// TestSpillFaultFallback corrupts the on-disk spill files every way the
// failure matrix names — deleted, truncated, checksum-flipped, stale
// generation stamp — and demands each read-back degrade to a rebuild that
// reproduces the cold output bit for bit, counted under the right typed
// fault. Deterministic: every corruption is applied to both operands'
// files, so the expected counter deltas are exact.
func TestSpillFaultFallback(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, path string)
		count   func(s SpillFaultSnapshot) int64
	}{
		{"missing", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}, func(s SpillFaultSnapshot) int64 { return s.Missing }},
		{"truncated", func(t *testing.T, path string) {
			if err := os.Truncate(path, fileSize(t, path)/2); err != nil {
				t.Fatal(err)
			}
		}, func(s SpillFaultSnapshot) int64 { return s.Truncated }},
		{"checksum", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0xFF
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}, func(s SpillFaultSnapshot) int64 { return s.Checksum }},
		{"stale", func(t *testing.T, path string) {
			// Re-seal the same body under a bumped generation stamp: the
			// envelope and checksum are valid, but the handle's recorded
			// generation no longer matches.
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			gen := binary.LittleEndian.Uint64(data[8:16])
			var w tnsbin.SectionWriter
			w.Raw(data[:8]) // magic + version, unchanged
			w.U64(gen + 1)
			w.Raw(data[16 : len(data)-4])
			if err := os.WriteFile(path, w.Finish(), 0o644); err != nil {
				t.Fatal(err)
			}
		}, func(s SpillFaultSnapshot) int64 { return s.Stale }},
	}

	rng := rand.New(rand.NewSource(626))
	lm := randomMatrix(rng, 300, 40, 2500)
	rm := randomMatrix(rng, 260, 40, 2000)

	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			dir := enableSpill(t, 0)
			l, r := NewOperand(lm), NewOperand(rm)
			defer l.Close()
			defer r.Close()
			cfg := Config{Threads: 4, TileL: 17, TileR: 32, Accum: model.AccumSparse, Rep: RepHash, Platform: tinyLLC}
			run := func() (*coo.Tensor, *Stats) {
				out, st, err := ContractOperands(l, r, cfg)
				if err != nil {
					t.Fatal(err)
				}
				var ls, rs []uint64
				var vs []float64
				out.ForEach(func(tr Triple) { ls = append(ls, tr.L); rs = append(rs, tr.R); vs = append(vs, tr.V) })
				tn := ref.TriplesToMatrixTensor(ls, rs, vs, lm.ExtDim, rm.ExtDim)
				tn.Sort()
				return tn, st
			}
			cold, _ := run()
			SetShardBudget(1)
			defer SetShardBudget(-1)

			files := spillFiles(t, dir)
			if len(files) != 2 {
				t.Fatalf("expected both operands' spill files, found %d", len(files))
			}
			for _, f := range files {
				c.corrupt(t, f)
			}

			beforeCache, beforeFaults := CacheStats(), SpillFaults()
			rebuilt, st := run()
			afterCache, afterFaults := CacheStats(), SpillFaults()

			if st.ShardReusedL || st.ShardReusedR {
				t.Fatalf("corrupted reload claims shard reuse (%+v)", st)
			}
			if d := afterCache.SpillFallbacks - beforeCache.SpillFallbacks; d != 2 {
				t.Fatalf("SpillFallbacks rose by %d, want 2 (one per corrupted file)", d)
			}
			if d := c.count(afterFaults) - c.count(beforeFaults); d != 2 {
				t.Fatalf("typed fault counter rose by %d, want 2: %+v", d, afterFaults)
			}
			assertBitIdentical(t, "rebuilt after "+c.name, cold, rebuilt)
		})
	}
}

// fileSize returns path's size, failing the test on error.
func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestSpillFaultDispatch pins the error-to-counter mapping of the fallback
// accounting: every typed spill error lands on its own cause counter, an
// untyped error on the write-failure bucket, and each of them also counts
// one fallback.
func TestSpillFaultDispatch(t *testing.T) {
	cases := []struct {
		err   error
		count func(s SpillFaultSnapshot) int64
	}{
		{spill.ErrMissing, func(s SpillFaultSnapshot) int64 { return s.Missing }},
		{spill.ErrTruncated, func(s SpillFaultSnapshot) int64 { return s.Truncated }},
		{spill.ErrChecksum, func(s SpillFaultSnapshot) int64 { return s.Checksum }},
		{spill.ErrStale, func(s SpillFaultSnapshot) int64 { return s.Stale }},
		{spill.ErrBadHeader, func(s SpillFaultSnapshot) int64 { return s.BadHeader }},
		{os.ErrPermission, func(s SpillFaultSnapshot) int64 { return s.WriteFailed }},
	}
	for _, c := range cases {
		beforeCache, before := CacheStats(), SpillFaults()
		countSpillFault(c.err)
		afterCache, after := CacheStats(), SpillFaults()
		if d := c.count(after) - c.count(before); d != 1 {
			t.Errorf("%v: cause counter rose by %d, want 1", c.err, d)
		}
		if d := afterCache.SpillFallbacks - beforeCache.SpillFallbacks; d != 1 {
			t.Errorf("%v: SpillFallbacks rose by %d, want 1", c.err, d)
		}
	}
}

// TestSpillAdoption pins the warm-restart path at the operand level: a
// content-keyed operand spills under its key, a second operand constructed
// with the same key (the "restarted process") adopts the on-disk image on
// its cold miss, and the adopted shard reproduces the original bit for bit.
func TestSpillAdoption(t *testing.T) {
	dir := t.TempDir()
	if err := ConfigureSpill(dir, 0, true); err != nil { // keep-mode: files outlive their writer
		t.Fatalf("ConfigureSpill: %v", err)
	}
	defer func() {
		if err := ConfigureSpill("", 0, false); err != nil {
			t.Errorf("disabling spill: %v", err)
		}
	}()

	rng := rand.New(rand.NewSource(737))
	lm := randomMatrix(rng, 300, 40, 2500)
	rm := randomMatrix(rng, 260, 40, 2000)
	cfg := Config{Threads: 4, TileL: 17, TileR: 32, Accum: model.AccumSparse, Rep: RepHash, Platform: tinyLLC}
	run := func(l, r *Operand) (*coo.Tensor, *Stats) {
		out, st, err := ContractOperands(l, r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ls, rs []uint64
		var vs []float64
		out.ForEach(func(tr Triple) { ls = append(ls, tr.L); rs = append(rs, tr.R); vs = append(vs, tr.V) })
		tn := ref.TriplesToMatrixTensor(ls, rs, vs, lm.ExtDim, rm.ExtDim)
		tn.Sort()
		return tn, st
	}

	l1, r1 := NewKeyedOperand(lm, "adopt-left"), NewKeyedOperand(rm, "adopt-right")
	cold, _ := run(l1, r1)
	SetShardBudget(1) // spill both shards under their content keys
	defer SetShardBudget(-1)
	l1.Close()
	r1.Close() // keep-mode Close leaves the files as adoptable orphans

	if got := len(spillFiles(t, dir)); got != 2 {
		t.Fatalf("expected 2 orphaned spill files after Close, found %d", got)
	}

	// "Restart": fresh operands over the same content derive the same keys
	// and must adopt the orphans instead of rebuilding.
	before := CacheStats()
	l2, r2 := NewKeyedOperand(lm, "adopt-left"), NewKeyedOperand(rm, "adopt-right")
	defer l2.Close()
	defer r2.Close()
	adopted, st := run(l2, r2)
	after := CacheStats()
	if !st.ShardReusedL || !st.ShardReusedR {
		t.Fatalf("adoption run rebuilt instead of adopting (%+v)", st)
	}
	if d := after.SpillAdopts - before.SpillAdopts; d != 2 {
		t.Fatalf("SpillAdopts rose by %d, want 2", d)
	}
	assertBitIdentical(t, "adopted", cold, adopted)
}
