// Per-tenant shard-cache accounting on top of the byte-budgeted LRU
// (lifecycle.go). The global budget bounds the process; tenant accounts
// bound each tenant's slice of it:
//
//   - Every shard a tenanted run builds or reuses is *claimed* for that
//     tenant: the shard's full footprint is charged to the tenant's
//     account, and the claim is recorded on the shard. A shard shared by
//     several tenants is charged to each of them in full (conservative,
//     and the only scheme under which "evicting this shard relieves every
//     claimant" holds), while the global budget keeps charging actual
//     bytes exactly once.
//   - A tenant over its quota is brought back under it by retiring its
//     own cold (unpinned) claimed shards, coldest first. Enforcement runs
//     at claim time and again when each tenanted run releases its pins,
//     so at quiescence no tenant's resident charge exceeds its quota.
//   - The global budget's eviction order prefers the cold shards of
//     over-quota tenants before falling back to plain LRU, so one tenant
//     blowing its quota cannot push well-behaved tenants' warm sets out.
//
// All account state (the accounts map, each account's gauges, and the
// claim lists on shards) is guarded by shardLRU.mu, exactly like the LRU
// links; reclamation of victims always happens after the lock is released
// (the lockorder invariant: shardLRU.mu never nests with Operand.mu).
package core

import (
	"sort"

	"fastcc/internal/metrics"
)

// tenantAccount is one tenant's shard-cache accounting, guarded by
// shardLRU.mu.
type tenantAccount struct {
	quota  int64 // bytes; <= 0 means no per-tenant quota
	bytes  int64 // resident footprint of claimed live shards
	shards int64 // claimed live shard count

	hits, misses            int64 // this tenant's shard fetches: cached vs built
	evictions, evictedBytes int64 // quota-driven retirements of its claims

	// Disk-tier round trips of shards this tenant had claimed at eviction
	// time (spill.go credits these via the shard's captured claim list).
	spillWrites, spillReads, spillBytes int64
}

// overQuota reports whether the account's resident charge exceeds its quota.
func (a *tenantAccount) overQuota() bool { return a.quota > 0 && a.bytes > a.quota }

// accountLocked returns (lazily creating) the account for id. Caller holds
// c.mu.
func (c *shardCache) accountLocked(id string) *tenantAccount {
	if c.tenants == nil {
		c.tenants = make(map[string]*tenantAccount)
	}
	a := c.tenants[id]
	if a == nil {
		a = &tenantAccount{}
		c.tenants[id] = a
	}
	return a
}

// claimedByLocked reports whether s carries a claim for tenant id. Caller
// holds c.mu; claim lists are only ever touched under it.
func (s *Shard) claimedByLocked(id string) bool {
	for _, t := range s.claims {
		if t == id {
			return true
		}
	}
	return false
}

// overQuotaClaimLocked reports whether any of s's claimants is over quota —
// the global eviction policy's preference test. Caller holds c.mu.
func (c *shardCache) overQuotaClaimLocked(s *Shard) bool {
	for _, t := range s.claims {
		if a := c.tenants[t]; a != nil && a.overQuota() {
			return true
		}
	}
	return false
}

// unclaimAllLocked uncharges s from every claimant and clears the claim
// list. Idempotent (the doom path and the eviction path can both reach a
// shard's retirement); caller holds c.mu.
func (c *shardCache) unclaimAllLocked(s *Shard) {
	for _, t := range s.claims {
		if a := c.tenants[t]; a != nil {
			a.bytes -= s.bytes
			a.shards--
		}
	}
	// Keep the claimant list on the shard past the uncharge: if this
	// retirement spills the tables, the disk-tier round trip is credited to
	// the tenants that had the shard warm (creditTenantSpill).
	s.spillClaims = s.claims //fastcc:allow sealedmut -- spill-credit list, guarded by shardLRU.mu
	s.claims = nil           //fastcc:allow sealedmut -- claim list, lifecycle state guarded by shardLRU.mu
}

// claimShard charges s to tenant's account (once per tenant per shard
// lifetime) and records the fetch as a hit or a build. The caller must hold
// a pin on s — the engine claims right after buildShards — so the shard
// cannot retire out from under the charge. Quota enforcement runs
// immediately, but the just-claimed shard itself is pinned and therefore
// never its own victim; the run-exit enforcement in ContractOperands
// finishes the job once the pins drop.
func claimShard(s *Shard, tenant string, built bool) {
	c := &shardLRU
	c.mu.Lock()
	a := c.accountLocked(tenant)
	if built {
		a.misses++
	} else {
		a.hits++
	}
	var victims []*Shard
	if !s.claimedByLocked(tenant) {
		s.claims = append(s.claims, tenant) //fastcc:allow sealedmut -- claim list, lifecycle state guarded by shardLRU.mu
		a.bytes += s.bytes
		a.shards++
		victims = c.enforceTenantLocked(tenant)
	}
	c.mu.Unlock()
	c.reap(victims)
}

// enforceTenant retires tenant's cold claimed shards (coldest first) until
// its resident charge fits its quota. The engine calls it as each tenanted
// run's last deferred step — after the run pins are released — so a tenant's
// charge converges back under quota the moment its last in-flight
// contraction finishes.
func enforceTenant(tenant string) {
	c := &shardLRU
	c.mu.Lock()
	victims := c.enforceTenantLocked(tenant)
	c.mu.Unlock()
	c.reap(victims)
}

// enforceTenantLocked collects quota victims for one tenant: cold claimed
// shards from the LRU tail until the account fits. Pinned shards are
// skipped — an in-flight working set may legitimately sit over quota until
// its pins drop. The caller reaps the victims after releasing c.mu.
func (c *shardCache) enforceTenantLocked(id string) []*Shard {
	a := c.tenants[id]
	if a == nil || !a.overQuota() {
		return nil
	}
	var victims []*Shard
	for s := c.tail; s != nil && a.overQuota(); {
		prev := s.lruPrev
		if s.claimedByLocked(id) && s.tryRetire() {
			a.evictions++
			a.evictedBytes += s.bytes
			c.removeLocked(s)
			c.unclaimAllLocked(s)
			victims = append(victims, s)
		}
		s = prev
	}
	return victims
}

// SetTenantQuota sets tenant id's shard-cache quota in bytes (<= 0 removes
// the quota) and enforces it immediately against the tenant's cold claims.
func SetTenantQuota(id string, bytes int64) {
	c := &shardLRU
	c.mu.Lock()
	c.accountLocked(id).quota = bytes
	victims := c.enforceTenantLocked(id)
	c.mu.Unlock()
	c.reap(victims)
}

// TenantStats returns the accounting snapshot for tenant id; ok is false if
// no run has ever been tagged with it (and no quota was set).
func TenantStats(id string) (snap metrics.TenantSnapshot, ok bool) {
	c := &shardLRU
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.tenants[id]
	if a == nil {
		return metrics.TenantSnapshot{ID: id}, false
	}
	return c.tenantSnapshotLocked(id, a), true
}

// AllTenantStats returns a snapshot per known tenant, sorted by ID.
func AllTenantStats() []metrics.TenantSnapshot {
	c := &shardLRU
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]metrics.TenantSnapshot, 0, len(c.tenants))
	for id, a := range c.tenants {
		out = append(out, c.tenantSnapshotLocked(id, a))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// tenantSnapshotLocked assembles one tenant's snapshot, deriving the pinned
// gauge from the LRU walk (racy per shard, like CacheSnapshot's, but
// consistent with the account gauges under the one lock).
func (c *shardCache) tenantSnapshotLocked(id string, a *tenantAccount) metrics.TenantSnapshot {
	snap := metrics.TenantSnapshot{
		ID:           id,
		QuotaBytes:   a.quota,
		Bytes:        a.bytes,
		Shards:       a.shards,
		Hits:         a.hits,
		Misses:       a.misses,
		Evictions:    a.evictions,
		EvictedBytes: a.evictedBytes,
		SpillWrites:  a.spillWrites,
		SpillReads:   a.spillReads,
		SpillBytes:   a.spillBytes,
	}
	for s := c.head; s != nil; s = s.lruNext {
		if s.pinnedNow() && s.claimedByLocked(id) {
			snap.PinnedBytes += s.bytes
		}
	}
	return snap
}

// DropTenant releases every accounting claim tenant id holds and deletes
// its account: shards it shared with other tenants stay resident (and stay
// charged to them), while shards only this tenant kept warm are retired
// immediately if cold — the "tenant disconnected" hook for long-running
// servers. Shards that are both solely-claimed and pinned survive as
// ordinary unclaimed LRU entries until the budget or a Drop reaches them.
func DropTenant(id string) {
	c := &shardLRU
	c.mu.Lock()
	if c.tenants[id] == nil {
		c.mu.Unlock()
		return
	}
	var victims []*Shard
	for s := c.tail; s != nil; {
		prev := s.lruPrev
		if s.claimedByLocked(id) {
			c.removeClaimLocked(s, id)
			if len(s.claims) == 0 && s.tryRetire() {
				c.removeLocked(s)
				victims = append(victims, s)
			}
		}
		s = prev
	}
	delete(c.tenants, id)
	c.mu.Unlock()
	for _, s := range victims {
		c.counters.Drops.Add(1)
		s.owner.unmap(s)
		s.recycle()
	}
}

// removeClaimLocked removes one tenant's claim from s and uncharges its
// account. Caller holds c.mu.
func (c *shardCache) removeClaimLocked(s *Shard, id string) {
	for i, t := range s.claims {
		if t != id {
			continue
		}
		s.claims = append(s.claims[:i], s.claims[i+1:]...) //fastcc:allow sealedmut -- claim list, lifecycle state guarded by shardLRU.mu
		if a := c.tenants[id]; a != nil {
			a.bytes -= s.bytes
			a.shards--
		}
		return
	}
}
